(* D2 violation (the to_seq gap): Hashtbl.to_seq enumerates in hash
   order just like Hashtbl.iter, so it is flagged the same way. Linted
   by test/test_lint.ml under a simulated lib/ path. Expect exactly one
   D2 error. *)

let keys t = List.of_seq (Hashtbl.to_seq t)
