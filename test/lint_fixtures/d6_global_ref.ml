(* D6 violation: module-scope mutable state in an engine-reachable
   module. Linted by test/test_lint.ml under a simulated lib/kws/ path,
   where the hidden counter would be shared by every domain of a
   sharded engine. Expect exactly one D6 error. *)

let hits = ref 0

let bump () =
  incr hits;
  !hits
