(* D8 non-violation: the sanctioned combinator form — no bare
   span_begin at all, the region lives inside Obs.with_apply. Expect no
   finding. *)

let update obs g x = Obs.with_apply obs ~rule:"fixture" (fun () -> ignore (g, x))
