(* D8 non-violation: the span_end is guarded by Fun.protect ~finally, so
   the region closes on every exit path. Expect no finding. *)

let update obs g =
  Obs.span_begin obs "update";
  Fun.protect
    ~finally:(fun () -> Obs.span_end obs "update")
    (fun () -> ignore g)
