(* D7 violation: a direct Bigarray row poke outside lib/graph — the CSR
   representation write that must go through the Csr entry points.
   Expect exactly one D7 error. *)

let poke row v = Bigarray.Array1.set row 0 v
