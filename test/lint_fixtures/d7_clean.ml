(* D7 non-violation: mutating locally allocated scratch state is the
   engines' bread and butter and must stay invisible. Expect no
   finding. *)

let scratch n =
  let t = Hashtbl.create n in
  Hashtbl.replace t 0 1;
  Hashtbl.length t
