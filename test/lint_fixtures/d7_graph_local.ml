(* D7 violation: mutating a value built by a Digraph entry point with a
   raw container primitive instead of the backend's own operations.
   Expect exactly one D7 error. *)

let rewire () =
  let g = Digraph.create () in
  Hashtbl.replace g 0 1;
  g
