(* D6 non-violation: a deliberate singleton carrying the sanctioning
   annotation. Expect no finding and one suppression. *)

let interner = Hashtbl.create 16 [@@lint.allow "D6"]

let find s = Hashtbl.find_opt interner s
