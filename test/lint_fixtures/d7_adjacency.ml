(* D7 violation: a container mutator reaching an adjacency projection
   ([.succ]) of a value that escaped lib/graph. Expect exactly one D7
   error. *)

type g = { succ : (int, int list) Hashtbl.t }

let link g u vs = Hashtbl.replace g.succ u vs
