(* D8 violation: a span opened with no exception-safe close — a raising
   rewrite rule would leak the span and misnest every later span_end.
   Expect exactly one D8 error. *)

let update obs g =
  Obs.span_begin obs "update";
  ignore g;
  Obs.span_end obs "update"
