(* D6 non-violation: the engine-idiom alternative — mutable state owned
   by a record the caller builds, no module-scope cell. Expect no
   finding. *)

type t = { table : (string, int) Hashtbl.t; mutable count : int }

let create () = { table = Hashtbl.create 16; count = 0 }

let bump t s =
  t.count <- t.count + 1;
  Hashtbl.replace t.table s t.count
