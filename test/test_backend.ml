(* Cross-backend differential battery: the Hashtbl and CSR digraph
   backends driven through identical op sequences — distilled from the
   unit tests in test_graph.ml plus seeded random streams — with every
   observable view (sorted adjacency, degrees, labels, edge membership,
   operation return values) compared byte for byte after every op,
   including immediately around forced [Digraph.compact] points.

   The qcheck properties pin the overlay laws: compact is a semantic
   no-op and idempotent; arbitrary interleavings of insert / delete /
   absent-delete / duplicate-insert / compact agree with a batch-built
   graph; and copy of an un-compacted CSR graph is deep — pending deltas
   are preserved and the copy is independent of the original. *)

open Ig_graph

let check = Alcotest.check

(* ---- op language ---------------------------------------------------------- *)

type op =
  | Add_node of string
  | Ins of int * int (* endpoints reduced modulo the current node count *)
  | Del of int * int
  | Compact

let pp_op = function
  | Add_node l -> Printf.sprintf "node %s" l
  | Ins (u, v) -> Printf.sprintf "+%d-%d" u v
  | Del (u, v) -> Printf.sprintf "-%d-%d" u v
  | Compact -> "compact"

(* Apply one op and render its result, so return values (new-edge flags,
   node ids) are part of the differential comparison, not just the state. *)
let apply_op g op =
  let n = Digraph.n_nodes g in
  match op with
  | Add_node l -> Printf.sprintf "node=%d" (Digraph.add_node g l)
  | Ins (u, v) ->
      if n = 0 then "skip"
      else Printf.sprintf "ins=%b" (Digraph.add_edge g (u mod n) (v mod n))
  | Del (u, v) ->
      if n = 0 then "skip"
      else Printf.sprintf "del=%b" (Digraph.remove_edge g (u mod n) (v mod n))
  | Compact ->
      Digraph.compact g;
      "compacted"

(* ---- the observable view --------------------------------------------------- *)

(* Everything a client can see, rendered canonically: node/edge counts,
   per-node label, degrees and sorted adjacency in both directions, the
   label index (most-recent-first, like Hashtbl's), and — via an explicit
   [mem_edge] sweep — the membership relation, which on CSR exercises the
   base binary search plus add/tombstone overlay paths independently of
   the merge iterators. *)
let view g =
  let buf = Buffer.create 512 in
  let n = Digraph.n_nodes g in
  Buffer.add_string buf (Printf.sprintf "n=%d m=%d\n" n (Digraph.n_edges g));
  for v = 0 to n - 1 do
    let succs = ref [] and preds = ref [] in
    Digraph.iter_succ_sorted (fun w -> succs := w :: !succs) g v;
    Digraph.iter_pred_sorted (fun u -> preds := u :: !preds) g v;
    let show l = String.concat "," (List.map string_of_int (List.rev l)) in
    Buffer.add_string buf
      (Printf.sprintf "%d:%s out=%d in=%d s=[%s] p=[%s]\n" v
         (Digraph.label_name g v) (Digraph.out_degree g v)
         (Digraph.in_degree g v) (show !succs) (show !preds))
  done;
  let seen = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    let l = Digraph.label g v in
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      Buffer.add_string buf
        (Printf.sprintf "L:%s=[%s]\n" (Digraph.label_name g v)
           (String.concat ","
              (List.map string_of_int (Digraph.nodes_with_label g l))))
    end
  done;
  if n <= 48 then begin
    Buffer.add_string buf "mem=";
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if Digraph.mem_edge g u v then
          Buffer.add_string buf (Printf.sprintf "%d-%d;" u v)
      done
    done;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* ---- the differential runner ----------------------------------------------- *)

(* Drive both backends through [ops]; with [compact_every = k > 0] the CSR
   side is additionally compacted every k ops, so views are compared both
   right after and right before forced compaction points. *)
let run_diff ?(compact_every = 0) ops =
  let gh = Digraph.create ~backend:`Hashtbl () in
  let gc = Digraph.create ~backend:`Csr () in
  List.iteri
    (fun i op ->
      let rh = apply_op gh op and rc = apply_op gc op in
      if rh <> rc then
        Alcotest.failf "op %d (%s): results diverge: hashtbl %s, csr %s" i
          (pp_op op) rh rc;
      if compact_every > 0 && (i + 1) mod compact_every = 0 then
        Digraph.compact gc;
      let vh = view gh and vc = view gc in
      if vh <> vc then
        Alcotest.failf "op %d (%s): views diverge\n--- hashtbl\n%s--- csr\n%s"
          i (pp_op op) vh vc)
    ops;
  (gh, gc)

(* ---- distilled unit sequences ---------------------------------------------- *)

(* The Digraph cases of test_graph.ml, replayed as op streams: basics
   (duplicate insert, shared labels), remove (absent delete), degrees,
   self loops, and the apply-batch sequence. *)
let distilled =
  [
    ( "basics",
      [ Add_node "a"; Add_node "b"; Add_node "a"; Ins (0, 1); Ins (0, 1) ] );
    ( "remove",
      [
        Add_node "x"; Add_node "x"; Add_node "x";
        Ins (0, 1); Ins (1, 2);
        Del (0, 1); Del (0, 1); Del (2, 0);
      ] );
    ( "degrees",
      [
        Add_node "a"; Add_node "b"; Add_node "c";
        Ins (0, 1); Ins (0, 2); Ins (1, 2);
      ] );
    ("self loop", [ Add_node "a"; Ins (0, 0); Del (0, 0); Ins (0, 0) ]);
    ( "apply batch",
      [
        Add_node "x"; Add_node "x"; Add_node "x";
        Ins (0, 1); Ins (1, 2);
        Del (0, 1); Ins (2, 0); Ins (2, 0);
      ] );
    ( "tombstone undelete",
      (* Exercise base-row tombstones: build, compact, delete from base,
         re-insert (undelete), delete again, around more compacts. *)
      [
        Add_node "a"; Add_node "b"; Add_node "c"; Add_node "d";
        Ins (0, 1); Ins (0, 2); Ins (0, 3); Ins (1, 2); Ins (2, 3);
        Compact;
        Del (0, 2); Ins (0, 2); Del (0, 2); Del (0, 1);
        Compact; Compact;
        Ins (0, 1); Ins (3, 0);
      ] );
  ]

let distilled_cases =
  List.map
    (fun (name, ops) ->
      Alcotest.test_case name `Quick (fun () ->
          ignore (run_diff ops);
          ignore (run_diff ~compact_every:1 ops);
          ignore (run_diff ~compact_every:3 ops)))
    distilled

(* ---- seeded random streams -------------------------------------------------- *)

let random_ops ~seed ~steps =
  let rng = Random.State.make [| 0xba; seed |] in
  let labels = [| "a"; "b"; "c" |] in
  List.init steps (fun _ ->
      let r = Random.State.int rng 100 in
      if r < 10 then Add_node labels.(Random.State.int rng 3)
      else if r < 55 then
        Ins (Random.State.int rng 64, Random.State.int rng 64)
      else if r < 95 then
        Del (Random.State.int rng 64, Random.State.int rng 64)
      else Compact)

let random_cases =
  List.concat_map
    (fun seed ->
      List.map
        (fun compact_every ->
          Alcotest.test_case
            (Printf.sprintf "seed %d, compact every %d" seed compact_every)
            `Quick
            (fun () ->
              let ops = Add_node "a" :: random_ops ~seed ~steps:400 in
              ignore (run_diff ~compact_every ops)))
        [ 0; 7 ])
    [ 1; 2; 3 ]

(* ---- copy / hint regressions ------------------------------------------------ *)

(* The latent inconsistency fixed in this change: copy of a CSR graph
   with a non-empty overlay must preserve the pending deltas, and the
   copy must be fully independent of the original (both directions). *)
let test_copy_preserves_overlay () =
  let ops = Add_node "a" :: random_ops ~seed:11 ~steps:300 in
  let _, gc = run_diff ops in
  (* Grow a fresh overlay on top of whatever state the stream left. *)
  let n = Digraph.n_nodes gc in
  for i = 0 to 9 do
    ignore (Digraph.add_edge gc (i mod n) ((i * 7 + 1) mod n))
  done;
  check Alcotest.bool "overlay pending" true (Digraph.overlay_size gc > 0);
  let v0 = view gc in
  let c = Digraph.copy gc in
  check Alcotest.string "copy sees pending deltas" v0 (view c);
  (* Mutate the original: the copy must not move. *)
  ignore (Digraph.add_edge gc (n - 1) 0);
  ignore (Digraph.remove_edge gc 0 ((0 * 7 + 1) mod n));
  Digraph.compact gc;
  check Alcotest.string "copy independent of original" v0 (view c);
  (* Mutate and compact the copy: same view modulo the mutation, and the
     original's new state is untouched. *)
  let vg = view gc in
  Digraph.compact c;
  check Alcotest.string "compacting the copy is a no-op" v0 (view c);
  ignore (Digraph.remove_edge c 0 1);
  check Alcotest.string "original independent of copy" vg (view gc)

let test_hint_presizes () =
  (* ~hint pre-sizes internal storage on both backends without changing
     any observable state; over- and under-shooting must both be safe. *)
  List.iter
    (fun backend ->
      List.iter
        (fun hint ->
          let g = Digraph.create ~hint ~backend () in
          check Alcotest.int "empty" 0 (Digraph.n_nodes g);
          for _ = 1 to 40 do
            ignore (Digraph.add_node g "x")
          done;
          for i = 0 to 38 do
            ignore (Digraph.add_edge g i (i + 1))
          done;
          check Alcotest.int "nodes" 40 (Digraph.n_nodes g);
          check Alcotest.int "edges" 39 (Digraph.n_edges g);
          check Alcotest.bool "member" true (Digraph.mem_edge g 0 1))
        [ 0; 1; 8; 100 ])
    [ `Hashtbl; `Csr ]

let test_convert_roundtrip () =
  let ops = Add_node "a" :: random_ops ~seed:21 ~steps:250 in
  let gh, gc = run_diff ops in
  let hc = Digraph.convert ~backend:`Csr gh in
  let ch = Digraph.convert ~backend:`Hashtbl gc in
  check Alcotest.string "hashtbl->csr" (view gh) (view hc);
  check Alcotest.string "csr->hashtbl" (view gc) (view ch);
  check Alcotest.bool "same-backend convert is identity" true
    (Digraph.convert ~backend:`Hashtbl gh == gh)

(* ---- qcheck properties ------------------------------------------------------ *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun i -> Add_node [| "a"; "b"; "c" |].(i)) (int_bound 2));
        (8, map2 (fun u v -> Ins (u, v)) (int_bound 40) (int_bound 40));
        (5, map2 (fun u v -> Del (u, v)) (int_bound 40) (int_bound 40));
        (1, return Compact);
      ])

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(
      map (fun ops -> Add_node "a" :: ops) (list_size (int_bound 150) gen_op))

let csr_of ops =
  let g = Digraph.create ~backend:`Csr () in
  List.iter (fun op -> ignore (apply_op g op)) ops;
  g

(* Build a semantically equal graph from scratch in one pass: nodes in id
   order, surviving edges in sorted order, one final compact. *)
let batch_rebuild ~backend g =
  let b = Digraph.create ~hint:(Digraph.n_nodes g) ~backend () in
  for v = 0 to Digraph.n_nodes g - 1 do
    ignore (Digraph.add_node b (Digraph.label_name g v))
  done;
  Digraph.iter_edges (fun u v -> ignore (Digraph.add_edge b u v)) g;
  Digraph.compact b;
  b

let prop_compact_noop =
  QCheck.Test.make ~count:150 ~name:"compact is a semantic no-op, idempotent"
    arb_ops (fun ops ->
      let g = csr_of ops in
      let v0 = view g in
      Digraph.compact g;
      let v1 = view g in
      let drained = Digraph.overlay_size g = 0 in
      Digraph.compact g;
      v0 = v1 && drained && view g = v1)

let prop_interleavings_agree =
  QCheck.Test.make ~count:150
    ~name:"arbitrary op interleavings agree with a batch-built graph"
    arb_ops (fun ops ->
      let g = csr_of ops in
      view g = view (batch_rebuild ~backend:`Csr g)
      && view g = view (batch_rebuild ~backend:`Hashtbl g))

let prop_copy_deep =
  QCheck.Test.make ~count:150
    ~name:"copy of an un-compacted csr graph is deep and independent"
    arb_ops (fun ops ->
      let g = csr_of ops in
      let v0 = view g in
      let c = Digraph.copy g in
      (* Diverge both sides, then check neither saw the other's writes. *)
      ignore (apply_op g (Ins (1, 3)));
      Digraph.compact g;
      let copy_intact = view c = v0 in
      let vg = view g in
      ignore (apply_op c (Del (0, 0)));
      Digraph.compact c;
      copy_intact && view g = vg)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_backend"
    [
      ("distilled sequences", distilled_cases);
      ("random streams", random_cases);
      ( "copy/hint/convert",
        [
          Alcotest.test_case "copy preserves pending deltas" `Quick
            test_copy_preserves_overlay;
          Alcotest.test_case "hint pre-sizes safely" `Quick test_hint_presizes;
          Alcotest.test_case "convert roundtrip" `Quick test_convert_roundtrip;
        ] );
      ( "overlay laws",
        qsuite [ prop_compact_noop; prop_interleavings_agree; prop_copy_deep ]
      );
    ]
