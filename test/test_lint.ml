(* Tests for the determinism & instrumentation linter (lib/lint): one
   fixture per rule D1-D5, the three suppression shapes, baseline and
   report JSON round-trips, a clean-tree integration run over the build
   copy of the repo's own sources, and the cross-module phase — effect
   classification, summary JSON round-trips, the D6-D8 battery over
   test/lint_fixtures/ (each violating fixture fires exactly one
   diagnostic with the right rule tag) and in-process report
   byte-determinism (the cross-process run is @lint-determinism). *)

module L = Ig_lint.Lint
module S = Ig_lint.Summary
module I = Ig_lint.Interproc
module J = Ig_obs.Json

let check = Alcotest.check

let rules ds = List.map (fun (d : L.diagnostic) -> d.L.rule) ds

let lint ?(path = "lib/kws/fixture.ml") src =
  let ds, _ = L.lint_source ~path src in
  ds

let suppressed ?(path = "lib/kws/fixture.ml") src =
  snd (L.lint_source ~path src)

(* ---- D1: polymorphic compare / hash ---------------------------------------- *)

let test_d1_compare () =
  check (Alcotest.list Alcotest.string) "bare compare flagged" [ "D1" ]
    (rules (lint "let f l = List.sort compare l"));
  check (Alcotest.list Alcotest.string) "Stdlib.compare flagged" [ "D1" ]
    (rules (lint "let f l = List.sort Stdlib.compare l"));
  check (Alcotest.list Alcotest.string) "Hashtbl.hash flagged" [ "D1" ]
    (rules (lint "let h x = Hashtbl.hash x"));
  check (Alcotest.list Alcotest.string) "first-class ( = ) flagged" [ "D1" ]
    (rules (lint "let eq = ( = )"));
  check (Alcotest.list Alcotest.string)
    "infix = on scalars passes (documented approximation)" []
    (rules (lint "let f a b = if a = b then a else b"));
  check (Alcotest.list Alcotest.string) "Int.compare passes" []
    (rules (lint "let f l = List.sort Int.compare l"));
  check (Alcotest.list Alcotest.string) "out of engine scope" []
    (rules (lint ~path:"lib/theory/fixture.ml" "let f l = List.sort compare l"))

(* ---- D2: unordered iteration ------------------------------------------------ *)

let fold_src = "let ks tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []"

let test_d2_iteration () =
  check (Alcotest.list Alcotest.string) "Hashtbl.fold flagged" [ "D2" ]
    (rules (lint ~path:"lib/theory/fixture.ml" fold_src));
  check (Alcotest.list Alcotest.string) "Hashtbl.iter flagged" [ "D2" ]
    (rules (lint "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl"));
  check (Alcotest.list Alcotest.string) "Digraph.iter_succ flagged" [ "D2" ]
    (rules (lint "let f g v = Digraph.iter_succ (fun _ -> ()) g v"));
  check (Alcotest.list Alcotest.string) "sorted variant passes" []
    (rules (lint "let f g v = Digraph.iter_succ_sorted (fun _ -> ()) g v"));
  check (Alcotest.list Alcotest.string) "sorted_bindings passes" []
    (rules (lint "let f tbl = Obs.sorted_bindings ~compare:Int.compare tbl"));
  check (Alcotest.list Alcotest.string) "out of lib/ scope" []
    (rules (lint ~path:"bench/fixture.ml" fold_src));
  (* functor-made tables (H.iter) hash with unseeded per-type functions and
     are deterministic under OCAMLRUNPARAM=R, so they are not flagged *)
  check (Alcotest.list Alcotest.string) "functor table iter passes" []
    (rules (lint "let f tbl = H.iter (fun _ _ -> ()) tbl"))

(* ---- D3: ambient nondeterminism --------------------------------------------- *)

let test_d3_ambient () =
  check (Alcotest.list Alcotest.string) "global Random flagged" [ "D3" ]
    (rules (lint "let r () = Random.int 5"));
  check (Alcotest.list Alcotest.string) "Random.self_init flagged" [ "D3" ]
    (rules (lint "let () = Random.self_init ()"));
  check (Alcotest.list Alcotest.string) "Random.State passes" []
    (rules (lint "let r st = Random.State.int st 5"));
  check (Alcotest.list Alcotest.string) "wall clock flagged" [ "D3"; "D3" ]
    (rules
       (lint "let t () = Unix.gettimeofday () +. Sys.time ()"));
  check (Alcotest.list Alcotest.string) "lib/obs exempt" []
    (rules (lint ~path:"lib/obs/fixture.ml" "let t () = Unix.gettimeofday ()"));
  check (Alcotest.list Alcotest.string) "bin/ out of scope" []
    (rules (lint ~path:"bin/fixture.ml" "let t () = Unix.gettimeofday ()"))

(* D3's filesystem half: durable I/O belongs to lib/journal alone. *)
let test_d3_filesystem () =
  check (Alcotest.list Alcotest.string) "open_out in lib/ flagged" [ "D3" ]
    (rules (lint "let f p = open_out p"));
  check (Alcotest.list Alcotest.string) "Sys.remove flagged" [ "D3" ]
    (rules (lint "let f p = Sys.remove p"));
  check (Alcotest.list Alcotest.string) "Out_channel variants flagged" [ "D3" ]
    (rules (lint "let f p = Out_channel.open_bin p"));
  check (Alcotest.list Alcotest.string) "lib/journal exempt" []
    (rules (lint ~path:"lib/journal/fixture.ml" "let f p = open_out p"));
  check (Alcotest.list Alcotest.string) "bench/ out of scope" []
    (rules (lint ~path:"bench/fixture.ml" "let f p = open_out p"));
  check (Alcotest.list Alcotest.string) "annotated artifact writer passes" []
    (rules (lint "let f p = (open_out [@lint.allow \"D3\"]) p"));
  check Alcotest.int "suppression counted" 1
    (suppressed "let f p = (open_out [@lint.allow \"D3\"]) p")

(* ---- D4: instrumented update entry points ----------------------------------- *)

let instrumented =
  "let insert_edge t u v =\n\
  \  Obs.with_apply t.obs (fun () ->\n\
  \      Tracer.aff_enter t.trace ~node:u ~rule:Tracer.Kws_prune;\n\
  \      ignore v)\n"

let test_d4_instrumentation () =
  check (Alcotest.list Alcotest.string) "wrapped and tagged passes" []
    (rules (lint ~path:"lib/kws/inc_fixture.ml" instrumented));
  (let ds =
     lint ~path:"lib/kws/inc_fixture.ml"
       "let insert_edge t u v = ignore (t, u, v)"
   in
   check (Alcotest.list Alcotest.string) "bare entry point doubly flagged"
     [ "D4"; "D4" ] (rules ds));
  check (Alcotest.list Alcotest.string)
    "wrapped but never rule-tagged flagged" [ "D4" ]
    (rules
       (lint ~path:"lib/kws/inc_fixture.ml"
          "let apply_batch t ups = Obs.with_apply t.obs (fun () -> ups)"));
  check (Alcotest.list Alcotest.string) "non-inc_ file out of scope" []
    (rules
       (lint ~path:"lib/kws/batch.ml"
          "let insert_edge t u v = ignore (t, u, v)"));
  check (Alcotest.list Alcotest.string) "@@-applied wrapper passes" []
    (rules
       (lint ~path:"lib/kws/inc_fixture.ml"
          ("let insert_edge t u v =\n\
           \  Obs.with_apply t.obs @@ fun () ->\n\
           \  Tracer.aff_enter t.trace ~node:u ~rule:Tracer.Kws_prune;\n\
           \  ignore v\n")))

(* ---- D4: instrumented storage entry points ----------------------------------- *)

let test_d4_storage () =
  check (Alcotest.list Alcotest.string) "uninstrumented compact flagged"
    [ "D4" ]
    (rules (lint ~path:"lib/graph/csr.ml" "let compact g = ignore g"));
  check (Alcotest.list Alcotest.string) "probed compact passes" []
    (rules
       (lint ~path:"lib/graph/csr.ml"
          "let compact g = if Obs.enabled g.obs then Obs.incr g.obs \"c\""));
  check (Alcotest.list Alcotest.string) "uninstrumented append flagged"
    [ "D4" ]
    (rules (lint ~path:"lib/journal/journal.ml" "let append t = ignore t"));
  check (Alcotest.list Alcotest.string) "observe_time counts as a probe" []
    (rules
       (lint ~path:"lib/journal/journal.ml"
          "let append t = Obs.observe_time t.obs \"wal\" (fun () -> ())"));
  check (Alcotest.list Alcotest.string) "uninstrumented undo flagged" [ "D4" ]
    (rules (lint ~path:"lib/journal/store.ml" "let undo t ~k = ignore (t, k)"));
  check (Alcotest.list Alcotest.string) "other files out of scope" []
    (rules (lint ~path:"lib/graph/digraph.ml" "let compact g = ignore g"));
  check (Alcotest.list Alcotest.string) "other bindings out of scope" []
    (rules (lint ~path:"lib/graph/csr.ml" "let add_edge g = ignore g"))

(* ---- suppression ------------------------------------------------------------- *)

let test_suppression () =
  let expr = "let ks tbl = (Hashtbl.fold [@lint.allow \"D2\"]) (fun k _ a -> k :: a) tbl []" in
  check (Alcotest.list Alcotest.string) "expression allow silences" []
    (rules (lint expr));
  check Alcotest.int "expression allow counted" 1 (suppressed expr);
  let binding =
    "let ks tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl [] [@@lint.allow \"D2\"]"
  in
  check (Alcotest.list Alcotest.string) "binding allow silences" []
    (rules (lint binding));
  let file_wide =
    "[@@@lint.allow \"D2\"]\n\
     let a tbl = Hashtbl.fold (fun k _ x -> k :: x) tbl []\n\
     let b tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n"
  in
  check (Alcotest.list Alcotest.string) "file-wide allow silences all" []
    (rules (lint file_wide));
  check Alcotest.int "file-wide allow counts each site" 2
    (suppressed file_wide);
  (* an allow for one rule does not leak onto another *)
  check (Alcotest.list Alcotest.string) "wrong-rule allow does not silence"
    [ "D2" ]
    (rules
       (lint
          "let ks tbl = (Hashtbl.fold [@lint.allow \"D1\"]) (fun k _ a -> k :: a) tbl []"))

let test_syntax_error () =
  match lint "let let = in" with
  | [ d ] ->
      check Alcotest.string "syntax rule" "syntax" d.L.rule;
      check Alcotest.bool "positioned" true (d.L.line >= 1)
  | ds -> Alcotest.failf "expected 1 syntax diagnostic, got %d" (List.length ds)

(* ---- D5 + tree scan ---------------------------------------------------------- *)

let with_fixture_tree f =
  let root = Filename.temp_file "lint" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let rec rm p =
    if Sys.is_directory p then (
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p)
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm root) (fun () -> f root)

let write root rel content =
  let rec ensure d =
    if not (Sys.file_exists d) then (
      ensure (Filename.dirname d);
      Sys.mkdir d 0o755)
  in
  let full = Filename.concat root rel in
  ensure (Filename.dirname full);
  Out_channel.with_open_text full (fun oc ->
      Out_channel.output_string oc content)

let test_d5_and_run () =
  with_fixture_tree (fun root ->
      write root "lib/kws/good.ml" "let x = 1";
      write root "lib/kws/good.mli" "val x : int";
      write root "lib/kws/naked.ml" "let y = 2";
      write root "bin/tool.ml" "let () = print_string \"hi\"";
      let r = L.run ~root in
      check Alcotest.int "all files scanned" 4 r.L.files_scanned;
      (match r.L.diagnostics with
      | [ d ] ->
          check Alcotest.string "D5 fires" "D5" d.L.rule;
          check Alcotest.string "on the naked module" "lib/kws/naked.ml"
            d.L.file;
          check Alcotest.bool "as a warning" true (d.L.severity = L.Warning)
      | ds -> Alcotest.failf "expected exactly the D5 warning, got %d" (List.length ds));
      check
        (Alcotest.list Alcotest.string)
        "scan is sorted"
        [ "bin/tool.ml"; "lib/kws/good.ml"; "lib/kws/good.mli";
          "lib/kws/naked.ml" ]
        (L.scan_files ~root))

(* The repo's own sources are lint-clean. dune runs tests from
   _build/default/test, so ".." is the build copy of the tree; the
   authoritative source-tree run is the @lint alias. *)
let test_real_tree_clean () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let r = L.run ~root:".." in
    check Alcotest.bool "scanned something" true (r.L.files_scanned > 0);
    List.iter
      (fun d -> Alcotest.failf "unexpected finding: %s" (Format.asprintf "%a" L.pp_diagnostic d))
      r.L.diagnostics
  end

(* ---- JSON round-trips --------------------------------------------------------- *)

let sample_diags =
  [
    {
      L.rule = "D2";
      file = "lib/kws/inc_kws.ml";
      line = 42;
      col = 7;
      severity = L.Error;
      message = "Hashtbl.fold iterates in hash order";
    };
    {
      L.rule = "D5";
      file = "lib/rpq/pgraph.ml";
      line = 1;
      col = 0;
      severity = L.Warning;
      message = "lib/ module has no interface (.mli)";
    };
  ]

let test_baseline_roundtrip () =
  let json = L.baseline_to_json sample_diags in
  match J.parse (J.to_string ~indent:true json) with
  | Error e -> Alcotest.fail ("baseline reparse failed: " ^ e)
  | Ok j -> (
      match L.diagnostics_of_json j with
      | Error e -> Alcotest.fail ("baseline decode failed: " ^ e)
      | Ok ds ->
          check Alcotest.bool "round-trips exactly" true (ds = sample_diags);
          let kept, matched, stale =
            L.subtract_baseline ~baseline:ds sample_diags
          in
          check Alcotest.int "baseline swallows all" 0 (List.length kept);
          check Alcotest.int "matched count" 2 matched;
          check Alcotest.int "no stale entries" 0 (List.length stale);
          let fresh = { (List.hd sample_diags) with L.line = 43 } in
          let kept, matched, stale =
            L.subtract_baseline ~baseline:ds (fresh :: sample_diags)
          in
          check Alcotest.int "moved finding resurfaces" 1 (List.length kept);
          check Alcotest.int "others still matched" 2 matched;
          check Alcotest.int "still no stale entries" 0 (List.length stale);
          (* A baseline entry whose finding is gone is reported stale. *)
          let kept, matched, stale =
            L.subtract_baseline ~baseline:ds [ List.hd sample_diags ]
          in
          check Alcotest.int "nothing new" 0 (List.length kept);
          check Alcotest.int "one still matched" 1 matched;
          check Alcotest.int "one stale" 1 (List.length stale);
          check Alcotest.string "the vanished entry is the stale one"
            "lib/rpq/pgraph.ml"
            (List.hd stale).L.file)

let test_report_validates () =
  let r =
    {
      L.diagnostics = sample_diags;
      suppressed = 5;
      files_scanned = 103;
      summaries = [];
    }
  in
  let json = L.report_to_json ~baselined:1 r in
  (match L.validate json with
  | Ok (v, n) ->
      check Alcotest.int "schema version" L.report_schema_version v;
      check Alcotest.int "diagnostic count" 2 n
  | Error e -> Alcotest.fail ("fresh report rejected: " ^ e));
  (* v1 reports (no phase-2 aggregates) stay accepted. *)
  (match
     L.validate
       (J.Obj
          [
            ("tool", J.Str "incgraph-lint");
            ("schema_version", J.Int 1);
            ("files_scanned", J.Int 10);
            ("suppressed", J.Int 0);
            ("diagnostics", J.Arr []);
          ])
   with
  | Ok (v, n) ->
      check Alcotest.int "v1 version" 1 v;
      check Alcotest.int "v1 count" 0 n
  | Error e -> Alcotest.fail ("v1 report rejected: " ^ e));
  (* ...but a report *claiming* v2 without the aggregates is rejected. *)
  (match
     L.validate
       (J.Obj
          [
            ("tool", J.Str "incgraph-lint");
            ("schema_version", J.Int 2);
            ("files_scanned", J.Int 10);
            ("suppressed", J.Int 0);
            ("diagnostics", J.Arr []);
          ])
   with
  | Ok _ -> Alcotest.fail "validator accepted a gutted v2 report"
  | Error _ -> ());
  (match L.validate (J.Obj [ ("tool", J.Str "incgraph-lint") ]) with
  | Ok _ -> Alcotest.fail "validator accepted a gutted report"
  | Error _ -> ());
  match
    L.validate (J.Obj [ ("tool", J.Str "other"); ("schema_version", J.Int 1) ])
  with
  | Ok _ -> Alcotest.fail "validator accepted a foreign tool"
  | Error _ -> ()

(* ---- cross-module phase: summaries ------------------------------------------- *)

let summarize ?intf ~path src =
  match S.of_source ~path ?intf src with
  | Ok s -> s
  | Error e -> Alcotest.failf "summary extraction failed for %s: %s" path e

(* dune runtest runs from _build/default/test; dune exec from the root. *)
let read_fixture name =
  let dir =
    if Sys.file_exists "lint_fixtures" then "lint_fixtures"
    else Filename.concat "test" "lint_fixtures"
  in
  In_channel.with_open_text (Filename.concat dir name) In_channel.input_all

let export_effect s name =
  match
    List.find_opt (fun (x : S.export) -> x.S.x_name = name) s.S.exports
  with
  | Some x -> S.effect_name x.S.x_effect
  | None -> Alcotest.failf "export %s missing from summary" name

let effect_src =
  "let count t = Hashtbl.length t\n\
   let bump r = incr r\n\
   let log x = print_endline x\n\
   let g = ref 0 [@@lint.allow \"D6\"]\n\
   let poke () = g := 1\n\
   let chain () = poke ()\n"

let test_effect_classification () =
  let s = summarize ~path:"lib/kws/fx.ml" effect_src in
  check Alcotest.string "read-only is pure" "pure" (export_effect s "count");
  check Alcotest.string "incr on a param mutates the argument"
    "mutates-argument" (export_effect s "bump");
  check Alcotest.string "print is io" "does-io" (export_effect s "log");
  check Alcotest.string "writing a module-scope ref mutates global state"
    "mutates-global" (export_effect s "poke");
  check Alcotest.string
    "mutates-global transmits through the local call fixpoint"
    "mutates-global" (export_effect s "chain");
  (* An interface restricts the export list. *)
  let s = summarize ~path:"lib/kws/fx.ml" ~intf:"val count : 'a -> int" effect_src in
  check
    (Alcotest.list Alcotest.string)
    "mli filters exports" [ "count" ]
    (List.map (fun (x : S.export) -> x.S.x_name) s.S.exports);
  (* Mutating locally allocated state stays invisible. *)
  let s =
    summarize ~path:"lib/kws/fx.ml"
      "let scratch n =\n\
      \  let t = Hashtbl.create n in\n\
      \  Hashtbl.replace t 0 1;\n\
      \  Hashtbl.length t\n"
  in
  check Alcotest.string "fresh-state mutation is pure" "pure"
    (export_effect s "scratch");
  (* Array.sort mutates its *last* argument, not the compare function. *)
  let s =
    summarize ~path:"lib/kws/fx.ml"
      "let sorted l =\n\
      \  let a = Array.of_list l in\n\
      \  Array.sort Int.compare a;\n\
      \  a\n"
  in
  check Alcotest.string "sorting a fresh array is pure" "pure"
    (export_effect s "sorted")

let test_summary_roundtrip () =
  let src = read_fixture "d7_adjacency.ml" in
  let s = summarize ~path:"lib/kws/d7_adjacency.ml" src in
  check Alcotest.bool "summary has the mutation" true
    (s.S.graph_mutations <> []);
  let json = S.to_json s in
  (match J.parse (J.to_string ~indent:true json) with
  | Error e -> Alcotest.fail ("summary reparse failed: " ^ e)
  | Ok j -> (
      match S.of_json j with
      | Error e -> Alcotest.fail ("summary decode failed: " ^ e)
      | Ok s' -> check Alcotest.bool "round-trips exactly" true (s = s')));
  (match S.validate json with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("validator rejected a fresh summary: " ^ e));
  match S.validate (J.Obj [ ("tool", J.Str S.tool_name) ]) with
  | Ok _ -> Alcotest.fail "validator accepted a gutted summary"
  | Error _ -> ()

(* ---- cross-module phase: the D6-D8 fixture battery ---------------------------- *)

(* Each fixture is analyzed under a simulated lib/kws/ path — an engine
   directory, i.e. a D6-reachability root — and must produce exactly
   the expected (rules, suppressed) outcome. *)
let fixture_outcome ?(dir = "lib/kws/") name =
  let src = read_fixture name in
  let s = summarize ~path:(dir ^ name) src in
  let ds, supp = I.analyze [ s ] in
  (List.map (fun (d : L.diagnostic) -> d.L.rule) ds, supp)

let check_fixture ?dir name (rules, supp) =
  let got = fixture_outcome ?dir name in
  check
    (Alcotest.pair (Alcotest.list Alcotest.string) Alcotest.int)
    name (rules, supp) got

let test_d6_fixtures () =
  check_fixture "d6_global_ref.ml" ([ "D6" ], 0);
  check_fixture "d6_allowed.ml" ([], 1);
  check_fixture "d6_clean.ml" ([], 0);
  (* The same global in a module *not* reachable from the engine roots
     is a census warning, not an error. *)
  let src = read_fixture "d6_global_ref.ml" in
  let s = summarize ~path:"lib/theory/d6_global_ref.ml" src in
  (match I.analyze [ s ] with
  | [ d ], 0 ->
      check Alcotest.string "still D6" "D6" d.L.rule;
      check Alcotest.bool "census severity is warning" true
        (d.L.severity = L.Warning)
  | ds, _ -> Alcotest.failf "expected one census warning, got %d" (List.length ds));
  (* ...and errors again once an engine module depends on it. *)
  let user =
    summarize ~path:"lib/kws/uses.ml" "let f () = D6_global_ref.bump ()"
  in
  match I.analyze [ s; user ] with
  | [ d ], 0 -> check Alcotest.bool "reachable now: error" true (d.L.severity = L.Error)
  | ds, _ -> Alcotest.failf "expected one error, got %d" (List.length ds)

let test_d7_fixtures () =
  check_fixture "d7_bigarray.ml" ([ "D7" ], 0);
  check_fixture "d7_adjacency.ml" ([ "D7" ], 0);
  check_fixture "d7_graph_local.ml" ([ "D7" ], 0);
  check_fixture "d7_clean.ml" ([], 0);
  (* Inside lib/graph the same writes are the backend's own business. *)
  check_fixture ~dir:"lib/graph/" "d7_adjacency.ml" ([], 0);
  (* An annotated site is suppressed, and counted. *)
  let s =
    summarize ~path:"lib/kws/annotated.ml"
      "type g = { succ : (int, int list) Hashtbl.t }\n\
       let link g u vs = (Hashtbl.replace g.succ u vs [@lint.allow \"D7\"])\n"
  in
  check
    (Alcotest.pair (Alcotest.list Alcotest.string) Alcotest.int)
    "annotated D7 site" ([], 1)
    (let ds, supp = I.analyze [ s ] in
     (List.map (fun (d : L.diagnostic) -> d.L.rule) ds, supp))

let test_d8_fixtures () =
  check_fixture "d8_bare_span.ml" ([ "D8" ], 0);
  check_fixture "d8_protected.ml" ([], 0);
  check_fixture "d8_combinator.ml" ([], 0)

let test_d2_to_seq_fixture () =
  let src = read_fixture "d2_to_seq.ml" in
  check
    (Alcotest.list Alcotest.string)
    "to_seq flagged under lib/" [ "D2" ]
    (rules (lint ~path:"lib/kws/d2_to_seq.ml" src))

(* Two full runs over the repo tree must render byte-identical reports
   (the list orders and json emission are all explicitly sorted). The
   cross-process, cross-hash-seed version of this check is the
   @lint-determinism alias. *)
let test_report_determinism () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let render () =
      let r = L.run ~root:".." in
      J.to_string ~indent:true (L.report_to_json r)
    in
    let a = render () and b = render () in
    check Alcotest.string "byte-identical reports" a b;
    let dot () = I.effect_graph_dot (L.run ~root:"..").L.summaries in
    check Alcotest.string "byte-identical effect graphs" (dot ()) (dot ())
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D1 polymorphic compare" `Quick test_d1_compare;
          Alcotest.test_case "D2 unordered iteration" `Quick test_d2_iteration;
          Alcotest.test_case "D3 ambient nondeterminism" `Quick
            test_d3_ambient;
          Alcotest.test_case "D3 filesystem access" `Quick test_d3_filesystem;
          Alcotest.test_case "D4 instrumentation" `Quick
            test_d4_instrumentation;
          Alcotest.test_case "D4 storage entry points" `Quick test_d4_storage;
          Alcotest.test_case "syntax errors are diagnostics" `Quick
            test_syntax_error;
        ] );
      ( "suppression",
        [ Alcotest.test_case "allow attributes" `Quick test_suppression ] );
      ( "tree",
        [
          Alcotest.test_case "D5 and directory scan" `Quick test_d5_and_run;
          Alcotest.test_case "repo sources are clean" `Quick
            test_real_tree_clean;
        ] );
      ( "json",
        [
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "report validates" `Quick test_report_validates;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "effect classification" `Quick
            test_effect_classification;
          Alcotest.test_case "summary round-trip" `Quick
            test_summary_roundtrip;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "D6 fixtures" `Quick test_d6_fixtures;
          Alcotest.test_case "D7 fixtures" `Quick test_d7_fixtures;
          Alcotest.test_case "D8 fixtures" `Quick test_d8_fixtures;
          Alcotest.test_case "D2 to_seq fixture" `Quick
            test_d2_to_seq_fixture;
          Alcotest.test_case "report determinism" `Quick
            test_report_determinism;
        ] );
    ]
