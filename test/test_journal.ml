(* The durability battery (lib/journal): qcheck round-trips of the framed
   record codec over arbitrary ops and labels (including the full
   256-byte corpus), crash injection truncating AND corrupting the
   journal at every byte boundary of the final record — recovery must
   either replay the full committed prefix or cleanly drop the torn tail,
   never raise, never apply half a batch — snapshot self-checksums, and
   store-level do/undo/recover round-trips verified by graph digests. *)

module D = Ig_graph.Digraph
module R = Ig_journal.Record
module J = Ig_journal.Journal
module Sn = Ig_journal.Snapshot
module St = Ig_journal.Store

let check = Alcotest.check

(* ---- fixtures ------------------------------------------------------------ *)

(* Fresh working directories under the test's cwd (the dune build dir). *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "tj_scratch_%d" !n in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

let mk_graph () =
  let g = D.create () in
  for _ = 0 to 5 do
    ignore (D.add_node g "x")
  done;
  List.iter
    (fun (u, v) -> ignore (D.add_edge g u v))
    [ (0, 1); (1, 2); (2, 0); (3, 4) ];
  g

let header_of g =
  {
    R.version = R.format_version;
    cls = "scc";
    bound = 0;
    qargs = [];
    base_digest = J.graph_digest g;
  }

let mk_store dir =
  let g = mk_graph () in
  (St.init ~dir ~header:(header_of g) ~client:(St.graph_client g) (), g)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- record codec: qcheck round-trips ------------------------------------ *)

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun u v -> R.Upsert_edge (u, v)) small_nat small_nat;
        map2 (fun u v -> R.Tombstone_edge (u, v)) small_nat small_nat;
        map2
          (fun id l -> R.Upsert_node (id, l))
          small_nat
          (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40));
        map (fun id -> R.Tombstone_node id) small_nat;
      ])

let hex_gen = QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; '0' ]) (return 32))

let batch_gen =
  QCheck.Gen.(
    map
      (fun ((seq, k), (ops, (pre, post))) ->
        let kind = match k with None -> R.Do | Some n -> R.Undo n in
        { R.seq; kind; ops; pre; post })
      (pair
         (pair small_nat (opt (int_range 1 9)))
         (pair (list_size (int_range 0 12) op_gen) (pair hex_gen hex_gen))))

let header_gen =
  QCheck.Gen.(
    map
      (fun ((cls, bound), (qargs, base_digest)) ->
        { R.version = R.format_version; cls; bound; qargs; base_digest })
      (pair
         (pair (string_size ~gen:printable (int_range 0 10)) small_nat)
         (pair
            (list_size (int_range 0 5)
               (string_size
                  ~gen:(map Char.chr (int_range 0 255))
                  (int_range 0 20)))
            hex_gen)))

let payload_gen =
  QCheck.Gen.(
    oneof
      [ map (fun h -> R.Header h) header_gen; map (fun b -> R.Batch b) batch_gen ])

let roundtrip p =
  let framed = R.frame (R.encode_payload p) in
  match R.read_record framed ~pos:0 with
  | Ok (p', pos) -> p' = p && pos = String.length framed
  | Error _ -> false

let qcheck_roundtrip =
  QCheck.Test.make ~name:"framed payload decodes to itself" ~count:500
    (QCheck.make payload_gen) roundtrip

(* A record whose label walks the whole byte alphabet (the all-256-bytes
   corpus): framing, checksumming and label escaping must all survive. *)
let test_all_bytes_label () =
  let label = String.init 256 Char.chr in
  let b =
    {
      R.seq = 1;
      kind = R.Do;
      ops = [ R.Upsert_node (7, label); R.Upsert_edge (0, 7) ];
      pre = String.make 32 'a';
      post = String.make 32 'b';
    }
  in
  check Alcotest.bool "256-byte label round-trips" true (roundtrip (R.Batch b))

let test_read_record_errors () =
  let framed = R.frame (R.encode_payload (R.Header (header_of (mk_graph ())))) in
  (* every strict prefix is Truncated or Corrupt, never an exception *)
  for len = 0 to String.length framed - 1 do
    match R.read_record (String.sub framed 0 len) ~pos:0 with
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" len
    | Error _ -> ()
  done;
  (* a flipped payload byte must trip the checksum *)
  let body = Bytes.of_string framed in
  Bytes.set body 6 (Char.chr (Char.code (Bytes.get body 6) lxor 0xff));
  match R.read_record (Bytes.to_string body) ~pos:0 with
  | Ok _ -> Alcotest.fail "corrupted record decoded"
  | Error (R.Corrupt _) | Error R.Truncated -> ()

let test_op_ids_deterministic () =
  let op = R.Upsert_edge (3, 7) in
  let id = R.op_id ~seq:4 ~index:1 op in
  check Alcotest.int "hex md5 length" 32 (String.length id);
  check Alcotest.string "derived, stable" id (R.op_id ~seq:4 ~index:1 op);
  check Alcotest.bool "position-sensitive" false
    (id = R.op_id ~seq:4 ~index:2 op)

(* ---- op semantics -------------------------------------------------------- *)

let test_effective_ops () =
  let g = mk_graph () in
  (* duplicate insert and absent delete are no-ops *)
  check Alcotest.int "duplicate insert drops" 0
    (List.length (J.effective_ops g [ D.Insert (0, 1) ]));
  check Alcotest.int "absent delete drops" 0
    (List.length (J.effective_ops g [ D.Delete (4, 5) ]));
  (* within-batch dependency: insert then delete of an absent edge *)
  check Alcotest.int "insert+delete both effective" 2
    (List.length (J.effective_ops g [ D.Insert (4, 5); D.Delete (4, 5) ]));
  (* the graph itself is untouched by normalization *)
  check Alcotest.bool "graph unmodified" false (D.mem_edge g 4 5)

let test_apply_op_idempotent () =
  let g = mk_graph () in
  let d0 = J.graph_digest g in
  J.apply_op g (R.Upsert_edge (4, 5));
  let d1 = J.graph_digest g in
  J.apply_op g (R.Upsert_edge (4, 5));
  check Alcotest.string "second upsert is a no-op" d1 (J.graph_digest g);
  J.apply_op g (R.Tombstone_edge (4, 5));
  J.apply_op g (R.Tombstone_edge (4, 5));
  check Alcotest.string "tombstones idempotent too" d0 (J.graph_digest g)

let test_invert () =
  (match J.invert [ R.Upsert_edge (1, 2); R.Tombstone_edge (3, 4) ] with
  | Ok inv ->
      check Alcotest.bool "inverses in reverse order" true
        (inv = [ R.Upsert_edge (3, 4); R.Tombstone_edge (1, 2) ])
  | Error e -> Alcotest.fail e);
  match J.invert [ R.Upsert_node (9, "x") ] with
  | Ok _ -> Alcotest.fail "monotone node op inverted"
  | Error _ -> ()

(* ---- crash injection at every byte boundary ------------------------------ *)

(* Byte offsets where each framed record starts, walking the file with the
   codec itself. *)
let record_offsets src =
  let rec go pos acc =
    if pos >= String.length src then List.rev acc
    else
      match R.read_record src ~pos with
      | Ok (_, next) -> go next (pos :: acc)
      | Error _ -> List.rev acc
  in
  go (String.length R.magic) []

let mk_journal_with_batches dir =
  let store, _ = mk_store dir in
  List.iter
    (fun u -> ignore (St.do_batch store [ u ]))
    [ D.Insert (4, 5); D.Insert (5, 3); D.Delete (0, 1) ];
  let path = St.journal_path ~dir in
  St.close store;
  path

(* Truncate the journal to every length inside the final record: the scan
   must keep every earlier batch, report the tail torn at the final
   record's offset, and repair must restore a clean journal. *)
let test_truncate_every_boundary () =
  let dir = fresh_dir () in
  let path = mk_journal_with_batches dir in
  let src = read_file path in
  let offsets = record_offsets src in
  let last = List.nth offsets (List.length offsets - 1) in
  let scratch = Filename.concat dir "truncated.igj" in
  (* cutting exactly at the record boundary leaves a shorter clean file *)
  write_file scratch (String.sub src 0 last);
  (match J.scan ~path:scratch with
  | Ok { J.tail = J.Clean; batches; _ } ->
      check Alcotest.int "boundary cut is clean" 2 (List.length batches)
  | Ok _ -> Alcotest.fail "boundary cut reported torn"
  | Error e -> Alcotest.failf "boundary cut unreadable: %s" e);
  for len = last + 1 to String.length src - 1 do
    write_file scratch (String.sub src 0 len);
    match J.scan ~path:scratch with
    | Error e -> Alcotest.failf "truncation to %d: unreadable: %s" len e
    | Ok s -> (
        check Alcotest.int
          (Printf.sprintf "truncation to %d keeps committed prefix" len)
          2
          (List.length s.J.batches);
        match s.J.tail with
        | J.Clean -> Alcotest.failf "truncation to %d reported clean" len
        | J.Torn { offset; dropped; _ } ->
            check Alcotest.int "tear at the final record" last offset;
            check Alcotest.int "dropped bytes" (len - last) dropped;
            (match J.repair ~path:scratch with
            | Error e -> Alcotest.failf "repair at %d: %s" len e
            | Ok n -> check Alcotest.int "repair drops the tail" (len - last) n);
            (match J.scan ~path:scratch with
            | Ok { J.tail = J.Clean; batches; _ } ->
                check Alcotest.int "clean after repair" 2 (List.length batches)
            | Ok _ -> Alcotest.failf "still torn after repair at %d" len
            | Error e -> Alcotest.failf "unreadable after repair: %s" e))
  done

(* Flip every byte of the final record in turn: the checksummed frame must
   reject the record as a unit — two committed batches survive, nothing
   half-applied, no exception. *)
let test_corrupt_every_byte () =
  let dir = fresh_dir () in
  let path = mk_journal_with_batches dir in
  let src = read_file path in
  let offsets = record_offsets src in
  let last = List.nth offsets (List.length offsets - 1) in
  let scratch = Filename.concat dir "corrupt.igj" in
  for i = last to String.length src - 1 do
    let b = Bytes.of_string src in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
    write_file scratch (Bytes.to_string b);
    match J.scan ~path:scratch with
    | Error e -> Alcotest.failf "corruption at byte %d: unreadable: %s" i e
    | Ok s ->
        check Alcotest.int
          (Printf.sprintf "corruption at byte %d drops the record whole" i)
          2
          (List.length s.J.batches);
        check Alcotest.bool "tail reported torn" true (s.J.tail <> J.Clean)
  done

(* ---- snapshots ----------------------------------------------------------- *)

let test_snapshot_checksum () =
  let dir = fresh_dir () in
  let store, g = mk_store dir in
  ignore (St.do_batch store [ D.Insert (4, 5) ]);
  let p = St.snapshot store in
  St.close store;
  (match Sn.load ~path:p with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check Alcotest.int "snapshot at tip" 1 s.Sn.seq;
      check Alcotest.string "graph digest matches the live graph"
        (J.graph_digest g) s.Sn.graph_digest);
  (* tampering with one byte must fail the self-checksum *)
  let src = read_file p in
  let i = String.index src ':' in
  let b = Bytes.of_string src in
  Bytes.set b i ';';
  write_file p (Bytes.to_string b);
  match Sn.load ~path:p with
  | Ok _ -> Alcotest.fail "tampered snapshot validated"
  | Error _ -> ()

(* A corrupt newest snapshot must not strand recovery: plan falls back to
   an older intact one. *)
let test_plan_skips_corrupt_snapshot () =
  let dir = fresh_dir () in
  let store, _ = mk_store dir in
  ignore (St.do_batch store [ D.Insert (4, 5) ]);
  let p = St.snapshot store in
  ignore (St.do_batch store [ D.Insert (5, 3) ]);
  St.close store;
  write_file p "{ not a snapshot";
  match St.plan ~dir () with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      check Alcotest.int "fell back to snapshot-0" 0 plan.St.snapshot.Sn.seq;
      check Alcotest.int "replays the whole journal" 2
        (List.length plan.St.replay)

(* ---- store round-trips --------------------------------------------------- *)

let test_do_undo_recover () =
  let dir = fresh_dir () in
  let store, _ = mk_store dir in
  let d0 = St.digest store in
  ignore (St.do_batch store [ D.Insert (4, 5) ]);
  let d1 = St.digest store in
  ignore (St.do_batch store [ D.Insert (5, 3); D.Delete (0, 1) ]);
  (* undo(do(G)) = G, digest-for-digest *)
  (match St.undo store ~k:1 with
  | Error e -> Alcotest.fail e
  | Ok _ -> check Alcotest.string "undo 1 restores" d1 (St.digest store));
  (* the last two batches are now {undo of seq 2, seq 2}: rolling both
     back is a wash — the target is the pre of the oldest undone batch *)
  (match St.undo store ~k:2 with
  | Error e -> Alcotest.fail e
  | Ok _ -> check Alcotest.string "undo spanning an undo" d1 (St.digest store));
  (* rolling back the entire history lands at the base *)
  (match St.undo store ~k:(St.tip store) with
  | Error e -> Alcotest.fail e
  | Ok _ -> check Alcotest.string "full rollback" d0 (St.digest store));
  check Alcotest.bool "no-op batches are not journaled" true
    (St.do_batch store [ D.Delete (4, 5) ] = None);
  let tip = St.tip store in
  St.close store;
  (* crash-recover: rebuild from snapshot-0, replay everything *)
  match St.plan ~from_scratch:true ~dir () with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      let g = Sn.graph plan.St.snapshot in
      match St.attach ~dir ~plan ~client:(St.graph_client g) () with
      | Error e -> Alcotest.fail e
      | Ok st ->
          check Alcotest.int "tip survives recovery" tip (St.tip st);
          check Alcotest.string "replay reproduces the digest" d0
            (St.digest st);
          check Alcotest.bool "writable at the tip" true (St.writable st);
          St.close st)

let test_undo_of_undo_is_redo () =
  let dir = fresh_dir () in
  let store, _ = mk_store dir in
  ignore (St.do_batch store [ D.Insert (4, 5) ]);
  let after = St.digest store in
  (match St.undo store ~k:1 with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  (match St.undo store ~k:1 with
  | Error e -> Alcotest.fail e
  | Ok _ -> check Alcotest.string "redo" after (St.digest store));
  St.close store

let test_as_of_time_travel () =
  let dir = fresh_dir () in
  let store, _ = mk_store dir in
  ignore (St.do_batch store [ D.Insert (4, 5) ]);
  let d1 = St.digest store in
  ignore (St.do_batch store [ D.Insert (5, 3) ]);
  St.close store;
  match St.plan ~as_of:1 ~dir () with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      let g = Sn.graph plan.St.snapshot in
      match St.attach ~dir ~plan ~client:(St.graph_client g) () with
      | Error e -> Alcotest.fail e
      | Ok st ->
          check Alcotest.string "state as of seq 1" d1 (St.digest st);
          check Alcotest.bool "historical stores are read-only" false
            (St.writable st);
          (match St.undo st ~k:1 with
          | Ok _ -> Alcotest.fail "appended to a rewound history"
          | Error _ | (exception Failure _) -> ());
          St.close st)

(* A crash between the write-ahead append and the engine apply: the
   journal has the batch, the engine does not. Recovery replays it. *)
let test_write_ahead_crash () =
  let dir = fresh_dir () in
  let store, _ = mk_store dir in
  ignore (St.do_batch store [ D.Insert (4, 5) ]);
  St.append_unapplied_for_crash_testing store [ D.Insert (5, 3) ];
  let tip = St.tip store in
  St.close store;
  match St.plan ~from_scratch:true ~dir () with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      check Alcotest.int "unapplied batch is committed" tip plan.St.tip;
      let g = Sn.graph plan.St.snapshot in
      match St.attach ~dir ~plan ~client:(St.graph_client g) () with
      | Error e -> Alcotest.fail e
      | Ok st ->
          check Alcotest.bool "journal wins after the crash" true
            (D.mem_edge g 5 3);
          St.close st)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_journal"
    [
      ( "codec",
        qsuite [ qcheck_roundtrip ]
        @ [
            Alcotest.test_case "all-256-bytes label" `Quick test_all_bytes_label;
            Alcotest.test_case "prefixes and flips error out" `Quick
              test_read_record_errors;
            Alcotest.test_case "op ids deterministic" `Quick
              test_op_ids_deterministic;
          ] );
      ( "ops",
        [
          Alcotest.test_case "effective normalization" `Quick
            test_effective_ops;
          Alcotest.test_case "idempotent replay" `Quick
            test_apply_op_idempotent;
          Alcotest.test_case "inversion" `Quick test_invert;
        ] );
      ( "crash injection",
        [
          Alcotest.test_case "truncate every boundary" `Quick
            test_truncate_every_boundary;
          Alcotest.test_case "corrupt every byte" `Quick
            test_corrupt_every_byte;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "self-checksum" `Quick test_snapshot_checksum;
          Alcotest.test_case "corrupt snapshot skipped" `Quick
            test_plan_skips_corrupt_snapshot;
        ] );
      ( "store",
        [
          Alcotest.test_case "do/undo/recover" `Quick test_do_undo_recover;
          Alcotest.test_case "undo of undo is redo" `Quick
            test_undo_of_undo_is_redo;
          Alcotest.test_case "as-of time travel" `Quick test_as_of_time_travel;
          Alcotest.test_case "write-ahead crash" `Quick test_write_ahead_crash;
        ] );
    ]
