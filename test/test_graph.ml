(* Unit and property tests for the graph substrate: Vec, Interner, Digraph,
   Pqueue, Rank, Traverse, Io. *)

open Ig_graph

let check = Alcotest.check
let intl = Alcotest.(list int)

(* ---- Vec --------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    check Alcotest.int "index" i (Vec.push v (i * 2))
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "get" (i * 2) (Vec.get v i)
  done

let test_vec_set () =
  let v = Vec.make 3 0 in
  Vec.set v 1 42;
  check intl "contents" [ 0; 42; 0 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.make 2 0 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 2));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> Vec.set v (-1) 0)

let test_vec_clear () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Vec.clear v;
  check Alcotest.int "empty" 0 (Vec.length v);
  check Alcotest.int "reuse" 0 (Vec.push v 5)

let test_vec_fold_iter () =
  let v = Vec.create () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3; 4 ];
  check Alcotest.int "fold" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check
    Alcotest.(list (pair int int))
    "iteri"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]
    (List.rev !acc)

(* ---- Interner ----------------------------------------------------------- *)

let test_interner_roundtrip () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check Alcotest.int "stable" a (Interner.intern t "alpha");
  check Alcotest.bool "distinct" true (a <> b);
  check Alcotest.string "name a" "alpha" (Interner.name t a);
  check Alcotest.string "name b" "beta" (Interner.name t b);
  check Alcotest.int "size" 2 (Interner.size t);
  check Alcotest.(option int) "find hit" (Some a) (Interner.find t "alpha");
  check Alcotest.(option int) "find miss" None (Interner.find t "gamma")

let test_interner_bad_symbol () =
  let t = Interner.create () in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Interner.name: unknown symbol") (fun () ->
      ignore (Interner.name t 0))

(* ---- Digraph ------------------------------------------------------------ *)

let mk_path n =
  (* 0 -> 1 -> ... -> n-1, all labeled "x" *)
  let g = Digraph.create () in
  for _ = 1 to n do
    ignore (Digraph.add_node g "x")
  done;
  for i = 0 to n - 2 do
    ignore (Digraph.add_edge g i (i + 1))
  done;
  g

let test_digraph_basics () =
  let g = Digraph.create () in
  let a = Digraph.add_node g "a" in
  let b = Digraph.add_node g "b" in
  let c = Digraph.add_node g "a" in
  check Alcotest.int "nodes" 3 (Digraph.n_nodes g);
  check Alcotest.bool "edge new" true (Digraph.add_edge g a b);
  check Alcotest.bool "edge dup" false (Digraph.add_edge g a b);
  check Alcotest.int "edges" 1 (Digraph.n_edges g);
  check Alcotest.bool "mem" true (Digraph.mem_edge g a b);
  check Alcotest.bool "not mem" false (Digraph.mem_edge g b a);
  check Alcotest.string "label" "b" (Digraph.label_name g b);
  check Alcotest.bool "same label shares symbol" true
    (Digraph.label g a = Digraph.label g c);
  check intl "by label" [ c; a ]
    (Digraph.nodes_with_label g (Digraph.label g a))

let test_digraph_remove () =
  let g = mk_path 3 in
  check Alcotest.bool "del" true (Digraph.remove_edge g 0 1);
  check Alcotest.bool "del again" false (Digraph.remove_edge g 0 1);
  check Alcotest.int "edges" 1 (Digraph.n_edges g);
  check Alcotest.int "out0" 0 (Digraph.out_degree g 0);
  check Alcotest.int "in1" 0 (Digraph.in_degree g 1)

let test_digraph_degrees () =
  let g = Digraph.create () in
  let a = Digraph.add_node g "a" in
  let b = Digraph.add_node g "b" in
  let c = Digraph.add_node g "c" in
  ignore (Digraph.add_edge g a b);
  ignore (Digraph.add_edge g a c);
  ignore (Digraph.add_edge g b c);
  check Alcotest.int "out a" 2 (Digraph.out_degree g a);
  check Alcotest.int "in c" 2 (Digraph.in_degree g c);
  check intl "succ a" [ b; c ] (List.sort compare (Digraph.succ_list g a));
  check intl "pred c" [ a; b ] (List.sort compare (Digraph.pred_list g c))

let test_digraph_self_loop () =
  let g = Digraph.create () in
  let a = Digraph.add_node g "a" in
  check Alcotest.bool "self loop" true (Digraph.add_edge g a a);
  check Alcotest.int "deg" 1 (Digraph.out_degree g a);
  check Alcotest.bool "remove" true (Digraph.remove_edge g a a)

let test_digraph_apply () =
  let g = mk_path 3 in
  Digraph.apply_batch g
    [ Digraph.Delete (0, 1); Digraph.Insert (2, 0); Digraph.Insert (2, 0) ];
  check Alcotest.bool "deleted" false (Digraph.mem_edge g 0 1);
  check Alcotest.bool "inserted" true (Digraph.mem_edge g 2 0);
  check Alcotest.int "edges" 2 (Digraph.n_edges g)

let test_digraph_copy () =
  let g = mk_path 3 in
  let g' = Digraph.copy g in
  ignore (Digraph.remove_edge g' 0 1);
  check Alcotest.bool "original intact" true (Digraph.mem_edge g 0 1);
  check Alcotest.bool "copy changed" false (Digraph.mem_edge g' 0 1)

let test_digraph_unknown_node () =
  let g = mk_path 2 in
  Alcotest.check_raises "bad edge" (Invalid_argument "Digraph: unknown node")
    (fun () -> ignore (Digraph.add_edge g 0 7))

(* ---- Pqueue ------------------------------------------------------------- *)

module PQ = Pqueue.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let test_pqueue_order () =
  let q = PQ.create () in
  List.iter (fun (k, p) -> PQ.insert q k p)
    [ (1, 5); (2, 3); (3, 8); (4, 1); (5, 4) ];
  let drained = ref [] in
  let rec drain () =
    match PQ.pull_min q with
    | None -> ()
    | Some (k, _) ->
        drained := k :: !drained;
        drain ()
  in
  drain ();
  check intl "min order" [ 4; 2; 5; 1; 3 ] (List.rev !drained)

let test_pqueue_decrease () =
  let q = PQ.create () in
  PQ.insert q 1 10;
  PQ.insert q 2 20;
  PQ.decrease q 2 5;
  PQ.decrease q 2 50 (* ignored: not a decrease *);
  check Alcotest.(option int) "prio" (Some 5) (PQ.priority q 2);
  check
    Alcotest.(option (pair int int))
    "min" (Some (2, 5)) (PQ.pull_min q);
  check
    Alcotest.(option (pair int int))
    "next" (Some (1, 10)) (PQ.pull_min q);
  check Alcotest.bool "empty" true (PQ.is_empty q)

let test_pqueue_insert_is_decrease () =
  let q = PQ.create () in
  PQ.insert q 7 9;
  PQ.insert q 7 3;
  check Alcotest.int "no duplicate" 1 (PQ.length q);
  check Alcotest.(option int) "lowered" (Some 3) (PQ.priority q 7)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted"
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let q = PQ.create () in
      let expect = Hashtbl.create 16 in
      List.iter
        (fun (k, p) ->
          PQ.insert q k p;
          (* Mimic insert-as-decrease semantics. *)
          match Hashtbl.find_opt expect k with
          | Some p' when p' <= p -> ()
          | _ -> Hashtbl.replace expect k p)
        pairs;
      let rec drain acc =
        match PQ.pull_min q with
        | None -> List.rev acc
        | Some (k, p) -> drain ((k, p) :: acc)
      in
      let drained = drain [] in
      let prios = List.map snd drained in
      List.sort compare prios = prios
      && List.length drained = Hashtbl.length expect
      && List.for_all (fun (k, p) -> Hashtbl.find expect k = p) drained)

(* ---- Rank ---------------------------------------------------------------- *)

let test_rank_order () =
  let r = Rank.create () in
  Rank.insert_top r 1;
  Rank.insert_top r 2;
  Rank.insert_bottom r 3;
  check Alcotest.bool "1 < 2" true (Rank.compare_items r 1 2 < 0);
  check Alcotest.bool "3 < 1" true (Rank.compare_items r 3 1 < 0);
  Rank.check r

let test_rank_reassign () =
  let r = Rank.create () in
  List.iter (fun x -> Rank.insert_top r x) [ 1; 2; 3; 4 ];
  (* Permute: desired ascending order 4 3 2 1. *)
  Rank.reassign r [ 4; 3; 2; 1 ];
  check Alcotest.bool "4 lowest" true (Rank.compare_items r 4 3 < 0);
  check Alcotest.bool "3 < 2" true (Rank.compare_items r 3 2 < 0);
  check Alcotest.bool "2 < 1" true (Rank.compare_items r 2 1 < 0);
  Rank.check r

let test_rank_split () =
  let r = Rank.create () in
  List.iter (fun x -> Rank.insert_top r x) [ 1; 2; 3 ];
  Rank.split r 2 ~parts:[ 10; 11; 12 ];
  check Alcotest.bool "gone" false (Rank.mem r 2);
  check Alcotest.bool "1 < 10" true (Rank.compare_items r 1 10 < 0);
  check Alcotest.bool "10 < 11" true (Rank.compare_items r 10 11 < 0);
  check Alcotest.bool "11 < 12" true (Rank.compare_items r 11 12 < 0);
  check Alcotest.bool "12 < 3" true (Rank.compare_items r 12 3 < 0);
  check Alcotest.int "size" 5 (Rank.size r);
  Rank.check r

let test_rank_split_relabel () =
  (* Force repeated splits in the same slot until a global relabel must
     trigger; order must survive. *)
  let r = Rank.create () in
  Rank.insert_top r 0;
  Rank.insert_top r 1;
  let next = ref 2 in
  let target = ref 0 in
  for _ = 1 to 40 do
    let a = !next and b = !next + 1 in
    next := !next + 2;
    Rank.split r !target ~parts:[ a; b ];
    check Alcotest.bool "a < b" true (Rank.compare_items r a b < 0);
    check Alcotest.bool "b < top" true (Rank.compare_items r b 1 < 0);
    target := a
  done;
  Rank.check r

let test_rank_take_give () =
  let r = Rank.create () in
  List.iter (fun x -> Rank.insert_top r x) [ 1; 2; 3; 4 ];
  (* Merge 2 and 3 into fresh 9 placed between 1 and 4. *)
  let labels = Rank.take_labels r [ 1; 2; 3 ] in
  check Alcotest.int "three labels" 3 (List.length labels);
  check Alcotest.bool "ascending" true
    (List.sort Int.compare labels = labels);
  (match labels with
  | [ l1; l2; _ ] ->
      Rank.give r 1 l1;
      Rank.give r 9 l2
  | _ -> assert false);
  check Alcotest.bool "2 retired" false (Rank.mem r 2);
  check Alcotest.bool "3 retired" false (Rank.mem r 3);
  check Alcotest.bool "1 < 9" true (Rank.compare_items r 1 9 < 0);
  check Alcotest.bool "9 < 4" true (Rank.compare_items r 9 4 < 0);
  Alcotest.check_raises "double give" (Invalid_argument "Rank.give: item present")
    (fun () -> Rank.give r 9 999);
  Rank.check r

(* ---- Traverse ------------------------------------------------------------ *)

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4 *)
  let g = Digraph.create () in
  for _ = 0 to 4 do
    ignore (Digraph.add_node g "x")
  done;
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g u v))
    [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ];
  g

let test_bfs_forward () =
  let g = diamond () in
  let d = Traverse.bfs ~dir:`Forward g [ 0 ] in
  check Alcotest.int "d0" 0 (Hashtbl.find d 0);
  check Alcotest.int "d3" 2 (Hashtbl.find d 3);
  check Alcotest.int "d4" 3 (Hashtbl.find d 4)

let test_bfs_backward_bounded () =
  let g = diamond () in
  let d = Traverse.bfs ~bound:1 ~dir:`Backward g [ 3 ] in
  check Alcotest.bool "has 1" true (Hashtbl.mem d 1);
  check Alcotest.bool "has 2" true (Hashtbl.mem d 2);
  check Alcotest.bool "0 beyond bound" false (Hashtbl.mem d 0)

let test_ball () =
  let g = diamond () in
  let b = Traverse.ball g [ 4 ] ~d:2 in
  (* undirected: 4 -(1)- 3 -(2)- 1,2 *)
  check Alcotest.int "size" 4 (Hashtbl.length b);
  check Alcotest.bool "0 out" false (Hashtbl.mem b 0);
  check Alcotest.int "d3" 1 (Hashtbl.find b 3)

let test_reaches () =
  let g = diamond () in
  check Alcotest.bool "0->4" true (Traverse.reaches g 0 4);
  check Alcotest.bool "4->0" false (Traverse.reaches g 4 0);
  check Alcotest.bool "restricted" false
    (Traverse.reaches ~within:(fun v -> v <> 3) g 0 4);
  check Alcotest.bool "self" true (Traverse.reaches g 2 2)

(* ---- sorted iteration ------------------------------------------------------ *)

(* The determinism contract behind lint rule D2: the sorted adjacency
   iterators visit neighbors in ascending node order, independent of
   insertion order and of the process hash seed. *)
let test_iter_sorted () =
  let g = Digraph.create () in
  for _ = 0 to 5 do
    ignore (Digraph.add_node g "x")
  done;
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g u v))
    [ (0, 4); (0, 1); (0, 5); (0, 2); (3, 0); (1, 0); (5, 0) ];
  let succs () =
    let acc = ref [] in
    Digraph.iter_succ_sorted (fun v -> acc := v :: !acc) g 0;
    List.rev !acc
  in
  check (Alcotest.list Alcotest.int) "ascending successors" [ 1; 2; 4; 5 ]
    (succs ());
  let preds = ref [] in
  Digraph.iter_pred_sorted (fun u -> preds := u :: !preds) g 0;
  check (Alcotest.list Alcotest.int) "ascending predecessors" [ 1; 3; 5 ]
    (List.rev !preds);
  (* stays sorted across deletions *)
  ignore (Digraph.remove_edge g 0 4);
  check (Alcotest.list Alcotest.int) "ascending after delete" [ 1; 2; 5 ]
    (succs ())

let test_edges_deterministic () =
  let g = Digraph.create () in
  for _ = 0 to 3 do
    ignore (Digraph.add_node g "x")
  done;
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g u v))
    [ (2, 1); (0, 3); (0, 1); (3, 2) ];
  let es = ref [] in
  Digraph.iter_edges (fun u v -> es := (u, v) :: !es) g;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "edges in ascending (src, dst) order"
    [ (0, 1); (0, 3); (2, 1); (3, 2) ]
    (List.rev !es)

(* ---- Io -------------------------------------------------------------------- *)

let test_io_roundtrip () =
  let g = diamond () in
  let s = Format.asprintf "%a" Io.write g in
  let g' = Io.of_string s in
  check Alcotest.int "nodes" (Digraph.n_nodes g) (Digraph.n_nodes g');
  check Alcotest.int "edges" (Digraph.n_edges g) (Digraph.n_edges g');
  Digraph.iter_edges
    (fun u v ->
      check Alcotest.bool "edge kept" true (Digraph.mem_edge g' u v))
    g

let test_io_errors () =
  let bad s =
    match Io.of_string s with
    | exception Failure _ -> true
    | _ -> false
  in
  check Alcotest.bool "undeclared" true (bad "e 0 1");
  check Alcotest.bool "garbage" true (bad "zzz");
  check Alcotest.bool "dup node" true (bad "v 0 a\nv 0 b");
  check Alcotest.bool "comments ok" false (bad "# hello\nv 0 a")

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_graph"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          Alcotest.test_case "fold/iter" `Quick test_vec_fold_iter;
        ] );
      ( "interner",
        [
          Alcotest.test_case "roundtrip" `Quick test_interner_roundtrip;
          Alcotest.test_case "bad symbol" `Quick test_interner_bad_symbol;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "remove" `Quick test_digraph_remove;
          Alcotest.test_case "degrees" `Quick test_digraph_degrees;
          Alcotest.test_case "self loop" `Quick test_digraph_self_loop;
          Alcotest.test_case "apply batch" `Quick test_digraph_apply;
          Alcotest.test_case "copy" `Quick test_digraph_copy;
          Alcotest.test_case "unknown node" `Quick test_digraph_unknown_node;
        ] );
      ( "pqueue",
        Alcotest.test_case "order" `Quick test_pqueue_order
        :: Alcotest.test_case "decrease" `Quick test_pqueue_decrease
        :: Alcotest.test_case "insert lowers" `Quick
             test_pqueue_insert_is_decrease
        :: qsuite [ prop_pqueue_sorts ] );
      ( "rank",
        [
          Alcotest.test_case "order" `Quick test_rank_order;
          Alcotest.test_case "reassign" `Quick test_rank_reassign;
          Alcotest.test_case "split" `Quick test_rank_split;
          Alcotest.test_case "split relabel" `Quick test_rank_split_relabel;
          Alcotest.test_case "take/give" `Quick test_rank_take_give;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs forward" `Quick test_bfs_forward;
          Alcotest.test_case "bfs backward bounded" `Quick
            test_bfs_backward_bounded;
          Alcotest.test_case "ball" `Quick test_ball;
          Alcotest.test_case "reaches" `Quick test_reaches;
        ] );
      ( "sorted iteration",
        [
          Alcotest.test_case "iter_succ/pred_sorted ascend" `Quick
            test_iter_sorted;
          Alcotest.test_case "iter_edges is insertion-independent" `Quick
            test_edges_deterministic;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_io_errors;
        ] );
    ]
