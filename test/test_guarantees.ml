(* Empirical checks of the paper's two effectiveness guarantees, using the
   engines' AFF/work counters rather than wall clock:

   - localizable (Theorem 3): the work IncKWS and IncISO do for a unit
     update is bounded by the size of the b- (resp. d_Q-) neighborhood of
     the update, independent of |G|;
   - relatively bounded (Theorem 4): the auxiliary data IncRPQ and IncSCC
     touch stays far below |G| for small ΔG on structure-preserving update
     streams, and the Fig. 9 gadget shows the complementary lower bound
     (work grows unboundedly while |CHANGED| stays constant). *)

open Ig_graph
module W = Ig_workload

let check = Alcotest.check

let profile scale =
  let rng = Random.State.make [| 11 |] in
  W.Profiles.instantiate ~scale ~rng W.Profiles.dbpedia_like

let replay_units g n =
  let rng = Random.State.make [| 12 |] in
  W.Updates.generate_replay ~rng g ~size:n ()

(* ---- KWS localizability --------------------------------------------------- *)

let test_kws_work_bounded_by_ball () =
  let g = profile 0.1 in
  let q = { Ig_kws.Batch.keywords = [ "l1"; "l2"; "l3" ]; bound = 2 } in
  let units = replay_units g 40 in
  let t = Ig_kws.Inc_kws.init g q in
  List.iter
    (fun up ->
      let u, v =
        match up with
        | Digraph.Insert (u, v) | Digraph.Delete (u, v) -> (u, v)
      in
      Ig_kws.Inc_kws.reset_stats t;
      ignore (Ig_kws.Inc_kws.apply_batch t [ up ]);
      let st = Ig_kws.Inc_kws.stats t in
      (* The paper's bound: work within the b-neighborhood of the update,
         once per keyword. The 2b-ball of the endpoints is a safe
         overapproximation of V_b for either endpoint. *)
      let ball = Hashtbl.length (Traverse.ball (Ig_kws.Inc_kws.graph t) [ u; v ] ~d:4) in
      let budget = 3 * ball in
      if st.Ig_kws.Inc_kws.affected + st.Ig_kws.Inc_kws.settled > budget then
        Alcotest.failf "KWS unit work %d exceeds 3x ball %d"
          (st.Ig_kws.Inc_kws.affected + st.Ig_kws.Inc_kws.settled)
          ball)
    units;
  Ig_kws.Inc_kws.check_invariants t

let test_kws_work_independent_of_graph_size () =
  (* Same unit-update workload density, graphs 4x apart: per-unit work must
     not scale with |G|. *)
  let work scale =
    let g = profile scale in
    let q = { Ig_kws.Batch.keywords = [ "l1"; "l2" ]; bound = 2 } in
    let units = replay_units g 30 in
    let t = Ig_kws.Inc_kws.init g q in
    Ig_kws.Inc_kws.reset_stats t;
    List.iter (fun up -> ignore (Ig_kws.Inc_kws.apply_batch t [ up ])) units;
    let st = Ig_kws.Inc_kws.stats t in
    st.Ig_kws.Inc_kws.affected + st.Ig_kws.Inc_kws.settled
  in
  let small = work 0.1 and large = work 0.4 in
  (* Allow generous noise: densities differ slightly between instantiations;
     a localizable algorithm stays within a small constant factor while the
     graph grew 4x. *)
  check Alcotest.bool
    (Printf.sprintf "work %d -> %d should not scale with |G|" small large)
    true
    (float_of_int large < 3.0 *. float_of_int (max small 1))

(* ---- ISO localizability ---------------------------------------------------- *)

let test_iso_ball_fraction () =
  let g = profile 0.2 in
  let rng = Random.State.make [| 13 |] in
  match W.Queries.iso ~rng g ~nodes:3 ~edges:3 with
  | None -> Alcotest.skip ()
  | Some p ->
      let units = replay_units g 30 in
      let t = Ig_iso.Inc_iso.init g p in
      Ig_iso.Inc_iso.reset_stats t;
      List.iter (fun up -> ignore (Ig_iso.Inc_iso.apply_batch t [ up ])) units;
      let st = Ig_iso.Inc_iso.stats t in
      let n = Digraph.n_nodes (Ig_iso.Inc_iso.graph t) in
      let avg_ball =
        float_of_int st.Ig_iso.Inc_iso.ball_nodes
        /. float_of_int (max 1 st.Ig_iso.Inc_iso.rematches)
      in
      check Alcotest.bool
        (Printf.sprintf "avg d_Q-ball %.0f should be well below |V| = %d"
           avg_ball n)
        true
        (avg_ball < 0.5 *. float_of_int n);
      Ig_iso.Inc_iso.check_invariants t

(* ---- RPQ / SCC relative boundedness ----------------------------------------- *)

let test_rpq_aff_small_on_replay () =
  let g = profile 0.2 in
  let rng = Random.State.make [| 14 |] in
  let q = W.Queries.rpq ~rng g ~size:4 in
  let a = Ig_nfa.Nfa.compile (Digraph.interner g) q in
  let ups = replay_units g (Digraph.n_edges g / 20) in
  let t = Ig_rpq.Inc_rpq.init g a in
  Ig_rpq.Inc_rpq.reset_stats t;
  ignore (Ig_rpq.Inc_rpq.apply_batch t ups);
  let st = Ig_rpq.Inc_rpq.stats t in
  let product = Digraph.n_nodes (Ig_rpq.Inc_rpq.graph t) * Ig_nfa.Nfa.n_states a in
  check Alcotest.bool
    (Printf.sprintf "AFF %d ≪ |V×S| = %d"
       (st.Ig_rpq.Inc_rpq.affected + st.Ig_rpq.Inc_rpq.settled)
       product)
    true
    (st.Ig_rpq.Inc_rpq.affected + st.Ig_rpq.Inc_rpq.settled < product / 2);
  Ig_rpq.Inc_rpq.check_invariants t

let test_scc_aff_small_on_replay () =
  let g = profile 0.2 in
  let ups = replay_units g (Digraph.n_edges g / 20) in
  let t = Ig_scc.Inc_scc.init g in
  Ig_scc.Inc_scc.reset_stats t;
  ignore (Ig_scc.Inc_scc.apply_batch t ups);
  let st = Ig_scc.Inc_scc.stats t in
  let n = Digraph.n_nodes (Ig_scc.Inc_scc.graph t) in
  check Alcotest.bool
    (Printf.sprintf "cert %d + rank %d ≪ |V| = %d" st.Ig_scc.Inc_scc.cert_nodes
       st.Ig_scc.Inc_scc.rank_moves n)
    true
    (st.Ig_scc.Inc_scc.cert_nodes + st.Ig_scc.Inc_scc.rank_moves < n);
  Ig_scc.Inc_scc.check_invariants t

(* ---- the same guarantees through the Obs counters ----------------------------- *)

(* The observability layer measures every engine with one vocabulary
   (aff, nodes_visited, edges_relaxed, queue_pushes, cert_rewrites), so the
   paper's guarantees become scale-comparison regressions: grow |G| at a
   fixed update workload and check what the total work tracks.

   Slack factors are generous (graphs at different scales differ in density
   and query selectivity, not only size) — what they must exclude is work
   proportional to |G|, which would show up as a ~4x ratio between the 0.1
   and 0.4 scales. *)

module O = Ig_obs.Obs

let obs_work o =
  O.counter o O.K.nodes_visited
  + O.counter o O.K.edges_relaxed
  + O.counter o O.K.queue_pushes
  + O.counter o O.K.cert_rewrites

let test_obs_kws_work_flat () =
  (* Localizability: per-unit work bounded by the b-neighborhood, so total
     work over a fixed unit workload must not grow with |G|. *)
  let work scale =
    let g = profile scale in
    let q = { Ig_kws.Batch.keywords = [ "l1"; "l2" ]; bound = 2 } in
    let units = replay_units g 30 in
    let o = O.create () in
    let t = Ig_kws.Inc_kws.init ~obs:o g q in
    List.iter (fun up -> ignore (Ig_kws.Inc_kws.apply_batch t [ up ])) units;
    obs_work o
  in
  let small = work 0.1 and large = work 0.4 in
  check Alcotest.bool
    (Printf.sprintf "obs work %d -> %d flat while |G| grew 4x" small large)
    true
    (float_of_int large < 3.0 *. float_of_int (max small 1))

let test_obs_iso_work_flat () =
  (* Localizability: the VF2 rerun is confined to d_Q-neighborhoods, so the
     per-rematch explored region must not grow with |G|. *)
  let work scale =
    let g = profile scale in
    let rng = Random.State.make [| 13 |] in
    match W.Queries.iso ~rng g ~nodes:3 ~edges:3 with
    | None -> None
    | Some p ->
        let units = replay_units g 30 in
        let o = O.create () in
        let t = Ig_iso.Inc_iso.init ~obs:o g p in
        List.iter (fun up -> ignore (Ig_iso.Inc_iso.apply_batch t [ up ])) units;
        let rematches = max 1 (O.counter o "rematches") in
        Some (float_of_int (O.counter o O.K.nodes_visited) /. float_of_int rematches)
  in
  match (work 0.1, work 0.4) with
  | Some small, Some large ->
      check Alcotest.bool
        (Printf.sprintf "avg ball %.0f -> %.0f flat while |G| grew 4x" small
           large)
        true
        (large < 3.0 *. Float.max small 1.0)
  | _ -> Alcotest.skip ()

let test_obs_rpq_work_tracks_aff () =
  (* Relative boundedness: total work polynomial in the measured
     |AFF ∪ CHANGED|, so work per affected entry must stay flat as |G|
     grows at fixed |ΔG|. *)
  let run scale =
    let g = profile scale in
    let rng = Random.State.make [| 14 |] in
    let q = W.Queries.rpq ~rng g ~size:4 in
    let a = Ig_nfa.Nfa.compile (Digraph.interner g) q in
    let ups = replay_units g 120 in
    let o = O.create () in
    let t = Ig_rpq.Inc_rpq.init ~obs:o g a in
    ignore (Ig_rpq.Inc_rpq.apply_batch t ups);
    (obs_work o, O.counter o O.K.aff + O.counter o O.K.changed)
  in
  let ws, afs = run 0.1 and wl, afl = run 0.4 in
  let per_aff w af = float_of_int w /. float_of_int (max 1 af) in
  check Alcotest.bool
    (Printf.sprintf "work/AFF %.1f -> %.1f flat while |G| grew 4x"
       (per_aff ws afs) (per_aff wl afl))
    true
    (per_aff wl afl < 4.0 *. Float.max 1.0 (per_aff ws afs))

let test_obs_scc_work_tracks_aff () =
  let run scale =
    let g = profile scale in
    let ups = replay_units g 120 in
    let o = O.create () in
    let t = Ig_scc.Inc_scc.init ~obs:o g in
    ignore (Ig_scc.Inc_scc.apply_batch t ups);
    (obs_work o, O.counter o O.K.aff + O.counter o O.K.changed)
  in
  let ws, afs = run 0.1 and wl, afl = run 0.4 in
  let per_aff w af = float_of_int w /. float_of_int (max 1 af) in
  check Alcotest.bool
    (Printf.sprintf "work/AFF %.1f -> %.1f flat while |G| grew 4x"
       (per_aff ws afs) (per_aff wl afl))
    true
    (per_aff wl afl < 4.0 *. Float.max 1.0 (per_aff ws afs))

(* ---- the unboundedness lower bound (Fig. 9) ---------------------------------- *)

let test_gadget_superlinear () =
  (* Work grows at least linearly in the gadget size at constant |CHANGED| —
     the empirical face of Theorem 1. *)
  match Ig_theory.Gadget.demo ~cycles:[ 32; 64; 128 ] with
  | [ a; b; c ] ->
      check Alcotest.bool "unbounded growth" true
        (b.Ig_theory.Gadget.inc_work >= 2 * a.Ig_theory.Gadget.inc_work
        && c.Ig_theory.Gadget.inc_work >= 2 * b.Ig_theory.Gadget.inc_work);
      check Alcotest.int "CHANGED constant" a.Ig_theory.Gadget.changed
        c.Ig_theory.Gadget.changed
  | _ -> Alcotest.fail "demo size"

let () =
  Alcotest.run "guarantees"
    [
      ( "localizable (Thm 3)",
        [
          Alcotest.test_case "KWS work within ball" `Quick
            test_kws_work_bounded_by_ball;
          Alcotest.test_case "KWS work independent of |G|" `Quick
            test_kws_work_independent_of_graph_size;
          Alcotest.test_case "ISO neighborhoods stay local" `Quick
            test_iso_ball_fraction;
          Alcotest.test_case "KWS obs work independent of |G|" `Quick
            test_obs_kws_work_flat;
          Alcotest.test_case "ISO obs ball independent of |G|" `Quick
            test_obs_iso_work_flat;
        ] );
      ( "relatively bounded (Thm 4)",
        [
          Alcotest.test_case "RPQ AFF small on replay stream" `Quick
            test_rpq_aff_small_on_replay;
          Alcotest.test_case "SCC AFF small on replay stream" `Quick
            test_scc_aff_small_on_replay;
          Alcotest.test_case "RPQ obs work tracks |AFF|" `Quick
            test_obs_rpq_work_tracks_aff;
          Alcotest.test_case "SCC obs work tracks |AFF|" `Quick
            test_obs_scc_work_tracks_aff;
        ] );
      ( "unbounded (Thm 1)",
        [
          Alcotest.test_case "gadget work grows, CHANGED constant" `Quick
            test_gadget_superlinear;
        ] );
    ]
