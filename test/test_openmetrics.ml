(* Tests for the continuous-telemetry layer (lib/obs): the OpenMetrics
   exposition and its validator (round-trip through [samples], native
   Prometheus histograms with cumulative le buckets cross-checked
   against Histogram quantiles, the deterministic clock-free rendering),
   the declarative SLO tracker (config parsing, trip/clear hysteresis,
   Slo_violation trace events), and the flight recorder (logical
   cadence, ring retention, jsonl compaction, atomic scrape target). *)

module O = Ig_obs.Obs
module H = Ig_obs.Histogram
module Om = Ig_obs.Openmetrics
module S = Ig_obs.Slo
module F = Ig_obs.Flight
module T = Ig_obs.Tracer
module TE = Ig_obs.Trace_export
module J = Ig_obs.Json

let check = Alcotest.check

let contains needle text =
  let n = String.length needle and l = String.length text in
  let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
  go 0

let find ?(labels = []) name samples =
  List.find_opt
    (fun (s : Om.sample) -> s.Om.name = name && s.Om.labels = labels)
    samples

let value ?labels name samples =
  match find ?labels name samples with
  | Some s -> s.Om.value
  | None -> Alcotest.failf "sample %s not found" name

(* ---- rendering and round-trip --------------------------------------------- *)

let test_render_roundtrip () =
  let o = O.create () in
  O.add o "alpha" 3;
  O.incr o "zeta";
  O.set_gauge o "depth" 7;
  O.with_span o "work" (fun () -> ());
  O.observe o "bytes" 1.0;
  O.observe o "bytes" 2.0;
  O.observe o "bytes" 4.0;
  let text = Om.render o in
  (match Om.samples text with
  | Error e -> Alcotest.failf "samples: %s" e
  | Ok samples ->
      check (Alcotest.float 0.0) "counter round-trips" 3.0
        (value "alpha_total" samples);
      check (Alcotest.float 0.0) "incr round-trips" 1.0
        (value "zeta_total" samples);
      check (Alcotest.float 0.0) "gauge round-trips" 7.0
        (value "depth" samples);
      check (Alcotest.float 0.0) "span calls round-trip" 1.0
        (value ~labels:[ ("span", "work") ] "ig_span_calls_total" samples);
      check (Alcotest.float 0.0) "_count is the observation count" 3.0
        (value "bytes_count" samples);
      check (Alcotest.float 1e-9) "_sum is the observation sum" 7.0
        (value "bytes_sum" samples);
      check (Alcotest.float 0.0) "+Inf bucket equals _count" 3.0
        (value ~labels:[ ("le", "+Inf") ] "bytes_bucket" samples));
  match Om.validate text with
  | Error e -> Alcotest.failf "validate rejected own rendering: %s" e
  | Ok n ->
      let expected =
        match Om.samples text with Ok s -> List.length s | Error _ -> 0
      in
      check Alcotest.int "validate counts every sample" expected n

let test_render_empty () =
  check Alcotest.string "noop registry renders bare EOF" "# EOF\n"
    (Om.render O.noop);
  (match Om.validate (Om.render O.noop) with
  | Ok n -> check Alcotest.int "empty exposition has no samples" 0 n
  | Error e -> Alcotest.failf "empty exposition rejected: %s" e);
  check Alcotest.bool "looks_like accepts empty exposition" true
    (Om.looks_like (Om.render O.noop));
  check Alcotest.bool "looks_like rejects json" false
    (Om.looks_like "{\"traceEvents\": []}")

let test_sanitize () =
  check Alcotest.string "dots and dashes mapped" "rpq_process"
    (Om.sanitize "rpq.process");
  check Alcotest.string "leading digit prefixed" "_9lives" (Om.sanitize "9lives");
  check Alcotest.string "empty name survives" "_" (Om.sanitize "");
  check Alcotest.string "legal names untouched" "a_b:c" (Om.sanitize "a_b:c")

(* ---- histogram buckets vs Histogram quantiles ------------------------------ *)

let exposition_buckets name samples =
  List.filter_map
    (fun (s : Om.sample) ->
      if s.Om.name = name ^ "_bucket" then
        match List.assoc_opt "le" s.Om.labels with
        | Some "+Inf" -> None
        | Some le -> Some (float_of_string le, s.Om.value)
        | None -> None
      else None)
    samples

let test_bucket_invariants () =
  let o = O.create () in
  let values =
    [ 0.9; 1.1; 1.7; 3.0; 3.1; 8.0; 8.0; 20.0; 100.0; 1000.0; 0.001 ]
  in
  List.iter (O.observe o "work") values;
  let h =
    match O.histogram o "work" with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  let samples =
    match Om.samples (Om.render o) with
    | Ok s -> s
    | Error e -> Alcotest.failf "samples: %s" e
  in
  let buckets = exposition_buckets "work" samples in
  check Alcotest.int "one le edge per non-empty log bucket"
    (List.length (H.nonzero_buckets h))
    (List.length buckets);
  let rec strictly_increasing = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
        le1 < le2 && c1 <= c2 && strictly_increasing rest
    | _ -> true
  in
  check Alcotest.bool "le edges strictly increase, cum counts never drop" true
    (strictly_increasing buckets);
  (match List.rev buckets with
  | (_, last_cum) :: _ ->
      check (Alcotest.float 0.0) "last finite cum equals count"
        (float_of_int (H.count h)) last_cum
  | [] -> Alcotest.fail "no buckets");
  (* Every quantile must land inside the bucket the cumulative counts
     select for its rank — the exposition and Histogram.quantile agree
     on where the mass sits. *)
  List.iter
    (fun q ->
      let target =
        int_of_float (Float.floor (q *. float_of_int (H.count h - 1)))
      in
      let rec locate prev_le = function
        | [] -> (prev_le, infinity)
        | (le, cum) :: rest ->
            if int_of_float cum > target then (prev_le, le)
            else locate le rest
      in
      let lo, hi = locate 0.0 buckets in
      let v = H.quantile h q in
      if not (v >= lo && v <= hi) then
        Alcotest.failf "q%.2f = %g outside exposition bucket (%g, %g]" q v lo
          hi)
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

(* ---- validator rejections -------------------------------------------------- *)

let expect_invalid label text =
  match Om.validate text with
  | Ok _ -> Alcotest.failf "%s: validator accepted bad exposition" label
  | Error _ -> ()

let test_validator_rejections () =
  (match
     Om.validate
       "# TYPE h histogram\n\
        h_bucket{le=\"1\"} 1\n\
        h_bucket{le=\"2\"} 3\n\
        h_bucket{le=\"+Inf\"} 3\n\
        h_sum 4.5\n\
        h_count 3\n\
        # EOF\n"
   with
  | Ok n -> check Alcotest.int "well-formed histogram accepted" 5 n
  | Error e -> Alcotest.failf "well-formed histogram rejected: %s" e);
  expect_invalid "untyped sample" "a_total 1\n# EOF\n";
  expect_invalid "missing # EOF" "# TYPE a counter\na_total 1\n";
  expect_invalid "content after # EOF"
    "# TYPE a counter\na_total 1\n# EOF\na_total 2\n";
  expect_invalid "le edges must increase"
    "# TYPE h histogram\n\
     h_bucket{le=\"2\"} 1\n\
     h_bucket{le=\"1\"} 2\n\
     h_bucket{le=\"+Inf\"} 2\n\
     h_sum 3\n\
     h_count 2\n\
     # EOF\n";
  expect_invalid "cumulative counts must not drop"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"2\"} 3\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_sum 3\n\
     h_count 5\n\
     # EOF\n";
  expect_invalid "_count must equal the +Inf bucket"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 1\n\
     h_bucket{le=\"+Inf\"} 1\n\
     h_sum 1\n\
     h_count 2\n\
     # EOF\n";
  expect_invalid "type mismatch"
    "# TYPE a gauge\na_total 1\n# EOF\n"

(* ---- deterministic rendering ----------------------------------------------- *)

let test_deterministic_filter () =
  let drive () =
    let o = O.create () in
    O.add o "aff" 11;
    O.set_gauge o "csr_overlay_add" 4;
    O.observe o "csr_compact_bytes" 4096.0;
    (* Clock-derived series: values differ run to run. *)
    O.observe o "apply_latency_s" (Sys.opaque_identity (Random.float 1e-3));
    O.observe o "gc_minor_words" (Random.float 1e6);
    O.time o "wall" (fun () -> ());
    O.with_span o "sp" (fun () -> ());
    o
  in
  let o = drive () in
  let full = Om.render o in
  let det = Om.render ~deterministic:true o in
  let has = contains in
  check Alcotest.bool "full rendering keeps latency histogram" true
    (has "apply_latency_s_bucket" full);
  check Alcotest.bool "full rendering keeps timers" true
    (has "ig_timer_seconds_total" full);
  check Alcotest.bool "deterministic drops _s histograms" false
    (has "apply_latency_s" det);
  check Alcotest.bool "deterministic drops gc_ histograms" false
    (has "gc_minor_words" det);
  check Alcotest.bool "deterministic drops timers" false
    (has "ig_timer_seconds" det);
  check Alcotest.bool "deterministic drops span seconds" false
    (has "ig_span_seconds" det);
  check Alcotest.bool "deterministic keeps span calls" true
    (has "ig_span_calls_total" det);
  check Alcotest.bool "deterministic keeps work histograms" true
    (has "csr_compact_bytes_bucket" det);
  check Alcotest.string "deterministic renders are byte-identical runs" det
    (Om.render ~deterministic:true (drive ()));
  match Om.validate det with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deterministic rendering invalid: %s" e

(* ---- SLO: config, hysteresis, trace events --------------------------------- *)

let test_slo_config () =
  (match S.of_config S.example_config with
  | Error e -> Alcotest.failf "example config rejected: %s" e
  | Ok rules ->
      check Alcotest.int "example config has four budgets" 4
        (List.length rules);
      check
        (Alcotest.list Alcotest.string)
        "sources round-trip through source_name"
        [
          "p99:apply_latency_s"; "ratio:aff/changed"; "gauge:csr_overlay_add";
          "p99:wal_fsync_latency_s";
        ]
        (List.map (fun r -> S.source_name r.S.source) rules);
      let r = List.hd rules in
      check Alcotest.int "trip= parsed" 2 r.S.trip_after;
      check Alcotest.int "clear= parsed" 3 r.S.clear_after);
  (match S.of_config "x p99:lat 0.5\nx gauge:g 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate rule name accepted");
  (match S.of_config "bad nonsense 1.0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown source kind accepted");
  match S.of_config "# only a comment\n\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "comment-only config produced rules"
  | Error e -> Alcotest.failf "comment-only config rejected: %s" e

let slo_events tr =
  List.filter_map
    (fun e ->
      match e.T.event with
      | T.Slo_violation { rule; _ } -> Some rule
      | _ -> None)
    (T.snapshot tr).T.entries

let test_slo_hysteresis () =
  let rule =
    {
      S.name = "pressure";
      source = S.Gauge "g";
      limit = 10.0;
      trip_after = 2;
      clear_after = 2;
    }
  in
  let t = S.create [ rule ] in
  let o = O.create () and tr = T.create () in
  let eval () =
    match S.evaluate t ~obs:o ~trace:tr with
    | [ st ] -> st
    | _ -> Alcotest.fail "expected one status"
  in
  O.set_gauge o "g" 5;
  let st = eval () in
  check Alcotest.bool "in budget: not breaching" false st.S.breaching;
  O.set_gauge o "g" 50;
  let st = eval () in
  check Alcotest.bool "first breach: breaching" true st.S.breaching;
  check Alcotest.bool "first breach: not yet tripped" false st.S.tripped;
  check Alcotest.int "no violation before trip_after" 0 (S.violations t);
  let st = eval () in
  check Alcotest.bool "second consecutive breach trips" true st.S.tripped;
  check Alcotest.int "trip transition counted once" 1 (S.violations t);
  check
    (Alcotest.list Alcotest.string)
    "tripped rules listed" [ "pressure" ] (S.tripped t);
  check
    (Alcotest.list Alcotest.string)
    "Slo_violation event emitted with the rule tag" [ "pressure" ]
    (slo_events tr);
  ignore (eval ());
  check Alcotest.int "steady breach does not re-emit" 1 (S.violations t);
  check Alcotest.int "steady breach adds no event" 1
    (List.length (slo_events tr));
  O.set_gauge o "g" 3;
  let st = eval () in
  check Alcotest.bool "one ok evaluation is not enough to clear" true
    st.S.tripped;
  let st = eval () in
  check Alcotest.bool "clear_after consecutive oks clears" false st.S.tripped;
  check (Alcotest.list Alcotest.string) "nothing tripped after clear" []
    (S.tripped t);
  O.set_gauge o "g" 99;
  ignore (eval ());
  ignore (eval ());
  check Alcotest.int "re-trip is a fresh violation" 2 (S.violations t)

(* The rendering surface of the acceptance criterion: a trip transition
   must be visible in the human-readable explanation, rule tag and all. *)
let test_slo_explain () =
  let tr = T.create () in
  T.slo_violation tr ~rule:"apply_p99" ~value:0.5 ~limit:0.01;
  let text =
    Format.asprintf "%a" (TE.pp_explain ~limit:10) (T.snapshot tr)
  in
  check Alcotest.bool "explain names the tripped rule" true
    (contains "apply_p99" text);
  check Alcotest.bool "explain has an SLO section" true
    (contains "SLO" text)

let test_slo_measure () =
  let o = O.create () in
  O.add o "a" 30;
  O.add o "b" 10;
  O.set_gauge o "g" 7;
  O.observe o "lat" 1.0;
  O.observe o "lat" 100.0;
  check (Alcotest.float 1e-9) "ratio of counters" 3.0
    (S.measure o (S.Ratio ("a", "b")));
  check (Alcotest.float 1e-9) "ratio with zero denominator reads 0" 0.0
    (S.measure o (S.Ratio ("a", "zero")));
  check (Alcotest.float 1e-9) "gauge level" 7.0 (S.measure o (S.Gauge "g"));
  check (Alcotest.float 1e-9) "counter level" 30.0
    (S.measure o (S.Counter "a"));
  check (Alcotest.float 1e-9) "missing histogram reads 0" 0.0
    (S.measure o (S.P99 "nope"));
  check Alcotest.bool "p50 between observed extremes" true
    (let v = S.measure o (S.P50 "lat") in
     v >= 1.0 && v <= 100.0)

(* ---- flight recorder ------------------------------------------------------- *)

let tmpdir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let read_file path = In_channel.with_open_text path In_channel.input_all

let ring_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 8
         && String.sub f 0 8 = "metrics-"
         && Filename.check_suffix f ".prom")
  |> List.sort String.compare

let jsonl_lines dir =
  let path = Filename.concat dir "metrics.jsonl" in
  if not (Sys.file_exists path) then []
  else
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")

let test_flight_retention () =
  let dir = tmpdir "ig_flight" in
  let o = O.create () in
  let fr = F.create ~every:1 ~retain:3 ~dir ~obs:o () in
  for _ = 1 to 10 do
    O.incr o "ticks";
    F.tick fr
  done;
  check Alcotest.int "every=1 snapshots each update" 10 (F.snapshots fr);
  check Alcotest.int "ring pruned to retain" 3 (List.length (ring_files dir));
  check
    (Alcotest.list Alcotest.string)
    "ring keeps the newest snapshots"
    [ "metrics-000007.prom"; "metrics-000008.prom"; "metrics-000009.prom" ]
    (ring_files dir);
  let stable = read_file (Filename.concat dir "metrics.prom") in
  check Alcotest.string "scrape target is the newest ring file" stable
    (read_file (Filename.concat dir "metrics-000009.prom"));
  (match Om.validate stable with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "scrape target invalid: %s" e);
  let lines = jsonl_lines dir in
  check Alcotest.bool "jsonl compacted below twice the retention" true
    (List.length lines <= 2 * 3);
  (match List.rev lines with
  | last :: _ -> (
      match J.parse last with
      | Error e -> Alcotest.failf "jsonl line unparsable: %s" e
      | Ok j ->
          let get k = Option.bind (J.member k j) J.to_int_opt in
          check (Alcotest.option Alcotest.int) "last line carries the seq"
            (Some 9) (get "seq");
          check (Alcotest.option Alcotest.int) "last line counts updates"
            (Some 10) (get "updates");
          check Alcotest.bool "metrics embedded" true
            (J.member "metrics" j <> None))
  | [] -> Alcotest.fail "no jsonl lines")

let test_flight_cadence () =
  let dir = tmpdir "ig_cadence" in
  let o = O.create () in
  let fr = F.create ~every:4 ~retain:8 ~dir ~obs:o () in
  for _ = 1 to 10 do
    F.tick fr
  done;
  check Alcotest.int "cadence fires at 4 and 8" 2 (F.snapshots fr);
  check Alcotest.int "updates counted" 10 (F.updates fr);
  F.snapshot fr;
  check Alcotest.int "forced snapshot counts" 3 (F.snapshots fr)

let test_flight_slo_and_determinism () =
  let drive dir =
    let o = O.create () in
    let tr = T.create () in
    let slo =
      S.create
        [
          {
            S.name = "ticks";
            source = S.Counter "ticks";
            limit = 2.5;
            trip_after = 1;
            clear_after = 1;
          };
        ]
    in
    let fr =
      F.create ~every:2 ~retain:4 ~deterministic:true ~slo ~trace:tr ~dir
        ~obs:o ()
    in
    for _ = 1 to 6 do
      O.incr o "ticks";
      (* Clock noise that the deterministic snapshots must not leak. *)
      O.observe o "apply_latency_s" (Random.float 1.0);
      F.tick fr
    done;
    (slo, tr)
  in
  let d1 = tmpdir "ig_det_a" and d2 = tmpdir "ig_det_b" in
  let slo, tr = drive d1 in
  let _ = drive d2 in
  check Alcotest.int "slo tripped once during the flight" 1 (S.violations slo);
  check
    (Alcotest.list Alcotest.string)
    "violation visible in the trace" [ "ticks" ] (slo_events tr);
  check
    (Alcotest.list Alcotest.string)
    "same ring shape" (ring_files d1) (ring_files d2);
  List.iter
    (fun f ->
      check Alcotest.string
        (Printf.sprintf "%s byte-identical across runs" f)
        (read_file (Filename.concat d1 f))
        (read_file (Filename.concat d2 f)))
    ("metrics.prom" :: "metrics.jsonl" :: ring_files d1)

let test_flight_bad_args () =
  Alcotest.check_raises "every below 1 rejected"
    (Invalid_argument "Flight.create: every must be >= 1") (fun () ->
      ignore (F.create ~every:0 ~dir:"." ~obs:O.noop ()));
  Alcotest.check_raises "retain below 1 rejected"
    (Invalid_argument "Flight.create: retain must be >= 1") (fun () ->
      ignore (F.create ~retain:0 ~dir:"." ~obs:O.noop ()))

let () =
  Alcotest.run "openmetrics"
    [
      ( "exposition",
        [
          Alcotest.test_case "render round-trip" `Quick test_render_roundtrip;
          Alcotest.test_case "empty registry" `Quick test_render_empty;
          Alcotest.test_case "name sanitizer" `Quick test_sanitize;
          Alcotest.test_case "bucket invariants vs quantiles" `Quick
            test_bucket_invariants;
          Alcotest.test_case "validator rejections" `Quick
            test_validator_rejections;
          Alcotest.test_case "deterministic filter" `Quick
            test_deterministic_filter;
        ] );
      ( "slo",
        [
          Alcotest.test_case "config parsing" `Quick test_slo_config;
          Alcotest.test_case "trip/clear hysteresis" `Quick
            test_slo_hysteresis;
          Alcotest.test_case "measurement sources" `Quick test_slo_measure;
          Alcotest.test_case "violations render in explain" `Quick
            test_slo_explain;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring retention" `Quick test_flight_retention;
          Alcotest.test_case "logical cadence" `Quick test_flight_cadence;
          Alcotest.test_case "slo + deterministic stream" `Quick
            test_flight_slo_and_determinism;
          Alcotest.test_case "bad arguments" `Quick test_flight_bad_args;
        ] );
    ]
