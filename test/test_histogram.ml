(* Tests for the log-bucketed histogram (lib/obs/histogram.ml): bucket
   geometry, quantile accuracy against a sorted reference on seeded
   random samples, exact merging, the structural invariants the fuzz
   harness asserts, and the sparse JSON round-trip. *)

module H = Ig_obs.Histogram
module J = Ig_obs.Json

let check = Alcotest.check

let of_samples xs =
  let h = H.create () in
  List.iter (H.observe h) xs;
  h

(* Exact quantile of a sample list, with the same continuous-rank
   convention the histogram interpolates against. *)
let reference_quantile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

let rel_err est truth =
  if truth = 0.0 then Float.abs est else Float.abs (est -. truth) /. truth

(* ---- bucket geometry ------------------------------------------------------- *)

let test_bucket_bounds_cover () =
  (* Every positive sample lands in a bucket whose [lo, hi) contains it. *)
  let rng = Random.State.make [| 41 |] in
  for _ = 1 to 2000 do
    (* Spread over many octaves: 10^-9 .. 10^9. *)
    let v = Float.exp (Random.State.float rng 41.4 -. 20.7) in
    let h = of_samples [ v ] in
    match H.nonzero_buckets h with
    | [ (i, 1) ] ->
        let lo, hi = H.bucket_bounds i in
        if not (lo <= v && v < hi) then
          Alcotest.failf "%g not in bucket %d = [%g, %g)" v i lo hi
    | other ->
        Alcotest.failf "expected one bucket for %g, got %d" v
          (List.length other)
  done

let test_bucket_width_bound () =
  (* The quantile error bound comes from bucket width: hi/lo <= 1 + 1/8
     for every bucket past the first sub-bucket of each octave. *)
  let worst = ref 0.0 in
  List.iter
    (fun (i, _) ->
      let lo, hi = H.bucket_bounds i in
      if lo > 0.0 then worst := Float.max !worst ((hi -. lo) /. lo))
    (H.nonzero_buckets
       (of_samples
          (List.init 4000 (fun i -> Float.exp (float_of_int i /. 100.0)))));
  if !worst > 0.2501 then
    Alcotest.failf "relative bucket width %.4f too coarse" !worst

let test_degenerate_values () =
  let h = of_samples [ -5.0; 0.0; Float.nan ] in
  check Alcotest.int "all clamp to the zero bucket" 3 (H.count h);
  check (Alcotest.float 0.0) "clamped min" 0.0 (H.min_value h);
  check (Alcotest.float 0.0) "clamped max" 0.0 (H.max_value h);
  H.check_invariants h

(* ---- quantile accuracy ----------------------------------------------------- *)

let quantile_accuracy name gen =
  let rng = Random.State.make [| Hashtbl.hash name |] in
  let xs = List.init 10_000 (fun _ -> gen rng) in
  let h = of_samples xs in
  List.iter
    (fun q ->
      let est = H.quantile h q and truth = reference_quantile xs q in
      let err = rel_err est truth in
      if err > 0.15 then
        Alcotest.failf "%s: q=%.3f est %g truth %g rel err %.3f" name q est
          truth err)
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let test_quantiles_uniform () =
  quantile_accuracy "uniform" (fun rng -> Random.State.float rng 1.0)

let test_quantiles_exponential () =
  quantile_accuracy "exponential" (fun rng ->
      -.Float.log (1.0 -. Random.State.float rng 1.0) /. 1000.0)

let test_quantiles_bimodal () =
  (* Latency-shaped: a fast mode and a 100x slower tail. *)
  quantile_accuracy "bimodal" (fun rng ->
      if Random.State.float rng 1.0 < 0.95 then
        1e-6 *. (1.0 +. Random.State.float rng 0.5)
      else 1e-4 *. (1.0 +. Random.State.float rng 0.5))

let test_quantile_extremes_clamped () =
  let h = of_samples [ 3.0; 5.0; 7.0 ] in
  check (Alcotest.float 0.0) "q=0 is the min" 3.0 (H.quantile h 0.0);
  check (Alcotest.float 0.0) "q=1 is the max" 7.0 (H.quantile h 1.0);
  check (Alcotest.float 0.0) "empty histogram reads 0" 0.0
    (H.quantile (H.create ()) 0.5);
  Alcotest.check_raises "q > 1 rejected"
    (Invalid_argument "Histogram.quantile: q must be in [0,1]") (fun () ->
      ignore (H.quantile h 1.5));
  Alcotest.check_raises "q < 0 rejected"
    (Invalid_argument "Histogram.quantile: q must be in [0,1]") (fun () ->
      ignore (H.quantile h (-0.1)))

let test_single_sample () =
  let h = of_samples [ 0.042 ] in
  List.iter
    (fun q ->
      let est = H.quantile h q in
      if rel_err est 0.042 > 1e-9 then
        Alcotest.failf "single sample: q=%.2f read %g" q est)
    [ 0.0; 0.5; 1.0 ];
  check (Alcotest.float 1e-12) "mean" 0.042 (H.mean h)

(* ---- merge ------------------------------------------------------------------ *)

let same_histogram msg a b =
  check Alcotest.int (msg ^ ": count") (H.count a) (H.count b);
  check (Alcotest.float 1e-9) (msg ^ ": sum") (H.sum a) (H.sum b);
  check (Alcotest.float 0.0) (msg ^ ": min") (H.min_value a) (H.min_value b);
  check (Alcotest.float 0.0) (msg ^ ": max") (H.max_value a) (H.max_value b);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    (msg ^ ": buckets") (H.nonzero_buckets a) (H.nonzero_buckets b)

let seeded_samples seed n =
  let rng = Random.State.make [| seed |] in
  List.init n (fun _ -> Float.exp (Random.State.float rng 20.0 -. 10.0))

let test_merge_is_concat () =
  let xs = seeded_samples 1 500 and ys = seeded_samples 2 800 in
  same_histogram "merge = observing the concatenation"
    (H.merge (of_samples xs) (of_samples ys))
    (of_samples (xs @ ys))

let test_merge_commutes_associates () =
  let a = of_samples (seeded_samples 3 300)
  and b = of_samples (seeded_samples 4 400)
  and c = of_samples (seeded_samples 5 500) in
  same_histogram "commutativity" (H.merge a b) (H.merge b a);
  same_histogram "associativity"
    (H.merge (H.merge a b) c)
    (H.merge a (H.merge b c));
  let e = H.create () in
  same_histogram "empty is the unit" (H.merge a e) a;
  H.check_invariants (H.merge (H.merge a b) c)

let test_merge_does_not_alias () =
  let a = of_samples [ 1.0 ] and b = of_samples [ 2.0 ] in
  let m = H.merge a b in
  H.observe a 4.0;
  check Alcotest.int "merge result unaffected by later observes" 2 (H.count m);
  let c = H.copy a in
  H.observe a 8.0;
  check Alcotest.int "copy is independent" 2 (H.count c)

(* ---- invariants ------------------------------------------------------------- *)

let test_invariants_hold_under_random_streams () =
  let rng = Random.State.make [| 6 |] in
  let h = H.create () in
  for i = 1 to 5000 do
    (* Mix magnitudes, zeros, and the clamped negatives/NaNs. *)
    let v =
      match i mod 7 with
      | 0 -> 0.0
      | 1 -> -1.0
      | 2 -> Float.nan
      | _ -> Float.exp (Random.State.float rng 30.0 -. 15.0)
    in
    H.observe h v;
    if i mod 500 = 0 then H.check_invariants h
  done;
  check Alcotest.int "count = stream length" 5000 (H.count h);
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (H.nonzero_buckets h)
  in
  check Alcotest.int "bucket total = count" 5000 total

(* ---- JSON round-trip --------------------------------------------------------- *)

let roundtrip h =
  (* Through the printer and parser, not just the tree: the BENCH file on
     disk is text. *)
  match J.parse (J.to_string ~indent:true (H.to_json h)) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok json -> (
      match H.of_json json with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok h' -> h')

let test_json_roundtrip () =
  let h = of_samples (seeded_samples 7 1000) in
  same_histogram "round-trip" h (roundtrip h);
  same_histogram "empty round-trip" (H.create ()) (roundtrip (H.create ()));
  let h' = roundtrip h in
  List.iter
    (fun q ->
      check (Alcotest.float 1e-12)
        (Printf.sprintf "q=%.3f survives" q)
        (H.quantile h q) (H.quantile h' q))
    [ 0.5; 0.9; 0.99 ]

let test_json_rejects_corruption () =
  let reject msg mutate =
    let json = H.to_json (of_samples [ 1.0; 2.0; 4.0 ]) in
    let fields =
      match json with J.Obj kvs -> kvs | _ -> Alcotest.fail "not an object"
    in
    match H.validate (J.Obj (mutate fields)) with
    | Ok () -> Alcotest.failf "%s: accepted" msg
    | Error _ -> ()
  in
  reject "missing count" (List.remove_assoc "count");
  reject "count mismatch" (fun kvs ->
      ("count", J.Int 17) :: List.remove_assoc "count" kvs);
  reject "foreign layout" (fun kvs ->
      ("layout", J.Obj [ ("sub_buckets", J.Int 4) ])
      :: List.remove_assoc "layout" kvs);
  reject "negative bucket index" (fun kvs ->
      ("buckets", J.Arr [ J.Arr [ J.Int (-1); J.Int 3 ] ])
      :: List.remove_assoc "buckets" kvs);
  reject "unsorted buckets" (fun kvs ->
      ( "buckets",
        J.Arr
          [
            J.Arr [ J.Int 9; J.Int 2 ];
            J.Arr [ J.Int 4; J.Int 1 ];
          ] )
      :: List.remove_assoc "buckets" kvs)

let json_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"json round-trip preserves the histogram"
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range 1e-9 1e9))
    (fun xs ->
      let h = of_samples xs in
      let h' = roundtrip h in
      H.check_invariants h';
      H.count h = H.count h'
      && H.nonzero_buckets h = H.nonzero_buckets h'
      && rel_err (H.sum h') (H.sum h) < 1e-9
      && H.p99 h = H.p99 h')

(* ---- rendering ---------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

let test_pp_renders_bars () =
  let s = H.to_string (of_samples [ 1e-6; 2e-6; 1e-3 ]) in
  List.iter
    (fun needle ->
      if not (contains s needle) then
        Alcotest.failf "rendering misses %S in:\n%s" needle s)
    [ "count 3"; "#"; "p99" ]

let () =
  Alcotest.run "histogram"
    [
      ( "buckets",
        [
          Alcotest.test_case "bounds cover their samples" `Quick
            test_bucket_bounds_cover;
          Alcotest.test_case "relative width bounded" `Quick
            test_bucket_width_bound;
          Alcotest.test_case "negative/NaN/zero clamp" `Quick
            test_degenerate_values;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "uniform vs sorted reference" `Quick
            test_quantiles_uniform;
          Alcotest.test_case "exponential vs sorted reference" `Quick
            test_quantiles_exponential;
          Alcotest.test_case "bimodal latency shape" `Quick
            test_quantiles_bimodal;
          Alcotest.test_case "extremes clamp to min/max" `Quick
            test_quantile_extremes_clamped;
          Alcotest.test_case "single sample" `Quick test_single_sample;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge equals concatenation" `Quick
            test_merge_is_concat;
          Alcotest.test_case "commutative and associative" `Quick
            test_merge_commutes_associates;
          Alcotest.test_case "no aliasing" `Quick test_merge_does_not_alias;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "hold under random streams" `Quick
            test_invariants_hold_under_random_streams;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip through the printer" `Quick
            test_json_roundtrip;
          Alcotest.test_case "validator rejects corruption" `Quick
            test_json_rejects_corruption;
          QCheck_alcotest.to_alcotest json_roundtrip_prop;
        ] );
      ( "rendering",
        [ Alcotest.test_case "summary and bars" `Quick test_pp_renders_bars ] );
    ]
