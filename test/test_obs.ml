(* Tests for the observability layer (lib/obs): registry semantics first,
   then one smoke test per incremental engine checking that the probes
   report the right shape of |AFF| — nonzero for an update that touches
   the query's certificate, zero for an update in a part of the graph the
   query cannot see — and finally the structured tracer: ring-buffer
   semantics, the JSON escaper it leans on, Chrome export validity, and
   that a Noop tracer leaves traced runs bit-identical to untraced ones. *)

open Ig_graph
module O = Ig_obs.Obs
module T = Ig_obs.Tracer
module TE = Ig_obs.Trace_export
module J = Ig_obs.Json

let check = Alcotest.check

let labeled_graph labels edges =
  let g = Digraph.create () in
  List.iter (fun l -> ignore (Digraph.add_node g l)) labels;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

(* ---- registry: counters ---------------------------------------------------- *)

let test_counter_monotonic () =
  let o = O.create () in
  check Alcotest.int "absent counter reads 0" 0 (O.counter o "x");
  O.incr o "x";
  O.add o "x" 4;
  check Alcotest.int "accumulates" 5 (O.counter o "x");
  O.add o "x" 0;
  check Alcotest.int "adding 0 is fine" 5 (O.counter o "x");
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.add: counters are monotonic") (fun () ->
      O.add o "x" (-1));
  check Alcotest.int "failed add left no trace" 5 (O.counter o "x")

let test_counter_snapshot_sorted () =
  let o = O.create () in
  O.incr o "b";
  O.incr o "a";
  O.add o "c" 2;
  check
    Alcotest.(list (pair string int))
    "sorted snapshot"
    [ ("a", 1); ("b", 1); ("c", 2) ]
    (O.counters o)

let test_changed_aggregates () =
  let o = O.create () in
  O.note_changed_input o 3;
  O.note_changed_output o 2;
  check Alcotest.int "changed_input" 3 (O.counter o O.K.changed_input);
  check Alcotest.int "changed_output" 2 (O.counter o O.K.changed_output);
  check Alcotest.int "changed = |ΔG| + |ΔO|" 5 (O.counter o O.K.changed)

let test_diff_counters () =
  let o = O.create () in
  O.add o "a" 2;
  let prev = O.counters o in
  O.add o "a" 3;
  O.incr o "b";
  check
    Alcotest.(list (pair string int))
    "diff is the work since the snapshot"
    [ ("a", 3); ("b", 1) ]
    (O.diff_counters ~prev ~cur:(O.counters o))

(* ---- registry: gauges and timers ------------------------------------------- *)

let test_gauges_and_timers () =
  let o = O.create () in
  O.set_gauge o "depth" 7;
  O.set_gauge o "depth" 3;
  check Alcotest.int "gauge overwrites" 3 (O.gauge o "depth");
  O.add_time o "t" 0.5;
  O.add_time o "t" 0.25;
  check (Alcotest.float 1e-9) "timer accumulates" 0.75 (O.timer o "t");
  let r = O.time o "t" (fun () -> 42) in
  check Alcotest.int "time returns the result" 42 r;
  check Alcotest.bool "time adds" true (O.timer o "t" >= 0.75)

(* ---- registry: spans -------------------------------------------------------- *)

let test_span_nesting () =
  let o = O.create () in
  check Alcotest.int "empty stack" 0 (O.span_depth o);
  O.with_span o "outer" (fun () ->
      check Alcotest.int "depth 1" 1 (O.span_depth o);
      O.with_span o "inner" (fun () ->
          check Alcotest.int "depth 2" 2 (O.span_depth o));
      check Alcotest.int "inner closed" 1 (O.span_depth o));
  check Alcotest.int "stack empties" 0 (O.span_depth o);
  check Alcotest.int "outer entered once" 1 (fst (O.span o "outer"));
  check Alcotest.int "inner entered once" 1 (fst (O.span o "inner"))

let test_span_mismatch_rejected () =
  let o = O.create () in
  O.span_begin o "a";
  Alcotest.check_raises "LIFO violation"
    (Invalid_argument "Obs.span_end: b closed while a is open") (fun () ->
      O.span_end o "b");
  O.span_end o "a";
  Alcotest.check_raises "nothing open"
    (Invalid_argument "Obs.span_end: a closed but no span is open") (fun () ->
      O.span_end o "a")

let test_open_spans () =
  let o = O.create () in
  check Alcotest.(list string) "empty" [] (O.open_spans o);
  O.span_begin o "outer";
  O.span_begin o "inner";
  check
    Alcotest.(list string)
    "innermost first"
    [ "inner"; "outer" ]
    (O.open_spans o);
  O.span_end o "inner";
  O.span_end o "outer";
  check Alcotest.(list string) "empty again" [] (O.open_spans o);
  check Alcotest.(list string) "noop has none" [] (O.open_spans O.noop)

let test_span_exception_safe () =
  let o = O.create () in
  (try O.with_span o "risky" (fun () -> failwith "boom") with
  | Failure _ -> ());
  check Alcotest.int "span closed despite raise" 0 (O.span_depth o);
  check Alcotest.int "entry recorded" 1 (fst (O.span o "risky"))

(* ---- registry: reset --------------------------------------------------------- *)

let test_reset () =
  let o = O.create () in
  O.add o "a" 5;
  O.set_gauge o "g" 1;
  O.add_time o "t" 1.0;
  O.with_span o "s" (fun () -> ());
  O.span_begin o "open";
  O.reset o;
  check Alcotest.int "counters cleared" 0 (O.counter o "a");
  check Alcotest.int "gauges cleared" 0 (O.gauge o "g");
  check (Alcotest.float 1e-9) "timers cleared" 0.0 (O.timer o "t");
  check Alcotest.int "spans cleared" 0 (fst (O.span o "s"));
  check Alcotest.int "open span stack emptied" 0 (O.span_depth o);
  check Alcotest.bool "still enabled after reset" true (O.enabled o)

(* ---- the disabled sink is a true no-op ---------------------------------------- *)

let test_noop_sink () =
  let o = O.noop in
  check Alcotest.bool "disabled" false (O.enabled o);
  O.add o "x" 5;
  O.add o "x" (-1) (* no validation cost either: nothing observes it *);
  O.incr o "x";
  O.set_gauge o "g" 9;
  O.add_time o "t" 1.0;
  O.note_changed_input o 4;
  O.span_begin o "s";
  O.span_end o "never-opened" (* mismatch invisible: nothing is tracked *);
  let r = O.with_span o "w" (fun () -> 7) in
  check Alcotest.int "with_span passes through" 7 r;
  check Alcotest.int "counter" 0 (O.counter o "x");
  check Alcotest.int "gauge" 0 (O.gauge o "g");
  check (Alcotest.float 1e-9) "timer" 0.0 (O.timer o "t");
  check Alcotest.int "span depth" 0 (O.span_depth o);
  check Alcotest.bool "all snapshots empty" true
    (O.counters o = [] && O.gauges o = [] && O.timers o = [] && O.spans o = [])

let test_engines_default_to_noop () =
  let g = labeled_graph [ "a"; "b" ] [ (0, 1) ] in
  let t = Ig_kws.Inc_kws.init g { Ig_kws.Batch.keywords = [ "a" ]; bound = 1 } in
  Ig_kws.Inc_kws.insert_edge t 1 0;
  check Alcotest.bool "no registry unless requested" false
    (O.enabled (Ig_kws.Inc_kws.obs t));
  check Alcotest.bool "and nothing was recorded" true
    (O.counters (Ig_kws.Inc_kws.obs t) = [])

(* ---- per-engine smoke: |AFF| lands where the paper says ------------------------ *)

(* Each case: an update the query can see must report aff > 0 and count its
   ΔG and ΔO in [changed]; an update in a component the query cannot see
   must report aff = 0 (while still counting its ΔG). *)

let aff o = O.counter o O.K.aff
let changed_in o = O.counter o O.K.changed_input
let changed_out o = O.counter o O.K.changed_output

let test_kws_aff () =
  (* b sees keywords a and d within bound 2; the z-z island is invisible. *)
  let g = labeled_graph [ "a"; "b"; "d"; "z"; "z" ] [ (1, 0); (1, 2) ] in
  let q = { Ig_kws.Batch.keywords = [ "a"; "d" ]; bound = 2 } in
  let o = O.create () in
  let t = Ig_kws.Inc_kws.init ~obs:o g q in
  Ig_kws.Inc_kws.insert_edge t 3 4;
  ignore (Ig_kws.Inc_kws.flush_delta t);
  check Alcotest.int "island insert: ΔG counted" 1 (changed_in o);
  check Alcotest.int "island insert: aff = 0" 0 (aff o);
  O.reset o;
  Ig_kws.Inc_kws.delete_edge t 1 2;
  ignore (Ig_kws.Inc_kws.flush_delta t);
  check Alcotest.bool "keyword edge delete: aff > 0" true (aff o > 0);
  check Alcotest.bool "root lost: ΔO counted" true (changed_out o > 0);
  Ig_kws.Inc_kws.check_invariants t

let test_rpq_aff () =
  let g = labeled_graph [ "a"; "b"; "z"; "z" ] [ (0, 1) ] in
  let o = O.create () in
  let t = Ig_rpq.Inc_rpq.create ~obs:o g (Ig_nfa.Regex.parse_exn "a . b") in
  check Alcotest.bool "initial match present" true (Ig_rpq.Inc_rpq.is_match t 0 1);
  Ig_rpq.Inc_rpq.insert_edge t 2 3;
  ignore (Ig_rpq.Inc_rpq.flush_delta t);
  check Alcotest.int "z-z insert: ΔG counted" 1 (changed_in o);
  check Alcotest.int "z-z insert: aff = 0" 0 (aff o);
  O.reset o;
  Ig_rpq.Inc_rpq.delete_edge t 0 1;
  ignore (Ig_rpq.Inc_rpq.flush_delta t);
  check Alcotest.bool "match edge delete: aff > 0" true (aff o > 0);
  check Alcotest.bool "match lost: ΔO counted" true (changed_out o > 0);
  Ig_rpq.Inc_rpq.check_invariants t

let test_scc_aff () =
  let g = labeled_graph [ "x"; "x"; "x"; "x" ] [ (0, 1); (2, 3) ] in
  let o = O.create () in
  let t = Ig_scc.Inc_scc.init ~obs:o g in
  Ig_scc.Inc_scc.delete_edge t 2 3;
  ignore (Ig_scc.Inc_scc.flush_delta t);
  check Alcotest.int "inter-component delete: ΔG counted" 1 (changed_in o);
  check Alcotest.int "inter-component delete: aff = 0" 0 (aff o);
  O.reset o;
  Ig_scc.Inc_scc.insert_edge t 1 0;
  ignore (Ig_scc.Inc_scc.flush_delta t);
  check Alcotest.bool "cycle-closing insert: aff ≥ 2" true (aff o >= 2);
  check Alcotest.bool "components merged: ΔO counted" true (changed_out o > 0);
  Ig_scc.Inc_scc.check_invariants t

let test_sim_aff () =
  let p = Ig_iso.Pattern.create ~labels:[ "p"; "q" ] ~edges:[ (0, 1) ] in
  let g = labeled_graph [ "p"; "q"; "z"; "z" ] [ (0, 1); (2, 3) ] in
  let o = O.create () in
  let t = Ig_sim.Inc_sim.init ~obs:o g p in
  Ig_sim.Inc_sim.delete_edge t 2 3;
  ignore (Ig_sim.Inc_sim.flush_delta t);
  check Alcotest.int "z-z delete: ΔG counted" 1 (changed_in o);
  check Alcotest.int "z-z delete: aff = 0" 0 (aff o);
  O.reset o;
  Ig_sim.Inc_sim.delete_edge t 0 1;
  ignore (Ig_sim.Inc_sim.flush_delta t);
  check Alcotest.bool "support edge delete: aff > 0" true (aff o > 0);
  check Alcotest.bool "pairs lost: ΔO counted" true (changed_out o > 0);
  Ig_sim.Inc_sim.check_invariants t

let test_iso_aff () =
  let p = Ig_iso.Pattern.create ~labels:[ "p"; "q" ] ~edges:[ (0, 1) ] in
  let g =
    labeled_graph [ "p"; "q"; "z"; "z"; "p"; "q" ] [ (0, 1); (2, 3) ]
  in
  let o = O.create () in
  let t = Ig_iso.Inc_iso.init ~obs:o g p in
  check Alcotest.int "one initial match" 1 (Ig_iso.Inc_iso.n_matches t);
  Ig_iso.Inc_iso.delete_edge t 2 3;
  ignore (Ig_iso.Inc_iso.flush_delta t);
  check Alcotest.int "z-z delete: ΔG counted" 1 (changed_in o);
  check Alcotest.int "z-z delete: aff = 0" 0 (aff o);
  O.reset o;
  Ig_iso.Inc_iso.insert_edge t 4 5;
  ignore (Ig_iso.Inc_iso.flush_delta t);
  check Alcotest.bool "match-creating insert: aff > 0" true (aff o > 0);
  check Alcotest.bool "neighborhood explored" true
    (O.counter o O.K.nodes_visited > 0);
  check Alcotest.bool "match gained: ΔO counted" true (changed_out o > 0);
  O.reset o;
  Ig_iso.Inc_iso.delete_edge t 0 1;
  ignore (Ig_iso.Inc_iso.flush_delta t);
  check Alcotest.bool "match edge delete: aff > 0" true (aff o > 0);
  Ig_iso.Inc_iso.check_invariants t

(* ---- tracer: ring buffer semantics ---------------------------------------- *)

let entry_testable =
  Alcotest.testable
    (fun ppf e -> TE.pp_event ppf e)
    (fun (a : T.entry) b -> a = b)

let test_tracer_ring_wrap () =
  let tr = T.create ~capacity:4 () in
  check Alcotest.bool "enabled" true (T.enabled tr);
  check Alcotest.int "capacity" 4 (T.capacity tr);
  for i = 0 to 5 do
    T.frontier_expand tr ~node:i
  done;
  check Alcotest.int "length capped" 4 (T.length tr);
  check Alcotest.int "two dropped" 2 (T.dropped tr);
  let snap = T.snapshot tr in
  check Alcotest.int "snapshot drops" 2 snap.T.drops;
  check
    Alcotest.(list entry_testable)
    "oldest dropped, rest in order"
    [
      { T.seq = 2; event = T.Frontier_expand { node = 2 } };
      { T.seq = 3; event = T.Frontier_expand { node = 3 } };
      { T.seq = 4; event = T.Frontier_expand { node = 4 } };
      { T.seq = 5; event = T.Frontier_expand { node = 5 } };
    ]
    snap.T.entries;
  T.clear tr;
  check Alcotest.int "clear empties" 0 (T.length tr);
  check Alcotest.int "clear resets drops" 0 (T.dropped tr);
  T.span_begin tr "s";
  (* The logical clock keeps running across a clear. *)
  check
    Alcotest.(list entry_testable)
    "seq survives clear"
    [ { T.seq = 6; event = T.Span_begin "s" } ]
    (T.snapshot tr).T.entries;
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Tracer.create: capacity must be positive") (fun () ->
      ignore (T.create ~capacity:0 ()))

let test_tracer_noop () =
  let tr = T.noop in
  check Alcotest.bool "disabled" false (T.enabled tr);
  T.aff_enter tr ~node:0 ~rule:T.Kws_shorter_kdist;
  T.cert_rewrite tr ~node:0 ~field:"f" ~before:"a" ~after:"b";
  T.frontier_expand tr ~node:1;
  T.span_begin tr "s";
  T.span_end tr "s";
  let r = T.with_span tr "w" (fun () -> 7) in
  check Alcotest.int "with_span passes through" 7 r;
  check Alcotest.int "nothing recorded" 0 (T.length tr);
  check Alcotest.bool "snapshot empty" true
    ((T.snapshot tr).T.entries = [] && (T.snapshot tr).T.drops = 0)

(* A Noop tracer leaves engine outputs and Obs counters bit-identical to a
   traced run: drive two identical SCC engines (one traced, one not)
   through the same updates and compare answers and counter snapshots. *)
let test_noop_tracer_identical_run () =
  let mk () = labeled_graph [ "x"; "x"; "x"; "x" ] [ (0, 1); (1, 2); (2, 3) ] in
  let updates =
    [
      Digraph.Insert (3, 0);
      Digraph.Delete (1, 2);
      Digraph.Insert (2, 1);
      Digraph.Insert (1, 2);
    ]
  in
  let run trace =
    let o = O.create () in
    let t = Ig_scc.Inc_scc.init ~obs:o ~trace (mk ()) in
    let deltas =
      List.map (fun u -> Ig_scc.Inc_scc.apply_batch t [ u ]) updates
    in
    let comps =
      List.sort compare
        (List.map (List.sort compare) (Ig_scc.Inc_scc.components t))
    in
    (comps, List.length deltas, O.counters o)
  in
  let traced = run (T.create ()) and untraced = run T.noop in
  check Alcotest.bool "components identical" true
    (let c, _, _ = traced and c', _, _ = untraced in
     c = c');
  check
    Alcotest.(list (pair string int))
    "Obs counters identical"
    (let _, _, c = untraced in
     c)
    (let _, _, c = traced in
     c)

(* ---- tracer: engine events, export, explain -------------------------------- *)

(* A traced KWS run: every Aff_enter carries a rule tag, the Chrome export
   passes the validator, and the explain rendering names the rule. *)
let traced_kws_snapshot () =
  let g = labeled_graph [ "a"; "b"; "d" ] [ (1, 0); (1, 2) ] in
  let q = { Ig_kws.Batch.keywords = [ "a"; "d" ]; bound = 2 } in
  let tr = T.create () in
  let t = Ig_kws.Inc_kws.init ~trace:tr g q in
  ignore (Ig_kws.Inc_kws.apply_batch t [ Digraph.Delete (1, 2) ]);
  T.snapshot tr

let test_engine_trace_events () =
  let snap = traced_kws_snapshot () in
  check Alcotest.bool "events recorded" true (snap.T.entries <> []);
  let affs =
    List.filter_map
      (fun (e : T.entry) ->
        match e.T.event with T.Aff_enter { rule; _ } -> Some rule | _ -> None)
      snap.T.entries
  in
  check Alcotest.bool "AFF entries recorded" true (affs <> []);
  List.iter
    (fun r ->
      check Alcotest.bool "rule tag is a known rule" true
        (List.mem r T.all_rules))
    affs;
  check Alcotest.bool "histogram nonempty" true (T.rule_histogram snap <> []);
  let spans =
    List.filter
      (fun (e : T.entry) ->
        match e.T.event with
        | T.Span_begin _ | T.Span_end _ -> true
        | _ -> false)
      snap.T.entries
  in
  check Alcotest.int "one span pair" 2 (List.length spans)

let test_chrome_export_validates () =
  let snap = traced_kws_snapshot () in
  let json = TE.to_chrome ~name:"IncKWS" snap in
  (match TE.validate json with
  | Ok n ->
      (* process_name metadata + one event per entry *)
      check Alcotest.int "all events present" (List.length snap.T.entries + 1) n
  | Error e -> Alcotest.fail ("validator rejected a fresh export: " ^ e));
  (* The export survives a print/parse round trip. *)
  match J.parse (J.to_string ~indent:true json) with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok json' -> (
      match TE.validate json' with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("reparsed trace rejected: " ^ e))

let test_validator_rejects_garbage () =
  let reject what j =
    match TE.validate j with
    | Ok _ -> Alcotest.fail ("validator accepted " ^ what)
    | Error _ -> ()
  in
  reject "a non-trace object" (J.Obj [ ("x", J.Int 1) ]);
  reject "an event without ph"
    (J.Obj [ ("traceEvents", J.Arr [ J.Obj [ ("name", J.Str "e") ] ]) ]);
  reject "a backwards timestamp"
    (J.Obj
       [
         ( "traceEvents",
           J.Arr
             [
               J.Obj
                 [
                   ("name", J.Str "a"); ("ph", J.Str "i"); ("s", J.Str "t");
                   ("ts", J.Int 5); ("pid", J.Int 0); ("tid", J.Int 0);
                 ];
               J.Obj
                 [
                   ("name", J.Str "b"); ("ph", J.Str "i"); ("s", J.Str "t");
                   ("ts", J.Int 4); ("pid", J.Int 0); ("tid", J.Int 0);
                 ];
             ] );
       ]);
  reject "an aff_enter without a rule"
    (J.Obj
       [
         ( "traceEvents",
           J.Arr
             [
               J.Obj
                 [
                   ("name", J.Str "aff_enter"); ("ph", J.Str "i");
                   ("ts", J.Int 0); ("pid", J.Int 0); ("tid", J.Int 0);
                   ("args", J.Obj [ ("node", J.Int 3) ]);
                 ];
             ] );
       ])

let test_explain_rendering () =
  let snap = traced_kws_snapshot () in
  let text = TE.explain_to_string snap in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "names a rule" true
    (List.exists (fun r -> contains text (T.rule_name r)) T.all_rules);
  check Alcotest.bool "shows the event log" true (contains text "event log");
  check Alcotest.bool "empty snapshot renders" true
    (contains (TE.explain_to_string T.empty_snapshot) "0 event(s)")

(* ---- sorted_bindings / trace determinism ------------------------------------ *)

let test_sorted_bindings () =
  let tbl = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace tbl k (k * 10)) [ 5; 1; 9; 3; 7 ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "ascending by key"
    [ (1, 10); (3, 30); (5, 50); (7, 70); (9, 90) ]
    (O.sorted_bindings ~compare:Int.compare tbl);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "empty table" []
    (O.sorted_bindings ~compare:Int.compare (Hashtbl.create 4));
  let s = Hashtbl.create 4 in
  List.iter (fun k -> Hashtbl.replace s k ()) [ "b"; "a"; "c" ];
  check
    (Alcotest.list Alcotest.string)
    "string keys" [ "a"; "b"; "c" ]
    (List.map fst (O.sorted_bindings ~compare:String.compare s))

(* Regression for the sorted-iteration fixes in Inc_kws / Inc_rpq: two
   independent traced runs of the same seeded session must export
   byte-identical Chrome JSON. In-process both runs share one hash seed;
   the cross-seed version of this check (fresh OCAMLRUNPARAM=R seed per
   process, all five engines) is the @trace-determinism alias in
   bench/dune. *)
let test_trace_byte_equality () =
  let labels = [ "a"; "b"; "c"; "d"; "a"; "b"; "c"; "d" ] in
  let edges =
    [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6); (1, 5); (6, 3); (3, 0) ]
  in
  let updates =
    Digraph.
      [ Delete (1, 2); Insert (2, 5); Delete (3, 0); Insert (0, 4) ]
  in
  let kws_trace () =
    let tr = T.create () in
    let t =
      Ig_kws.Inc_kws.init ~trace:tr
        (labeled_graph labels edges)
        { Ig_kws.Batch.keywords = [ "a"; "d" ]; bound = 3 }
    in
    ignore (Ig_kws.Inc_kws.apply_batch t updates);
    J.to_string ~indent:true (TE.to_chrome ~name:"IncKWS" (T.snapshot tr))
  in
  let rpq_trace () =
    let tr = T.create () in
    let q =
      match Ig_nfa.Regex.parse "a . b* . c" with
      | Ok q -> q
      | Error e -> Alcotest.fail ("bad test regex: " ^ e)
    in
    let t = Ig_rpq.Inc_rpq.create ~trace:tr (labeled_graph labels edges) q in
    ignore (Ig_rpq.Inc_rpq.apply_batch t updates);
    J.to_string ~indent:true (TE.to_chrome ~name:"IncRPQ" (T.snapshot tr))
  in
  check Alcotest.string "IncKWS traces byte-identical" (kws_trace ())
    (kws_trace ());
  check Alcotest.string "IncRPQ traces byte-identical" (rpq_trace ())
    (rpq_trace ())

(* ---- histograms and with_apply ----------------------------------------------- *)

module H = Ig_obs.Histogram

let test_observe_and_lookup () =
  let o = O.create () in
  check Alcotest.bool "absent histogram is None" true (O.histogram o "h" = None);
  O.observe o "h" 1.0;
  O.observe o "h" 2.0;
  O.observe o "g" 0.5;
  (match O.histogram o "h" with
  | None -> Alcotest.fail "histogram disappeared"
  | Some h ->
      check Alcotest.int "two samples" 2 (H.count h);
      check (Alcotest.float 1e-12) "sum" 3.0 (H.sum h));
  check
    (Alcotest.list Alcotest.string)
    "snapshot sorted by name" [ "g"; "h" ]
    (List.map fst (O.histograms o));
  O.reset o;
  check Alcotest.bool "reset clears histograms" true (O.histograms o = [])

let test_noop_histograms () =
  O.observe O.noop "h" 1.0;
  check Alcotest.bool "noop stores nothing" true (O.histogram O.noop "h" = None);
  check Alcotest.bool "noop snapshot empty" true (O.histograms O.noop = []);
  check Alcotest.int "with_apply passes through" 42
    (O.with_apply O.noop (fun () -> 42))

let test_with_apply_records () =
  let o = O.create () in
  for _ = 1 to 3 do
    O.with_apply o (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id)))
  done;
  List.iter
    (fun name ->
      match O.histogram o name with
      | None -> Alcotest.failf "with_apply recorded no %s" name
      | Some h ->
          check Alcotest.int (name ^ ": one sample per call") 3 (H.count h);
          if H.min_value h < 0.0 then
            Alcotest.failf "%s went negative: %g" name (H.min_value h))
    [
      O.K.apply_latency;
      O.K.gc_minor_words;
      O.K.gc_major_words;
      O.K.gc_promoted_words;
    ]

let test_with_apply_reentrant () =
  let o = O.create () in
  (* A batch entry point funneling through unit entry points: only the
     outermost wrapper records. *)
  O.with_apply o (fun () ->
      O.with_apply o (fun () -> ());
      O.with_apply o (fun () -> ()));
  (match O.histogram o O.K.apply_latency with
  | None -> Alcotest.fail "no latency recorded"
  | Some h -> check Alcotest.int "one sample for the whole nest" 1 (H.count h));
  (* The guard resets even when the thunk raises. *)
  (try O.with_apply o (fun () -> failwith "boom") with Failure _ -> ());
  O.with_apply o (fun () -> ());
  match O.histogram o O.K.apply_latency with
  | None -> Alcotest.fail "no latency recorded"
  | Some h ->
      check Alcotest.int "guard released after exception" 3 (H.count h)

let test_monotonic_durations () =
  (* The clock contract: spans and timers can never go negative, and the
     raw clock never steps backwards across calls. *)
  let o = O.create () in
  for _ = 1 to 100 do
    O.span_begin o "s";
    O.span_end o "s";
    O.time o "t" (fun () -> ())
  done;
  let _, span_total = O.span o "s" in
  if span_total < 0.0 then Alcotest.failf "negative span total %g" span_total;
  if O.timer o "t" < 0.0 then Alcotest.failf "negative timer %g" (O.timer o "t");
  let prev = ref (O.now_ns ()) in
  for _ = 1 to 1000 do
    let t = O.now_ns () in
    if Int64.compare t !prev < 0 then Alcotest.fail "clock stepped backwards";
    prev := t
  done

let test_engine_latency_histograms () =
  (* One engine end-to-end: unit entry points and batches both record,
     one sample per outermost call, and the snapshot reaches to_json. *)
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let o = O.create () in
  let s = Ig_scc.Inc_scc.init ~obs:o g in
  Ig_scc.Inc_scc.insert_edge s 1 2;
  Ig_scc.Inc_scc.delete_edge s 0 1;
  ignore (Ig_scc.Inc_scc.apply_batch s [ Digraph.Insert (2, 0) ]);
  (match O.histogram o O.K.apply_latency with
  | None -> Alcotest.fail "engine recorded no latency"
  | Some h -> check Alcotest.int "three outermost calls" 3 (H.count h));
  match J.member "histograms" (O.to_json o) with
  | Some (J.Obj kvs) ->
      check Alcotest.bool "latency histogram exported" true
        (List.mem_assoc O.K.apply_latency kvs)
  | _ -> Alcotest.fail "to_json lacks a histograms object"

(* ---- the JSON escaper under the parser -------------------------------------- *)

(* Trace export leans on the hand-rolled escaper for before/after values
   that can contain anything; round-trip every byte through the parser. *)
let test_escape_all_bytes () =
  for b = 0 to 255 do
    let s = String.make 1 (Char.chr b) in
    match J.parse (J.to_string (J.Str s)) with
    | Ok (J.Str s') ->
        check Alcotest.string (Printf.sprintf "byte 0x%02x" b) s s'
    | Ok _ -> Alcotest.fail (Printf.sprintf "byte 0x%02x: not a string" b)
    | Error e ->
        Alcotest.fail (Printf.sprintf "byte 0x%02x: parse error: %s" b e)
  done

let escape_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"escape_string round-trips under parse"
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s ->
      match J.parse (J.to_string (J.Str s)) with
      | Ok (J.Str s') -> String.equal s s'
      | _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters are monotonic" `Quick
            test_counter_monotonic;
          Alcotest.test_case "snapshots are sorted" `Quick
            test_counter_snapshot_sorted;
          Alcotest.test_case "changed aggregates ΔG + ΔO" `Quick
            test_changed_aggregates;
          Alcotest.test_case "diff_counters" `Quick test_diff_counters;
          Alcotest.test_case "gauges and timers" `Quick test_gauges_and_timers;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span mismatch rejected" `Quick
            test_span_mismatch_rejected;
          Alcotest.test_case "open span names" `Quick test_open_spans;
          Alcotest.test_case "spans survive exceptions" `Quick
            test_span_exception_safe;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "disabled sink",
        [
          Alcotest.test_case "noop is a true no-op" `Quick test_noop_sink;
          Alcotest.test_case "engines default to noop" `Quick
            test_engines_default_to_noop;
        ] );
      ( "engine smoke",
        [
          Alcotest.test_case "KWS aff localization" `Quick test_kws_aff;
          Alcotest.test_case "RPQ aff localization" `Quick test_rpq_aff;
          Alcotest.test_case "SCC aff localization" `Quick test_scc_aff;
          Alcotest.test_case "Sim aff localization" `Quick test_sim_aff;
          Alcotest.test_case "ISO aff localization" `Quick test_iso_aff;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring buffer wraps, drops oldest" `Quick
            test_tracer_ring_wrap;
          Alcotest.test_case "noop tracer is a true no-op" `Quick
            test_tracer_noop;
          Alcotest.test_case "noop tracer leaves runs bit-identical" `Quick
            test_noop_tracer_identical_run;
          Alcotest.test_case "engine events carry rule tags" `Quick
            test_engine_trace_events;
          Alcotest.test_case "chrome export validates" `Quick
            test_chrome_export_validates;
          Alcotest.test_case "validator rejects garbage" `Quick
            test_validator_rejects_garbage;
          Alcotest.test_case "explain rendering" `Quick test_explain_rendering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sorted_bindings ascends" `Quick
            test_sorted_bindings;
          Alcotest.test_case "KWS/RPQ traces byte-identical across runs"
            `Quick test_trace_byte_equality;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "observe and lookup" `Quick
            test_observe_and_lookup;
          Alcotest.test_case "noop sink stores nothing" `Quick
            test_noop_histograms;
          Alcotest.test_case "with_apply records latency and GC" `Quick
            test_with_apply_records;
          Alcotest.test_case "with_apply is reentrancy-safe" `Quick
            test_with_apply_reentrant;
          Alcotest.test_case "monotonic clock contract" `Quick
            test_monotonic_durations;
          Alcotest.test_case "engine latency end-to-end" `Quick
            test_engine_latency_histograms;
        ] );
      ( "json escaper",
        [
          Alcotest.test_case "all 256 bytes round-trip" `Quick
            test_escape_all_bytes;
          QCheck_alcotest.to_alcotest escape_roundtrip_prop;
        ] );
    ]
