(* Tests for the workload generators: graph profiles, update batches and
   query samplers. *)

open Ig_graph
module G = Ig_workload.Generate
module P = Ig_workload.Profiles
module U = Ig_workload.Updates
module Q = Ig_workload.Queries

let check = Alcotest.check
let rng () = Random.State.make [| 42 |]

let test_uniform_counts () =
  let g = G.uniform ~rng:(rng ()) ~nodes:500 ~edges:1500 ~labels:10 () in
  check Alcotest.int "nodes" 500 (Digraph.n_nodes g);
  check Alcotest.int "edges" 1500 (Digraph.n_edges g);
  (* No self loops. *)
  Digraph.iter_edges
    (fun u v -> if u = v then Alcotest.fail "self loop generated")
    g

let test_uniform_label_alphabet () =
  let g = G.uniform ~rng:(rng ()) ~nodes:300 ~edges:0 ~labels:7 () in
  let seen = Hashtbl.create 8 in
  Digraph.iter_nodes (fun v -> Hashtbl.replace seen (Digraph.label_name g v) ()) g;
  check Alcotest.bool "alphabet bounded" true (Hashtbl.length seen <= 7);
  check Alcotest.bool "alphabet used" true (Hashtbl.length seen >= 5)

let test_uniform_saturation () =
  (* More edges than possible: must terminate with the full simple digraph. *)
  let g = G.uniform ~rng:(rng ()) ~nodes:5 ~edges:1000 ~labels:2 () in
  check Alcotest.int "saturated" 20 (Digraph.n_edges g)

let test_uniform_deterministic () =
  let g1 = G.uniform ~rng:(rng ()) ~nodes:100 ~edges:300 ~labels:5 () in
  let g2 = G.uniform ~rng:(rng ()) ~nodes:100 ~edges:300 ~labels:5 () in
  check Alcotest.bool "same edges" true
    (List.sort compare (Digraph.edges g1) = List.sort compare (Digraph.edges g2))

let test_preferential_skew () =
  let g = G.preferential ~rng:(rng ()) ~nodes:2000 ~edges:10000 ~labels:5 () in
  check Alcotest.int "edges" 10000 (Digraph.n_edges g);
  let max_deg = ref 0 and sum = ref 0 in
  Digraph.iter_nodes
    (fun v ->
      let d = Digraph.out_degree g v + Digraph.in_degree g v in
      if d > !max_deg then max_deg := d;
      sum := !sum + d)
    g;
  let avg = float_of_int !sum /. 2000.0 in
  (* Heavy tail: the hub should dwarf the average degree. *)
  check Alcotest.bool "skewed" true (float_of_int !max_deg > 4.0 *. avg)

let test_plant_scc () =
  let g = G.uniform ~rng:(rng ()) ~nodes:400 ~edges:100 ~labels:3 () in
  G.plant_scc ~rng:(rng ()) g ~fraction:0.75;
  let biggest =
    List.fold_left
      (fun acc c -> max acc (List.length c))
      0
      (Ig_scc.Tarjan.scc g)
  in
  check Alcotest.bool "giant scc" true (biggest >= 300)

let test_profiles () =
  List.iter
    (fun spec ->
      let g = P.instantiate ~scale:0.02 ~rng:(rng ()) spec in
      check Alcotest.bool (spec.P.name ^ " nonempty") true
        (Digraph.n_nodes g > 0 && Digraph.n_edges g > 0);
      let expected_nodes =
        max 2 (int_of_float (float_of_int spec.P.base_nodes *. 0.02))
      in
      check Alcotest.int (spec.P.name ^ " nodes") expected_nodes
        (Digraph.n_nodes g))
    [ P.dbpedia_like; P.livej_like; P.synthetic ]

let test_updates_shape () =
  let g = G.uniform ~rng:(rng ()) ~nodes:300 ~edges:900 ~labels:5 () in
  let ups = U.generate ~rng:(rng ()) g ~size:100 () in
  check Alcotest.int "size" 100 (List.length ups);
  let ins, del =
    List.partition (function Digraph.Insert _ -> true | _ -> false) ups
  in
  check Alcotest.int "ratio 1" 50 (List.length ins);
  check Alcotest.int "ratio 1 del" 50 (List.length del);
  (* Every update takes effect on a copy. *)
  let g' = Digraph.copy g in
  List.iter
    (fun up ->
      if not (Digraph.apply g' up) then Alcotest.fail "no-op update generated")
    ups

let test_updates_ratio () =
  let g = G.uniform ~rng:(rng ()) ~nodes:300 ~edges:900 ~labels:5 () in
  let ups = U.generate ~rng:(rng ()) g ~size:90 ~ratio:5.0 () in
  let ins = List.filter (function Digraph.Insert _ -> true | _ -> false) ups in
  check Alcotest.int "rho=5" 75 (List.length ins)

let test_updates_no_conflicts () =
  let g = G.uniform ~rng:(rng ()) ~nodes:100 ~edges:300 ~labels:3 () in
  let ups = U.generate ~rng:(rng ()) g ~size:200 () in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun up ->
      let e =
        match up with Digraph.Insert (u, v) | Digraph.Delete (u, v) -> (u, v)
      in
      if Hashtbl.mem seen e then Alcotest.fail "conflicting updates";
      Hashtbl.replace seen e ())
    ups

let test_updates_deterministic () =
  (* Same seed over the same graph ⇒ the identical stream, element for
     element — the fuzz harness replays shrunk reproducers on this
     guarantee. *)
  let mk () = G.uniform ~rng:(rng ()) ~nodes:200 ~edges:600 ~labels:4 () in
  let u1 = U.generate ~rng:(rng ()) (mk ()) ~size:150 () in
  let u2 = U.generate ~rng:(rng ()) (mk ()) ~size:150 () in
  check Alcotest.bool "generate: same seed, same stream" true (u1 = u2);
  (* generate_replay mutates its graph, so give each call its own copy. *)
  let r1 = U.generate_replay ~rng:(rng ()) (mk ()) ~size:150 () in
  let r2 = U.generate_replay ~rng:(rng ()) (mk ()) ~size:150 () in
  check Alcotest.bool "generate_replay: same seed, same stream" true (r1 = r2)

(* Every deletion a generator emits must target an edge present when it is
   applied — the guard re-checks candidates against the live graph, so a
   batch never contains a no-op (the starving sparse graph is the case that
   used to slip absent-edge deletions through). *)
let assert_batch_effective name base ups =
  let live = Digraph.copy base in
  List.iter
    (fun up ->
      (match up with
      | Digraph.Delete (u, v) ->
          check Alcotest.bool (name ^ ": deletes a present edge") true
            (Digraph.mem_edge live u v)
      | Digraph.Insert (u, v) ->
          check Alcotest.bool (name ^ ": inserts an absent edge") false
            (Digraph.mem_edge live u v));
      check Alcotest.bool (name ^ ": update takes effect") true
        (Digraph.apply live up))
    ups

let test_updates_delete_present_edges () =
  let sparse () = G.uniform ~rng:(rng ()) ~nodes:50 ~edges:10 ~labels:2 () in
  let g = sparse () in
  let ups = U.generate ~rng:(Random.State.make [| 9 |]) g ~size:200 () in
  assert_batch_effective "generate" g ups;
  (* generate_replay's base is the graph as mutated by the call itself. *)
  let g' = sparse () in
  let ups' =
    U.generate_replay ~rng:(Random.State.make [| 9 |]) g' ~size:200 ()
  in
  assert_batch_effective "generate_replay" g' ups'

let test_kws_query () =
  let g = G.uniform ~rng:(rng ()) ~nodes:200 ~edges:400 ~labels:5 () in
  let q = Q.kws ~rng:(rng ()) g ~m:3 ~b:2 in
  check Alcotest.int "m" 3 (List.length q.Ig_kws.Batch.keywords);
  check Alcotest.int "b" 2 q.Ig_kws.Batch.bound;
  (* Keywords come from the graph, so each matches some node. *)
  List.iter
    (fun k ->
      match Ig_graph.Interner.find (Digraph.interner g) k with
      | Some sym ->
          check Alcotest.bool "keyword present" true
            (Digraph.nodes_with_label g sym <> [])
      | None -> Alcotest.fail "keyword not in graph")
    q.Ig_kws.Batch.keywords

let test_rpq_query () =
  let g = G.uniform ~rng:(rng ()) ~nodes:200 ~edges:600 ~labels:4 () in
  for seed = 0 to 20 do
    let r = Random.State.make [| seed |] in
    let q = Q.rpq ~rng:r g ~size:4 in
    check Alcotest.int "size" 4 (Ig_nfa.Regex.size q);
    (* The query must have sources: its NFA accepts no word starting from
       a star-swallowed prefix... concretely δ(s0, first label) ≠ ∅. *)
    let a = Ig_nfa.Nfa.compile (Digraph.interner g) q in
    let has_start =
      List.exists
        (fun sym -> Ig_nfa.Nfa.next a (Ig_nfa.Nfa.start a) sym <> [])
        (Ig_nfa.Nfa.alphabet a)
    in
    check Alcotest.bool "has initial transitions" true has_start
  done

let test_iso_query () =
  let g = G.uniform ~rng:(rng ()) ~nodes:300 ~edges:1800 ~labels:3 () in
  match Q.iso ~rng:(rng ()) g ~nodes:4 ~edges:5 with
  | None -> Alcotest.fail "no pattern sampled from a dense graph"
  | Some p ->
      check Alcotest.int "nodes" 4 (Ig_iso.Pattern.n_nodes p);
      check Alcotest.bool "edges in range" true
        (Ig_iso.Pattern.n_edges p >= 3 && Ig_iso.Pattern.n_edges p <= 5);
      (* Sampled from the graph: at least one match exists. *)
      check Alcotest.bool "satisfiable" true
        (Ig_iso.Vf2.find_all g p <> [])

let test_iso_query_sparse_none () =
  let g = G.uniform ~rng:(rng ()) ~nodes:10 ~edges:0 ~labels:2 () in
  check Alcotest.bool "no pattern" true
    (Q.iso ~rng:(rng ()) g ~nodes:3 ~edges:2 = None)

let () =
  Alcotest.run "ig_workload"
    [
      ( "generate",
        [
          Alcotest.test_case "uniform counts" `Quick test_uniform_counts;
          Alcotest.test_case "label alphabet" `Quick test_uniform_label_alphabet;
          Alcotest.test_case "saturation" `Quick test_uniform_saturation;
          Alcotest.test_case "deterministic" `Quick test_uniform_deterministic;
          Alcotest.test_case "preferential skew" `Quick test_preferential_skew;
          Alcotest.test_case "plant scc" `Quick test_plant_scc;
          Alcotest.test_case "profiles" `Quick test_profiles;
        ] );
      ( "updates",
        [
          Alcotest.test_case "shape" `Quick test_updates_shape;
          Alcotest.test_case "ratio" `Quick test_updates_ratio;
          Alcotest.test_case "no conflicts" `Quick test_updates_no_conflicts;
          Alcotest.test_case "deterministic" `Quick test_updates_deterministic;
          Alcotest.test_case "deletes present edges" `Quick
            test_updates_delete_present_edges;
        ] );
      ( "queries",
        [
          Alcotest.test_case "kws" `Quick test_kws_query;
          Alcotest.test_case "rpq" `Quick test_rpq_query;
          Alcotest.test_case "iso" `Quick test_iso_query;
          Alcotest.test_case "iso sparse" `Quick test_iso_query_sparse_none;
        ] );
    ]
