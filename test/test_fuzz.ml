(* Differential fuzzing: every incremental engine cross-checked against its
   batch oracle (kdist BFS, NFA-product reachability, Tarjan, the simulation
   fixpoint, VF2) under seeded random update streams, with check_invariants
   validating the auxiliary certificates after every unit update.

   Tier-1 runs a bounded number of steps per algorithm inside `dune
   runtest`; `dune build @fuzz` reruns the same cases as a soak (see
   FUZZ_STEPS below). The mutation tests plant a bug — a corrupted kdist
   certificate entry, then an engine that drops certain deletions — and
   assert the harness both detects it and ddmin-shrinks the failing stream
   to a minimal reproducer. *)

open Ig_graph
module O = Ig_check.Oracle
module A = Ig_check.Adapters
module St = Ig_check.Stream
module Sh = Ig_check.Shrink
module H = Ig_check.Harness
module Sc = Ig_check.Scenarios

let check = Alcotest.check

(* Tier-1 bound: 400 mixed insert/delete steps per algorithm. The @fuzz
   alias overrides via FUZZ_STEPS for soak runs. *)
let steps =
  match Sys.getenv_opt "FUZZ_STEPS" with
  | Some s -> ( try int_of_string s with Failure _ -> 400)
  | None -> 400

(* ---- differential fuzz, one case per algorithm -------------------------- *)

let scenario_case ~backend (name, seed) =
  Alcotest.test_case
    (Printf.sprintf "%s: %d steps vs batch oracle" name steps)
    `Quick
    (fun () ->
      let rng = Random.State.make [| 0x90; seed |] in
      match Sc.by_name ~backend ~rng name with
      | None -> Alcotest.failf "unknown scenario %s" name
      | Some s -> (
          match
            H.run ~make:s.Sc.make ~focus:s.Sc.focus ~steps ~seed ()
          with
          | Ok n -> check Alcotest.int "steps completed" steps n
          | Error f -> Alcotest.failf "%a" H.pp_failure f))

let scenario_seeds =
  [
    ("kws", 101);
    ("rpq", 102);
    ("scc", 103);
    ("sim", 104);
    ("iso", 105);
    (* The Fig. 9 two-cycle gadget: the stream keeps toggling the Δ1/Δ2
       bridge edges whose interaction the RPQ unboundedness proof turns
       on. *)
    ("gadget", 106);
  ]

(* Every scenario runs on both graph backends: the same engines over the
   CSR + delta-overlay core must agree with the batch oracles too. *)
let scenario_cases = List.map (scenario_case ~backend:`Hashtbl) scenario_seeds
let scenario_cases_csr = List.map (scenario_case ~backend:`Csr) scenario_seeds

(* ---- durable fuzz: journaled do/undo/crash-recover interleavings -------- *)

(* Each engine under Ig_check.Durable: every update write-ahead journaled,
   random interleaved undo k, do→undo byte-identity pairs, snapshots, and
   clean/torn crash-recoveries — with the differential oracle consulted
   after every action. Step count is fixed (not FUZZ_STEPS-scaled): the
   crash actions rebuild the engine from scratch, so soak scaling belongs
   to the cheaper differential cases above. *)
let durable_steps = 200

let durable_case ~backend (name, seed) =
  Alcotest.test_case
    (Printf.sprintf "%s: %d journaled do/undo/crash steps" name durable_steps)
    `Quick
    (fun () ->
      let rng = Random.State.make [| 0xd0; seed |] in
      match Sc.by_name ~backend ~rng name with
      | None -> Alcotest.failf "unknown scenario %s" name
      | Some s -> (
          match
            Ig_check.Durable.run ~scenario:s
              ~dir:
                (Printf.sprintf "durable_%s_%s"
                   (Digraph.backend_name backend)
                   name)
              ~steps:durable_steps ~seed ()
          with
          | Ok n -> check Alcotest.int "steps completed" durable_steps n
          | Error msg -> Alcotest.fail msg))

let durable_seeds =
  [ ("kws", 201); ("rpq", 202); ("scc", 203); ("sim", 204); ("iso", 205) ]

let durable_cases = List.map (durable_case ~backend:`Hashtbl) durable_seeds
let durable_cases_csr = List.map (durable_case ~backend:`Csr) durable_seeds

(* ---- stream driver ------------------------------------------------------ *)

let test_stream_deterministic () =
  let run () =
    let grng = Random.State.make [| 99 |] in
    let g = Ig_workload.Generate.uniform ~rng:grng ~nodes:20 ~edges:50 ~labels:3 () in
    let st =
      St.create ~rng:(Random.State.make [| 123 |]) ~focus:[ (0, 1); (2, 3) ] g
    in
    let us = ref [] in
    for _ = 1 to 300 do
      let u = St.next st in
      ignore (Digraph.apply g u);
      us := u :: !us
    done;
    List.rev !us
  in
  check Alcotest.bool "same seed, same stream" true (run () = run ())

let test_stream_mixes_ops () =
  let grng = Random.State.make [| 7 |] in
  let g = Ig_workload.Generate.uniform ~rng:grng ~nodes:15 ~edges:40 ~labels:3 () in
  let st = St.create ~rng:(Random.State.make [| 5 |]) g in
  let ins = ref 0 and del = ref 0 and noop = ref 0 and loops = ref 0 in
  for _ = 1 to 500 do
    let u = St.next st in
    (match u with
    | Digraph.Insert (a, b) ->
        incr ins;
        if a = b then incr loops
    | Digraph.Delete _ -> incr del);
    if not (Digraph.apply g u) then incr noop
  done;
  check Alcotest.bool "inserts present" true (!ins > 100);
  check Alcotest.bool "deletes present" true (!del > 100);
  check Alcotest.bool "no-ops exercised (dups, absent deletes)" true (!noop > 10);
  check Alcotest.bool "self-loops exercised" true (!loops > 0)

(* ---- ddmin -------------------------------------------------------------- *)

let test_ddmin_pure () =
  (* Failure needs the pair {x, y}; everything else is noise. *)
  let x = Digraph.Insert (1, 2) and y = Digraph.Delete (3, 4) in
  let noise i = Digraph.Insert (100 + i, 200 + i) in
  let stream =
    List.init 12 noise @ [ x ] @ List.init 9 (fun i -> noise (50 + i)) @ [ y ]
    @ List.init 7 (fun i -> noise (80 + i))
  in
  let fails s = List.mem x s && List.mem y s in
  check Alcotest.bool "shrinks to the pair" true
    (Sh.ddmin ~fails stream = [ x; y ]);
  check Alcotest.bool "non-failing input unchanged" true
    (Sh.ddmin ~fails:(fun _ -> false) stream = stream)

(* ---- mutation smoke tests ----------------------------------------------- *)

(* Corrupt one kdist certificate entry after init; the harness's invariant
   check must flag it (the differential layer proves it catches planted
   auxiliary-structure bugs, not just output bugs). *)
let test_mutation_kdist_detected () =
  let g = Digraph.create () in
  let k = Digraph.add_node g "key" in
  let a = Digraph.add_node g "x" in
  let b = Digraph.add_node g "x" in
  ignore (Digraph.add_edge g a k);
  ignore (Digraph.add_edge g b a);
  ignore (Digraph.add_edge g k b);
  let q = { Ig_kws.Batch.keywords = [ "key" ]; bound = 2 } in
  let make () =
    let t = Ig_kws.Inc_kws.init (Digraph.copy g) q in
    if not (Ig_kws.Inc_kws.corrupt_certificate_for_testing t) then
      Alcotest.fail "no kdist entry to corrupt";
    A.of_kws t
  in
  match H.run ~make ~steps:40 ~seed:7 () with
  | Ok _ -> Alcotest.fail "planted kdist corruption went undetected"
  | Error f ->
      check Alcotest.int "caught by the post-init check" 0 f.H.step;
      check Alcotest.bool "invariant violation reported" true
        (String.length f.H.reason > 0);
      check Alcotest.bool "shrunk to <= 10 updates" true
        (List.length f.H.shrunk <= 10)

(* A deliberately buggy engine: deletions of edges leaving node 0 are
   dropped on the floor, so the maintained answer drifts from the truth.
   The engine stays internally consistent — check_invariants cannot see the
   bug; only the differential comparison can. The harness must catch the
   first divergence and ddmin the stream to a minimal reproducer. *)
module Buggy_scc = struct
  module I = Ig_scc.Inc_scc

  type t = { eng : I.t; truth : Digraph.t }
  type query = unit

  let name = "buggy-scc"

  let init g () =
    { eng = I.init ~trace:(Ig_obs.Tracer.create ()) (Digraph.copy g);
      truth = g }
  let graph t = t.truth

  let apply t u =
    ignore (Digraph.apply t.truth u);
    match u with
    | Digraph.Delete (0, _) -> () (* the planted bug *)
    | Digraph.Insert (a, b) -> I.insert_edge t.eng a b
    | Digraph.Delete (a, b) -> I.delete_edge t.eng a b

  let answer t = A.canon_comps (I.components t.eng)
  let recompute t = A.canon_comps (Ig_scc.Tarjan.scc t.truth)
  let check_invariants t = I.check_invariants t.eng
  let obs t = I.obs t.eng
  let trace t = I.trace t.eng
  let cert_snapshot t = I.cert_snapshot t.eng
end

let test_mutation_buggy_engine_shrinks () =
  let g = Digraph.create () in
  for _ = 0 to 5 do
    ignore (Digraph.add_node g "x")
  done;
  List.iter
    (fun (u, v) -> ignore (Digraph.add_edge g u v))
    [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 3); (2, 3) ];
  let make () =
    O.Packed ((module Buggy_scc), Buggy_scc.init (Digraph.copy g) ())
  in
  match H.run ~make ~focus:[ (0, 1) ] ~steps:200 ~seed:5 () with
  | Ok _ -> Alcotest.fail "planted divergence went undetected"
  | Error f ->
      check Alcotest.bool "nonempty reproducer" true (f.H.shrunk <> []);
      check Alcotest.bool "shrunk to <= 10 updates" true
        (List.length f.H.shrunk <= 10);
      check Alcotest.bool "reproducer replays to a failure" true
        (H.replay_fails ~make f.H.shrunk);
      (* The failure arrives with the failing step's event log attached.
         For this planted bug the log is empty — the engine dropped the
         update on the floor — and that silence is exactly the diagnosis
         the trace is meant to surface. *)
      (match f.H.trace with
      | None -> Alcotest.fail "no trace attached to the reproducer"
      | Some snap ->
          check Alcotest.bool "dropped update leaves an empty event log" true
            (snap.Ig_obs.Tracer.entries = []));
      (* 1-minimality: removing any single update loses the failure. *)
      List.iteri
        (fun i _ ->
          let sub = List.filteri (fun j _ -> j <> i) f.H.shrunk in
          check Alcotest.bool
            (Printf.sprintf "1-minimal (drop %d)" i)
            false (H.replay_fails ~make sub))
        f.H.shrunk

(* ---- harness replay plumbing -------------------------------------------- *)

let test_clean_replay_passes () =
  let rng = Random.State.make [| 31 |] in
  let s = Option.get (Sc.by_name ~rng "scc") in
  (* A healthy engine must replay any recorded stream without failing. *)
  let st =
    St.create ~rng:(Random.State.make [| 77 |]) (Digraph.copy s.Sc.base)
  in
  let g = Digraph.copy s.Sc.base in
  let us = ref [] in
  for _ = 1 to 100 do
    let u = St.next st in
    ignore (Digraph.apply g u);
    us := u :: !us
  done;
  check Alcotest.bool "no false positives" false
    (H.replay_fails ~make:s.Sc.make (List.rev !us))

let () =
  Alcotest.run "ig_check"
    [
      ("differential fuzz", scenario_cases);
      ("differential fuzz csr", scenario_cases_csr);
      ("durable fuzz", durable_cases);
      ("durable fuzz csr", durable_cases_csr);
      ( "stream driver",
        [
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "op mix" `Quick test_stream_mixes_ops;
        ] );
      ("ddmin", [ Alcotest.test_case "pure shrink" `Quick test_ddmin_pure ]);
      ( "mutation",
        [
          Alcotest.test_case "kdist corruption detected" `Quick
            test_mutation_kdist_detected;
          Alcotest.test_case "buggy engine shrunk" `Quick
            test_mutation_buggy_engine_shrinks;
        ] );
      ( "replay",
        [ Alcotest.test_case "clean replay" `Quick test_clean_replay_passes ]
      );
    ]
