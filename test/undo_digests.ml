(* Cross-hash-seed byte-identity driver behind the @undo-fuzz alias.

   Runs the durable fuzz (Ig_check.Durable) for all five engines with
   deterministic transcripts enabled, writing DIR/<scenario>.log plus the
   session's on-disk artifacts (journal + snapshots) under
   DIR/<scenario>.store. The alias runs this twice under OCAMLRUNPARAM=R —
   two processes, two fresh Hashtbl hash seeds — and diffs the two output
   trees byte for byte: every graph digest, answer digest, trace digest
   and journal byte must agree, or some hash-order iteration leaked into
   the do/undo/recover path.

   Usage: undo_digests DIR *)

let scenarios = [ ("kws", 211); ("rpq", 212); ("scc", 213); ("sim", 214); ("iso", 215) ]
let backends = [ `Hashtbl; `Csr ]
let steps = 150

let () =
  let dir =
    match Sys.argv with
    | [| _; d |] -> d
    | _ ->
        prerr_endline "usage: undo_digests DIR";
        exit 2
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let failed = ref false in
  List.iter
    (fun backend ->
      (* Both graph backends: journaled state must be byte-identical
         across hash seeds on the CSR core too. *)
      let bname = match backend with `Hashtbl -> "hashtbl" | `Csr -> "csr" in
      List.iter
        (fun (name, seed) ->
          let tag = bname ^ "_" ^ name in
          let rng = Random.State.make [| 0xbd; seed |] in
          match Ig_check.Scenarios.by_name ~backend ~rng name with
          | None ->
              Printf.eprintf "unknown scenario %s\n" name;
              failed := true
          | Some s ->
              let oc = open_out (Filename.concat dir (tag ^ ".log")) in
              let emit line =
                output_string oc line;
                output_char oc '\n'
              in
              (match
                 Ig_check.Durable.run ~scenario:s
                   ~dir:(Filename.concat dir (tag ^ ".store"))
                   ~steps ~seed ~emit ()
               with
              | Ok n -> emit (Printf.sprintf "done %d steps" n)
              | Error msg ->
                  Printf.eprintf "%s (%s): %s\n" name bname msg;
                  failed := true);
              close_out oc)
        scenarios)
    backends;
  if !failed then exit 1
