(* incgraph — command-line front end.

   Subcommands:
     generate   produce a synthetic labeled graph (profiles of Section 6)
     query      answer one query with the batch algorithm
     stream     maintain a query incrementally over a random update stream
                (with an optional flight recorder + SLO tracker armed)
     top        ASCII dashboard over a stream --metrics-out directory
     fuzz       differential soak: incremental engines vs batch oracles
     bench      incremental vs batch on one query, with cost counters
     stats      cost-accounting snapshot of one incremental session
     trace      dump a Chrome trace-event file of one traced session
     explain    per-update AFF provenance with the paper-rule histogram
     lint       determinism & instrumentation linter over the repo sources
     journal    inspect or grow a journaled session directory (WAL + snapshots)
     replay     crash-recover a journaled session (newest snapshot + tail)
     snapshot   write a certificate snapshot at the current tip
     undo       roll back the last N update batches (compensating append)

   Examples:
     incgraph generate -p dbpedia -s 0.1 -o kg.txt
     incgraph query -g kg.txt rpq 'l1 . l2* . l3'
     incgraph query -g kg.txt kws -b 2 actor award
     incgraph query -g kg.txt scc
     incgraph stream -g kg.txt --batches 5 --size 500 kws -b 2 actor award
     incgraph stream -g kg.txt --metrics-out m --slo slo.cfg scc
     incgraph top m
     incgraph fuzz --algo scc --steps 5000 --seed 2017
     incgraph bench -g kg.txt --size 500 --json scc
     incgraph stats -g kg.txt --json kws -b 2 actor award
     incgraph trace -g kg.txt --batches 2 -o TRACE_scc.json scc
     incgraph explain --gadget 4
     incgraph journal sess rpq 'l1 . l2*' --init -g kg.txt --apply +3-7
     incgraph replay sess --check
     incgraph undo sess -k 2
     incgraph replay sess --as-of 1 *)

open Cmdliner

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---- common arguments --------------------------------------------------- *)

let graph_arg =
  let doc = "Graph file in the incgraph text format (see Core.Io)." in
  Arg.(required & opt (some file) None & info [ "g"; "graph" ] ~doc ~docv:"FILE")

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 2017 & info [ "seed" ] ~doc ~docv:"N")

let backend_conv =
  let parse s =
    match Core.Digraph.backend_of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown backend %S (hashtbl|csr)" s))
  in
  Arg.conv
    (parse, fun ppf b -> Format.pp_print_string ppf (Core.Digraph.backend_name b))

let backend_arg =
  let doc =
    "Graph backend: $(b,hashtbl) (mutable adjacency tables, the default) or \
     $(b,csr) (flat compressed-sparse-row arrays behind a sorted delta \
     overlay). Answers are identical; layout and cost differ."
  in
  Arg.(value & opt backend_conv `Hashtbl & info [ "backend" ] ~doc ~docv:"B")

let load ~backend path =
  let g = Core.Io.load ~backend path in
  Format.printf "loaded %s: %d nodes, %d edges (%s)@." path
    (Core.Digraph.n_nodes g)
    (Core.Digraph.n_edges g)
    (Core.Digraph.backend_name (Core.Digraph.backend g));
  g

(* ---- generate ------------------------------------------------------------ *)

let profile_conv =
  let parse = function
    | "dbpedia" -> Ok Core.Workload.Profiles.dbpedia_like
    | "livej" -> Ok Core.Workload.Profiles.livej_like
    | "synthetic" -> Ok Core.Workload.Profiles.synthetic
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf p.Core.Workload.Profiles.name)

let generate_cmd =
  let profile =
    Arg.(
      value
      & opt profile_conv Core.Workload.Profiles.synthetic
      & info [ "p"; "profile" ] ~doc:"Profile: dbpedia, livej or synthetic."
          ~docv:"NAME")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "s"; "scale" ] ~doc:"Scale factor for the profile." ~docv:"X")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Output file." ~docv:"FILE")
  in
  let gadget =
    Arg.(
      value
      & opt (some int) None
      & info [ "gadget" ]
          ~doc:
            "Write the Fig. 9 unboundedness gadget with N-node cycles \
             instead of a profile graph, printing its RPQ query and the \
             Δ1/Δ2 bridge insertions."
          ~docv:"N")
  in
  let run profile scale out seed backend gadget =
    match gadget with
    | Some cycle ->
        let gd = Core.Theory.Gadget.make ~cycle in
        Core.Io.save out gd.Core.Theory.Gadget.graph;
        let edge = function
          | Core.Digraph.Insert (u, v) | Core.Digraph.Delete (u, v) ->
              Printf.sprintf "+%d-%d" u v
        in
        Format.printf "wrote %s: Fig. 9 gadget, %d nodes, %d edges@." out
          (Core.Digraph.n_nodes gd.Core.Theory.Gadget.graph)
          (Core.Digraph.n_edges gd.Core.Theory.Gadget.graph);
        Format.printf "query: %s@.Δ1: %s  Δ2: %s@."
          (Core.Regex.to_string gd.Core.Theory.Gadget.query)
          (edge gd.Core.Theory.Gadget.delta1)
          (edge gd.Core.Theory.Gadget.delta2)
    | None ->
        let rng = Random.State.make [| seed |] in
        let g =
          Core.Workload.Profiles.instantiate ~scale ~backend ~rng profile
        in
        Core.Io.save out g;
        Format.printf "wrote %s: %d nodes, %d edges, %d labels@." out
          (Core.Digraph.n_nodes g) (Core.Digraph.n_edges g)
          (Core.Interner.size (Core.Digraph.interner g))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic labeled graph.")
    Term.(const run $ profile $ scale $ out $ seed_arg $ backend_arg $ gadget)

(* ---- query class arguments ------------------------------------------------ *)

type qspec =
  | Qkws of Core.Kws.Batch.query
  | Qrpq of Core.Regex.t
  | Qscc
  | Qiso of string list * (int * int) list
  | Qsim of string list * (int * int) list

let qspec_of ~cls ~bound ~args =
  match (cls, args) with
  | "scc", [] -> Ok Qscc
  | "scc", _ -> Error "scc takes no query arguments"
  | "kws", (_ :: _ as kws) -> Ok (Qkws { Core.Kws.Batch.keywords = kws; bound })
  | "kws", [] -> Error "kws needs keyword arguments"
  | "rpq", [ expr ] -> (
      match Core.Regex.parse expr with
      | Ok q -> Ok (Qrpq q)
      | Error e -> Error ("bad regex: " ^ e))
  | "rpq", _ -> Error "rpq needs exactly one regex argument"
  | (("iso" | "sim") as which), (_ :: _ as spec) ->
      (* labels then edges: l1 l2 l3 0-1 1-2 2-0 *)
      let labels, edges =
        List.partition (fun s -> not (String.contains s '-')) spec
      in
      let parse_edge s =
        match String.split_on_char '-' s with
        | [ a; b ] -> (int_of_string a, int_of_string b)
        | _ -> failwith "bad edge"
      in
      (try
         let es = List.map parse_edge edges in
         Ok (if which = "iso" then Qiso (labels, es) else Qsim (labels, es))
       with _ -> Error (which ^ " edges look like 0-1 1-2"))
  | "iso", [] -> Error "iso needs labels and edges"
  | "sim", [] -> Error "sim needs labels and edges"
  | c, _ -> Error (Printf.sprintf "unknown query class %S" c)

let cls_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CLASS" ~doc:"Query class: kws, rpq, scc, sim or iso.")

let qargs_arg =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"QUERY"
       ~doc:"Query arguments (keywords, regex, or pattern labels/edges).")

let bound_arg =
  Arg.(value & opt int 2 & info [ "b"; "bound" ] ~doc:"KWS hop bound." ~docv:"B")

(* ---- query ----------------------------------------------------------------- *)

let run_query g = function
  | Qkws q ->
      let roots, t = time (fun () -> Core.Kws.Batch.run g q) in
      Format.printf "KWS: %d match roots in %.3fs@." (List.length roots) t
  | Qrpq q ->
      let pairs, t = time (fun () -> Core.Rpq.Batch.run_query g q) in
      Format.printf "RPQ: %d match pairs in %.3fs@." (List.length pairs) t
  | Qscc ->
      let comps, t = time (fun () -> Core.Scc.Tarjan.scc g) in
      let giant = List.fold_left (fun a c -> max a (List.length c)) 0 comps in
      Format.printf "SCC: %d components (largest %d) in %.3fs@."
        (List.length comps) giant t
  | Qiso (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let ms, t = time (fun () -> Core.Iso.Vf2.find_all g p) in
      Format.printf "ISO: %d matches in %.3fs@." (List.length ms) t
  | Qsim (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let ps, t =
        time (fun () -> Core.Sim.Batch.pairs (Core.Sim.Batch.run p g))
      in
      Format.printf "SIM: %d relation pairs in %.3fs@." (List.length ps) t

let query_cmd =
  let run path backend cls bound args =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec ->
        run_query (load ~backend path) spec;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer one query with the batch algorithm.")
    Term.(
      ret (const run $ graph_arg $ backend_arg $ cls_arg $ bound_arg $ qargs_arg))

(* ---- stream / top ---------------------------------------------------------- *)

module Obs = Core.Obs

(* Build an obs/trace-carrying incremental engine over a copy of [g],
   keeping the per-batch ΔO summary and final answer description the
   live monitor prints. *)
let stream_session ?(trace = Obs.Tracer.noop) g spec =
  let o = Obs.create () in
  let copy = Core.Digraph.copy g in
  let sess update describe = (o, update, describe) in
  match spec with
  | Qkws q ->
      let s = Core.Kws.Inc.init ~obs:o ~trace copy q in
      sess
        (fun ups ->
          let d = Core.Kws.Inc.apply_batch s ups in
          Printf.sprintf "roots +%d/-%d"
            (List.length d.Core.Kws.Inc.added)
            (List.length d.Core.Kws.Inc.removed))
        (fun () ->
          Printf.sprintf "%d roots"
            (List.length (Core.Kws.Inc.match_roots s)))
  | Qrpq q ->
      let a = Core.Nfa.compile (Core.Digraph.interner copy) q in
      let s = Core.Rpq.Inc.init ~obs:o ~trace copy a in
      sess
        (fun ups ->
          let d = Core.Rpq.Inc.apply_batch s ups in
          Printf.sprintf "pairs +%d/-%d"
            (List.length d.Core.Rpq.Inc.added)
            (List.length d.Core.Rpq.Inc.removed))
        (fun () ->
          Printf.sprintf "%d pairs" (List.length (Core.Rpq.Inc.matches s)))
  | Qscc ->
      let s = Core.Scc.Inc.init ~obs:o ~trace copy in
      sess
        (fun ups ->
          let d = Core.Scc.Inc.apply_batch s ups in
          Printf.sprintf "components -%d/+%d"
            (List.length d.Core.Scc.Inc.removed)
            (List.length d.Core.Scc.Inc.added))
        (fun () ->
          Printf.sprintf "%d components"
            (List.length (Core.Scc.Inc.components s)))
  | Qiso (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let s = Core.Iso.Inc.init ~obs:o ~trace copy p in
      sess
        (fun ups ->
          let d = Core.Iso.Inc.apply_batch s ups in
          Printf.sprintf "matches +%d/-%d"
            (List.length d.Core.Iso.Inc.added)
            (List.length d.Core.Iso.Inc.removed))
        (fun () ->
          Printf.sprintf "%d matches" (List.length (Core.Iso.Inc.matches s)))
  | Qsim (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let s = Core.Sim.Inc.init ~obs:o ~trace copy p in
      sess
        (fun ups ->
          let d = Core.Sim.Inc.apply_batch s ups in
          Printf.sprintf "pairs +%d/-%d"
            (List.length d.Core.Sim.Inc.added)
            (List.length d.Core.Sim.Inc.removed))
        (fun () ->
          Printf.sprintf "%d pairs"
            (List.length (Core.Sim.Batch.pairs (Core.Sim.Inc.relation s))))

let stream_cmd =
  let batches =
    Arg.(value & opt int 5 & info [ "batches" ] ~doc:"Number of update batches.")
  in
  let size =
    Arg.(value & opt int 100 & info [ "size" ] ~doc:"Unit updates per batch.")
  in
  let ratio =
    Arg.(value & opt float 1.0 & info [ "ratio" ] ~doc:"Insert/delete ratio ρ.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "Run the flight recorder: write the OpenMetrics snapshot ring \
             (metrics-NNNNNN.prom), the stable metrics.prom scrape target \
             and the metrics.jsonl history into $(docv), created if \
             missing. Inspect with $(b,incgraph top)."
          ~docv:"DIR")
  in
  let slo_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "slo" ]
          ~doc:
            "Arm the SLO budgets in $(docv) — lines of NAME SOURCE LIMIT \
             [trip=K] [clear=K] with SOURCE one of p99:H, p50:H, \
             ratio:A/B, gauge:G, counter:C. Trips emit Slo_violation trace \
             events and a final summary line."
          ~docv:"CFG")
  in
  let every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ]
          ~doc:
            "Flight-recorder cadence in applied unit updates (default: one \
             snapshot per batch)."
          ~docv:"N")
  in
  let retain_arg =
    Arg.(
      value & opt int 32
      & info [ "retain" ]
          ~doc:"Snapshot files (and jsonl lines) kept in the ring."
          ~docv:"N")
  in
  let det_arg =
    Arg.(
      value & flag
      & info [ "deterministic-metrics" ]
          ~doc:
            "Drop clock- and GC-derived series from the snapshots so two \
             runs of the same update sequence emit byte-identical files.")
  in
  let run path backend cls bound args batches size ratio seed metrics_out
      slo_cfg every retain det =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec -> (
        let slo =
          match slo_cfg with
          | None -> Ok None
          | Some p -> (
              match
                Obs.Slo.of_config
                  (In_channel.with_open_text p In_channel.input_all)
              with
              | Ok rules -> Ok (Some (Obs.Slo.create rules))
              | Error e -> Error (Printf.sprintf "%s: %s" p e))
        in
        match slo with
        | Error e -> `Error (false, e)
        | Ok slo ->
            let g = load ~backend path in
            let rng = Random.State.make [| seed |] in
            let tr =
              if Option.is_some slo || Option.is_some metrics_out then
                Obs.Tracer.create ()
              else Obs.Tracer.noop
            in
            let o, update, describe = stream_session ~trace:tr g spec in
            let flight =
              Option.map
                (fun dir ->
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  let every =
                    match every with Some n -> n | None -> max 1 size
                  in
                  ( Obs.Flight.create ~every ~retain ~deterministic:det ?slo
                      ~trace:tr ~dir ~obs:o (),
                    every ))
                metrics_out
            in
            for round = 1 to batches do
              let ups =
                Core.Workload.Updates.generate ~rng g ~size ~ratio ()
              in
              Core.Digraph.apply_batch g ups (* keep generator in sync *);
              let summary, t = time (fun () -> update ups) in
              (match flight with
              | Some (fr, _) -> List.iter (fun _ -> Obs.Flight.tick fr) ups
              | None ->
                  Option.iter
                    (fun s -> ignore (Obs.Slo.evaluate s ~obs:o ~trace:tr))
                    slo);
              Format.printf "round %d: |ΔG|=%d  %s  (%.3fs)@." round
                (List.length ups) summary t
            done;
            Format.printf "final: %s@." (describe ());
            Option.iter
              (fun (fr, every) ->
                (* Capture the final state unless the cadence just did. *)
                if Obs.Flight.snapshots fr = 0 || Obs.Flight.updates fr mod every <> 0
                then Obs.Flight.snapshot fr;
                Format.printf
                  "metrics: %d snapshot(s) over %d update(s) -> %s@."
                  (Obs.Flight.snapshots fr) (Obs.Flight.updates fr)
                  (Obs.Flight.dir fr))
              flight;
            Option.iter
              (fun s ->
                let tripped = Obs.Slo.tripped s in
                Format.printf "SLO violations: %d%s@." (Obs.Slo.violations s)
                  (if tripped = [] then ""
                   else " (tripped: " ^ String.concat ", " tripped ^ ")"))
              slo;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Maintain a query incrementally over a random update stream. With \
          $(b,--metrics-out), snapshot the engine's metrics registry into \
          an OpenMetrics flight-recorder ring on a logical (update-count) \
          cadence; with $(b,--slo), evaluate declarative cost budgets at \
          each snapshot and report violations.")
    Term.(
      ret
        (const run $ graph_arg $ backend_arg $ cls_arg $ bound_arg $ qargs_arg
       $ batches $ size $ ratio $ seed_arg $ metrics_out $ slo_arg $ every_arg
       $ retain_arg $ det_arg))

(* `incgraph top` — one-shot ASCII dashboard over a flight-recorder
   directory: latest exposition, counter deltas against the previous ring
   snapshot, histogram quantiles off the cumulative buckets, SLO state
   from the jsonl history. Reads only what stream wrote. *)
let top_cmd =
  let module Om = Obs.Openmetrics in
  let dir_pos =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Flight-recorder directory (from stream --metrics-out).")
  in
  let skey (s : Om.sample) =
    s.Om.name
    ^ String.concat ""
        (List.map (fun (k, v) -> "|" ^ k ^ "=" ^ v) s.Om.labels)
  in
  let ring_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 8
           && String.sub f 0 8 = "metrics-"
           && Filename.check_suffix f ".prom")
    |> List.sort String.compare
  in
  let pp_label (s : Om.sample) =
    match s.Om.labels with
    | [] -> s.Om.name
    | ls ->
        s.Om.name ^ "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
        ^ "}"
  in
  let run dir =
    let read path = In_channel.with_open_text path In_channel.input_all in
    let stable = Filename.concat dir "metrics.prom" in
    if not (Sys.file_exists stable) then
      `Error
        ( false,
          stable ^ ": not found (run incgraph stream --metrics-out DIR first)"
        )
    else
      match Om.samples (read stable) with
      | Error e -> `Error (false, Printf.sprintf "%s: %s" stable e)
      | Ok now ->
          let prev =
            match List.rev (ring_files dir) with
            | _ :: p :: _ -> (
                match Om.samples (read (Filename.concat dir p)) with
                | Ok s -> s
                | Error _ -> [])
            | _ -> []
          in
          let prev_val k =
            List.fold_left
              (fun acc s -> if skey s = k then Some s.Om.value else acc)
              None prev
          in
          let ends suf (s : Om.sample) = Filename.check_suffix s.Om.name suf in
          let find name = List.filter (fun s -> s.Om.name = name) now in
          (* Snapshot header off the jsonl history, if present. *)
          let last_line =
            let jpath = Filename.concat dir "metrics.jsonl" in
            if not (Sys.file_exists jpath) then None
            else
              String.split_on_char '\n' (read jpath)
              |> List.filter (fun l -> String.trim l <> "")
              |> List.rev
              |> function
              | [] -> None
              | l :: _ -> Result.to_option (Obs.Json.parse l)
          in
          let header =
            match last_line with
            | None -> ""
            | Some j -> (
                let get k =
                  Option.bind (Obs.Json.member k j) Obs.Json.to_int_opt
                in
                match (get "seq", get "updates") with
                | Some s, Some u ->
                    Printf.sprintf " — snapshot %d after %d update(s)" s u
                | _ -> "")
          in
          Format.printf "incgraph top: %s%s@." dir header;
          let counters = List.filter (ends "_total") now in
          if counters <> [] then begin
            Format.printf "@.  %-44s %14s %12s@." "counter" "total" "Δ last";
            List.iter
              (fun s ->
                let d =
                  match prev_val (skey s) with
                  | Some p -> Printf.sprintf "%+.0f" (s.Om.value -. p)
                  | None -> "-"
                in
                Format.printf "  %-44s %14.0f %12s@." (pp_label s) s.Om.value d)
              counters
          end;
          let gauges =
            List.filter
              (fun s ->
                (not (ends "_total" s))
                && (not (ends "_bucket" s))
                && (not (ends "_sum" s))
                && not (ends "_count" s))
              now
          in
          if gauges <> [] then begin
            Format.printf "@.  %-44s %14s@." "gauge" "value";
            List.iter
              (fun s ->
                Format.printf "  %-44s %14.0f@." (pp_label s) s.Om.value)
              gauges
          end;
          let fams =
            List.filter_map
              (fun s ->
                if ends "_count" s && s.Om.labels = [] then
                  Some (Filename.chop_suffix s.Om.name "_count")
                else None)
              now
          in
          if fams <> [] then begin
            Format.printf "@.  %-32s %10s %12s %11s %11s@." "histogram"
              "count" "sum" "p50 ≤" "p99 ≤";
            List.iter
              (fun fam ->
                let buckets =
                  List.filter_map
                    (fun s ->
                      match List.assoc_opt "le" s.Om.labels with
                      | Some le -> Some (float_of_string le, s.Om.value)
                      | None -> None)
                    (find (fam ^ "_bucket"))
                in
                let count =
                  match find (fam ^ "_count") with
                  | [ s ] -> s.Om.value
                  | _ -> 0.
                in
                let sum =
                  match find (fam ^ "_sum") with [ s ] -> s.Om.value | _ -> 0.
                in
                let q p =
                  let rank = p *. count in
                  let rec go = function
                    | [] -> infinity
                    | (le, cum) :: rest -> if cum >= rank then le else go rest
                  in
                  go buckets
                in
                Format.printf "  %-32s %10.0f %12.4g %11.3g %11.3g@." fam
                  count sum (q 0.5) (q 0.99))
              fams
          end;
          (* SLO table from the jsonl history; trips total is the
             greppable bottom line. *)
          let slo_rows =
            match Option.bind last_line (Obs.Json.member "slo") with
            | Some (Obs.Json.Arr rules) ->
                List.filter_map
                  (fun r ->
                    let str k =
                      Option.bind (Obs.Json.member k r) Obs.Json.to_str_opt
                    in
                    let num k =
                      Option.bind (Obs.Json.member k r) Obs.Json.to_float_opt
                    in
                    let tripped =
                      match Obs.Json.member "tripped" r with
                      | Some (Obs.Json.Bool b) -> b
                      | _ -> false
                    in
                    let trips =
                      Option.value ~default:0
                        (Option.bind (Obs.Json.member "trips" r)
                           Obs.Json.to_int_opt)
                    in
                    match (str "rule", num "value", num "limit") with
                    | Some n, Some v, Some l -> Some (n, v, l, tripped, trips)
                    | _ -> None)
                  rules
            | _ -> []
          in
          if slo_rows <> [] then begin
            Format.printf "@.  %-24s %12s %12s %8s %6s@." "slo rule" "value"
              "limit" "state" "trips";
            List.iter
              (fun (n, v, l, tripped, trips) ->
                Format.printf "  %-24s %12.4g %12.4g %8s %6d@." n v l
                  (if tripped then "TRIPPED" else "ok")
                  trips)
              slo_rows
          end;
          let violations =
            List.fold_left (fun a (_, _, _, _, t) -> a + t) 0 slo_rows
          in
          Format.printf "@.SLO violations: %d@." violations;
          `Ok ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "ASCII dashboard over a flight-recorder directory written by \
          $(b,incgraph stream --metrics-out): latest counters with deltas \
          against the previous ring snapshot, gauges, histogram p50/p99 \
          read off the cumulative Prometheus buckets, and the armed SLO \
          budgets with their trip state. One-shot and read-only.")
    Term.(ret (const run $ dir_pos))

(* ---- bench / stats --------------------------------------------------------- *)

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit machine-readable json instead of text.")

let size_arg =
  Arg.(
    value & opt int 100
    & info [ "size" ] ~doc:"Unit updates per batch." ~docv:"N")

(* Build an incremental engine over a copy of [g] with a live metrics
   registry (and, optionally, a live tracer). Returns the registry, the
   batch-apply entry point, the batch counterpart (for speedups), and the
   two series names. *)
let session_with_obs ?(trace = Obs.Tracer.noop) g spec =
  let o = Obs.create () in
  let copy = Core.Digraph.copy g in
  match spec with
  | Qkws q ->
      let s = Core.Kws.Inc.init ~obs:o ~trace copy q in
      ( o,
        (fun ups -> ignore (Core.Kws.Inc.apply_batch s ups)),
        (fun g' -> ignore (Core.Kws.Batch.run g' q)),
        "IncKWS", "BLINKS" )
  | Qrpq q ->
      let a = Core.Nfa.compile (Core.Digraph.interner g) q in
      let s = Core.Rpq.Inc.init ~obs:o ~trace copy a in
      ( o,
        (fun ups -> ignore (Core.Rpq.Inc.apply_batch s ups)),
        (fun g' -> ignore (Core.Rpq.Batch.run g' a)),
        "IncRPQ", "RPQNFA" )
  | Qscc ->
      let s = Core.Scc.Inc.init ~obs:o ~trace copy in
      ( o,
        (fun ups -> ignore (Core.Scc.Inc.apply_batch s ups)),
        (fun g' -> ignore (Core.Scc.Tarjan.scc g')),
        "IncSCC", "Tarjan" )
  | Qiso (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let s = Core.Iso.Inc.init ~obs:o ~trace copy p in
      ( o,
        (fun ups -> ignore (Core.Iso.Inc.apply_batch s ups)),
        (fun g' -> ignore (Core.Iso.Vf2.find_all g' p)),
        "IncISO", "VF2" )
  | Qsim (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let s = Core.Sim.Inc.init ~obs:o ~trace copy p in
      ( o,
        (fun ups -> ignore (Core.Sim.Inc.apply_batch s ups)),
        (fun g' -> ignore (Core.Sim.Batch.run p g')),
        "IncSim", "SimFix" )

let bench_cmd =
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~doc:"Update batches to measure." ~docv:"N")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Write the json report to $(docv)."
          ~docv:"FILE")
  in
  let run path backend cls bound args size reps seed json out =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec ->
        let g = Core.Io.load ~backend path in
        let rng = Random.State.make [| seed |] in
        let report =
          Obs.Report.create ~tool:"incgraph-cli"
            ~config:
              [
                ("graph", Obs.Json.Str path);
                ("backend", Obs.Json.Str (Core.Digraph.backend_name backend));
                ("class", Obs.Json.Str cls);
                ("size", Obs.Json.Int size);
                ("reps", Obs.Json.Int reps);
                ("seed", Obs.Json.Int seed);
              ]
            ()
        in
        let e =
          Obs.Report.experiment report ~id:("bench-" ^ cls)
            ~title:(Printf.sprintf "%s: incremental vs batch, |ΔG| = %d" cls size)
        in
        for rep = 1 to reps do
          let base = Core.Digraph.copy g in
          let ups =
            Core.Workload.Updates.generate_replay ~rng base ~size ()
          in
          let o, apply, batch_run, inc_name, batch_name =
            session_with_obs base spec
          in
          let (), ti = time (fun () -> apply ups) in
          let gb = Core.Digraph.copy base in
          let (), tb =
            time (fun () ->
                Core.Digraph.apply_batch gb ups;
                batch_run gb)
          in
          let ctrs = Obs.counters o in
          let hists = Obs.histograms o in
          let gc =
            List.filter_map
              (fun (k, h) ->
                if String.length k > 3 && String.sub k 0 3 = "gc_" then
                  Some
                    ( String.sub k 3 (String.length k - 3),
                      Obs.Histogram.sum h )
                else None)
              hists
          in
          Obs.Report.add_point e
            ~x:(string_of_int rep)
            ~timings:[ (inc_name, ti); (batch_name, tb) ]
            ~counters:[ (inc_name, ctrs) ]
            ~speedup:[ (inc_name, tb /. Float.max 1e-9 ti) ]
            ~histograms:(if hists = [] then [] else [ (inc_name, hists) ])
            ~gc:(if gc = [] then [] else [ (inc_name, gc) ])
            ();
          if not json then
            Format.printf
              "rep %d: %s %.4fs  %s %.4fs  speedup %.1fx  |AFF|=%d  \
               |CHANGED|=%d@."
              rep inc_name ti batch_name tb
              (tb /. Float.max 1e-9 ti)
              (Option.value ~default:0 (List.assoc_opt Obs.K.aff ctrs))
              (Option.value ~default:0 (List.assoc_opt Obs.K.changed ctrs))
        done;
        (match out with
        | Some path ->
            Obs.Report.write ~path report;
            if not json then Format.printf "report written to %s@." path
        | None ->
            if json then
              print_endline
                (Obs.Json.to_string ~indent:true (Obs.Report.to_json report)));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Measure one incremental engine against its batch counterpart on a \
          random update batch, reporting wall-clock timings and the cost \
          counters of the paper's model (measured |AFF|, |CHANGED|, work \
          counters). With $(b,--json), emits a schema-versioned BENCH \
          report.")
    Term.(
      ret
        (const run $ graph_arg $ backend_arg $ cls_arg $ bound_arg $ qargs_arg
       $ size_arg $ reps $ seed_arg $ json_flag $ out))

let stats_cmd =
  let batches =
    Arg.(
      value & opt int 5
      & info [ "batches" ] ~doc:"Update batches to apply." ~docv:"N")
  in
  let histo =
    Arg.(
      value & flag
      & info [ "histogram" ]
          ~doc:
            "Also print the per-batch latency and GC/allocation histograms \
             (ASCII bars, one row per non-empty bucket).")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Dump the registry in OpenMetrics / Prometheus text exposition \
             format instead of text or json.")
  in
  let run path backend cls bound args batches size seed json histo prom =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec ->
        let g = Core.Io.load ~backend path in
        let rng = Random.State.make [| seed |] in
        let o, apply, _, inc_name, _ = session_with_obs g spec in
        for _ = 1 to batches do
          let ups = Core.Workload.Updates.generate ~rng g ~size () in
          Core.Digraph.apply_batch g ups (* keep generator in sync *);
          apply ups
        done;
        if prom then print_string (Obs.Openmetrics.render o)
        else if json then
          print_endline (Obs.Json.to_string ~indent:true (Obs.to_json o))
        else begin
          Format.printf "%s after %d batches of %d unit updates:@." inc_name
            batches size;
          List.iter
            (fun (k, v) -> Format.printf "  %-16s %10d@." k v)
            (Obs.counters o);
          List.iter
            (fun (k, (n, s)) ->
              Format.printf "  span %-11s %10d calls %9.4fs@." k n s)
            (Obs.spans o);
          let aff = Obs.counter o Obs.K.aff in
          let changed = Obs.counter o Obs.K.changed in
          if changed > 0 then
            Format.printf "  |AFF| / |CHANGED| = %.2f@."
              (float_of_int aff /. float_of_int changed);
          if histo then
            List.iter
              (fun (name, h) ->
                Format.printf "@.  histogram %s:@.    @[<v>%a@]@." name
                  Obs.Histogram.pp h)
              (Obs.histograms o)
        end;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Drive one incremental session over a random update stream and dump \
          its metrics registry: cost counters (measured |AFF|, |CHANGED|, \
          work counters), span timings and — with $(b,--histogram) — the \
          per-batch latency and GC histograms, as text, json or — with \
          $(b,--prom) — OpenMetrics text exposition.")
    Term.(
      ret
        (const run $ graph_arg $ backend_arg $ cls_arg $ bound_arg $ qargs_arg
       $ batches $ size_arg $ seed_arg $ json_flag $ histo $ prom))

(* ---- trace / explain ------------------------------------------------------- *)

module Tracer = Core.Obs.Tracer
module Trace_export = Core.Obs.Trace_export

let batches_arg =
  Arg.(
    value & opt int 5
    & info [ "batches" ] ~doc:"Update batches to apply." ~docv:"N")

let trace_cmd =
  let out =
    Arg.(
      value
      & opt string "TRACE_incgraph.json"
      & info [ "o"; "out" ] ~doc:"Output trace file." ~docv:"FILE")
  in
  let cap =
    Arg.(
      value
      & opt int Tracer.default_capacity
      & info [ "capacity" ]
          ~doc:"Ring-buffer capacity; older events beyond it are dropped."
          ~docv:"N")
  in
  let run path backend cls bound args batches size seed out cap =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec ->
        let g = Core.Io.load ~backend path in
        let rng = Random.State.make [| seed |] in
        let tr = Tracer.create ~capacity:cap () in
        let _, apply, _, inc_name, _ = session_with_obs ~trace:tr g spec in
        for _ = 1 to batches do
          let ups = Core.Workload.Updates.generate ~rng g ~size () in
          Core.Digraph.apply_batch g ups (* keep generator in sync *);
          apply ups
        done;
        let snap = Tracer.snapshot tr in
        Trace_export.write_chrome ~path:out ~name:inc_name snap;
        Format.printf "%s: %d event(s)%s -> %s@." inc_name
          (List.length snap.Tracer.entries)
          (if snap.Tracer.drops > 0 then
             Printf.sprintf " (ring buffer dropped %d older)" snap.Tracer.drops
           else "")
          out;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Drive one incremental session over a seeded random update stream \
          with structured tracing on, and write the event log — AFF entries \
          tagged with the paper rule that fired, certificate rewrites with \
          before/after values, frontier expansions, engine spans — as a \
          Chrome trace-event file loadable in Perfetto (ui.perfetto.dev) or \
          chrome://tracing. Deterministic for a fixed graph and seed.")
    Term.(
      ret
        (const run $ graph_arg $ backend_arg $ cls_arg $ bound_arg $ qargs_arg
       $ batches_arg $ size_arg $ seed_arg $ out $ cap))

(* Worked explanation of the Figure 9 gadget: Δ1 is output-silent yet the
   trace shows Ω(cycle) settling work; Δ2 flips the whole answer on. *)
let explain_gadget n limit =
  let gd = Core.Theory.Gadget.make ~cycle:n in
  let tr = Tracer.create () in
  let s = Core.Rpq.Inc.create ~trace:tr gd.Core.Theory.Gadget.graph
      gd.Core.Theory.Gadget.query in
  let explain name u =
    Tracer.clear tr;
    let d = Core.Rpq.Inc.apply_batch s [ u ] in
    Format.printf "@.== %s: |ΔO| = %d ==@.%a@." name
      (List.length d.Core.Rpq.Inc.added + List.length d.Core.Rpq.Inc.removed)
      (Trace_export.pp_explain ~limit)
      (Tracer.snapshot tr)
  in
  Format.printf
    "Figure 9 gadget, cycle length %d (two disjoint cycles + sink):@." n;
  explain "Δ1 (bridge the cycles — output stays empty)"
    gd.Core.Theory.Gadget.delta1;
  explain "Δ2 (connect to the sink — every v-node now matches)"
    gd.Core.Theory.Gadget.delta2

let explain_cmd =
  let gadget =
    Arg.(
      value
      & opt (some int) None
      & info [ "gadget" ]
          ~doc:
            "Explain the Figure 9 two-cycle gadget of cycle length $(docv) \
             instead of a graph/class run (no other arguments needed)."
          ~docv:"N")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ]
          ~doc:"Events to print per update batch; negative prints all."
          ~docv:"N")
  in
  let graph_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "g"; "graph" ]
          ~doc:"Graph file in the incgraph text format (see Core.Io)."
          ~docv:"FILE")
  in
  let cls_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"CLASS" ~doc:"Query class: kws, rpq, scc, sim or iso.")
  in
  let run gadget limit path backend cls bound args batches size seed =
    match gadget with
    | Some n when n >= 2 ->
        explain_gadget n limit;
        `Ok ()
    | Some n -> `Error (false, Printf.sprintf "--gadget %d: cycle must be >= 2" n)
    | None -> (
        match (path, cls) with
        | None, _ | _, None ->
            `Error
              (false, "need either --gadget N or a graph (-g) and a CLASS")
        | Some path, Some cls -> (
            match qspec_of ~cls ~bound ~args with
            | Error e -> `Error (false, e)
            | Ok spec ->
                let g = Core.Io.load ~backend path in
                let rng = Random.State.make [| seed |] in
                let tr = Tracer.create () in
                let _, apply, _, inc_name, _ =
                  session_with_obs ~trace:tr g spec
                in
                for round = 1 to batches do
                  let ups =
                    Core.Workload.Updates.generate ~rng g ~size ()
                  in
                  Core.Digraph.apply_batch g ups (* keep generator in sync *);
                  Tracer.clear tr;
                  apply ups;
                  Format.printf "@.== %s batch %d (|ΔG| = %d) ==@.%a@."
                    inc_name round (List.length ups)
                    (Trace_export.pp_explain ~limit)
                    (Tracer.snapshot tr)
                done;
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Per-update AFF provenance: apply update batches with tracing on \
          and print, for each batch, which rules of the paper's algorithms \
          put nodes into AFF (rule histogram), which certificate fields were \
          rewritten, and the event log. With $(b,--gadget), runs the Figure \
          9 two-cycle counterexample instead: Δ1 is output-silent yet \
          traces Ω(n) settling work, Δ2 then flips the answer on.")
    Term.(
      ret
        (const run $ gadget $ limit $ graph_opt $ backend_arg $ cls_opt
       $ bound_arg $ qargs_arg $ batches_arg $ size_arg $ seed_arg))

(* ---- compare -------------------------------------------------------------- *)

let compare_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline BENCH report.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate BENCH report.")
  in
  let threshold =
    Arg.(
      value & opt float 25.0
      & info [ "threshold" ]
          ~doc:
            "Regression threshold in percent: flag a pair when its timing \
             or latency p99 grew by more than $(docv)%."
          ~docv:"PCT")
  in
  let min_time =
    Arg.(
      value & opt float 1e-4
      & info [ "min-time" ]
          ~doc:
            "Noise floor in seconds: pairs whose grown value stays below \
             $(docv) are reported but never flagged."
          ~docv:"S")
  in
  let load path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error (Printf.sprintf "cannot read %s: %s" path e)
    | text -> (
        match Obs.Json.parse text with
        | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
        | Ok json -> (
            match Obs.Report.validate json with
            | Error e -> Error (Printf.sprintf "%s: invalid BENCH file: %s" path e)
            | Ok () -> Ok json))
  in
  let run old_path new_path threshold min_time =
    match (load old_path, load new_path) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok old_json, Ok new_json ->
        let cmp = Obs.Report.compare_reports ~old_json ~new_json in
        Format.printf "comparing %s (old) vs %s (new)@." old_path new_path;
        Format.printf "%a" (Obs.Report.pp_comparison ~threshold ~min_time) cmp;
        if cmp.Obs.Report.cells = [] then
          `Error (false, "no common data points — nothing compared")
        else if Obs.Report.regressions ~threshold ~min_time cmp <> [] then begin
          Format.eprintf
            "incgraph: performance regressions detected (see table)@.";
          exit 1
        end
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Regression detector over two BENCH json reports (from $(b,incgraph \
          bench --out) or bench/main.exe): pair every (experiment, x, \
          series) present in both files, print the timing and latency-p99 \
          delta table, and exit non-zero when any pair regressed beyond \
          $(b,--threshold) percent above the $(b,--min-time) noise floor.")
    Term.(ret (const run $ old_arg $ new_arg $ threshold $ min_time))

(* ---- lint ----------------------------------------------------------------- *)

let lint_cmd =
  let module L = Core.Lint in
  let module S = Core.Lint_summary in
  let module I = Core.Lint_interproc in
  let root_arg =
    Arg.(
      value & pos 0 dir "."
      & info [] ~docv:"ROOT"
          ~doc:"Repository root to lint (bench/, bin/, lib/, test/ under it).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ]
          ~doc:
            "Accept the diagnostics recorded in $(docv) (a previous --json \
             report or a dedicated baseline file); only new findings fail \
             the run. Baseline entries that no longer match any finding are \
             an error unless $(b,--prune-baseline) rewrites the file."
          ~docv:"FILE")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Also write the json report to $(docv)."
          ~docv:"FILE")
  in
  let summaries_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summaries" ]
          ~doc:
            "Write the phase-1 per-module summaries (one json file per lib/ \
             module) into $(docv), creating it if needed."
          ~docv:"DIR")
  in
  let load_summaries_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "load-summaries" ]
          ~doc:
            "Skip phase 1: load previously emitted per-module summaries \
             from $(docv) and run only the cross-module rules (D6-D8) over \
             them."
          ~docv:"DIR")
  in
  let effect_graph_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "effect-graph" ]
          ~doc:
            "Write the module-level effect/dependency graph (Graphviz dot: \
             one node per lib/ module filled by its worst export effect, \
             double-bordered when it owns module-scope mutable state) to \
             $(docv)."
          ~docv:"FILE")
  in
  let prune_arg =
    Arg.(
      value & flag
      & info [ "prune-baseline" ]
          ~doc:
            "Rewrite the $(b,--baseline) file without its stale entries \
             instead of failing on them.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail on warnings and on any baselined finding, not just on \
             new errors: the gate for a clean tree.")
  in
  let summary_file_name (s : S.t) =
    let base = Filename.remove_extension s.S.path in
    String.concat ""
      (List.map
         (fun c ->
           if c = '/' || c = '\\' then "__" else String.make 1 c)
         (List.init (String.length base) (String.get base)))
    ^ ".json"
  in
  let load_summaries dir =
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
    in
    let rec go acc = function
      | [] -> Ok (List.sort (fun (a : S.t) b -> compare a.S.path b.S.path) acc)
      | f :: rest -> (
          let path = Filename.concat dir f in
          match
            Core.Obs.Json.parse
              (In_channel.with_open_text path In_channel.input_all)
          with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok j -> (
              match S.validate j with
              | Error e -> Error (Printf.sprintf "%s: %s" path e)
              | Ok s -> go (s :: acc) rest))
    in
    go [] files
  in
  let run root baseline json out summaries_dir load_dir effect_graph prune
      strict =
    match Option.map L.load_baseline baseline with
    | Some (Error e) -> `Error (false, "bad baseline: " ^ e)
    | (None | Some (Ok _)) as b -> (
        let accepted = match b with Some (Ok ds) -> ds | _ -> [] in
        let result =
          match load_dir with
          | None -> Ok (L.run ~root)
          | Some dir ->
              Result.map
                (fun ss ->
                  let diags, suppressed = I.analyze ss in
                  {
                    L.diagnostics = diags;
                    suppressed;
                    files_scanned = 0;
                    summaries = ss;
                  })
                (load_summaries dir)
        in
        match result with
        | Error e -> `Error (false, "bad summaries: " ^ e)
        | Ok r ->
            let kept, baselined, stale_entries =
              L.subtract_baseline ~baseline:accepted r.L.diagnostics
            in
            let pruned =
              match (baseline, prune, stale_entries) with
              | Some path, true, _ :: _ ->
                  let fresh =
                    List.filter
                      (fun bd ->
                        not
                          (List.exists
                             (fun sd -> L.compare_diagnostic sd bd = 0)
                             stale_entries))
                      accepted
                  in
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc
                        (Core.Obs.Json.to_string ~indent:true
                           (L.baseline_to_json fresh));
                      Out_channel.output_char oc '\n');
                  List.length stale_entries
              | _ -> 0
            in
            let stale = if pruned > 0 then [] else stale_entries in
            let visible = { r with L.diagnostics = kept } in
            let report =
              L.report_to_json ~baselined ~stale:(List.length stale) visible
            in
            Option.iter
              (fun dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                List.iter
                  (fun s ->
                    Out_channel.with_open_text
                      (Filename.concat dir (summary_file_name s)) (fun oc ->
                        Out_channel.output_string oc
                          (Core.Obs.Json.to_string ~indent:true (S.to_json s));
                        Out_channel.output_char oc '\n'))
                  r.L.summaries)
              summaries_dir;
            Option.iter
              (fun path ->
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc
                      (I.effect_graph_dot r.L.summaries)))
              effect_graph;
            Option.iter
              (fun path ->
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc
                      (Core.Obs.Json.to_string ~indent:true report);
                    Out_channel.output_char oc '\n'))
              out;
            if json then
              print_endline (Core.Obs.Json.to_string ~indent:true report)
            else begin
              List.iter (Format.printf "%a@." L.pp_diagnostic) kept;
              List.iter
                (fun d ->
                  Format.printf "stale baseline entry: %a@." L.pp_diagnostic d)
                stale;
              Format.printf
                "lint: %d file(s), %d module summar%s, %d finding(s), %d \
                 suppressed, %d baselined%s@."
                visible.L.files_scanned
                (List.length r.L.summaries)
                (if List.length r.L.summaries = 1 then "y" else "ies")
                (List.length kept) visible.L.suppressed baselined
                (if pruned > 0 then Printf.sprintf ", %d pruned" pruned
                 else if stale <> [] then
                   Printf.sprintf ", %d stale" (List.length stale)
                 else "")
            end;
            let errors =
              List.filter (fun d -> d.L.severity = L.Error) kept
            in
            let failing = if strict then kept else errors in
            if failing <> [] then
              `Error
                ( false,
                  Printf.sprintf "%d un-baselined lint finding(s)"
                    (List.length failing) )
            else if stale <> [] then
              `Error
                ( false,
                  Printf.sprintf
                    "%d stale baseline entr%s (rerun with --prune-baseline \
                     to drop them)"
                    (List.length stale)
                    (if List.length stale = 1 then "y" else "ies") )
            else if strict && baselined > 0 then
              `Error
                ( false,
                  Printf.sprintf "--strict forbids baselined findings (%d)"
                    baselined )
            else `Ok ())
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Determinism & instrumentation linter: a parse-only static-analysis \
          pass over the repo's OCaml sources enforcing the discipline behind \
          the engines' cross-hash-seed determinism — no polymorphic compare \
          or hash in engine modules (D1), no unordered Hashtbl/adjacency \
          iteration outside the sorted helpers unless annotated with \
          [@lint.allow] (D2), no ambient randomness or wall-clock reads in \
          lib/ outside lib/obs (D3), Obs.with_apply-wrapped and rule-tagged \
          update entry points in every engine (D4), and an .mli for every \
          lib/ module (D5) — plus the cross-module phase over per-module \
          effect summaries: no unregistered module-scope mutable state \
          reachable from the engine/graph/journal modules (D6), all graph \
          mutation through the Digraph/Csr entry points (D7), and \
          exception-safe span regions (D8). Exits non-zero on new errors \
          (plus warnings and baselined findings under $(b,--strict)) or on \
          stale baseline entries.")
    Term.(
      ret
        (const run $ root_arg $ baseline_arg $ json_flag $ out_arg
       $ summaries_arg $ load_summaries_arg $ effect_graph_arg $ prune_arg
       $ strict_arg))

(* ---- fuzz ----------------------------------------------------------------- *)

let fuzz_cmd =
  let module C = Core.Check in
  let algo =
    Arg.(
      value & opt string "all"
      & info [ "algo" ]
          ~doc:"Scenario: kws, rpq, scc, sim, iso, gadget or all." ~docv:"NAME")
  in
  let steps =
    Arg.(
      value & opt int 1000
      & info [ "steps" ] ~doc:"Unit updates per scenario." ~docv:"N")
  in
  let nodes =
    Arg.(
      value
      & opt int C.Scenarios.default_size.C.Scenarios.nodes
      & info [ "nodes" ] ~doc:"Base graph node count." ~docv:"N")
  in
  let edges =
    Arg.(
      value
      & opt int C.Scenarios.default_size.C.Scenarios.edges
      & info [ "edges" ] ~doc:"Base graph edge count." ~docv:"N")
  in
  let labels =
    Arg.(
      value
      & opt int C.Scenarios.default_size.C.Scenarios.labels
      & info [ "labels" ] ~doc:"Base graph label alphabet size." ~docv:"N")
  in
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ]
          ~doc:"Directory for failure reproduction artifacts." ~docv:"DIR")
  in
  let run algo steps nodes edges labels out_dir backend seed =
    let size : C.Scenarios.size = { nodes; edges; labels } in
    let rng = Random.State.make [| seed |] in
    let scenarios =
      if algo = "all" then Ok (C.Scenarios.all ~backend ~rng ~size ())
      else
        match C.Scenarios.by_name ~backend ~rng ~size algo with
        | Some s -> Ok [ s ]
        | None -> Error (Printf.sprintf "unknown fuzz scenario %S" algo)
    in
    match scenarios with
    | Error e -> `Error (false, e)
    | Ok scenarios ->
        let failed = ref false in
        List.iter
          (fun (s : C.Scenarios.t) ->
            Format.printf
              "fuzz %-6s seed %d (%s): %d steps against batch oracle...@?"
              s.C.Scenarios.name seed
              (Core.Digraph.backend_name backend)
              steps;
            let result, t =
              time (fun () ->
                  C.Harness.run ~make:s.C.Scenarios.make
                    ~focus:s.C.Scenarios.focus ~steps ~seed ())
            in
            match result with
            | Ok n -> Format.printf " ok (%d steps, %.2fs)@." n t
            | Error f ->
                failed := true;
                Format.printf " FAILED@.%a@." C.Harness.pp_failure f;
                let gpath, upath, tpath, jpath =
                  C.Harness.save_failure ~dir:out_dir ~base:s.C.Scenarios.base
                    ~qspec:s.C.Scenarios.qspec f
                in
                Format.printf "artifacts: %s, %s%s%s@." gpath upath
                  (match tpath with
                  | Some p -> ", " ^ p
                  | None -> "")
                  (match jpath with
                  | Some p -> ", " ^ p ^ " (incgraph replay)"
                  | None -> ""))
          scenarios;
        if !failed then `Error (false, "fuzzing found failures (see above)")
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential soak: drive every incremental engine through a seeded \
          random update stream, cross-checking answers and certificates \
          against batch recomputation after each unit update; failures are \
          ddmin-shrunk to minimal reproducers.")
    Term.(
      ret
        (const run $ algo $ steps $ nodes $ edges $ labels $ out_dir
       $ backend_arg $ seed_arg))

(* ---- journal / replay / snapshot / undo ------------------------------------ *)

module J = Core.Journal

let jdigest = J.Log.digest_hex

let oracle_of_qspec g = function
  | Qkws q -> Core.Check.Adapters.kws g q
  | Qrpq q -> Core.Check.Adapters.rpq g q
  | Qscc -> Core.Check.Adapters.scc g
  | Qiso (labels, edges) ->
      Core.Check.Adapters.iso g (Core.Iso.Pattern.create ~labels ~edges)
  | Qsim (labels, edges) ->
      Core.Check.Adapters.sim g (Core.Iso.Pattern.create ~labels ~edges)

(* A store client over a packed differential oracle: journal ops re-enter
   the engine as unit updates; snapshots carry the engine's canonical
   answer digest and SNAPSHOTTABLE certificate dump. *)
let client_of_oracle inst =
  let module O = Core.Check.Oracle in
  {
    J.Store.apply =
      (fun ops -> List.iter (O.apply inst) (J.Log.updates_of_ops ops));
    graph = (fun () -> O.graph inst);
    answer_digest = (fun () -> jdigest (O.answer inst));
    certs = (fun () -> O.cert_snapshot inst);
  }

let dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Journaled session directory.")

let update_of_spec s =
  let bad () = Error (Printf.sprintf "bad update %S (want +U-V or -U-V)" s) in
  if String.length s < 2 then bad ()
  else
    match s.[0] with
    | ('+' | '-') as sign -> (
        match
          String.split_on_char '-' (String.sub s 1 (String.length s - 1))
        with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v ->
                Ok
                  (if sign = '+' then Core.Digraph.Insert (u, v)
                   else Core.Digraph.Delete (u, v))
            | _ -> bad ())
        | _ -> bad ())
    | _ -> bad ()

(* Recover a store from DIR: plan, rebuild the engine the header names
   over the planned snapshot's graph (falling back to a graph-only client
   when the header's query class is not buildable), replay, attach. *)
let attach_store ?as_of ?(from_scratch = false) ~dir () =
  match J.Store.plan ?as_of ~from_scratch ~dir () with
  | Error e -> Error e
  | Ok plan ->
      let base = J.Snapshot.graph plan.J.Store.snapshot in
      let h = plan.J.Store.header in
      let inst =
        match
          qspec_of ~cls:h.J.Record.cls ~bound:h.J.Record.bound
            ~args:h.J.Record.qargs
        with
        | Ok spec -> Some (oracle_of_qspec base spec)
        | Error _ -> None
      in
      let client =
        match inst with
        | Some i -> client_of_oracle i
        | None -> J.Store.graph_client base
      in
      (match J.Store.attach ~dir ~plan ~client () with
      | Error e -> Error e
      | Ok store -> Ok (store, plan, inst))

let kind_str = function
  | J.Record.Do -> "do"
  | J.Record.Undo k -> Printf.sprintf "undo(%d)" k

let short d = if String.length d >= 8 then String.sub d 0 8 else d

let journal_cmd =
  let init_flag =
    Arg.(
      value & flag
      & info [ "init" ]
          ~doc:
            "Create DIR with snapshot-0 of the graph given by $(b,-g) and a \
             fresh journal headed by CLASS/QUERY.")
  in
  let graph_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "g"; "graph" ] ~doc:"Base graph file (with --init)." ~docv:"FILE")
  in
  let cls_opt =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"CLASS" ~doc:"Query class (with --init).")
  in
  let qargs_opt = Arg.(value & pos_right 1 string [] & info [] ~docv:"QUERY") in
  let apply_specs =
    Arg.(
      value & opt_all string []
      & info [ "apply" ]
          ~doc:"Journal and apply one update batch, e.g. +3-7 or -0-2. \
                Repeatable; each spec is its own batch."
          ~docv:"SPEC")
  in
  let repair_flag =
    Arg.(
      value & flag
      & info [ "repair" ] ~doc:"Truncate a torn journal tail in place.")
  in
  let chop =
    Arg.(
      value
      & opt (some int) None
      & info [ "chop" ]
          ~doc:
            "Crash injection for tests: cut N bytes off the journal file."
          ~docv:"N")
  in
  let apply_all store specs =
    List.fold_left
      (fun acc spec ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
            match update_of_spec spec with
            | Error e -> Error e
            | Ok u ->
                (match J.Store.do_batch store [ u ] with
                | None -> Format.printf "%s: no-op, not journaled@." spec
                | Some b ->
                    Format.printf "%s: seq=%d graph=%s@." spec b.J.Record.seq
                      (short (J.Store.digest store)));
                Ok ()))
      (Ok ()) specs
  in
  let run dir init graph_file cls bound qargs specs repair chop =
    if init then
      match (graph_file, cls) with
      | None, _ | _, None ->
          `Error (false, "--init needs -g FILE and a CLASS argument")
      | Some file, Some cls -> (
          match qspec_of ~cls ~bound ~args:qargs with
          | Error e -> `Error (false, e)
          | Ok spec ->
              let g = Core.Io.load file in
              let inst = oracle_of_qspec g spec in
              let header =
                {
                  J.Record.version = J.Record.format_version;
                  cls;
                  bound;
                  qargs;
                  base_digest = J.Log.graph_digest g;
                }
              in
              let store =
                J.Store.init ~dir ~header ~client:(client_of_oracle inst) ()
              in
              Format.printf "initialized %s: class %s, graph %s@." dir cls
                (short (J.Store.digest store));
              let r = apply_all store specs in
              J.Store.close store;
              (match r with Ok () -> `Ok () | Error e -> `Error (false, e)))
    else if repair then
      match J.Log.repair ~path:(J.Store.journal_path ~dir) with
      | Error e -> `Error (false, e)
      | Ok 0 ->
          Format.printf "journal clean, nothing to repair@.";
          `Ok ()
      | Ok n ->
          Format.printf "dropped %d torn byte(s)@." n;
          `Ok ()
    else
      match chop with
      | Some n ->
          J.Log.chop ~path:(J.Store.journal_path ~dir) n;
          Format.printf "chopped %d byte(s) off %s@." n
            (J.Store.journal_path ~dir);
          `Ok ()
      | None -> (
          if specs <> [] then
            match attach_store ~dir () with
            | Error e -> `Error (false, e)
            | Ok (store, _, _) ->
                let r = apply_all store specs in
                J.Store.close store;
                (match r with Ok () -> `Ok () | Error e -> `Error (false, e))
          else
            (* Inspect: read-only scan, no engine rebuild. *)
            match J.Log.scan ~path:(J.Store.journal_path ~dir) with
            | Error e -> `Error (false, e)
            | Ok s ->
                let h = s.J.Log.header in
                Format.printf "journal %s: class %s, bound %d, base %s@." dir
                  h.J.Record.cls h.J.Record.bound
                  (short h.J.Record.base_digest);
                List.iter
                  (fun (b : J.Record.batch) ->
                    Format.printf "  seq=%d %s %d op(s): %s@." b.J.Record.seq
                      (kind_str b.J.Record.kind)
                      (List.length b.J.Record.ops)
                      (String.concat ", "
                         (List.map J.Record.op_to_string b.J.Record.ops)))
                  s.J.Log.batches;
                (match s.J.Log.tail with
                | J.Log.Clean ->
                    Format.printf "  tail: clean (%d committed batch(es))@."
                      (List.length s.J.Log.batches)
                | J.Log.Torn { offset; dropped; reason } ->
                    Format.printf
                      "  tail: TORN at byte %d (%d byte(s) dropped): %s@."
                      offset dropped reason);
                (match J.Snapshot.list_seqs ~dir with
                | [] -> Format.printf "  snapshots: none@."
                | seqs ->
                    Format.printf "  snapshots: %s@."
                      (String.concat ", " (List.map string_of_int seqs)));
                `Ok ())
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Inspect or grow a journaled session directory: a write-ahead \
          journal of atomic graph ops (length-prefixed, checksummed, \
          torn-tail detecting) plus certificate snapshots.")
    Term.(
      ret
        (const run $ dir_arg $ init_flag $ graph_file $ cls_opt $ bound_arg
       $ qargs_opt $ apply_specs $ repair_flag $ chop))

let as_of_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "as-of" ]
        ~doc:
          "Recover to this sequence number instead of the tip (time travel; \
           the store attaches read-only)."
        ~docv:"N")

let replay_cmd =
  let from_scratch =
    Arg.(
      value & flag
      & info [ "from-scratch" ]
          ~doc:"Ignore newer snapshots and replay the whole journal from \
                snapshot-0.")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After recovery, run the differential oracle: certificate \
             invariants plus incremental-vs-batch answer equality.")
  in
  let run dir as_of from_scratch check =
    match attach_store ?as_of ~from_scratch ~dir () with
    | Error e -> `Error (false, e)
    | Ok (store, plan, inst) -> (
        if plan.J.Store.dropped > 0 then
          Format.printf "torn tail: dropped %d byte(s)@." plan.J.Store.dropped;
        Format.printf
          "recovered %s from snapshot-%d: replayed %d batch(es) to seq %d%s@."
          dir plan.J.Store.snapshot.J.Snapshot.seq
          (List.length plan.J.Store.replay)
          plan.J.Store.cut
          (if J.Store.writable store then "" else " (read-only)");
        Format.printf "graph digest %s@." (J.Store.digest store);
        let finish r =
          J.Store.close store;
          r
        in
        match (check, inst) with
        | false, _ -> finish (`Ok ())
        | true, None ->
            finish
              (`Error
                 (false, "--check: header names no buildable query class"))
        | true, Some i -> (
            match Core.Check.Oracle.check i with
            | () ->
                Format.printf "oracle agrees: answer digest %s@."
                  (jdigest (Core.Check.Oracle.answer i));
                finish (`Ok ())
            | exception Core.Check.Oracle.Check_failed msg ->
                finish (`Error (false, "oracle check failed: " ^ msg))))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Crash-recover a journaled session: pick the newest intact \
          snapshot, rebuild the engine, replay the journal tail with \
          per-batch digest verification.")
    Term.(ret (const run $ dir_arg $ as_of_arg $ from_scratch $ check_flag))

let undo_cmd =
  let k_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~doc:"Number of trailing batches to roll back." ~docv:"N")
  in
  let run dir k =
    match attach_store ~dir () with
    | Error e -> `Error (false, e)
    | Ok (store, _, inst) -> (
        match J.Store.undo store ~k with
        | Error e ->
            J.Store.close store;
            `Error (false, e)
        | Ok b ->
            Format.printf "undid %d batch(es): seq=%d graph=%s@." k
              b.J.Record.seq
              (short (J.Store.digest store));
            (match inst with
            | Some i -> (
                match Core.Check.Oracle.check i with
                | () -> Format.printf "oracle agrees after undo@."
                | exception Core.Check.Oracle.Check_failed msg ->
                    Format.printf "WARNING: oracle disagrees: %s@." msg)
            | None -> ());
            J.Store.close store;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "undo"
       ~doc:
         "Roll back the last N update batches by appending a compensating \
          batch (undo of an undo is redo); the rolled-back graph digest is \
          verified byte-for-byte against the journaled pre-state.")
    Term.(ret (const run $ dir_arg $ k_arg))

let snapshot_cmd =
  let run dir =
    match attach_store ~dir () with
    | Error e -> `Error (false, e)
    | Ok (store, _, _) ->
        let p = J.Store.snapshot store in
        Format.printf "wrote %s at seq %d@." p (J.Store.tip store);
        J.Store.close store;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Write a certificate snapshot (graph, canonical answer digest and \
          the engine's SNAPSHOTTABLE certificate dump) at the current tip, \
          bounding future recovery replay.")
    Term.(ret (const run $ dir_arg))

let () =
  let info =
    Cmd.info "incgraph" ~version:"1.0.0"
      ~doc:"Incremental graph computations: doable and undoable (SIGMOD'17)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            query_cmd;
            stream_cmd;
            top_cmd;
            fuzz_cmd;
            bench_cmd;
            compare_cmd;
            stats_cmd;
            trace_cmd;
            explain_cmd;
            lint_cmd;
            journal_cmd;
            replay_cmd;
            snapshot_cmd;
            undo_cmd;
          ]))
