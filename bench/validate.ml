(* Validate BENCH_*.json reports, TRACE_*.json Chrome trace files,
   incgraph-lint reports, OpenMetrics expositions, and the durability
   artifacts of lib/journal.

   Usage: dune exec bench/validate.exe -- FILE [FILE...]
   Files starting with the "IGJRNL01" magic are checked as delta journals
   (Core.Journal.Log.scan: decodable header, checksummed records with
   contiguous sequence numbers, clean tail — a torn tail is a validation
   failure, run `incgraph journal DIR --repair` first). Files opening on
   a "# TYPE" line (or the empty-registry "# EOF") are checked as
   OpenMetrics text expositions (Core.Obs.Openmetrics.validate: every
   sample typed, histogram buckets contiguous with strictly increasing
   le edges and non-decreasing cumulative counts ending in +Inf, _count
   matching the +Inf bucket, terminal # EOF). Files carrying a
   "traceEvents" key are checked as Chrome trace-event exports
   (Core.Obs.Trace_export.validate: well-formed events, nesting spans,
   monotone timestamps, rule-tagged aff_enter instants); files whose
   "tool" is "incgraph-lint" as lint reports (Core.Lint.validate, schema
   v1 or v2); files whose "tool" is "incgraph-lint-summary" as
   per-module effect summaries (Core.Lint_summary.validate); files
   whose "tool" is "incgraph-journal-snapshot" as certificate snapshots
   (Core.Journal.Snapshot.validate: structure + self-checksum); everything
   else as a BENCH report. Exits nonzero on the first file that fails to
   parse or validate. Used by the @bench-smoke, @trace-smoke, @crash-smoke,
   @telemetry-smoke and @lint aliases to guarantee that what the writers
   emit is what the validators promise. *)

module Json = Core.Obs.Json
module Report = Core.Obs.Report
module Trace_export = Core.Obs.Trace_export
module Openmetrics = Core.Obs.Openmetrics
module Lint = Core.Lint
module J = Core.Journal

type kind =
  | Bench of int * int * int * string (* version, experiments, points, backend *)
  | Trace of int
  | Lint_report of int * int (* schema version, diagnostics *)
  | Lint_summary of string * int * int (* module, exports, globals *)
  | Journal of int * int (* committed batches, total ops *)
  | Snapshot of int * int (* seq, certificate sections *)
  | Prom of int (* samples *)

let check path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  if Openmetrics.looks_like src then
    match Openmetrics.validate src with
    | Error e -> Error (Printf.sprintf "%s: openmetrics violation: %s" path e)
    | Ok n -> Ok (Prom n)
  else if
    String.length src >= String.length J.Record.magic
    && String.sub src 0 (String.length J.Record.magic) = J.Record.magic
  then
    match J.Log.scan ~path with
    | Error e -> Error (Printf.sprintf "%s: journal violation: %s" path e)
    | Ok s -> (
        match s.J.Log.tail with
        | J.Log.Torn { offset; dropped; reason } ->
            Error
              (Printf.sprintf
                 "%s: journal violation: torn tail at byte %d (%d byte(s), \
                  %s) — repair before archiving"
                 path offset dropped reason)
        | J.Log.Clean ->
            let ops =
              List.fold_left
                (fun acc (b : J.Record.batch) ->
                  acc + List.length b.J.Record.ops)
                0 s.J.Log.batches
            in
            Ok (Journal (List.length s.J.Log.batches, ops)))
  else
  match Json.parse src with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok json when Json.member "traceEvents" json <> None -> (
      match Trace_export.validate json with
      | Error e -> Error (Printf.sprintf "%s: trace violation: %s" path e)
      | Ok n -> Ok (Trace n))
  | Ok json
    when Option.bind (Json.member "tool" json) Json.to_str_opt
         = Some "incgraph-lint" -> (
      match Lint.validate json with
      | Error e -> Error (Printf.sprintf "%s: lint-report violation: %s" path e)
      | Ok (version, n) -> Ok (Lint_report (version, n)))
  | Ok json
    when Option.bind (Json.member "tool" json) Json.to_str_opt
         = Some Core.Lint_summary.tool_name -> (
      match Core.Lint_summary.validate json with
      | Error e ->
          Error (Printf.sprintf "%s: lint-summary violation: %s" path e)
      | Ok s ->
          Ok
            (Lint_summary
               ( s.Core.Lint_summary.module_name,
                 List.length s.Core.Lint_summary.exports,
                 List.length s.Core.Lint_summary.globals )))
  | Ok json
    when Option.bind (Json.member "tool" json) Json.to_str_opt
         = Some J.Snapshot.tool_name -> (
      match J.Snapshot.validate json with
      | Error e -> Error (Printf.sprintf "%s: snapshot violation: %s" path e)
      | Ok s -> Ok (Snapshot (s.J.Snapshot.seq, List.length s.J.Snapshot.certs)))
  | Ok json -> (
      match Report.validate json with
      | Error e -> Error (Printf.sprintf "%s: schema violation: %s" path e)
      | Ok () ->
          (* Report the file's own version — the validator accepts every
             version in Report.supported_versions, not only the current. *)
          let version =
            Option.value ~default:0
              (Option.bind (Json.member "schema_version" json) Json.to_int_opt)
          in
          let n_exp, n_pts =
            match Json.member "experiments" json with
            | Some (Json.Arr exps) ->
                ( List.length exps,
                  List.fold_left
                    (fun acc e ->
                      match Json.member "points" e with
                      | Some (Json.Arr ps) -> acc + List.length ps
                      | _ -> acc)
                    0 exps )
            | _ -> (0, 0)
          in
          (* The graph-backend config field: free-form config keys pass
             Report.validate structurally, but an unknown backend name
             would silently poison gate comparisons against a baseline
             from the other backend — reject it here. Absent means the
             report predates backends, i.e. hashtbl. *)
          let backend =
            Option.value ~default:"hashtbl"
              (Option.bind (Json.member "config" json) (fun c ->
                   Option.bind (Json.member "backend" c) Json.to_str_opt))
          in
          if backend <> "hashtbl" && backend <> "csr" then
            Error
              (Printf.sprintf
                 "%s: schema violation: unknown config.backend %S \
                  (hashtbl|csr)"
                 path backend)
          else Ok (Bench (version, n_exp, n_pts, backend)))

let () =
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] ->
        prerr_endline "usage: validate FILE.json [FILE.json...]";
        exit 2
    | fs -> fs
  in
  List.iter
    (fun path ->
      match check path with
      | Ok (Bench (version, n_exp, n_pts, backend)) ->
          Printf.printf
            "%s: valid (schema v%d, %d experiments, %d points, %s backend)\n"
            path version n_exp n_pts backend
      | Ok (Trace n) ->
          Printf.printf "%s: valid chrome trace (%d events)\n" path n
      | Ok (Lint_report (version, n)) ->
          Printf.printf "%s: valid lint report (schema v%d, %d diagnostics)\n"
            path version n
      | Ok (Lint_summary (m, exports, globals)) ->
          Printf.printf
            "%s: valid lint summary (module %s, %d export(s), %d global(s))\n"
            path m exports globals
      | Ok (Journal (batches, ops)) ->
          Printf.printf "%s: valid journal (%d committed batch(es), %d op(s))\n"
            path batches ops
      | Ok (Snapshot (seq, certs)) ->
          Printf.printf
            "%s: valid snapshot (seq %d, %d certificate section(s))\n" path seq
            certs
      | Ok (Prom n) ->
          Printf.printf "%s: valid openmetrics exposition (%d sample(s))\n"
            path n
      | Error msg ->
          prerr_endline msg;
          exit 1)
    files
