(* Validate a BENCH_*.json report against the current schema.

   Usage: dune exec bench/validate.exe -- FILE [FILE...]
   Exits nonzero on the first file that fails to parse or validate. Used by
   the @bench-smoke alias to guarantee that what bench/main.exe writes is
   what lib/obs/report.ml promises. *)

module Json = Core.Obs.Json
module Report = Core.Obs.Report

let check path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Json.parse src with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok json -> (
      match Report.validate json with
      | Error e -> Error (Printf.sprintf "%s: schema violation: %s" path e)
      | Ok () ->
          let n_exp, n_pts =
            match Json.member "experiments" json with
            | Some (Json.Arr exps) ->
                ( List.length exps,
                  List.fold_left
                    (fun acc e ->
                      match Json.member "points" e with
                      | Some (Json.Arr ps) -> acc + List.length ps
                      | _ -> acc)
                    0 exps )
            | _ -> (0, 0)
          in
          Ok (n_exp, n_pts))

let () =
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] ->
        prerr_endline "usage: validate FILE.json [FILE.json...]";
        exit 2
    | fs -> fs
  in
  List.iter
    (fun path ->
      match check path with
      | Ok (n_exp, n_pts) ->
          Printf.printf "%s: valid (schema v%d, %d experiments, %d points)\n"
            path Report.schema_version n_exp n_pts
      | Error msg ->
          prerr_endline msg;
          exit 1)
    files
