(* Validate BENCH_*.json reports, TRACE_*.json Chrome trace files and
   incgraph-lint reports.

   Usage: dune exec bench/validate.exe -- FILE [FILE...]
   Files carrying a "traceEvents" key are checked as Chrome trace-event
   exports (Core.Obs.Trace_export.validate: well-formed events, nesting
   spans, monotone timestamps, rule-tagged aff_enter instants); files whose
   "tool" is "incgraph-lint" as lint reports (Core.Lint.validate);
   everything else as a BENCH report. Exits nonzero on the first file that
   fails to parse or validate. Used by the @bench-smoke, @trace-smoke and
   @lint aliases to guarantee that what the writers emit is what the
   validators promise. *)

module Json = Core.Obs.Json
module Report = Core.Obs.Report
module Trace_export = Core.Obs.Trace_export
module Lint = Core.Lint

type kind = Bench of int * int * int | Trace of int | Lint_report of int

let check path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Json.parse src with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok json when Json.member "traceEvents" json <> None -> (
      match Trace_export.validate json with
      | Error e -> Error (Printf.sprintf "%s: trace violation: %s" path e)
      | Ok n -> Ok (Trace n))
  | Ok json
    when Option.bind (Json.member "tool" json) Json.to_str_opt
         = Some "incgraph-lint" -> (
      match Lint.validate json with
      | Error e -> Error (Printf.sprintf "%s: lint-report violation: %s" path e)
      | Ok n -> Ok (Lint_report n))
  | Ok json -> (
      match Report.validate json with
      | Error e -> Error (Printf.sprintf "%s: schema violation: %s" path e)
      | Ok () ->
          (* Report the file's own version — the validator accepts every
             version in Report.supported_versions, not only the current. *)
          let version =
            Option.value ~default:0
              (Option.bind (Json.member "schema_version" json) Json.to_int_opt)
          in
          let n_exp, n_pts =
            match Json.member "experiments" json with
            | Some (Json.Arr exps) ->
                ( List.length exps,
                  List.fold_left
                    (fun acc e ->
                      match Json.member "points" e with
                      | Some (Json.Arr ps) -> acc + List.length ps
                      | _ -> acc)
                    0 exps )
            | _ -> (0, 0)
          in
          Ok (Bench (version, n_exp, n_pts)))

let () =
  let files =
    match List.tl (Array.to_list Sys.argv) with
    | [] ->
        prerr_endline "usage: validate FILE.json [FILE.json...]";
        exit 2
    | fs -> fs
  in
  List.iter
    (fun path ->
      match check path with
      | Ok (Bench (version, n_exp, n_pts)) ->
          Printf.printf "%s: valid (schema v%d, %d experiments, %d points)\n"
            path version n_exp n_pts
      | Ok (Trace n) ->
          Printf.printf "%s: valid chrome trace (%d events)\n" path n
      | Ok (Lint_report n) ->
          Printf.printf "%s: valid lint report (%d diagnostics)\n" path n
      | Error msg ->
          prerr_endline msg;
          exit 1)
    files
