(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (Section 6). One target per experiment id:

     fig8a..fig8i   runtime vs |ΔG| (Exp-1), per class and dataset
     fig8j..fig8l   runtime vs query complexity (Exp-2)
     fig8m..fig8p   runtime vs |G| (Exp-3)
     unit_updates   Exp-1(5): unit-update speedups (reported in prose)
     opt_gain       batch-update optimization gain (prose summary)
     rho_sweep      ρ-insensitivity (prose of Exp-1)
     unbounded      Theorem 1 / Fig. 9 empirical unboundedness demo
     sim_delta      graph simulation (the paper's fifth class) vs |ΔG|
     journal        WAL append/undo/snapshot/recovery throughput (lib/journal)
     trav           batch traversal (Tarjan/NFA/kdist) scaling vs |G| —
                    the graph-backend shootout; at --scale 20 the top
                    point is a million-node graph
     micro          Bechamel micro-benchmarks, one per figure

   Usage: dune exec bench/main.exe [-- options]
     -e ID[,ID...]   run selected experiments (default: all)
     --scale X       graph scale factor (default 0.25; paper shapes hold
                     across scales, see EXPERIMENTS.md)
     --backend B     graph backend, hashtbl (default) or csr; recorded in
                     the report config — compare two runs with
                     `incgraph compare` to gate one backend against the
                     other (same graphs, same series names)
     --reps N        repetitions averaged per point (default 1)
     --seed N        RNG seed (default 2017)
     --points N      keep only the first N |ΔG| points per sweep (0 = all;
                     the @bench-gate alias uses this for a fast run)
     --quota S       bechamel time quota per micro-bench (default 0.5s)
     --out PATH      BENCH json output path (default BENCH_incgraph.json)

   Besides the tables printed to stdout, every data point is recorded —
   timings, per-engine Obs counter snapshots (measured |AFF|, |CHANGED|,
   work counters), speedups against the batch baseline, and (schema v2)
   the per-update latency histograms plus GC/allocation deltas the
   engines record through Obs.with_apply — into a schema-versioned json
   report (see lib/obs/report.ml and EXPERIMENTS.md).

   Absolute numbers are not comparable to the paper's (different machine,
   language, graph sizes); the reproduction target is the shape: who wins,
   by what factor, where the crossovers sit. *)

module D = Core.Digraph
module W = Core.Workload

(* ---- configuration ------------------------------------------------------- *)

type config = {
  mutable selected : string list; (* empty = all *)
  mutable scale : float;
  mutable backend : D.backend;
  mutable reps : int;
  mutable seed : int;
  mutable points : int; (* 0 = every |ΔG| point *)
  mutable quota : float;
  mutable out : string;
}

let cfg =
  {
    selected = [];
    scale = 0.25;
    backend = `Hashtbl;
    reps = 1;
    seed = 2017;
    points = 0;
    quota = 0.5;
    out = "BENCH_incgraph.json";
  }

let parse_args () =
  let rec go = function
    | [] -> ()
    | "-e" :: v :: rest ->
        cfg.selected <- cfg.selected @ String.split_on_char ',' v;
        go rest
    | "--scale" :: v :: rest ->
        cfg.scale <- float_of_string v;
        go rest
    | "--backend" :: v :: rest ->
        (match D.backend_of_string v with
        | Some b -> cfg.backend <- b
        | None -> failwith ("unknown backend " ^ v ^ " (hashtbl|csr)"));
        go rest
    | "--reps" :: v :: rest ->
        cfg.reps <- int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        cfg.seed <- int_of_string v;
        go rest
    | "--points" :: v :: rest ->
        cfg.points <- int_of_string v;
        go rest
    | "--quota" :: v :: rest ->
        cfg.quota <- float_of_string v;
        go rest
    | "--out" :: v :: rest ->
        cfg.out <- v;
        go rest
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv))

let rng_of_point tag =
  Random.State.make [| cfg.seed; Hashtbl.hash tag |]

module Obs = Core.Obs
module Histogram = Core.Obs.Histogram
module Report = Core.Obs.Report
module Json = Core.Obs.Json

(* Wall measurements ride the same monotonic clock as the Obs probes. *)
let time f =
  let t0 = Obs.now_s () in
  let r = f () in
  (r, Obs.now_s () -. t0)

(* ---- measurement cells and the json report -------------------------------- *)

(* One series of one data point: the timed run, the Obs counter snapshot
   of the engine that produced it, and its latency/GC histograms (both
   empty for batch baselines, which maintain no auxiliary structures to
   account for). *)
type cell = {
  time : float;
  ctrs : (string * int) list;
  hists : (string * Histogram.t) list;
}

let cell_times = List.map (fun c -> c.time)

let merge_ctrs a b =
  let keys = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.map
    (fun k ->
      ( k,
        Option.value ~default:0 (List.assoc_opt k a)
        + Option.value ~default:0 (List.assoc_opt k b) ))
    keys

(* Histograms merge exactly (element-wise buckets), so reps accumulate
   samples instead of averaging them away. *)
let merge_hists a b =
  let keys = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.map
    (fun k ->
      match (List.assoc_opt k a, List.assoc_opt k b) with
      | Some ha, Some hb -> (k, Histogram.merge ha hb)
      | Some h, None | None, Some h -> (k, h)
      | None, None -> assert false)
    keys

let cell_add a b =
  {
    time = a.time +. b.time;
    ctrs = merge_ctrs a.ctrs b.ctrs;
    hists = merge_hists a.hists b.hists;
  }

let cell_scale reps c =
  {
    time = c.time /. float_of_int reps;
    ctrs = List.map (fun (k, v) -> (k, v / reps)) c.ctrs;
    hists = c.hists (* distributions keep every sample *);
  }

(* Build an engine against a fresh metrics registry, run the workload, and
   snapshot what it cost. Construction is outside the timed section (the
   incremental problem takes the old output as given) but inside the
   registry's lifetime, so counters cover exactly this cell's updates. *)
let measured mk apply =
  let o = Obs.create () in
  let s = mk o in
  Obs.reset o;
  let t = snd (time (fun () -> apply s)) in
  {
    time = t;
    ctrs = Obs.counters o;
    hists = List.map (fun (k, h) -> (k, Histogram.copy h)) (Obs.histograms o);
  }

let no_cell time = { time; ctrs = []; hists = [] }
let report = ref None

(* GC words per batch, summarized from the gc_* histograms: total words
   over the cell's updates, keyed by stat name minus the gc_ prefix. *)
let gc_of_hists hists =
  List.filter_map
    (fun (k, h) ->
      if String.length k > 3 && String.sub k 0 3 = "gc_" then
        Some (String.sub k 3 (String.length k - 3), Histogram.sum h)
      else None)
    hists

let record ~id ~title ~x ~series ?(batch = -1) cells =
  match !report with
  | None -> ()
  | Some r ->
      let e = Report.experiment r ~id ~title in
      let timings = List.map2 (fun s c -> (s, c.time)) series cells in
      let counters = List.map2 (fun s c -> (s, c.ctrs)) series cells in
      let histograms =
        List.concat
          (List.map2
             (fun s c -> if c.hists = [] then [] else [ (s, c.hists) ])
             series cells)
      in
      let gc =
        List.concat
          (List.map2
             (fun s c ->
               match gc_of_hists c.hists with [] -> [] | g -> [ (s, g) ])
             series cells)
      in
      let speedup =
        if batch < 0 then []
        else
          let bt = (List.nth cells batch).time in
          List.concat
            (List.mapi
               (fun i (s, c) ->
                 if i = batch then []
                 else [ (s, bt /. Float.max 1e-9 c.time) ])
               (List.combine series cells))
      in
      Report.add_point e ~x ~timings ~counters ~speedup ~histograms ~gc ()

(* ---- table printing ------------------------------------------------------- *)

let print_table ~title ~xlabel ~series rows =
  Format.printf "@.== %s ==@." title;
  Format.printf "%-14s" xlabel;
  List.iter (fun s -> Format.printf "%12s" s) series;
  Format.printf "@.";
  List.iter
    (fun (x, cells) ->
      Format.printf "%-14s" x;
      List.iter (fun v -> Format.printf "%12.4f" v) cells;
      Format.printf "@.")
    rows

(* Where the first series stops beating the last one (paper: "outperform
   batch even when |ΔG| is up to X%"). *)
let report_crossover ~inc ~batch rows =
  let last_winning = ref None in
  List.iter
    (fun (x, cells) ->
      let get i = List.nth cells i in
      if get inc < get batch then last_winning := Some x)
    rows;
  (match !last_winning with
  | Some x -> Format.printf "incremental beats batch up to |ΔG| = %s@." x
  | None -> Format.printf "incremental never beats batch at this scale@.");
  (* Speedup at the 10%% point, if present. *)
  match List.assoc_opt "10%" rows with
  | Some cells ->
      Format.printf "speedup at 10%%: %.1fx@."
        (List.nth cells batch /. Float.max 1e-9 (List.nth cells inc))
  | None -> ()

(* ---- workload construction ------------------------------------------------ *)

let instantiate profile =
  let rng = rng_of_point ("graph", profile.W.Profiles.name) in
  W.Profiles.instantiate ~scale:cfg.scale ~backend:cfg.backend ~rng profile

let all_delta_percents = [ 5; 10; 15; 20; 25; 30; 35; 40 ]

(* Honors --points: the gate alias runs just the head of each sweep. *)
let delta_percents () =
  if cfg.points <= 0 then all_delta_percents
  else List.filteri (fun i _ -> i < cfg.points) all_delta_percents

(* Replay-style workload (see Updates.generate_replay): returns the base
   graph (the master copy minus the insert pool) together with the batch. *)
let updates_for g pct rep =
  let rng = rng_of_point ("updates", pct, rep) in
  let size = pct * D.n_edges g / 100 in
  let base = D.copy g in
  let ups = W.Updates.generate_replay ~rng base ~size () in
  (base, ups)

(* Pick a query whose answer is nontrivial but bounded, retrying seeds. *)
let rec pick (k : int -> 'a option) (seed : int) : 'a =
  if seed > 64 then failwith "bench: no suitable query found"
  else match k seed with Some q -> q | None -> pick k (seed + 1)

let pick_rpq g size =
  pick
    (fun seed ->
      let rng = rng_of_point ("rpq", size, seed) in
      let q = W.Queries.rpq ~rng g ~size in
      let n = List.length (Core.Rpq.Batch.run_query g q) in
      (* Nontrivial answers only; the batch cost is driven by the source
         count and product reach, not the match count, so a low bar is
         enough. *)
      if n >= 1 && n < 200_000 then Some q else None)
    0

let pick_iso g nodes edges =
  (* Prefer dense, small-diameter patterns as in the paper's query sets
     ((4,6,2) etc.); progressively relax if the graph cannot supply them. *)
  let attempt ~min_edges ~max_diam seed =
    let rng = rng_of_point ("iso", nodes, edges, seed) in
    match W.Queries.iso ~rng g ~nodes ~edges with
    | None -> None
    | Some p ->
        if
          Core.Iso.Pattern.n_edges p < min_edges
          || Core.Iso.Pattern.diameter p > max_diam
        then None
        else
          let n = List.length (Core.Iso.Vf2.find_all g p) in
          if n > 0 && n < 100_000 then Some p else None
  in
  let rec first = function
    | [] -> failwith "bench: no suitable iso pattern found"
    | (min_edges, max_diam) :: rest -> (
        let rec go seed =
          if seed > 40 then None
          else
            match attempt ~min_edges ~max_diam seed with
            | Some p -> Some p
            | None -> go (seed + 1)
        in
        match go 0 with Some p -> p | None -> first rest)
  in
  first
    [
      (min edges nodes, 3);
      (nodes - 1, 4);
      (1, max_int);
    ]

let pick_kws g m b =
  pick
    (fun seed ->
      let rng = rng_of_point ("kws", m, b, seed) in
      let q = W.Queries.kws ~rng g ~m ~b in
      let n = List.length (Core.Kws.Batch.run g q) in
      if n > 0 then Some q else None)
    0

(* ---- per-class runners -----------------------------------------------------

   Each runner measures, for one update batch:
     - the grouped incremental engine (IncX),
     - the unit-at-a-time variant (IncXn),
     - batch recomputation (the paper's batch counterpart), which is given
       G and ΔG and must produce Q(G ⊕ ΔG) — applying ΔG is part of its
       timed work.
   Session construction (the "old output" Q(G) plus auxiliary structures) is
   not timed: the incremental problem takes them as given. *)

let batch_time g ups run =
  let g' = D.copy g in
  snd
    (time (fun () ->
         D.apply_batch g' ups;
         run g'))

let kws_point g q ups =
  let run grouped =
    measured
      (fun o -> Core.Kws.Inc.init ~grouped ~obs:o (D.copy g) q)
      (fun s -> ignore (Core.Kws.Inc.apply_batch s ups))
  in
  let inc = run true in
  let incn = run false in
  let batch =
    no_cell (batch_time g ups (fun g' -> ignore (Core.Kws.Batch.run g' q)))
  in
  [ inc; incn; batch ]

let rpq_point g q ups =
  let a = Core.Nfa.compile (D.interner g) q in
  let run grouped =
    measured
      (fun o -> Core.Rpq.Inc.init ~grouped ~obs:o (D.copy g) a)
      (fun s -> ignore (Core.Rpq.Inc.apply_batch s ups))
  in
  let inc = run true in
  let incn = run false in
  let batch =
    no_cell (batch_time g ups (fun g' -> ignore (Core.Rpq.Batch.run g' a)))
  in
  [ inc; incn; batch ]

let scc_point g ups =
  let with_config config =
    measured
      (fun o -> Core.Scc.Inc.init ~config ~obs:o (D.copy g))
      (fun s -> ignore (Core.Scc.Inc.apply_batch s ups))
  in
  let inc = with_config Core.Scc.Inc.inc_config in
  let incn = with_config Core.Scc.Inc.incn_config in
  let batch =
    no_cell (batch_time g ups (fun g' -> ignore (Core.Scc.Tarjan.scc g')))
  in
  let dyn = with_config Core.Scc.Inc.dyn_config in
  [ inc; incn; batch; dyn ]

let iso_point g p ups =
  let run grouped =
    measured
      (fun o -> Core.Iso.Inc.init ~grouped ~obs:o (D.copy g) p)
      (fun s -> ignore (Core.Iso.Inc.apply_batch s ups))
  in
  let inc = run true in
  let incn = run false in
  let batch =
    no_cell (batch_time g ups (fun g' -> ignore (Core.Iso.Vf2.find_all g' p)))
  in
  [ inc; incn; batch ]

(* Graph simulation (the fifth class wired through `incgraph`): IncSim
   against the batch fixpoint SimFix. *)
let sim_point g p ups =
  let inc =
    measured
      (fun o -> Core.Sim.Inc.init ~obs:o (D.copy g) p)
      (fun s -> ignore (Core.Sim.Inc.apply_batch s ups))
  in
  let batch =
    no_cell (batch_time g ups (fun g' -> ignore (Core.Sim.Batch.run p g')))
  in
  [ inc; batch ]

(* Average a point over cfg.reps distinct update batches (counters are
   averaged alongside the timings). *)
let averaged point_of pct g =
  let acc = ref None in
  for rep = 1 to cfg.reps do
    let base, ups = updates_for g pct rep in
    let cells = point_of base ups in
    acc :=
      Some
        (match !acc with
        | None -> cells
        | Some prev -> List.map2 cell_add prev cells)
  done;
  List.map (cell_scale cfg.reps) (Option.get !acc)

(* ---- Exp-1: runtime vs |ΔG| ------------------------------------------------ *)

let exp1 ~figure ~cls ~profile =
  let g = instantiate profile in
  Format.printf "@.[%s] %s: %d nodes, %d edges@." figure profile.W.Profiles.name
    (D.n_nodes g) (D.n_edges g);
  let series, point =
    match cls with
    | `Kws ->
        let q = pick_kws g 3 2 in
        ([ "IncKWS"; "IncKWSn"; "BLINKS" ], fun base ups -> kws_point base q ups)
    | `Rpq ->
        let q = pick_rpq g 4 in
        Format.printf "query: %s@." (Core.Regex.to_string q);
        ([ "IncRPQ"; "IncRPQn"; "RPQNFA" ], fun base ups -> rpq_point base q ups)
    | `Scc ->
        ([ "IncSCC"; "IncSCCn"; "Tarjan"; "DynSCC" ], fun base ups -> scc_point base ups)
    | `Iso ->
        let p = pick_iso g 4 6 in
        Format.printf "pattern: |VQ|=%d |EQ|=%d dQ=%d@."
          (Core.Iso.Pattern.n_nodes p) (Core.Iso.Pattern.n_edges p)
          (Core.Iso.Pattern.diameter p);
        ([ "IncISO"; "IncISOn"; "VF2" ], fun base ups -> iso_point base p ups)
  in
  let rows =
    List.map
      (fun pct ->
        (Printf.sprintf "%d%%" pct, averaged point pct g))
      (delta_percents ())
  in
  let batch_col = match cls with `Scc -> 2 | _ -> List.length series - 1 in
  let title =
    Printf.sprintf "Fig 8(%s) — %s varying |ΔG| (%s)"
      (String.sub figure 4 1)
      (match cls with
      | `Kws -> "KWS" | `Rpq -> "RPQ" | `Scc -> "SCC" | `Iso -> "ISO")
      profile.W.Profiles.name
  in
  List.iter
    (fun (x, cells) ->
      record ~id:figure ~title ~x ~series ~batch:batch_col cells)
    rows;
  let trows = List.map (fun (x, cells) -> (x, cell_times cells)) rows in
  print_table ~title ~xlabel:"|ΔG|/|G|" ~series trows;
  report_crossover ~inc:0 ~batch:batch_col trows

(* ---- Exp-2: query complexity ------------------------------------------------ *)

let exp2_kws () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf "@.[fig8j] dbpedia-like: %d nodes, %d edges@." (D.n_nodes g)
    (D.n_edges g);
  let rows =
    List.map
      (fun (m, b) ->
        let q = pick_kws g m b in
        let base, ups = updates_for g 10 1 in
        (Printf.sprintf "(%d,%d)" m b, kws_point base q ups))
      [ (2, 1); (3, 2); (4, 3); (5, 4); (6, 5) ]
  in
  let title = "Fig 8(j) — KWS varying (m,b), |ΔG| = 10% (dbpedia)" in
  let series = [ "IncKWS"; "IncKWSn"; "BLINKS" ] in
  List.iter
    (fun (x, cells) -> record ~id:"fig8j" ~title ~x ~series ~batch:2 cells)
    rows;
  print_table ~title ~xlabel:"(m,b)" ~series
    (List.map (fun (x, cells) -> (x, cell_times cells)) rows)

let exp2_rpq () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf "@.[fig8k] dbpedia-like: %d nodes, %d edges@." (D.n_nodes g)
    (D.n_edges g);
  let rows =
    List.map
      (fun size ->
        let q = pick_rpq g size in
        let base, ups = updates_for g 10 1 in
        (string_of_int size, rpq_point base q ups))
      [ 3; 4; 5; 6; 7 ]
  in
  let title = "Fig 8(k) — RPQ varying |Q|, |ΔG| = 10% (dbpedia)" in
  let series = [ "IncRPQ"; "IncRPQn"; "RPQNFA" ] in
  List.iter
    (fun (x, cells) -> record ~id:"fig8k" ~title ~x ~series ~batch:2 cells)
    rows;
  print_table ~title ~xlabel:"|Q|" ~series
    (List.map (fun (x, cells) -> (x, cell_times cells)) rows)

let exp2_iso () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf "@.[fig8l] dbpedia-like: %d nodes, %d edges@." (D.n_nodes g)
    (D.n_edges g);
  let rows =
    List.map
      (fun (vq, eq) ->
        let p = pick_iso g vq eq in
        let base, ups = updates_for g 10 1 in
        ( Printf.sprintf "(%d,%d,%d)" vq eq (Core.Iso.Pattern.diameter p),
          iso_point base p ups ))
      [ (3, 5); (4, 6); (5, 7); (6, 8); (7, 9) ]
  in
  let title = "Fig 8(l) — ISO varying (|VQ|,|EQ|,dQ), |ΔG| = 10% (dbpedia)" in
  let series = [ "IncISO"; "IncISOn"; "VF2" ] in
  List.iter
    (fun (x, cells) -> record ~id:"fig8l" ~title ~x ~series ~batch:2 cells)
    rows;
  print_table ~title ~xlabel:"(V,E,d)" ~series
    (List.map (fun (x, cells) -> (x, cell_times cells)) rows)

(* ---- Exp-3: runtime vs |G| --------------------------------------------------- *)

let exp3 ~figure ~cls =
  Format.printf "@.[%s] synthetic, scale sweep@." figure;
  let full = instantiate W.Profiles.synthetic in
  let fixed_dg = 15 * D.n_edges full / 100 in
  let rows =
    List.map
      (fun factor ->
        let rng = rng_of_point ("exp3graph", figure, factor) in
        let g =
          W.Profiles.instantiate
            ~scale:(cfg.scale *. factor)
            ~rng W.Profiles.synthetic
        in
        let rng = rng_of_point ("exp3ups", figure, factor) in
        let base = D.copy g in
        let ups =
          W.Updates.generate_replay ~rng base
            ~size:(min fixed_dg (D.n_edges g / 2))
            ()
        in
        let cells =
          match cls with
          | `Kws ->
              let q = pick_kws g 3 2 in
              kws_point base q ups
          | `Rpq ->
              let q = pick_rpq g 4 in
              rpq_point base q ups
          | `Scc -> scc_point base ups
          | `Iso ->
              let p = pick_iso g 4 6 in
              iso_point base p ups
        in
        (Printf.sprintf "%.1f" factor, cells))
      [ 0.2; 0.4; 0.6; 0.8; 1.0 ]
  in
  let series =
    match cls with
    | `Kws -> [ "IncKWS"; "IncKWSn"; "BLINKS" ]
    | `Rpq -> [ "IncRPQ"; "IncRPQn"; "RPQNFA" ]
    | `Scc -> [ "IncSCC"; "IncSCCn"; "Tarjan"; "DynSCC" ]
    | `Iso -> [ "IncISO"; "IncISOn"; "VF2" ]
  in
  let batch_col = match cls with `Scc -> 2 | _ -> List.length series - 1 in
  let title =
    Printf.sprintf "Fig 8(%s) — %s varying |G| (synthetic, |ΔG| fixed)"
      (String.sub figure 4 1)
      (match cls with
      | `Kws -> "KWS" | `Rpq -> "RPQ" | `Scc -> "SCC" | `Iso -> "ISO")
  in
  List.iter
    (fun (x, cells) ->
      record ~id:figure ~title ~x ~series ~batch:batch_col cells)
    rows;
  print_table ~title ~xlabel:"scale" ~series
    (List.map (fun (x, cells) -> (x, cell_times cells)) rows)

(* ---- unit updates (Exp-1(5)) -------------------------------------------------- *)

let unit_updates () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf "@.[unit_updates] dbpedia-like: %d nodes, %d edges@."
    (D.n_nodes g) (D.n_edges g);
  let base = D.copy g in
  let units =
    let rng = rng_of_point "unit_updates" in
    W.Updates.generate_replay ~rng base ~size:20 ()
  in
  let g = base in
  let bench_units inc_time batch_time =
    let ti = ref 0.0 and tb = ref 0.0 and k = ref 0 in
    List.iter
      (fun up ->
        ti := !ti +. inc_time up;
        tb := !tb +. batch_time up;
        incr k)
      units;
    (!ti /. float_of_int !k, !tb /. float_of_int !k)
  in
  let row name (inc, batch) =
    Format.printf "%-8s avg unit-update: inc %.6fs  batch %.6fs  speedup %.0fx@."
      name inc batch (batch /. Float.max 1e-9 inc)
  in
  (* KWS *)
  let q = pick_kws g 3 2 in
  let s = Core.Kws.Inc.init (D.copy g) q in
  row "KWS"
    (bench_units
       (fun up -> snd (time (fun () -> ignore (Core.Kws.Inc.apply_batch s [ up ]))))
       (fun _ -> snd (time (fun () -> ignore (Core.Kws.Batch.run (Core.Kws.Inc.graph s) q)))));
  (* RPQ *)
  let q = pick_rpq g 4 in
  let a = Core.Nfa.compile (D.interner g) q in
  let s = Core.Rpq.Inc.init (D.copy g) a in
  row "RPQ"
    (bench_units
       (fun up -> snd (time (fun () -> ignore (Core.Rpq.Inc.apply_batch s [ up ]))))
       (fun _ -> snd (time (fun () -> ignore (Core.Rpq.Batch.run (Core.Rpq.Inc.graph s) a)))));
  (* SCC, with the DynSCC comparison the paper quotes (5.7x). *)
  let s = Core.Scc.Inc.init (D.copy g) in
  let d = Core.Scc.Inc.init ~config:Core.Scc.Inc.dyn_config (D.copy g) in
  let inc, batch =
    bench_units
      (fun up -> snd (time (fun () -> ignore (Core.Scc.Inc.apply_batch s [ up ]))))
      (fun _ -> snd (time (fun () -> ignore (Core.Scc.Tarjan.scc (Core.Scc.Inc.graph s)))))
  in
  row "SCC" (inc, batch);
  let dyn =
    let t = ref 0.0 in
    List.iter
      (fun up ->
        t := !t +. snd (time (fun () -> ignore (Core.Scc.Inc.apply_batch d [ up ]))))
      units;
    !t /. float_of_int (List.length units)
  in
  Format.printf "         DynSCC avg %.6fs (IncSCC is %.1fx faster)@." dyn
    (dyn /. Float.max 1e-9 inc);
  (* ISO *)
  let p = pick_iso g 4 6 in
  let s = Core.Iso.Inc.init (D.copy g) p in
  row "ISO"
    (bench_units
       (fun up -> snd (time (fun () -> ignore (Core.Iso.Inc.apply_batch s [ up ]))))
       (fun _ -> snd (time (fun () -> ignore (Core.Iso.Vf2.find_all (Core.Iso.Inc.graph s) p)))))

(* ---- optimization gain summary (prose) ----------------------------------------- *)

let opt_gain () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf
    "@.[opt_gain] IncX vs IncXn at |ΔG| = 10%% (dbpedia-like, %d edges)@."
    (D.n_edges g);
  let base, ups = updates_for g 10 1 in
  let ratio name cells =
    match cells with
    | inc :: incn :: _ ->
        record ~id:"opt_gain" ~title:"IncX vs IncXn at |ΔG| = 10%" ~x:name
          ~series:[ "IncX"; "IncXn" ]
          [ inc; incn ];
        Format.printf "%-6s IncX %.4fs  IncXn %.4fs  gain %.2fx@." name
          inc.time incn.time
          (incn.time /. Float.max 1e-9 inc.time)
    | _ -> ()
  in
  ratio "KWS" (kws_point base (pick_kws g 3 2) ups);
  ratio "RPQ" (rpq_point base (pick_rpq g 4) ups);
  ratio "SCC" (scc_point base ups);
  ratio "ISO" (iso_point base (pick_iso g 4 6) ups)

(* ---- ρ sweep (prose) ------------------------------------------------------------ *)

let rho_sweep () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf "@.[rho_sweep] insert/delete ratio, |ΔG| = 10%% (dbpedia-like)@.";
  let size = D.n_edges g / 10 in
  let kq = pick_kws g 3 2 in
  let rq = pick_rpq g 4 in
  let ra = Core.Nfa.compile (D.interner g) rq in
  let ip = pick_iso g 4 6 in
  let rows =
    List.map
      (fun rho ->
        let rng = rng_of_point ("rho", int_of_float (rho *. 10.)) in
        let g = D.copy g in
        let ups = W.Updates.generate_replay ~rng g ~size ~ratio:rho () in
        let t_kws =
          let s = Core.Kws.Inc.init (D.copy g) kq in
          snd (time (fun () -> ignore (Core.Kws.Inc.apply_batch s ups)))
        in
        let t_rpq =
          let s = Core.Rpq.Inc.init (D.copy g) ra in
          snd (time (fun () -> ignore (Core.Rpq.Inc.apply_batch s ups)))
        in
        let t_scc =
          let s = Core.Scc.Inc.init (D.copy g) in
          snd (time (fun () -> ignore (Core.Scc.Inc.apply_batch s ups)))
        in
        let t_iso =
          let s = Core.Iso.Inc.init (D.copy g) ip in
          snd (time (fun () -> ignore (Core.Iso.Inc.apply_batch s ups)))
        in
        (Printf.sprintf "ρ=%.1f" rho, [ t_kws; t_rpq; t_scc; t_iso ]))
      [ 0.2; 1.0; 5.0 ]
  in
  print_table ~title:"ρ-insensitivity of the incremental algorithms"
    ~xlabel:"ratio" ~series:[ "IncKWS"; "IncRPQ"; "IncSCC"; "IncISO" ] rows

(* ---- graph simulation vs |ΔG| ----------------------------------------------------- *)

(* The fifth query class the CLI serves; exp1-shaped so its points carry
   the same latency/GC histogram sections as the four paper classes. *)
let sim_delta () =
  let g = instantiate W.Profiles.dbpedia_like in
  Format.printf "@.[sim_delta] dbpedia-like: %d nodes, %d edges@." (D.n_nodes g)
    (D.n_edges g);
  let p = pick_iso g 3 3 in
  Format.printf "pattern: |VQ|=%d |EQ|=%d@." (Core.Iso.Pattern.n_nodes p)
    (Core.Iso.Pattern.n_edges p);
  let series = [ "IncSim"; "SimFix" ] in
  let rows =
    List.map
      (fun pct ->
        ( Printf.sprintf "%d%%" pct,
          averaged (fun base ups -> sim_point base p ups) pct g ))
      (delta_percents ())
  in
  let title = "Graph simulation varying |ΔG| (dbpedia)" in
  List.iter
    (fun (x, cells) -> record ~id:"sim_delta" ~title ~x ~series ~batch:1 cells)
    rows;
  let trows = List.map (fun (x, cells) -> (x, cell_times cells)) rows in
  print_table ~title ~xlabel:"|ΔG|/|G|" ~series trows;
  report_crossover ~inc:0 ~batch:1 trows

(* ---- journal throughput ------------------------------------------------------------ *)

(* The durability tax (lib/journal): unit updates pushed through the
   write-ahead store — normalize, frame + checksum + flush, apply, verify
   the post digest — against raw Digraph.apply on the same stream, plus
   the undo, snapshot and crash-recovery paths. The store runs over the
   engine-free graph client, so the numbers isolate journaling cost from
   engine maintenance (every engine pays the same WAL surcharge). *)
let journal_throughput () =
  let module J = Core.Journal in
  let g = instantiate W.Profiles.synthetic in
  Format.printf "@.[journal] synthetic: %d nodes, %d edges@." (D.n_nodes g)
    (D.n_edges g);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "incgraph_bench_journal"
  in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let base = D.copy g in
  let n = max 100 (D.n_edges g / 40) in
  let rng = rng_of_point ("journal", n) in
  let ups = W.Updates.generate_replay ~rng base ~size:n () in
  let t_raw =
    let gr = D.copy base in
    snd (time (fun () -> List.iter (fun u -> ignore (D.apply gr u)) ups))
  in
  let o = Obs.create () in
  let header =
    {
      J.Record.version = J.Record.format_version;
      cls = "scc";
      bound = 0;
      qargs = [];
      base_digest = J.Log.graph_digest base;
    }
  in
  let store =
    J.Store.init ~obs:o ~dir ~header ~client:(J.Store.graph_client (D.copy base)) ()
  in
  Obs.reset o;
  let t_append =
    snd
      (time (fun () ->
           List.iter (fun u -> ignore (J.Store.do_batch store [ u ])) ups))
  in
  let applied = J.Store.tip store in
  let t_snap = snd (time (fun () -> ignore (J.Store.snapshot store))) in
  let undo_n = applied / 2 in
  let t_undo =
    snd
      (time (fun () ->
           for _ = 1 to undo_n do
             match J.Store.undo store ~k:1 with
             | Ok _ -> ()
             | Error e -> failwith ("journal bench: undo: " ^ e)
           done))
  in
  let cell =
    {
      time = t_append;
      ctrs = Obs.counters o;
      hists = List.map (fun (k, h) -> (k, Histogram.copy h)) (Obs.histograms o);
    }
  in
  J.Store.close store;
  let attach_time ~from_scratch =
    snd
      (time (fun () ->
           match J.Store.plan ~from_scratch ~dir () with
           | Error e -> failwith ("journal bench: plan: " ^ e)
           | Ok plan -> (
               let base' = J.Snapshot.graph plan.J.Store.snapshot in
               match
                 J.Store.attach ~dir ~plan
                   ~client:(J.Store.graph_client base') ()
               with
               | Error e -> failwith ("journal bench: attach: " ^ e)
               | Ok st -> J.Store.close st)))
  in
  (* From snapshot-[applied]: replays just the undo tail; from scratch:
     the whole history. The gap is what snapshot cadence buys. *)
  let t_rec_snap = attach_time ~from_scratch:false in
  let t_rec_scratch = attach_time ~from_scratch:true in
  let title = "Journal throughput — WAL + undo + recovery (synthetic)" in
  let series = [ "journal" ] in
  let rows =
    [
      (Printf.sprintf "append(%d)" applied, cell);
      (Printf.sprintf "undo(%d)" undo_n, no_cell t_undo);
      ("snapshot", no_cell t_snap);
      ("recover/snap", no_cell t_rec_snap);
      ("recover/scratch", no_cell t_rec_scratch);
    ]
  in
  List.iter (fun (x, c) -> record ~id:"journal" ~title ~x ~series [ c ]) rows;
  print_table ~title ~xlabel:"phase" ~series
    (List.map (fun (x, c) -> (x, [ c.time ])) rows);
  Format.printf
    "raw apply of the same %d updates: %.4fs — WAL surcharge %.1fx, %.0f \
     journaled op/s@."
    (List.length ups) t_raw
    (t_append /. Float.max 1e-9 t_raw)
    (float_of_int applied /. Float.max 1e-9 t_append)

(* ---- traversal scaling (graph-backend shootout) ----------------------------------- *)

(* Batch traversal kernels against graph size — the regime where the graph
   core's memory layout, not engine bookkeeping, dominates cost. Each point
   builds a fresh synthetic graph at a fraction of --scale on the selected
   backend and runs each kernel once inside [Obs.with_apply], so the
   latency and gc_* histograms capture work attributable to the traversal
   itself. Series names are backend-independent: run once per backend and
   feed both reports to compare.exe (which joins on experiment/x/series) to
   gate one layout against the other. At --scale 20 the top point is a
   million-node, two-million-edge graph — the CSR acceptance workload. *)
let trav () =
  let factors =
    let all = [ 0.2; 0.4; 0.6; 0.8; 1.0 ] in
    if cfg.points <= 0 then all
    else List.filteri (fun i _ -> i < cfg.points) all
  in
  let series = [ "Tarjan"; "NFA"; "kdist" ] in
  let batch_cell run =
    let o = Obs.create () in
    let t = snd (time (fun () -> Obs.with_apply o run)) in
    {
      time = t;
      ctrs = Obs.counters o;
      hists = List.map (fun (k, h) -> (k, Histogram.copy h)) (Obs.histograms o);
    }
  in
  let title = "Batch traversal (Tarjan/NFA/kdist) vs |G| (synthetic)" in
  let rows =
    List.map
      (fun f ->
        let scale = cfg.scale *. f in
        let rng = rng_of_point ("trav-graph", f) in
        let g =
          W.Profiles.instantiate ~scale ~backend:cfg.backend ~rng
            W.Profiles.synthetic
        in
        let n = D.n_nodes g in
        Format.printf "@.[trav] synthetic ×%.2f: %d nodes, %d edges (%s)@." f n
          (D.n_edges g)
          (D.backend_name (D.backend g));
        (* Fixed-shape queries, cheap to draw at any scale: pick_* would run
           batch suitability probes, which at a million nodes would dwarf
           the measurement itself. *)
        let kq = W.Queries.kws ~rng:(rng_of_point ("trav-kws", f)) g ~m:3 ~b:2 in
        let rq = W.Queries.rpq ~rng:(rng_of_point ("trav-rpq", f)) g ~size:3 in
        let a = Core.Nfa.compile (D.interner g) rq in
        let cells =
          [
            batch_cell (fun () -> ignore (Core.Scc.Tarjan.scc g));
            batch_cell (fun () -> ignore (Core.Rpq.Batch.run g a));
            batch_cell (fun () -> ignore (Core.Kws.Batch.run g kq));
          ]
        in
        let x = string_of_int n in
        record ~id:"trav" ~title ~x ~series cells;
        (x, cells))
      factors
  in
  print_table ~title ~xlabel:"|V|" ~series
    (List.map (fun (x, cells) -> (x, cell_times cells)) rows)

(* ---- unboundedness demo ----------------------------------------------------------- *)

let unbounded () =
  Format.printf
    "@.[unbounded] Fig. 9 gadget: work for the output-silent Δ1 vs |CHANGED|@.";
  Format.printf "%-10s%12s%14s@." "cycle n" "|CHANGED|" "inc work";
  List.iter
    (fun p ->
      Format.printf "%-10d%12d%14d@." p.Core.Theory.Gadget.n
        p.Core.Theory.Gadget.changed p.Core.Theory.Gadget.inc_work)
    (Core.Theory.Gadget.demo ~cycles:[ 64; 128; 256; 512; 1024 ])

(* ---- bechamel micro-benchmarks ------------------------------------------------------ *)

(* Each figure gets one Test.make of its headline incremental kernel on a
   small fixed workload. The kernel applies a batch and then its inverse,
   returning the session to its original answer, so repeated runs measure a
   stable quantity. *)

let inverse_updates ups =
  List.rev_map
    (function
      | D.Insert (u, v) -> D.Delete (u, v)
      | D.Delete (u, v) -> D.Insert (u, v))
    ups

let micro () =
  let open Bechamel in
  let rng = Random.State.make [| cfg.seed |] in
  let g =
    W.Profiles.instantiate ~scale:0.02 ~rng W.Profiles.dbpedia_like
  in
  let gs = W.Profiles.instantiate ~scale:0.02 ~rng W.Profiles.synthetic in
  let gl = W.Profiles.instantiate ~scale:0.02 ~rng W.Profiles.livej_like in
  (* Mutates its argument into the base graph (replay methodology). *)
  let mk_ups graph =
    W.Updates.generate_replay ~rng graph ~size:(D.n_edges graph / 20) ()
  in
  let roundtrip apply ups =
    let inv = inverse_updates ups in
    fun () ->
      apply ups;
      apply inv
  in
  let kws_test name graph =
    let q = pick_kws graph 3 2 in
    let graph = D.copy graph in
    let ups = mk_ups graph in
    let s = Core.Kws.Inc.init graph q in
    Test.make ~name
      (Staged.stage (roundtrip (fun u -> ignore (Core.Kws.Inc.apply_batch s u)) ups))
  in
  let rpq_test name graph =
    let q = pick_rpq graph 4 in
    let graph = D.copy graph in
    let ups = mk_ups graph in
    let s = Core.Rpq.Inc.create graph q in
    Test.make ~name
      (Staged.stage (roundtrip (fun u -> ignore (Core.Rpq.Inc.apply_batch s u)) ups))
  in
  let scc_test name graph =
    let graph = D.copy graph in
    let ups = mk_ups graph in
    let s = Core.Scc.Inc.init graph in
    Test.make ~name
      (Staged.stage (roundtrip (fun u -> ignore (Core.Scc.Inc.apply_batch s u)) ups))
  in
  let iso_test name graph =
    let p = pick_iso graph 4 6 in
    let graph = D.copy graph in
    let ups = mk_ups graph in
    let s = Core.Iso.Inc.init graph p in
    Test.make ~name
      (Staged.stage (roundtrip (fun u -> ignore (Core.Iso.Inc.apply_batch s u)) ups))
  in
  let tests =
    Test.make_grouped ~name:"figures"
      [
        kws_test "fig8a:inc-kws-dbpedia" g;
        rpq_test "fig8b:inc-rpq-dbpedia" g;
        scc_test "fig8c:inc-scc-dbpedia" g;
        iso_test "fig8d:inc-iso-dbpedia" g;
        kws_test "fig8e:inc-kws-livej" gl;
        rpq_test "fig8f:inc-rpq-livej" gl;
        scc_test "fig8g:inc-scc-livej" gl;
        iso_test "fig8h:inc-iso-livej" gl;
        scc_test "fig8i:inc-scc-synthetic" gs;
        kws_test "fig8j:kws-query-sweep" g;
        rpq_test "fig8k:rpq-query-sweep" g;
        iso_test "fig8l:iso-query-sweep" g;
        kws_test "fig8m:kws-scale" gs;
        rpq_test "fig8n:rpq-scale" gs;
        scc_test "fig8o:scc-scale" gs;
        iso_test "fig8p:iso-scale" gs;
      ]
  in
  Format.printf "@.[micro] bechamel, quota %.2fs per test@." cfg.quota;
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg' =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second cfg.quota) ~kde:(Some 1000)
        ()
    in
    Benchmark.all cfg' instances tests
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name res ->
      match Bechamel.Analyze.OLS.estimates res with
      | Some [ est ] ->
          Format.printf "%-28s %12.3f ms/run@." name (est /. 1e6)
      | _ -> Format.printf "%-28s (no estimate)@." name)
    results

(* ---- experiment registry -------------------------------------------------------------- *)

let experiments : (string * (unit -> unit)) list =
  [
    ("fig8a", fun () -> exp1 ~figure:"fig8a" ~cls:`Kws ~profile:W.Profiles.dbpedia_like);
    ("fig8b", fun () -> exp1 ~figure:"fig8b" ~cls:`Rpq ~profile:W.Profiles.dbpedia_like);
    ("fig8c", fun () -> exp1 ~figure:"fig8c" ~cls:`Scc ~profile:W.Profiles.dbpedia_like);
    ("fig8d", fun () -> exp1 ~figure:"fig8d" ~cls:`Iso ~profile:W.Profiles.dbpedia_like);
    ("fig8e", fun () -> exp1 ~figure:"fig8e" ~cls:`Kws ~profile:W.Profiles.livej_like);
    ("fig8f", fun () -> exp1 ~figure:"fig8f" ~cls:`Rpq ~profile:W.Profiles.livej_like);
    ("fig8g", fun () -> exp1 ~figure:"fig8g" ~cls:`Scc ~profile:W.Profiles.livej_like);
    ("fig8h", fun () -> exp1 ~figure:"fig8h" ~cls:`Iso ~profile:W.Profiles.livej_like);
    ("fig8i", fun () -> exp1 ~figure:"fig8i" ~cls:`Scc ~profile:W.Profiles.synthetic);
    ("fig8j", exp2_kws);
    ("fig8k", exp2_rpq);
    ("fig8l", exp2_iso);
    ("fig8m", fun () -> exp3 ~figure:"fig8m" ~cls:`Kws);
    ("fig8n", fun () -> exp3 ~figure:"fig8n" ~cls:`Rpq);
    ("fig8o", fun () -> exp3 ~figure:"fig8o" ~cls:`Scc);
    ("fig8p", fun () -> exp3 ~figure:"fig8p" ~cls:`Iso);
    ("unit_updates", unit_updates);
    ("opt_gain", opt_gain);
    ("rho_sweep", rho_sweep);
    ("sim_delta", sim_delta);
    ("journal", journal_throughput);
    ("trav", trav);
    ("unbounded", unbounded);
    ("micro", micro);
  ]

let () =
  parse_args ();
  let wanted =
    match cfg.selected with
    | [] -> List.map fst experiments
    | sel -> sel
  in
  report :=
    Some
      (Report.create ~tool:"incgraph-bench"
         ~config:
           [
             ("scale", Json.Float cfg.scale);
             ("backend", Json.Str (D.backend_name cfg.backend));
             ("reps", Json.Int cfg.reps);
             ("seed", Json.Int cfg.seed);
             ("points", Json.Int cfg.points);
             ("quota", Json.Float cfg.quota);
             ( "experiments",
               Json.Arr (List.map (fun id -> Json.Str id) wanted) );
           ]
         ());
  Format.printf
    "incgraph bench — scale %.2f, reps %d, seed %d@.reproducing: %s@."
    cfg.scale cfg.reps cfg.seed
    (String.concat ", " wanted);
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> (
          match time f with
          | (), t -> Format.printf "[%s done in %.1fs]@." id t
          | exception e ->
              Format.printf "[%s FAILED: %s]@." id (Printexc.to_string e))
      | None -> Format.printf "unknown experiment %s (skipped)@." id)
    wanted;
  (match !report with
  | Some r -> Report.write ~path:cfg.out r
  | None -> ());
  Format.printf "@.all experiments complete; report written to %s@." cfg.out
