(* Regression detector over two BENCH json files.

   Usage: dune exec bench/compare.exe -- OLD.json NEW.json
            [--threshold PCT] [--min-time S]

   Pairs every (experiment, x, series) present in both files, computes the
   wall-timing ratio and — when schema-v2 latency histograms are present —
   the apply-latency p99 ratio, prints the delta table, and exits 1 when
   any pair regressed by more than --threshold percent above the
   --min-time noise floor. Exit 2 on usage or unreadable/invalid input.

   The @bench-gate runtest alias runs this against the committed
   bench/BENCH_baseline.json with a deliberately generous threshold:
   smoke-scale timings are noisy, and the gate must stay deterministic —
   it exists to catch order-of-magnitude blowups and schema breaks, not
   3% drift. Real performance comparisons re-run at full scale with a
   tight threshold (see EXPERIMENTS.md). *)

module Report = Core.Obs.Report
module Json = Core.Obs.Json

let usage () =
  prerr_endline
    "usage: compare OLD.json NEW.json [--threshold PCT] [--min-time S]";
  exit 2

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
      Printf.eprintf "compare: cannot read %s: %s\n" path e;
      exit 2
  | text -> (
      match Json.parse text with
      | Error e ->
          Printf.eprintf "compare: %s: parse error: %s\n" path e;
          exit 2
      | Ok json -> (
          match Report.validate json with
          | Error e ->
              Printf.eprintf "compare: %s: invalid BENCH file: %s\n" path e;
              exit 2
          | Ok () -> json))

let () =
  let threshold = ref 25.0 and min_time = ref 1e-4 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := float_of_string v;
        parse rest
    | "--min-time" :: v :: rest ->
        min_time := float_of_string v;
        parse rest
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        Printf.eprintf "compare: unknown option %s\n" a;
        usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !paths with
  | [ old_path; new_path ] ->
      let old_json = load old_path and new_json = load new_path in
      let cmp = Report.compare_reports ~old_json ~new_json in
      Format.printf "comparing %s (old) vs %s (new)@." old_path new_path;
      Format.printf "%a"
        (Report.pp_comparison ~threshold:!threshold ~min_time:!min_time)
        cmp;
      if cmp.Report.cells = [] then begin
        Format.printf "no common data points — nothing compared@.";
        exit 2
      end;
      let regs =
        Report.regressions ~threshold:!threshold ~min_time:!min_time cmp
      in
      if regs <> [] then exit 1
  | _ -> usage ()
