(** incgraph — incremental graph computations, doable and undoable.

    The public entry point of the library, reproducing Fan, Hu & Tian,
    {e Incremental Graph Computations: Doable and Undoable} (SIGMOD 2017).

    Four query classes are supported, each with a batch algorithm and an
    incremental engine carrying the paper's performance guarantee:

    - {!Kws} — keyword search, {e localizable} (cost in the b-neighborhood
      of the updates);
    - {!Iso} — subgraph isomorphism, {e localizable} (d_Q-neighborhood);
    - {!Rpq} — regular path queries, {e bounded relative to} the NFA batch
      algorithm;
    - {!Scc} — strongly connected components, {e bounded relative to}
      Tarjan's algorithm.

    {!Theory} holds the machinery of the paper's impossibility results
    (SSRP, Δ-reductions, the Figure 9 gadget), and {!Workload} the
    generators driving the experimental reproduction.

    Each query class also implements the uniform {!module-type-Session}
    shape: build a session from a graph and a query, push update batches,
    read ΔO back. The substrate modules ({!Digraph}, {!Regex}, …) are
    re-exported so downstream users need only this library. *)

(** {1 Substrate} *)

(** Cost-accounting observability: the metrics registry every incremental
    engine reports into (counters for measured |AFF| and |CHANGED|, scoped
    spans, timers), plus the JSON substrate and the schema-versioned BENCH
    report format built on it. Pass [Obs.create ()] as [?obs] at engine
    creation to enable measurement; the default sink is a no-op.

    {!Obs.Tracer} is the structured-event sibling: a bounded ring buffer of
    typed events (AFF entry with the rule of the paper's pseudocode that
    fired, certificate rewrites with before/after, frontier expansions)
    that every engine accepts as [?trace] at creation.
    {!Obs.Trace_export} renders snapshots as Chrome trace-event JSON
    (Perfetto-loadable) or a human-readable explanation. *)
module Obs : sig
  include module type of struct
    include Ig_obs.Obs
  end

  module Histogram = Ig_obs.Histogram
  module Json = Ig_obs.Json
  module Report = Ig_obs.Report
  module Tracer = Ig_obs.Tracer
  module Trace_export = Ig_obs.Trace_export
  module Openmetrics = Ig_obs.Openmetrics
  module Slo = Ig_obs.Slo
  module Flight = Ig_obs.Flight
end

module Digraph = Ig_graph.Digraph
module Interner = Ig_graph.Interner
module Traverse = Ig_graph.Traverse
module Io = Ig_graph.Io
module Pqueue = Ig_graph.Pqueue
module Rank = Ig_graph.Rank
module Regex = Ig_nfa.Regex
module Nfa = Ig_nfa.Nfa

(** {1 Query classes} *)

module Rpq : sig
  module Batch = Ig_rpq.Batch
  module Inc = Ig_rpq.Inc_rpq
  module Pgraph = Ig_rpq.Pgraph
end

module Scc : sig
  module Tarjan = Ig_scc.Tarjan
  module Inc = Ig_scc.Inc_scc
end

module Kws : sig
  module Batch = Ig_kws.Batch
  module Inc = Ig_kws.Inc_kws
end

module Iso : sig
  module Pattern = Ig_iso.Pattern
  module Vf2 = Ig_iso.Vf2
  module Inc = Ig_iso.Inc_iso
end

module Sim : sig
  module Batch = Ig_sim.Sim
  module Inc = Ig_sim.Inc_sim
end
(** Graph simulation — the semi-bounded query class of the paper's related
    work [17], included as an extension baseline. *)

(** {1 Theory and workloads} *)

module Theory : sig
  module Ssrp = Ig_theory.Ssrp
  module Reduction = Ig_theory.Reduction
  module Gadget = Ig_theory.Gadget
end

module Workload : sig
  module Generate = Ig_workload.Generate
  module Profiles = Ig_workload.Profiles
  module Updates = Ig_workload.Updates
  module Queries = Ig_workload.Queries
end

module Check : sig
  module Oracle = Ig_check.Oracle
  module Adapters = Ig_check.Adapters
  module Stream = Ig_check.Stream
  module Shrink = Ig_check.Shrink
  module Harness = Ig_check.Harness
  module Scenarios = Ig_check.Scenarios
  module Durable = Ig_check.Durable
end
(** Differential oracle & fuzzing subsystem: every incremental engine
    cross-checked against its batch counterpart under seeded random update
    streams, with ddmin shrinking of failures (see [incgraph fuzz]);
    {!Check.Durable} extends it with journaled do/undo/crash-recover
    interleavings. *)

(** Durability subsystem: a write-ahead journal of atomic graph ops with a
    checksummed, torn-tail-detecting on-disk format ({!Journal.Record},
    {!Journal.Log}), periodic certificate snapshots bounding recovery
    replay ({!Journal.Snapshot}), and the session-directory store tying
    them together with k-step undo and time travel ({!Journal.Store}). See
    [incgraph journal/replay/snapshot/undo] and DESIGN.md §8.5. *)
module Journal : sig
  module Record = Ig_journal.Record
  module Log = Ig_journal.Journal
  module Snapshot = Ig_journal.Snapshot
  module Store = Ig_journal.Store
end

module Lint = Ig_lint.Lint
(** Determinism & instrumentation linter: a parse-only static-analysis
    pass over the repo's own sources enforcing rules D1–D5 (no
    polymorphic compare in engines, sorted-or-annotated hash iteration,
    no ambient nondeterminism, instrumented update entry points,
    interfaces everywhere) plus the cross-module rules D6–D8. See
    [incgraph lint] and DESIGN.md §8.4, §8.7. *)

module Lint_summary = Ig_lint.Summary
(** Phase 1 of the cross-module analyzer: per-module effect/state
    summaries (JSON-serializable, deterministic). *)

module Lint_interproc = Ig_lint.Interproc
(** Phase 2: interprocedural rules D6–D8 and the module-level effect
    graph (Graphviz). *)

(** {1 Uniform sessions} *)

(** The capability {!Journal.Store} snapshots rely on: dump the engine's
    certificate store as named canonical-text sections. Dumps must be
    byte-identical across process hash seeds (sorted iteration only). *)
module type SNAPSHOTTABLE = sig
  type t

  val cert_snapshot : t -> (string * string) list
end

(** The common shape of the four incremental engines: create once with the
    batch algorithm, then trade update batches for output deltas. *)
module type Session = sig
  type t
  type query
  type answer
  type delta

  val create : Digraph.t -> query -> t
  (** Runs the batch algorithm once; the session owns the graph. *)

  val update : t -> Digraph.update list -> delta
  (** Apply ΔG, return ΔO. *)

  val answer : t -> answer
  (** The current Q(G). *)

  val graph : t -> Digraph.t
end

module Kws_session : sig
  include
    Session
      with type query = Ig_kws.Batch.query
       and type answer = Digraph.node list
       and type delta = Ig_kws.Inc_kws.delta
       and type t = Ig_kws.Inc_kws.t

  include SNAPSHOTTABLE with type t := t
end

module Rpq_session : sig
  include
    Session
      with type query = Regex.t
       and type answer = (Digraph.node * Digraph.node) list
       and type delta = Ig_rpq.Inc_rpq.delta
       and type t = Ig_rpq.Inc_rpq.t

  include SNAPSHOTTABLE with type t := t
end

module Scc_session : sig
  include
    Session
      with type query = unit
       and type answer = Digraph.node list list
       and type delta = Ig_scc.Inc_scc.delta
       and type t = Ig_scc.Inc_scc.t

  include SNAPSHOTTABLE with type t := t
end

module Iso_session : sig
  include
    Session
      with type query = Ig_iso.Pattern.t
       and type answer = Ig_iso.Vf2.mapping list
       and type delta = Ig_iso.Inc_iso.delta
       and type t = Ig_iso.Inc_iso.t

  include SNAPSHOTTABLE with type t := t
end

module Sim_session : sig
  include
    Session
      with type query = Ig_iso.Pattern.t
       and type answer = (int * Digraph.node) list
       and type delta = Ig_sim.Inc_sim.delta
       and type t = Ig_sim.Inc_sim.t

  include SNAPSHOTTABLE with type t := t
end
