module Obs = struct
  include Ig_obs.Obs
  module Histogram = Ig_obs.Histogram
  module Json = Ig_obs.Json
  module Report = Ig_obs.Report
  module Tracer = Ig_obs.Tracer
  module Trace_export = Ig_obs.Trace_export
  module Openmetrics = Ig_obs.Openmetrics
  module Slo = Ig_obs.Slo
  module Flight = Ig_obs.Flight
end

module Digraph = Ig_graph.Digraph
module Interner = Ig_graph.Interner
module Traverse = Ig_graph.Traverse
module Io = Ig_graph.Io
module Pqueue = Ig_graph.Pqueue
module Rank = Ig_graph.Rank
module Regex = Ig_nfa.Regex
module Nfa = Ig_nfa.Nfa

module Rpq = struct
  module Batch = Ig_rpq.Batch
  module Inc = Ig_rpq.Inc_rpq
  module Pgraph = Ig_rpq.Pgraph
end

module Scc = struct
  module Tarjan = Ig_scc.Tarjan
  module Inc = Ig_scc.Inc_scc
end

module Kws = struct
  module Batch = Ig_kws.Batch
  module Inc = Ig_kws.Inc_kws
end

module Iso = struct
  module Pattern = Ig_iso.Pattern
  module Vf2 = Ig_iso.Vf2
  module Inc = Ig_iso.Inc_iso
end

module Sim = struct
  module Batch = Ig_sim.Sim
  module Inc = Ig_sim.Inc_sim
end

module Theory = struct
  module Ssrp = Ig_theory.Ssrp
  module Reduction = Ig_theory.Reduction
  module Gadget = Ig_theory.Gadget
end

module Workload = struct
  module Generate = Ig_workload.Generate
  module Profiles = Ig_workload.Profiles
  module Updates = Ig_workload.Updates
  module Queries = Ig_workload.Queries
end

module Check = struct
  module Oracle = Ig_check.Oracle
  module Adapters = Ig_check.Adapters
  module Stream = Ig_check.Stream
  module Shrink = Ig_check.Shrink
  module Harness = Ig_check.Harness
  module Scenarios = Ig_check.Scenarios
  module Durable = Ig_check.Durable
end

module Journal = struct
  module Record = Ig_journal.Record
  module Log = Ig_journal.Journal
  module Snapshot = Ig_journal.Snapshot
  module Store = Ig_journal.Store
end

module Lint = Ig_lint.Lint
module Lint_summary = Ig_lint.Summary
module Lint_interproc = Ig_lint.Interproc

module type SNAPSHOTTABLE = sig
  type t

  val cert_snapshot : t -> (string * string) list
end

module type Session = sig
  type t
  type query
  type answer
  type delta

  val create : Digraph.t -> query -> t
  val update : t -> Digraph.update list -> delta
  val answer : t -> answer
  val graph : t -> Digraph.t
end

module Kws_session = struct
  type t = Ig_kws.Inc_kws.t
  type query = Ig_kws.Batch.query
  type answer = Digraph.node list
  type delta = Ig_kws.Inc_kws.delta

  let create g q = Ig_kws.Inc_kws.init g q
  let update = Ig_kws.Inc_kws.apply_batch
  let answer = Ig_kws.Inc_kws.match_roots
  let graph = Ig_kws.Inc_kws.graph
  let cert_snapshot = Ig_kws.Inc_kws.cert_snapshot
end

module Rpq_session = struct
  type t = Ig_rpq.Inc_rpq.t
  type query = Regex.t
  type answer = (Digraph.node * Digraph.node) list
  type delta = Ig_rpq.Inc_rpq.delta

  let create g q = Ig_rpq.Inc_rpq.create g q
  let update = Ig_rpq.Inc_rpq.apply_batch
  let answer = Ig_rpq.Inc_rpq.matches
  let graph = Ig_rpq.Inc_rpq.graph
  let cert_snapshot = Ig_rpq.Inc_rpq.cert_snapshot
end

module Scc_session = struct
  type t = Ig_scc.Inc_scc.t
  type query = unit
  type answer = Digraph.node list list
  type delta = Ig_scc.Inc_scc.delta

  let create g () = Ig_scc.Inc_scc.init g
  let update = Ig_scc.Inc_scc.apply_batch
  let answer = Ig_scc.Inc_scc.components
  let graph = Ig_scc.Inc_scc.graph
  let cert_snapshot = Ig_scc.Inc_scc.cert_snapshot
end

module Iso_session = struct
  type t = Ig_iso.Inc_iso.t
  type query = Ig_iso.Pattern.t
  type answer = Ig_iso.Vf2.mapping list
  type delta = Ig_iso.Inc_iso.delta

  let create g p = Ig_iso.Inc_iso.init g p
  let update = Ig_iso.Inc_iso.apply_batch
  let answer = Ig_iso.Inc_iso.matches
  let graph = Ig_iso.Inc_iso.graph
  let cert_snapshot = Ig_iso.Inc_iso.cert_snapshot
end

module Sim_session = struct
  type t = Ig_sim.Inc_sim.t
  type query = Ig_iso.Pattern.t
  type answer = (int * Digraph.node) list
  type delta = Ig_sim.Inc_sim.delta

  let create g p = Ig_sim.Inc_sim.init g p
  let update = Ig_sim.Inc_sim.apply_batch
  let answer t = Ig_sim.Sim.pairs (Ig_sim.Inc_sim.relation t)
  let graph = Ig_sim.Inc_sim.graph
  let cert_snapshot = Ig_sim.Inc_sim.cert_snapshot
end
