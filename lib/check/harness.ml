module Digraph = Ig_graph.Digraph
module Tracer = Ig_obs.Tracer

type failure = {
  algo : string;
  seed : int;
  step : int;
  reason : string;
  stream : Digraph.update list;
  shrunk : Digraph.update list;
  trace : Tracer.snapshot option;
}

let replay_fails ~make stream =
  match
    let inst = make () in
    Oracle.check inst;
    let prev = ref (Ig_obs.Obs.counters (Oracle.obs inst)) in
    List.iter
      (fun u ->
        Oracle.apply inst u;
        Oracle.check inst;
        prev := Oracle.check_metrics ~prev:!prev inst)
      stream
  with
  | () -> false
  | exception _ -> true

let split_last us =
  match List.rev us with
  | [] -> None
  | last :: rev_init -> Some (List.rev rev_init, last)

(* Replay [stream] on a fresh oracle and return the event log of its last
   update — the failing step of a (shrunk) reproducer. The tracer is
   cleared right before that update so the snapshot explains exactly the
   step where the violation surfaced. [None] when the stream is empty or
   the adapter was built without a live tracer. *)
let capture_trace ~make stream =
  match split_last stream with
  | None -> None
  | Some (init, last) ->
      let inst = make () in
      let tr = Oracle.trace inst in
      if not (Tracer.enabled tr) then None
      else begin
        (* The replay is expected to blow up — that is what it reproduces. *)
        (try List.iter (fun u -> Oracle.apply inst u) init with _ -> ());
        Tracer.clear tr;
        (try
           Oracle.apply inst last;
           Oracle.check inst
         with _ -> ());
        Some (Tracer.snapshot tr)
      end

let run ~make ?(focus = []) ~steps ~seed () =
  let inst = make () in
  let algo = Oracle.name inst in
  let fail step reason stream =
    (* The recorded prefix must fail on a fresh replay before ddmin can
       trust its verdicts; a non-reproducible failure (which a deterministic
       [make] should never produce) is reported unshrunk. *)
    let fails = replay_fails ~make in
    let shrunk = if fails stream then Shrink.ddmin ~fails stream else stream in
    let trace = capture_trace ~make shrunk in
    Error { algo; seed; step; reason; stream; shrunk; trace }
  in
  match Oracle.check inst with
  | exception Oracle.Check_failed msg -> fail 0 msg []
  | () ->
      let rng = Random.State.make [| seed; 0xfa11 |] in
      let stream = Stream.create ~rng ~focus (Oracle.graph inst) in
      let applied = ref [] in
      let prev = ref (Ig_obs.Obs.counters (Oracle.obs inst)) in
      let rec go i =
        if i > steps then Ok steps
        else begin
          let u = Stream.next stream in
          applied := u :: !applied;
          match
            Oracle.apply inst u;
            Oracle.check inst;
            prev := Oracle.check_metrics ~prev:!prev inst
          with
          | () -> go (i + 1)
          | exception Oracle.Check_failed msg ->
              fail i msg (List.rev !applied)
          | exception e ->
              fail i ("engine raised: " ^ Printexc.to_string e)
                (List.rev !applied)
        end
      in
      go 1

let pp_update ppf = function
  | Digraph.Insert (u, v) -> Format.fprintf ppf "Digraph.Insert (%d, %d)" u v
  | Digraph.Delete (u, v) -> Format.fprintf ppf "Digraph.Delete (%d, %d)" u v

let pp_stream ppf us =
  Format.fprintf ppf "@[<hov 2>[ %a ]@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_update)
    us

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>%s fuzz failure (seed %d) at step %d: %s@,\
     failing stream: %d updates, shrunk to %d@,\
     minimal reproducer:@,  %a@]"
    f.algo f.seed f.step f.reason (List.length f.stream)
    (List.length f.shrunk) pp_stream f.shrunk;
  match f.trace with
  | None -> ()
  | Some snap ->
      Format.fprintf ppf "@,failing step: %d event(s)%s"
        (List.length snap.Tracer.entries)
        (if snap.Tracer.drops > 0 then
           Printf.sprintf " (+%d dropped)" snap.Tracer.drops
         else "");
      (match Tracer.rule_histogram snap with
      | [] -> ()
      | hist ->
          Format.fprintf ppf "@,AFF provenance:";
          List.iter
            (fun (r, c) -> Format.fprintf ppf "@,  %-22s %6d" r c)
            hist)

(* The shrunk reproducer as a journaled session directory: snapshot-0 of
   the base graph plus one Do batch per update, so the failure replays
   through `incgraph replay` with the same torn-tail/digest checking as
   any production journal. *)
let save_journal ~dir ~stem ~base ~qspec f =
  let jdir = Filename.concat dir (stem ^ ".journal") in
  let cls, bound, qargs = qspec in
  let header =
    {
      Ig_journal.Record.version = Ig_journal.Record.format_version;
      cls;
      bound;
      qargs;
      base_digest = Ig_journal.Journal.graph_digest base;
    }
  in
  let client = Ig_journal.Store.graph_client (Digraph.copy base) in
  let store = Ig_journal.Store.init ~dir:jdir ~header ~client () in
  List.iter (fun u -> ignore (Ig_journal.Store.do_batch store [ u ])) f.shrunk;
  Ig_journal.Store.close store;
  jdir

let save_failure ~dir ~base ?qspec f =
  let stem = Printf.sprintf "fuzz-%s-seed%d" f.algo f.seed in
  let gpath = Filename.concat dir (stem ^ ".graph") in
  let upath = Filename.concat dir (stem ^ ".updates") in
  Ig_graph.Io.save gpath base;
  let oc = (open_out [@lint.allow "D3"]) upath in
  let line = function
    | Digraph.Insert (u, v) -> Printf.fprintf oc "+ %d %d\n" u v
    | Digraph.Delete (u, v) -> Printf.fprintf oc "- %d %d\n" u v
  in
  Printf.fprintf oc "# %s: %s\n# replay against %s\n" f.algo f.reason gpath;
  List.iter line f.shrunk;
  Printf.fprintf oc "# full failing stream (%d updates):\n"
    (List.length f.stream);
  List.iter
    (function
      | Digraph.Insert (u, v) -> Printf.fprintf oc "# + %d %d\n" u v
      | Digraph.Delete (u, v) -> Printf.fprintf oc "# - %d %d\n" u v)
    f.stream;
  close_out oc;
  let tpath =
    match f.trace with
    | None -> None
    | Some snap ->
        let p = Filename.concat dir (stem ^ ".trace.json") in
        Ig_obs.Trace_export.write_chrome ~path:p ~name:f.algo snap;
        Some p
  in
  let jpath =
    Option.map (fun qspec -> save_journal ~dir ~stem ~base ~qspec f) qspec
  in
  (gpath, upath, tpath, jpath)
