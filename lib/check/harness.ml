module Digraph = Ig_graph.Digraph

type failure = {
  algo : string;
  seed : int;
  step : int;
  reason : string;
  stream : Digraph.update list;
  shrunk : Digraph.update list;
}

let replay_fails ~make stream =
  match
    let inst = make () in
    Oracle.check inst;
    let prev = ref (Ig_obs.Obs.counters (Oracle.obs inst)) in
    List.iter
      (fun u ->
        Oracle.apply inst u;
        Oracle.check inst;
        prev := Oracle.check_metrics ~prev:!prev inst)
      stream
  with
  | () -> false
  | exception _ -> true

let run ~make ?(focus = []) ~steps ~seed () =
  let inst = make () in
  let algo = Oracle.name inst in
  let fail step reason stream =
    (* The recorded prefix must fail on a fresh replay before ddmin can
       trust its verdicts; a non-reproducible failure (which a deterministic
       [make] should never produce) is reported unshrunk. *)
    let fails = replay_fails ~make in
    let shrunk = if fails stream then Shrink.ddmin ~fails stream else stream in
    Error { algo; seed; step; reason; stream; shrunk }
  in
  match Oracle.check inst with
  | exception Oracle.Check_failed msg -> fail 0 msg []
  | () ->
      let rng = Random.State.make [| seed; 0xfa11 |] in
      let stream = Stream.create ~rng ~focus (Oracle.graph inst) in
      let applied = ref [] in
      let prev = ref (Ig_obs.Obs.counters (Oracle.obs inst)) in
      let rec go i =
        if i > steps then Ok steps
        else begin
          let u = Stream.next stream in
          applied := u :: !applied;
          match
            Oracle.apply inst u;
            Oracle.check inst;
            prev := Oracle.check_metrics ~prev:!prev inst
          with
          | () -> go (i + 1)
          | exception Oracle.Check_failed msg ->
              fail i msg (List.rev !applied)
          | exception e ->
              fail i ("engine raised: " ^ Printexc.to_string e)
                (List.rev !applied)
        end
      in
      go 1

let pp_update ppf = function
  | Digraph.Insert (u, v) -> Format.fprintf ppf "Digraph.Insert (%d, %d)" u v
  | Digraph.Delete (u, v) -> Format.fprintf ppf "Digraph.Delete (%d, %d)" u v

let pp_stream ppf us =
  Format.fprintf ppf "@[<hov 2>[ %a ]@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_update)
    us

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>%s fuzz failure (seed %d) at step %d: %s@,\
     failing stream: %d updates, shrunk to %d@,\
     minimal reproducer:@,  %a@]"
    f.algo f.seed f.step f.reason (List.length f.stream)
    (List.length f.shrunk) pp_stream f.shrunk

let save_failure ~dir ~base f =
  let stem = Printf.sprintf "fuzz-%s-seed%d" f.algo f.seed in
  let gpath = Filename.concat dir (stem ^ ".graph") in
  let upath = Filename.concat dir (stem ^ ".updates") in
  Ig_graph.Io.save gpath base;
  let oc = open_out upath in
  let line = function
    | Digraph.Insert (u, v) -> Printf.fprintf oc "+ %d %d\n" u v
    | Digraph.Delete (u, v) -> Printf.fprintf oc "- %d %d\n" u v
  in
  Printf.fprintf oc "# %s: %s\n# replay against %s\n" f.algo f.reason gpath;
  List.iter line f.shrunk;
  Printf.fprintf oc "# full failing stream (%d updates):\n"
    (List.length f.stream);
  List.iter
    (function
      | Digraph.Insert (u, v) -> Printf.fprintf oc "# + %d %d\n" u v
      | Digraph.Delete (u, v) -> Printf.fprintf oc "# - %d %d\n" u v)
    f.stream;
  close_out oc;
  (gpath, upath)
