(** Undo-aware durability fuzzing: interleave do / undo / crash-recover.

    Drives one {!Scenarios.t} engine through a journaled session directory
    ({!Ig_journal.Store}), rolling a seeded die each step:

    - {b do} — journal and apply one stream update, then run the full
      differential {!Oracle.check};
    - {b do→undo pair} — apply one update and immediately roll it back,
      asserting the post-undo graph {e and} answer digests are
      byte-identical to the pre-do state;
    - {b undo k} — roll back the last [k ∈ 1..3] batches (undo of an undo
      batch is redo), then {!Oracle.check};
    - {b snapshot} — write a certificate snapshot at the current tip;
    - {b clean crash} — drop the engine, rebuild it from scratch via
      {!Scenarios.t.make} and replay the whole journal, then
      {!Oracle.check};
    - {b torn crash} — journal a batch {e without} applying it, truncate
      the journal mid-record, and recover: the torn tail must be cleanly
      dropped (never a half-applied delta) and the oracle must agree with
      the recovered engine.

    Every action appends deterministic transcript lines through [emit]
    (full graph/answer/trace digests, no timestamps, sorted iteration
    only), so running the same seed under two [OCAMLRUNPARAM=R] hash seeds
    and diffing the transcripts asserts cross-seed byte-identity of the
    entire do/undo/recover history — this is what the [@undo-fuzz] alias
    does. *)

val run :
  scenario:Scenarios.t ->
  dir:string ->
  steps:int ->
  seed:int ->
  ?emit:(string -> unit) ->
  unit ->
  (int, string) result
(** [run ~scenario ~dir ~steps ~seed ()] fuzzes [steps] actions inside the
    session directory [dir] (created if needed; stale journal/snapshot
    files from a previous run are removed first). Returns [Ok steps], or
    [Error reason] on the first oracle disagreement, digest divergence or
    recovery failure. *)
