(** Ready-made fuzzing scenarios: a base graph, a sampled query, an oracle
    factory, and the focus edges the stream driver keeps toggling.

    Base graphs and queries come from the {!Ig_workload} generators (the
    paper's Section 6 setup, scaled down so a from-scratch recomputation per
    step stays affordable); the {!gadget} scenario instead instantiates the
    Fig. 9 two-cycle counterexample of {!Ig_theory.Gadget} and focuses the
    stream on its Δ1/Δ2 bridge edges — the exact shape the paper's RPQ
    unboundedness proof is built on.

    Every constructor takes [?backend] (default [`Hashtbl]) and builds its
    base graph on that {!Ig_graph.Digraph} backend — the graph itself is
    identical either way, so the same seed fuzzes the same scenario on
    both representations. *)

type t = {
  name : string;
  base : Ig_graph.Digraph.t;  (** pristine base graph — never mutated *)
  focus : (Ig_graph.Digraph.node * Ig_graph.Digraph.node) list;
  make : unit -> Oracle.packed;
      (** deterministic factory: a fresh engine over a fresh copy of
          [base], suitable for {!Harness.run}'s shrinking replays *)
  qspec : string * int * string list;
      (** [(class, bound, query args)] in the CLI's positional-argument
          syntax — what journal headers record so [incgraph replay] can
          rebuild the same engine. *)
}

type size = { nodes : int; edges : int; labels : int }

val default_size : size
(** 28 nodes / 80 edges / 4 labels — small enough that per-step batch
    recomputation keeps tier-1 fuzzing fast, dense enough to exercise
    merges, splits and bounce-backs. *)

val kws :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> unit -> t
val rpq :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> unit -> t
val scc :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> unit -> t
val sim :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> unit -> t
val iso :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> unit -> t

val gadget : ?backend:Ig_graph.Digraph.backend -> ?cycle:int -> unit -> t
(** RPQ over the Fig. 9 gadget (default [cycle = 4]); focus edges are Δ1,
    Δ2 and the cycle edges adjacent to them. *)

val all :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> unit -> t list
(** The five generator-based scenarios plus {!gadget}. *)

val by_name :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> ?size:size -> string -> t option
(** Look up one scenario ("kws" | "rpq" | "scc" | "sim" | "iso" |
    "gadget"). *)
