module type ORACLE = sig
  type t
  type query

  val name : string
  val init : Ig_graph.Digraph.t -> query -> t
  val graph : t -> Ig_graph.Digraph.t
  val apply : t -> Ig_graph.Digraph.update -> unit
  val answer : t -> string
  val recompute : t -> string
  val check_invariants : t -> unit
  val obs : t -> Ig_obs.Obs.t
  val trace : t -> Ig_obs.Tracer.t
  val cert_snapshot : t -> (string * string) list
end

type packed = Packed : (module ORACLE with type t = 'a) * 'a -> packed

let name (Packed ((module O), _)) = O.name
let graph (Packed ((module O), t)) = O.graph t
let apply (Packed ((module O), t)) u = O.apply t u
let answer (Packed ((module O), t)) = O.answer t
let recompute (Packed ((module O), t)) = O.recompute t
let check_invariants (Packed ((module O), t)) = O.check_invariants t
let obs (Packed ((module O), t)) = O.obs t
let trace (Packed ((module O), t)) = O.trace t
let cert_snapshot (Packed ((module O), t)) = O.cert_snapshot t

exception Check_failed of string

let check inst =
  (match check_invariants inst with
  | () -> ()
  | exception Failure msg -> raise (Check_failed ("invariant: " ^ msg)));
  let inc = answer inst in
  let batch = recompute inst in
  if not (String.equal inc batch) then
    raise
      (Check_failed
         (Printf.sprintf "answer mismatch: incremental=%s batch=%s" inc batch))

let check_metrics ~prev inst =
  let o = obs inst in
  let depth = Ig_obs.Obs.span_depth o in
  if depth <> 0 then
    raise
      (Check_failed
         (Printf.sprintf "metrics: %d span(s) still open after step: %s" depth
            (String.concat ", " (Ig_obs.Obs.open_spans o))));
  let cur = Ig_obs.Obs.counters o in
  List.iter
    (fun (k, v) ->
      match List.assoc_opt k cur with
      | Some v' when v' >= v -> ()
      | Some v' ->
          raise
            (Check_failed
               (Printf.sprintf "metrics: counter %s decreased %d -> %d" k v v'))
      | None ->
          raise
            (Check_failed
               (Printf.sprintf "metrics: counter %s disappeared (was %d)" k v)))
    prev;
  (* Every latency/GC histogram the engine recorded so far must satisfy
     the structural invariants (bucket totals match the count, min <= max,
     the sum within [count*min, count*max]). *)
  List.iter
    (fun (k, h) ->
      match Ig_obs.Histogram.check_invariants h with
      | () -> ()
      | exception Failure msg ->
          raise
            (Check_failed (Printf.sprintf "metrics: histogram %s: %s" k msg)))
    (Ig_obs.Obs.histograms o);
  cur
