(** {!Oracle.ORACLE} adapters for the five query classes.

    Each adapter pairs an incremental engine with its batch counterpart:

    - KWS: {!Ig_kws.Inc_kws} vs the kdist BFS of {!Ig_kws.Batch};
    - RPQ: {!Ig_rpq.Inc_rpq} vs the NFA-product BFS of {!Ig_rpq.Batch};
    - SCC: {!Ig_scc.Inc_scc} vs a fresh {!Ig_scc.Tarjan} run;
    - Sim: {!Ig_sim.Inc_sim} vs the {!Ig_sim.Sim} fixpoint;
    - ISO: {!Ig_iso.Inc_iso} vs a fresh {!Ig_iso.Vf2} enumeration.

    The [Packed] convenience constructors copy the given graph (engines take
    ownership of theirs), so one base graph can seed any number of oracle
    instances — which is exactly what replay-based shrinking needs. *)

module Kws :
  Oracle.ORACLE with type t = Ig_kws.Inc_kws.t and type query = Ig_kws.Batch.query

module Rpq : Oracle.ORACLE with type query = Ig_nfa.Regex.t

module Scc :
  Oracle.ORACLE with type t = Ig_scc.Inc_scc.t and type query = Ig_scc.Inc_scc.config

module Sim :
  Oracle.ORACLE with type t = Ig_sim.Inc_sim.t and type query = Ig_iso.Pattern.t

module Iso :
  Oracle.ORACLE with type t = Ig_iso.Inc_iso.t and type query = Ig_iso.Pattern.t

(** {1 Packed constructors}

    All copy the graph before handing it to the engine. *)

val kws : Ig_graph.Digraph.t -> Ig_kws.Batch.query -> Oracle.packed
val rpq : Ig_graph.Digraph.t -> Ig_nfa.Regex.t -> Oracle.packed
val scc : ?config:Ig_scc.Inc_scc.config -> Ig_graph.Digraph.t -> Oracle.packed
val sim : Ig_graph.Digraph.t -> Ig_iso.Pattern.t -> Oracle.packed
val iso : Ig_graph.Digraph.t -> Ig_iso.Pattern.t -> Oracle.packed

val of_kws : Ig_kws.Inc_kws.t -> Oracle.packed
(** Pack an already-built KWS engine {e without} copying — the hook tests use
    this to corrupt a certificate entry before handing the engine over. *)

(** {1 Canonical forms}

    Exposed so hand-rolled test oracles (e.g. deliberately buggy engines in
    mutation tests) print answers the same way the real adapters do. *)

val canon_nodes : int list -> string
val canon_pairs : (int * int) list -> string
val canon_comps : int list list -> string

val canon_mappings : Ig_iso.Pattern.t -> Ig_iso.Vf2.mapping list -> string
(** ISO's canonical answer form (sorted match subgraphs) — exposed so the
    CLI's journal replay can digest ISO answers identically. *)
