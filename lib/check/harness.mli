(** The differential fuzzing harness.

    Drives an oracle through a seeded random update stream, validating after
    {e every} unit update that (1) the engine's auxiliary certificates pass
    [check_invariants] and (2) the incremental answer equals a from-scratch
    batch recomputation. On the first violation the failing prefix is
    delta-debugged ({!Shrink.ddmin}) against fresh replays into a minimal
    reproducer, reported both as a replayable OCaml value and as an
    edge-list file. *)

type failure = {
  algo : string;
  seed : int;
  step : int;  (** 1-based step at which the violation surfaced; 0 = the
                   post-init check already failed *)
  reason : string;
  stream : Ig_graph.Digraph.update list;  (** failing prefix, in order *)
  shrunk : Ig_graph.Digraph.update list;  (** 1-minimal reproducer *)
  trace : Ig_obs.Tracer.snapshot option;
      (** event log of the shrunk reproducer's failing step (the tracer is
          cleared before the last update of a fresh replay), when the
          adapter was built with a live tracer *)
}

val run :
  make:(unit -> Oracle.packed) ->
  ?focus:(Ig_graph.Digraph.node * Ig_graph.Digraph.node) list ->
  steps:int ->
  seed:int ->
  unit ->
  (int, failure) result
(** [run ~make ~steps ~seed ()] checks the freshly made oracle, then
    generates and applies [steps] unit updates, checking after each.
    [make] must be deterministic — it is re-invoked for every shrinking
    replay, so it has to rebuild an identical engine over an identical copy
    of the base graph (including any deliberate corruption the caller
    injects for mutation testing). Returns [Ok steps] on a clean run. *)

val replay_fails : make:(unit -> Oracle.packed) -> Ig_graph.Digraph.update list -> bool
(** Replay a concrete stream on a fresh oracle with per-step checks; [true]
    iff some check fails or the engine crashes. (The predicate handed to
    {!Shrink.ddmin}; exposed for tests.) *)

val pp_stream : Format.formatter -> Ig_graph.Digraph.update list -> unit
(** As a replayable OCaml value:
    [\[ Digraph.Insert (0, 1); Digraph.Delete (2, 3) \]]. *)

val pp_failure : Format.formatter -> failure -> unit

val save_failure :
  dir:string ->
  base:Ig_graph.Digraph.t ->
  ?qspec:string * int * string list ->
  failure ->
  string * string * string option * string option
(** Persist reproduction artifacts: [fuzz-<algo>-seed<seed>.graph] (the base
    graph in the {!Ig_graph.Io} text format),
    [fuzz-<algo>-seed<seed>.updates] (the shrunk stream, one [+ u v] /
    [- u v] line per update, full stream appended as comments), — when
    the failure carries a trace — [fuzz-<algo>-seed<seed>.trace.json] (the
    failing step's event log as a Chrome trace), and — when [qspec] (the
    scenario's [(class, bound, args)]) is given —
    [fuzz-<algo>-seed<seed>.journal/], a journaled session directory
    (snapshot-0 of the base graph, one batch per shrunk update) replayable
    with [incgraph replay]. Returns the paths. *)
