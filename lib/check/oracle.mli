(** Differential-testing oracles (the correctness backbone of the library).

    The paper's guarantees are {e equivalence} claims: after any sequence of
    edge insertions and deletions, an incremental engine must report exactly
    the answer its batch counterpart computes from scratch on the updated
    graph. An {!ORACLE} packages one engine together with that batch
    recomputation behind a uniform face, so a single driver ({!Harness}) can
    cross-check all five query classes under random update streams.

    Answers are compared through a canonical string form: adapters sort and
    print their answer sets, so equality is plain string equality and a
    mismatch is immediately printable in a failure report. *)

module type ORACLE = sig
  type t
  type query

  val name : string
  (** Short identifier used in reports ("kws", "scc", …). *)

  val init : Ig_graph.Digraph.t -> query -> t
  (** Build the engine by running the batch algorithm once. The oracle owns
      the given graph afterwards — callers keep their own pristine copy. *)

  val graph : t -> Ig_graph.Digraph.t
  (** The live graph the engine maintains (updated by {!apply}). *)

  val apply : t -> Ig_graph.Digraph.update -> unit
  (** Apply one unit update incrementally (graph and auxiliary data). *)

  val answer : t -> string
  (** The engine's current answer, canonicalized. *)

  val recompute : t -> string
  (** The batch algorithm's answer on the current graph, canonicalized.
      Must equal {!answer} whenever the engine is correct. *)

  val check_invariants : t -> unit
  (** The engine's own auxiliary-structure validation (certificates:
      kdist lists, pmark entries, num/lowlink + ranks, counters).
      @raise Failure on violation. *)

  val obs : t -> Ig_obs.Obs.t
  (** The engine's metrics sink. Adapters create engines with a live
      registry so the harness can validate the metrics invariants
      alongside the answers. *)

  val trace : t -> Ig_obs.Tracer.t
  (** The engine's event tracer. Adapters create engines with a live
      tracer so failure reports can attach the event log of the failing
      step ({!Harness.failure.trace}). *)

  val cert_snapshot : t -> (string * string) list
  (** The engine's SNAPSHOTTABLE dump (named canonical-text sections),
      feeding the durable journal's certificate snapshots. *)
end

type packed = Packed : (module ORACLE with type t = 'a) * 'a -> packed
(** A first-class oracle instance, ready to drive. *)

val name : packed -> string
val graph : packed -> Ig_graph.Digraph.t
val apply : packed -> Ig_graph.Digraph.update -> unit
val answer : packed -> string
val recompute : packed -> string
val check_invariants : packed -> unit
val obs : packed -> Ig_obs.Obs.t
val trace : packed -> Ig_obs.Tracer.t
val cert_snapshot : packed -> (string * string) list

exception Check_failed of string
(** Raised by {!check} and {!check_metrics} with a human-readable
    explanation. *)

val check : packed -> unit
(** The full per-step validation: {!check_invariants}, then compare
    {!answer} against {!recompute}. @raise Check_failed on any violation. *)

val check_metrics : prev:(string * int) list -> packed -> (string * int) list
(** Validate the metrics invariants after a step: counters never decrease
    (relative to the [prev] snapshot), every span opened during the step
    was closed, and every latency/GC histogram the engine recorded
    satisfies {!Ig_obs.Histogram.check_invariants} (bucket totals equal
    the sample count, min ≤ max, sum within [count·min, count·max]).
    Returns the current counter snapshot, to be threaded as [prev] into
    the next call. @raise Check_failed on violation. *)
