module Digraph = Ig_graph.Digraph
module G = Ig_workload.Generate
module Q = Ig_workload.Queries

type t = {
  name : string;
  base : Digraph.t;
  focus : (Digraph.node * Digraph.node) list;
  make : unit -> Oracle.packed;
  qspec : string * int * string list;
}

(* A pattern rendered back to CLI/journal-header query arguments: labels
   in node order, then edges as "u-v". *)
let pattern_qargs p =
  List.init (Ig_iso.Pattern.n_nodes p) (Ig_iso.Pattern.label p)
  @ List.map
      (fun (u, v) -> Printf.sprintf "%d-%d" u v)
      (Ig_iso.Pattern.edges p)

type size = { nodes : int; edges : int; labels : int }

let default_size = { nodes = 28; edges = 80; labels = 4 }

let base_graph ?backend ~rng { nodes; edges; labels } =
  let g = G.uniform ?backend ~rng ~nodes ~edges ~labels () in
  (* A couple of planted chorded cycles so SCC merges/splits and long
     matching paths actually occur at this scale. *)
  G.plant_local_sccs ~rng g ~count:2 ~size:(max 3 (nodes / 6));
  g

let kws ?backend ~rng ?(size = default_size) () =
  let base = base_graph ?backend ~rng size in
  let q = Q.kws ~rng base ~m:2 ~b:2 in
  {
    name = "kws";
    base;
    focus = [];
    make = (fun () -> Adapters.kws base q);
    qspec = ("kws", q.Ig_kws.Batch.bound, q.Ig_kws.Batch.keywords);
  }

let rpq ?backend ~rng ?(size = default_size) () =
  let base = base_graph ?backend ~rng size in
  let q = Q.rpq ~rng base ~size:3 in
  {
    name = "rpq";
    base;
    focus = [];
    make = (fun () -> Adapters.rpq base q);
    qspec = ("rpq", 0, [ Ig_nfa.Regex.to_string q ]);
  }

let scc ?backend ~rng ?(size = default_size) () =
  let base = base_graph ?backend ~rng size in
  {
    name = "scc";
    base;
    focus = [];
    make = (fun () -> Adapters.scc base);
    qspec = ("scc", 0, []);
  }

(* A pattern for Sim/ISO: sampled from the graph when possible (guaranteeing
   initial matches), else a hand-rolled 2-node chain over graph labels. *)
let pattern ~rng g ~labels =
  match Q.iso ~rng g ~nodes:3 ~edges:3 with
  | Some p -> p
  | None ->
      let l i = "l" ^ string_of_int (i mod labels) in
      Ig_iso.Pattern.create ~labels:[ l 0; l 1 ] ~edges:[ (0, 1) ]

let sim ?backend ~rng ?(size = default_size) () =
  let base = base_graph ?backend ~rng size in
  let p = pattern ~rng base ~labels:size.labels in
  {
    name = "sim";
    base;
    focus = [];
    make = (fun () -> Adapters.sim base p);
    qspec = ("sim", 0, pattern_qargs p);
  }

let iso ?backend ~rng ?(size = default_size) () =
  let base = base_graph ?backend ~rng size in
  let p = pattern ~rng base ~labels:size.labels in
  {
    name = "iso";
    base;
    focus = [];
    make = (fun () -> Adapters.iso base p);
    qspec = ("iso", 0, pattern_qargs p);
  }

let edge_of = function
  | Digraph.Insert (u, v) | Digraph.Delete (u, v) -> (u, v)

let gadget ?(backend = `Hashtbl) ?(cycle = 4) () =
  let gd = Ig_theory.Gadget.make ~cycle in
  let base = Digraph.convert ~backend gd.Ig_theory.Gadget.graph in
  let d1 = edge_of gd.Ig_theory.Gadget.delta1
  and d2 = edge_of gd.Ig_theory.Gadget.delta2 in
  (* Δ1 bridges the cycles, Δ2 reaches the sink; also keep the cycle edges
     at their endpoints in play so the stream can break and restore the
     cycles themselves. *)
  let near =
    match (gd.Ig_theory.Gadget.v_nodes, gd.Ig_theory.Gadget.u_nodes) with
    | v0 :: v1 :: _, u0 :: u1 :: _ -> [ (v0, v1); (u0, u1) ]
    | _ -> []
  in
  {
    name = "gadget";
    base;
    focus = d1 :: d2 :: near;
    make = (fun () -> Adapters.rpq base gd.Ig_theory.Gadget.query);
    qspec = ("rpq", 0, [ Ig_nfa.Regex.to_string gd.Ig_theory.Gadget.query ]);
  }

let all ?backend ~rng ?(size = default_size) () =
  [
    kws ?backend ~rng ~size ();
    rpq ?backend ~rng ~size ();
    scc ?backend ~rng ~size ();
    sim ?backend ~rng ~size ();
    iso ?backend ~rng ~size ();
    gadget ?backend ();
  ]

let by_name ?backend ~rng ?(size = default_size) = function
  | "kws" -> Some (kws ?backend ~rng ~size ())
  | "rpq" -> Some (rpq ?backend ~rng ~size ())
  | "scc" -> Some (scc ?backend ~rng ~size ())
  | "sim" -> Some (sim ?backend ~rng ~size ())
  | "iso" -> Some (iso ?backend ~rng ~size ())
  | "gadget" -> Some (gadget ?backend ())
  | _ -> None
