module Digraph = Ig_graph.Digraph
module Tracer = Ig_obs.Tracer
module Record = Ig_journal.Record
module Journal = Ig_journal.Journal
module Store = Ig_journal.Store

let digest_hex = Journal.digest_hex

(* Wrap a packed oracle as a store client: effective ops re-enter the
   engine as unit updates, so the journal sees exactly what the engine
   applied. *)
let client_of inst =
  {
    Store.apply =
      (fun ops ->
        List.iter (Oracle.apply inst) (Journal.updates_of_ops ops));
    graph = (fun () -> Oracle.graph inst);
    answer_digest = (fun () -> digest_hex (Oracle.answer inst));
    certs = (fun () -> Oracle.cert_snapshot inst);
  }

let header_of (s : Scenarios.t) =
  let cls, bound, qargs = s.Scenarios.qspec in
  {
    Record.version = Record.format_version;
    cls;
    bound;
    qargs;
    base_digest = Journal.graph_digest s.Scenarios.base;
  }

(* Only the files the store itself writes; anything else in [dir] is the
   caller's business. *)
let clean_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if
          String.equal f "journal.igj"
          || String.starts_with ~prefix:"snapshot-" f
        then Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
[@@lint.allow "D3"]

let trace_digest inst =
  let tr = Oracle.trace inst in
  if not (Tracer.enabled tr) then "-"
  else digest_hex (Ig_obs.Trace_export.explain_to_string (Tracer.snapshot tr))

let clear_trace inst =
  let tr = Oracle.trace inst in
  if Tracer.enabled tr then Tracer.clear tr

let update_str = function
  | Digraph.Insert (u, v) -> Printf.sprintf "+%d-%d" u v
  | Digraph.Delete (u, v) -> Printf.sprintf "-%d-%d" u v

exception Fuzz_failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fuzz_failed m)) fmt

let run ~scenario ~dir ~steps ~seed ?(emit = fun _ -> ()) () =
  let rng = Random.State.make [| seed; 0xd0ab1e |] in
  clean_dir dir;
  let inst = ref (scenario.Scenarios.make ()) in
  let store =
    ref (Store.init ~dir ~header:(header_of scenario) ~client:(client_of !inst) ())
  in
  let stream =
    ref
      (Stream.create ~rng ~focus:scenario.Scenarios.focus
         (Oracle.graph !inst))
  in
  let check ~step ~ctx =
    match Oracle.check !inst with
    | () -> ()
    | exception Oracle.Check_failed msg ->
        failf "step %d (%s): oracle disagreement: %s" step ctx msg
  in
  let state_str () =
    Printf.sprintf "tip=%d graph=%s answer=%s" (Store.tip !store)
      (Store.digest !store)
      (digest_hex (Oracle.answer !inst))
  in
  (* Drop the live engine, rebuild from scratch and replay the whole
     committed journal through it — the crash-recovery path. *)
  let recover ~step ~ctx =
    Store.close !store;
    let fresh = scenario.Scenarios.make () in
    let client = client_of fresh in
    match Store.plan ~from_scratch:true ~dir () with
    | Error e -> failf "step %d (%s): recovery plan: %s" step ctx e
    | Ok plan -> (
        match Store.attach ~dir ~plan ~client () with
        | Error e -> failf "step %d (%s): recovery attach: %s" step ctx e
        | Ok st ->
            inst := fresh;
            store := st;
            stream :=
              Stream.create ~rng ~focus:scenario.Scenarios.focus
                (Oracle.graph fresh);
            plan)
  in
  let do_one ~step =
    let u = Stream.next !stream in
    clear_trace !inst;
    match Store.do_batch !store [ u ] with
    | None -> emit (Printf.sprintf "step %d do %s noop" step (update_str u))
    | Some b ->
        check ~step ~ctx:"do";
        emit
          (Printf.sprintf "step %d do %s seq=%d %s trace=%s" step
             (update_str u) b.Record.seq (state_str ()) (trace_digest !inst))
  in
  let do_undo_pair ~step =
    let pre_g = Store.digest !store in
    let pre_a = digest_hex (Oracle.answer !inst) in
    let u = Stream.next !stream in
    clear_trace !inst;
    match Store.do_batch !store [ u ] with
    | None ->
        emit (Printf.sprintf "step %d pair %s noop" step (update_str u))
    | Some _ -> (
        let do_trace = trace_digest !inst in
        clear_trace !inst;
        match Store.undo !store ~k:1 with
        | Error e -> failf "step %d (pair): undo: %s" step e
        | Ok _ ->
            let post_g = Store.digest !store in
            let post_a = digest_hex (Oracle.answer !inst) in
            if not (String.equal pre_g post_g) then
              failf
                "step %d (pair): undo(do(G)) graph digest %s, pre-do was %s"
                step post_g pre_g;
            if not (String.equal pre_a post_a) then
              failf
                "step %d (pair): undo(do(G)) answer digest %s, pre-do was %s"
                step post_a pre_a;
            check ~step ~ctx:"pair";
            emit
              (Printf.sprintf
                 "step %d pair %s graph=%s answer=%s dotrace=%s undotrace=%s"
                 step (update_str u) post_g post_a do_trace
                 (trace_digest !inst)))
  in
  let undo_k ~step =
    let tip = Store.tip !store in
    if tip = 0 then emit (Printf.sprintf "step %d undo skip (empty)" step)
    else begin
      let k = min tip (1 + Random.State.int rng 3) in
      clear_trace !inst;
      match Store.undo !store ~k with
      | Error e -> failf "step %d (undo %d): %s" step k e
      | Ok b ->
          check ~step ~ctx:"undo";
          emit
            (Printf.sprintf "step %d undo k=%d seq=%d %s trace=%s" step k
               b.Record.seq (state_str ()) (trace_digest !inst))
    end
  in
  let snapshot ~step =
    ignore (Store.snapshot !store);
    emit (Printf.sprintf "step %d snapshot seq=%d" step (Store.tip !store))
  in
  let recover_clean ~step =
    let plan = recover ~step ~ctx:"clean" in
    check ~step ~ctx:"clean recover";
    emit
      (Printf.sprintf "step %d recover clean replayed=%d %s" step
         (List.length plan.Store.replay)
         (state_str ()))
  in
  (* Journal a batch without applying it (crash between the write-ahead
     append and the engine apply), then truncate mid-record: recovery must
     drop the torn record as a unit and agree with the oracle. *)
  let recover_torn ~step =
    let before = Store.tip !store in
    let u = Stream.next !stream in
    Store.append_unapplied_for_crash_testing !store [ u ];
    if Store.tip !store = before then begin
      (* Ineffective update: nothing journaled, recover cleanly instead. *)
      let plan = recover ~step ~ctx:"torn(noop)" in
      check ~step ~ctx:"torn recover";
      emit
        (Printf.sprintf "step %d recover torn-noop replayed=%d %s" step
           (List.length plan.Store.replay)
           (state_str ()))
    end
    else begin
      Store.close !store;
      (* The framed record is >= 21 bytes, so chopping at most 8 tears
         exactly the unapplied tail record. *)
      Journal.chop ~path:(Store.journal_path ~dir) (1 + Random.State.int rng 8);
      let fresh = scenario.Scenarios.make () in
      let client = client_of fresh in
      match Store.plan ~from_scratch:true ~dir () with
      | Error e -> failf "step %d (torn): recovery plan: %s" step e
      | Ok plan -> (
          if plan.Store.dropped = 0 then
            failf "step %d (torn): truncation not detected" step;
          if plan.Store.tip <> before then
            failf "step %d (torn): tip %d after tear, expected %d" step
              plan.Store.tip before;
          match Store.attach ~dir ~plan ~client () with
          | Error e -> failf "step %d (torn): recovery attach: %s" step e
          | Ok st ->
              inst := fresh;
              store := st;
              stream :=
                Stream.create ~rng ~focus:scenario.Scenarios.focus
                  (Oracle.graph fresh);
              check ~step ~ctx:"torn recover";
              emit
                (Printf.sprintf
                   "step %d recover torn dropped=%d replayed=%d %s" step
                   plan.Store.dropped
                   (List.length plan.Store.replay)
                   (state_str ())))
    end
  in
  match
    emit
      (Printf.sprintf "init %s %s" scenario.Scenarios.name (state_str ()));
    check ~step:0 ~ctx:"init";
    for step = 1 to steps do
      let r = Random.State.float rng 1.0 in
      if r < 0.62 then do_one ~step
      else if r < 0.74 then do_undo_pair ~step
      else if r < 0.80 then undo_k ~step
      else if r < 0.86 then snapshot ~step
      else if r < 0.93 then recover_clean ~step
      else recover_torn ~step
    done;
    Store.close !store
  with
  | () -> Ok steps
  | exception Fuzz_failed msg -> Error msg
  | exception Oracle.Check_failed msg -> Error msg
  | exception Failure msg -> Error msg
