module Digraph = Ig_graph.Digraph
module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

(* ---- canonical answer forms -------------------------------------------- *)

let canon_nodes ns =
  let ns = List.sort_uniq compare ns in
  "{" ^ String.concat " " (List.map string_of_int ns) ^ "}"

let canon_pairs ps =
  let ps = List.sort_uniq compare ps in
  "{"
  ^ String.concat " " (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) ps)
  ^ "}"

let canon_comps cs =
  let cs = List.sort compare (List.map (List.sort compare) cs) in
  String.concat ""
    (List.map
       (fun c -> "[" ^ String.concat " " (List.map string_of_int c) ^ "]")
       cs)

(* A match subgraph: sorted image nodes plus sorted image edges (the VF2
   canon), printed. *)
let canon_mappings p ms =
  let cs = List.sort_uniq compare (List.map (Ig_iso.Vf2.canon_of p) ms) in
  String.concat ""
    (List.map
       (fun (ns, es) ->
         Printf.sprintf "[%s|%s]"
           (String.concat " " (List.map string_of_int ns))
           (String.concat " "
              (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) es)))
       cs)

let apply_edge ~ins ~del = function
  | Digraph.Insert (u, v) -> ins u v
  | Digraph.Delete (u, v) -> del u v

(* ---- KWS ---------------------------------------------------------------- *)

module Kws = struct
  module I = Ig_kws.Inc_kws

  type t = I.t
  type query = Ig_kws.Batch.query

  let name = "kws"
  let init g q = I.init ~obs:(Obs.create ()) ~trace:(Tracer.create ()) g q
  let graph = I.graph
  let apply t = apply_edge ~ins:(I.insert_edge t) ~del:(I.delete_edge t)
  let answer t = canon_nodes (I.match_roots t)
  let recompute t = canon_nodes (Ig_kws.Batch.run (I.graph t) (I.query t))
  let check_invariants = I.check_invariants
  let obs = I.obs
  let trace = I.trace
  let cert_snapshot = I.cert_snapshot
end

(* ---- RPQ ---------------------------------------------------------------- *)

module Rpq = struct
  module I = Ig_rpq.Inc_rpq

  type t = { s : I.t; q : Ig_nfa.Regex.t }
  type query = Ig_nfa.Regex.t

  let name = "rpq"
  let init g q =
    { s = I.create ~obs:(Obs.create ()) ~trace:(Tracer.create ()) g q; q }
  let graph t = I.graph t.s

  let apply t =
    apply_edge ~ins:(I.insert_edge t.s) ~del:(I.delete_edge t.s)

  let answer t = canon_pairs (I.matches t.s)
  let recompute t = canon_pairs (Ig_rpq.Batch.run_query (graph t) t.q)
  let check_invariants t = I.check_invariants t.s
  let obs t = I.obs t.s
  let trace t = I.trace t.s
  let cert_snapshot t = I.cert_snapshot t.s
end

(* ---- SCC ---------------------------------------------------------------- *)

module Scc = struct
  module I = Ig_scc.Inc_scc

  type t = I.t
  type query = I.config

  let name = "scc"
  let init g config =
    I.init ~config ~obs:(Obs.create ()) ~trace:(Tracer.create ()) g
  let graph = I.graph
  let apply t = apply_edge ~ins:(I.insert_edge t) ~del:(I.delete_edge t)
  let answer t = canon_comps (I.components t)
  let recompute t = canon_comps (Ig_scc.Tarjan.scc (I.graph t))
  let check_invariants = I.check_invariants
  let obs = I.obs
  let trace = I.trace
  let cert_snapshot = I.cert_snapshot
end

(* ---- Sim ---------------------------------------------------------------- *)

module Sim = struct
  module I = Ig_sim.Inc_sim

  type t = I.t
  type query = Ig_iso.Pattern.t

  let name = "sim"
  let init g p = I.init ~obs:(Obs.create ()) ~trace:(Tracer.create ()) g p
  let graph = I.graph
  let apply t = apply_edge ~ins:(I.insert_edge t) ~del:(I.delete_edge t)
  let answer t = canon_pairs (Ig_sim.Sim.pairs (I.relation t))

  let recompute t =
    canon_pairs (Ig_sim.Sim.pairs (Ig_sim.Sim.run (I.pattern t) (I.graph t)))

  let check_invariants = I.check_invariants
  let obs = I.obs
  let trace = I.trace
  let cert_snapshot = I.cert_snapshot
end

(* ---- ISO ---------------------------------------------------------------- *)

module Iso = struct
  module I = Ig_iso.Inc_iso

  type t = I.t
  type query = Ig_iso.Pattern.t

  let name = "iso"
  let init g p = I.init ~obs:(Obs.create ()) ~trace:(Tracer.create ()) g p
  let graph = I.graph
  let apply t = apply_edge ~ins:(I.insert_edge t) ~del:(I.delete_edge t)
  let answer t = canon_mappings (I.pattern t) (I.matches t)

  let recompute t =
    canon_mappings (I.pattern t) (Ig_iso.Vf2.find_all (I.graph t) (I.pattern t))

  let check_invariants = I.check_invariants
  let obs = I.obs
  let trace = I.trace
  let cert_snapshot = I.cert_snapshot
end

(* ---- packed constructors ------------------------------------------------ *)

let kws g q = Oracle.Packed ((module Kws), Kws.init (Digraph.copy g) q)
let rpq g q = Oracle.Packed ((module Rpq), Rpq.init (Digraph.copy g) q)

let scc ?(config = Ig_scc.Inc_scc.inc_config) g =
  Oracle.Packed ((module Scc), Scc.init (Digraph.copy g) config)

let sim g p = Oracle.Packed ((module Sim), Sim.init (Digraph.copy g) p)
let iso g p = Oracle.Packed ((module Iso), Iso.init (Digraph.copy g) p)
let of_kws t = Oracle.Packed ((module Kws), t)
