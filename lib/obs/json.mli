(** Minimal JSON emitter/parser: enough to write and re-read BENCH
    reports, trace exports and lint reports without depending on yojson
    (not in the build image). The emitter always produces valid JSON; the
    parser accepts standard JSON with the one restriction that [\u]
    escapes decode only the ASCII range. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize. [indent] pretty-prints with two-space indentation; keys
    and array elements keep their construction order, so emission is
    deterministic. NaN/infinite floats emit as [null] (JSON has neither)
    — a null timing is visibly wrong rather than silently absorbed. *)

exception Parse_error of string

val parse_exn : string -> t
(** Parse a complete JSON document. @raise Parse_error on malformed
    input or trailing garbage. *)

val parse : string -> (t, string) result
(** Exception-free [parse_exn]. *)

val member : string -> t -> t option
(** [member k j] is the value bound to [k] when [j] is an object. *)

val to_int_opt : t -> int option
val to_str_opt : t -> string option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option

val to_float_opt : t -> float option
(** Accepts both [Float] and [Int] (JSON numbers are one type). *)
