(* Schema-versioned BENCH reports.

   One report = one bench invocation: tool identity, configuration, and a
   list of experiments, each a list of data points. A point carries the
   x-axis label, per-series wall-clock timings (seconds), per-series
   counter snapshots (the Obs counters of the engine that produced the
   series), and per-series speedups against the point's batch baseline.

   Schema (version 1):

     { "schema_version": 1,
       "tool": <string>,
       "created_unix": <number>,
       "config": { <string>: <json>, ... },
       "experiments": [
         { "id": <string>, "title": <string>,
           "points": [
             { "x": <string>,
               "timings": { <series>: <seconds>, ... },
               "counters": { <series>: { <counter>: <int>, ... }, ... },
               "speedup_vs_batch": { <series>: <ratio>, ... } } ] } ] }

   Two runs are compared by joining on (experiment id, point x, series). *)

let schema_version = 1

type point = {
  x : string;
  timings : (string * float) list;
  counters : (string * (string * int) list) list;
  speedup : (string * float) list;
}

type experiment = {
  id : string;
  title : string;
  mutable points : point list; (* reverse insertion order *)
}

type t = {
  tool : string;
  created : float;
  config : (string * Json.t) list;
  mutable experiments : experiment list; (* reverse insertion order *)
}

let create ~tool ~config () =
  { tool; created = Unix.time (); config; experiments = [] }

let experiment t ~id ~title =
  match List.find_opt (fun e -> e.id = id) t.experiments with
  | Some e -> e
  | None ->
      let e = { id; title; points = [] } in
      t.experiments <- e :: t.experiments;
      e

let add_point e ~x ?(timings = []) ?(counters = []) ?(speedup = []) () =
  let counters = List.filter (fun (_, cs) -> cs <> []) counters in
  e.points <- { x; timings; counters; speedup } :: e.points

let point_to_json p =
  Json.Obj
    [
      ("x", Json.Str p.x);
      ( "timings",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) p.timings) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (series, cs) ->
               (series, Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs)))
             p.counters) );
      ( "speedup_vs_batch",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) p.speedup) );
    ]

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("tool", Json.Str t.tool);
      ("created_unix", Json.Float t.created);
      ("config", Json.Obj t.config);
      ( "experiments",
        Json.Arr
          (List.rev_map
             (fun e ->
               Json.Obj
                 [
                   ("id", Json.Str e.id);
                   ("title", Json.Str e.title);
                   ("points", Json.Arr (List.rev_map point_to_json e.points));
                 ])
             t.experiments) );
    ]

let write ~path t =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:true (to_json t));
  output_char oc '\n';
  close_out oc

(* ---- validation ------------------------------------------------------------ *)

(* Structural schema check for consumers (the @bench-smoke alias, diff
   tooling). Returns the first violation found. *)
let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let req obj k what conv =
    match Option.bind (Json.member k obj) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed %S (%s)" k what)
  in
  let* v = req json "schema_version" "int" Json.to_int_opt in
  if v <> schema_version then
    Error (Printf.sprintf "schema_version %d, expected %d" v schema_version)
  else
    let* _ = req json "tool" "string" Json.to_str_opt in
    let* _ = req json "created_unix" "number" Json.to_float_opt in
    let* _ = req json "config" "object" Json.to_obj_opt in
    let* exps = req json "experiments" "array" Json.to_list_opt in
    let check_point eid p =
      let* x = req p "x" "string" Json.to_str_opt in
      let where what = Printf.sprintf "%s/%s: %s" eid x what in
      let* timings = req p "timings" "object" Json.to_obj_opt in
      let* counters = req p "counters" "object" Json.to_obj_opt in
      let* speedup = req p "speedup_vs_batch" "object" Json.to_obj_opt in
      let* () =
        List.fold_left
          (fun acc (k, v) ->
            let* () = acc in
            if Json.to_float_opt v = None then
              Error (where (Printf.sprintf "timing %S is not a number" k))
            else Ok ())
          (Ok ()) (timings @ speedup)
      in
      List.fold_left
        (fun acc (series, snap) ->
          let* () = acc in
          match Json.to_obj_opt snap with
          | None -> Error (where (Printf.sprintf "counters[%S] not an object" series))
          | Some cs ->
              List.fold_left
                (fun acc (k, v) ->
                  let* () = acc in
                  match Json.to_int_opt v with
                  | Some n when n >= 0 -> Ok ()
                  | _ ->
                      Error
                        (where
                           (Printf.sprintf
                              "counter %s/%s is not a non-negative int" series k)))
                (Ok ()) cs)
        (Ok ()) counters
    in
    List.fold_left
      (fun acc e ->
        let* () = acc in
        let* id = req e "id" "string" Json.to_str_opt in
        let* _ = req e "title" "string" Json.to_str_opt in
        let* points = req e "points" "array" Json.to_list_opt in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            let* () = check_point id p in
            Ok ())
          (Ok ()) points)
      (Ok ()) exps

(* The headline comparison: per (experiment, x, series), the timing ratio
   old/new (>1 means the new run is faster). Used by EXPERIMENTS.md's
   "comparing two runs" recipe and kept here so the format evolves with the
   schema. *)
let compare_timings ~old_json ~new_json =
  let index json =
    let acc = ref [] in
    (match Json.member "experiments" json with
    | Some (Json.Arr exps) ->
        List.iter
          (fun e ->
            match (Json.member "id" e, Json.member "points" e) with
            | Some (Json.Str id), Some (Json.Arr points) ->
                List.iter
                  (fun p ->
                    match (Json.member "x" p, Json.member "timings" p) with
                    | Some (Json.Str x), Some (Json.Obj ts) ->
                        List.iter
                          (fun (series, v) ->
                            match Json.to_float_opt v with
                            | Some f -> acc := ((id, x, series), f) :: !acc
                            | None -> ())
                          ts
                    | _ -> ())
                  points
            | _ -> ())
          exps
    | _ -> ());
    !acc
  in
  let old_ix = index old_json in
  List.filter_map
    (fun (key, nv) ->
      match List.assoc_opt key old_ix with
      | Some ov when nv > 0.0 -> Some (key, ov /. nv)
      | _ -> None)
    (index new_json)
