(* Schema-versioned BENCH reports.

   One report = one bench invocation: tool identity, configuration, and a
   list of experiments, each a list of data points. A point carries the
   x-axis label, per-series wall-clock timings (seconds), per-series
   counter snapshots (the Obs counters of the engine that produced the
   series), and per-series speedups against the point's batch baseline.

   Schema (version 2; version-1 files — no histograms/gc — still
   validate):

     { "schema_version": 2,
       "tool": <string>,
       "created_unix": <number>,
       "config": { <string>: <json>, ... },
       "experiments": [
         { "id": <string>, "title": <string>,
           "points": [
             { "x": <string>,
               "timings": { <series>: <seconds>, ... },
               "counters": { <series>: { <counter>: <int>, ... }, ... },
               "speedup_vs_batch": { <series>: <ratio>, ... },
               "histograms": { <series>: { <name>: <histogram>, ... }, ... },
               "gc": { <series>: { <stat>: <words>, ... }, ... } } ] } ] }

   The "histograms" section carries {!Histogram.to_json} values — per-
   update latency ("apply_latency_s") and GC-delta distributions — and
   "gc" the per-point word totals. Both are optional per point (batch
   baselines maintain no registry). Two runs are compared by joining on
   (experiment id, point x, series); see {!compare_reports}. *)

let schema_version = 2
let supported_versions = [ 1; 2 ]

type point = {
  x : string;
  timings : (string * float) list;
  counters : (string * (string * int) list) list;
  speedup : (string * float) list;
  hists : (string * (string * Histogram.t) list) list;
  gc : (string * (string * float) list) list;
}

type experiment = {
  id : string;
  title : string;
  mutable points : point list; (* reverse insertion order *)
}

type t = {
  tool : string;
  created : float;
  config : (string * Json.t) list;
  mutable experiments : experiment list; (* reverse insertion order *)
}

let create ~tool ~config () =
  { tool; created = Unix.time (); config; experiments = [] }

let experiment t ~id ~title =
  match List.find_opt (fun e -> e.id = id) t.experiments with
  | Some e -> e
  | None ->
      let e = { id; title; points = [] } in
      t.experiments <- e :: t.experiments;
      e

let add_point e ~x ?(timings = []) ?(counters = []) ?(speedup = [])
    ?(histograms = []) ?(gc = []) () =
  let counters = List.filter (fun (_, cs) -> cs <> []) counters in
  let hists = List.filter (fun (_, hs) -> hs <> []) histograms in
  let gc = List.filter (fun (_, ws) -> ws <> []) gc in
  e.points <- { x; timings; counters; speedup; hists; gc } :: e.points

let point_to_json p =
  let base =
    [
      ("x", Json.Str p.x);
      ( "timings",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) p.timings) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (series, cs) ->
               (series, Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs)))
             p.counters) );
      ( "speedup_vs_batch",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) p.speedup) );
    ]
  in
  let opt key render = function [] -> [] | xs -> [ (key, render xs) ] in
  Json.Obj
    (base
    @ opt "histograms"
        (fun hs ->
          Json.Obj
            (List.map
               (fun (series, hs) ->
                 ( series,
                   Json.Obj
                     (List.map (fun (k, h) -> (k, Histogram.to_json h)) hs) ))
               hs))
        p.hists
    @ opt "gc"
        (fun gc ->
          Json.Obj
            (List.map
               (fun (series, ws) ->
                 (series, Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) ws)))
               gc))
        p.gc)

let to_json t =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("tool", Json.Str t.tool);
      ("created_unix", Json.Float t.created);
      ("config", Json.Obj t.config);
      ( "experiments",
        Json.Arr
          (List.rev_map
             (fun e ->
               Json.Obj
                 [
                   ("id", Json.Str e.id);
                   ("title", Json.Str e.title);
                   ("points", Json.Arr (List.rev_map point_to_json e.points));
                 ])
             t.experiments) );
    ]

let write ~path t =
  let oc = (open_out [@lint.allow "D3"]) path in
  output_string oc (Json.to_string ~indent:true (to_json t));
  output_char oc '\n';
  close_out oc

(* ---- validation ------------------------------------------------------------ *)

(* Structural schema check for consumers (the @bench-smoke and @bench-gate
   aliases, diff tooling). Accepts every version in [supported_versions]:
   v1 files simply lack the histogram/gc sections. Returns the first
   violation found. *)
let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let req obj k what conv =
    match Option.bind (Json.member k obj) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed %S (%s)" k what)
  in
  let* v = req json "schema_version" "int" Json.to_int_opt in
  if not (List.mem v supported_versions) then
    Error
      (Printf.sprintf "schema_version %d, expected one of %s" v
         (String.concat ", " (List.map string_of_int supported_versions)))
  else
    let* _ = req json "tool" "string" Json.to_str_opt in
    let* _ = req json "created_unix" "number" Json.to_float_opt in
    let* _ = req json "config" "object" Json.to_obj_opt in
    let* exps = req json "experiments" "array" Json.to_list_opt in
    let check_point eid p =
      let* x = req p "x" "string" Json.to_str_opt in
      let where what = Printf.sprintf "%s/%s: %s" eid x what in
      let* timings = req p "timings" "object" Json.to_obj_opt in
      let* counters = req p "counters" "object" Json.to_obj_opt in
      let* speedup = req p "speedup_vs_batch" "object" Json.to_obj_opt in
      let* () =
        List.fold_left
          (fun acc (k, v) ->
            let* () = acc in
            if Json.to_float_opt v = None then
              Error (where (Printf.sprintf "timing %S is not a number" k))
            else Ok ())
          (Ok ()) (timings @ speedup)
      in
      let* () =
        (* Optional v2 sections: every embedded histogram must pass the
           Histogram validator, every gc stat must be a number. *)
        match Json.member "histograms" p with
        | None -> Ok ()
        | Some h -> (
            match Json.to_obj_opt h with
            | None -> Error (where "\"histograms\" is not an object")
            | Some series ->
                List.fold_left
                  (fun acc (sname, hs) ->
                    let* () = acc in
                    match Json.to_obj_opt hs with
                    | None ->
                        Error
                          (where
                             (Printf.sprintf "histograms[%S] not an object" sname))
                    | Some hs ->
                        List.fold_left
                          (fun acc (hname, hj) ->
                            let* () = acc in
                            match Histogram.validate hj with
                            | Ok () -> Ok ()
                            | Error e ->
                                Error
                                  (where
                                     (Printf.sprintf "%s/%s: %s" sname hname e)))
                          (Ok ()) hs)
                  (Ok ()) series)
      in
      let* () =
        match Json.member "gc" p with
        | None -> Ok ()
        | Some g -> (
            match Json.to_obj_opt g with
            | None -> Error (where "\"gc\" is not an object")
            | Some series ->
                List.fold_left
                  (fun acc (sname, ws) ->
                    let* () = acc in
                    match Json.to_obj_opt ws with
                    | None ->
                        Error (where (Printf.sprintf "gc[%S] not an object" sname))
                    | Some ws ->
                        List.fold_left
                          (fun acc (k, v) ->
                            let* () = acc in
                            if Json.to_float_opt v = None then
                              Error
                                (where
                                   (Printf.sprintf
                                      "gc stat %s/%s is not a number" sname k))
                            else Ok ())
                          (Ok ()) ws)
                  (Ok ()) series)
      in
      List.fold_left
        (fun acc (series, snap) ->
          let* () = acc in
          match Json.to_obj_opt snap with
          | None -> Error (where (Printf.sprintf "counters[%S] not an object" series))
          | Some cs ->
              List.fold_left
                (fun acc (k, v) ->
                  let* () = acc in
                  match Json.to_int_opt v with
                  | Some n when n >= 0 -> Ok ()
                  | _ ->
                      Error
                        (where
                           (Printf.sprintf
                              "counter %s/%s is not a non-negative int" series k)))
                (Ok ()) cs)
        (Ok ()) counters
    in
    List.fold_left
      (fun acc e ->
        let* () = acc in
        let* id = req e "id" "string" Json.to_str_opt in
        let* _ = req e "title" "string" Json.to_str_opt in
        let* points = req e "points" "array" Json.to_list_opt in
        List.fold_left
          (fun acc p ->
            let* () = acc in
            let* () = check_point id p in
            Ok ())
          (Ok ()) points)
      (Ok ()) exps

(* The headline comparison: per (experiment, x, series), the timing ratio
   old/new (>1 means the new run is faster). Used by EXPERIMENTS.md's
   "comparing two runs" recipe and kept here so the format evolves with the
   schema. *)
let compare_timings ~old_json ~new_json =
  let index json =
    let acc = ref [] in
    (match Json.member "experiments" json with
    | Some (Json.Arr exps) ->
        List.iter
          (fun e ->
            match (Json.member "id" e, Json.member "points" e) with
            | Some (Json.Str id), Some (Json.Arr points) ->
                List.iter
                  (fun p ->
                    match (Json.member "x" p, Json.member "timings" p) with
                    | Some (Json.Str x), Some (Json.Obj ts) ->
                        List.iter
                          (fun (series, v) ->
                            match Json.to_float_opt v with
                            | Some f -> acc := ((id, x, series), f) :: !acc
                            | None -> ())
                          ts
                    | _ -> ())
                  points
            | _ -> ())
          exps
    | _ -> ());
    !acc
  in
  let old_ix = index old_json in
  List.filter_map
    (fun (key, nv) ->
      match List.assoc_opt key old_ix with
      | Some ov when nv > 0.0 -> Some (key, ov /. nv)
      | _ -> None)
    (index new_json)

(* ---- regression comparison --------------------------------------------------

   The machinery behind `incgraph compare` and bench/compare.exe (the
   @bench-gate alias): pair every (experiment, x, series) across two BENCH
   files, compute the timing and latency-p99 ratios, and flag regressions
   beyond a noise threshold. Pairs whose timings sit below [min_time] are
   reported but never flagged — at smoke scales the measurements are
   microseconds of noise, and the gate must stay deterministic. *)

type cmp_cell = {
  ckey : string * string * string; (* experiment id, x, series *)
  old_time : float;
  new_time : float;
  old_p99 : float option; (* of the apply-latency histogram, when present *)
  new_p99 : float option;
}

type comparison = {
  cells : cmp_cell list;
  only_old : (string * string * string) list;
  only_new : (string * string * string) list;
}

(* (key -> time, key -> p99) indexes of one BENCH json. *)
let index_report json =
  let times = ref [] and p99s = ref [] in
  (match Json.member "experiments" json with
  | Some (Json.Arr exps) ->
      List.iter
        (fun e ->
          match (Json.member "id" e, Json.member "points" e) with
          | Some (Json.Str id), Some (Json.Arr points) ->
              List.iter
                (fun p ->
                  match Json.member "x" p with
                  | Some (Json.Str x) ->
                      (match Json.member "timings" p with
                      | Some (Json.Obj ts) ->
                          List.iter
                            (fun (series, v) ->
                              match Json.to_float_opt v with
                              | Some f -> times := ((id, x, series), f) :: !times
                              | None -> ())
                            ts
                      | _ -> ());
                      (match Json.member "histograms" p with
                      | Some (Json.Obj hs) ->
                          List.iter
                            (fun (series, hobj) ->
                              match
                                Option.bind (Json.member "apply_latency_s" hobj)
                                  (fun hj ->
                                    Result.to_option (Histogram.of_json hj))
                              with
                              | Some h when Histogram.count h > 0 ->
                                  p99s :=
                                    ((id, x, series), Histogram.p99 h) :: !p99s
                              | _ -> ())
                            hs
                      | _ -> ())
                  | _ -> ())
                points
          | _ -> ())
        exps
  | _ -> ());
  (List.rev !times, List.rev !p99s)

let compare_reports ~old_json ~new_json =
  let old_times, old_p99s = index_report old_json in
  let new_times, new_p99s = index_report new_json in
  let cells =
    List.filter_map
      (fun (key, nt) ->
        match List.assoc_opt key old_times with
        | None -> None
        | Some ot ->
            Some
              {
                ckey = key;
                old_time = ot;
                new_time = nt;
                old_p99 = List.assoc_opt key old_p99s;
                new_p99 = List.assoc_opt key new_p99s;
              })
      new_times
  in
  let only_old =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key new_times then None else Some key)
      old_times
  in
  let only_new =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key old_times then None else Some key)
      new_times
  in
  { cells; only_old; only_new }

(* A cell regresses when its wall time or its latency p99 grew by more
   than [threshold] percent — and the grown value is above the noise
   floor. *)
let cell_regresses ~threshold ~min_time c =
  let factor = 1.0 +. (threshold /. 100.0) in
  let worse old_v new_v =
    new_v >= min_time && old_v > 0.0 && new_v > old_v *. factor
  in
  worse c.old_time c.new_time
  ||
  match (c.old_p99, c.new_p99) with
  | Some op, Some np -> worse op np
  | _ -> false

let regressions ~threshold ~min_time cmp =
  List.filter (cell_regresses ~threshold ~min_time) cmp.cells

let pp_comparison ~threshold ~min_time ppf cmp =
  let ratio o n = if o > 0.0 then n /. o else Float.infinity in
  let pp_opt ppf = function
    | None -> Format.fprintf ppf "%10s" "-"
    | Some v -> Format.fprintf ppf "%10.6f" v
  in
  Format.fprintf ppf "%-12s %-8s %-10s %10s %10s %7s %10s %10s %7s  %s@."
    "experiment" "x" "series" "old(s)" "new(s)" "ratio" "p99-old" "p99-new"
    "p99-r" "flag";
  List.iter
    (fun c ->
      let id, x, series = c.ckey in
      let r = ratio c.old_time c.new_time in
      let p99_r =
        match (c.old_p99, c.new_p99) with
        | Some o, Some n when o > 0.0 -> Printf.sprintf "%.2fx" (n /. o)
        | _ -> "-"
      in
      let flag =
        if cell_regresses ~threshold ~min_time c then "REGRESSION"
        else if Float.max c.old_time c.new_time < min_time then "(noise floor)"
        else if r < 1.0 /. (1.0 +. (threshold /. 100.0)) then "improved"
        else ""
      in
      Format.fprintf ppf "%-12s %-8s %-10s %10.6f %10.6f %6.2fx %a %a %7s  %s@."
        id x series c.old_time c.new_time r pp_opt c.old_p99 pp_opt c.new_p99
        p99_r flag)
    cmp.cells;
  let dropped = List.length cmp.only_old and added = List.length cmp.only_new in
  if dropped > 0 || added > 0 then
    Format.fprintf ppf "unpaired: %d only in OLD, %d only in NEW@." dropped
      added;
  let regs = regressions ~threshold ~min_time cmp in
  Format.fprintf ppf
    "%d pair(s) compared, %d regression(s) beyond %+.0f%% (noise floor %gs)@."
    (List.length cmp.cells) (List.length regs) threshold min_time
