(* Structured event tracing with AFF provenance.

   Where the Obs registry answers "how much work did an engine do" (|AFF|,
   cert_rewrites, queue_pushes), the tracer answers "why": every node that
   enters AFF is stamped with the *rule* of the paper's pseudocode that put
   it there (which line of Figures 1/3/5/7 fired), every certificate
   rewrite records the field and its before/after values, and frontier
   expansions record the propagation order. Events land in a bounded ring
   buffer: when it wraps, the oldest events are dropped and counted, so
   tracing a long soak costs O(capacity) memory and the tail — the part
   that explains a failure — is always retained.

   Mirroring [Obs.t], the [Noop] constructor makes a disabled tracer cost
   one branch per probe; engines take [?trace] at [init] exactly like
   [?obs]. Sequence numbers are a logical clock (no wall-clock reads), so
   a trace of a seeded run is bit-for-bit deterministic. *)

(* Which case of the paper's algorithms put a node into AFF. *)
type rule =
  | Kws_next_on_deleted
      (* IncKWS− (Fig. 3 lines 1-6): the node's chosen next-pointer path
         ran through a deleted edge. *)
  | Kws_shorter_kdist
      (* IncKWS+ (Fig. 1): an insertion (or a re-settled successor) offers
         a strictly shorter keyword distance. *)
  | Rpq_support_lost
      (* IncRPQ identAff: a product-graph marking lost its last
         distance-(d-1) predecessor. *)
  | Rpq_dist_decrease
      (* IncRPQ settle: a product-graph key gained a marking (or a shorter
         one) through an inserted edge. *)
  | Scc_local_tarjan
      (* IncSCC−: member of a component re-certified by a local Tarjan
         run (possible split). *)
  | Scc_rank_swap
      (* IncSCC+ (Fig. 7 lines 4-9): component inside the affected rank
         region of an order-violating insertion. *)
  | Sim_support_zero
      (* IncSim cascade: a match pair's support counter hit zero. *)
  | Sim_revalidated
      (* IncSim insertion: a candidate pair re-entered the greatest
         simulation after revalidation. *)
  | Iso_match_broken
      (* IncISO step (1): a match subgraph used a deleted edge. *)
  | Iso_ball_rematch
      (* IncISO steps (2)-(3): a fresh match found by the localized VF2
         run over the d_Q-ball of the inserted edges. *)

let rule_name = function
  | Kws_next_on_deleted -> "Kws_next_on_deleted"
  | Kws_shorter_kdist -> "Kws_shorter_kdist"
  | Rpq_support_lost -> "Rpq_support_lost"
  | Rpq_dist_decrease -> "Rpq_dist_decrease"
  | Scc_local_tarjan -> "Scc_local_tarjan"
  | Scc_rank_swap -> "Scc_rank_swap"
  | Sim_support_zero -> "Sim_support_zero"
  | Sim_revalidated -> "Sim_revalidated"
  | Iso_match_broken -> "Iso_match_broken"
  | Iso_ball_rematch -> "Iso_ball_rematch"

let all_rules =
  [
    Kws_next_on_deleted;
    Kws_shorter_kdist;
    Rpq_support_lost;
    Rpq_dist_decrease;
    Scc_local_tarjan;
    Scc_rank_swap;
    Sim_support_zero;
    Sim_revalidated;
    Iso_match_broken;
    Iso_ball_rematch;
  ]

type event =
  | Aff_enter of { node : int; rule : rule }
      (* [node] enters AFF because [rule] fired. For SCC rank events the
         "node" is a component id (the unit the rank order lives on). *)
  | Cert_rewrite of { node : int; field : string; before : string; after : string }
  | Frontier_expand of { node : int }
      (* [node] enqueued for (re)settling — one event per queue push. *)
  | Span_begin of string
  | Span_end of string
  | Compaction of { edges : int; overlay : int }
      (* A CSR overlay was folded into the frozen base: [edges] in the
         rebuilt base, [overlay] overlay entries absorbed. Deterministic
         fields only — the compaction latency goes to the Obs histograms,
         so traces stay byte-identical across runs. *)
  | Slo_violation of { rule : string; value : float; limit : float }
      (* An armed SLO budget tripped at a flight-recorder snapshot:
         [rule]'s measured [value] exceeded its [limit]. *)

type entry = { seq : int; event : event }

type buf = {
  cap : int;
  ring : entry array;
  mutable len : int;   (* live entries, <= cap *)
  mutable head : int;  (* next write position *)
  mutable next_seq : int;
  mutable dropped : int;
}

type t = Noop | Buf of buf

let noop = Noop
let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  Buf
    {
      cap = capacity;
      ring = Array.make capacity { seq = 0; event = Span_begin "" };
      len = 0;
      head = 0;
      next_seq = 0;
      dropped = 0;
    }

let enabled = function Noop -> false | Buf _ -> true
let capacity = function Noop -> 0 | Buf b -> b.cap
let length = function Noop -> 0 | Buf b -> b.len
let dropped = function Noop -> 0 | Buf b -> b.dropped

let push b event =
  b.ring.(b.head) <- { seq = b.next_seq; event };
  b.next_seq <- b.next_seq + 1;
  b.head <- (b.head + 1) mod b.cap;
  if b.len < b.cap then b.len <- b.len + 1 else b.dropped <- b.dropped + 1

let emit t event = match t with Noop -> () | Buf b -> push b event

let aff_enter t ~node ~rule =
  match t with Noop -> () | Buf b -> push b (Aff_enter { node; rule })

let cert_rewrite t ~node ~field ~before ~after =
  match t with
  | Noop -> ()
  | Buf b -> push b (Cert_rewrite { node; field; before; after })

let frontier_expand t ~node =
  match t with Noop -> () | Buf b -> push b (Frontier_expand { node })

let compaction t ~edges ~overlay =
  match t with Noop -> () | Buf b -> push b (Compaction { edges; overlay })

let slo_violation t ~rule ~value ~limit =
  match t with
  | Noop -> ()
  | Buf b -> push b (Slo_violation { rule; value; limit })

let span_begin t name =
  match t with Noop -> () | Buf b -> push b (Span_begin name)

let span_end t name =
  match t with Noop -> () | Buf b -> push b (Span_end name)

let with_span t name f =
  match t with
  | Noop -> f ()
  | Buf _ ->
      span_begin t name;
      Fun.protect ~finally:(fun () -> span_end t name) f

(* Forget buffered events (the logical clock keeps running, so snapshots
   taken across a clear still order globally). Used to scope a trace to
   one update: clear, apply, snapshot. *)
let clear = function
  | Noop -> ()
  | Buf b ->
      b.len <- 0;
      b.head <- 0;
      b.dropped <- 0

(* ---- snapshots ----------------------------------------------------------- *)

type snapshot = { entries : entry list; (* oldest first *) drops : int }

let empty_snapshot = { entries = []; drops = 0 }

let snapshot = function
  | Noop -> empty_snapshot
  | Buf b ->
      let start = (b.head - b.len + (2 * b.cap)) mod b.cap in
      let acc = ref [] in
      for i = b.len - 1 downto 0 do
        acc := b.ring.((start + i) mod b.cap) :: !acc
      done;
      { entries = !acc; drops = b.dropped }

let events t = (snapshot t).entries

(* Per-rule counts of the Aff_enter events, sorted by rule name: the
   provenance histogram [incgraph explain] prints per update. *)
let rule_histogram snap =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.event with
      | Aff_enter { rule; _ } ->
          let k = rule_name rule in
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      | _ -> ())
    snap.entries;
  Obs.sorted_bindings ~compare:String.compare tbl

(* Per-field counts of certificate rewrites. *)
let field_histogram snap =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.event with
      | Cert_rewrite { field; _ } ->
          Hashtbl.replace tbl field
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl field))
      | _ -> ())
    snap.entries;
  Obs.sorted_bindings ~compare:String.compare tbl
