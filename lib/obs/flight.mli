(** Flight recorder: periodic registry snapshots with bounded retention.

    Snapshots the {!Obs} registry every [every] {e applied updates} — a
    logical cadence, so the snapshot stream is a pure function of the
    workload and two runs of the same update sequence emit files at the
    same points (the property @trace-determinism diffs). Each snapshot
    writes a [metrics-<seq>.prom] exposition into a ring of at most
    [retain] files, renames the newest into the stable [metrics.prom]
    scrape target, and appends a [{seq; updates; metrics; slo}] line to
    [metrics.jsonl] (compacted to the newest [retain] lines whenever it
    doubles). An armed {!Slo} tracker is evaluated at every snapshot,
    so trip transitions land in the tracer at snapshot granularity. *)

type t

val create :
  ?every:int ->
  ?retain:int ->
  ?deterministic:bool ->
  ?slo:Slo.t ->
  ?trace:Tracer.t ->
  dir:string ->
  obs:Obs.t ->
  unit ->
  t
(** [every] defaults to 1 (snapshot each update), [retain] to 32. The
    directory must already exist. [~deterministic:true] renders the
    clock-free exposition (see {!Openmetrics.render}) and filters the
    JSONL metrics the same way. @raise Invalid_argument when [every] or
    [retain] is below 1. *)

val tick : t -> unit
(** Count one applied update; snapshots when the cadence comes due. *)

val snapshot : t -> unit
(** Force a snapshot now (also evaluates the SLO tracker). *)

val dir : t -> string

val updates : t -> int
(** Updates ticked so far. *)

val snapshots : t -> int
(** Snapshots written so far. *)

val slo : t -> Slo.t option
