(* OpenMetrics / Prometheus text exposition for the Obs registry.

   One rendering ([render]) and its structural inverse ([samples] /
   [validate]). Counters become [<name>_total] with a counter TYPE,
   gauges stay bare, timers and span aggregates become labelled counter
   families, and every log-bucketed [Histogram] becomes a native
   Prometheus histogram: cumulative [le] buckets whose edges are the
   upper bounds of the non-empty log buckets, a [+Inf] bucket, [_sum]
   and [_count]. The exposition ends with the mandatory [# EOF] marker.

   Determinism: with [~deterministic:true] every clock- or GC-derived
   series is dropped — timers, span seconds (span call counts stay) and
   any histogram whose name ends in [_s] or starts with [gc_]. What
   remains (counters, gauges, work histograms such as
   [csr_compact_bytes]) is a pure function of the update sequence, so
   two runs of the same workload render byte-identical text regardless
   of hash seed or machine speed. The flight recorder uses this mode
   under @trace-determinism. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* Legal metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri (fun i c -> if not (is_name_char c) then Bytes.set b i '_') b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Canonical float spelling: integers without a point, everything else
   at full round-trip precision — byte-stable for equal inputs. *)
let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Series whose values depend on the clock or the GC rather than on the
   update sequence alone; the deterministic rendering drops them. *)
let clock_derived name =
  let n = String.length name in
  (n >= 2 && String.sub name (n - 2) 2 = "_s")
  || (n >= 3 && String.sub name 0 3 = "gc_")

let render ?(deterministic = false) obs =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  List.iter
    (fun (k, v) ->
      let n = sanitize k in
      line "# TYPE %s counter" n;
      line "%s_total %d" n v)
    (Obs.counters obs);
  List.iter
    (fun (k, v) ->
      let n = sanitize k in
      line "# TYPE %s gauge" n;
      line "%s %d" n v)
    (Obs.gauges obs);
  (if not deterministic then
     match Obs.timers obs with
     | [] -> ()
     | ts ->
         line "# TYPE ig_timer_seconds counter";
         List.iter
           (fun (k, v) ->
             line "ig_timer_seconds_total{timer=\"%s\"} %s" (escape_label k)
               (fnum v))
           ts);
  (match Obs.spans obs with
  | [] -> ()
  | ss ->
      line "# TYPE ig_span_calls counter";
      List.iter
        (fun (k, (n, _)) ->
          line "ig_span_calls_total{span=\"%s\"} %d" (escape_label k) n)
        ss;
      if not deterministic then begin
        line "# TYPE ig_span_seconds counter";
        List.iter
          (fun (k, (_, s)) ->
            line "ig_span_seconds_total{span=\"%s\"} %s" (escape_label k)
              (fnum s))
          ss
      end);
  List.iter
    (fun (k, h) ->
      if not (deterministic && clock_derived k) then begin
        let n = sanitize k in
        line "# TYPE %s histogram" n;
        let cum = ref 0 in
        List.iter
          (fun (i, c) ->
            cum := !cum + c;
            let _, hi = Histogram.bucket_bounds i in
            line "%s_bucket{le=\"%s\"} %d" n (fnum hi) !cum)
          (Histogram.nonzero_buckets h);
        line "%s_bucket{le=\"+Inf\"} %d" n (Histogram.count h);
        line "%s_sum %s" n (fnum (Histogram.sum h));
        line "%s_count %d" n (Histogram.count h)
      end)
    (Obs.histograms obs);
  line "# EOF";
  Buffer.contents buf

(* ---- parsing --------------------------------------------------------------

   A hand-rolled parser for the dialect [render] emits (which is legal
   OpenMetrics): it exists so the validator and the tests can read an
   exposition back without trusting the writer. *)

type sample = {
  name : string;
  labels : (string * string) list;
  value : float;
}

let parse_sample ln =
  let n = String.length ln in
  let i = ref 0 in
  while !i < n && is_name_char ln.[!i] do
    incr i
  done;
  if !i = 0 then Error "sample: empty metric name"
  else begin
    let name = String.sub ln 0 !i in
    let labels = ref [] in
    let err = ref None in
    (if !i < n && ln.[!i] = '{' then begin
       incr i;
       let cont = ref true in
       while !cont && !err = None do
         if !i < n && ln.[!i] = '}' then begin
           incr i;
           cont := false
         end
         else begin
           let j = ref !i in
           while !j < n && is_name_char ln.[!j] do
             incr j
           done;
           if !j = !i || !j >= n || ln.[!j] <> '=' then
             err := Some "sample: malformed label name"
           else begin
             let key = String.sub ln !i (!j - !i) in
             i := !j + 1;
             if !i >= n || ln.[!i] <> '"' then
               err := Some "sample: label value not quoted"
             else begin
               incr i;
               let b = Buffer.create 16 in
               let fin = ref false in
               while (not !fin) && !err = None do
                 if !i >= n then err := Some "sample: unterminated label value"
                 else
                   match ln.[!i] with
                   | '"' ->
                       incr i;
                       fin := true
                   | '\\' ->
                       if !i + 1 >= n then err := Some "sample: dangling escape"
                       else begin
                         (match ln.[!i + 1] with
                         | 'n' -> Buffer.add_char b '\n'
                         | c -> Buffer.add_char b c);
                         i := !i + 2
                       end
                   | c ->
                       Buffer.add_char b c;
                       incr i
               done;
               if !err = None then begin
                 labels := (key, Buffer.contents b) :: !labels;
                 if !i < n && ln.[!i] = ',' then incr i
               end
             end
           end
         end
       done
     end);
    match !err with
    | Some e -> Error e
    | None ->
        if !i >= n || ln.[!i] <> ' ' then
          Error "sample: missing space before value"
        else
          let v = String.trim (String.sub ln (!i + 1) (n - !i - 1)) in
          (match float_of_string_opt v with
          | Some value -> Ok { name; labels = List.rev !labels; value }
          | None -> Error (Printf.sprintf "sample: unparsable value %S" v))
  end

let strip_suffix name sfx =
  let n = String.length name and s = String.length sfx in
  if n > s && String.sub name (n - s) s = sfx then
    Some (String.sub name 0 (n - s))
  else None

let logical_lines text =
  let lines = String.split_on_char '\n' text in
  match List.rev lines with "" :: rest -> List.rev rest | _ -> lines

let samples text =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  List.fold_left
    (fun acc ln ->
      let* acc = acc in
      if ln = "" || (String.length ln > 0 && ln.[0] = '#') then Ok acc
      else
        let* s = parse_sample ln in
        Ok (s :: acc))
    (Ok []) (logical_lines text)
  |> Result.map List.rev

(* ---- validation -----------------------------------------------------------

   Structural checks over one exposition: every sample needs a matching
   [# TYPE] (counters via their [_total] suffix, histograms via
   [_bucket]/[_sum]/[_count]), histogram buckets must be contiguous with
   strictly increasing [le] edges and non-decreasing cumulative counts
   ending in [+Inf], [_count] must equal the [+Inf] bucket, and the text
   must end with [# EOF]. Returns the number of samples. *)

type hist_state = {
  family : string;
  mutable last_le : float;
  mutable last_cum : float;
  mutable inf_count : float option;
  mutable saw_sum : bool;
}

let validate text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let cur : hist_state option ref = ref None in
  let n_samples = ref 0 in
  let eof = ref false in
  let check_close () =
    match !cur with
    | None -> Ok ()
    | Some h ->
        Error (Printf.sprintf "histogram %s not closed by _sum/_count" h.family)
  in
  let sample_kind s =
    (* (family, role) for a sample name, resolved against declared types. *)
    let family_is name kind =
      match Hashtbl.find_opt types name with
      | Some k -> k = kind
      | None -> false
    in
    match strip_suffix s.name "_total" with
    | Some f when family_is f "counter" -> Ok (f, `Counter)
    | _ -> (
        match strip_suffix s.name "_bucket" with
        | Some f when family_is f "histogram" -> Ok (f, `Bucket)
        | _ -> (
            match strip_suffix s.name "_sum" with
            | Some f when family_is f "histogram" -> Ok (f, `Sum)
            | _ -> (
                match strip_suffix s.name "_count" with
                | Some f when family_is f "histogram" -> Ok (f, `Count)
                | _ ->
                    if family_is s.name "gauge" then Ok (s.name, `Gauge)
                    else
                      Error
                        (Printf.sprintf "sample %s has no matching # TYPE"
                           s.name))))
  in
  let check_sample s =
    let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
    let* family, role = sample_kind s in
    incr n_samples;
    match role with
    | `Counter | `Gauge ->
        let* () = check_close () in
        if s.value < 0.0 && role = `Counter then
          Error (Printf.sprintf "counter %s is negative" s.name)
        else Ok ()
    | `Bucket -> (
        let* h =
          match !cur with
          | Some h when h.family = family -> Ok h
          | Some h ->
              Error
                (Printf.sprintf "histogram %s interleaved with %s" h.family
                   family)
          | None ->
              let h =
                {
                  family;
                  last_le = neg_infinity;
                  last_cum = neg_infinity;
                  inf_count = None;
                  saw_sum = false;
                }
              in
              cur := Some h;
              Ok h
        in
        if h.inf_count <> None then
          Error (Printf.sprintf "histogram %s: bucket after +Inf" family)
        else
          match List.assoc_opt "le" s.labels with
          | None -> Error (Printf.sprintf "histogram %s: bucket without le" family)
          | Some "+Inf" ->
              if s.value < h.last_cum then
                Error
                  (Printf.sprintf "histogram %s: +Inf count below last bucket"
                     family)
              else begin
                h.inf_count <- Some s.value;
                Ok ()
              end
          | Some le_s -> (
              match float_of_string_opt le_s with
              | None ->
                  Error
                    (Printf.sprintf "histogram %s: unparsable le %S" family
                       le_s)
              | Some le ->
                  if le <= h.last_le then
                    Error
                      (Printf.sprintf
                         "histogram %s: le edges not strictly increasing"
                         family)
                  else if s.value < h.last_cum then
                    Error
                      (Printf.sprintf
                         "histogram %s: cumulative counts decreased" family)
                  else begin
                    h.last_le <- le;
                    h.last_cum <- s.value;
                    Ok ()
                  end))
    | `Sum -> (
        match !cur with
        | Some h when h.family = family && h.inf_count <> None && not h.saw_sum
          ->
            h.saw_sum <- true;
            Ok ()
        | _ ->
            Error
              (Printf.sprintf "histogram %s: _sum out of order (needs +Inf first)"
                 family))
    | `Count -> (
        match !cur with
        | Some h when h.family = family && h.saw_sum -> (
            match h.inf_count with
            | Some inf when inf = s.value ->
                cur := None;
                Ok ()
            | Some inf ->
                Error
                  (Printf.sprintf
                     "histogram %s: _count %g <> +Inf bucket %g" family
                     s.value inf)
            | None -> Error (Printf.sprintf "histogram %s: missing +Inf" family))
        | _ ->
            Error
              (Printf.sprintf "histogram %s: _count out of order (needs _sum)"
                 family))
  in
  let check_line ln =
    let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
    if !eof then Error "content after # EOF"
    else if ln = "# EOF" then
      let* () = check_close () in
      eof := true;
      Ok ()
    else if ln = "" then Ok ()
    else if String.length ln >= 7 && String.sub ln 0 7 = "# TYPE " then
      let* () = check_close () in
      match String.split_on_char ' ' (String.sub ln 7 (String.length ln - 7)) with
      | [ name; kind ] when List.mem kind [ "counter"; "gauge"; "histogram" ]
        ->
          if Hashtbl.mem types name then
            Error (Printf.sprintf "duplicate # TYPE for %s" name)
          else begin
            Hashtbl.replace types name kind;
            Ok ()
          end
      | _ -> Error (Printf.sprintf "malformed TYPE line %S" ln)
    else if ln.[0] = '#' then Ok () (* HELP/UNIT and other comments *)
    else
      let* s = parse_sample ln in
      check_sample s
  in
  let rec go i = function
    | [] -> if !eof then Ok !n_samples else Error "missing # EOF terminator"
    | ln :: rest -> (
        match check_line ln with
        | Ok () -> go (i + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" (i + 1) e))
  in
  go 0 (logical_lines text)

(* Cheap content sniff for artifact dispatch (bench/validate.exe): an
   exposition starts with a TYPE line, or is the empty-registry "# EOF". *)
let looks_like text =
  (String.length text >= 7 && String.sub text 0 7 = "# TYPE ")
  || (String.length text >= 5 && String.sub text 0 5 = "# EOF")
