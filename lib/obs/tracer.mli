(** Structured event tracing with AFF provenance.

    Where the {!Obs} registry answers "how much work did an engine do"
    (|AFF|, cert_rewrites, queue_pushes), the tracer answers "why": every
    node that enters AFF is stamped with the {e rule} of the paper's
    pseudocode that put it there, every certificate rewrite records the
    field and its before/after values, and frontier expansions record the
    propagation order. Events land in a bounded ring buffer: when it
    wraps, the oldest events are dropped and counted, so tracing a long
    soak costs O(capacity) memory and the tail — the part that explains a
    failure — is always retained.

    Sequence numbers are a logical clock (no wall-clock reads), so a
    trace of a seeded run is bit-for-bit deterministic. *)

(** Which case of the paper's algorithms put a node into AFF. *)
type rule =
  | Kws_next_on_deleted
      (** IncKWS− (Fig. 3 lines 1-6): the node's chosen next-pointer path
          ran through a deleted edge. *)
  | Kws_shorter_kdist
      (** IncKWS+ (Fig. 1): an insertion (or a re-settled successor)
          offers a strictly shorter keyword distance. *)
  | Rpq_support_lost
      (** IncRPQ identAff: a product-graph marking lost its last
          distance-(d-1) predecessor. *)
  | Rpq_dist_decrease
      (** IncRPQ settle: a product-graph key gained a marking (or a
          shorter one) through an inserted edge. *)
  | Scc_local_tarjan
      (** IncSCC−: member of a component re-certified by a local Tarjan
          run (possible split). *)
  | Scc_rank_swap
      (** IncSCC+ (Fig. 7 lines 4-9): component inside the affected rank
          region of an order-violating insertion. *)
  | Sim_support_zero  (** IncSim cascade: a pair's support hit zero. *)
  | Sim_revalidated
      (** IncSim insertion: a candidate pair re-entered the greatest
          simulation after revalidation. *)
  | Iso_match_broken
      (** IncISO step (1): a match subgraph used a deleted edge. *)
  | Iso_ball_rematch
      (** IncISO steps (2)-(3): a fresh match found by the localized VF2
          run over the d_Q-ball of the inserted edges. *)

val rule_name : rule -> string
val all_rules : rule list

type event =
  | Aff_enter of { node : int; rule : rule }
      (** [node] enters AFF because [rule] fired. For SCC rank events the
          "node" is a component id (the unit the rank order lives on). *)
  | Cert_rewrite of {
      node : int;
      field : string;
      before : string;
      after : string;
    }
  | Frontier_expand of { node : int }
      (** [node] enqueued for (re)settling — one event per queue push. *)
  | Span_begin of string
  | Span_end of string
  | Compaction of { edges : int; overlay : int }
      (** A CSR overlay was folded into the frozen base: [edges] in the
          rebuilt base, [overlay] overlay entries absorbed. Carries only
          deterministic fields; the latency lives in the Obs histograms. *)
  | Slo_violation of { rule : string; value : float; limit : float }
      (** An armed SLO budget tripped at a flight-recorder snapshot:
          [rule]'s measured [value] exceeded its [limit]. *)

type entry = { seq : int; event : event }

type t
(** A tracer handle; {!noop} costs one branch per probe. *)

val noop : t
val default_capacity : int

val create : ?capacity:int -> unit -> t
(** Ring-buffered tracer. @raise Invalid_argument when [capacity <= 0]. *)

val enabled : t -> bool
val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events lost to ring wrap-around since the last {!clear}. *)

val emit : t -> event -> unit
val aff_enter : t -> node:int -> rule:rule -> unit

val cert_rewrite :
  t -> node:int -> field:string -> before:string -> after:string -> unit

val frontier_expand : t -> node:int -> unit
val compaction : t -> edges:int -> overlay:int -> unit
val slo_violation : t -> rule:string -> value:float -> limit:float -> unit
val span_begin : t -> string -> unit
val span_end : t -> string -> unit

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Balanced span even on exceptions. *)

val clear : t -> unit
(** Forget buffered events. The logical clock keeps running, so
    snapshots taken across a clear still order globally. *)

type snapshot = { entries : entry list;  (** oldest first *) drops : int }

val empty_snapshot : snapshot
val snapshot : t -> snapshot
val events : t -> entry list

val rule_histogram : snapshot -> (string * int) list
(** Per-rule counts of the [Aff_enter] events, sorted by rule name: the
    provenance histogram [incgraph explain] prints per update. *)

val field_histogram : snapshot -> (string * int) list
(** Per-field counts of certificate rewrites, sorted by field name. *)
