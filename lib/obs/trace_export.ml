(* Export tracer snapshots.

   Two renderings of the same [Tracer.snapshot]:

   - Chrome trace-event JSON (the "JSON Array Format" with a [traceEvents]
     wrapper object), loadable in Perfetto / chrome://tracing. Span
     begin/end become "B"/"E" duration events; Aff_enter, Cert_rewrite and
     Frontier_expand become thread-scoped instant events ("ph": "i") whose
     [args] carry the provenance (node, rule, field, before/after).
     Timestamps are the tracer's logical sequence numbers (1 event = 1 µs),
     so exports of seeded runs are byte-for-byte deterministic — no
     wall-clock reads anywhere in this module.

   - A human-readable "explain" rendering: rule and field histograms first
     (the per-update AFF provenance), then the event log.

   [validate] is the structural checker behind bench/validate.exe and the
   @trace-smoke alias: traceEvents must be a well-formed event array, B/E
   spans must nest, timestamps must be non-decreasing, and every aff_enter
   instant must carry a rule tag. *)

module J = Json

(* ---- Chrome trace-event emission ----------------------------------------- *)

let base ~name ~cat ~ph ~ts ~pid ~tid extra =
  J.Obj
    ([
       ("name", J.Str name);
       ("cat", J.Str cat);
       ("ph", J.Str ph);
       ("ts", J.Int ts);
       ("pid", J.Int pid);
       ("tid", J.Int tid);
     ]
    @ extra)

let instant ~name ~cat ~ts ~pid ~tid args =
  base ~name ~cat ~ph:"i" ~ts ~pid ~tid
    [ ("s", J.Str "t"); ("args", J.Obj args) ]

let event_json ~pid ~tid (e : Tracer.entry) =
  let ts = e.Tracer.seq in
  match e.Tracer.event with
  | Tracer.Span_begin name -> base ~name ~cat:"engine" ~ph:"B" ~ts ~pid ~tid []
  | Tracer.Span_end name -> base ~name ~cat:"engine" ~ph:"E" ~ts ~pid ~tid []
  | Tracer.Aff_enter { node; rule } ->
      instant ~name:"aff_enter" ~cat:"aff" ~ts ~pid ~tid
        [ ("node", J.Int node); ("rule", J.Str (Tracer.rule_name rule)) ]
  | Tracer.Cert_rewrite { node; field; before; after } ->
      instant ~name:"cert_rewrite" ~cat:"cert" ~ts ~pid ~tid
        [
          ("node", J.Int node);
          ("field", J.Str field);
          ("before", J.Str before);
          ("after", J.Str after);
        ]
  | Tracer.Frontier_expand { node } ->
      instant ~name:"frontier_expand" ~cat:"frontier" ~ts ~pid ~tid
        [ ("node", J.Int node) ]
  | Tracer.Compaction { edges; overlay } ->
      instant ~name:"compaction" ~cat:"storage" ~ts ~pid ~tid
        [ ("edges", J.Int edges); ("overlay", J.Int overlay) ]
  | Tracer.Slo_violation { rule; value; limit } ->
      instant ~name:"slo_violation" ~cat:"slo" ~ts ~pid ~tid
        [ ("rule", J.Str rule); ("value", J.Float value); ("limit", J.Float limit) ]

let to_chrome ?(pid = 0) ?(tid = 0) ~name (snap : Tracer.snapshot) =
  let meta =
    J.Obj
      [
        ("name", J.Str "process_name");
        ("ph", J.Str "M");
        ("pid", J.Int pid);
        ("tid", J.Int tid);
        ("args", J.Obj [ ("name", J.Str name) ]);
      ]
  in
  J.Obj
    [
      ( "traceEvents",
        J.Arr (meta :: List.map (event_json ~pid ~tid) snap.Tracer.entries) );
      ("displayTimeUnit", J.Str "ms");
      ( "otherData",
        J.Obj
          [
            ("tool", J.Str "incgraph");
            ("dropped_events", J.Int snap.Tracer.drops);
          ] );
    ]

let write_chrome ~path ?pid ?tid ~name snap =
  let oc = (open_out [@lint.allow "D3"]) path in
  output_string oc (J.to_string ~indent:true (to_chrome ?pid ?tid ~name snap));
  output_char oc '\n';
  close_out oc

(* ---- validation ----------------------------------------------------------- *)

(* Returns the number of trace events on success. *)
let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* events =
    match Option.bind (J.member "traceEvents" json) J.to_list_opt with
    | Some es -> Ok es
    | None -> Error "missing or ill-typed \"traceEvents\" array"
  in
  let str k e = Option.bind (J.member k e) J.to_str_opt in
  let int k e = Option.bind (J.member k e) J.to_int_opt in
  let known_ph = [ "B"; "E"; "i"; "I"; "M"; "X" ] in
  let check_one (i, last_ts, stack) e =
    let where what = Error (Printf.sprintf "event %d: %s" i what) in
    match (str "name" e, str "ph" e) with
    | None, _ -> where "missing \"name\""
    | _, None -> where "missing \"ph\""
    | Some name, Some ph ->
        if not (List.mem ph known_ph) then
          where (Printf.sprintf "unknown phase %S" ph)
        else if ph = "M" then Ok (i + 1, last_ts, stack)
        else begin
          match (int "ts" e, int "pid" e, int "tid" e) with
          | None, _, _ -> where "missing integer \"ts\""
          | _, None, _ | _, _, None -> where "missing integer \"pid\"/\"tid\""
          | Some ts, Some _, Some _ ->
              if ts < last_ts then
                where
                  (Printf.sprintf "timestamp went backwards (%d after %d)" ts
                     last_ts)
              else
                let* stack =
                  match ph with
                  | "B" -> Ok (name :: stack)
                  | "E" -> (
                      match stack with
                      | top :: rest when top = name -> Ok rest
                      | top :: _ ->
                          where
                            (Printf.sprintf "span %S closed while %S is open"
                               name top)
                      | [] ->
                          (* Tolerated: a wrapped ring buffer can lose the
                             matching B of an early span. *)
                          Ok [])
                  | _ -> Ok stack
                in
                let* () =
                  if name = "aff_enter" then
                    match
                      Option.bind (J.member "args" e) (fun a ->
                          match (str "rule" a, int "node" a) with
                          | Some r, Some _ when r <> "" -> Some r
                          | _ -> None)
                    with
                    | Some _ -> Ok ()
                    | None -> where "aff_enter without a rule tag / node"
                  else Ok ()
                in
                let* () =
                  if name = "slo_violation" then
                    match
                      Option.bind (J.member "args" e) (fun a ->
                          match str "rule" a with
                          | Some r when r <> "" -> Some r
                          | _ -> None)
                    with
                    | Some _ -> Ok ()
                    | None -> where "slo_violation without a rule tag"
                  else Ok ()
                in
                Ok (i + 1, ts, stack)
        end
  in
  let* n, _, _ =
    List.fold_left
      (fun acc e ->
        let* st = acc in
        check_one st e)
      (Ok (0, min_int, []))
      events
  in
  (* Leftover open spans are tolerated (a trace can end mid-span when the
     engine is snapshotted inside a batch); crossed spans were rejected
     above. *)
  Ok n

(* ---- explain rendering ----------------------------------------------------- *)

let pp_event ppf (e : Tracer.entry) =
  match e.Tracer.event with
  | Tracer.Aff_enter { node; rule } ->
      Format.fprintf ppf "#%-6d aff_enter        node=%d rule=%s" e.Tracer.seq
        node (Tracer.rule_name rule)
  | Tracer.Cert_rewrite { node; field; before; after } ->
      Format.fprintf ppf "#%-6d cert_rewrite     node=%d %s: %s -> %s"
        e.Tracer.seq node field before after
  | Tracer.Frontier_expand { node } ->
      Format.fprintf ppf "#%-6d frontier_expand  node=%d" e.Tracer.seq node
  | Tracer.Span_begin name ->
      Format.fprintf ppf "#%-6d span_begin       %s" e.Tracer.seq name
  | Tracer.Span_end name ->
      Format.fprintf ppf "#%-6d span_end         %s" e.Tracer.seq name
  | Tracer.Compaction { edges; overlay } ->
      Format.fprintf ppf "#%-6d compaction       edges=%d overlay=%d"
        e.Tracer.seq edges overlay
  | Tracer.Slo_violation { rule; value; limit } ->
      Format.fprintf ppf "#%-6d SLO VIOLATION    rule=%s value=%g limit=%g"
        e.Tracer.seq rule value limit

(* Histograms first (the provenance summary), then up to [limit] raw
   events. [limit < 0] prints everything. *)
let pp_explain ?(limit = 20) ppf (snap : Tracer.snapshot) =
  let n = List.length snap.Tracer.entries in
  Format.fprintf ppf "@[<v>%d event(s)%s@," n
    (if snap.Tracer.drops > 0 then
       Printf.sprintf " (ring buffer dropped %d older)" snap.Tracer.drops
     else "");
  (match Tracer.rule_histogram snap with
  | [] -> Format.fprintf ppf "AFF provenance: none (no node entered AFF)@,"
  | hist ->
      Format.fprintf ppf "AFF provenance (rule -> nodes):@,";
      List.iter
        (fun (r, c) -> Format.fprintf ppf "  %-22s %6d@," r c)
        hist);
  (match Tracer.field_histogram snap with
  | [] -> ()
  | hist ->
      Format.fprintf ppf "certificate rewrites (field -> count):@,";
      List.iter
        (fun (f, c) -> Format.fprintf ppf "  %-22s %6d@," f c)
        hist);
  (* SLO breaches are the events an operator is hunting for — surface them
     even when the raw log below is truncated. *)
  let violations =
    List.filter
      (fun e ->
        match e.Tracer.event with Tracer.Slo_violation _ -> true | _ -> false)
      snap.Tracer.entries
  in
  if violations <> [] then begin
    Format.fprintf ppf "SLO violations (%d):@," (List.length violations);
    List.iter (fun e -> Format.fprintf ppf "  %a@," pp_event e) violations
  end;
  let shown =
    if limit < 0 || n <= limit then snap.Tracer.entries
    else List.filteri (fun i _ -> i < limit) snap.Tracer.entries
  in
  if shown <> [] then begin
    Format.fprintf ppf "event log%s:@,"
      (if List.length shown < n then
         Printf.sprintf " (first %d of %d)" (List.length shown) n
       else "");
    List.iter (fun e -> Format.fprintf ppf "  %a@," pp_event e) shown
  end;
  Format.fprintf ppf "@]"

let explain_to_string ?limit snap =
  Format.asprintf "%a" (pp_explain ?limit) snap
