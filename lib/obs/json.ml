(* Minimal JSON: enough to emit and re-read BENCH reports and metric
   snapshots without depending on yojson (not in the build image). The
   emitter always produces valid JSON; the parser accepts standard JSON
   with the one restriction that \u escapes decode only the ASCII range
   (BENCH files never contain anything else). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- emission ----------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_literal f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    "null" (* JSON has no NaN/inf; a null timing is visibly wrong, not silent *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit ~indent b level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_literal f)
  | Str s -> escape_string b s
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
      Buffer.add_char b '[';
      sep ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            sep ()
          end;
          pad (level + 1);
          emit ~indent b (level + 1) x)
        xs;
      sep ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_char b '{';
      sep ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            sep ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          emit ~indent b (level + 1) x)
        kvs;
      sep ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 1024 in
  emit ~indent b 0 v;
  Buffer.contents b

(* ---- parsing ------------------------------------------------------------- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char b e; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then error "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> error "bad \\u escape");
              go ()
          | _ -> error "bad escape")
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> error "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ----------------------------------------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr xs -> Some xs | _ -> None
let to_obj_opt = function Obj kvs -> Some kvs | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
