(** Export tracer snapshots.

    Two renderings of the same {!Tracer.snapshot}: Chrome trace-event
    JSON (loadable in Perfetto / chrome://tracing) and a human-readable
    "explain" rendering. Timestamps are the tracer's logical sequence
    numbers (1 event = 1 µs), so exports of seeded runs are byte-for-byte
    deterministic — no wall-clock reads anywhere in this module. *)

val to_chrome : ?pid:int -> ?tid:int -> name:string -> Tracer.snapshot -> Json.t
(** Chrome "JSON Array Format" with a [traceEvents] wrapper: span
    begin/end become "B"/"E" duration events; [Aff_enter],
    [Cert_rewrite] and [Frontier_expand] become thread-scoped instant
    events whose [args] carry the provenance. *)

val write_chrome :
  path:string -> ?pid:int -> ?tid:int -> name:string -> Tracer.snapshot -> unit

val validate : Json.t -> (int, string) result
(** Structural checker behind bench/validate.exe and the @trace-smoke
    alias: [traceEvents] must be a well-formed event array, B/E spans
    must nest, timestamps must be non-decreasing, and every [aff_enter]
    instant must carry a rule tag. Returns the number of trace events. *)

val pp_event : Format.formatter -> Tracer.entry -> unit

val pp_explain : ?limit:int -> Format.formatter -> Tracer.snapshot -> unit
(** Histograms first (the provenance summary), then up to [limit] raw
    events. [limit < 0] prints everything; default 20. *)

val explain_to_string : ?limit:int -> Tracer.snapshot -> string
