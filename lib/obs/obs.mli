(** Cost-accounting observability.

    A registry of named monotonic counters, gauges, timers, scoped spans
    and latency/allocation histograms. Every incremental engine takes one
    at creation; the default is {!noop}, a sink whose operations are
    single-branch no-ops, so engines nobody measures pay one match per
    probe and allocate nothing.

    The counters realize the paper's cost model: {!K.aff} is the measured
    |AFF| (certificate entries identified as affected), {!K.cert_rewrites}
    the entries actually rewritten, and {!K.changed} = |ΔG| + |ΔO| the
    size of the change. "Bounded" claims become assertions over ratios of
    these counters; "faster" claims become deltas between two BENCH json
    files built from them; tail-latency claims become quantiles of the
    {!K.apply_latency} histogram recorded by {!with_apply}.

    {2 Clock contract}

    Every duration this module measures — {!time}, {!span_begin} /
    {!span_end}, {!with_span}, {!with_apply} — is taken on the system
    monotonic clock ([CLOCK_MONOTONIC], nanosecond resolution), never the
    wall clock. Consequences:

    - durations can never be negative, regardless of NTP steps, DST
      changes or an operator resetting the system time mid-run;
    - timestamps ({!now_s}, {!now_ns}) are meaningful only as differences
      within a single process, not as absolute dates;
    - the clock does not tick while the machine is suspended (Linux
      [CLOCK_MONOTONIC] semantics), so a span across a suspend measures
      runtime, not elapsed civil time. *)

type t
(** A metrics sink: either the disabled {!noop} or a live registry from
    {!create}. *)

val noop : t
(** The disabled sink: every probe is a single branch, nothing is stored,
    every read returns the zero of its type. *)

val create : unit -> t
(** A fresh live registry. *)

val enabled : t -> bool
(** [false] exactly on {!noop}. *)

val sorted_bindings :
  compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings of a hash table sorted by key under [compare] — the
    sanctioned way to iterate a [Hashtbl] wherever the visit order could
    reach certificates, trace events or user-visible output, since raw
    [Hashtbl.iter]/[fold] order varies with the process hash seed. The
    relative order of duplicate-key bindings is unspecified. *)

val now_ns : unit -> int64
(** Monotonic timestamp, nanoseconds. Differences only. *)

val now_s : unit -> float
(** Monotonic timestamp, seconds. Differences only. *)

(** Canonical metric names, so engines and report consumers agree on
    spelling. *)
module K : sig
  val aff : string
  val cert_rewrites : string
  val nodes_visited : string
  val edges_relaxed : string
  val queue_pushes : string
  val changed : string
  val changed_input : string
  val changed_output : string

  val journal_ops : string
  (** Effective ops written to the durable journal. *)

  val journal_replayed : string
  (** Ops re-applied from the journal during recovery. *)

  val journal_undone : string
  (** Compensating undo batches appended. *)

  val snapshots : string
  (** Certificate snapshots written. *)

  val apply_latency : string
  (** Histogram of seconds per apply/batch call, recorded by
      {!with_apply}. *)

  val gc_minor_words : string
  (** Histogram of [Gc.quick_stat] minor-heap words allocated per
      apply/batch call. *)

  val gc_major_words : string
  (** Histogram of major-heap words (allocated directly or promoted) per
      apply/batch call. *)

  val gc_promoted_words : string
  (** Histogram of words promoted minor→major per apply/batch call. *)

  val csr_overlay_add : string
  (** Gauge: edges pending in the CSR add overlay. *)

  val csr_overlay_del : string
  (** Gauge: edges pending in the CSR delete overlay. *)

  val csr_compactions : string
  (** Counter: CSR overlay→base rebuilds performed. *)

  val csr_compact_latency : string
  (** Histogram of seconds per CSR compaction. *)

  val csr_compact_bytes : string
  (** Histogram of bytes copied per CSR compaction (rebuilt base arrays). *)

  val wal_append_latency : string
  (** Histogram of seconds per journal frame append (serialize + write). *)

  val wal_fsync_latency : string
  (** Histogram of seconds per journal fsync. *)

  val journal_replay_latency : string
  (** Histogram of seconds per recovery replay pass. *)

  val journal_undo_latency : string
  (** Histogram of seconds per compensating undo batch. *)

  val snapshot_write_latency : string
  (** Histogram of seconds per certificate snapshot write. *)

  val journal_bytes : string
  (** Gauge: bytes in the journal file after the last append. *)
end

(** {2 Counters} — monotonic; negative increments are rejected. *)

val add : t -> string -> int -> unit
(** @raise Invalid_argument on a negative increment (live sinks only). *)

val incr : t -> string -> unit
val counter : t -> string -> int

val note_changed_input : t -> int -> unit
(** Count effective input updates: adds to {!K.changed_input} and the
    {!K.changed} aggregate. *)

val note_changed_output : t -> int -> unit
(** Count output-delta entries: adds to {!K.changed_output} and the
    {!K.changed} aggregate. *)

(** {2 Gauges} — last-write-wins integers. *)

val set_gauge : t -> string -> int -> unit
val gauge : t -> string -> int

(** {2 Timers} — cumulative seconds on the monotonic clock. *)

val add_time : t -> string -> float -> unit
val time : t -> string -> (unit -> 'a) -> 'a
val timer : t -> string -> float

(** {2 Spans} — LIFO-scoped timed sections. *)

val span_begin : t -> string -> unit

val span_end : t -> string -> unit
(** @raise Invalid_argument when [name] is not the innermost open span. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Exception-safe [span_begin]/[span_end] pair. *)

val span : t -> string -> int * float
(** [(entries, cumulative seconds)] for a span name. *)

val span_depth : t -> int

val open_spans : t -> string list
(** Names of the currently open spans, innermost first. *)

(** {2 Histograms} — mergeable latency/allocation distributions. *)

val observe : t -> string -> float -> unit
(** Record one sample into a named {!Histogram}. *)

val observe_time : t -> string -> (unit -> 'a) -> 'a
(** Time the thunk on the monotonic clock into the [name] histogram —
    one sample per call ({!with_apply} minus the GC accounting and the
    reentrancy guard). On {!noop}: one branch, no clock read. *)

val histogram : t -> string -> Histogram.t option
(** The live histogram for a name; [None] on {!noop} or before the first
    {!observe}. The returned value aliases registry state — copy it
    ({!Histogram.copy}) to keep a snapshot. *)

val histograms : t -> (string * Histogram.t) list
(** All histograms, sorted by name. Values alias registry state. *)

val with_apply : t -> (unit -> 'a) -> 'a
(** Per-batch latency and allocation accounting: run the thunk, record its
    monotonic duration into the {!K.apply_latency} histogram and its
    [Gc.quick_stat] deltas into the [gc_*] histograms. Reentrant calls on
    the same registry record only at the outermost level, so a batch entry
    point that funnels through unit entry points contributes exactly one
    sample. On {!noop} this is a single branch. *)

(** {2 Snapshots} *)

val counters : t -> (string * int) list
(** Sorted by name; likewise for the other snapshot accessors. *)

val gauges : t -> (string * int) list
val timers : t -> (string * float) list
val spans : t -> (string * (int * float)) list

val reset : t -> unit
(** Clear everything (including histograms and the open-span stack); the
    sink stays live. *)

val diff_counters :
  prev:(string * int) list -> cur:(string * int) list -> (string * int) list
(** Counter snapshot difference: what a single update contributed. Keys
    are the union; values are [cur - prev] clamped at 0. *)

val to_json : t -> Json.t
(** Counters, gauges, timers, spans and histograms as one json object. *)
