(** Schema-versioned BENCH reports.

    One report = one bench invocation: tool identity, configuration, and
    a list of experiments, each a list of data points. A point carries
    the x-axis label, per-series wall-clock timings (seconds), per-series
    counter snapshots, per-series speedups against the point's batch
    baseline, and (schema v2) per-series latency/GC histograms. Two runs
    are compared by joining on (experiment id, point x, series); see
    {!compare_reports}. *)

val schema_version : int
val supported_versions : int list

type point = {
  x : string;
  timings : (string * float) list;
  counters : (string * (string * int) list) list;
  speedup : (string * float) list;
  hists : (string * (string * Histogram.t) list) list;
  gc : (string * (string * float) list) list;
}

type experiment = {
  id : string;
  title : string;
  mutable points : point list;  (** reverse insertion order *)
}

type t = {
  tool : string;
  created : float;
  config : (string * Json.t) list;
  mutable experiments : experiment list;  (** reverse insertion order *)
}

val create : tool:string -> config:(string * Json.t) list -> unit -> t

val experiment : t -> id:string -> title:string -> experiment
(** Find-or-create by [id]. *)

val add_point :
  experiment ->
  x:string ->
  ?timings:(string * float) list ->
  ?counters:(string * (string * int) list) list ->
  ?speedup:(string * float) list ->
  ?histograms:(string * (string * Histogram.t) list) list ->
  ?gc:(string * (string * float) list) list ->
  unit ->
  unit

val to_json : t -> Json.t
val write : path:string -> t -> unit

val validate : Json.t -> (unit, string) result
(** Structural schema check for consumers (the @bench-smoke and
    @bench-gate aliases, diff tooling). Accepts every version in
    {!supported_versions}; returns the first violation found. *)

val compare_timings :
  old_json:Json.t -> new_json:Json.t -> ((string * string * string) * float) list
(** Per (experiment, x, series): the timing ratio old/new ([> 1] means
    the new run is faster). *)

type cmp_cell = {
  ckey : string * string * string;  (** experiment id, x, series *)
  old_time : float;
  new_time : float;
  old_p99 : float option;  (** of the apply-latency histogram, if present *)
  new_p99 : float option;
}

type comparison = {
  cells : cmp_cell list;
  only_old : (string * string * string) list;
  only_new : (string * string * string) list;
}

val compare_reports : old_json:Json.t -> new_json:Json.t -> comparison

val cell_regresses : threshold:float -> min_time:float -> cmp_cell -> bool
(** A cell regresses when its wall time or latency p99 grew by more than
    [threshold] percent {e and} the grown value is at least [min_time]
    (the noise floor keeps the gate deterministic at smoke scales). *)

val regressions :
  threshold:float -> min_time:float -> comparison -> cmp_cell list

val pp_comparison :
  threshold:float -> min_time:float -> Format.formatter -> comparison -> unit
