(* Flight recorder: periodic registry snapshots with bounded retention.

   Snapshots the Obs registry every [every] *applied updates* — a
   logical cadence, because D3 forbids ambient wall-clock reads outside
   this library and, more importantly, because an update-count cadence
   makes the snapshot stream a pure function of the workload: two runs
   of the same update sequence snapshot at the same points, which is
   what lets @trace-determinism diff the emitted files byte-for-byte.

   Each snapshot writes
   - [metrics-<seq>.prom]: the OpenMetrics exposition, an append-only
     ring of at most [retain] files (oldest removed);
   - [metrics.prom]: the newest exposition under a stable name, written
     via rename so a Prometheus scrape never sees a torn file;
   - one line appended to [metrics.jsonl]: [{seq; updates; metrics;
     slo}], rewritten down to the newest [retain] lines whenever it
     grows past twice that (amortized O(1) per snapshot).

   When an SLO tracker is armed, every snapshot evaluates it against
   the registry first, so trip transitions land in the tracer at
   snapshot granularity and the JSONL ring carries the budget state the
   [incgraph top] dashboard renders. *)

type t = {
  dir : string;
  every : int;
  retain : int;
  deterministic : bool;
  obs : Obs.t;
  slo : Slo.t option;
  trace : Tracer.t;
  mutable updates : int;
  mutable snapshots : int;
  ring : string Queue.t; (* paths of live metrics-<seq>.prom files *)
  lines : string Queue.t; (* newest [<= retain] jsonl lines *)
  mutable lines_in_file : int;
}

let create ?(every = 1) ?(retain = 32) ?(deterministic = false) ?slo
    ?(trace = Tracer.noop) ~dir ~obs () =
  if every < 1 then invalid_arg "Flight.create: every must be >= 1";
  if retain < 1 then invalid_arg "Flight.create: retain must be >= 1";
  {
    dir;
    every;
    retain;
    deterministic;
    obs;
    slo;
    trace;
    updates = 0;
    snapshots = 0;
    ring = Queue.create ();
    lines = Queue.create ();
    lines_in_file = 0;
  }

let dir t = t.dir
let updates t = t.updates
let snapshots t = t.snapshots
let slo t = t.slo

let write_file path content =
  let oc = (open_out [@lint.allow "D3"]) path in
  output_string oc content;
  close_out oc

(* Fixed-width sequence numbers so the shell and the ring sort alike. *)
let prom_path t seq = Filename.concat t.dir (Printf.sprintf "metrics-%06d.prom" seq)
let latest_path t = Filename.concat t.dir "metrics.prom"
let jsonl_path t = Filename.concat t.dir "metrics.jsonl"

(* Registry state for the JSONL ring; the deterministic variant keeps
   counters, gauges, span call counts and work histograms, dropping the
   clock- and GC-derived series (see Openmetrics.clock_derived). *)
let metrics_json t =
  if not t.deterministic then Obs.to_json t.obs
  else
    Json.Obj
      [
        ( "counters",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.counters t.obs)) );
        ( "gauges",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.gauges t.obs))
        );
        ( "spans",
          Json.Obj
            (List.map
               (fun (k, (n, _)) -> (k, Json.Obj [ ("count", Json.Int n) ]))
               (Obs.spans t.obs)) );
        ( "histograms",
          Json.Obj
            (List.filter_map
               (fun (k, h) ->
                 if Openmetrics.clock_derived k then None
                 else Some (k, Histogram.to_json h))
               (Obs.histograms t.obs)) );
      ]

let snapshot t =
  let slo_json =
    match t.slo with
    | None -> Json.Null
    | Some s ->
        ignore (Slo.evaluate s ~obs:t.obs ~trace:t.trace);
        Slo.to_json s
  in
  let seq = t.snapshots in
  t.snapshots <- seq + 1;
  let prom = Openmetrics.render ~deterministic:t.deterministic t.obs in
  let path = prom_path t seq in
  write_file path prom;
  Queue.push path t.ring;
  if Queue.length t.ring > t.retain then begin
    let oldest = Queue.pop t.ring in
    if (Sys.file_exists [@lint.allow "D3"]) oldest then
      (Sys.remove [@lint.allow "D3"]) oldest
  end;
  (* Stable-name copy for scrapers, renamed into place atomically. *)
  let tmp = latest_path t ^ ".tmp" in
  write_file tmp prom;
  (Sys.rename [@lint.allow "D3"]) tmp (latest_path t);
  let line =
    Json.to_string
      (Json.Obj
         [
           ("seq", Json.Int seq);
           ("updates", Json.Int t.updates);
           ("metrics", metrics_json t);
           ("slo", slo_json);
         ])
  in
  Queue.push line t.lines;
  if Queue.length t.lines > t.retain then ignore (Queue.pop t.lines);
  if t.lines_in_file >= 2 * t.retain then begin
    (* Compact the ring file down to the retained tail. *)
    let buf = Buffer.create 4096 in
    Queue.iter
      (fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      t.lines;
    write_file (jsonl_path t) (Buffer.contents buf);
    t.lines_in_file <- Queue.length t.lines
  end
  else begin
    let oc =
      (open_out_gen [@lint.allow "D3"])
        [ Open_append; Open_creat; Open_wronly ]
        0o644 (jsonl_path t)
    in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    t.lines_in_file <- t.lines_in_file + 1
  end

(* One applied update; snapshots when the cadence comes due. *)
let tick t =
  t.updates <- t.updates + 1;
  if t.updates mod t.every = 0 then snapshot t
