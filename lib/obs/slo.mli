(** Declarative SLO budgets over the {!Obs} registry.

    The paper's bounded-cost claim is an SLO: work per update should
    track |AFF|/|CHANGED|, not |G|. A {!rule} names a measurement
    source (histogram quantile, counter ratio, gauge or counter level)
    and a ceiling; {!evaluate} runs all rules against a registry,
    advances per-rule trip/clear hysteresis, and emits a rule-tagged
    [Slo_violation] trace event on each trip transition — visible in
    Chrome traces and [incgraph explain]. *)

type source =
  | P99 of string  (** p99 of a registry histogram *)
  | P50 of string
  | Ratio of string * string  (** counter a / counter b; 0 when b = 0 *)
  | Gauge of string
  | Counter of string

val source_name : source -> string
(** The [kind:arg] spelling used by the config format. *)

type rule = {
  name : string;
  source : source;
  limit : float;
  trip_after : int;
      (** consecutive breaching evaluations before the rule trips *)
  clear_after : int;
      (** consecutive in-budget evaluations before a tripped rule clears *)
}

type t
(** Rule set plus per-rule hysteresis state. *)

type status = {
  srule : rule;
  value : float;
  breaching : bool;  (** this evaluation exceeded the limit *)
  tripped : bool;  (** hysteresis state after this evaluation *)
}

val create : rule list -> t
(** @raise Invalid_argument when a rule has [trip_after] or
    [clear_after] below 1. *)

val rules : t -> rule list

val measure : Obs.t -> source -> float
(** One measurement; missing registry entries read as 0. *)

val evaluate : t -> obs:Obs.t -> trace:Tracer.t -> status list
(** Measure every rule, advance hysteresis, emit [Slo_violation] on
    trip transitions. Statuses are in rule order. *)

val tripped : t -> string list
(** Names of the currently tripped rules, in rule order. *)

val violations : t -> int
(** Total trip transitions so far (= [Slo_violation] events emitted). *)

val to_json : t -> Json.t
(** Per-rule state (source, limit, last value, tripped, trips) for the
    flight-recorder JSONL ring. *)

val of_config : string -> (rule list, string) result
(** Parse the line-based config:
    [<name> <source> <limit> [trip=<k>] [clear=<k>]] with [<source>]
    one of [p99:<hist>], [p50:<hist>], [ratio:<ctr>/<ctr>],
    [gauge:<g>], [counter:<c>]; ['#'] starts a comment. *)

val example_config : string
(** The budgets the README quick-start arms. *)
