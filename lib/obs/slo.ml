(* Declarative SLO budgets over the Obs registry.

   The paper's bounded-cost claim is an SLO: the incremental engine's
   work per update should track |AFF|/|CHANGED|, not |G|. This module
   turns such budgets into declarative rules — a named measurement
   source (histogram quantile, counter ratio, gauge or counter level)
   with a ceiling — evaluated at each flight-recorder snapshot.

   Hysteresis: a rule must breach for [trip_after] consecutive
   evaluations to trip, and then hold for [clear_after] consecutive
   in-budget evaluations to clear, so one slow GC pause or one bursty
   batch does not flap the status. The trip transition (not every
   breaching evaluation) emits a rule-tagged [Slo_violation] into the
   tracer, where it shows up in Chrome traces and `incgraph explain`. *)

type source =
  | P99 of string  (* p99 of a registry histogram *)
  | P50 of string
  | Ratio of string * string  (* counter a / counter b; 0 when b = 0 *)
  | Gauge of string
  | Counter of string

let source_name = function
  | P99 h -> "p99:" ^ h
  | P50 h -> "p50:" ^ h
  | Ratio (a, b) -> Printf.sprintf "ratio:%s/%s" a b
  | Gauge g -> "gauge:" ^ g
  | Counter c -> "counter:" ^ c

type rule = {
  name : string;
  source : source;
  limit : float;
  trip_after : int;
  clear_after : int;
}

type state = {
  rule : rule;
  mutable breach_streak : int;
  mutable ok_streak : int;
  mutable tripped : bool;
  mutable trips : int;
  mutable last_value : float;
}

type t = { states : state list }

type status = {
  srule : rule;
  value : float;
  breaching : bool;  (* this evaluation exceeded the limit *)
  tripped : bool;  (* hysteresis state after this evaluation *)
}

let create rules =
  List.iter
    (fun r ->
      if r.trip_after < 1 || r.clear_after < 1 then
        invalid_arg
          (Printf.sprintf "Slo.create: rule %s needs trip/clear >= 1" r.name))
    rules;
  {
    states =
      List.map
        (fun rule ->
          {
            rule;
            breach_streak = 0;
            ok_streak = 0;
            tripped = false;
            trips = 0;
            last_value = 0.0;
          })
        rules;
  }

let rules t = List.map (fun s -> s.rule) t.states

let measure obs = function
  | P99 h -> (
      match Obs.histogram obs h with None -> 0.0 | Some h -> Histogram.p99 h)
  | P50 h -> (
      match Obs.histogram obs h with None -> 0.0 | Some h -> Histogram.p50 h)
  | Ratio (a, b) ->
      let d = Obs.counter obs b in
      if d = 0 then 0.0
      else float_of_int (Obs.counter obs a) /. float_of_int d
  | Gauge g -> float_of_int (Obs.gauge obs g)
  | Counter c -> float_of_int (Obs.counter obs c)

(* One evaluation pass: measure every rule, advance its hysteresis, and
   emit a [Slo_violation] trace event on each trip transition. *)
let evaluate t ~obs ~trace =
  List.map
    (fun s ->
      let v = measure obs s.rule.source in
      s.last_value <- v;
      let breaching = v > s.rule.limit in
      if breaching then begin
        s.breach_streak <- s.breach_streak + 1;
        s.ok_streak <- 0;
        if (not s.tripped) && s.breach_streak >= s.rule.trip_after then begin
          s.tripped <- true;
          s.trips <- s.trips + 1;
          Tracer.slo_violation trace ~rule:s.rule.name ~value:v
            ~limit:s.rule.limit
        end
      end
      else begin
        s.ok_streak <- s.ok_streak + 1;
        s.breach_streak <- 0;
        if s.tripped && s.ok_streak >= s.rule.clear_after then
          s.tripped <- false
      end;
      { srule = s.rule; value = v; breaching; tripped = s.tripped })
    t.states

let tripped t =
  List.filter_map
    (fun (s : state) -> if s.tripped then Some s.rule.name else None)
    t.states

let violations t = List.fold_left (fun acc s -> acc + s.trips) 0 t.states

let to_json t =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           [
             ("rule", Json.Str s.rule.name);
             ("source", Json.Str (source_name s.rule.source));
             ("limit", Json.Float s.rule.limit);
             ("value", Json.Float s.last_value);
             ("tripped", Json.Bool s.tripped);
             ("trips", Json.Int s.trips);
           ])
       t.states)

(* ---- config ---------------------------------------------------------------

   Line-based budgets, one rule per line:

     <name> <source> <limit> [trip=<k>] [clear=<k>]

   with <source> one of p99:<hist>, p50:<hist>, ratio:<ctr>/<ctr>,
   gauge:<g>, counter:<c>. '#' starts a comment. *)

let parse_source s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "source %S: expected kind:arg" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      if arg = "" then Error (Printf.sprintf "source %S: empty argument" s)
      else
        match kind with
        | "p99" -> Ok (P99 arg)
        | "p50" -> Ok (P50 arg)
        | "gauge" -> Ok (Gauge arg)
        | "counter" -> Ok (Counter arg)
        | "ratio" -> (
            match String.split_on_char '/' arg with
            | [ a; b ] when a <> "" && b <> "" -> Ok (Ratio (a, b))
            | _ -> Error (Printf.sprintf "source %S: expected ratio:a/b" s))
        | _ -> Error (Printf.sprintf "source %S: unknown kind %S" s kind))

let parse_rule line =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
  in
  match words with
  | name :: src :: limit :: opts ->
      let* source = parse_source src in
      let* limit =
        match float_of_string_opt limit with
        | Some l -> Ok l
        | None -> Error (Printf.sprintf "rule %s: unparsable limit %S" name limit)
      in
      let* trip_after, clear_after =
        List.fold_left
          (fun acc opt ->
            let* trip, clear = acc in
            match String.split_on_char '=' opt with
            | [ "trip"; k ] -> (
                match int_of_string_opt k with
                | Some k when k >= 1 -> Ok (k, clear)
                | _ -> Error (Printf.sprintf "rule %s: bad trip=%s" name k))
            | [ "clear"; k ] -> (
                match int_of_string_opt k with
                | Some k when k >= 1 -> Ok (trip, k)
                | _ -> Error (Printf.sprintf "rule %s: bad clear=%s" name k))
            | _ -> Error (Printf.sprintf "rule %s: unknown option %S" name opt))
          (Ok (1, 1))
          opts
      in
      Ok { name; source; limit; trip_after; clear_after }
  | _ -> Error (Printf.sprintf "malformed rule line %S" line)

let of_config text =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let* rules, _ =
    List.fold_left
      (fun acc line ->
        let* rules, lineno = acc in
        let line = String.trim (strip_comment line) in
        if line = "" then Ok (rules, lineno + 1)
        else
          match parse_rule line with
          | Ok r -> Ok (r :: rules, lineno + 1)
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
      (Ok ([], 1))
      (String.split_on_char '\n' text)
  in
  let rules = List.rev rules in
  let names = List.map (fun r -> r.name) rules in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "duplicate rule names"
  else Ok rules

(* The budgets the README quick-start arms: the paper's cost-model ratio
   plus latency tails and storage pressure. *)
let example_config =
  String.concat "\n"
    [
      "# <name> <source> <limit> [trip=<k>] [clear=<k>]";
      "apply_p99    p99:apply_latency_s       0.010  trip=2 clear=3";
      "aff_ratio    ratio:aff/changed         16.0";
      "overlay_add  gauge:csr_overlay_add     100000";
      "fsync_p99    p99:wal_fsync_latency_s   0.050  trip=2 clear=3";
      "";
    ]
