(* Cost-accounting observability.

   A registry of named monotonic counters, gauges, timers, scoped spans
   and latency/allocation histograms. Every incremental engine takes one
   at creation; the default is [noop], a sink whose operations are
   single-branch no-ops, so engines that nobody measures pay one match per
   probe and allocate nothing. All durations are measured on a monotonic
   clock (see the .mli for the clock contract).

   The counters realize the paper's cost model: [K.aff] is the measured
   |AFF| (certificate entries identified as affected), [K.cert_rewrites]
   the entries actually rewritten, and [K.changed] = |ΔG| + |ΔO| the size
   of the change (effective input updates plus output delta). "Bounded"
   claims become assertions over ratios of these counters; "faster" claims
   become deltas between two BENCH json files built from them. *)

type registry = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  timers : (string, float ref) Hashtbl.t;
  spans : (string, int ref * float ref) Hashtbl.t; (* entries, cumulative s *)
  mutable span_stack : (string * float) list;
  histos : (string, Histogram.t) Hashtbl.t;
  mutable in_apply : bool;
      (* reentrancy guard for [with_apply]: a batch entry point that funnels
         through unit entry points must record one sample, not two *)
}

type t = Noop | Reg of registry

let noop = Noop

let create () =
  Reg
    {
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 8;
      timers = Hashtbl.create 8;
      spans = Hashtbl.create 8;
      span_stack = [];
      histos = Hashtbl.create 8;
      in_apply = false;
    }

(* ---- the clock ------------------------------------------------------------

   All timers and spans read CLOCK_MONOTONIC (via the bechamel stubs, ns
   resolution), never the wall clock: an NTP step or DST adjustment during
   a measured section must not produce a negative or wildly wrong
   duration. Monotonic timestamps are meaningful only as differences
   within one process. *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9

let enabled = function Noop -> false | Reg _ -> true

let slot tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl name r;
      r

(* The one sanctioned way to turn a hash table into an ordered view: fold
   the bindings out (order irrelevant — sorting erases it) and sort by
   key. Everything user-visible that reads a Hashtbl goes through here so
   the output cannot depend on the process hash seed. *)
let sorted_bindings ~compare tbl =
  let items =
    (Hashtbl.fold [@lint.allow "D2"]) (fun k v acc -> (k, v) :: acc) tbl []
  in
  List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) items

(* ---- canonical counter names -------------------------------------------- *)

module K = struct
  let aff = "aff"
  let cert_rewrites = "cert_rewrites"
  let nodes_visited = "nodes_visited"
  let edges_relaxed = "edges_relaxed"
  let queue_pushes = "queue_pushes"
  let changed = "changed"
  let changed_input = "changed_input"
  let changed_output = "changed_output"
  let journal_ops = "journal_ops"
  let journal_replayed = "journal_replayed"
  let journal_undone = "journal_undone"
  let snapshots = "snapshots"

  (* Canonical histogram names recorded by [with_apply]. Uniform across
     engines: each engine owns its registry, so the series name — not the
     key — tells engines apart, and BENCH comparison pairs them by key. *)
  let apply_latency = "apply_latency_s"
  let gc_minor_words = "gc_minor_words"
  let gc_major_words = "gc_major_words"
  let gc_promoted_words = "gc_promoted_words"

  (* CSR + delta-overlay backend instrumentation (lib/graph/csr.ml). *)
  let csr_overlay_add = "csr_overlay_add"
  let csr_overlay_del = "csr_overlay_del"
  let csr_compactions = "csr_compactions"
  let csr_compact_latency = "csr_compact_latency_s"
  let csr_compact_bytes = "csr_compact_bytes"

  (* Durable journal instrumentation (lib/journal). The *_latency names
     end in [_s] like [apply_latency] so deterministic exports can filter
     every clock-derived histogram by suffix. *)
  let wal_append_latency = "wal_append_latency_s"
  let wal_fsync_latency = "wal_fsync_latency_s"
  let journal_replay_latency = "journal_replay_latency_s"
  let journal_undo_latency = "journal_undo_latency_s"
  let snapshot_write_latency = "snapshot_write_latency_s"
  let journal_bytes = "journal_bytes"
end

(* ---- counters ------------------------------------------------------------ *)

let add t name k =
  match t with
  | Noop -> ()
  | Reg r ->
      if k < 0 then invalid_arg "Obs.add: counters are monotonic";
      let c = slot r.counters name in
      c := !c + k

let incr t name = add t name 1

let counter t name =
  match t with
  | Noop -> 0
  | Reg r -> (
      match Hashtbl.find_opt r.counters name with Some c -> !c | None -> 0)

(* |ΔG| and |ΔO| contributions both feed the aggregate [K.changed]. *)
let note_changed_input t k =
  add t K.changed_input k;
  add t K.changed k

let note_changed_output t k =
  add t K.changed_output k;
  add t K.changed k

(* ---- gauges -------------------------------------------------------------- *)

let set_gauge t name v =
  match t with
  | Noop -> ()
  | Reg r ->
      let g = slot r.gauges name in
      g := v

let gauge t name =
  match t with
  | Noop -> 0
  | Reg r -> (
      match Hashtbl.find_opt r.gauges name with Some g -> !g | None -> 0)

(* ---- timers --------------------------------------------------------------- *)

let add_time t name secs =
  match t with
  | Noop -> ()
  | Reg r ->
      let tr =
        match Hashtbl.find_opt r.timers name with
        | Some tr -> tr
        | None ->
            let tr = ref 0.0 in
            Hashtbl.replace r.timers name tr;
            tr
      in
      tr := !tr +. secs

let time t name f =
  match t with
  | Noop -> f ()
  | Reg _ ->
      let t0 = now_s () in
      Fun.protect ~finally:(fun () -> add_time t name (now_s () -. t0)) f

let timer t name =
  match t with
  | Noop -> 0.0
  | Reg r -> (
      match Hashtbl.find_opt r.timers name with Some tr -> !tr | None -> 0.0)

(* ---- scoped spans ---------------------------------------------------------- *)

let span_depth = function Noop -> 0 | Reg r -> List.length r.span_stack

(* Names of the currently open spans, innermost first. *)
let open_spans = function Noop -> [] | Reg r -> List.map fst r.span_stack

let span_begin t name =
  match t with
  | Noop -> ()
  | Reg r -> r.span_stack <- (name, now_s ()) :: r.span_stack

let span_end t name =
  match t with
  | Noop -> ()
  | Reg r -> (
      match r.span_stack with
      | (top, t0) :: rest when top = name ->
          r.span_stack <- rest;
          let entries, total =
            match Hashtbl.find_opt r.spans name with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0.0) in
                Hashtbl.replace r.spans name cell;
                cell
          in
          entries := !entries + 1;
          total := !total +. (now_s () -. t0)
      | (top, _) :: _ ->
          invalid_arg
            (Printf.sprintf "Obs.span_end: %s closed while %s is open" name top)
      | [] ->
          invalid_arg
            (Printf.sprintf "Obs.span_end: %s closed but no span is open" name))

let with_span t name f =
  match t with
  | Noop -> f ()
  | Reg _ ->
      span_begin t name;
      Fun.protect ~finally:(fun () -> span_end t name) f

let span t name =
  match t with
  | Noop -> (0, 0.0)
  | Reg r -> (
      match Hashtbl.find_opt r.spans name with
      | Some (n, s) -> (!n, !s)
      | None -> (0, 0.0))

(* ---- histograms ------------------------------------------------------------ *)

let hist_slot r name =
  match Hashtbl.find_opt r.histos name with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace r.histos name h;
      h

let observe t name v =
  match t with Noop -> () | Reg r -> Histogram.observe (hist_slot r name) v

(* Time [f] on the monotonic clock into the [name] histogram. Unlike
   [with_apply] there is no reentrancy guard: each call is one sample.
   The Noop sink costs one branch and never reads the clock. *)
let observe_time t name f =
  match t with
  | Noop -> f ()
  | Reg _ ->
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          observe t name (Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9))
        f

let histogram t name =
  match t with Noop -> None | Reg r -> Hashtbl.find_opt r.histos name

let histograms = function
  | Noop -> []
  | Reg r -> sorted_bindings ~compare:String.compare r.histos

(* Per-batch latency and allocation accounting: time [f] on the monotonic
   clock and record the duration into the [K.apply_latency] histogram,
   together with the [Gc.quick_stat] deltas (minor/major/promoted words)
   the batch caused. Engines wrap both their batch and their unit entry
   points with this; the reentrancy guard makes the outermost wrapper the
   one that records, so a batch that funnels through unit entry points
   still contributes exactly one sample. The Noop sink costs one branch. *)
let with_apply t f =
  match t with
  | Noop -> f ()
  | Reg r when r.in_apply -> f ()
  | Reg r ->
      r.in_apply <- true;
      let gc0 = Gc.quick_stat () in
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9 in
          r.in_apply <- false;
          observe t K.apply_latency dt;
          let gc1 = Gc.quick_stat () in
          observe t K.gc_minor_words (gc1.Gc.minor_words -. gc0.Gc.minor_words);
          observe t K.gc_major_words (gc1.Gc.major_words -. gc0.Gc.major_words);
          observe t K.gc_promoted_words
            (gc1.Gc.promoted_words -. gc0.Gc.promoted_words))
        f

(* ---- snapshots -------------------------------------------------------------- *)

let sorted_items deref tbl =
  List.map
    (fun (k, v) -> (k, deref v))
    (sorted_bindings ~compare:String.compare tbl)

let counters = function
  | Noop -> []
  | Reg r -> sorted_items ( ! ) r.counters

let gauges = function Noop -> [] | Reg r -> sorted_items ( ! ) r.gauges
let timers = function Noop -> [] | Reg r -> sorted_items ( ! ) r.timers

let spans = function
  | Noop -> []
  | Reg r -> sorted_items (fun (n, s) -> (!n, !s)) r.spans

let reset = function
  | Noop -> ()
  | Reg r ->
      Hashtbl.reset r.counters;
      Hashtbl.reset r.gauges;
      Hashtbl.reset r.timers;
      Hashtbl.reset r.spans;
      Hashtbl.reset r.histos;
      r.span_stack <- []

(* Counter snapshot difference: what a single update contributed. Keys are
   the union; values are cur - prev (clamped at 0 so a reset between
   snapshots reads as zero work, not negative). *)
let diff_counters ~prev ~cur =
  let keys =
    List.sort_uniq compare (List.map fst prev @ List.map fst cur)
  in
  List.filter_map
    (fun k ->
      let v0 = Option.value ~default:0 (List.assoc_opt k prev) in
      let v1 = Option.value ~default:0 (List.assoc_opt k cur) in
      if v1 > v0 then Some (k, v1 - v0) else None)
    keys

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (gauges t)));
      ("timers", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (timers t)));
      ( "spans",
        Json.Obj
          (List.map
             (fun (k, (n, s)) ->
               (k, Json.Obj [ ("count", Json.Int n); ("seconds", Json.Float s) ]))
             (spans t)) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, Histogram.to_json h)) (histograms t))
      );
    ]
