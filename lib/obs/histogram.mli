(** Mergeable log-bucketed histograms (HDR-style).

    Records non-negative float samples — per-update latencies in seconds,
    GC words per batch — into a fixed log-linear bucket layout:
    {!sub_buckets} linear sub-buckets per binary octave over octaves
    [2^min_exp .. 2^max_exp]. Because the layout is a constant of the
    module, two histograms merge exactly by element-wise bucket addition,
    and quantile estimates carry a bounded relative error (every bucket
    spans at most [1/sub_buckets] of its octave, 12.5% relative width,
    interpolated within the bucket and clamped to the exact tracked
    [min]/[max]).

    Negative and NaN samples are clamped to 0 before recording: a
    histogram never goes backwards and its invariants
    ({!check_invariants}) hold after every observation. *)

type t

val sub_buckets : int
val min_exp : int
val max_exp : int

val n_buckets : int
(** Total bucket count, [(max_exp - min_exp) * sub_buckets]. *)

val create : unit -> t
(** Fresh empty histogram. *)

val observe : t -> float -> unit
(** Record one sample. O(1), allocation-free. Negative/NaN values are
    clamped to 0. *)

val count : t -> int
val sum : t -> float

val min_value : t -> float
(** Smallest recorded sample; 0 when empty. *)

val max_value : t -> float
(** Largest recorded sample; 0 when empty. *)

val mean : t -> float
(** [sum / count]; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the q-quantile (q in [0,1]) by cumulative
    bucket walk with linear interpolation inside the winning bucket,
    clamped to [[min_value t, max_value t]]. Returns 0 when empty.
    @raise Invalid_argument when q is outside [0,1]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val merge : t -> t -> t
(** Exact element-wise merge: [count], [sum], buckets add; [min]/[max]
    combine. Associative and commutative. Inputs are unchanged. *)

val copy : t -> t

val bucket_of : float -> int
(** Index of the bucket a sample lands in. *)

val bucket_bounds : int -> float * float
(** [[lo, hi)] value bounds of a bucket index. Bucket 0 reports [lo = 0]
    (it absorbs everything below the representable range).
    @raise Invalid_argument when the index is out of range. *)

val nonzero_buckets : t -> (int * int) list
(** Non-empty buckets as [(index, count)], ascending index. *)

val check_invariants : t -> unit
(** Assert structural invariants: bucket total = count, no negative
    counts, [min <= max] and [count*min <= sum <= count*max] (with float
    tolerance) when non-empty. The fuzz harness calls this after every
    step. @raise Failure naming the first violation. *)

val to_json : t -> Json.t
(** Sparse export: count/sum/min/max, the layout parameters, and the
    non-empty buckets. Quantiles are recomputed by readers, not stored. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; validates first (see {!validate}). *)

val validate : Json.t -> (unit, string) result
(** Structural check of an exported histogram: fields present and typed,
    layout compatible with this build, bucket indices in range, strictly
    ascending, positive counts summing to [count]. *)

val pp : Format.formatter -> t -> unit
(** Summary line (count/sum/min/mean/max and p50/p90/p99/p999) followed by
    one ASCII bar line per non-empty bucket. *)

val to_string : t -> string
