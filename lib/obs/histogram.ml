(* Mergeable log-bucketed histograms (HDR-style).

   The paper's effectiveness claims are statements about *distributions* of
   per-update cost, not aggregates: a localizable algorithm keeps its tail
   flat as |G| grows, an unbounded one blows up at the p99 long before the
   mean moves. This module records non-negative samples (latencies in
   seconds, GC words per batch) into a fixed log-linear bucket layout so
   that

     - recording is O(1) and allocation-free,
     - two histograms (different reps, different shards) merge exactly by
       element-wise bucket addition, because the layout is a constant of
       the module, and
     - p50/p90/p99/p999 are estimated with bounded relative error
       (every bucket spans at most 1/[sub_buckets] of its octave, i.e.
       12.5% relative width), interpolated within the winning bucket and
       clamped to the exact [min], [max] tracked alongside.

   Layout: [sub_buckets] linear sub-buckets per binary octave, octaves
   2^[min_exp] .. 2^[max_exp]. Samples below the range land in bucket 0,
   samples above clamp into the last bucket — count and sum stay exact
   either way, only the quantile resolution degrades at the extremes. *)

let sub_buckets = 8
let min_exp = -64 (* values below 2^-64 are bucket 0: well under 1ns *)
let max_exp = 64 (* values >= 2^64 clamp: no latency or word count gets there *)
let n_buckets = (max_exp - min_exp) * sub_buckets

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

let create () =
  {
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0.0 else t.vmin
let max_value t = if t.count = 0 then 0.0 else t.vmax
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(* Index of the bucket covering [v]. For v in [2^(e-1), 2^e), frexp gives
   mantissa m in [0.5, 1); sub-bucket j covers m in
   [0.5 + j/(2*sub), 0.5 + (j+1)/(2*sub)). *)
let bucket_of v =
  if v <= 0.0 || Float.is_nan v then 0
  else
    let m, e = Float.frexp v in
    let octave = e - 1 in
    if octave < min_exp then 0
    else if octave >= max_exp then n_buckets - 1
    else
      let j =
        Stdlib.min (sub_buckets - 1)
          (int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub_buckets))
      in
      ((octave - min_exp) * sub_buckets) + j

(* [lo, hi) bounds of bucket [i]; bucket 0's lower bound is reported as 0
   (it absorbs everything below the representable range). *)
let bucket_bounds i =
  if i < 0 || i >= n_buckets then invalid_arg "Histogram.bucket_bounds";
  let octave = min_exp + (i / sub_buckets) in
  let j = i mod sub_buckets in
  let scale = Float.ldexp 1.0 (octave + 1) in
  let lo = scale *. (0.5 +. (float_of_int j /. float_of_int (2 * sub_buckets)))
  and hi =
    scale *. (0.5 +. (float_of_int (j + 1) /. float_of_int (2 * sub_buckets)))
  in
  ((if i = 0 then 0.0 else lo), hi)

let observe t v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1

(* Element-wise bucket addition: exact because the layout is fixed. *)
let merge a b =
  let t = create () in
  t.count <- a.count + b.count;
  t.sum <- a.sum +. b.sum;
  t.vmin <- Float.min a.vmin b.vmin;
  t.vmax <- Float.max a.vmax b.vmax;
  Array.blit a.buckets 0 t.buckets 0 n_buckets;
  Array.iteri (fun i c -> t.buckets.(i) <- t.buckets.(i) + c) b.buckets;
  t

let copy t = merge t (create ())

(* Quantile estimate: walk the cumulative counts to the bucket holding the
   continuous rank q*(count-1), interpolate linearly inside it, clamp to
   the exact extremes. *)
let quantile t q =
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Histogram.quantile: q must be in [0,1]";
  if t.count = 0 then 0.0
  else begin
    let rank = q *. float_of_int (t.count - 1) in
    let target = int_of_float (Float.floor rank) in
    let cum = ref 0 in
    let result = ref t.vmax in
    (try
       for i = 0 to n_buckets - 1 do
         let c = t.buckets.(i) in
         if c > 0 then begin
           if !cum + c > target then begin
             let lo, hi = bucket_bounds i in
             (* Position of the target rank among this bucket's samples. *)
             let frac = (rank -. float_of_int !cum) /. float_of_int c in
             let frac = Float.max 0.0 (Float.min 1.0 frac) in
             result := lo +. ((hi -. lo) *. frac);
             raise Exit
           end;
           cum := !cum + c
         end
       done
     with Exit -> ());
    Float.max t.vmin (Float.min t.vmax !result)
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

(* Non-empty buckets, ascending index. *)
let nonzero_buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (i, t.buckets.(i)) :: !acc
  done;
  !acc

(* The invariants every registry histogram must satisfy at all times; the
   fuzz harness asserts them after every step (Oracle.check_metrics).
   @raise Failure naming the first violation. *)
let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  if t.count < 0 then fail "negative count %d" t.count;
  let total = Array.fold_left ( + ) 0 t.buckets in
  if total <> t.count then
    fail "bucket total %d <> count %d" total t.count;
  Array.iteri
    (fun i c -> if c < 0 then fail "bucket %d has negative count %d" i c)
    t.buckets;
  if t.count > 0 then begin
    if not (t.vmin <= t.vmax) then fail "min %g > max %g" t.vmin t.vmax;
    if Float.is_nan t.sum then fail "sum is NaN";
    let eps = 1e-9 *. (1.0 +. Float.abs t.sum) in
    if t.sum +. eps < float_of_int t.count *. t.vmin then
      fail "sum %g below count*min %g" t.sum (float_of_int t.count *. t.vmin);
    if t.sum -. eps > float_of_int t.count *. t.vmax then
      fail "sum %g above count*max %g" t.sum (float_of_int t.count *. t.vmax)
  end

(* ---- JSON ----------------------------------------------------------------

   Sparse export: only non-empty buckets travel. The layout parameters are
   embedded so a reader can reject a file produced by an incompatible
   build instead of silently mis-binning on merge. Quantiles are
   recomputed by readers, not stored — the buckets are the truth. *)

let layout_json =
  Json.Obj
    [
      ("sub_buckets", Json.Int sub_buckets);
      ("min_exp", Json.Int min_exp);
      ("max_exp", Json.Int max_exp);
    ]

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Float t.sum);
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("layout", layout_json);
      ( "buckets",
        Json.Arr
          (List.map
             (fun (i, c) -> Json.Arr [ Json.Int i; Json.Int c ])
             (nonzero_buckets t)) );
    ]

let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let req k what conv =
    match Option.bind (Json.member k json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram: missing or ill-typed %S (%s)" k what)
  in
  let* count = req "count" "int" Json.to_int_opt in
  if count < 0 then Error "histogram: negative count"
  else
    let* _sum = req "sum" "number" Json.to_float_opt in
    let* vmin = req "min" "number" Json.to_float_opt in
    let* vmax = req "max" "number" Json.to_float_opt in
    let* layout = req "layout" "object" Json.to_obj_opt in
    let layout_field k =
      Option.bind (List.assoc_opt k layout) Json.to_int_opt
    in
    if
      layout_field "sub_buckets" <> Some sub_buckets
      || layout_field "min_exp" <> Some min_exp
      || layout_field "max_exp" <> Some max_exp
    then Error "histogram: incompatible bucket layout"
    else
      let* bs = req "buckets" "array" Json.to_list_opt in
      let* total =
        List.fold_left
          (fun acc b ->
            let* (prev_idx, total) = acc in
            match b with
            | Json.Arr [ Json.Int i; Json.Int c ] ->
                if i < 0 || i >= n_buckets then
                  Error (Printf.sprintf "histogram: bucket index %d out of range" i)
                else if i <= prev_idx then
                  Error "histogram: bucket indices not strictly ascending"
                else if c <= 0 then
                  Error (Printf.sprintf "histogram: bucket %d count %d not positive" i c)
                else Ok (i, total + c)
            | _ -> Error "histogram: bucket entry is not [index, count]")
          (Ok (-1, 0))
          bs
      in
      let total = snd total in
      if total <> count then
        Error (Printf.sprintf "histogram: bucket total %d <> count %d" total count)
      else if count > 0 && vmin > vmax then Error "histogram: min > max"
      else Ok ()

let of_json json =
  match validate json with
  | Error _ as e -> e
  | Ok () ->
      let t = create () in
      let get k conv = Option.bind (Json.member k json) conv in
      t.count <- Option.value ~default:0 (get "count" Json.to_int_opt);
      t.sum <- Option.value ~default:0.0 (get "sum" Json.to_float_opt);
      if t.count > 0 then begin
        t.vmin <- Option.value ~default:0.0 (get "min" Json.to_float_opt);
        t.vmax <- Option.value ~default:0.0 (get "max" Json.to_float_opt)
      end;
      List.iter
        (function
          | Json.Arr [ Json.Int i; Json.Int c ] -> t.buckets.(i) <- c
          | _ -> ())
        (Option.value ~default:[] (get "buckets" Json.to_list_opt));
      Ok t

(* ---- rendering ----------------------------------------------------------- *)

let pp_value ppf v =
  if v = 0.0 then Format.fprintf ppf "0"
  else if Float.abs v >= 0.001 && Float.abs v < 1e7 then
    Format.fprintf ppf "%.4g" v
  else Format.fprintf ppf "%.3e" v

(* One line per non-empty bucket: [lo, hi) count and a bar scaled to the
   fullest bucket — the ASCII view behind `incgraph stats --histogram`. *)
let pp ppf t =
  Format.fprintf ppf
    "count %d  sum %a  min %a  mean %a  max %a@,p50 %a  p90 %a  p99 %a  p999 %a"
    t.count pp_value t.sum pp_value (min_value t) pp_value (mean t) pp_value
    (max_value t) pp_value (p50 t) pp_value (p90 t) pp_value (p99 t) pp_value
    (p999 t);
  let nz = nonzero_buckets t in
  let widest = List.fold_left (fun a (_, c) -> Stdlib.max a c) 1 nz in
  List.iter
    (fun (i, c) ->
      let lo, hi = bucket_bounds i in
      let bar = Stdlib.max 1 (c * 40 / widest) in
      let fmt v = Format.asprintf "%a" pp_value v in
      Format.fprintf ppf "@,[%10s, %10s) %8d %s" (fmt lo) (fmt hi) c
        (String.make bar '#'))
    nz

let to_string t = Format.asprintf "@[<v>%a@]" pp t
