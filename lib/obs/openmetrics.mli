(** OpenMetrics / Prometheus text exposition for the {!Obs} registry.

    {!render} turns a registry into the Prometheus text format: counters
    as [<name>_total], gauges bare, timers and span aggregates as
    labelled counter families, and every log-bucketed {!Histogram} as a
    native Prometheus histogram — cumulative [le] buckets whose edges
    are the upper bounds of the non-empty log buckets, a [+Inf] bucket,
    [_sum] and [_count] — terminated by the mandatory [# EOF] marker.

    {!validate} is the structural inverse used by [bench/validate.exe]
    and the @telemetry-smoke alias; {!samples} parses an exposition back
    for round-trip tests. *)

val render : ?deterministic:bool -> Obs.t -> string
(** The full registry in exposition format. With [~deterministic:true]
    every clock- or GC-derived series is dropped — timers, span seconds
    (span call counts stay) and any histogram whose name ends in [_s]
    or starts with [gc_] — so renders of the same update sequence are
    byte-identical across runs, hash seeds and machines. *)

val sanitize : string -> string
(** Map an arbitrary registry name onto the legal metric-name alphabet
    [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val clock_derived : string -> bool
(** [true] on series the deterministic rendering drops: names ending in
    [_s] or starting with [gc_]. *)

type sample = {
  name : string;
  labels : (string * string) list;
  value : float;
}

val samples : string -> (sample list, string) result
(** All sample lines of an exposition, in order; comments and TYPE
    lines are skipped. *)

val validate : string -> (int, string) result
(** Structural checks: every sample needs a matching [# TYPE] line
    (counters via their [_total] suffix, histograms via
    [_bucket]/[_sum]/[_count]), histogram buckets must be contiguous
    with strictly increasing [le] edges and non-decreasing cumulative
    counts ending in [+Inf], [_count] must equal the [+Inf] bucket, and
    the text must end with [# EOF]. Returns the number of samples. *)

val looks_like : string -> bool
(** Cheap content sniff for artifact dispatch: the text starts with a
    [# TYPE] line or the empty-registry [# EOF]. *)
