module Digraph = Ig_graph.Digraph
module Nfa = Ig_nfa.Nfa
module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

type node = Digraph.node
type key = Pgraph.key

type delta = { added : (node * node) list; removed : (node * node) list }

type stats = { mutable affected : int; mutable settled : int }

module PQ = Ig_graph.Pqueue.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Int.hash
end)

(* Per-source state: the pmark_e distances, plus the per-node count of
   accepting-state entries (a node is a match for this source iff its count
   is positive). *)
type source_state = {
  marks : (key, int) Hashtbl.t;
  accs : (node, int) Hashtbl.t;
}

type t = {
  p : Pgraph.t;
  grouped : bool;
  obs : Obs.t;
  trace : Tracer.t;
  srcs : (node, source_state) Hashtbl.t;
  at_node : (node, (node, int) Hashtbl.t) Hashtbl.t;
      (* v -> sources holding an entry at v (with entry counts): the paper
         stores markings per node (v.pmark(u)), so an updated edge touches
         only the sources that actually reach it — this index realizes that
         without scanning every source. *)
  gained : (node * node, unit) Hashtbl.t;
  lost : (node * node, unit) Hashtbl.t;
  mutable n_matches : int;
  st : stats;
}

let graph t = Pgraph.graph t.p
let stats t = t.st
let obs t = t.obs
let trace t = t.trace

let reset_stats t =
  t.st.affected <- 0;
  t.st.settled <- 0

let note_gain t u v =
  t.n_matches <- t.n_matches + 1;
  if Hashtbl.mem t.lost (u, v) then Hashtbl.remove t.lost (u, v)
  else Hashtbl.replace t.gained (u, v) ()

let note_lose t u v =
  t.n_matches <- t.n_matches - 1;
  if Hashtbl.mem t.gained (u, v) then Hashtbl.remove t.gained (u, v)
  else Hashtbl.replace t.lost (u, v) ()

let bump_at_node t u v dir =
  let h =
    match Hashtbl.find_opt t.at_node v with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace t.at_node v h;
        h
  in
  let c = dir + Option.value ~default:0 (Hashtbl.find_opt h u) in
  if c > 0 then Hashtbl.replace h u c else Hashtbl.remove h u

let add_entry t u ss k d =
  if not (Hashtbl.mem ss.marks k) then
    bump_at_node t u (Pgraph.node_of t.p k) 1;
  Hashtbl.replace ss.marks k d;
  if Pgraph.is_accepting t.p k then begin
    let v = Pgraph.node_of t.p k in
    let c = 1 + Option.value ~default:0 (Hashtbl.find_opt ss.accs v) in
    Hashtbl.replace ss.accs v c;
    if c = 1 then note_gain t u v
  end

let remove_entry t u ss k =
  if Hashtbl.mem ss.marks k then bump_at_node t u (Pgraph.node_of t.p k) (-1);
  Hashtbl.remove ss.marks k;
  if Pgraph.is_accepting t.p k then begin
    let v = Pgraph.node_of t.p k in
    let c = Option.value ~default:0 (Hashtbl.find_opt ss.accs v) - 1 in
    if c > 0 then Hashtbl.replace ss.accs v c
    else begin
      Hashtbl.remove ss.accs v;
      note_lose t u v
    end
  end

let compare_pair (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let flush_delta t =
  let added = List.map fst (Obs.sorted_bindings ~compare:compare_pair t.gained) in
  let removed = List.map fst (Obs.sorted_bindings ~compare:compare_pair t.lost) in
  Obs.note_changed_output t.obs (List.length added + List.length removed);
  Hashtbl.reset t.gained;
  Hashtbl.reset t.lost;
  { added; removed }

let is_initial t u k =
  Pgraph.node_of t.p k = u
  && List.mem (Pgraph.state_of t.p k) (Pgraph.initial_states t.p u)

(* One Ramalingam–Reps pass for source [u]. The graph has already been
   updated; [dels]/[inss] are the unit updates that actually took effect. *)
let process_source t u ss ~dels ~inss =
  let p = t.p in
  (* Phase A: identAff. *)
  let affected = Hashtbl.create 16 in
  let stack = Stack.create () in
  List.iter
    (fun (v, w) ->
      (* Heads of deleted product edges are the initial candidates. *)
      for s = 0 to Nfa.n_states (Pgraph.nfa p) - 1 do
        if Hashtbl.mem ss.marks (Pgraph.key p v s) then
          List.iter
            (fun s' ->
              let k = Pgraph.key p w s' in
              if Hashtbl.mem ss.marks k then Stack.push k stack)
            (Pgraph.succ_keys_of_edge p s w)
      done)
    dels;
  while not (Stack.is_empty stack) do
    let k = Stack.pop stack in
    Obs.incr t.obs Obs.K.nodes_visited;
    if
      (not (Hashtbl.mem affected k))
      && Hashtbl.mem ss.marks k
      && not (is_initial t u k)
    then begin
      let d = Hashtbl.find ss.marks k in
      let supported = ref false in
      Pgraph.iter_pred p k (fun k' ->
          Obs.incr t.obs Obs.K.edges_relaxed;
          if
            (not !supported)
            && (not (Hashtbl.mem affected k'))
            &&
            match Hashtbl.find_opt ss.marks k' with
            | Some d' -> d' + 1 = d
            | None -> false
          then supported := true);
      if not !supported then begin
        Hashtbl.replace affected k ();
        t.st.affected <- t.st.affected + 1;
        Obs.incr t.obs Obs.K.aff;
        Tracer.aff_enter t.trace ~node:(Pgraph.node_of p k)
          ~rule:Tracer.Rpq_support_lost;
        (* Successors may have lost their support through [k]. *)
        Pgraph.iter_succ p k (fun k'' ->
            if Hashtbl.mem ss.marks k'' then Stack.push k'' stack)
      end
    end
  done;
  (* Phase B: remove affected entries; enqueue their potential distances
     computed from unaffected in-neighbors. Iterated in key order: the
     frontier_expand events and queue insertions must be seed-stable. *)
  let q = PQ.create () in
  List.iter
    (fun (k, ()) ->
      let best = ref max_int in
      Pgraph.iter_pred p k (fun k' ->
          Obs.incr t.obs Obs.K.edges_relaxed;
          if not (Hashtbl.mem affected k') then
            match Hashtbl.find_opt ss.marks k' with
            | Some d' -> if d' + 1 < !best then best := d' + 1
            | None -> ());
      remove_entry t u ss k;
      if !best < max_int then begin
        Obs.incr t.obs Obs.K.queue_pushes;
        Tracer.frontier_expand t.trace ~node:(Pgraph.node_of p k);
        PQ.insert q k !best
      end)
    (Obs.sorted_bindings ~compare:Int.compare affected);
  (* Phase C: insertions with unaffected tails. *)
  List.iter
    (fun (v, w) ->
      for s = 0 to Nfa.n_states (Pgraph.nfa p) - 1 do
        match Hashtbl.find_opt ss.marks (Pgraph.key p v s) with
        | None -> ()
        | Some dv ->
            List.iter
              (fun s' ->
                let kw = Pgraph.key p w s' in
                let cand = dv + 1 in
                match Hashtbl.find_opt ss.marks kw with
                | Some d when d <= cand -> ()
                | _ ->
                    Obs.incr t.obs Obs.K.queue_pushes;
                    Tracer.frontier_expand t.trace ~node:w;
                    PQ.insert q kw cand)
              (Pgraph.succ_keys_of_edge p s w)
      done)
    inss;
  (* Phase D: settle exact distances in increasing order. *)
  let rec fix () =
    match PQ.pull_min q with
    | None -> ()
    | Some (k, d) ->
        Obs.incr t.obs Obs.K.nodes_visited;
        let relax () =
          Pgraph.iter_succ p k (fun k' ->
              Obs.incr t.obs Obs.K.edges_relaxed;
              match Hashtbl.find_opt ss.marks k' with
              | Some d'' when d'' <= d + 1 -> ()
              | _ ->
                  Obs.incr t.obs Obs.K.queue_pushes;
                  Tracer.frontier_expand t.trace ~node:(Pgraph.node_of p k');
                  PQ.insert q k' (d + 1))
        in
        (match Hashtbl.find_opt ss.marks k with
        | Some d' when d' <= d -> () (* stale queue entry *)
        | Some d' ->
            if Tracer.enabled t.trace then
              Tracer.cert_rewrite t.trace ~node:(Pgraph.node_of p k)
                ~field:(Printf.sprintf "pmark(src=%d,state=%d)" u
                          (Pgraph.state_of p k))
                ~before:(Printf.sprintf "dist=%d" d')
                ~after:(Printf.sprintf "dist=%d" d);
            Hashtbl.replace ss.marks k d;
            t.st.settled <- t.st.settled + 1;
            Obs.incr t.obs Obs.K.cert_rewrites;
            relax ()
        | None ->
            if Tracer.enabled t.trace then begin
              (* A marking born outside AFF: an inserted edge extended the
                 reach of source [u] — the distance-decrease rule. *)
              if not (Hashtbl.mem affected k) then
                Tracer.aff_enter t.trace ~node:(Pgraph.node_of p k)
                  ~rule:Tracer.Rpq_dist_decrease;
              Tracer.cert_rewrite t.trace ~node:(Pgraph.node_of p k)
                ~field:(Printf.sprintf "pmark(src=%d,state=%d)" u
                          (Pgraph.state_of p k))
                ~before:"absent"
                ~after:(Printf.sprintf "dist=%d" d)
            end;
            add_entry t u ss k d;
            t.st.settled <- t.st.settled + 1;
            Obs.incr t.obs Obs.K.cert_rewrites;
            relax ());
        fix ()
  in
  fix ()

(* Only sources with a marking at the tail of an updated edge can be
   affected: a deleted product edge lies on a path from u only if u reaches
   (v, s) for some s, and an inserted edge extends only such paths. Each
   relevant source receives just the updates whose tail it marks, so a
   batch costs Σ_u |ΔG restricted to u's reach|, not |sources| × |ΔG|. *)
let process_all t ~dels ~inss =
  Obs.with_span t.obs "rpq.process" @@ fun () ->
  Tracer.with_span t.trace "rpq.process" @@ fun () ->
  let per_source = Hashtbl.create 16 in
  let note side (v, w) =
    match Hashtbl.find_opt t.at_node v with
    | None -> ()
    | Some h ->
        (* Order-free: fills per-source buckets; the per-source update
           lists keep the caller's update order. *)
        (Hashtbl.iter [@lint.allow "D2"])
          (fun u _ ->
            let dels, inss =
              match Hashtbl.find_opt per_source u with
              | Some lists -> lists
              | None ->
                  let lists = (ref [], ref []) in
                  Hashtbl.replace per_source u lists;
                  lists
            in
            let target = match side with `D -> dels | `I -> inss in
            target := (v, w) :: !target)
          h
  in
  List.iter (note `D) dels;
  List.iter (note `I) inss;
  (* Sources in ascending order: their processing order is trace-visible. *)
  List.iter
    (fun (u, (dels, inss)) ->
      process_source t u (Hashtbl.find t.srcs u) ~dels:!dels ~inss:!inss)
    (Obs.sorted_bindings ~compare:Int.compare per_source)

let apply_effective t updates =
  let g = graph t in
  List.filter_map
    (fun up ->
      let eff =
        match up with
        | Digraph.Insert (u, v) ->
            if Digraph.add_edge g u v then Some (`I, (u, v)) else None
        | Digraph.Delete (u, v) ->
            if Digraph.remove_edge g u v then Some (`D, (u, v)) else None
      in
      if eff <> None then Obs.note_changed_input t.obs 1;
      eff)
    updates

let split_effective eff =
  let dels = List.filter_map (function `D, e -> Some e | `I, _ -> None) eff in
  let inss = List.filter_map (function `I, e -> Some e | `D, _ -> None) eff in
  (dels, inss)

let apply_batch t updates =
  Obs.with_apply t.obs @@ fun () ->
  if t.grouped then begin
    let dels, inss = split_effective (apply_effective t updates) in
    process_all t ~dels ~inss
  end
  else
    List.iter
      (fun up ->
        match apply_effective t [ up ] with
        | [] -> ()
        | eff ->
            let dels, inss = split_effective eff in
            process_all t ~dels ~inss)
      updates;
  flush_delta t

let insert_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.add_edge (graph t) u v then begin
    Obs.note_changed_input t.obs 1;
    process_all t ~dels:[] ~inss:[ (u, v) ]
  end

let delete_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.remove_edge (graph t) u v then begin
    Obs.note_changed_input t.obs 1;
    process_all t ~dels:[ (u, v) ] ~inss:[]
  end

let register_source t u =
  let ss = { marks = Hashtbl.create 16; accs = Hashtbl.create 8 } in
  Hashtbl.replace t.srcs u ss;
  ss

let add_node t label =
  let u = Digraph.add_node (graph t) label in
  if Pgraph.is_source t.p u then begin
    let ss = register_source t u in
    List.iter
      (fun s -> add_entry t u ss (Pgraph.key t.p u s) 0)
      (Pgraph.initial_states t.p u)
  end;
  u

let init ?(grouped = true) ?(obs = Obs.noop) ?(trace = Tracer.noop) g a =
  Digraph.instrument ~obs ~trace g;
  let p = Pgraph.make g a in
  let t =
    {
      p;
      grouped;
      obs;
      trace;
      srcs = Hashtbl.create 64;
      at_node = Hashtbl.create 256;
      gained = Hashtbl.create 64;
      lost = Hashtbl.create 64;
      n_matches = 0;
      st = { affected = 0; settled = 0 };
    }
  in
  List.iter
    (fun u ->
      let ss = register_source t u in
      (* Order-free: entry insertions commute; nothing is traced here. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun k d -> add_entry t u ss k d)
        (Batch.source_marks p u))
    (Pgraph.sources p);
  Hashtbl.reset t.gained;
  t

let create ?grouped ?obs ?trace g q =
  init ?grouped ?obs ?trace g (Nfa.compile (Digraph.interner g) q)

let matches t =
  (* User-visible answer: lexicographic (source, target) order. *)
  List.concat_map
    (fun (u, ss) ->
      List.map
        (fun (v, _) -> (u, v))
        (Obs.sorted_bindings ~compare:Int.compare ss.accs))
    (Obs.sorted_bindings ~compare:Int.compare t.srcs)

let n_matches t = t.n_matches

let is_match t u v =
  match Hashtbl.find_opt t.srcs u with
  | None -> false
  | Some ss -> Hashtbl.mem ss.accs v

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let g = graph t in
  (* Every source is registered, and no non-source is. *)
  Digraph.iter_nodes
    (fun u ->
      let reg = Hashtbl.mem t.srcs u and src = Pgraph.is_source t.p u in
      if reg <> src then fail "source registration wrong at node %d" u)
    g;
  let total = ref 0 in
  (Hashtbl.iter [@lint.allow "D2"])
    (fun u ss ->
      let fresh = Batch.source_marks t.p u in
      if Hashtbl.length fresh <> Hashtbl.length ss.marks then
        fail "source %d: %d marks, expected %d" u (Hashtbl.length ss.marks)
          (Hashtbl.length fresh);
      (Hashtbl.iter [@lint.allow "D2"])
        (fun k d ->
          match Hashtbl.find_opt ss.marks k with
          | Some d' when d' = d -> ()
          | Some d' ->
              fail "source %d: key %d dist %d, expected %d" u k d' d
          | None -> fail "source %d: key %d missing" u k)
        fresh;
      (* Accepting counts consistent with marks. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v c ->
          let real = ref 0 in
          (Hashtbl.iter [@lint.allow "D2"])
            (fun k _ ->
              if Pgraph.node_of t.p k = v && Pgraph.is_accepting t.p k then
                incr real)
            ss.marks;
          if !real <> c then fail "source %d: acc count at %d is %d not %d" u v c !real;
          total := !total + if c > 0 then 1 else 0)
        ss.accs)
    t.srcs;
  if !total <> t.n_matches then
    fail "n_matches %d, expected %d" t.n_matches !total;
  (* The node -> sources index counts exactly the live entries. *)
  let expect = Hashtbl.create 64 in
  (Hashtbl.iter [@lint.allow "D2"])
    (fun u ss ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun k _ ->
          let key = (Pgraph.node_of t.p k, u) in
          Hashtbl.replace expect key
            (1 + Option.value ~default:0 (Hashtbl.find_opt expect key)))
        ss.marks)
    t.srcs;
  let total_idx = ref 0 in
  (Hashtbl.iter [@lint.allow "D2"])
    (fun v h ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun u c ->
          incr total_idx;
          if Option.value ~default:0 (Hashtbl.find_opt expect (v, u)) <> c
          then fail "at_node index wrong at (%d, %d)" v u)
        h)
    t.at_node;
  if !total_idx <> Hashtbl.length expect then fail "at_node index size wrong"

let best_accepting t u v =
  match Hashtbl.find_opt t.srcs u with
  | None -> None
  | Some ss ->
      let best = ref None in
      (* |S| is tiny (|Q|+1): scan the states at v. *)
      for s = 0 to Nfa.n_states (Pgraph.nfa t.p) - 1 do
        let k = Pgraph.key t.p v s in
        if Pgraph.is_accepting t.p k then
          match Hashtbl.find_opt ss.marks k with
          | Some d -> (
              match !best with
              | Some (d', _) when d' <= d -> ()
              | _ -> best := Some (d, k))
          | None -> ()
      done;
      !best

let distance t u v = Option.map fst (best_accepting t u v)

let witness_path t u v =
  match (best_accepting t u v, Hashtbl.find_opt t.srcs u) with
  | Some (d0, k0), Some ss ->
      (* Walk mpre chains: a predecessor at distance d-1 always exists. *)
      let rec back k d acc =
        if d = 0 then Some (Pgraph.node_of t.p k :: acc)
        else begin
          let prev = ref None in
          Pgraph.iter_pred t.p k (fun k' ->
              if !prev = None then
                match Hashtbl.find_opt ss.marks k' with
                | Some d' when d' = d - 1 -> prev := Some k'
                | _ -> ());
          match !prev with
          | None -> None (* impossible on consistent markings *)
          | Some k' -> back k' (d - 1) (Pgraph.node_of t.p k :: acc)
        end
      in
      back k0 d0 []
  | _ -> None

(* Canonical text dump of the per-source markings. Product-graph keys are
   decoded to (node, state) pairs so the sections survive key-encoding
   changes; sorted iteration keeps the bytes hash-seed independent. *)
let cert_snapshot t =
  let pm = Buffer.create 256 in
  let ac = Buffer.create 128 in
  List.iter
    (fun (u, ss) ->
      List.iter
        (fun (k, d) ->
          Buffer.add_string pm
            (Printf.sprintf "src%d v%d s%d dist=%d\n" u
               (Pgraph.node_of t.p k) (Pgraph.state_of t.p k) d))
        (Obs.sorted_bindings ~compare:Int.compare ss.marks);
      List.iter
        (fun (v, c) ->
          Buffer.add_string ac (Printf.sprintf "src%d v%d %d\n" u v c))
        (Obs.sorted_bindings ~compare:Int.compare ss.accs))
    (Obs.sorted_bindings ~compare:Int.compare t.srcs);
  [
    ("pmark", Buffer.contents pm);
    ("accs", Buffer.contents ac);
    ("matches", Printf.sprintf "%d\n" t.n_matches);
  ]
