module Digraph = Ig_graph.Digraph
module Nfa = Ig_nfa.Nfa

type node = Digraph.node

let source_marks p u =
  let marks = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      let k = Pgraph.key p u s in
      if not (Hashtbl.mem marks k) then begin
        Hashtbl.replace marks k 0;
        Queue.add k q
      end)
    (Pgraph.initial_states p u);
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    let d = Hashtbl.find marks k in
    Pgraph.iter_succ p k (fun k' ->
        if not (Hashtbl.mem marks k') then begin
          Hashtbl.replace marks k' (d + 1);
          Queue.add k' q
        end)
  done;
  marks

let matches_from p u =
  let marks = source_marks p u in
  let hit = Hashtbl.create 16 in
  (* Order-free: fills a membership set; the result is sorted below. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun k _ ->
      if Pgraph.is_accepting p k then
        Hashtbl.replace hit (Pgraph.node_of p k) ())
    marks;
  let vs = (Hashtbl.fold [@lint.allow "D2"]) (fun v () acc -> v :: acc) hit [] in
  List.sort Int.compare vs

let run g a =
  let p = Pgraph.make g a in
  List.concat_map
    (fun u -> List.map (fun v -> (u, v)) (matches_from p u))
    (Pgraph.sources p)

let run_query g q = run g (Nfa.compile (Digraph.interner g) q)
