(** IncRPQ: incremental regular path queries, bounded relative to RPQNFA
    (paper Section 5.2, Fig. 5).

    The auxiliary structure is the paper's marking [pmark_e]: for each
    source [u], the shortest distance from the virtual root [(u, s0)] to
    every reached product node [(v, s)]. The [cpre] (candidate predecessors)
    and [mpre] (shortest-path predecessors) fields of the paper are derived
    on demand from the graph adjacency and the inverse NFA transition index
    — same asymptotics, no extra state to keep consistent.

    Updates are processed Ramalingam–Reps style per source:

    + {b identAff} (paper line 1): starting from the heads of deleted
      product edges, an entry is {e affected} when no remaining product
      in-edge supports its recorded distance; losing a support propagates to
      product successors.
    + {b potential values} (lines 2-4): each affected entry is removed and
      re-enqueued keyed by the best distance obtainable through unaffected
      in-neighbors.
    + {b insertions} (lines 5-8): an inserted product edge whose tail is
      unaffected and which improves its head enqueues the head — entries
      with affected tails are left to the fix-up phase, exactly as the
      paper prescribes.
    + {b fix-up} (line 9): a Dijkstra loop over one global priority queue
      per source settles exact distances in monotonically increasing order,
      so every entry is decided at most once per batch; relaxation follows
      the (updated) product graph, which interleaves the effects of
      deletions and insertions (paper Example 5).

    Matches change only when an accepting-state entry appears at a node with
    none, or the last one disappears; ΔO is accumulated net of cancellation
    (an entry that bounces back within one batch contributes nothing). *)

type node = Ig_graph.Digraph.node

type delta = {
  added : (node * node) list;
  removed : (node * node) list;
}
(** ΔO: match pairs entering and leaving [Q(G)]. *)

type stats = {
  mutable affected : int;   (** entries identified as affected (AFF) *)
  mutable settled : int;    (** entries fixed by the priority-queue phase *)
}

type t

val init :
  ?grouped:bool ->
  ?obs:Ig_obs.Obs.t ->
  ?trace:Ig_obs.Tracer.t ->
  Ig_graph.Digraph.t ->
  Ig_nfa.Nfa.t ->
  t
(** Run the batch algorithm once and keep its markings. [grouped] (default
    [true]) processes batches with one combined fix-up phase per source —
    the paper's IncRPQ; [false] degrades {!apply_batch} to unit-at-a-time
    processing — the paper's IncRPQn ablation. [obs] (default
    {!Ig_obs.Obs.noop}) receives cost counters: [aff] (product-graph
    markings invalidated — the measured |AFF|), [cert_rewrites] (markings
    re-settled), [nodes_visited], [edges_relaxed], [queue_pushes], and
    [changed] = |ΔG| + |ΔO|. Each outermost
    {!apply_batch}/{!insert_edge}/{!delete_edge} call also records one
    sample into the [apply_latency_s] histogram (monotonic seconds) and
    the [gc_minor_words]/[gc_major_words]/[gc_promoted_words] histograms
    ([Gc.quick_stat] deltas). [trace] (default {!Ig_obs.Tracer.noop})
    receives structured events: [Aff_enter] tagged [Rpq_support_lost]
    (a marking lost its last shorter-distance predecessor) or
    [Rpq_dist_decrease] (an inserted edge created a marking),
    [Cert_rewrite] on the [pmark] field, and [Frontier_expand] per queue
    push. The graph is owned by the session afterwards. *)

val create :
  ?grouped:bool ->
  ?obs:Ig_obs.Obs.t ->
  ?trace:Ig_obs.Tracer.t ->
  Ig_graph.Digraph.t ->
  Ig_nfa.Regex.t ->
  t
(** Compile the regex against the graph's interner, then {!init}. *)

val graph : t -> Ig_graph.Digraph.t

val obs : t -> Ig_obs.Obs.t
(** The metrics sink the session was created with. *)

val trace : t -> Ig_obs.Tracer.t
(** The event tracer the session was created with. *)

val add_node : t -> string -> node
(** Add a fresh node; it becomes a new source if its label can start a
    path in [L(Q)]. *)

val insert_edge : t -> node -> node -> unit
val delete_edge : t -> node -> node -> unit

val apply_batch : t -> Ig_graph.Digraph.update list -> delta

val flush_delta : t -> delta

val matches : t -> (node * node) list
(** Current [Q(G)]. *)

val n_matches : t -> int

val is_match : t -> node -> node -> bool

val stats : t -> stats
val reset_stats : t -> unit

val check_invariants : t -> unit
(** Test hook: every source's markings equal a fresh product-graph BFS, and
    the match set equals the batch answer. @raise Failure on violation. *)

val distance : t -> node -> node -> int option
(** Length of a shortest matching path witnessing the pair [(u, v)] — the
    [dist] of [v]'s best accepting marking for source [u]. [None] if the
    pair is not a match. A path of length [d] has [d+1] nodes; the (u,u)
    self-match has distance 0. *)

val witness_path : t -> node -> node -> node list option
(** A concrete shortest path [u … v] whose label word is in [L(Q)],
    reconstructed by walking the markings backwards through the product
    graph (the paper's [mpre] chains, derived on demand). *)

val cert_snapshot : t -> (string * string) list
(** SNAPSHOTTABLE: the per-source pmark distances (keys decoded to
    [(node, state)]), accepting-entry counts and match total as named
    canonical-text sections (hash-seed independent), for durable
    certificate snapshots. *)
