module Digraph = Ig_graph.Digraph
module Nfa = Ig_nfa.Nfa

type node = Digraph.node
type state = Nfa.state
type key = int

type t = { g : Digraph.t; a : Nfa.t; ns : int }

let make g a = { g; a; ns = Nfa.n_states a }

let graph p = p.g
let nfa p = p.a

let key p v s = (v * p.ns) + s
let node_of p k = k / p.ns
let state_of p k = k mod p.ns

let initial_states p u = Nfa.next p.a (Nfa.start p.a) (Digraph.label p.g u)

let is_source p u = initial_states p u <> []

let sources p =
  let acc = ref [] in
  Digraph.iter_nodes (fun u -> if is_source p u then acc := u :: !acc) p.g;
  List.rev !acc

let succ_keys_of_edge p s w = Nfa.next p.a s (Digraph.label p.g w)

(* Product adjacency is iterated in sorted graph-node order: Inc_rpq's
   visit order leaks into trace events, so it must not depend on the
   hash seed. The NFA state lists are deterministic by construction. *)
let iter_succ p k f =
  let v = node_of p k and s = state_of p k in
  Digraph.iter_succ_sorted
    (fun w -> List.iter (fun s' -> f (key p w s')) (succ_keys_of_edge p s w))
    p.g v

let iter_pred p k f =
  let w = node_of p k and s' = state_of p k in
  let lw = Digraph.label p.g w in
  Digraph.iter_pred_sorted
    (fun v -> List.iter (fun s -> f (key p v s)) (Nfa.prev p.a s' lw))
    p.g w

let is_accepting p k = Nfa.is_accepting p.a (state_of p k)
