let write ppf g =
  Format.fprintf ppf "# incgraph v1: %d nodes %d edges@\n" (Digraph.n_nodes g)
    (Digraph.n_edges g);
  Digraph.iter_nodes
    (fun v -> Format.fprintf ppf "v %d %s@\n" v (Digraph.label_name g v))
    g;
  Digraph.iter_edges (fun u v -> Format.fprintf ppf "e %d %d@\n" u v) g

(* Deliberate artifact writer/reader: the graph text format. *)
let save path g =
  let oc = (open_out [@lint.allow "D3"]) path in
  let ppf = Format.formatter_of_out_channel oc in
  (try
     write ppf g;
     Format.pp_print_flush ppf ()
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let parse_lines ?backend lines =
  let g = Digraph.create ?backend () in
  let ids = Hashtbl.create 64 in
  let lineno = ref 0 in
  let fail msg = failwith (Printf.sprintf "Io.read: line %d: %s" !lineno msg) in
  let node_of ext =
    match Hashtbl.find_opt ids ext with
    | Some v -> v
    | None -> fail (Printf.sprintf "undeclared node %d" ext)
  in
  Seq.iter
    (fun line ->
      incr lineno;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line with
        | [ "v"; ext; label ] ->
            let ext =
              try int_of_string ext with _ -> fail "bad node id"
            in
            if Hashtbl.mem ids ext then fail "duplicate node id";
            Hashtbl.replace ids ext (Digraph.add_node g label)
        | [ "e"; u; v ] ->
            let u = try int_of_string u with _ -> fail "bad edge source" in
            let v = try int_of_string v with _ -> fail "bad edge target" in
            ignore (Digraph.add_edge g (node_of u) (node_of v))
        | _ -> fail "unrecognized record")
    lines;
  (* A CSR graph built edge-by-edge carries a residual overlay; fold it in
     so loads hand back a fully flat base. *)
  Digraph.compact g;
  g

let read ?backend ic =
  let rec lines () =
    match In_channel.input_line ic with
    | None -> Seq.Nil
    | Some l -> Seq.Cons (l, lines)
  in
  parse_lines ?backend lines

let load ?backend path =
  let ic = (open_in [@lint.allow "D3"]) path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read ?backend ic)

let of_string ?backend s =
  parse_lines ?backend (List.to_seq (String.split_on_char '\n' s))
