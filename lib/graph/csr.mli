(** Flat CSR adjacency with a sorted delta overlay.

    The cache-friendly {!Digraph} backend: successor and predecessor
    adjacency as compressed-sparse-row slices of flat [Bigarray] int
    arrays (off the OCaml heap — the GC never scans them), fronted by a
    small per-node overlay of sorted add/tombstone lists that absorbs
    edge insertions and deletions. Overlay invariants:

    - [add ∩ base = ∅] — an overlay-add is never also a base entry;
    - [del ⊆ base] — a tombstone always names a live base entry.

    Sorted iteration is a merge of the base row with the add list,
    skipping tombstones — sorted by construction, with none of the
    per-call fold-and-sort the Hashtbl backend pays. The overlay
    recompacts into fresh base arrays ([O(n + m)]) when it exceeds
    [max 64 (n_edges/8)] live entries, and on explicit {!compact}.

    This module is not used directly by engines; they see it through the
    {!Digraph} dispatch ([Digraph.create ~backend:`Csr]). The API below
    mirrors the slice of {!Digraph} the dispatch needs, with the same
    semantics — including [nodes_with_label]'s most-recent-first order
    and [invalid_arg] on unknown nodes. *)

type node = int
type label = Interner.symbol
type t

val create : ?hint:int -> unit -> t
(** Empty graph; [hint] pre-sizes the label, degree and overlay tables
    for [hint] nodes. *)

val copy : t -> t
(** O(n): shares the frozen base arrays (compaction installs fresh ones,
    never mutates in place), deep-copies the overlay — the copy is fully
    independent, pending deltas included. *)

val add_node : t -> string -> node
val add_node_sym : t -> label -> node
val add_edge : t -> node -> node -> bool
val remove_edge : t -> node -> node -> bool

val compact : t -> unit
(** Fold the overlay into fresh base arrays; semantically a no-op. *)

val interner : t -> Interner.t
val intern_label : t -> string -> label
val label : t -> node -> label
val label_name : t -> node -> string
val n_nodes : t -> int
val n_edges : t -> int
val mem_node : t -> node -> bool
val mem_edge : t -> node -> node -> bool
val out_degree : t -> node -> int
val in_degree : t -> node -> int
val iter_succ_sorted : (node -> unit) -> t -> node -> unit
val iter_pred_sorted : (node -> unit) -> t -> node -> unit
val succ_list : t -> node -> node list
val pred_list : t -> node -> node list
val nodes_with_label : t -> label -> node list

val overlay_size : t -> int
(** Live overlay entries (adds + tombstones, both directions); 0 right
    after {!compact}. *)

val overlay_add_size : t -> int
(** Live entries in the two add overlays. *)

val overlay_del_size : t -> int
(** Live tombstones in the two del overlays. *)

val base_nodes : t -> int
(** Nodes covered by the frozen base arrays — how stale the base is. *)

val instrument : t -> obs:Ig_obs.Obs.t -> trace:Ig_obs.Tracer.t -> unit
(** Attach instrumentation sinks: overlay add/del sizes become gauges,
    compactions record latency and bytes-copied histograms plus a
    [Compaction] trace event. Default is noop/noop (a single branch per
    probe); {!copy} resets the copy's sinks to noop so scratch and
    oracle copies never pollute the engine's registry. *)
