(* Flat CSR adjacency with a sorted delta overlay.

   The base representation is classic compressed-sparse-row, one copy per
   direction: [s_off]/[s_adj] give each node's successor row as a slice of
   one flat Bigarray of ints ([s_adj.{s_off.{v}} .. s_adj.{s_off.{v+1}-1}],
   ascending), and [p_off]/[p_adj] the predecessor rows. Bigarrays live
   off the OCaml heap, so the adjacency of a million-node graph costs the
   GC nothing to scan and iteration is a linear walk over unboxed ints.

   The base arrays are frozen: they describe the graph as of the last
   {!compact} and cover only the first [base_n] nodes (later nodes have
   empty base rows). Mutations land in a small per-node overlay of sorted
   lists, maintained under two invariants:

     add ∩ base = ∅       (an overlay-add is never also a base entry)
     del ⊆ base           (an overlay-del tombstones an existing base entry)

   so membership is: in [add] → present; in [del] → absent; else binary
   search the base row. Sorted iteration is a two-finger merge of the
   (sorted) base row with the add list, skipping tombstones — sorted by
   construction, no per-call sort, unlike the Hashtbl backend's
   fold-and-sort. Degrees are maintained eagerly in [out_deg]/[in_deg],
   so they stay O(1) regardless of overlay size.

   When the overlay exceeds [max 64 (n_edges/8)] live entries the graph
   recompacts: fresh base arrays are built in O(n + m) by replaying the
   merged rows, and the overlay empties. The geometric gap between
   compactions keeps the amortized per-update cost constant. [compact]
   never mutates the old arrays in place — it installs fresh ones — so
   {!copy} can share the (immutable) base arrays and deep-copy only the
   overlay vectors, making copies O(n) and fully independent. *)

module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

type node = int
type label = Interner.symbol

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let ba_create n : ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

type t = {
  interner : Interner.t;
  labels : label Vec.t;
  by_label : node list Vec.t;
      (* indexed by symbol; most-recent-first, matching the Hashtbl
         backend's [v :: old] maintained index byte for byte *)
  mutable base_n : int;
  mutable s_off : ba;
  mutable s_adj : ba;
  mutable p_off : ba;
  mutable p_adj : ba;
  succ_add : node list Vec.t;
  succ_del : node list Vec.t;
  pred_add : node list Vec.t;
  pred_del : node list Vec.t;
  out_deg : int Vec.t;
  in_deg : int Vec.t;
  mutable n_edges : int;
  mutable overlay : int; (* live entries across the four overlay tables *)
  mutable overlay_adds : int; (* live entries in the two add tables *)
  mutable overlay_dels : int; (* live tombstones in the two del tables *)
  (* Instrumentation sinks, default noop. Engines attach their registry
     and tracer at init (via [instrument]) so overlay pressure and
     compaction cost are observable; [copy] resets both to noop so a
     scratch/oracle copy never pollutes the engine's registry. *)
  mutable obs : Obs.t;
  mutable trace : Tracer.t;
}

let create ?(hint = 16) () =
  let g =
    {
      interner = Interner.create ();
      labels = Vec.create ();
      by_label = Vec.create ();
      base_n = 0;
      s_off = ba_create 0;
      s_adj = ba_create 0;
      p_off = ba_create 0;
      p_adj = ba_create 0;
      succ_add = Vec.create ();
      succ_del = Vec.create ();
      pred_add = Vec.create ();
      pred_del = Vec.create ();
      out_deg = Vec.create ();
      in_deg = Vec.create ();
      n_edges = 0;
      overlay = 0;
      overlay_adds = 0;
      overlay_dels = 0;
      obs = Obs.noop;
      trace = Tracer.noop;
    }
  in
  let hint = max 1 hint in
  Vec.reserve g.labels hint 0;
  Vec.reserve g.succ_add hint [];
  Vec.reserve g.succ_del hint [];
  Vec.reserve g.pred_add hint [];
  Vec.reserve g.pred_del hint [];
  Vec.reserve g.out_deg hint 0;
  Vec.reserve g.in_deg hint 0;
  g

let instrument g ~obs ~trace =
  g.obs <- obs;
  g.trace <- trace

(* Overlay pressure as last-write-wins gauges, refreshed after every
   mutation; a single branch each under the noop sink. *)
let note_overlay g =
  if Obs.enabled g.obs then begin
    Obs.set_gauge g.obs Obs.K.csr_overlay_add g.overlay_adds;
    Obs.set_gauge g.obs Obs.K.csr_overlay_del g.overlay_dels
  end

let interner g = g.interner
let intern_label g s = Interner.intern g.interner s
let n_nodes g = Vec.length g.labels
let n_edges g = g.n_edges
let overlay_size g = g.overlay
let overlay_add_size g = g.overlay_adds
let overlay_del_size g = g.overlay_dels
let base_nodes g = g.base_n

let mem_node g v = v >= 0 && v < n_nodes g

let check_node g v =
  if not (mem_node g v) then invalid_arg "Digraph: unknown node"

let label g v =
  check_node g v;
  Vec.get g.labels v

let label_name g v = Interner.name g.interner (label g v)

let add_node_sym g l =
  let v = Vec.push g.labels l in
  ignore (Vec.push g.succ_add []);
  ignore (Vec.push g.succ_del []);
  ignore (Vec.push g.pred_add []);
  ignore (Vec.push g.pred_del []);
  ignore (Vec.push g.out_deg 0);
  ignore (Vec.push g.in_deg 0);
  while Vec.length g.by_label <= l do
    ignore (Vec.push g.by_label [])
  done;
  Vec.set g.by_label l (v :: Vec.get g.by_label l);
  v

let add_node g s = add_node_sym g (intern_label g s)

(* ---- sorted overlay lists ---- *)

let rec mem_sorted x = function
  | [] -> false
  | y :: tl -> if y < x then mem_sorted x tl else y = x

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: tl as l ->
      if x < y then x :: l else if x = y then l else y :: insert_sorted x tl

let rec remove_sorted x = function
  | [] -> []
  | y :: tl ->
      if y = x then tl else if y < x then y :: remove_sorted x tl else y :: tl

(* ---- base rows ---- *)

let in_base (off : ba) (adj : ba) base_n v w =
  v < base_n
  &&
  let lo = ref (Bigarray.Array1.unsafe_get off v)
  and hi = ref (Bigarray.Array1.unsafe_get off (v + 1)) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let x = Bigarray.Array1.unsafe_get adj mid in
    if x = w then found := true else if x < w then lo := mid + 1 else hi := mid
  done;
  !found

(* Merge one (sorted) base row with the add list, skipping tombstones:
   sorted by construction. Tombstones only ever name base entries, so both
   cursors advance in lockstep. *)
let iter_row f (off : ba) (adj : ba) base_n adds dels v =
  let stop = if v < base_n then Bigarray.Array1.unsafe_get off (v + 1) else 0 in
  let rec go i adds dels =
    if i >= stop then List.iter f adds
    else
      let b = Bigarray.Array1.unsafe_get adj i in
      match dels with
      | d :: dtl when d = b -> go (i + 1) adds dtl
      | _ -> (
          match adds with
          | a :: atl when a < b ->
              f a;
              go i atl dels
          | _ ->
              f b;
              go (i + 1) adds dels)
  in
  go (if v < base_n then Bigarray.Array1.unsafe_get off v else 0) adds dels

let iter_succ_sorted f g v =
  check_node g v;
  iter_row f g.s_off g.s_adj g.base_n (Vec.get g.succ_add v)
    (Vec.get g.succ_del v) v

let iter_pred_sorted f g v =
  check_node g v;
  iter_row f g.p_off g.p_adj g.base_n (Vec.get g.pred_add v)
    (Vec.get g.pred_del v) v

let mem_edge g u v =
  mem_node g u && mem_node g v
  && (mem_sorted v (Vec.get g.succ_add u)
     || in_base g.s_off g.s_adj g.base_n u v
        && not (mem_sorted v (Vec.get g.succ_del u)))

(* ---- compaction ---- *)

let rebuild g (off : ba) (adj : ba) ~adds ~dels ~m =
  let n = n_nodes g in
  let off' = ba_create (n + 1) and adj' = ba_create m in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    Bigarray.Array1.unsafe_set off' v !pos;
    iter_row
      (fun w ->
        Bigarray.Array1.unsafe_set adj' !pos w;
        incr pos)
      off adj g.base_n (Vec.get adds v) (Vec.get dels v) v
  done;
  Bigarray.Array1.unsafe_set off' n !pos;
  assert (!pos = m);
  (off', adj')

let compact g =
  (* Read the clock only when a registry is attached: the noop path must
     stay free of clock syscalls (the zero-overhead acceptance gate). *)
  let absorbed = g.overlay in
  let t0 = if Obs.enabled g.obs then Obs.now_ns () else 0L in
  let n = n_nodes g in
  let s_off, s_adj =
    rebuild g g.s_off g.s_adj ~adds:g.succ_add ~dels:g.succ_del ~m:g.n_edges
  in
  let p_off, p_adj =
    rebuild g g.p_off g.p_adj ~adds:g.pred_add ~dels:g.pred_del ~m:g.n_edges
  in
  g.s_off <- s_off;
  g.s_adj <- s_adj;
  g.p_off <- p_off;
  g.p_adj <- p_adj;
  g.base_n <- n;
  for v = 0 to n - 1 do
    Vec.set g.succ_add v [];
    Vec.set g.succ_del v [];
    Vec.set g.pred_add v [];
    Vec.set g.pred_del v []
  done;
  g.overlay <- 0;
  g.overlay_adds <- 0;
  g.overlay_dels <- 0;
  if Obs.enabled g.obs then begin
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) *. 1e-9 in
    (* Both directions rebuilt: 2 offset arrays of n+1 ints and 2
       adjacency arrays of m ints, 8 bytes each. *)
    let bytes = (2 * (n + 1 + g.n_edges)) * 8 in
    Obs.incr g.obs Obs.K.csr_compactions;
    Obs.observe g.obs Obs.K.csr_compact_latency dt;
    Obs.observe g.obs Obs.K.csr_compact_bytes (float_of_int bytes);
    note_overlay g
  end;
  Tracer.compaction g.trace ~edges:g.n_edges ~overlay:absorbed

let maybe_compact g = if g.overlay > max 64 (g.n_edges asr 3) then compact g

(* ---- updates ---- *)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if mem_edge g u v then false
  else begin
    (if in_base g.s_off g.s_adj g.base_n u v then begin
       (* A tombstoned base edge coming back: drop the tombstones. *)
       Vec.set g.succ_del u (remove_sorted v (Vec.get g.succ_del u));
       Vec.set g.pred_del v (remove_sorted u (Vec.get g.pred_del v));
       g.overlay <- g.overlay - 2;
       g.overlay_dels <- g.overlay_dels - 2
     end
     else begin
       Vec.set g.succ_add u (insert_sorted v (Vec.get g.succ_add u));
       Vec.set g.pred_add v (insert_sorted u (Vec.get g.pred_add v));
       g.overlay <- g.overlay + 2;
       g.overlay_adds <- g.overlay_adds + 2
     end);
    Vec.set g.out_deg u (Vec.get g.out_deg u + 1);
    Vec.set g.in_deg v (Vec.get g.in_deg v + 1);
    g.n_edges <- g.n_edges + 1;
    note_overlay g;
    maybe_compact g;
    true
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  if not (mem_edge g u v) then false
  else begin
    (if mem_sorted v (Vec.get g.succ_add u) then begin
       Vec.set g.succ_add u (remove_sorted v (Vec.get g.succ_add u));
       Vec.set g.pred_add v (remove_sorted u (Vec.get g.pred_add v));
       g.overlay <- g.overlay - 2;
       g.overlay_adds <- g.overlay_adds - 2
     end
     else begin
       Vec.set g.succ_del u (insert_sorted v (Vec.get g.succ_del u));
       Vec.set g.pred_del v (insert_sorted u (Vec.get g.pred_del v));
       g.overlay <- g.overlay + 2;
       g.overlay_dels <- g.overlay_dels + 2
     end);
    Vec.set g.out_deg u (Vec.get g.out_deg u - 1);
    Vec.set g.in_deg v (Vec.get g.in_deg v - 1);
    g.n_edges <- g.n_edges - 1;
    note_overlay g;
    maybe_compact g;
    true
  end

(* ---- views ---- *)

let out_degree g v =
  check_node g v;
  Vec.get g.out_deg v

let in_degree g v =
  check_node g v;
  Vec.get g.in_deg v

let succ_list g v =
  let acc = ref [] in
  iter_succ_sorted (fun w -> acc := w :: !acc) g v;
  List.rev !acc

let pred_list g v =
  let acc = ref [] in
  iter_pred_sorted (fun u -> acc := u :: !acc) g v;
  List.rev !acc

let nodes_with_label g l =
  if l >= 0 && l < Vec.length g.by_label then Vec.get g.by_label l else []

let copy g =
  (* Base arrays are frozen (compaction installs fresh ones), so they are
     shared; the overlay and index vectors are copied, so the two graphs
     diverge independently from here on. *)
  {
    interner = g.interner;
    labels = Vec.copy g.labels;
    by_label = Vec.copy g.by_label;
    base_n = g.base_n;
    s_off = g.s_off;
    s_adj = g.s_adj;
    p_off = g.p_off;
    p_adj = g.p_adj;
    succ_add = Vec.copy g.succ_add;
    succ_del = Vec.copy g.succ_del;
    pred_add = Vec.copy g.pred_add;
    pred_del = Vec.copy g.pred_del;
    out_deg = Vec.copy g.out_deg;
    in_deg = Vec.copy g.in_deg;
    n_edges = g.n_edges;
    overlay = g.overlay;
    overlay_adds = g.overlay_adds;
    overlay_dels = g.overlay_dels;
    (* A copy is a scratch/oracle graph until someone instruments it:
       inheriting the sinks would double-count compactions and gauges
       against the original engine's registry. *)
    obs = Obs.noop;
    trace = Tracer.noop;
  }
