(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this module provides the small subset
    of a dynamic-array API the library needs: amortized O(1) [push], O(1)
    random access, and iteration over the live prefix. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] whose cells all hold [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** O(1). @raise Invalid_argument if the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** O(1). @raise Invalid_argument if the index is out of bounds. *)

val push : 'a t -> 'a -> int
(** Append an element and return its index. Amortized O(1). *)

val reserve : 'a t -> int -> 'a -> unit
(** [reserve v n x] grows the backing store to capacity at least [n],
    using [x] to fill the (never observed) cells beyond the live prefix.
    The length is unchanged; subsequent pushes up to [n] do not
    reallocate. *)

val copy : 'a t -> 'a t
(** A shallow copy: fresh backing store, same elements. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val clear : 'a t -> unit
(** Drop all elements (capacity is retained). *)
