type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; Array.unsafe_get v.data i

let set v i x = check v i; Array.unsafe_set v.data i x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data = Array.make cap' x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  let i = v.len in
  Array.unsafe_set v.data i x;
  v.len <- i + 1;
  i

let reserve v n x =
  if Array.length v.data < n then begin
    let data = Array.make n x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let copy v = { data = Array.copy v.data; len = v.len }

let iter f v =
  for i = 0 to v.len - 1 do f (Array.unsafe_get v.data i) done

let iteri f v =
  for i = 0 to v.len - 1 do f i (Array.unsafe_get v.data i) done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do acc := f !acc (Array.unsafe_get v.data i) done;
  !acc

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get v i :: acc) in
  go (v.len - 1) []

let clear v = v.len <- 0
