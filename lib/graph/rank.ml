type item = int

module M = Map.Make (Int)

let gap = 4294967296 (* 2^32 *)

type t = {
  labels : (item, int) Hashtbl.t;
  mutable used : item M.t; (* label -> item *)
}

let create () = { labels = Hashtbl.create 64; used = M.empty }

let size t = Hashtbl.length t.labels

let mem t x = Hashtbl.mem t.labels x

let value t x =
  match Hashtbl.find_opt t.labels x with
  | Some l -> l
  | None -> raise Not_found

let compare_items t a b = Int.compare (value t a) (value t b)

let set t x l =
  Hashtbl.replace t.labels x l;
  t.used <- M.add l x t.used

let insert_top t x =
  if mem t x then invalid_arg "Rank.insert_top: item present";
  let l =
    match M.max_binding_opt t.used with
    | None -> 0
    | Some (top, _) -> top + gap
  in
  set t x l

let insert_bottom t x =
  if mem t x then invalid_arg "Rank.insert_bottom: item present";
  let l =
    match M.min_binding_opt t.used with
    | None -> 0
    | Some (bot, _) -> bot - gap
  in
  set t x l

let remove t x =
  match Hashtbl.find_opt t.labels x with
  | None -> ()
  | Some l ->
      Hashtbl.remove t.labels x;
      t.used <- M.remove l t.used

(* Relabel every item with evenly spaced labels, preserving order. *)
let relabel t =
  let items = M.bindings t.used in
  t.used <- M.empty;
  Hashtbl.reset t.labels;
  List.iteri (fun i (_, x) -> set t x ((i + 1) * gap)) items

let sorted_labels_of t items =
  let ls =
    List.map
      (fun x ->
        match Hashtbl.find_opt t.labels x with
        | Some l -> l
        | None -> invalid_arg "Rank: item not present")
      items
  in
  List.sort_uniq Int.compare ls

let reassign t items =
  let ls = sorted_labels_of t items in
  if List.length ls <> List.length items then
    invalid_arg "Rank.reassign: duplicate items";
  List.iter2 (fun x l -> set t x l) items ls

let take_labels t items =
  let ls = sorted_labels_of t items in
  if List.length ls <> List.length items then
    invalid_arg "Rank.take_labels: duplicate items";
  List.iter (fun x -> remove t x) items;
  ls

let give t x l =
  if mem t x then invalid_arg "Rank.give: item present";
  if M.mem l t.used then invalid_arg "Rank.give: label in use";
  set t x l

let rec split t x ~parts =
  let l =
    match Hashtbl.find_opt t.labels x with
    | Some l -> l
    | None -> invalid_arg "Rank.split: item not present"
  in
  List.iter
    (fun p ->
      if p <> x && mem t p then invalid_arg "Rank.split: part already present")
    parts;
  let k = List.length parts in
  if k = 0 then remove t x
  else begin
    let lo =
      match M.find_last_opt (fun l' -> l' < l) t.used with
      | Some (l', _) -> l'
      | None -> l - (gap * (k + 1))
    in
    let hi =
      match M.find_first_opt (fun l' -> l' > l) t.used with
      | Some (l', _) -> l'
      | None -> l + (gap * (k + 1))
    in
    let room = hi - lo in
    if room < k + 1 then begin
      relabel t;
      split t x ~parts
    end
    else begin
      remove t x;
      let step = room / (k + 1) in
      List.iteri (fun i p -> set t p (lo + (step * (i + 1)))) parts
    end
  end

let check t =
  if Hashtbl.length t.labels <> M.cardinal t.used then
    failwith "Rank.check: size mismatch";
  (* Order-free: each check is independent. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun x l ->
      match M.find_opt l t.used with
      | Some x' when x' = x -> ()
      | _ -> failwith "Rank.check: views disagree")
    t.labels
