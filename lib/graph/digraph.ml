type node = int
type label = Interner.symbol

type update = Insert of node * node | Delete of node * node

type t = {
  interner : Interner.t;
  labels : label Vec.t;
  succ : (node, unit) Hashtbl.t Vec.t;
  pred : (node, unit) Hashtbl.t Vec.t;
  by_label : (label, node list) Hashtbl.t;
  mutable n_edges : int;
}

let create ?(hint = 16) () =
  {
    interner = Interner.create ();
    labels = Vec.create ();
    succ = Vec.create ();
    pred = Vec.create ();
    by_label = Hashtbl.create (max 16 hint);
    n_edges = 0;
  }

let interner g = g.interner
let intern_label g s = Interner.intern g.interner s

let n_nodes g = Vec.length g.labels
let n_edges g = g.n_edges

let mem_node g v = v >= 0 && v < n_nodes g

let check_node g v =
  if not (mem_node g v) then invalid_arg "Digraph: unknown node"

let label g v = check_node g v; Vec.get g.labels v
let label_name g v = Interner.name g.interner (label g v)

let add_node_sym g l =
  let v = Vec.push g.labels l in
  ignore (Vec.push g.succ (Hashtbl.create 4));
  ignore (Vec.push g.pred (Hashtbl.create 4));
  let old = Option.value ~default:[] (Hashtbl.find_opt g.by_label l) in
  Hashtbl.replace g.by_label l (v :: old);
  v

let add_node g s = add_node_sym g (intern_label g s)

let mem_edge g u v =
  mem_node g u && mem_node g v && Hashtbl.mem (Vec.get g.succ u) v

let add_edge g u v =
  check_node g u;
  check_node g v;
  let su = Vec.get g.succ u in
  if Hashtbl.mem su v then false
  else begin
    Hashtbl.replace su v ();
    Hashtbl.replace (Vec.get g.pred v) u ();
    g.n_edges <- g.n_edges + 1;
    true
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  let su = Vec.get g.succ u in
  if not (Hashtbl.mem su v) then false
  else begin
    Hashtbl.remove su v;
    Hashtbl.remove (Vec.get g.pred v) u;
    g.n_edges <- g.n_edges - 1;
    true
  end

let apply g = function
  | Insert (u, v) -> add_edge g u v
  | Delete (u, v) -> remove_edge g u v

let apply_batch g us = List.iter (fun u -> ignore (apply g u)) us

let out_degree g v = check_node g v; Hashtbl.length (Vec.get g.succ v)
let in_degree g v = check_node g v; Hashtbl.length (Vec.get g.pred v)

let iter_nodes f g =
  for v = 0 to n_nodes g - 1 do f v done

let iter_succ f g v =
  check_node g v;
  (Hashtbl.iter [@lint.allow "D2"]) (fun w () -> f w) (Vec.get g.succ v)

let iter_pred f g v =
  check_node g v;
  (Hashtbl.iter [@lint.allow "D2"]) (fun u () -> f u) (Vec.get g.pred v)

(* Adjacency keys in ascending node order. The unsorted [iter_succ] /
   [iter_pred] visit neighbors in hash-table order, which varies with the
   hash seed; every consumer whose visit order can leak into certificates,
   traces or user-visible output must use these instead. *)
let sorted_keys tbl =
  let acc = (Hashtbl.fold [@lint.allow "D2"]) (fun k () acc -> k :: acc) tbl [] in
  List.sort Int.compare acc

let iter_succ_sorted f g v =
  check_node g v;
  List.iter f (sorted_keys (Vec.get g.succ v))

let iter_pred_sorted f g v =
  check_node g v;
  List.iter f (sorted_keys (Vec.get g.pred v))

let iter_edges f g =
  iter_nodes (fun u -> iter_succ_sorted (fun v -> f u v) g u) g

let succ_list g v = check_node g v; sorted_keys (Vec.get g.succ v)

let pred_list g v = check_node g v; sorted_keys (Vec.get g.pred v)

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let fold_nodes f g acc =
  let acc = ref acc in
  iter_nodes (fun v -> acc := f v !acc) g;
  !acc

let nodes_with_label g l =
  Option.value ~default:[] (Hashtbl.find_opt g.by_label l)

let copy g =
  let copy_adj tbl =
    let v = Vec.create () in
    Vec.iter (fun h -> ignore (Vec.push v (Hashtbl.copy h))) tbl;
    v
  in
  let labels = Vec.create () in
  Vec.iter (fun l -> ignore (Vec.push labels l)) g.labels;
  {
    interner = g.interner;
    labels;
    succ = copy_adj g.succ;
    pred = copy_adj g.pred;
    by_label = Hashtbl.copy g.by_label;
    n_edges = g.n_edges;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges@," (n_nodes g)
    (n_edges g);
  if n_nodes g <= 40 then begin
    iter_nodes
      (fun v -> Format.fprintf ppf "  %d:%s@," v (label_name g v))
      g;
    iter_edges (fun u v -> Format.fprintf ppf "  %d -> %d@," u v) g
  end;
  Format.fprintf ppf "@]"
