type node = int
type label = Interner.symbol

type update = Insert of node * node | Delete of node * node

type backend = [ `Hashtbl | `Csr ]

(* The original Hashtbl-of-Hashtbls backend: per-node adjacency tables,
   O(1) expected updates, hash-order iteration behind sorted helpers. *)
module H = struct
  type t = {
    interner : Interner.t;
    labels : label Vec.t;
    succ : (node, unit) Hashtbl.t Vec.t;
    pred : (node, unit) Hashtbl.t Vec.t;
    by_label : (label, node list) Hashtbl.t;
    mutable n_edges : int;
  }

  let create ?(hint = 16) () =
    let g =
      {
        interner = Interner.create ();
        labels = Vec.create ();
        succ = Vec.create ();
        pred = Vec.create ();
        by_label = Hashtbl.create (max 16 hint);
        n_edges = 0;
      }
    in
    (* Pre-size the per-node vectors too; the filler tables are never
       observed (cells are overwritten by push before becoming live). *)
    let hint = max 1 hint in
    Vec.reserve g.labels hint 0;
    Vec.reserve g.succ hint (Hashtbl.create 1);
    Vec.reserve g.pred hint (Hashtbl.create 1);
    g

  let interner g = g.interner
  let intern_label g s = Interner.intern g.interner s

  let n_nodes g = Vec.length g.labels
  let n_edges g = g.n_edges

  let mem_node g v = v >= 0 && v < n_nodes g

  let check_node g v =
    if not (mem_node g v) then invalid_arg "Digraph: unknown node"

  let label g v = check_node g v; Vec.get g.labels v
  let label_name g v = Interner.name g.interner (label g v)

  let add_node_sym g l =
    let v = Vec.push g.labels l in
    ignore (Vec.push g.succ (Hashtbl.create 4));
    ignore (Vec.push g.pred (Hashtbl.create 4));
    let old = Option.value ~default:[] (Hashtbl.find_opt g.by_label l) in
    Hashtbl.replace g.by_label l (v :: old);
    v

  let add_node g s = add_node_sym g (intern_label g s)

  let mem_edge g u v =
    mem_node g u && mem_node g v && Hashtbl.mem (Vec.get g.succ u) v

  let add_edge g u v =
    check_node g u;
    check_node g v;
    let su = Vec.get g.succ u in
    if Hashtbl.mem su v then false
    else begin
      Hashtbl.replace su v ();
      Hashtbl.replace (Vec.get g.pred v) u ();
      g.n_edges <- g.n_edges + 1;
      true
    end

  let remove_edge g u v =
    check_node g u;
    check_node g v;
    let su = Vec.get g.succ u in
    if not (Hashtbl.mem su v) then false
    else begin
      Hashtbl.remove su v;
      Hashtbl.remove (Vec.get g.pred v) u;
      g.n_edges <- g.n_edges - 1;
      true
    end

  let out_degree g v = check_node g v; Hashtbl.length (Vec.get g.succ v)
  let in_degree g v = check_node g v; Hashtbl.length (Vec.get g.pred v)

  let iter_succ f g v =
    check_node g v;
    (Hashtbl.iter [@lint.allow "D2"]) (fun w () -> f w) (Vec.get g.succ v)

  let iter_pred f g v =
    check_node g v;
    (Hashtbl.iter [@lint.allow "D2"]) (fun u () -> f u) (Vec.get g.pred v)

  (* Adjacency keys in ascending node order. The unsorted [iter_succ] /
     [iter_pred] visit neighbors in hash-table order, which varies with the
     hash seed; every consumer whose visit order can leak into certificates,
     traces or user-visible output must use these instead. *)
  let sorted_keys tbl =
    let acc =
      (Hashtbl.fold [@lint.allow "D2"]) (fun k () acc -> k :: acc) tbl []
    in
    List.sort Int.compare acc

  let iter_succ_sorted f g v =
    check_node g v;
    List.iter f (sorted_keys (Vec.get g.succ v))

  let iter_pred_sorted f g v =
    check_node g v;
    List.iter f (sorted_keys (Vec.get g.pred v))

  let succ_list g v = check_node g v; sorted_keys (Vec.get g.succ v)
  let pred_list g v = check_node g v; sorted_keys (Vec.get g.pred v)

  let nodes_with_label g l =
    Option.value ~default:[] (Hashtbl.find_opt g.by_label l)

  let copy g =
    let copy_adj tbl =
      let v = Vec.create () in
      Vec.iter (fun h -> ignore (Vec.push v (Hashtbl.copy h))) tbl;
      v
    in
    {
      interner = g.interner;
      labels = Vec.copy g.labels;
      succ = copy_adj g.succ;
      pred = copy_adj g.pred;
      by_label = Hashtbl.copy g.by_label;
      n_edges = g.n_edges;
    }
end

type t = Hg of H.t | Cg of Csr.t

let create ?hint ?(backend = `Hashtbl) () =
  match backend with
  | `Hashtbl -> Hg (H.create ?hint ())
  | `Csr -> Cg (Csr.create ?hint ())

let backend = function Hg _ -> `Hashtbl | Cg _ -> `Csr
let backend_name = function `Hashtbl -> "hashtbl" | `Csr -> "csr"

let backend_of_string = function
  | "hashtbl" -> Some `Hashtbl
  | "csr" -> Some `Csr
  | _ -> None

let copy = function Hg g -> Hg (H.copy g) | Cg g -> Cg (Csr.copy g)

let compact = function Hg _ -> () | Cg g -> Csr.compact g

let overlay_size = function Hg _ -> 0 | Cg g -> Csr.overlay_size g

(* Attach instrumentation sinks to the storage layer. The Hashtbl
   backend has no compaction or overlay to report, so this is a no-op
   there; on CSR it wires the overlay gauges, compaction histograms and
   [Compaction] trace events into the engine's registry and tracer. *)
let instrument ~obs ~trace = function
  | Hg _ -> ()
  | Cg g -> Csr.instrument g ~obs ~trace

let interner = function Hg g -> H.interner g | Cg g -> Csr.interner g

let intern_label g s =
  match g with Hg g -> H.intern_label g s | Cg g -> Csr.intern_label g s

let n_nodes = function Hg g -> H.n_nodes g | Cg g -> Csr.n_nodes g
let n_edges = function Hg g -> H.n_edges g | Cg g -> Csr.n_edges g

let mem_node g v =
  match g with Hg g -> H.mem_node g v | Cg g -> Csr.mem_node g v

let label g v = match g with Hg g -> H.label g v | Cg g -> Csr.label g v

let label_name g v =
  match g with Hg g -> H.label_name g v | Cg g -> Csr.label_name g v

let add_node_sym g l =
  match g with Hg g -> H.add_node_sym g l | Cg g -> Csr.add_node_sym g l

let add_node g s =
  match g with Hg g -> H.add_node g s | Cg g -> Csr.add_node g s

let mem_edge g u v =
  match g with Hg g -> H.mem_edge g u v | Cg g -> Csr.mem_edge g u v

let add_edge g u v =
  match g with Hg g -> H.add_edge g u v | Cg g -> Csr.add_edge g u v

let remove_edge g u v =
  match g with Hg g -> H.remove_edge g u v | Cg g -> Csr.remove_edge g u v

let apply g = function
  | Insert (u, v) -> add_edge g u v
  | Delete (u, v) -> remove_edge g u v

let apply_batch g us = List.iter (fun u -> ignore (apply g u)) us

let out_degree g v =
  match g with Hg g -> H.out_degree g v | Cg g -> Csr.out_degree g v

let in_degree g v =
  match g with Hg g -> H.in_degree g v | Cg g -> Csr.in_degree g v

let iter_nodes f g =
  for v = 0 to n_nodes g - 1 do f v done

(* On the CSR backend the "unsorted" iterators are the sorted merge — there
   is no cheaper unordered walk of a CSR row, and deterministic order is
   within the unspecified-order contract. *)
let iter_succ f g v =
  match g with
  | Hg g -> H.iter_succ f g v
  | Cg g -> Csr.iter_succ_sorted f g v

let iter_pred f g v =
  match g with
  | Hg g -> H.iter_pred f g v
  | Cg g -> Csr.iter_pred_sorted f g v

let iter_succ_sorted f g v =
  match g with
  | Hg g -> H.iter_succ_sorted f g v
  | Cg g -> Csr.iter_succ_sorted f g v

let iter_pred_sorted f g v =
  match g with
  | Hg g -> H.iter_pred_sorted f g v
  | Cg g -> Csr.iter_pred_sorted f g v

let iter_edges f g =
  iter_nodes (fun u -> iter_succ_sorted (fun v -> f u v) g u) g

let succ_list g v =
  match g with Hg g -> H.succ_list g v | Cg g -> Csr.succ_list g v

let pred_list g v =
  match g with Hg g -> H.pred_list g v | Cg g -> Csr.pred_list g v

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let fold_nodes f g acc =
  let acc = ref acc in
  iter_nodes (fun v -> acc := f v !acc) g;
  !acc

let nodes_with_label g l =
  match g with
  | Hg g -> H.nodes_with_label g l
  | Cg g -> Csr.nodes_with_label g l

let convert ~backend:b g =
  if b = backend g then g
  else begin
    let h = create ~hint:(n_nodes g) ~backend:b () in
    iter_nodes (fun v -> ignore (add_node h (label_name g v))) g;
    iter_edges (fun u v -> ignore (add_edge h u v)) g;
    compact h;
    h
  end

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d edges@," (n_nodes g)
    (n_edges g);
  if n_nodes g <= 40 then begin
    iter_nodes
      (fun v -> Format.fprintf ppf "  %d:%s@," v (label_name g v))
      g;
    iter_edges (fun u v -> Format.fprintf ppf "  %d -> %d@," u v) g
  end;
  Format.fprintf ppf "@]"
