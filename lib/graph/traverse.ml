type node = Digraph.node

let bfs ?(bound = max_int) ~dir g sources =
  let dist = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem dist s) then begin
        Hashtbl.replace dist s 0;
        Queue.add s q
      end)
    sources;
  (* Order-free: BFS levels are unique whatever the expansion order. The
     unsorted iterators are hash-order on the Hashtbl backend and the
     sorted merge on CSR; either way the result is the same dist map. *)
  let step =
    match dir with
    | `Forward -> (Digraph.iter_succ [@lint.allow "D2"])
    | `Backward -> (Digraph.iter_pred [@lint.allow "D2"])
  in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = Hashtbl.find dist v in
    if d < bound then
      step
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (d + 1);
            Queue.add w q
          end)
        g v
  done;
  dist

let ball g sources ~d =
  let dist = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem dist s) then begin
        Hashtbl.replace dist s 0;
        Queue.add s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let dv = Hashtbl.find dist v in
    if dv < d then begin
      let visit w =
        if not (Hashtbl.mem dist w) then begin
          Hashtbl.replace dist w (dv + 1);
          Queue.add w q
        end
      in
      (* Order-free: see above. *)
      (Digraph.iter_succ [@lint.allow "D2"]) visit g v;
      (Digraph.iter_pred [@lint.allow "D2"]) visit g v
    end
  done;
  dist

let reachable ?(within = fun _ -> true) g ~dir sources =
  let seen = Hashtbl.create 64 in
  let stack = Stack.create () in
  List.iter
    (fun s ->
      if (not (Hashtbl.mem seen s)) && within s then begin
        Hashtbl.replace seen s ();
        Stack.push s stack
      end)
    sources;
  (* Order-free: computes a reachability set. *)
  let step =
    match dir with
    | `Forward -> (Digraph.iter_succ [@lint.allow "D2"])
    | `Backward -> (Digraph.iter_pred [@lint.allow "D2"])
  in
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    step
      (fun w ->
        if (not (Hashtbl.mem seen w)) && within w then begin
          Hashtbl.replace seen w ();
          Stack.push w stack
        end)
      g v
  done;
  seen

let reaches ?(within = fun _ -> true) g u v =
  if u = v then true
  else begin
    let seen = Hashtbl.create 64 in
    Hashtbl.replace seen u ();
    let stack = Stack.create () in
    Stack.push u stack;
    let found = ref false in
    (try
       while not (Stack.is_empty stack) do
         let x = Stack.pop stack in
         (* Order-free: boolean result only. *)
         (Digraph.iter_succ [@lint.allow "D2"])
           (fun w ->
             if w = v then begin
               found := true;
               raise Exit
             end;
             if (not (Hashtbl.mem seen w)) && within w then begin
               Hashtbl.replace seen w ();
               Stack.push w stack
             end)
           g x
       done
     with Exit -> ());
    !found
  end
