(** Mutable node-labeled directed graphs.

    This is the substrate shared by every query class in the library: a
    directed graph [G = (V, E, l)] in the sense of the paper (Section 2),
    where nodes carry a label drawn from a finite alphabet and updates are
    edge insertions and deletions.

    Nodes are dense integer identifiers allocated by {!add_node}; labels are
    interned strings (see {!Interner}). Both successor and predecessor
    adjacency are maintained, with O(1) expected edge insertion, deletion and
    membership. Nodes are never removed (the paper's update model is
    edge-only; fresh nodes may arrive together with inserted edges).

    Two backends implement this interface behind {!create}'s [?backend]
    selector; both present identical views through every accessor below
    (adjacency, degrees, labels, membership — the cross-backend battery in
    [test/test_backend.ml] asserts it byte for byte):

    - [`Hashtbl] (the default): per-node hash tables; O(1) expected
      updates; {!iter_succ_sorted} pays a fold-and-sort per call.
    - [`Csr]: flat compressed-sparse-row Bigarrays plus a small sorted
      delta overlay (see {!Csr}); sorted iteration is a merge, sorted by
      construction, and the adjacency lives off the OCaml heap — the
      choice for batch traversals over large graphs. *)

type node = int
type label = Interner.symbol

type update =
  | Insert of node * node  (** [insert e] — add edge [(u, v)]. *)
  | Delete of node * node  (** [delete e] — remove edge [(u, v)]. *)

type backend = [ `Hashtbl | `Csr ]

type t

(** {1 Construction} *)

val create : ?hint:int -> ?backend:backend -> unit -> t
(** An empty graph. [hint] pre-sizes internal tables for [hint] nodes (on
    both backends: label/adjacency/degree vectors never reallocate below
    [hint] nodes). [backend] defaults to [`Hashtbl]. *)

val backend : t -> backend

val backend_name : backend -> string
(** ["hashtbl"] / ["csr"] — the CLI's [--backend] vocabulary. *)

val backend_of_string : string -> backend option

val copy : t -> t
(** Deep copy (shares the interner). On the CSR backend this preserves
    pending overlay deltas and shares only the frozen base arrays; the
    copy is fully independent. *)

val convert : backend:backend -> t -> t
(** The same graph rebuilt on the given backend ([g] itself if it already
    is); shares nothing with the original. Node ids, label names and the
    {!nodes_with_label} order are preserved. *)

val compact : t -> unit
(** [`Csr]: fold the delta overlay into fresh base arrays (semantically a
    no-op; O(n + m)). [`Hashtbl]: nothing. *)

val overlay_size : t -> int
(** [`Csr]: live overlay entries pending compaction. [`Hashtbl]: 0. *)

val instrument : obs:Ig_obs.Obs.t -> trace:Ig_obs.Tracer.t -> t -> unit
(** Attach instrumentation sinks to the storage layer. On [`Csr] the
    overlay add/del sizes become gauges and compactions record latency
    and bytes-copied histograms plus a [Compaction] trace event; on
    [`Hashtbl] this is a no-op. {!copy} resets the copy's sinks to noop
    so scratch and oracle copies never pollute the engine's registry. *)

val add_node : t -> string -> node
(** Add a fresh node with the given label string. *)

val add_node_sym : t -> label -> node
(** Add a fresh node with an already-interned label. *)

val add_edge : t -> node -> node -> bool
(** [add_edge g u v] inserts edge [(u,v)]. Returns [false] if it was already
    present (the graph is a simple digraph; parallel edges collapse).
    Self-loops are allowed. *)

val remove_edge : t -> node -> node -> bool
(** Returns [false] if the edge was absent. *)

val apply : t -> update -> bool
(** Apply one unit update; [false] if it was a no-op. *)

val apply_batch : t -> update list -> unit

(** {1 Labels} *)

val interner : t -> Interner.t
val intern_label : t -> string -> label
val label : t -> node -> label
val label_name : t -> node -> string

(** {1 Inspection} *)

val n_nodes : t -> int
val n_edges : t -> int
val mem_node : t -> node -> bool
val mem_edge : t -> node -> node -> bool
val out_degree : t -> node -> int
val in_degree : t -> node -> int

val iter_nodes : (node -> unit) -> t -> unit

val iter_succ : (node -> unit) -> t -> node -> unit
(** Successors in unspecified order — hash-table order on [`Hashtbl]
    (varies with the process hash seed), ascending on [`Csr] (a CSR row
    has no cheaper unordered walk). Use only where the visit order
    provably cannot reach certificates, trace events or user-visible
    output; otherwise use {!iter_succ_sorted}. *)

val iter_pred : (node -> unit) -> t -> node -> unit
(** Predecessor counterpart of {!iter_succ}; same order caveat. *)

val iter_succ_sorted : (node -> unit) -> t -> node -> unit
(** Successors in ascending node order — deterministic across hash seeds.
    Costs an O(d log d) fold-and-sort per call on [`Hashtbl]; on [`Csr]
    it is an O(d) merge of the base row with the overlay, sorted by
    construction. *)

val iter_pred_sorted : (node -> unit) -> t -> node -> unit
(** Predecessors in ascending node order; see {!iter_succ_sorted}. *)

val iter_edges : (node -> node -> unit) -> t -> unit
(** All edges in lexicographic [(u, v)] order (deterministic). *)

val succ_list : t -> node -> node list
(** Successors in ascending node order. *)

val pred_list : t -> node -> node list
(** Predecessors in ascending node order. *)

val edges : t -> (node * node) list
(** All edges in lexicographic [(u, v)] order (deterministic). *)

val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a

val nodes_with_label : t -> label -> node list
(** All nodes carrying the given label (maintained index; O(result)). *)

val pp : Format.formatter -> t -> unit
(** Debug printer: node count, edge count, and the edge list for small
    graphs. *)
