(** Mutable node-labeled directed graphs.

    This is the substrate shared by every query class in the library: a
    directed graph [G = (V, E, l)] in the sense of the paper (Section 2),
    where nodes carry a label drawn from a finite alphabet and updates are
    edge insertions and deletions.

    Nodes are dense integer identifiers allocated by {!add_node}; labels are
    interned strings (see {!Interner}). Both successor and predecessor
    adjacency are maintained, with O(1) expected edge insertion, deletion and
    membership. Nodes are never removed (the paper's update model is
    edge-only; fresh nodes may arrive together with inserted edges). *)

type node = int
type label = Interner.symbol

type update =
  | Insert of node * node  (** [insert e] — add edge [(u, v)]. *)
  | Delete of node * node  (** [delete e] — remove edge [(u, v)]. *)

type t

(** {1 Construction} *)

val create : ?hint:int -> unit -> t
(** An empty graph. [hint] pre-sizes internal tables for [hint] nodes. *)

val copy : t -> t
(** Deep copy (shares the interner). *)

val add_node : t -> string -> node
(** Add a fresh node with the given label string. *)

val add_node_sym : t -> label -> node
(** Add a fresh node with an already-interned label. *)

val add_edge : t -> node -> node -> bool
(** [add_edge g u v] inserts edge [(u,v)]. Returns [false] if it was already
    present (the graph is a simple digraph; parallel edges collapse).
    Self-loops are allowed. *)

val remove_edge : t -> node -> node -> bool
(** Returns [false] if the edge was absent. *)

val apply : t -> update -> bool
(** Apply one unit update; [false] if it was a no-op. *)

val apply_batch : t -> update list -> unit

(** {1 Labels} *)

val interner : t -> Interner.t
val intern_label : t -> string -> label
val label : t -> node -> label
val label_name : t -> node -> string

(** {1 Inspection} *)

val n_nodes : t -> int
val n_edges : t -> int
val mem_node : t -> node -> bool
val mem_edge : t -> node -> node -> bool
val out_degree : t -> node -> int
val in_degree : t -> node -> int

val iter_nodes : (node -> unit) -> t -> unit

val iter_succ : (node -> unit) -> t -> node -> unit
(** Successors in unspecified (hash-table) order, which varies with the
    process hash seed. Use only where the visit order provably cannot
    reach certificates, trace events or user-visible output; otherwise use
    {!iter_succ_sorted}. *)

val iter_pred : (node -> unit) -> t -> node -> unit
(** Predecessor counterpart of {!iter_succ}; same order caveat. *)

val iter_succ_sorted : (node -> unit) -> t -> node -> unit
(** Successors in ascending node order — deterministic across hash seeds.
    Costs an O(d log d) sort of the adjacency keys per call. *)

val iter_pred_sorted : (node -> unit) -> t -> node -> unit
(** Predecessors in ascending node order; see {!iter_succ_sorted}. *)

val iter_edges : (node -> node -> unit) -> t -> unit
(** All edges in lexicographic [(u, v)] order (deterministic). *)

val succ_list : t -> node -> node list
(** Successors in ascending node order. *)

val pred_list : t -> node -> node list
(** Predecessors in ascending node order. *)

val edges : t -> (node * node) list
(** All edges in lexicographic [(u, v)] order (deterministic). *)

val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a

val nodes_with_label : t -> label -> node list
(** All nodes carrying the given label (maintained index; O(result)). *)

val pp : Format.formatter -> t -> unit
(** Debug printer: node count, edge count, and the edge list for small
    graphs. *)
