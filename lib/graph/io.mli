(** Plain-text graph serialization.

    Line-oriented format, one record per line:
    - [# ...] comment (ignored)
    - [v <id> <label>] node declaration
    - [e <u> <v>] edge declaration (endpoints must be declared first)

    External ids may be arbitrary non-negative integers; they are remapped to
    the dense internal ids on load. The readers build the graph on the
    requested {!Digraph.backend} (default [`Hashtbl]) and compact it, so a
    CSR load hands back flat base arrays with an empty overlay. *)

val write : Format.formatter -> Digraph.t -> unit

val save : string -> Digraph.t -> unit
(** Write to a file path. *)

val read : ?backend:Digraph.backend -> in_channel -> Digraph.t
(** @raise Failure on malformed input, with a line number. *)

val load : ?backend:Digraph.backend -> string -> Digraph.t

val of_string : ?backend:Digraph.backend -> string -> Digraph.t
(** Parse from an in-memory string (used by tests). *)
