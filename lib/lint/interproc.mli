(** Phase 2 of the cross-module analyzer: interprocedural rules D6-D8
    over per-module {!Summary} extracts, plus the module-level
    effect/dependency graph.

    - [D6] no unregistered module-scope mutable state in lib/ (outside
      lib/obs, whose registry is the sanctioned home for cross-cutting
      state). An [Error] when the owning module is reachable from the
      engine/graph/journal modules — those must be shard-local by
      construction before any OCaml 5 domain is spawned — and a
      census [Warning] otherwise. [[@@lint.allow "D6"]] sanctions a
      deliberate singleton.
    - [D7] all graph mutation flows through the Digraph/Csr entry
      points: direct Bigarray-row writes and container mutators that
      reach adjacency state are flagged outside lib/graph.
    - [D8] every span region is exception-safe: bare [span_begin]
      without a [Fun.protect]-guarded [span_end] in the same binding is
      flagged (the [with_span]/[with_apply] combinators are the
      sanctioned form). *)

val d6_root : string -> bool
(** Paths whose modules root the D6 reachability walk (engine dirs +
    lib/journal). *)

val reachable : Summary.t list -> Set.Make(String).t
(** Paths of the summarized modules transitively reachable (via the
    approximate open/call graph) from the D6 roots, roots included. *)

val analyze : Summary.t list -> Diag.diagnostic list * int
(** Run D6-D8 over the summaries. Returns the sorted diagnostics and
    the number of [lint.allow]-suppressed findings. *)

val effect_graph_dot : Summary.t list -> string
(** Graphviz (dot) rendering of the lib/ modules: one node per module
    labelled with its worst export effect (box fill), double-bordered
    when the module owns census state, one edge per resolved intra-repo
    dependency. Byte-deterministic: sorted node and edge order. *)
