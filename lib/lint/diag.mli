(** Shared diagnostic representation for both linter phases (the
    per-file D1-D5 pass and the interprocedural D6-D8 pass). *)

type severity = Error | Warning

type diagnostic = {
  rule : string;
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  severity : severity;
  message : string;
}

val severity_name : severity -> string
val severity_of_name : string -> severity option

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Order by (file, line, col, rule). *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [file:line:col: [rule/severity] message] — one line per finding. *)

val to_json : diagnostic -> Ig_obs.Json.t
val of_json : Ig_obs.Json.t -> (diagnostic, string) Stdlib.result
