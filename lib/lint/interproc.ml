(* Phase 2 of the cross-module analyzer: interprocedural rules over
   per-module summaries (Summary).

   D6  no unregistered module-scope mutable state reachable from the
       engine, graph or journal modules. Sharded multicore serving
       (ROADMAP: OCaml 5 domains) needs every engine instance to be
       shard-local by construction; a hidden global ref or hash table
       would be shared by all domains. The Obs registry (lib/obs) is
       the one sanctioned home for cross-cutting state, and a singleton
       can be explicitly accepted with [[@@lint.allow "D6"]]. Census
       findings in lib/ modules *not* reachable from those roots are
       reported as warnings — visible in the census, not yet blocking.

   D7  all graph mutation flows through the Digraph/Csr entry points.
       Direct writes to adjacency state (Bigarray row pokes, container
       mutators reaching succ/pred/by_label/adj projections or values
       built by Digraph.*/Csr.* calls) outside lib/graph would bypass
       the CSR overlay invariants (add∩base=∅, del⊆base) and the
       backend seam PR 7 established.

   D8  every span region is exception-safe: a bare [*.span_begin] whose
       enclosing binding does not also guard a [span_end] inside
       [Fun.protect ~finally] is flagged — a raising rewrite rule would
       leak the open span and poison every later span_end (and the
       telemetry snapshots) with a misnested stack.

   The rules are scoped by path: D6/D8 apply to lib/ outside lib/obs
   (whose registry and combinators are the sanctioned implementations),
   D7 to lib/ outside lib/graph (where direct representation writes are
   the backend's own business). Summaries for other paths (fixtures,
   bin/) produce no findings, so the extraction API can be exercised on
   synthetic inputs. *)

module SS = Set.Make (String)
module SM = Map.Make (String)

let in_lib path = String.starts_with ~prefix:"lib/" path

let d6_roots =
  [
    "lib/graph/"; "lib/iso/"; "lib/kws/"; "lib/rpq/"; "lib/scc/";
    "lib/sim/"; "lib/journal/";
  ]

let d6_root path = List.exists (fun d -> String.starts_with ~prefix:d path) d6_roots
let sanctioned path = String.starts_with ~prefix:"lib/obs/" path
let in_graph path = String.starts_with ~prefix:"lib/graph/" path

(* Resolve a referenced module name to summarized paths. Same-directory
   modules win (lib/kws's [Batch] is lib/kws/batch.ml, not lib/rpq's);
   otherwise every summarized module of that name is an edge — for
   reachability, over-approximating is the safe direction. *)
let resolve_index summaries =
  List.fold_left
    (fun acc (s : Summary.t) ->
      SM.update s.Summary.module_name
        (fun l -> Some (s.Summary.path :: Option.value ~default:[] l))
        acc)
    SM.empty summaries

let resolve index ~from name =
  match SM.find_opt name index with
  | None -> []
  | Some paths -> (
      let dir = Filename.dirname from in
      match List.filter (fun p -> Filename.dirname p = dir) paths with
      | [] -> paths
      | same_dir -> same_dir)

(* Transitive dependency closure of the D6 root modules. *)
let reachable summaries =
  let index = resolve_index summaries in
  let by_path =
    List.fold_left
      (fun acc (s : Summary.t) -> SM.add s.Summary.path s acc)
      SM.empty summaries
  in
  let seen = ref SS.empty in
  let rec visit path =
    if not (SS.mem path !seen) then begin
      seen := SS.add path !seen;
      match SM.find_opt path by_path with
      | None -> ()
      | Some s ->
          List.iter
            (fun dep ->
              List.iter visit (resolve index ~from:path dep))
            s.Summary.deps
    end
  in
  List.iter
    (fun (s : Summary.t) -> if d6_root s.Summary.path then visit s.Summary.path)
    summaries;
  !seen

let analyze summaries =
  let reach = reachable summaries in
  let diags = ref [] in
  let suppressed = ref 0 in
  let emit rule file line col severity message =
    diags :=
      { Diag.rule; file; line; col; severity; message } :: !diags
  in
  List.iter
    (fun (s : Summary.t) ->
      let path = s.Summary.path in
      (* D6: module-scope mutable-state census. *)
      if in_lib path && not (sanctioned path) then
        List.iter
          (fun (g : Summary.global) ->
            if g.Summary.g_allowed then incr suppressed
            else if SS.mem path reach then
              emit "D6" path g.Summary.g_line g.Summary.g_col Diag.Error
                (Printf.sprintf
                   "module-scope mutable state %s (%s) is reachable from the \
                    engine/graph/journal modules: shard-local engines forbid \
                    hidden globals — own it in an engine record, register \
                    it with the Obs registry, or annotate the singleton \
                    [@@lint.allow \"D6\"]"
                   g.Summary.g_name g.Summary.g_kind)
            else
              emit "D6" path g.Summary.g_line g.Summary.g_col Diag.Warning
                (Printf.sprintf
                   "module-scope mutable state %s (%s) in lib/ (census): not \
                    reachable from the engines today, but a future dependency \
                    would make it a shared-shard hazard"
                   g.Summary.g_name g.Summary.g_kind))
          s.Summary.globals;
      (* D7: graph mutation outside the backend seam. *)
      if in_lib path && not (in_graph path) then
        List.iter
          (fun (m : Summary.graph_mutation) ->
            if m.Summary.m_allowed then incr suppressed
            else
              emit "D7" path m.Summary.m_line m.Summary.m_col Diag.Error
                (Printf.sprintf
                   "direct %s on %s bypasses the Digraph/Csr backend seam; \
                    graph mutation must flow through the lib/graph entry \
                    points (or annotate a sanctioned site with [@lint.allow \
                    \"D7\"])"
                   m.Summary.m_prim m.Summary.m_target))
          s.Summary.graph_mutations;
      (* D8: exception-safe span regions. *)
      if in_lib path then
        List.iter
          (fun (sp : Summary.span_site) ->
            if sp.Summary.s_protected then ()
            else if sp.Summary.s_allowed then incr suppressed
            else
              emit "D8" path sp.Summary.s_line sp.Summary.s_col Diag.Error
                (Printf.sprintf
                   "%s in %s opens a span that an exception can leak; wrap \
                    the region in Obs.with_span/with_apply or Fun.protect \
                    ~finally a span_end"
                   sp.Summary.s_fn sp.Summary.s_in))
          s.Summary.spans)
    summaries;
  (List.sort Diag.compare_diagnostic !diags, !suppressed)

(* ---- module-level effect/dependency graph ------------------------------------ *)

let node_id path =
  let p =
    match String.length path with
    | n when n > 4 && String.sub path 0 4 = "lib/" ->
        String.sub path 4 (n - 4)
    | _ -> path
  in
  String.map
    (fun c -> if c = '/' || c = '.' || c = '-' then '_' else c)
    (Filename.remove_extension p)

let worst_effect (s : Summary.t) =
  List.fold_left
    (fun acc (x : Summary.export) ->
      Summary.effect_join acc x.Summary.x_effect)
    Summary.Pure s.Summary.exports

let effect_color = function
  | Summary.Pure -> "#e8f5e9"
  | Summary.Mutates_argument -> "#e3f2fd"
  | Summary.Does_io -> "#fff3e0"
  | Summary.Mutates_global -> "#ffebee"

(* Graphviz rendering of the lib/ modules: one box per module, filled by
   the worst effect among its exports, double-bordered when the module
   owns census state; one edge per resolved intra-repo dependency.
   Deterministic: nodes and edges are emitted in sorted order. *)
let effect_graph_dot summaries =
  let libs =
    List.filter (fun (s : Summary.t) -> in_lib s.Summary.path) summaries
    |> List.sort (fun (a : Summary.t) (b : Summary.t) ->
           String.compare a.Summary.path b.Summary.path)
  in
  let index = resolve_index libs in
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph lint_effects {\n";
  Buffer.add_string b "  rankdir=LR;\n";
  Buffer.add_string b
    "  node [shape=box, style=filled, fontname=\"monospace\"];\n";
  List.iter
    (fun (s : Summary.t) ->
      let w = worst_effect s in
      let peripheries =
        if s.Summary.globals <> [] then ", peripheries=2" else ""
      in
      Buffer.add_string b
        (Printf.sprintf
           "  \"%s\" [label=\"%s\\n%s\\n%s\", fillcolor=\"%s\"%s];\n"
           (node_id s.Summary.path) s.Summary.module_name
           (Filename.dirname s.Summary.path)
           (Summary.effect_name w) (effect_color w) peripheries))
    libs;
  List.iter
    (fun (s : Summary.t) ->
      let targets =
        List.concat_map
          (fun dep -> resolve index ~from:s.Summary.path dep)
          s.Summary.deps
        |> List.filter (fun p -> p <> s.Summary.path)
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun target ->
          Buffer.add_string b
            (Printf.sprintf "  \"%s\" -> \"%s\";\n"
               (node_id s.Summary.path) (node_id target)))
        targets)
    libs;
  Buffer.add_string b "}\n";
  Buffer.contents b
