(* Shared diagnostic representation for both linter phases.

   The per-file pass (Lint, rules D1-D5) and the interprocedural pass
   (Interproc, rules D6-D8 over Summary extracts) both report through
   this type, so baselines, reports and the CLI treat every rule
   uniformly. *)

module Json = Ig_obs.Json

type severity = Error | Warning

type diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let compare_diagnostic a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s/%s] %s" d.file d.line d.col d.rule
    (severity_name d.severity) d.message

let to_json d =
  Json.Obj
    [
      ("rule", Json.Str d.rule);
      ("file", Json.Str d.file);
      ("line", Json.Int d.line);
      ("col", Json.Int d.col);
      ("severity", Json.Str (severity_name d.severity));
      ("message", Json.Str d.message);
    ]

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  match
    (str "rule", str "file", int "line", int "col", str "severity",
     str "message")
  with
  | Some rule, Some file, Some line, Some col, Some sev, Some message -> (
      match severity_of_name sev with
      | Some severity -> Ok { rule; file; line; col; severity; message }
      | None -> Stdlib.Error (Printf.sprintf "unknown severity %S" sev))
  | _ -> Stdlib.Error "diagnostic missing rule/file/line/col/severity/message"
