(** Phase 1 of the cross-module analyzer: per-module summaries.

    A parse-only extraction (compiler-libs [Parse] + [Ast_iterator])
    reducing one implementation to the facts the interprocedural rules
    D6-D8 ({!Interproc}) need: the module-scope mutable-state census,
    an approximate open/call graph, an effect classification for each
    exported value, graph-mutation sites and span sites. Everything is
    a documented approximation of a type-free pass; all output lists
    are sorted and the extractor allocates no hash tables, so summaries
    are byte-identical across [OCAMLRUNPARAM=R] hash seeds. *)

val tool_name : string
(** ["incgraph-lint-summary"] — the ["tool"] field of summary files. *)

val schema_version : int

(** Effect lattice, ordered [Pure < Mutates_argument < Does_io <
    Mutates_global]. A value gets the strongest effect its body (and,
    for the two context-independent effects, any local callee) reaches. *)
type effect_class = Pure | Mutates_argument | Does_io | Mutates_global

val effect_name : effect_class -> string
val effect_of_name : string -> effect_class option

val effect_join : effect_class -> effect_class -> effect_class
(** The stronger of the two. *)

type global = {
  g_name : string;  (** nested-module-qualified binding name *)
  g_kind : string;
      (** ["ref"], ["hashtbl"], ["array"], ["bigarray"],
          ["mutable-record"], ... *)
  g_line : int;
  g_col : int;
  g_allowed : bool;  (** carries [[@@lint.allow "D6"]] *)
}

type export = { x_name : string; x_effect : effect_class; x_line : int }

type graph_mutation = {
  m_prim : string;  (** the mutating primitive, e.g. ["Hashtbl.replace"] *)
  m_target : string;  (** printable path of the mutated value *)
  m_line : int;
  m_col : int;
  m_allowed : bool;  (** carries [[@lint.allow "D7"]] *)
}

type span_site = {
  s_fn : string;  (** e.g. ["Obs.span_begin"] *)
  s_in : string;  (** enclosing top-level binding *)
  s_line : int;
  s_col : int;
  s_protected : bool;
      (** the binding guards a [span_end] in [Fun.protect ~finally] *)
  s_allowed : bool;  (** carries [[@lint.allow "D8"]] *)
}

type t = {
  module_name : string;  (** capitalized file basename *)
  path : string;  (** repo-relative *)
  deps : string list;  (** referenced module names, sorted, deduped *)
  globals : global list;
  exports : export list;
      (** [.mli] val names when an interface is supplied, else every
          root-level binding *)
  graph_mutations : graph_mutation list;
  spans : span_site list;
}

val module_name_of_path : string -> string

val of_source :
  path:string -> ?intf:string -> string -> (t, string) Stdlib.result
(** Summarize one implementation given its repo-relative [path], the
    optional source text of its [.mli] (restricts [exports]) and its
    own source text. [Error] when the implementation does not parse. *)

val to_json : t -> Ig_obs.Json.t
val of_json : Ig_obs.Json.t -> (t, string) Stdlib.result

val validate : Ig_obs.Json.t -> (t, string) Stdlib.result
(** Structural check of an on-disk summary file (bench/validate.exe). *)
