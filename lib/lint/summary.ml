(* Phase 1 of the cross-module analyzer: per-module summaries.

   A parse-only extraction pass (compiler-libs [Parse] + [Ast_iterator])
   that reduces one .ml file to the facts the interprocedural rules
   D6-D8 (Interproc) need:

   - the module's top-level *mutable state census*: refs, hash tables,
     arrays/bytes/bigarrays, buffers, queues, stacks, atomics and
     mutable-record literals bound at module scope (including inside
     nested [module X = struct ... end]);
   - an approximate *open/call graph*: every module name the file
     references (opens, qualified idents/constructors/types, module
     aliases), deduplicated and sorted;
   - an *effect classification* for each exported value — [Pure],
     [Mutates_argument], [Does_io] or [Mutates_global] — computed from
     the mutation and I/O primitives its body reaches, closed under
     intra-module calls ([Does_io]/[Mutates_global] propagate through
     local calls to a fixpoint; [Mutates_argument] deliberately does
     not, since argument flow is invisible to a parse-only pass);
   - *graph-mutation sites* for D7: direct [Bigarray.*.set]-family
     writes, and container mutators whose target projects an adjacency
     field ([succ]/[pred]/[by_label]/[adj]) or aliases a value built by
     a [Digraph.*]/[Csr.*] call;
   - *span sites* for D8: direct [*.span_begin] calls, with a flag
     recording whether the enclosing binding also guards a matching
     [span_end] inside a [Fun.protect ~finally].

   Everything is an approximation of a type-free pass and is documented
   as such: locals are tracked through a flat, file-ordered alias
   environment (no scope popping), mutation of locally-allocated state
   is treated as internal (invisible from outside, hence pure), and
   unknown mutation targets degrade to mutates-argument, never to
   silence for the census rules.

   Determinism: all output lists are explicitly sorted; the extractor
   allocates no hash tables of its own, so summaries are byte-identical
   across OCAMLRUNPARAM=R hash seeds. *)

module Json = Ig_obs.Json
open Parsetree
module SS = Set.Make (String)
module SM = Map.Make (String)

let tool_name = "incgraph-lint-summary"
let schema_version = 1

(* ---- effect lattice -------------------------------------------------------- *)

type effect_class = Pure | Mutates_argument | Does_io | Mutates_global

let effect_name = function
  | Pure -> "pure"
  | Mutates_argument -> "mutates-argument"
  | Does_io -> "does-io"
  | Mutates_global -> "mutates-global"

let effect_of_name = function
  | "pure" -> Some Pure
  | "mutates-argument" -> Some Mutates_argument
  | "does-io" -> Some Does_io
  | "mutates-global" -> Some Mutates_global
  | _ -> None

let effect_rank = function
  | Pure -> 0
  | Mutates_argument -> 1
  | Does_io -> 2
  | Mutates_global -> 3

let effect_join a b = if effect_rank a >= effect_rank b then a else b

(* What a caller inherits from a local callee: global mutation and I/O
   are context-independent; argument mutation is not (the caller may be
   passing freshly-allocated state), so it does not propagate. *)
let effect_transmissible = function
  | (Mutates_global | Does_io) as e -> e
  | Pure | Mutates_argument -> Pure

type global = {
  g_name : string;
  g_kind : string;
  g_line : int;
  g_col : int;
  g_allowed : bool;
}

type export = { x_name : string; x_effect : effect_class; x_line : int }

type graph_mutation = {
  m_prim : string;
  m_target : string;
  m_line : int;
  m_col : int;
  m_allowed : bool;
}

type span_site = {
  s_fn : string;
  s_in : string;
  s_line : int;
  s_col : int;
  s_protected : bool;
  s_allowed : bool;
}

type t = {
  module_name : string;
  path : string;
  deps : string list;
  globals : global list;
  exports : export list;
  graph_mutations : graph_mutation list;
  spans : span_site list;
}

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ---- AST helpers ------------------------------------------------------------ *)

let rec flatten_longident acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flatten_longident (s :: acc) l
  | Longident.Lapply (_, l) -> flatten_longident acc l

let last2 comps =
  match List.rev comps with x :: y :: _ -> Some (y, x) | _ -> None

let last1 comps = match List.rev comps with x :: _ -> Some x | [] -> None

let allow_rules_of_attrs attrs =
  List.concat_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            [ s ]
        | _ -> [])
    attrs

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> strip_constraint e'
  | _ -> e

let is_function e =
  match (strip_constraint e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let rec app_head e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "@@"; _ }; _ },
        (_, lhs) :: _ ) ->
      app_head lhs
  | Pexp_apply (f, _) -> app_head f
  | _ -> e

let head_comps e =
  match (app_head e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten_longident [] txt)
  | _ -> None

let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p', { txt; _ }) -> pat_vars (txt :: acc) p'
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p')) | Ppat_variant (_, Some p') ->
      pat_vars acc p'
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p') -> pat_vars acc p') acc fields
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (p', _) | Ppat_open (_, p') | Ppat_lazy p' ->
      pat_vars acc p'
  | _ -> acc

(* ---- primitive tables -------------------------------------------------------- *)

(* Container mutators, matched on the last two longident components; the
   mutated value is the first argument (an approximation for blit-style
   functions, whose source and destination almost always share an
   origin class). *)
let mutator_prims =
  [
    ("Hashtbl", "replace"); ("Hashtbl", "add"); ("Hashtbl", "remove");
    ("Hashtbl", "reset"); ("Hashtbl", "clear");
    ("Hashtbl", "filter_map_inplace");
    ("Array", "set"); ("Array", "unsafe_set"); ("Array", "fill");
    ("Array", "blit"); ("Array", "sort"); ("Array", "fast_sort");
    ("Array", "stable_sort");
    ("Bytes", "set"); ("Bytes", "unsafe_set"); ("Bytes", "fill");
    ("Bytes", "blit");
    ("Buffer", "add_string"); ("Buffer", "add_char"); ("Buffer", "add_bytes");
    ("Buffer", "add_substring"); ("Buffer", "add_subbytes");
    ("Buffer", "clear"); ("Buffer", "reset"); ("Buffer", "truncate");
    ("Queue", "push"); ("Queue", "add"); ("Queue", "pop"); ("Queue", "take");
    ("Queue", "clear"); ("Queue", "transfer");
    ("Stack", "push"); ("Stack", "pop"); ("Stack", "clear");
    ("Atomic", "set"); ("Atomic", "exchange"); ("Atomic", "incr");
    ("Atomic", "decr"); ("Atomic", "compare_and_set");
    ("Vec", "push"); ("Vec", "set"); ("Vec", "reserve");
  ]

(* Mutators whose mutated value is the *last* positional argument (the
   first is a function), unlike the first-argument convention above. *)
let last_arg_mutators =
  [
    ("Array", "sort"); ("Array", "fast_sort"); ("Array", "stable_sort");
    ("Hashtbl", "filter_map_inplace");
  ]

let bigarray_mutators = [ "set"; "unsafe_set"; "fill"; "blit" ]

(* Reads that forward their first argument: the mutated value behind
   [Hashtbl.replace (Vec.get g.succ u) v ()] is [g.succ]. *)
let accessor_prims =
  [
    ("Vec", "get"); ("Array", "get"); ("Array", "unsafe_get");
    ("Hashtbl", "find"); ("Hashtbl", "find_opt"); ("Option", "get");
    ("Option", "value"); ("Bytes", "get"); ("Bigarray", "get");
  ]

let adjacency_fields = SS.of_list [ "succ"; "pred"; "by_label"; "adj" ]

let io_bare_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes";
    "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_char";
    "prerr_int"; "prerr_float"; "prerr_bytes";
    "read_line"; "read_int"; "read_int_opt"; "read_float";
    "input_line"; "input_char"; "input_byte"; "input_value";
    "output_string"; "output_char"; "output_byte"; "output_bytes";
    "output_value"; "flush"; "flush_all";
    "open_in"; "open_in_bin"; "open_in_gen";
    "open_out"; "open_out_bin"; "open_out_gen";
    "close_in"; "close_out";
  ]

let io_sys_fns =
  [
    "readdir"; "remove"; "rename"; "mkdir"; "rmdir"; "file_exists";
    "is_directory"; "command"; "getenv"; "getenv_opt"; "time"; "argv";
  ]

let is_io_head comps =
  match comps with
  | [ f ] | [ "Stdlib"; f ] -> List.mem f io_bare_fns
  | _ -> (
      match last2 comps with
      | Some (("Printf" | "Format"), ("printf" | "eprintf" | "fprintf")) ->
          true
      | Some (("In_channel" | "Out_channel" | "Unix"), _) -> true
      | Some ("Sys", f) -> List.mem f io_sys_fns
      | Some ("Filename", ("temp_file" | "open_temp_file")) -> true
      | _ -> false)

(* Module-scope allocation kinds for the mutable-state census.
   [mutable_fields] holds the record fields this file declares mutable,
   so a top-level record literal writing one is caught too. *)
let classify_alloc ~mutable_fields e =
  let e = strip_constraint e in
  match e.pexp_desc with
  | Pexp_array _ -> Some "array"
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : Longident.t Location.loc), _) ->
             match last1 (flatten_longident [] txt) with
             | Some f -> SS.mem f mutable_fields
             | None -> false)
           fields ->
      Some "mutable-record"
  | Pexp_apply _ -> (
      match head_comps e with
      | Some ([ "ref" ] | [ "Stdlib"; "ref" ]) -> Some "ref"
      | Some comps when List.mem "Bigarray" comps -> (
          match last1 comps with
          | Some ("create" | "init" | "of_array") -> Some "bigarray"
          | _ -> None)
      | Some comps -> (
          match last2 comps with
          | Some ("Hashtbl", "create") -> Some "hashtbl"
          | Some ("Buffer", "create") -> Some "buffer"
          | Some ("Queue", "create") -> Some "queue"
          | Some ("Stack", "create") -> Some "stack"
          | Some ("Atomic", "make") -> Some "atomic"
          | Some ("Vec", "create") -> Some "vec"
          | Some ("Array", ("make" | "init" | "create_float" | "of_list")) ->
              Some "array"
          | Some ("Bytes", ("create" | "make" | "of_string")) -> Some "bytes"
          | _ -> None)
      | None -> None)
  | _ -> None

(* ---- origin tracking --------------------------------------------------------- *)

(* Where a mutated value comes from, as far as a parse-only alias walk
   can tell. [Fresh] state is allocated locally and invisible outside;
   [Graph] state was built by a [Digraph.*]/[Csr.*] call. *)
type origin = Param | Fresh | Graph | Global | Foreign | Unknown

type bctx = {
  globals_in_scope : SS.t;  (* module-scope mutable state names (bare) *)
  top_bare : SS.t;  (* bare names of all top-level bindings *)
  mutable env : origin SM.t;  (* flat, file-ordered local environment *)
  mutable direct : effect_class;
  mutable callees : SS.t;  (* bare local callees, for the fixpoint *)
  mutable mutations : (string * string * Location.t * bool) list;
  mutable span_calls : (string * Location.t * bool) list;
  mutable allow_frames : string list list;
}

let bctx_allowed b rule = List.exists (List.mem rule) b.allow_frames

(* Resolve a mutation target: origin of its root, a printable path, and
   every record field the chain projects (for the adjacency check). *)
let rec resolve b e =
  let e = strip_constraint e in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      let o =
        match SM.find_opt x b.env with
        | Some o -> o
        | None -> if SS.mem x b.globals_in_scope then Global else Unknown
      in
      (o, x, SS.empty)
  | Pexp_ident { txt; _ } ->
      (Foreign, String.concat "." (flatten_longident [] txt), SS.empty)
  | Pexp_field (e', { txt; _ }) ->
      let o, p, fs = resolve b e' in
      let f = Option.value ~default:"?" (last1 (flatten_longident [] txt)) in
      (o, p ^ "." ^ f, SS.add f fs)
  | Pexp_apply (_, (_, a0) :: _) -> (
      match head_comps e with
      | Some comps
        when (match last2 comps with
             | Some t -> List.mem t accessor_prims
             | None -> false)
             || List.mem "Bigarray" comps ->
          resolve b a0
      | _ -> (Unknown, "<expr>", SS.empty))
  | _ -> (Unknown, "<expr>", SS.empty)

(* Origin of a let-bound local, for the alias environment. *)
let classify_rhs b ~mutable_fields e =
  let e = strip_constraint e in
  if classify_alloc ~mutable_fields e <> None then Fresh
  else
    match head_comps e with
    | Some comps
      when List.exists (fun c -> c = "Digraph" || c = "Csr") comps ->
        Graph
    | _ -> (
        match e.pexp_desc with
        | Pexp_ident _ | Pexp_field _ | Pexp_apply _ ->
            let o, _, fs = resolve b e in
            if not (SS.is_empty (SS.inter fs adjacency_fields)) then Graph
            else o
        | _ -> Unknown)

let note_mutation b ~prim ~target loc =
  let o, path, fields = resolve b target in
  (match o with
  | Global | Foreign -> b.direct <- effect_join b.direct Mutates_global
  | Fresh -> ()
  | Param | Unknown | Graph ->
      b.direct <- effect_join b.direct Mutates_argument);
  let adjacency = not (SS.is_empty (SS.inter fields adjacency_fields)) in
  let bigarray = String.length prim >= 8 && String.sub prim 0 8 = "Bigarray" in
  if bigarray || adjacency || o = Graph then
    b.mutations <-
      (prim, path, loc, bctx_allowed b "D7") :: b.mutations

(* Does [e] contain a [Fun.protect] whose [~finally] mentions a
   [span_end]? One flag per top-level binding: a begin/end pair split
   across protected and unprotected regions of the same body is beyond
   a parse-only pass, and in-tree spans go through the combinators. *)
let protects_span_end e =
  let found = ref false in
  let rec mentions_span_end e =
    let m = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match last1 (flatten_longident [] txt) with
                | Some "span_end" -> m := true
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it e;
    !m
  and check self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match head_comps { e with pexp_desc = Pexp_apply (f, args) } with
        | Some comps when last1 comps = Some "protect" ->
            if
              List.exists
                (fun (l, a) ->
                  l = Asttypes.Labelled "finally" && mentions_span_end a)
                args
            then found := true
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr = check } in
  it.expr it e;
  !found

(* ---- the per-binding walker --------------------------------------------------- *)

let binding_iterator b ~mutable_fields =
  let expr (self : Ast_iterator.iterator) e =
    b.allow_frames <- allow_rules_of_attrs e.pexp_attributes :: b.allow_frames;
    (match e.pexp_desc with
    | Pexp_fun (_, _, pat, _) ->
        List.iter
          (fun v -> b.env <- SM.add v Param b.env)
          (pat_vars [] pat)
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match pat_vars [] vb.pvb_pat with
            | [ v ] ->
                b.env <-
                  SM.add v (classify_rhs b ~mutable_fields vb.pvb_expr) b.env
            | vs -> List.iter (fun v -> b.env <- SM.add v Unknown b.env) vs)
          vbs
    | Pexp_setfield (target, { txt; _ }, _) ->
        let f =
          Option.value ~default:"?" (last1 (flatten_longident [] txt))
        in
        (* Rebuild the full projected path by resolving the record, then
           appending the assigned field. *)
        let o, p, fields = resolve b target in
        (match o with
        | Global | Foreign -> b.direct <- effect_join b.direct Mutates_global
        | Fresh -> ()
        | Param | Unknown | Graph ->
            b.direct <- effect_join b.direct Mutates_argument);
        let fields = SS.add f fields in
        if
          (not (SS.is_empty (SS.inter fields adjacency_fields))) || o = Graph
        then
          b.mutations <-
            ("<-", p ^ "." ^ f, e.pexp_loc, bctx_allowed b "D7")
            :: b.mutations
    | Pexp_apply _ -> (
        match head_comps e with
        | Some ([ ":=" ] | [ "Stdlib"; ":=" ]) -> (
            match e.pexp_desc with
            | Pexp_apply (_, (_, lhs) :: _) ->
                note_mutation b ~prim:":=" ~target:lhs e.pexp_loc
            | _ -> ())
        | Some ([ ("incr" | "decr") ] | [ "Stdlib"; ("incr" | "decr") ]) -> (
            match e.pexp_desc with
            | Pexp_apply (_, (_, a0) :: _) ->
                note_mutation b ~prim:":=" ~target:a0 e.pexp_loc
            | _ -> ())
        | Some comps -> (
            let prim_name () = String.concat "." comps in
            (if is_io_head comps then
               b.direct <- effect_join b.direct Does_io);
            (match last1 comps with
            | Some "span_begin" ->
                b.span_calls <-
                  (prim_name (), e.pexp_loc, bctx_allowed b "D8")
                  :: b.span_calls
            | _ -> ());
            (match comps with
            | [ f ] when SS.mem f b.top_bare ->
                b.callees <- SS.add f b.callees
            | _ -> ());
            match e.pexp_desc with
            | Pexp_apply (_, ((_, a0) :: _ as args)) ->
                let mut =
                  match last2 comps with
                  | Some t when List.mem t mutator_prims ->
                      Some (String.concat "." [ fst t; snd t ])
                  | _ ->
                      if
                        List.mem "Bigarray" comps
                        && (match last1 comps with
                           | Some f -> List.mem f bigarray_mutators
                           | None -> false)
                      then Some (String.concat "." comps)
                      else None
                in
                let target =
                  match last2 comps with
                  | Some t when List.mem t last_arg_mutators -> (
                      (* [Array.sort cmp a] mutates [a], not [cmp]. *)
                      match
                        List.filter_map
                          (function
                            | Asttypes.Nolabel, a -> Some a | _ -> None)
                          args
                        |> List.rev
                      with
                      | last :: _ -> last
                      | [] -> a0)
                  | _ -> a0
                in
                Option.iter
                  (fun prim -> note_mutation b ~prim ~target e.pexp_loc)
                  mut
            | _ -> ())
        | None -> ())
    | Pexp_ident { txt = Longident.Lident f; _ } when SS.mem f b.top_bare ->
        (* A first-class reference to a sibling binding also links the
           call graph ([List.iter visit nodes]). *)
        b.callees <- SS.add f b.callees
    | _ -> ());
    Ast_iterator.default_iterator.expr self e;
    b.allow_frames <- List.tl b.allow_frames
  in
  { Ast_iterator.default_iterator with expr }

(* ---- deps collection ----------------------------------------------------------- *)

let collect_deps str =
  let deps = ref SS.empty in
  let add_li txt =
    match flatten_longident [] txt with
    | first :: _ :: _ -> deps := SS.add first !deps
    | _ -> ()
  in
  let rec add_mod_expr me =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> (
        match flatten_longident [] txt with
        | first :: _ -> deps := SS.add first !deps
        | [] -> ())
    | Pmod_apply (a, b) -> add_mod_expr a; add_mod_expr b
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } | Pexp_construct ({ txt; _ }, _)
          | Pexp_field (_, { txt; _ }) | Pexp_setfield (_, { txt; _ }, _)
          | Pexp_new { txt; _ } ->
              add_li txt
          | Pexp_open (od, _) -> add_mod_expr od.popen_expr
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      typ =
        (fun self ty ->
          (match ty.ptyp_desc with
          | Ptyp_constr ({ txt; _ }, _) | Ptyp_class ({ txt; _ }, _) ->
              add_li txt
          | _ -> ());
          Ast_iterator.default_iterator.typ self ty);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_open od -> add_mod_expr od.popen_expr
          | Pstr_module mb -> add_mod_expr mb.pmb_expr
          | Pstr_include i -> add_mod_expr i.pincl_mod
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
    }
  in
  it.structure it str;
  !deps

(* ---- structure walk ------------------------------------------------------------ *)

type binding_info = {
  bi_full : string;  (* nested-module-qualified name *)
  bi_bare : string;
  bi_line : int;
  bi_direct : effect_class;
  bi_callees : SS.t;
}

let of_structure ~path ?vals str =
  let module_name = module_name_of_path path in
  (* pass 0: declared mutable record fields, top-level binding names,
     file-level allows, and the module-scope mutable-state census. *)
  let mutable_fields = ref SS.empty in
  let top_bare = ref SS.empty in
  let file_allows = ref [] in
  let globals = ref [] in
  let rec pass0 prefix items =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_attribute a -> file_allows := allow_rules_of_attrs [ a ] @ !file_allows
        | Pstr_type (_, tds) ->
            List.iter
              (fun td ->
                match td.ptype_kind with
                | Ptype_record lds ->
                    List.iter
                      (fun ld ->
                        if ld.pld_mutable = Asttypes.Mutable then
                          mutable_fields :=
                            SS.add ld.pld_name.txt !mutable_fields)
                      lds
                | _ -> ())
              tds
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } ->
                    top_bare := SS.add name !top_bare;
                    if not (is_function vb.pvb_expr) then (
                      match
                        classify_alloc ~mutable_fields:!mutable_fields
                          (strip_constraint vb.pvb_expr)
                      with
                      | Some kind ->
                          let p = vb.pvb_loc.Location.loc_start in
                          let allowed =
                            List.mem "D6"
                              (allow_rules_of_attrs vb.pvb_attributes)
                            || List.mem "D6" !file_allows
                          in
                          globals :=
                            {
                              g_name = prefix ^ name;
                              g_kind = kind;
                              g_line = p.pos_lnum;
                              g_col = p.pos_cnum - p.pos_bol;
                              g_allowed = allowed;
                            }
                            :: !globals
                      | None -> ())
                | _ -> ())
              vbs
        | Pstr_module { pmb_name = { txt = Some m; _ };
                        pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
            pass0 (prefix ^ m ^ ".") s
        | _ -> ())
      items
  in
  pass0 "" str;
  let globals_in_scope =
    List.fold_left
      (fun acc g ->
        match String.rindex_opt g.g_name '.' with
        | Some i ->
            SS.add (String.sub g.g_name (i + 1)
                      (String.length g.g_name - i - 1)) acc
        | None -> SS.add g.g_name acc)
      SS.empty !globals
  in
  (* pass 1: per-binding effect atoms, graph mutations and span sites. *)
  let infos = ref [] in
  let mutations = ref [] in
  let spans = ref [] in
  let rec pass1 prefix items =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } ->
                    let b =
                      {
                        globals_in_scope;
                        top_bare = !top_bare;
                        env = SM.empty;
                        direct = Pure;
                        callees = SS.empty;
                        mutations = [];
                        span_calls = [];
                        allow_frames =
                          [
                            allow_rules_of_attrs vb.pvb_attributes
                            @ !file_allows;
                          ];
                      }
                    in
                    let it =
                      binding_iterator b ~mutable_fields:!mutable_fields
                    in
                    it.expr it vb.pvb_expr;
                    let protected = protects_span_end vb.pvb_expr in
                    let p = vb.pvb_loc.Location.loc_start in
                    infos :=
                      {
                        bi_full = prefix ^ name;
                        bi_bare = name;
                        bi_line = p.pos_lnum;
                        bi_direct = b.direct;
                        bi_callees = SS.remove name b.callees;
                      }
                      :: !infos;
                    List.iter
                      (fun (prim, target, (loc : Location.t), allowed) ->
                        let p = loc.loc_start in
                        mutations :=
                          {
                            m_prim = prim;
                            m_target = target;
                            m_line = p.pos_lnum;
                            m_col = p.pos_cnum - p.pos_bol;
                            m_allowed = allowed;
                          }
                          :: !mutations)
                      b.mutations;
                    List.iter
                      (fun (fn, (loc : Location.t), allowed) ->
                        let p = loc.loc_start in
                        spans :=
                          {
                            s_fn = fn;
                            s_in = prefix ^ name;
                            s_line = p.pos_lnum;
                            s_col = p.pos_cnum - p.pos_bol;
                            s_protected = protected;
                            s_allowed = allowed;
                          }
                          :: !spans)
                      b.span_calls
                | _ -> ())
              vbs
        | Pstr_module { pmb_name = { txt = Some m; _ };
                        pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
            pass1 (prefix ^ m ^ ".") s
        | _ -> ())
      items
  in
  pass1 "" str;
  (* effect fixpoint over local calls (Does_io / Mutates_global only). *)
  let infos = List.rev !infos in
  let eff = ref SM.empty in
  List.iter (fun i -> eff := SM.add i.bi_full i.bi_direct !eff) infos;
  let by_bare =
    List.fold_left
      (fun acc i ->
        SM.update i.bi_bare
          (fun l -> Some (i.bi_full :: Option.value ~default:[] l))
          acc)
      SM.empty infos
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        let cur = SM.find i.bi_full !eff in
        let next =
          SS.fold
            (fun callee acc ->
              List.fold_left
                (fun acc full ->
                  effect_join acc
                    (effect_transmissible (SM.find full !eff)))
                acc
                (Option.value ~default:[] (SM.find_opt callee by_bare)))
            i.bi_callees cur
        in
        if next <> cur then begin
          eff := SM.add i.bi_full next !eff;
          changed := true
        end)
      infos
  done;
  (* exports: .mli val names when available, else all root-level
     bindings. *)
  let exports =
    match vals with
    | Some names ->
        List.filter_map
          (fun n ->
            List.find_map
              (fun i ->
                if i.bi_full = n then
                  Some
                    {
                      x_name = n;
                      x_effect = SM.find i.bi_full !eff;
                      x_line = i.bi_line;
                    }
                else None)
              infos)
          (List.sort_uniq String.compare names)
    | None ->
        List.filter_map
          (fun i ->
            if String.contains i.bi_full '.' then None
            else
              Some
                {
                  x_name = i.bi_full;
                  x_effect = SM.find i.bi_full !eff;
                  x_line = i.bi_line;
                })
          infos
        |> List.sort (fun a b -> String.compare a.x_name b.x_name)
  in
  let deps = SS.remove module_name (collect_deps str) in
  {
    module_name;
    path;
    deps = SS.elements deps;
    globals =
      List.sort
        (fun a b ->
          match Int.compare a.g_line b.g_line with
          | 0 -> String.compare a.g_name b.g_name
          | c -> c)
        !globals;
    exports;
    graph_mutations =
      List.sort
        (fun a b ->
          match Int.compare a.m_line b.m_line with
          | 0 -> Int.compare a.m_col b.m_col
          | c -> c)
        !mutations;
    spans =
      List.sort
        (fun a b ->
          match Int.compare a.s_line b.s_line with
          | 0 -> Int.compare a.s_col b.s_col
          | c -> c)
        !spans;
  }

let vals_of_interface sg =
  List.filter_map
    (fun si ->
      match si.psig_desc with
      | Psig_value vd -> Some vd.pval_name.txt
      | _ -> None)
    sg

let of_source ~path ?intf source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | exception exn ->
      Stdlib.Error
        (Printf.sprintf "%s does not parse: %s" path (Printexc.to_string exn))
  | str ->
      let vals =
        Option.bind intf (fun src ->
            let lb = Lexing.from_string src in
            Location.init lb (path ^ "i");
            match Parse.interface lb with
            | exception _ -> None
            | sg -> Some (vals_of_interface sg))
      in
      Ok (of_structure ~path ?vals str)

(* ---- JSON ----------------------------------------------------------------------- *)

let to_json s =
  Json.Obj
    [
      ("tool", Json.Str tool_name);
      ("schema_version", Json.Int schema_version);
      ("module", Json.Str s.module_name);
      ("path", Json.Str s.path);
      ("deps", Json.Arr (List.map (fun d -> Json.Str d) s.deps));
      ( "globals",
        Json.Arr
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("name", Json.Str g.g_name);
                   ("kind", Json.Str g.g_kind);
                   ("line", Json.Int g.g_line);
                   ("col", Json.Int g.g_col);
                   ("allowed", Json.Bool g.g_allowed);
                 ])
             s.globals) );
      ( "exports",
        Json.Arr
          (List.map
             (fun x ->
               Json.Obj
                 [
                   ("name", Json.Str x.x_name);
                   ("effect", Json.Str (effect_name x.x_effect));
                   ("line", Json.Int x.x_line);
                 ])
             s.exports) );
      ( "graph_mutations",
        Json.Arr
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("prim", Json.Str m.m_prim);
                   ("target", Json.Str m.m_target);
                   ("line", Json.Int m.m_line);
                   ("col", Json.Int m.m_col);
                   ("allowed", Json.Bool m.m_allowed);
                 ])
             s.graph_mutations) );
      ( "spans",
        Json.Arr
          (List.map
             (fun sp ->
               Json.Obj
                 [
                   ("fn", Json.Str sp.s_fn);
                   ("in", Json.Str sp.s_in);
                   ("line", Json.Int sp.s_line);
                   ("col", Json.Int sp.s_col);
                   ("protected", Json.Bool sp.s_protected);
                   ("allowed", Json.Bool sp.s_allowed);
                 ])
             s.spans) );
    ]

let of_json j =
  let str k o = Option.bind (Json.member k o) Json.to_str_opt in
  let int k o = Option.bind (Json.member k o) Json.to_int_opt in
  let boolean k o =
    match Json.member k o with Some (Json.Bool b) -> Some b | _ -> None
  in
  let list k o = Option.bind (Json.member k o) Json.to_list_opt in
  let ( let* ) = Option.bind in
  let decode () =
    let* module_name = str "module" j in
    let* path = str "path" j in
    let* deps = list "deps" j in
    let* deps =
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* s = Json.to_str_opt d in
          Some (s :: acc))
        (Some []) deps
      |> Option.map List.rev
    in
    let* gl = list "globals" j in
    let* globals =
      List.fold_left
        (fun acc g ->
          let* acc = acc in
          let* g_name = str "name" g in
          let* g_kind = str "kind" g in
          let* g_line = int "line" g in
          let* g_col = int "col" g in
          let* g_allowed = boolean "allowed" g in
          Some ({ g_name; g_kind; g_line; g_col; g_allowed } :: acc))
        (Some []) gl
      |> Option.map List.rev
    in
    let* xs = list "exports" j in
    let* exports =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* x_name = str "name" x in
          let* e = str "effect" x in
          let* x_effect = effect_of_name e in
          let* x_line = int "line" x in
          Some ({ x_name; x_effect; x_line } :: acc))
        (Some []) xs
      |> Option.map List.rev
    in
    let* ms = list "graph_mutations" j in
    let* graph_mutations =
      List.fold_left
        (fun acc m ->
          let* acc = acc in
          let* m_prim = str "prim" m in
          let* m_target = str "target" m in
          let* m_line = int "line" m in
          let* m_col = int "col" m in
          let* m_allowed = boolean "allowed" m in
          Some ({ m_prim; m_target; m_line; m_col; m_allowed } :: acc))
        (Some []) ms
      |> Option.map List.rev
    in
    let* sps = list "spans" j in
    let* spans =
      List.fold_left
        (fun acc sp ->
          let* acc = acc in
          let* s_fn = str "fn" sp in
          let* s_in = str "in" sp in
          let* s_line = int "line" sp in
          let* s_col = int "col" sp in
          let* s_protected = boolean "protected" sp in
          let* s_allowed = boolean "allowed" sp in
          Some
            ({ s_fn; s_in; s_line; s_col; s_protected; s_allowed } :: acc))
        (Some []) sps
      |> Option.map List.rev
    in
    Some { module_name; path; deps; globals; exports; graph_mutations; spans }
  in
  match str "tool" j with
  | Some t when t <> tool_name ->
      Stdlib.Error (Printf.sprintf "tool %S, expected %S" t tool_name)
  | _ -> (
      match int "schema_version" j with
      | Some v when v <> schema_version ->
          Stdlib.Error
            (Printf.sprintf "summary schema_version %d, expected %d" v
               schema_version)
      | None -> Stdlib.Error "missing integer \"schema_version\""
      | Some _ -> (
          match decode () with
          | Some s -> Ok s
          | None ->
              Stdlib.Error
                "summary missing or ill-typed \
                 module/path/deps/globals/exports/graph_mutations/spans"))

let validate j = of_json j
