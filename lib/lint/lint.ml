(* Determinism & instrumentation linter.

   A parse-only static-analysis pass over the repo's OCaml sources,
   built on compiler-libs ([Parse] + [Ast_iterator]). The incremental
   engines promise byte-identical traces and output across Hashtbl hash
   seeds (OCAMLRUNPARAM=R); this pass mechanically enforces the coding
   discipline that promise rests on:

     D1  no polymorphic compare/hash in engine modules
     D2  no unordered hash-table / adjacency iteration in lib/ unless
         routed through the sorted helpers or explicitly annotated
     D3  no ambient nondeterminism (global Random, wall clock) in lib/
         outside lib/obs's monotonic clock
     D4  every exported update entry point of an inc_*.ml engine is
         wrapped in Obs.with_apply, and the engine emits rule-tagged
         tracer events; the storage entry points of the CSR backend
         and the durability layer carry at least one Obs probe
     D5  every lib/ module has an interface (.mli)

   Being parse-only, D1 is a syntactic approximation: the operators
   [=]/[<>]/[==]/[!=] are flagged only when used as first-class values
   (e.g. [List.sort ( = )]); ordinary infix applications — in practice
   scalar comparisons — pass. Bare [compare] and [Hashtbl.hash] are
   always flagged in engine scope, applied or not.

   Suppression: [(expr [@lint.allow "D2"])] silences one rule for that
   subtree, [let f = ... [@@lint.allow "D2"]] for one binding, and a
   floating [[@@@lint.allow "D2"]] for the rest of the file. Every
   suppression is counted and surfaced in the report. Diagnostics can
   also be accepted wholesale via a committed baseline file; the clean
   tree keeps an empty baseline. *)

module Json = Ig_obs.Json
open Parsetree

type severity = Diag.severity = Error | Warning

type diagnostic = Diag.diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  message : string;
}

let severity_name = Diag.severity_name
let severity_of_name = Diag.severity_of_name
let compare_diagnostic = Diag.compare_diagnostic
let pp_diagnostic = Diag.pp_diagnostic

(* ---- rule scoping ------------------------------------------------------- *)

let engine_dirs =
  [ "lib/graph/"; "lib/iso/"; "lib/kws/"; "lib/rpq/"; "lib/scc/"; "lib/sim/" ]

let d1_applies path =
  List.exists (fun d -> String.starts_with ~prefix:d path) engine_dirs

let d2_applies path = String.starts_with ~prefix:"lib/" path

let d3_applies path =
  d2_applies path && not (String.starts_with ~prefix:"lib/obs/" path)

(* The filesystem half of D3: in lib/, only the durability layer may open
   files or walk directories — everything else must stay a pure in-memory
   computation (deliberate artifact writers annotate their sites). *)
let d3_fs_applies path =
  d2_applies path && not (String.starts_with ~prefix:"lib/journal/" path)

let d4_applies path =
  d2_applies path
  && String.starts_with ~prefix:"inc_" (Filename.basename path)
  && Filename.check_suffix path ".ml"

(* ---- AST helpers --------------------------------------------------------- *)

let rec flatten_longident acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flatten_longident (s :: acc) l
  | Longident.Lapply (_, l) -> flatten_longident acc l

let last2 comps =
  match List.rev comps with
  | x :: y :: _ -> Some (y, x)
  | _ -> None

let allow_rules_of_attrs attrs =
  List.concat_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            [ s ]
        | _ -> [])
    attrs

let eq_ops = [ "="; "<>"; "=="; "!=" ]

let is_eq_op_path comps =
  match comps with
  | [ op ] | [ "Stdlib"; op ] -> List.mem op eq_ops
  | _ -> false

(* Unfold the parameters of a [let f a b = ...] binding. *)
let rec strip_fun e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_fun body
  | Pexp_newtype (_, body) -> strip_fun body
  | _ -> e

(* Head of an application chain, looking through [f @@ x]. *)
let rec app_head e =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "@@"; _ }; _ },
        (_, lhs) :: _ ) ->
      app_head lhs
  | Pexp_apply (f, _) -> app_head f
  | _ -> e

let d4_entry_points = [ "insert_edge"; "delete_edge"; "apply_batch" ]

(* The storage half of D4: the CSR backend and the durability layer also
   promise deep instrumentation (DESIGN.md §8.6) — compaction, WAL
   append/fsync, replay, undo and snapshot latencies all land in the
   registry. These entry points must carry at least one Obs probe
   (observe/observe_time/with_span/incr/add/set_gauge, or the enabled
   gate guarding a hand-rolled clock read) somewhere in their body. *)
let d4_storage_files =
  [
    ("lib/graph/csr.ml", [ "compact" ]);
    ("lib/journal/journal.ml", [ "append" ]);
    ( "lib/journal/store.ml",
      [ "init"; "attach"; "do_batch"; "undo"; "snapshot" ] );
  ]

let obs_probe_fns =
  [
    "observe"; "observe_time"; "with_span"; "with_apply"; "span_begin";
    "incr"; "add"; "set_gauge"; "enabled";
  ]

(* ---- the checker ---------------------------------------------------------- *)

type ctx = {
  path : string; (* repo-relative, '/'-separated *)
  mutable frames : string list list; (* nested [@lint.allow] scopes *)
  mutable file_allows : string list; (* floating [@@@lint.allow] *)
  mutable diags : diagnostic list;
  mutable suppressed : int;
  mutable has_rule_tagged_aff : bool;
  mutable has_update_fn : bool;
}

let fresh_ctx path =
  {
    path;
    frames = [];
    file_allows = [];
    diags = [];
    suppressed = 0;
    has_rule_tagged_aff = false;
    has_update_fn = false;
  }

let allowed ctx rule =
  List.mem rule ctx.file_allows || List.exists (List.mem rule) ctx.frames

let emit ctx ~(loc : Location.t) rule severity message =
  if allowed ctx rule then ctx.suppressed <- ctx.suppressed + 1
  else begin
    let p = loc.loc_start in
    ctx.diags <-
      {
        rule;
        file = ctx.path;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        severity;
        message;
      }
      :: ctx.diags
  end

(* Digraph.iter_succ/iter_pred are flagged because their order is
   backend-dependent: hash order on the Hashtbl backend, ascending on the
   CSR backend (whose base-row/overlay merge is sorted by construction,
   at no extra cost — Csr.iter_succ_sorted IS its unsorted iterator).
   Code that is order-free on one backend but not the other is exactly
   the bug class D2 exists to catch, so the rule stays backend-agnostic:
   use the _sorted iterators or annotate the order-free call site. *)
let d2_targets =
  [
    ("Hashtbl", "iter");
    ("Hashtbl", "fold");
    ("Hashtbl", "to_seq");
    ("Hashtbl", "to_seq_keys");
    ("Hashtbl", "to_seq_values");
    ("Digraph", "iter_succ");
    ("Digraph", "iter_pred");
  ]

let fs_open_fns =
  [
    "open_in"; "open_in_bin"; "open_in_gen";
    "open_out"; "open_out_bin"; "open_out_gen";
  ]

let fs_channel_fns =
  [
    "open_bin"; "open_text"; "open_gen";
    "with_open_bin"; "with_open_text"; "with_open_gen";
  ]

let fs_targets =
  [
    ("Sys", "readdir"); ("Sys", "remove"); ("Sys", "rename");
    ("Sys", "mkdir"); ("Sys", "rmdir"); ("Sys", "file_exists");
    ("Sys", "is_directory"); ("Sys", "command");
    ("Unix", "openfile"); ("Unix", "mkdir"); ("Unix", "unlink");
    ("Unix", "rename"); ("Unix", "opendir");
    ("Filename", "temp_file"); ("Filename", "open_temp_file");
  ]

let is_fs_ident comps =
  match comps with
  | [ f ] | [ "Stdlib"; f ] when List.mem f fs_open_fns -> true
  | _ -> (
      match last2 comps with
      | Some (("In_channel" | "Out_channel"), f) -> List.mem f fs_channel_fns
      | Some t -> List.mem t fs_targets
      | None -> false)

let check_ident ctx (loc : Location.t) lid =
  let comps = flatten_longident [] lid in
  if d1_applies ctx.path then begin
    (match comps with
    | [ "compare" ] | [ "Stdlib"; "compare" ] ->
        emit ctx ~loc "D1" Error
          "polymorphic compare in an engine module; use Int.compare or a \
           per-type comparator"
    | _ -> ());
    (match last2 comps with
    | Some ("Hashtbl", ("hash" | "seeded_hash")) ->
        emit ctx ~loc "D1" Error
          "polymorphic Hashtbl.hash in an engine module; use Int.hash or a \
           per-type hash"
    | _ -> ());
    if is_eq_op_path comps then
      emit ctx ~loc "D1" Error
        "polymorphic equality operator used as a first-class value in an \
         engine module"
  end;
  if d2_applies ctx.path then begin
    match last2 comps with
    | Some ((m, f) as t) when List.mem t d2_targets ->
        emit ctx ~loc "D2" Error
          (Printf.sprintf
             "%s.%s iterates in hash order; route output-visible iteration \
              through Digraph.iter_*_sorted / Obs.sorted_bindings, or \
              annotate an order-free site with [@lint.allow \"D2\"]"
             m f)
    | _ -> ()
  end;
  if d3_applies ctx.path then begin
    (match comps with
    | "Random" :: rest when (match rest with "State" :: _ -> false | _ -> true)
      ->
        emit ctx ~loc "D3" Error
          "global Random state in lib/; thread an explicit Random.State \
           through the workload instead"
    | _ -> ());
    match comps with
    | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
        emit ctx ~loc "D3" Error
          "wall-clock read in lib/; timing belongs to lib/obs's monotonic \
           clock"
    | _ -> ()
  end;
  if d3_fs_applies ctx.path && is_fs_ident comps then
    emit ctx ~loc "D3" Error
      "filesystem access in lib/; durable I/O belongs to lib/journal — \
       annotate a deliberate artifact writer with [@lint.allow \"D3\"]"

let note_aff ctx e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match (app_head f).pexp_desc with
      | Pexp_ident { txt; _ }
        when (match List.rev (flatten_longident [] txt) with
             | "aff_enter" :: _ -> true
             | _ -> false)
             && List.exists
                  (fun (l, _) -> l = Asttypes.Labelled "rule")
                  args ->
          ctx.has_rule_tagged_aff <- true
      | _ -> ())
  | _ -> ()

let expr_iter ctx (self : Ast_iterator.iterator) e =
  ctx.frames <- allow_rules_of_attrs e.pexp_attributes :: ctx.frames;
  note_aff ctx e;
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } -> check_ident ctx e.pexp_loc txt
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when is_eq_op_path (flatten_longident [] txt) ->
      (* Applied (infix) equality is the sanctioned scalar case: visit the
         operands, skip the operator ident itself. *)
      List.iter (fun (_, a) -> self.expr self a) args
  | _ -> Ast_iterator.default_iterator.expr self e);
  ctx.frames <- List.tl ctx.frames

let check_d4_binding ctx vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ } when List.mem name d4_entry_points ->
      ctx.has_update_fn <- true;
      let head = app_head (strip_fun vb.pvb_expr) in
      let wrapped =
        match head.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match List.rev (flatten_longident [] txt) with
            | "with_apply" :: _ -> true
            | _ -> false)
        | _ -> false
      in
      if not wrapped then
        emit ctx ~loc:vb.pvb_loc "D4" Error
          (Printf.sprintf
             "%s is not wrapped in Obs.with_apply: per-update latency and \
              |CHANGED| accounting would miss it"
             name)
  | _ -> ()

let mentions_obs_probe expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match last2 (flatten_longident [] txt) with
              | Some ("Obs", f) when List.mem f obs_probe_fns ->
                  found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it expr;
  !found

let check_d4_storage_binding ctx entries vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ }
    when List.mem name entries && not (mentions_obs_probe vb.pvb_expr) ->
      emit ctx ~loc:vb.pvb_loc "D4" Error
        (Printf.sprintf
           "storage entry point %s carries no Obs probe: CSR/journal \
            latency and size accounting would miss it"
           name)
  | _ -> ()

let structure_item_iter ctx (self : Ast_iterator.iterator) si =
  match si.pstr_desc with
  | Pstr_attribute a ->
      ctx.file_allows <- allow_rules_of_attrs [ a ] @ ctx.file_allows
  | Pstr_value (_, vbs) ->
      let allows = List.concat_map (fun vb -> allow_rules_of_attrs vb.pvb_attributes) vbs in
      ctx.frames <- allows :: ctx.frames;
      if d4_applies ctx.path then List.iter (check_d4_binding ctx) vbs;
      (match List.assoc_opt ctx.path d4_storage_files with
      | Some entries ->
          List.iter (check_d4_storage_binding ctx entries) vbs
      | None -> ());
      Ast_iterator.default_iterator.structure_item self si;
      ctx.frames <- List.tl ctx.frames
  | _ -> Ast_iterator.default_iterator.structure_item self si

let finish_d4 ctx =
  if d4_applies ctx.path && ctx.has_update_fn && not ctx.has_rule_tagged_aff
  then
    emit ctx
      ~loc:
        {
          Location.loc_start =
            { pos_fname = ctx.path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
          loc_end =
            { pos_fname = ctx.path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
          loc_ghost = false;
        }
      "D4" Error
      "engine file has update entry points but no rule-tagged \
       Tracer.aff_enter: AFF provenance would be empty"

let syntax_diag ctx exn lexbuf =
  let loc =
    match exn with
    | Syntaxerr.Error err -> Syntaxerr.location_of_error err
    | _ -> Location.curr lexbuf
  in
  let p = loc.Location.loc_start in
  ctx.diags <-
    {
      rule = "syntax";
      file = ctx.path;
      line = p.pos_lnum;
      col = p.pos_cnum - p.pos_bol;
      severity = Error;
      message = "file does not parse: " ^ Printexc.to_string exn;
    }
    :: ctx.diags

let lint_source ~path source =
  let ctx = fresh_ctx path in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  (try
     let str = Parse.implementation lexbuf in
     let it =
       {
         Ast_iterator.default_iterator with
         expr = expr_iter ctx;
         structure_item = structure_item_iter ctx;
       }
     in
     it.structure it str;
     finish_d4 ctx
   with exn -> syntax_diag ctx exn lexbuf);
  (List.sort compare_diagnostic ctx.diags, ctx.suppressed)

(* Interfaces carry no expression rules; parsing them still catches
   syntax drift and keeps the file count honest. *)
let lint_interface ~path source =
  let ctx = fresh_ctx path in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  (try ignore (Parse.interface lexbuf)
   with exn -> syntax_diag ctx exn lexbuf);
  List.sort compare_diagnostic ctx.diags

(* ---- tree scan ------------------------------------------------------------ *)

(* The linter's own job is walking the source tree; exempt the scan below
   from the lib/-filesystem half of D3. *)
[@@@lint.allow "D3"]

let scanned_roots = [ "bench"; "bin"; "lib"; "test" ]

let rec scan_tree root rel acc =
  let entries = Sys.readdir (Filename.concat root rel) in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name = "_build" then acc
      else
        let rel' = rel ^ "/" ^ name in
        let full = Filename.concat root rel' in
        if Sys.is_directory full then scan_tree root rel' acc
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then rel' :: acc
        else acc)
    acc entries

let scan_files ~root =
  List.sort String.compare
    (List.fold_left
       (fun acc d ->
         let full = Filename.concat root d in
         if Sys.file_exists full && Sys.is_directory full then
           scan_tree root d acc
         else acc)
       [] scanned_roots)

let read_file path = In_channel.with_open_bin path In_channel.input_all

type result = {
  diagnostics : diagnostic list;
  suppressed : int;
  files_scanned : int;
  summaries : Summary.t list;
}

(* Phase 1 + per-file rules, then phase 2 (Interproc) over the lib/
   summaries. A file that fails to parse yields its syntax diagnostic
   from the per-file pass and is simply absent from the summary set. *)
let run ~root =
  let files = scan_files ~root in
  let diags = ref [] and supp = ref 0 and summaries = ref [] in
  List.iter
    (fun rel ->
      let src = read_file (Filename.concat root rel) in
      if Filename.check_suffix rel ".ml" then begin
        let ds, s = lint_source ~path:rel src in
        diags := ds @ !diags;
        supp := !supp + s;
        if String.starts_with ~prefix:"lib/" rel then begin
          let intf =
            let mli = rel ^ "i" in
            if List.mem mli files then
              Some (read_file (Filename.concat root mli))
            else None
          in
          match Summary.of_source ~path:rel ?intf src with
          | Ok s -> summaries := s :: !summaries
          | Stdlib.Error _ -> () (* the syntax diagnostic already fired *)
        end
      end
      else diags := lint_interface ~path:rel src @ !diags)
    files;
  (* D5: every lib/ implementation carries an interface. *)
  List.iter
    (fun ml ->
      if
        Filename.check_suffix ml ".ml"
        && String.starts_with ~prefix:"lib/" ml
        && not (List.mem (ml ^ "i") files)
      then
        diags :=
          {
            rule = "D5";
            file = ml;
            line = 1;
            col = 0;
            severity = Warning;
            message = "lib/ module has no interface (.mli)";
          }
          :: !diags)
    files;
  let summaries =
    List.sort
      (fun (a : Summary.t) (b : Summary.t) ->
        String.compare a.Summary.path b.Summary.path)
      !summaries
  in
  let interproc_diags, interproc_supp = Interproc.analyze summaries in
  {
    diagnostics = List.sort compare_diagnostic (interproc_diags @ !diags);
    suppressed = !supp + interproc_supp;
    files_scanned = List.length files;
    summaries;
  }

(* ---- baseline -------------------------------------------------------------- *)

let diagnostic_to_json = Diag.to_json
let diagnostic_of_json = Diag.of_json

let diagnostics_of_json j =
  match Option.bind (Json.member "diagnostics" j) Json.to_list_opt with
  | None -> Stdlib.Error "missing or ill-typed \"diagnostics\" array"
  | Some items ->
      List.fold_left
        (fun acc item ->
          match acc with
          | Stdlib.Error _ as e -> e
          | Ok ds -> (
              match diagnostic_of_json item with
              | Ok d -> Ok (d :: ds)
              | Stdlib.Error _ as e -> e))
        (Ok []) items
      |> Result.map List.rev

let baseline_to_json ds =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("diagnostics", Json.Arr (List.map diagnostic_to_json ds));
    ]

let load_baseline path =
  match Json.parse (read_file path) with
  | Stdlib.Error e -> Stdlib.Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> diagnostics_of_json j

(* Baselined diagnostics are matched on every field except severity, so a
   baseline survives rule-severity tuning but not code motion. Returns
   the findings the baseline does not accept, the number it does, and
   the *stale* baseline entries — accepted findings that no longer fire
   anywhere. Stale entries are dead weight that would silently re-accept
   a future regression at the same location, so the CLI treats them as
   an error (with --prune-baseline as the escape hatch). *)
let subtract_baseline ~baseline ds =
  let key d = (d.rule, d.file, d.line, d.col, d.message) in
  let kept, matched =
    List.partition
      (fun d -> not (List.exists (fun b -> key b = key d) baseline))
      ds
  in
  let stale =
    List.filter
      (fun b -> not (List.exists (fun d -> key d = key b) ds))
      baseline
  in
  (kept, List.length matched, stale)

let report_schema_version = 2

(* Schema v2 adds the phase-2 aggregates on top of the v1 fields:
   modules_summarized, stale_baseline, the census size and the effect
   histogram over every summarized export. *)
let report_to_json ?(baselined = 0) ?(stale = 0) r =
  let effect_counts =
    List.map
      (fun e ->
        ( Summary.effect_name e,
          Json.Int
            (List.fold_left
               (fun acc (s : Summary.t) ->
                 acc
                 + List.length
                     (List.filter
                        (fun (x : Summary.export) -> x.Summary.x_effect = e)
                        s.Summary.exports))
               0 r.summaries) ))
      [
        Summary.Pure; Summary.Mutates_argument; Summary.Does_io;
        Summary.Mutates_global;
      ]
  in
  let globals =
    List.fold_left
      (fun acc (s : Summary.t) -> acc + List.length s.Summary.globals)
      0 r.summaries
  in
  Json.Obj
    [
      ("tool", Json.Str "incgraph-lint");
      ("schema_version", Json.Int report_schema_version);
      ("files_scanned", Json.Int r.files_scanned);
      ("modules_summarized", Json.Int (List.length r.summaries));
      ("suppressed", Json.Int r.suppressed);
      ("baselined", Json.Int baselined);
      ("stale_baseline", Json.Int stale);
      ("globals", Json.Int globals);
      ("effects", Json.Obj effect_counts);
      ("diagnostics", Json.Arr (List.map diagnostic_to_json r.diagnostics));
    ]

(* Structural check for consumers (bench/validate.exe). Accepts schema
   v1 (the D1-D5-only reports) and v2; returns (version, diagnostic
   count). *)
let validate json =
  let int k = Option.bind (Json.member k json) Json.to_int_opt in
  match Option.bind (Json.member "tool" json) Json.to_str_opt with
  | Some t when t <> "incgraph-lint" ->
      Stdlib.Error (Printf.sprintf "tool %S, expected \"incgraph-lint\"" t)
  | _ -> (
      match (int "schema_version", int "files_scanned", int "suppressed") with
      | None, _, _ -> Stdlib.Error "missing integer \"schema_version\""
      | _, None, _ -> Stdlib.Error "missing integer \"files_scanned\""
      | _, _, None -> Stdlib.Error "missing integer \"suppressed\""
      | Some v, _, _ when v <> 1 && v <> report_schema_version ->
          Stdlib.Error
            (Printf.sprintf "schema_version %d, expected 1 or %d" v
               report_schema_version)
      | Some v, Some _, Some _ -> (
          let v2_ok =
            v = 1
            || (int "modules_summarized" <> None
               && int "stale_baseline" <> None
               && int "globals" <> None
               &&
               match Json.member "effects" json with
               | Some (Json.Obj fields) ->
                   List.for_all
                     (fun e ->
                       match List.assoc_opt (Summary.effect_name e) fields with
                       | Some (Json.Int _) -> true
                       | _ -> false)
                     [
                       Summary.Pure; Summary.Mutates_argument;
                       Summary.Does_io; Summary.Mutates_global;
                     ]
               | _ -> false)
          in
          if not v2_ok then
            Stdlib.Error
              "schema v2 report missing modules_summarized/stale_baseline/\
               globals/effects"
          else
            match diagnostics_of_json json with
            | Ok ds -> Ok (v, List.length ds)
            | Stdlib.Error _ as e -> e))
