(** Determinism & instrumentation linter.

    A parse-only static-analysis pass (compiler-libs [Parse] +
    [Ast_iterator]) enforcing the coding discipline behind the engines'
    cross-hash-seed determinism guarantee:

    - [D1] no polymorphic [compare]/[Hashtbl.hash] in engine modules
      (lib/graph, lib/iso, lib/kws, lib/rpq, lib/scc, lib/sim). The
      [=]-family operators are flagged only as first-class values; infix
      applications (in practice scalar comparisons) pass — a documented
      approximation of a parse-only pass.
    - [D2] no [Hashtbl.iter]/[Hashtbl.fold]/[Digraph.iter_succ]/
      [Digraph.iter_pred] anywhere in lib/: output-visible iteration must
      go through the sorted helpers ([Digraph.iter_succ_sorted],
      [Obs.sorted_bindings]); order-free sites carry
      [[@lint.allow "D2"]].
    - [D3] no global [Random], [Sys.time], [Unix.gettimeofday] or
      [Unix.time] in lib/ outside lib/obs.
    - [D4] every top-level [insert_edge]/[delete_edge]/[apply_batch] in a
      lib/ [inc_*.ml] is wrapped in [Obs.with_apply], and the file emits
      at least one rule-tagged [Tracer.aff_enter].
    - [D5] every lib/ [.ml] has a sibling [.mli].

    On top of the per-file rules, {!run} drives the two-phase
    cross-module analyzer: {!Summary} extracts per-module facts for
    every lib/ implementation and {!Interproc} runs the D6-D8 rules
    over them (unregistered module-scope mutable state, graph mutation
    outside the Digraph/Csr seam, exception-unsafe span regions).

    Suppression: [(expr [@lint.allow "RULE"])] for a subtree,
    [[@@lint.allow "RULE"]] on a binding, [[@@@lint.allow "RULE"]] for
    the rest of the file; all suppressions are counted. A committed
    baseline file can additionally accept specific diagnostics. *)

type severity = Diag.severity = Error | Warning

type diagnostic = Diag.diagnostic = {
  rule : string;
  file : string;  (** repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  severity : severity;
  message : string;
}

val severity_name : severity -> string
val severity_of_name : string -> severity option

val compare_diagnostic : diagnostic -> diagnostic -> int
(** Order by (file, line, col, rule). *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [file:line:col: [rule/severity] message] — one line per finding. *)

val d1_applies : string -> bool
val d2_applies : string -> bool
val d3_applies : string -> bool
val d4_applies : string -> bool
(** Which rules fire for a given repo-relative path. *)

val lint_source : path:string -> string -> diagnostic list * int
(** Lint one implementation given its repo-relative [path] (which
    decides rule applicability) and source text. Returns the sorted
    diagnostics and the number of suppressed findings. A file that does
    not parse yields a single ["syntax"] diagnostic. *)

val lint_interface : path:string -> string -> diagnostic list
(** Parse-check an [.mli] (no expression rules). *)

val scan_files : root:string -> string list
(** All [.ml]/[.mli] files under [root]'s bench/, bin/, lib/ and test/
    directories, repo-relative, sorted; [_build] and dotfiles skipped. *)

type result = {
  diagnostics : diagnostic list;
  suppressed : int;
  files_scanned : int;
  summaries : Summary.t list;
      (** phase-1 extracts for every lib/ implementation that parsed,
          sorted by path *)
}

val run : root:string -> result
(** Lint the whole tree rooted at [root]: every implementation and
    interface, the D5 filesystem check, then the cross-module phase —
    {!Summary.of_source} per lib/ [.ml] (with its sibling [.mli] as the
    export filter) and {!Interproc.analyze} over the lot. *)

val diagnostic_to_json : diagnostic -> Ig_obs.Json.t
val diagnostic_of_json : Ig_obs.Json.t -> (diagnostic, string) Stdlib.result

val diagnostics_of_json :
  Ig_obs.Json.t -> (diagnostic list, string) Stdlib.result
(** Read the ["diagnostics"] array of a report or baseline object. *)

val baseline_to_json : diagnostic list -> Ig_obs.Json.t

val load_baseline : string -> (diagnostic list, string) Stdlib.result
(** Parse a baseline file from disk. *)

val subtract_baseline :
  baseline:diagnostic list ->
  diagnostic list ->
  diagnostic list * int * diagnostic list
(** [(kept, matched, stale)]: drop findings accepted by the baseline,
    matching on every field except severity. [stale] is the baseline
    entries that no longer match any finding — dead entries that would
    silently re-accept a future regression, so the CLI errors on them
    unless [--prune-baseline] rewrites the file. *)

val report_schema_version : int
(** [2] — v2 adds [modules_summarized], [stale_baseline], [globals]
    and the [effects] histogram to the v1 report. *)

val report_to_json : ?baselined:int -> ?stale:int -> result -> Ig_obs.Json.t
(** Machine-readable report:
    [{tool; schema_version; files_scanned; modules_summarized;
    suppressed; baselined; stale_baseline; globals; effects;
    diagnostics}]. *)

val validate : Ig_obs.Json.t -> (int * int, string) Stdlib.result
(** Structural check of a lint report (bench/validate.exe); accepts
    schema v1 and v2 and returns [(schema_version, diagnostic count)]. *)
