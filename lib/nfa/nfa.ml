type state = int
type symbol = Ig_graph.Interner.symbol

module IntSet = Set.Make (Int)

type t = {
  n_states : int;
  accepting : bool array;
  delta : (symbol, state list) Hashtbl.t array;
  delta_inv : (symbol, state list) Hashtbl.t array;
  nullable : bool;
}

let n_states a = a.n_states
let start (_ : t) = 0
let is_accepting a s = a.accepting.(s)
let nullable a = a.nullable

let next a s sym =
  match Hashtbl.find_opt a.delta.(s) sym with Some l -> l | None -> []

let prev a s sym =
  match Hashtbl.find_opt a.delta_inv.(s) sym with Some l -> l | None -> []

(* Glushkov construction. Positions are numbered 1..n in left-to-right
   order of label occurrences; position 0 is the initial state. *)
let compile interner q =
  (* Linearize: collect position labels. *)
  let pos_labels = ref [] in
  let n = ref 0 in
  (* Annotated regex where every label carries its position. *)
  let rec linearize (q : Regex.t) =
    match q with
    | Regex.Empty -> `Empty
    | Regex.Label l ->
        incr n;
        let p = !n in
        pos_labels := (p, Ig_graph.Interner.intern interner l) :: !pos_labels;
        `Pos p
    | Regex.Concat (a, b) -> `Concat (linearize a, linearize b)
    | Regex.Alt (a, b) -> `Alt (linearize a, linearize b)
    | Regex.Star a -> `Star (linearize a)
  in
  let lin = linearize q in
  let n = !n in
  let label_of = Array.make (n + 1) (-1) in
  List.iter (fun (p, sym) -> label_of.(p) <- sym) !pos_labels;
  let follow = Array.make (n + 1) IntSet.empty in
  let add_follow from_set to_set =
    IntSet.iter
      (fun p -> follow.(p) <- IntSet.union follow.(p) to_set)
      from_set
  in
  (* (nullable, first, last) in one recursion, filling [follow]. *)
  let rec go = function
    | `Empty -> (true, IntSet.empty, IntSet.empty)
    | `Pos p -> (false, IntSet.singleton p, IntSet.singleton p)
    | `Alt (a, b) ->
        let na, fa, la = go a and nb, fb, lb = go b in
        (na || nb, IntSet.union fa fb, IntSet.union la lb)
    | `Concat (a, b) ->
        let na, fa, la = go a and nb, fb, lb = go b in
        add_follow la fb;
        let first = if na then IntSet.union fa fb else fa in
        let last = if nb then IntSet.union la lb else lb in
        (na && nb, first, last)
    | `Star a ->
        let _, fa, la = go a in
        add_follow la fa;
        (true, fa, la)
  in
  let nullable, first, last = go lin in
  let delta = Array.init (n + 1) (fun _ -> Hashtbl.create 4) in
  let delta_inv = Array.init (n + 1) (fun _ -> Hashtbl.create 4) in
  let add_transition s p =
    let sym = label_of.(p) in
    let cur =
      Option.value ~default:[] (Hashtbl.find_opt delta.(s) sym)
    in
    Hashtbl.replace delta.(s) sym (p :: cur);
    let cur' =
      Option.value ~default:[] (Hashtbl.find_opt delta_inv.(p) sym)
    in
    Hashtbl.replace delta_inv.(p) sym (s :: cur')
  in
  IntSet.iter (fun p -> add_transition 0 p) first;
  for s = 1 to n do
    IntSet.iter (fun p -> add_transition s p) follow.(s)
  done;
  let accepting = Array.make (n + 1) false in
  accepting.(0) <- nullable;
  IntSet.iter (fun p -> accepting.(p) <- true) last;
  { n_states = n + 1; accepting; delta; delta_inv; nullable }

let accepts a word =
  let step states sym =
    IntSet.fold
      (fun s acc -> List.fold_left (fun acc s' -> IntSet.add s' acc) acc (next a s sym))
      states IntSet.empty
  in
  let final = List.fold_left step (IntSet.singleton 0) word in
  IntSet.exists (fun s -> is_accepting a s) final

let alphabet a =
  let syms = Hashtbl.create 8 in
  (* Order-free: fills a membership set; the result is sorted below. *)
  Array.iter
    (fun tbl ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun sym _ -> Hashtbl.replace syms sym ())
        tbl)
    a.delta;
  List.sort Int.compare
    ((Hashtbl.fold [@lint.allow "D2"]) (fun sym () acc -> sym :: acc) syms [])

let pp ppf a =
  Format.fprintf ppf "@[<v>nfa: %d states@," a.n_states;
  for s = 0 to a.n_states - 1 do
    Format.fprintf ppf "  %d%s:" s (if a.accepting.(s) then " (accept)" else "");
    List.iter
      (fun (sym, targets) ->
        List.iter (fun p -> Format.fprintf ppf " -%d->%d" sym p) targets)
      (List.sort
         (fun (s1, _) (s2, _) -> Int.compare s1 s2)
         ((Hashtbl.fold [@lint.allow "D2"])
            (fun sym ts acc -> (sym, ts) :: acc)
            a.delta.(s) []));
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
