module Digraph = Ig_graph.Digraph
module Pattern = Ig_iso.Pattern

type node = Digraph.node

type relation = (node, unit) Hashtbl.t array

let candidates p g =
  Array.init (Pattern.n_nodes p) (fun u ->
      let h = Hashtbl.create 32 in
      (match Ig_graph.Interner.find (Digraph.interner g) (Pattern.label p u) with
      | None -> ()
      | Some sym ->
          List.iter (fun v -> Hashtbl.replace h v ()) (Digraph.nodes_with_label g sym));
      h)

(* Pattern edges carry dense ids; [out_edges.(u)] lists (edge id, u'). *)
let edge_index p =
  let n = Pattern.n_nodes p in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iteri
    (fun e (u, u') ->
      out_edges.(u) <- (e, u') :: out_edges.(u);
      in_edges.(u') <- (e, u) :: in_edges.(u'))
    (Pattern.edges p);
  (out_edges, in_edges)

let support_count g sets u' v =
  let c = ref 0 in
  (* Order-free: counting commutes. *)
  (Digraph.iter_succ [@lint.allow "D2"])
    (fun w -> if Hashtbl.mem sets.(u') w then incr c)
    g v;
  !c

let prune p g sets =
  let out_edges, in_edges = edge_index p in
  let ne = Pattern.n_edges p in
  let cnt = Array.init ne (fun _ -> Hashtbl.create 32) in
  let doomed = Stack.create () in
  (* Initial counts; pairs with an unsupported pattern edge die first. *)
  Array.iteri
    (fun u set ->
      (* Order-free: the greatest fixpoint is unique, so the worklist
         order cannot change the pruned result. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v () ->
          List.iter
            (fun (e, u') ->
              let c = support_count g sets u' v in
              Hashtbl.replace cnt.(e) v c;
              if c = 0 then Stack.push (u, v) doomed)
            out_edges.(u))
        set)
    sets;
  while not (Stack.is_empty doomed) do
    let u, v = Stack.pop doomed in
    if Hashtbl.mem sets.(u) v then begin
      Hashtbl.remove sets.(u) v;
      (* Predecessors relying on (u, v) as support lose one unit. *)
      List.iter
        (fun (e, t) ->
          (* Order-free: see the fixpoint note above. *)
          (Digraph.iter_pred [@lint.allow "D2"])
            (fun pnode ->
              if Hashtbl.mem sets.(t) pnode then begin
                match Hashtbl.find_opt cnt.(e) pnode with
                | Some c ->
                    Hashtbl.replace cnt.(e) pnode (c - 1);
                    if c - 1 = 0 then Stack.push (t, pnode) doomed
                | None -> ()
              end)
            g v)
        in_edges.(u)
    end
  done;
  sets

let run p g = prune p g (candidates p g)

(* Lexicographic (u, v) order: the pair list is user-visible. *)
let pairs rel =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun u set ->
            List.map
              (fun (v, ()) -> (u, v))
              (Ig_obs.Obs.sorted_bindings ~compare:Int.compare set))
          rel))

let mem rel u v = Hashtbl.mem rel.(u) v
