module Digraph = Ig_graph.Digraph
module Pattern = Ig_iso.Pattern
module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

type node = Digraph.node

type delta = { added : (int * node) list; removed : (int * node) list }

type t = {
  g : Digraph.t;
  p : Pattern.t;
  obs : Obs.t;
  trace : Tracer.t;
  r : Sim.relation;
  cnt : (node, int) Hashtbl.t array; (* per pattern edge id, for v ∈ r.(u) *)
  out_edges : (int * int) list array;
  in_edges : (int * int) list array;
  gained : (int * node, unit) Hashtbl.t;
  lost : (int * node, unit) Hashtbl.t;
  mutable n_pairs : int;
}

let graph t = t.g
let pattern t = t.p
let obs t = t.obs
let trace t = t.trace
let relation t = t.r
let mem t u v = Sim.mem t.r u v
let n_pairs t = t.n_pairs

let note_gain t u v =
  t.n_pairs <- t.n_pairs + 1;
  if Hashtbl.mem t.lost (u, v) then Hashtbl.remove t.lost (u, v)
  else Hashtbl.replace t.gained (u, v) ()

let note_lose t u v =
  t.n_pairs <- t.n_pairs - 1;
  if Hashtbl.mem t.gained (u, v) then Hashtbl.remove t.gained (u, v)
  else Hashtbl.replace t.lost (u, v) ()

let compare_pair (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let flush_delta t =
  (* Pair order: the delta lists are consumer-visible. *)
  let added = List.map fst (Obs.sorted_bindings ~compare:compare_pair t.gained) in
  let removed = List.map fst (Obs.sorted_bindings ~compare:compare_pair t.lost) in
  Obs.note_changed_output t.obs (List.length added + List.length removed);
  Hashtbl.reset t.gained;
  Hashtbl.reset t.lost;
  { added; removed }

let support_count t u' v = Sim.support_count t.g t.r u' v

(* Decremental cascade: remove pairs whose support hit zero. *)
let cascade t doomed =
  let stack = Stack.create () in
  List.iter (fun x -> Stack.push x stack) doomed;
  while not (Stack.is_empty stack) do
    let u, v = Stack.pop stack in
    Obs.incr t.obs Obs.K.nodes_visited;
    if Hashtbl.mem t.r.(u) v then begin
      Hashtbl.remove t.r.(u) v;
      List.iter (fun (e, _) -> Hashtbl.remove t.cnt.(e) v) t.out_edges.(u);
      note_lose t u v;
      Obs.incr t.obs Obs.K.aff;
      Obs.incr t.obs Obs.K.cert_rewrites;
      if Tracer.enabled t.trace then begin
        Tracer.aff_enter t.trace ~node:v ~rule:Tracer.Sim_support_zero;
        Tracer.cert_rewrite t.trace ~node:v
          ~field:(Printf.sprintf "sim(%d)" u)
          ~before:"member" ~after:"removed"
      end;
      List.iter
        (fun (e, tp) ->
          (* Sorted: zero-support discovery order reaches the trace. *)
          Digraph.iter_pred_sorted
            (fun pnode ->
              Obs.incr t.obs Obs.K.edges_relaxed;
              if Hashtbl.mem t.r.(tp) pnode then begin
                match Hashtbl.find_opt t.cnt.(e) pnode with
                | Some c ->
                    Hashtbl.replace t.cnt.(e) pnode (c - 1);
                    if c - 1 = 0 then begin
                      Obs.incr t.obs Obs.K.queue_pushes;
                      Tracer.frontier_expand t.trace ~node:pnode;
                      Stack.push (tp, pnode) stack
                    end
                | None -> ()
              end)
            t.g v)
        t.in_edges.(u)
    end
  done

let delete_edge t a b =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.remove_edge t.g a b then begin
    Obs.note_changed_input t.obs 1;
    let doomed = ref [] in
    (* Pattern edges whose support ran through the deleted graph edge. *)
    Array.iteri
      (fun u ls ->
        List.iter
          (fun (e, u') ->
            if Hashtbl.mem t.r.(u') b && Hashtbl.mem t.r.(u) a then begin
              match Hashtbl.find_opt t.cnt.(e) a with
              | Some c ->
                  Hashtbl.replace t.cnt.(e) a (c - 1);
                  if c - 1 = 0 then doomed := (u, a) :: !doomed
              | None -> ()
            end)
          ls)
      t.out_edges;
    cascade t !doomed
  end

let insert_edge t a b =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.add_edge t.g a b then begin
    Obs.note_changed_input t.obs 1;
    (* Existing pairs gain support through the new edge. *)
    Array.iteri
      (fun u ls ->
        List.iter
          (fun (e, u') ->
            if Hashtbl.mem t.r.(u') b && Hashtbl.mem t.r.(u) a then
              Hashtbl.replace t.cnt.(e) a
                (1 + Option.value ~default:0 (Hashtbl.find_opt t.cnt.(e) a)))
          ls)
      t.out_edges;
    (* Revalidation: a pair can flip into the greatest simulation only if
       its support dependency chain reaches the new edge, i.e. its graph
       node reaches [a]. Prune R ∪ those candidates; R itself survives
       (adding edges cannot invalidate a simulation), so the pruned result
       is exactly the new greatest simulation. *)
    let closure =
      Ig_graph.Traverse.reachable t.g ~dir:`Backward [ a ]
    in
    Obs.add t.obs Obs.K.nodes_visited (Hashtbl.length closure);
    let cands = Sim.candidates t.p t.g in
    let init =
      Array.mapi
        (fun u set ->
          let h = Hashtbl.copy t.r.(u) in
          (* Order-free: fills a membership set. *)
          (Hashtbl.iter [@lint.allow "D2"])
            (fun v () ->
              if Hashtbl.mem closure v && not (Hashtbl.mem h v) then
                Hashtbl.replace h v ())
            set;
          h)
        cands
    in
    let fresh = Sim.prune t.p t.g init in
    (* Merge additions and refresh counters incrementally. *)
    let additions = ref [] in
    Array.iteri
      (fun u set ->
        (* Sorted: revalidation order reaches the trace. *)
        List.iter
          (fun (v, ()) ->
            if not (Hashtbl.mem t.r.(u) v) then begin
              Hashtbl.replace t.r.(u) v ();
              note_gain t u v;
              Obs.incr t.obs Obs.K.aff;
              Obs.incr t.obs Obs.K.cert_rewrites;
              if Tracer.enabled t.trace then begin
                Tracer.aff_enter t.trace ~node:v ~rule:Tracer.Sim_revalidated;
                Tracer.cert_rewrite t.trace ~node:v
                  ~field:(Printf.sprintf "sim(%d)" u)
                  ~before:"absent" ~after:"member"
              end;
              additions := (u, v) :: !additions
            end)
          (Obs.sorted_bindings ~compare:Int.compare set))
      fresh;
    let added_set = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace added_set x ()) !additions;
    List.iter
      (fun (u, v) ->
        (* Own support counts, against the final relation — these already
           include support coming from other same-round additions. *)
        List.iter
          (fun (e, u') -> Hashtbl.replace t.cnt.(e) v (support_count t u' v))
          t.out_edges.(u);
        (* The new member also supports its pre-existing predecessors; the
           counts of same-round additions were computed fresh above and
           must not be bumped twice. *)
        List.iter
          (fun (e, tp) ->
            (* Order-free: counter bumps commute. *)
            (Digraph.iter_pred [@lint.allow "D2"])
              (fun pnode ->
                if
                  Hashtbl.mem t.r.(tp) pnode
                  && not (Hashtbl.mem added_set (tp, pnode))
                then
                  Hashtbl.replace t.cnt.(e) pnode
                    (1
                    + Option.value ~default:0
                        (Hashtbl.find_opt t.cnt.(e) pnode)))
              t.g v)
          t.in_edges.(u))
      !additions
  end

let apply_batch t updates =
  Obs.with_apply t.obs @@ fun () ->
  Obs.with_span t.obs "sim.process" (fun () ->
      Tracer.with_span t.trace "sim.process" (fun () ->
          List.iter
        (fun up ->
          match up with
          | Digraph.Insert (u, v) -> insert_edge t u v
          | Digraph.Delete (u, v) -> delete_edge t u v)
            updates));
  flush_delta t

let init ?(obs = Obs.noop) ?(trace = Tracer.noop) g p =
  Digraph.instrument ~obs ~trace g;
  let r = Sim.run p g in
  let out_edges, in_edges = Sim.edge_index p in
  let cnt =
    Array.init (Pattern.n_edges p) (fun _ -> Hashtbl.create 32)
  in
  let t =
    {
      g;
      p;
      obs;
      trace;
      r;
      cnt;
      out_edges;
      in_edges;
      gained = Hashtbl.create 32;
      lost = Hashtbl.create 32;
      n_pairs = 0;
    }
  in
  Array.iteri
    (fun u set ->
      (* Order-free: counter setup commutes. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v () ->
          t.n_pairs <- t.n_pairs + 1;
          List.iter
            (fun (e, u') -> Hashtbl.replace cnt.(e) v (support_count t u' v))
            out_edges.(u))
        set)
    r;
  t

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let fresh = Sim.run t.p t.g in
  Array.iteri
    (fun u set ->
      if Hashtbl.length set <> Hashtbl.length t.r.(u) then
        fail "pattern node %d: %d members, expected %d" u
          (Hashtbl.length t.r.(u))
          (Hashtbl.length set);
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v () ->
          if not (Hashtbl.mem t.r.(u) v) then fail "missing pair (%d, %d)" u v)
        set)
    fresh;
  (* Counter consistency. *)
  Array.iteri
    (fun u set ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v () ->
          List.iter
            (fun (e, u') ->
              let real = support_count t u' v in
              match Hashtbl.find_opt t.cnt.(e) v with
              | Some c when c = real -> ()
              | Some c -> fail "cnt(%d, %d) = %d, expected %d" e v c real
              | None -> fail "cnt(%d, %d) missing" e v)
            t.out_edges.(u))
        set)
    t.r;
  let total = Array.fold_left (fun acc s -> acc + Hashtbl.length s) 0 t.r in
  if total <> t.n_pairs then fail "n_pairs %d, expected %d" t.n_pairs total

(* Canonical text dump of the simulation relation and support counters,
   hash-seed independent via sorted iteration. *)
let cert_snapshot t =
  let rel = Buffer.create 256 in
  Array.iteri
    (fun u h ->
      List.iter
        (fun (v, ()) -> Buffer.add_string rel (Printf.sprintf "u%d v%d\n" u v))
        (Obs.sorted_bindings ~compare:Int.compare h))
    t.r;
  let cnt = Buffer.create 256 in
  Array.iteri
    (fun e h ->
      List.iter
        (fun (v, c) ->
          Buffer.add_string cnt (Printf.sprintf "e%d v%d %d\n" e v c))
        (Obs.sorted_bindings ~compare:Int.compare h))
    t.cnt;
  [
    ("rel", Buffer.contents rel);
    ("cnt", Buffer.contents cnt);
    ("pairs", Printf.sprintf "%d\n" t.n_pairs);
  ]
