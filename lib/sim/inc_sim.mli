(** Incremental graph simulation.

    Maintains the greatest simulation relation under edge updates, in the
    spirit of the semi-bounded algorithms of [17] that the paper's related
    work discusses:

    - {b deletions} propagate lost support through per-(pattern-edge, node)
      counters — the classic decremental cascade, touching only pairs whose
      support actually collapses;
    - {b insertions} can only grow the greatest simulation, and a pair can
      flip only if its support chain reaches the new edge, so the
      revalidation candidates are confined to label-compatible pairs whose
      graph node reaches the inserted edge's tail; the fixpoint reruns on
      [R ∪ candidates] only (still the "auxiliary data may be polynomial in
      |G|" regime of semi-boundedness — simulation has no locality, which
      is exactly the paper's point in Section 4.1). *)

type node = Ig_graph.Digraph.node

type delta = {
  added : (int * node) list;    (** (pattern node, graph node) pairs *)
  removed : (int * node) list;
}

type t

val init :
  ?obs:Ig_obs.Obs.t ->
  ?trace:Ig_obs.Tracer.t ->
  Ig_graph.Digraph.t ->
  Ig_iso.Pattern.t ->
  t
(** Runs the batch fixpoint once; the session owns the graph. [obs]
    (default {!Ig_obs.Obs.noop}) receives cost counters: [aff] (relation
    pairs gained or lost — the measured |AFF|), [cert_rewrites],
    [nodes_visited] (cascade pops + revalidation closure), [edges_relaxed]
    (support rescans), [queue_pushes], and [changed] = |ΔG| + |ΔO|.
    Each outermost {!apply_batch}/{!insert_edge}/{!delete_edge} call also
    records one sample into the [apply_latency_s] histogram (monotonic
    seconds) and the [gc_minor_words]/[gc_major_words]/
    [gc_promoted_words] histograms ([Gc.quick_stat] deltas). [trace] (default {!Ig_obs.Tracer.noop}) receives structured events:
    [Aff_enter] tagged [Sim_support_zero] (a pair's support counter hit
    zero in the cascade) or [Sim_revalidated] (a pair re-entered the
    greatest simulation), [Cert_rewrite] on the per-pattern-node [sim(u)]
    membership field, and [Frontier_expand] per cascade push. *)

val graph : t -> Ig_graph.Digraph.t
val pattern : t -> Ig_iso.Pattern.t

val obs : t -> Ig_obs.Obs.t
(** The metrics sink the session was created with. *)

val trace : t -> Ig_obs.Tracer.t
(** The event tracer the session was created with. *)

val insert_edge : t -> node -> node -> unit
val delete_edge : t -> node -> node -> unit
val apply_batch : t -> Ig_graph.Digraph.update list -> delta
val flush_delta : t -> delta

val relation : t -> Sim.relation
(** The current greatest simulation (do not mutate). *)

val mem : t -> int -> node -> bool
val n_pairs : t -> int

val check_invariants : t -> unit
(** Test hook: relation equals a fresh batch run; counters are consistent.
    @raise Failure on violation. *)

val cert_snapshot : t -> (string * string) list
(** SNAPSHOTTABLE: the simulation relation, per-pattern-edge support
    counters and pair total as named canonical-text sections (hash-seed
    independent), for durable certificate snapshots. *)
