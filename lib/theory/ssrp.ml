module Digraph = Ig_graph.Digraph

type node = Digraph.node

let batch g src =
  let seen = Hashtbl.create 64 in
  if Digraph.mem_node g src then begin
    let stack = Stack.create () in
    Hashtbl.replace seen src ();
    Stack.push src stack;
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      (* Order-free: computes a reachability set. *)
      (Digraph.iter_succ [@lint.allow "D2"])
        (fun w ->
          if not (Hashtbl.mem seen w) then begin
            Hashtbl.replace seen w ();
            Stack.push w stack
          end)
        g v
    done
  end;
  seen

type t = { g : Digraph.t; src : node; mutable reach : (node, unit) Hashtbl.t }

let init g src = { g; src; reach = batch g src }

let graph t = t.g
let source t = t.src
let reaches t v = Hashtbl.mem t.reach v
let reachable_count t = Hashtbl.length t.reach

let insert_edge t u v =
  if not (Digraph.add_edge t.g u v) then []
  else if Hashtbl.mem t.reach u && not (Hashtbl.mem t.reach v) then begin
    (* Bounded: BFS only into the newly reachable region. *)
    let added = ref [] in
    let stack = Stack.create () in
    Hashtbl.replace t.reach v ();
    added := v :: !added;
    Stack.push v stack;
    while not (Stack.is_empty stack) do
      let x = Stack.pop stack in
      (* Order-free: set membership; the result is sorted below. *)
      (Digraph.iter_succ [@lint.allow "D2"])
        (fun w ->
          if not (Hashtbl.mem t.reach w) then begin
            Hashtbl.replace t.reach w ();
            added := w :: !added;
            Stack.push w stack
          end)
        t.g x
    done;
    List.sort Int.compare !added
  end
  else []

let delete_edge t u v =
  if not (Digraph.remove_edge t.g u v) then []
  else if Hashtbl.mem t.reach u && Hashtbl.mem t.reach v then begin
    (* Unbounded in general: recompute and diff. *)
    let fresh = batch t.g t.src in
    let lost = ref [] in
    (* Order-free: set difference; the result is sorted below. *)
    (Hashtbl.iter [@lint.allow "D2"])
      (fun x () -> if not (Hashtbl.mem fresh x) then lost := x :: !lost)
      t.reach;
    t.reach <- fresh;
    List.sort Int.compare !lost
  end
  else []

let check_invariants t =
  let fresh = batch t.g t.src in
  if Hashtbl.length fresh <> Hashtbl.length t.reach then
    failwith "Ssrp: reachable set size drifted";
  (Hashtbl.iter [@lint.allow "D2"])
    (fun v () ->
      if not (Hashtbl.mem t.reach v) then failwith "Ssrp: missing node")
    fresh
