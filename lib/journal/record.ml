type op =
  | Upsert_edge of int * int
  | Tombstone_edge of int * int
  | Upsert_node of int * string
  | Tombstone_node of int

type kind = Do | Undo of int

type header = {
  version : int;
  cls : string;
  bound : int;
  qargs : string list;
  base_digest : string;
}

type batch = {
  seq : int;
  kind : kind;
  ops : op list;
  pre : string;
  post : string;
}

type payload = Header of header | Batch of batch

let format_version = 1
let magic = "IGJRNL01"

(* Labels may contain any byte; the canonical op text escapes them so ids
   and inspection output stay one-line. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | ' ' -> Buffer.add_string b "\\s"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let op_to_string = function
  | Upsert_edge (u, v) -> Printf.sprintf "+e %d %d" u v
  | Tombstone_edge (u, v) -> Printf.sprintf "-e %d %d" u v
  | Upsert_node (id, l) -> Printf.sprintf "+v %d %s" id (escape l)
  | Tombstone_node id -> Printf.sprintf "-v %d" id

let op_id ~seq ~index op =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%d/%d/%s" seq index (op_to_string op)))

let inverse_op = function
  | Upsert_edge (u, v) -> Some (Tombstone_edge (u, v))
  | Tombstone_edge (u, v) -> Some (Upsert_edge (u, v))
  | Upsert_node _ | Tombstone_node _ -> None

(* ---- binary codec -------------------------------------------------------- *)

(* All integers are non-negative and fit 32 bits in practice (node ids,
   sequence numbers, string lengths); they are written as 4-byte
   big-endian. Strings are length-prefixed and binary-safe. *)

let add_u32 b n =
  if n < 0 || n > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Record: integer %d out of u32 range" n);
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_op b = function
  | Upsert_edge (u, v) ->
      Buffer.add_char b '\000';
      add_u32 b u;
      add_u32 b v
  | Tombstone_edge (u, v) ->
      Buffer.add_char b '\001';
      add_u32 b u;
      add_u32 b v
  | Upsert_node (id, l) ->
      Buffer.add_char b '\002';
      add_u32 b id;
      add_str b l
  | Tombstone_node id ->
      Buffer.add_char b '\003';
      add_u32 b id

let encode_payload p =
  let b = Buffer.create 64 in
  (match p with
  | Header h ->
      Buffer.add_char b 'H';
      add_u32 b h.version;
      add_str b h.cls;
      add_u32 b h.bound;
      add_u32 b (List.length h.qargs);
      List.iter (add_str b) h.qargs;
      add_str b h.base_digest
  | Batch t ->
      Buffer.add_char b 'B';
      add_u32 b t.seq;
      (match t.kind with
      | Do -> Buffer.add_char b '\000'
      | Undo k ->
          Buffer.add_char b '\001';
          add_u32 b k);
      add_u32 b (List.length t.ops);
      List.iter (add_op b) t.ops;
      add_str b t.pre;
      add_str b t.post);
  Buffer.contents b

type error = Truncated | Corrupt of string

exception Bad of error

let fail msg = raise (Bad (Corrupt msg))

(* A cursor over an in-memory buffer. [Truncated] means the buffer ended
   mid-field — indistinguishable from a torn write, which is the point. *)
type cursor = { src : string; mutable pos : int; limit : int }

let need c n = if c.pos + n > c.limit then raise (Bad Truncated)

let get_byte c =
  need c 1;
  let x = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  x

let get_u32 c =
  need c 4;
  let b i = Char.code c.src.[c.pos + i] in
  let x = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  x

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_op c =
  match get_byte c with
  | 0 ->
      let u = get_u32 c in
      Upsert_edge (u, get_u32 c)
  | 1 ->
      let u = get_u32 c in
      Tombstone_edge (u, get_u32 c)
  | 2 ->
      let id = get_u32 c in
      Upsert_node (id, get_str c)
  | 3 -> Tombstone_node (get_u32 c)
  | t -> fail (Printf.sprintf "unknown op tag %d" t)

let decode_payload s =
  let c = { src = s; pos = 0; limit = String.length s } in
  let p =
    match get_byte c with
    | 0x48 (* 'H' *) ->
        let version = get_u32 c in
        let cls = get_str c in
        let bound = get_u32 c in
        let n = get_u32 c in
        if n > c.limit - c.pos then raise (Bad Truncated);
        let qargs = List.init n (fun _ -> get_str c) in
        Header { version; cls; bound; qargs; base_digest = get_str c }
    | 0x42 (* 'B' *) ->
        let seq = get_u32 c in
        let kind =
          match get_byte c with
          | 0 -> Do
          | 1 -> Undo (get_u32 c)
          | k -> fail (Printf.sprintf "unknown batch kind %d" k)
        in
        let n = get_u32 c in
        if n > c.limit - c.pos then raise (Bad Truncated);
        let ops = List.init n (fun _ -> get_op c) in
        let pre = get_str c in
        Batch { seq; kind; ops; pre; post = get_str c }
    | t -> fail (Printf.sprintf "unknown payload tag %d" t)
  in
  if c.pos <> c.limit then
    fail (Printf.sprintf "%d trailing byte(s) in payload" (c.limit - c.pos));
  p

let frame payload =
  let b = Buffer.create (String.length payload + 24) in
  add_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.add_string b (Digest.string payload);
  Buffer.contents b

(* The frame length bound is a sanity check against a corrupted length
   field sending the reader gigabytes ahead: no legitimate payload in this
   repo approaches it. *)
let max_payload = 1 lsl 26

let read_record src ~pos =
  let limit = String.length src in
  let c = { src; pos; limit } in
  match
    let len = get_u32 c in
    if len > max_payload then fail (Printf.sprintf "frame length %d" len);
    need c (len + 16);
    let payload = String.sub src c.pos len in
    let sum = String.sub src (c.pos + len) 16 in
    if not (String.equal sum (Digest.string payload)) then
      fail "checksum mismatch";
    (decode_payload payload, c.pos + len + 16)
  with
  | r -> Ok r
  | exception Bad e -> Error e
