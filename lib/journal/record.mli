(** Journal records: atomic graph ops and their on-disk framing.

    The durable unit of the journal is a {e record}: a length-prefixed,
    checksummed frame holding either the journal {!header} (written once,
    first) or one applied {!batch} of atomic ops. The frame layout is

    {v u32_be payload_length | payload | 16-byte MD5(payload) v}

    preceded, at file start, by the 8-byte magic {!magic}. A reader that
    hits a frame whose length runs past EOF, whose checksum disagrees, or
    whose payload fails to decode knows the tail is torn and can stop
    cleanly at the last good record — the crash-recovery contract of
    DESIGN.md §8.5.

    Ops follow the snapshot→delta→apply→evidence shape of provenance
    ledgers: upserts and tombstones over edges and nodes, where replaying
    an op a second time is a no-op ({e idempotent replay}). The journal
    only ever stores {e effective} ops (ops that changed the graph when
    first applied), which is what makes every recorded batch invertible:
    the inverse of an effective upsert is a tombstone of the same edge and
    vice versa. Node upserts are monotone (the paper's update model is
    edge-only; nodes are never removed), so they have no inverse — undo
    ranges containing them are rejected upstream. *)

type op =
  | Upsert_edge of int * int  (** add edge [(u, v)]; inverse: tombstone *)
  | Tombstone_edge of int * int  (** remove edge [(u, v)]; inverse: upsert *)
  | Upsert_node of int * string
      (** add node [id] with a label; effective only when [id] is fresh.
          Monotone — not invertible. *)
  | Tombstone_node of int
      (** soft-delete: drop the node's incident edges (the node id itself
          stays allocated, matching the edge-only update model). Always
          expanded into its effective [Tombstone_edge]s before journaling. *)

type kind =
  | Do  (** a forward batch *)
  | Undo of int
      (** a compensating batch rolling back the previous [k] batches;
          undo-of-undo is redo *)

type header = {
  version : int;  (** format version; currently {!format_version} *)
  cls : string;  (** query class ("kws", "rpq", …) or scenario name *)
  bound : int;  (** KWS hop bound; 0 when unused *)
  qargs : string list;  (** class-specific query arguments *)
  base_digest : string;  (** hex MD5 of the base graph's canonical text *)
}

type batch = {
  seq : int;  (** 1-based, contiguous; assigned by the journal *)
  kind : kind;
  ops : op list;  (** effective ops, in application order *)
  pre : string;  (** graph digest before the batch *)
  post : string;  (** graph digest after the batch *)
}

type payload = Header of header | Batch of batch

val format_version : int

val magic : string
(** ["IGJRNL01"] — the 8-byte file magic. *)

val op_to_string : op -> string
(** Canonical one-line rendering (labels escaped), used in op ids and
    inspection output. *)

val op_id : seq:int -> index:int -> op -> string
(** Deterministic op identity: hex MD5 of [(seq, index, op_to_string op)].
    Derived, never stored — two journals that replay the same ops in the
    same positions agree on every op id. *)

val inverse_op : op -> op option
(** [None] exactly on node ops (monotone). *)

val encode_payload : payload -> string

type error = Truncated | Corrupt of string

val frame : string -> string
(** Wrap an encoded payload in the on-disk frame (length + checksum). *)

val read_record : string -> pos:int -> (payload * int, error) result
(** Decode one framed record at [pos]; returns the payload and the
    position one past the frame. [Truncated] when the buffer ends inside
    the frame, [Corrupt] on checksum or decode failure — both are torn
    tails to a scanner, never exceptions. *)
