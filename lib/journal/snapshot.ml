module Json = Ig_obs.Json

type t = {
  seq : int;
  graph_text : string;
  graph_digest : string;
  answer_digest : string;
  certs : (string * string) list;
}

let tool_name = "incgraph-journal-snapshot"
let schema_version = 1

let of_state ~seq ~graph ~answer_digest ~certs =
  let graph_text = Format.asprintf "%a" Ig_graph.Io.write graph in
  {
    seq;
    graph_text;
    graph_digest = Journal.digest_hex graph_text;
    answer_digest;
    certs;
  }

let graph t = Ig_graph.Io.of_string t.graph_text

let body_json t =
  Json.Obj
    [
      ("tool", Json.Str tool_name);
      ("schema_version", Json.Int schema_version);
      ("seq", Json.Int t.seq);
      ("graph", Json.Str t.graph_text);
      ("graph_digest", Json.Str t.graph_digest);
      ("answer_digest", Json.Str t.answer_digest);
      ( "certs",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.certs) );
    ]

(* The checksum covers the canonical (non-indented) serialization of the
   object without its checksum field; emission order is fixed, so the
   digest is deterministic. *)
let checksum t = Journal.digest_hex (Json.to_string (body_json t))

let to_json t =
  match body_json t with
  | Json.Obj fields -> Json.Obj (fields @ [ ("checksum", Json.Str (checksum t)) ])
  | _ -> assert false

let validate json =
  let str k = Option.bind (Json.member k json) Json.to_str_opt in
  let int k = Option.bind (Json.member k json) Json.to_int_opt in
  match str "tool" with
  | Some tl when tl <> tool_name ->
      Error (Printf.sprintf "tool %S, expected %S" tl tool_name)
  | None -> Error "missing \"tool\""
  | Some _ -> (
      match int "schema_version" with
      | Some v when v <> schema_version ->
          Error (Printf.sprintf "schema_version %d, expected %d" v schema_version)
      | None -> Error "missing integer \"schema_version\""
      | Some _ -> (
          match
            ( int "seq",
              str "graph",
              str "graph_digest",
              str "answer_digest",
              Option.bind (Json.member "certs" json) Json.to_obj_opt,
              str "checksum" )
          with
          | Some seq, Some graph_text, Some gd, Some ad, Some cfields, Some sum
            -> (
              let certs =
                List.filter_map
                  (fun (k, v) ->
                    Option.map (fun s -> (k, s)) (Json.to_str_opt v))
                  cfields
              in
              if List.length certs <> List.length cfields then
                Error "non-string certificate section"
              else
                let t =
                  {
                    seq;
                    graph_text;
                    graph_digest = gd;
                    answer_digest = ad;
                    certs;
                  }
                in
                if not (String.equal sum (checksum t)) then
                  Error "snapshot checksum mismatch"
                else if
                  not (String.equal gd (Journal.digest_hex graph_text))
                then Error "graph digest does not match graph text"
                else
                  match Ig_graph.Io.of_string graph_text with
                  | exception Failure e -> Error ("unparsable graph: " ^ e)
                  | _ -> Ok t)
          | _ ->
              Error
                "missing seq/graph/graph_digest/answer_digest/certs/checksum"))

let path ~dir ~seq = Filename.concat dir (Printf.sprintf "snapshot-%d.json" seq)

let save ~dir t =
  let p = path ~dir ~seq:t.seq in
  Out_channel.with_open_bin p (fun oc ->
      Out_channel.output_string oc (Json.to_string ~indent:true (to_json t));
      Out_channel.output_char oc '\n');
  p

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read %s: %s" path e)
  | src -> (
      match Json.parse src with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match validate j with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok t -> Ok t))

let list_seqs ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             if
               String.starts_with ~prefix:"snapshot-" name
               && Filename.check_suffix name ".json"
             then
               let mid =
                 String.sub name 9 (String.length name - 9 - 5)
               in
               match int_of_string_opt mid with
               | Some n when n >= 0 -> Some n
               | _ -> None
             else None)
      |> List.sort Int.compare
