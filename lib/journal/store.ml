module Digraph = Ig_graph.Digraph
module Obs = Ig_obs.Obs

type client = {
  apply : Record.op list -> unit;
  graph : unit -> Digraph.t;
  answer_digest : unit -> string;
  certs : unit -> (string * string) list;
}

let graph_client g =
  {
    apply = List.iter (Journal.apply_op g);
    graph = (fun () -> g);
    answer_digest = (fun () -> "");
    certs = (fun () -> []);
  }

type t = {
  dir : string;
  journal : Journal.t;
  client : client;
  obs : Obs.t;
  writable : bool;
}

type plan = {
  header : Record.header;
  snapshot : Snapshot.t;
  replay : Record.batch list;
  dropped : int;
  tip : int;
  cut : int;
}

let journal_path ~dir = Filename.concat dir "journal.igj"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755
     with Sys_error _ when Sys.file_exists dir -> ())
  end

let init ?(obs = Obs.noop) ~dir ~header ~client () =
  mkdir_p dir;
  Obs.with_span obs "snapshot_write" (fun () ->
      Obs.observe_time obs Obs.K.snapshot_write_latency (fun () ->
          let snap =
            Snapshot.of_state ~seq:0 ~graph:(client.graph ())
              ~answer_digest:(client.answer_digest ())
              ~certs:(client.certs ())
          in
          ignore (Snapshot.save ~dir snap)));
  Obs.incr obs Obs.K.snapshots;
  let journal = Journal.create ~path:(journal_path ~dir) header in
  Journal.instrument journal obs;
  { dir; journal; client; obs; writable = true }

let plan ?as_of ?(from_scratch = false) ~dir () =
  match Journal.scan ~path:(journal_path ~dir) with
  | Error e -> Error e
  | Ok scanned ->
      let tip =
        match List.rev scanned.Journal.batches with
        | b :: _ -> b.Record.seq
        | [] -> 0
      in
      let cut = match as_of with None -> tip | Some n -> min n tip in
      if cut < 0 then Error "as-of: sequence must be >= 0"
      else
        (* Newest intact snapshot at or below the cut; corrupt ones are
           skipped, snapshot-0 (written at init) is the floor. *)
        let candidates =
          if from_scratch then [ 0 ]
          else
            List.rev
              (List.filter (fun s -> s <= cut) (Snapshot.list_seqs ~dir))
        in
        let rec pick = function
          | [] -> Error (Printf.sprintf "%s: no usable snapshot" dir)
          | seq :: rest -> (
              match Snapshot.load ~path:(Snapshot.path ~dir ~seq) with
              | Ok s -> Ok s
              | Error _ -> pick rest)
        in
        (match pick candidates with
        | Error e -> Error e
        | Ok snapshot ->
            let replay =
              List.filter
                (fun b ->
                  b.Record.seq > snapshot.Snapshot.seq && b.Record.seq <= cut)
                scanned.Journal.batches
            in
            let dropped =
              match scanned.Journal.tail with
              | Journal.Clean -> 0
              | Journal.Torn { dropped; _ } -> dropped
            in
            Ok
              {
                header = scanned.Journal.header;
                snapshot;
                replay;
                dropped;
                tip;
                cut;
              })

let attach ?(obs = Obs.noop) ~dir ~plan ~client () =
  let check_digest ~ctx expected =
    let got = Journal.graph_digest (client.graph ()) in
    if String.equal got expected then Ok ()
    else
      Error
        (Printf.sprintf "%s: graph digest %s, journal says %s" ctx got expected)
  in
  match
    check_digest
      ~ctx:(Printf.sprintf "snapshot-%d" plan.snapshot.Snapshot.seq)
      plan.snapshot.Snapshot.graph_digest
  with
  | Error e -> Error e
  | Ok () -> (
      let replay_one b =
        match check_digest ~ctx:(Printf.sprintf "batch %d pre" b.Record.seq)
                b.Record.pre
        with
        | Error e -> Error e
        | Ok () -> (
            match client.apply b.Record.ops with
            | exception e ->
                Error
                  (Printf.sprintf "batch %d: apply raised %s" b.Record.seq
                     (Printexc.to_string e))
            | () ->
                Obs.add obs Obs.K.journal_replayed (List.length b.Record.ops);
                check_digest
                  ~ctx:(Printf.sprintf "batch %d post" b.Record.seq)
                  b.Record.post)
      in
      let rec replay = function
        | [] -> Ok ()
        | b :: rest -> (
            match replay_one b with Error e -> Error e | Ok () -> replay rest)
      in
      match
        Obs.with_span obs "journal_replay" (fun () ->
            Obs.observe_time obs Obs.K.journal_replay_latency (fun () ->
                replay plan.replay))
      with
      | Error e -> Error e
      | Ok () -> (
          match Journal.open_append ~path:(journal_path ~dir) () with
          | Error e -> Error e
          | Ok (journal, _) ->
              Journal.instrument journal obs;
              let writable = plan.cut = plan.tip in
              Ok { dir; journal; client; obs; writable }))

let require_writable t op =
  if not t.writable then
    failwith
      (Printf.sprintf
         "Store.%s: store attached read-only (historical --as-of replay)" op)

let verify_post t ~seq post =
  let got = Journal.graph_digest (t.client.graph ()) in
  if not (String.equal got post) then
    failwith
      (Printf.sprintf
         "Store: engine diverged from journal at batch %d: digest %s, \
          journaled %s"
         seq got post)

(* The journaled post digest is computed ahead of the engine apply on a
   scratch copy of the graph — write-ahead means the record must be
   durable (and complete) before the live state moves. *)
let journal_batch t ~kind ops =
  let g = t.client.graph () in
  let pre = Journal.graph_digest g in
  let scratch = Digraph.copy g in
  List.iter (Journal.apply_op scratch) ops;
  let post = Journal.graph_digest scratch in
  let b = Journal.append t.journal ~kind ~ops ~pre ~post in
  Obs.add t.obs Obs.K.journal_ops (List.length ops);
  b

let do_batch t updates =
  require_writable t "do_batch";
  Obs.with_span t.obs "journal_append" (fun () ->
      match Journal.effective_ops (t.client.graph ()) updates with
      | [] -> None
      | ops ->
          let b = journal_batch t ~kind:Record.Do ops in
          t.client.apply ops;
          verify_post t ~seq:b.Record.seq b.Record.post;
          Some b)

let undo t ~k =
  require_writable t "undo";
  Obs.with_span t.obs "journal_undo" @@ fun () ->
  Obs.observe_time t.obs Obs.K.journal_undo_latency (fun () ->
      match Journal.plan_undo (Journal.batches t.journal) ~k with
      | Error e -> Error e
      | Ok (ops, expected) ->
          let pre = Journal.graph_digest (t.client.graph ()) in
          let b =
            Journal.append t.journal ~kind:(Record.Undo k) ~ops ~pre
              ~post:expected
          in
          Obs.add t.obs Obs.K.journal_ops (List.length ops);
          Obs.incr t.obs Obs.K.journal_undone;
          t.client.apply ops;
          let got = Journal.graph_digest (t.client.graph ()) in
          if not (String.equal got expected) then
            Error
              (Printf.sprintf
                 "undo %d: rolled-back digest %s, journaled pre-state %s" k got
                 expected)
          else Ok b)

let snapshot t =
  require_writable t "snapshot";
  Obs.with_span t.obs "snapshot_write" @@ fun () ->
  Obs.observe_time t.obs Obs.K.snapshot_write_latency (fun () ->
      let snap =
        Snapshot.of_state ~seq:(Journal.tip t.journal)
          ~graph:(t.client.graph ())
          ~answer_digest:(t.client.answer_digest ())
          ~certs:(t.client.certs ())
      in
      Obs.incr t.obs Obs.K.snapshots;
      Snapshot.save ~dir:t.dir snap)

let append_unapplied_for_crash_testing t updates =
  require_writable t "append_unapplied_for_crash_testing";
  match Journal.effective_ops (t.client.graph ()) updates with
  | [] -> ()
  | ops -> ignore (journal_batch t ~kind:Record.Do ops)

let tip t = Journal.tip t.journal
let dir t = t.dir
let header t = Journal.header t.journal
let batches t = Journal.batches t.journal
let digest t = Journal.graph_digest (t.client.graph ())
let writable t = t.writable
let close t = Journal.close t.journal
