(** A journaled session directory: write-ahead journal + snapshots.

    Layout: [DIR/journal.igj] (the append-only {!Journal}) next to
    [DIR/snapshot-<seq>.json] files ({!Snapshot}); [snapshot-0] is written
    at {!init} and holds the base state, so recovery always has a floor.

    The store mediates every state change with write-ahead discipline:
    a requested update batch is normalized into effective ops against the
    live graph, journaled (with before/after digests) and flushed, and
    only then applied to the attached engine; the post-apply graph digest
    is verified against the journaled one. Undo appends a {e compensating}
    batch — the inverses of the last [k] batches' ops in reverse order —
    so the journal stays append-only and undo-of-undo is redo.

    Reattaching after a crash is a two-phase protocol, because only the
    caller knows how to build its engine:

    + {!plan} — read-only: pick the newest intact snapshot at or below
      the target sequence, list the journal batches beyond it, report any
      torn tail;
    + the caller rebuilds its engine over [plan.snapshot]'s graph;
    + {!attach} — repair the torn tail in place, replay the planned
      batches through the engine with per-batch digest verification, and
      open the journal for appending.

    [~as_of] plans recovery to a historical sequence number (time travel);
    such a store attaches read-only, since appending after a rewound
    replay would fork the committed history. *)

type client = {
  apply : Record.op list -> unit;
      (** apply effective ops to the engine (and its graph) *)
  graph : unit -> Ig_graph.Digraph.t;  (** the engine's live graph *)
  answer_digest : unit -> string;
      (** hex digest of the canonical current answer; [""] when the
          caller has none *)
  certs : unit -> (string * string) list;
      (** the engine's SNAPSHOTTABLE certificate dump *)
}

val graph_client : Ig_graph.Digraph.t -> client
(** An engine-free client over a bare graph: ops apply via
    {!Journal.apply_op} (this is what graph-only replay and the
    journal-throughput benchmark use). *)

type t

type plan = {
  header : Record.header;
  snapshot : Snapshot.t;  (** recovery starting point *)
  replay : Record.batch list;  (** batches to replay, seq order *)
  dropped : int;  (** torn-tail bytes that will be discarded *)
  tip : int;  (** last committed seq in the journal *)
  cut : int;  (** target seq after replay (= [tip] unless [~as_of]) *)
}

val journal_path : dir:string -> string

val init :
  ?obs:Ig_obs.Obs.t -> dir:string -> header:Record.header ->
  client:client -> unit -> t
(** Create [dir] (and parents) if needed, write [snapshot-0] from the
    client's current state and a fresh journal. The client must be at its
    base state. *)

val plan : ?as_of:int -> ?from_scratch:bool -> dir:string -> unit ->
  (plan, string) result
(** [from_scratch] forces the [snapshot-0] floor even when newer
    snapshots exist (full-replay recovery). Corrupt snapshots are skipped
    in favor of older ones. *)

val attach :
  ?obs:Ig_obs.Obs.t -> dir:string -> plan:plan -> client:client ->
  unit -> (t, string) result
(** The client's engine must be at [plan.snapshot]'s state; each replayed
    batch is verified against its journaled pre/post digests. *)

val do_batch : t -> Ig_graph.Digraph.update list -> Record.batch option
(** Normalize, journal, apply, verify. [None] when the batch was entirely
    ineffective (nothing journaled). @raise Failure on digest divergence
    between the journal and the engine, or on a read-only store. *)

val undo : t -> k:int -> (Record.batch, string) result
(** Roll back the last [k] batches with a compensating batch. The
    post-undo graph digest must equal, byte for byte, the journaled [pre]
    of the oldest undone batch. *)

val snapshot : t -> string
(** Write [snapshot-<tip>] from the client's current state; returns the
    path. @raise Failure on a read-only store. *)

val append_unapplied_for_crash_testing :
  t -> Ig_graph.Digraph.update list -> unit
(** Journal a batch {e without} applying it — simulates a crash between
    the write-ahead append and the engine apply. The store must be
    discarded afterwards; recovery replays the journaled batch. *)

val tip : t -> int
val dir : t -> string
val header : t -> Record.header
val batches : t -> Record.batch list
val digest : t -> string
(** Current graph digest of the attached client. *)

val writable : t -> bool
val close : t -> unit
