(** Certificate snapshots: checkpoints that bound recovery replay.

    A snapshot captures the full journaled state at a sequence number: the
    graph (canonical {!Ig_graph.Io} text), its digest, the canonical answer
    digest, and the engine's certificate store as serialized by its
    [cert_snapshot] (the SNAPSHOTTABLE capability) — the memoized
    intermediate results that make the computation incremental. Recovery
    starts from the newest intact snapshot at or below the target sequence
    and replays only the journal tail beyond it.

    Snapshots are JSON files ([snapshot-<seq>.json]) carrying an MD5
    checksum over their own canonical serialization; a snapshot that fails
    its checksum is skipped and recovery falls back to the next older one
    (ultimately [snapshot-0], written at init). Certificate sections are
    evidence for inspection and explainability — recovery correctness is
    carried by the graph/answer digests, since lazily maintained
    certificate stores (e.g. IncSCC's) are history-dependent. *)

type t = {
  seq : int;
  graph_text : string;  (** canonical {!Ig_graph.Io.write} text *)
  graph_digest : string;
  answer_digest : string;  (** hex MD5 of the canonical answer; "" if none *)
  certs : (string * string) list;  (** named engine certificate sections *)
}

val tool_name : string
(** ["incgraph-journal-snapshot"] — the dispatch key for validators. *)

val of_state :
  seq:int -> graph:Ig_graph.Digraph.t -> answer_digest:string ->
  certs:(string * string) list -> t

val graph : t -> Ig_graph.Digraph.t
(** Rebuild the graph from the stored text. *)

val to_json : t -> Ig_obs.Json.t
(** Includes the checksum field. *)

val validate : Ig_obs.Json.t -> (t, string) result
(** Structural + checksum validation (used by bench/validate.exe). *)

val path : dir:string -> seq:int -> string

val save : dir:string -> t -> string
(** Write [snapshot-<seq>.json]; returns the path. *)

val load : path:string -> (t, string) result

val list_seqs : dir:string -> int list
(** Sequence numbers of the snapshot files present, ascending. *)
