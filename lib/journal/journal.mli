(** The append-only delta journal.

    One file per journaled session: the {!Record.magic} bytes, a
    {!Record.header} record, then {!Record.batch} records with contiguous
    sequence numbers. Appends are flushed before the in-memory state
    advances (write-ahead), so after a crash the journal is the truth and
    the engine is rebuilt from it.

    {2 Crash-recovery contract}

    {!scan} never raises on a damaged file tail: decoding stops at the
    first record that is truncated, checksum-corrupt, or out of sequence,
    and everything from that offset on is reported as a {!tail} to be
    dropped ({!repair} truncates it in place). A file without a readable
    magic + header is unusable and reported as [Error] — there is no state
    to recover. Recovery therefore either replays a full prefix of
    committed batches or cleanly drops the torn suffix; it never applies
    half a batch.

    {2 Digests}

    Graph state is identified by {!graph_digest}: the hex MD5 of the
    canonical {!Ig_graph.Io.write} text (header line, nodes in id order,
    edges in lexicographic order). Batches record the digest before and
    after, so replay and undo are verified byte-for-byte, not merely
    set-equal. *)

type t
(** An open journal, positioned for appending. *)

type tail =
  | Clean
  | Torn of { offset : int; dropped : int; reason : string }
      (** [dropped] bytes starting at [offset] are not part of any
          committed record. *)

type scanned = {
  header : Record.header;
  batches : Record.batch list;  (** committed batches, in seq order *)
  tail : tail;
  valid_bytes : int;  (** prefix length covering magic + committed records *)
}

val graph_digest : Ig_graph.Digraph.t -> string
val digest_hex : string -> string

val scan : path:string -> (scanned, string) result
(** Read-only recovery scan; see the crash-recovery contract above. *)

val create : ?fsync:bool -> path:string -> Record.header -> t
(** Write magic + header to a fresh file (truncating any existing one).
    [fsync] (default [true]) makes every {!append} fsync the file, so
    committed records survive power loss, not just a process crash. *)

val open_append :
  ?fsync:bool -> path:string -> unit -> (t * scanned, string) result
(** Scan, truncate any torn tail in place, and open for appending after
    the last committed record. [fsync] as in {!create}. *)

val instrument : t -> Ig_obs.Obs.t -> unit
(** Attach a registry: every {!append} records [wal_append_latency_s]
    and [wal_fsync_latency_s] histograms and the [journal_bytes] gauge.
    Default is the noop sink. *)

val repair : path:string -> (int, string) result
(** Truncate a torn tail; returns the number of bytes dropped (0 when the
    file was already clean). *)

val chop : path:string -> int -> unit
(** Crash injection for tests and the [--chop] CLI flag: remove the last
    [n] bytes of the file, simulating a torn write. *)

val append : t -> kind:Record.kind -> ops:Record.op list -> pre:string ->
  post:string -> Record.batch
(** Frame and write the next batch (sequence number assigned here),
    flush it to the OS and — unless the journal was opened with
    [~fsync:false] — fsync it before returning. *)

val tip : t -> int
(** Sequence number of the last committed batch; 0 when none. *)

val batches : t -> Record.batch list
(** All committed batches, in seq order (including any appended since
    opening). *)

val header : t -> Record.header
val close : t -> unit

(** {2 Op semantics} *)

val effective_ops :
  Ig_graph.Digraph.t -> Ig_graph.Digraph.update list -> Record.op list
(** Normalize a requested update batch against the live graph into the
    effective atomic ops: duplicate inserts and absent deletes drop out,
    and within-batch dependencies are tracked (an insert followed by a
    delete of the same absent edge contributes both ops). Only effective
    ops are journaled — that is what makes batches invertible and replay
    idempotent. The graph is not modified. *)

val updates_of_ops : Record.op list -> Ig_graph.Digraph.update list
(** Edge ops as engine updates. @raise Invalid_argument on node ops,
    which cannot be routed through an engine's edge-update entry points. *)

val apply_op : Ig_graph.Digraph.t -> Record.op -> unit
(** Graph-level (engine-free) replay of one op; idempotent. Node upserts
    must arrive in id order ([Invalid_argument] on a gap); tombstoned
    nodes keep their id and lose their incident edges. *)

val invert : Record.op list -> (Record.op list, string) result
(** The compensating op list: inverses in reverse order. [Error] if any
    op is a monotone node op. *)

val plan_undo :
  Record.batch list -> k:int ->
  (Record.op list * string, string) result
(** [plan_undo batches ~k] is the compensating op list rolling back the
    last [k] batches of [batches] (seq order), together with the expected
    graph digest after the rollback (the [pre] of the oldest undone
    batch). [Error] when fewer than [k] batches exist or the range
    contains node upserts. *)
