module Digraph = Ig_graph.Digraph
module Io = Ig_graph.Io
module Obs = Ig_obs.Obs

type t = {
  path : string;
  hdr : Record.header;
  oc : out_channel;
  fsync : bool;
  mutable obs : Obs.t;
  mutable next_seq : int;
  mutable committed : Record.batch list; (* reverse seq order *)
}

type tail = Clean | Torn of { offset : int; dropped : int; reason : string }

type scanned = {
  header : Record.header;
  batches : Record.batch list;
  tail : tail;
  valid_bytes : int;
}

let digest_hex s = Digest.to_hex (Digest.string s)
let graph_digest g = digest_hex (Format.asprintf "%a" Io.write g)

let read_all path =
  In_channel.with_open_bin path In_channel.input_all

let scan ~path =
  match read_all path with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read %s: %s" path e)
  | src ->
      let len = String.length src in
      let mlen = String.length Record.magic in
      if len < mlen || not (String.equal (String.sub src 0 mlen) Record.magic)
      then Error (Printf.sprintf "%s: bad or missing journal magic" path)
      else begin
        match Record.read_record src ~pos:mlen with
        | Error _ -> Error (Printf.sprintf "%s: unreadable journal header" path)
        | Ok (Record.Batch _, _) ->
            Error (Printf.sprintf "%s: first record is not a header" path)
        | Ok (Record.Header h, pos0) ->
            if h.Record.version <> Record.format_version then
              Error
                (Printf.sprintf "%s: format version %d, expected %d" path
                   h.Record.version Record.format_version)
            else begin
              (* Committed prefix: contiguous batch records. The first bad
                 or out-of-sequence record ends the prefix; everything from
                 there is torn tail, dropped as a unit. *)
              let rec go pos seq acc =
                if pos = len then (List.rev acc, Clean, pos)
                else
                  let torn reason =
                    ( List.rev acc,
                      Torn { offset = pos; dropped = len - pos; reason },
                      pos )
                  in
                  match Record.read_record src ~pos with
                  | Error Record.Truncated -> torn "truncated record"
                  | Error (Record.Corrupt m) -> torn m
                  | Ok (Record.Header _, _) -> torn "unexpected second header"
                  | Ok (Record.Batch b, pos') ->
                      if b.Record.seq <> seq then
                        torn
                          (Printf.sprintf "sequence gap: found %d, expected %d"
                             b.Record.seq seq)
                      else go pos' (seq + 1) (b :: acc)
              in
              let batches, tail, valid_bytes = go pos0 1 [] in
              Ok { header = h; batches; tail; valid_bytes }
            end
      end

let write_prefix path src n =
  let oc = open_out_bin path in
  output_string oc (String.sub src 0 n);
  close_out oc

let repair ~path =
  match scan ~path with
  | Error e -> Error e
  | Ok { tail = Clean; _ } -> Ok 0
  | Ok { tail = Torn { dropped; _ }; valid_bytes; _ } ->
      write_prefix path (read_all path) valid_bytes;
      Ok dropped

let chop ~path n =
  let src = read_all path in
  write_prefix path src (max 0 (String.length src - n))

let create ?(fsync = true) ~path hdr =
  let oc = open_out_bin path in
  output_string oc Record.magic;
  output_string oc (Record.frame (Record.encode_payload (Record.Header hdr)));
  flush oc;
  { path; hdr; oc; fsync; obs = Obs.noop; next_seq = 1; committed = [] }

let open_append ?(fsync = true) ~path () =
  match scan ~path with
  | Error e -> Error e
  | Ok s ->
      (match s.tail with
      | Clean -> ()
      | Torn _ -> write_prefix path (read_all path) s.valid_bytes);
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
      in
      let tip =
        match List.rev s.batches with b :: _ -> b.Record.seq | [] -> 0
      in
      Ok
        ( {
            path;
            hdr = s.header;
            oc;
            fsync;
            obs = Obs.noop;
            next_seq = tip + 1;
            committed = List.rev s.batches;
          },
          s )

let instrument t obs = t.obs <- obs

(* Write-ahead append: frame, flush to the OS, then (by default) fsync so
   the record survives power loss, not just a process crash. The whole
   durable append lands in [wal_append_latency_s], the fsync alone in
   [wal_fsync_latency_s], and the resulting file size in the
   [journal_bytes] gauge. *)
let append t ~kind ~ops ~pre ~post =
  Obs.observe_time t.obs Obs.K.wal_append_latency @@ fun () ->
  let b = { Record.seq = t.next_seq; kind; ops; pre; post } in
  output_string t.oc (Record.frame (Record.encode_payload (Record.Batch b)));
  flush t.oc;
  if t.fsync then
    Obs.observe_time t.obs Obs.K.wal_fsync_latency (fun () ->
        Unix.fsync (Unix.descr_of_out_channel t.oc));
  if Obs.enabled t.obs then
    Obs.set_gauge t.obs Obs.K.journal_bytes (out_channel_length t.oc);
  t.next_seq <- t.next_seq + 1;
  t.committed <- b :: t.committed;
  b

let tip t = t.next_seq - 1
let batches t = List.rev t.committed
let header t = t.hdr
let close t = close_out t.oc

(* ---- op semantics -------------------------------------------------------- *)

(* Normalization consults the live graph through an overlay of the edges
   already touched earlier in the same batch, so within-batch dependencies
   (insert then delete of the same edge) resolve without copying the
   graph. *)
let effective_ops g updates =
  let overlay = Hashtbl.create 16 in
  let present u v =
    match Hashtbl.find_opt overlay (u, v) with
    | Some p -> p
    | None -> Digraph.mem_edge g u v
  in
  List.concat_map
    (fun u ->
      match u with
      | Digraph.Insert (a, b) ->
          if present a b then []
          else begin
            Hashtbl.replace overlay (a, b) true;
            [ Record.Upsert_edge (a, b) ]
          end
      | Digraph.Delete (a, b) ->
          if not (present a b) then []
          else begin
            Hashtbl.replace overlay (a, b) false;
            [ Record.Tombstone_edge (a, b) ]
          end)
    updates

let updates_of_ops ops =
  List.map
    (function
      | Record.Upsert_edge (u, v) -> Digraph.Insert (u, v)
      | Record.Tombstone_edge (u, v) -> Digraph.Delete (u, v)
      | (Record.Upsert_node _ | Record.Tombstone_node _) as op ->
          invalid_arg
            ("Journal.updates_of_ops: node op has no engine update: "
            ^ Record.op_to_string op))
    ops

let apply_op g = function
  | Record.Upsert_edge (u, v) -> ignore (Digraph.add_edge g u v)
  | Record.Tombstone_edge (u, v) -> ignore (Digraph.remove_edge g u v)
  | Record.Upsert_node (id, l) ->
      let n = Digraph.n_nodes g in
      if id < n then () (* already replayed *)
      else if id = n then ignore (Digraph.add_node g l)
      else
        invalid_arg
          (Printf.sprintf "Journal.apply_op: node id gap (%d, have %d)" id n)
  | Record.Tombstone_node id ->
      List.iter (fun w -> ignore (Digraph.remove_edge g id w))
        (Digraph.succ_list g id);
      List.iter (fun w -> ignore (Digraph.remove_edge g w id))
        (Digraph.pred_list g id)

let invert ops =
  let rec go acc = function
    | [] -> Ok acc
    | op :: rest -> (
        match Record.inverse_op op with
        | Some inv -> go (inv :: acc) rest
        | None ->
            Error
              ("node op is monotone and cannot be undone: "
              ^ Record.op_to_string op))
  in
  go [] ops

let plan_undo batches ~k =
  let n = List.length batches in
  if k <= 0 then Error "undo: k must be positive"
  else if k > n then
    Error (Printf.sprintf "undo: only %d batch(es) journaled, asked for %d" n k)
  else
    let undone = List.filteri (fun i _ -> i >= n - k) batches in
    let expected =
      match undone with b :: _ -> b.Record.pre | [] -> assert false
    in
    let rec build acc = function
      | [] -> Ok (acc, expected)
      | b :: rest -> (
          match invert b.Record.ops with
          | Error e ->
              Error (Printf.sprintf "batch %d: %s" b.Record.seq e)
          | Ok inv -> build (acc @ inv) rest)
    in
    build [] (List.rev undone)
