(** IncISO: localizable incremental subgraph isomorphism (paper Section 4
    and Appendix).

    - A deleted edge can only destroy matches whose image contains it: an
      edge→match index makes this a lookup.
    - An inserted edge [(v, w)] can only create matches lying entirely
      within the [d_Q]-neighborhood of [v] and [w] (every match is connected
      and touches the new edge, and [d_Q] is the pattern diameter). The
      batch algorithm (VF2) therefore reruns {e only} on
      [G_{d_Q}(ΔG⁺)], and only matches using at least one inserted edge are
      candidates for addition.

    Batch updates process all deletions, then one VF2 pass over the union
    neighborhood of all insertions (IncISO); the [grouped:false] variant
    reruns per unit insertion (IncISOn, the paper's ablation). Costs are a
    function of [|Q|] and the neighborhood size only, never |G| — the
    localizability claim of Theorem 3. *)

type node = Ig_graph.Digraph.node

type delta = {
  added : Vf2.mapping list;
  removed : Vf2.mapping list;
}

type stats = {
  mutable ball_nodes : int;  (** nodes in explored d_Q-neighborhoods *)
  mutable rematches : int;   (** VF2 invocations *)
}

type t

val init :
  ?grouped:bool ->
  ?obs:Ig_obs.Obs.t ->
  ?trace:Ig_obs.Tracer.t ->
  Ig_graph.Digraph.t ->
  Pattern.t ->
  t
(** Enumerate [Q(G)] once with VF2 and index it. The session owns the graph
    afterwards. [obs] (default {!Ig_obs.Obs.noop}) receives cost counters:
    [aff] (matches created or destroyed — the measured |AFF|),
    [cert_rewrites], [nodes_visited] (d_Q-neighborhood sizes), [rematches]
    (VF2 invocations), and [changed] = |ΔG| + |ΔO|. Each outermost
    {!apply_batch}/{!insert_edge}/{!delete_edge} call also records one
    sample into the [apply_latency_s] histogram (monotonic seconds) and
    the [gc_minor_words]/[gc_major_words]/[gc_promoted_words] histograms
    ([Gc.quick_stat] deltas). [trace] (default
    {!Ig_obs.Tracer.noop}) receives structured events: [Aff_enter] tagged
    [Iso_match_broken] (a match ran through a deleted edge) or
    [Iso_ball_rematch] (a fresh match from the localized VF2 run),
    [Cert_rewrite] on the [match] field (the mapping's image), and
    [Frontier_expand] per inserted-edge endpoint seeding the d_Q-ball.
    Events from the initial batch enumeration are discarded. *)

val graph : t -> Ig_graph.Digraph.t
val pattern : t -> Pattern.t

val obs : t -> Ig_obs.Obs.t
(** The metrics sink the session was created with. *)

val trace : t -> Ig_obs.Tracer.t
(** The event tracer the session was created with. *)

val add_node : t -> string -> node
(** A fresh node (matches only single-node patterns until edges arrive). *)

val insert_edge : t -> node -> node -> unit
val delete_edge : t -> node -> node -> unit
val apply_batch : t -> Ig_graph.Digraph.update list -> delta
val flush_delta : t -> delta

val matches : t -> Vf2.mapping list
val n_matches : t -> int

val stats : t -> stats
val reset_stats : t -> unit

val check_invariants : t -> unit
(** Test hook: the match set equals a fresh VF2 enumeration and the edge
    index is consistent. @raise Failure on violation. *)

val cert_snapshot : t -> (string * string) list
(** SNAPSHOTTABLE: every current match (canonical image plus
    pattern-indexed mapping) in {!Vf2.compare_canon} order, as named
    canonical-text sections (hash-seed independent), for durable
    certificate snapshots. *)
