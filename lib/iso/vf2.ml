module Digraph = Ig_graph.Digraph

type node = Digraph.node
type mapping = node array
type canon = node list * (node * node) list

let compare_edge (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let compare_canon (ns1, es1) (ns2, es2) =
  match List.compare Int.compare ns1 ns2 with
  | 0 -> List.compare compare_edge es1 es2
  | c -> c

let canon_of p m =
  let nodes = List.sort Int.compare (Array.to_list m) in
  let edges =
    List.sort compare_edge
      (List.map (fun (u, v) -> (m.(u), m.(v))) (Pattern.edges p))
  in
  (nodes, edges)

let iter_matches ?(allowed = fun _ -> true) g p f =
  let np = Pattern.n_nodes p in
  let order = Pattern.matching_order p in
  (* Pattern labels resolved against the graph's interner; a label unknown
     to the graph can never match. *)
  let sym_of = Array.make np (-1) in
  let ok = ref true in
  for u = 0 to np - 1 do
    match Ig_graph.Interner.find (Digraph.interner g) (Pattern.label p u) with
    | Some s -> sym_of.(u) <- s
    | None -> ok := false
  done;
  if !ok then begin
    let m = Array.make np (-1) in
    let pos = Array.make np (-1) in
    (* pos.(u) = index of pattern node u in the matching order *)
    Array.iteri (fun i u -> pos.(u) <- i) order;
    let used = Hashtbl.create 32 in
    (* Pattern edges incident to u whose other endpoint precedes u. *)
    let back_edges =
      Array.init np (fun i ->
          let u = order.(i) in
          let earlier v = pos.(v) < i in
          List.filter_map
            (fun v ->
              if v = u then Some `Self
              else if earlier v then Some (`Out v)
              else None)
            (Pattern.succ p u)
          @ List.filter_map
              (fun v ->
                (* self-loops are covered once by the successor side *)
                if v <> u && earlier v then Some (`In v) else None)
              (Pattern.pred p u))
    in
    let feasible u cand =
      Digraph.label g cand = sym_of.(u)
      && (not (Hashtbl.mem used cand))
      && allowed cand
      && Digraph.out_degree g cand >= List.length (Pattern.succ p u)
      && Digraph.in_degree g cand >= List.length (Pattern.pred p u)
      && List.for_all
           (function
             | `Self -> Digraph.mem_edge g cand cand
             | `Out v -> Digraph.mem_edge g cand m.(v)
             | `In v -> Digraph.mem_edge g m.(v) cand)
           back_edges.(pos.(u))
    in
    let rec step i =
      if i = np then f (Array.copy m)
      else begin
        let u = order.(i) in
        let try_candidate cand =
          if feasible u cand then begin
            m.(u) <- cand;
            Hashtbl.replace used cand ();
            step (i + 1);
            Hashtbl.remove used cand;
            m.(u) <- -1
          end
        in
        (* Candidates from the image adjacency of one matched neighbor,
           falling back to the label index for the first node. *)
        let anchor =
          List.find_opt (function `Self -> false | _ -> true) back_edges.(i)
        in
        (* Sorted adjacency: the match discovery order decides which
           mapping represents each canon and thus what traces record. *)
        match anchor with
        | Some (`Out v) -> Digraph.iter_pred_sorted try_candidate g m.(v)
        | Some (`In v) -> Digraph.iter_succ_sorted try_candidate g m.(v)
        | Some `Self | None ->
            List.iter try_candidate (Digraph.nodes_with_label g sym_of.(u))
      end
    in
    step 0
  end

let find_all ?allowed g p =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  iter_matches ?allowed g p (fun m ->
      let c = canon_of p m in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.replace seen c ();
        acc := m :: !acc
      end);
  !acc
