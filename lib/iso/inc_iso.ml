module Digraph = Ig_graph.Digraph
module Traverse = Ig_graph.Traverse
module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

type node = Digraph.node

type delta = { added : Vf2.mapping list; removed : Vf2.mapping list }

type stats = { mutable ball_nodes : int; mutable rematches : int }

type t = {
  g : Digraph.t;
  p : Pattern.t;
  obs : Obs.t;
  trace : Tracer.t;
  grouped : bool;
  dq : int;
  matches : (Vf2.canon, Vf2.mapping) Hashtbl.t;
  edge_index : (node * node, (Vf2.canon, unit) Hashtbl.t) Hashtbl.t;
  gained : (Vf2.canon, Vf2.mapping) Hashtbl.t;
  lost : (Vf2.canon, Vf2.mapping) Hashtbl.t;
  st : stats;
}

let graph t = t.g
let pattern t = t.p
let stats t = t.st
let obs t = t.obs
let trace t = t.trace

let reset_stats t =
  t.st.ball_nodes <- 0;
  t.st.rematches <- 0

let image_edges t m =
  List.map (fun (u, v) -> (m.(u), m.(v))) (Pattern.edges t.p)

let show_mapping m =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list m)) ^ "]"

let add_match t c m =
  if not (Hashtbl.mem t.matches c) then begin
    Hashtbl.replace t.matches c m;
    List.iter
      (fun e ->
        let set =
          match Hashtbl.find_opt t.edge_index e with
          | Some s -> s
          | None ->
              let s = Hashtbl.create 4 in
              Hashtbl.replace t.edge_index e s;
              s
        in
        Hashtbl.replace set c ())
      (image_edges t m);
    if Tracer.enabled t.trace then begin
      Tracer.aff_enter t.trace ~node:m.(0) ~rule:Tracer.Iso_ball_rematch;
      Tracer.cert_rewrite t.trace ~node:m.(0) ~field:"match" ~before:"absent"
        ~after:(show_mapping m)
    end;
    if Hashtbl.mem t.lost c then Hashtbl.remove t.lost c
    else Hashtbl.replace t.gained c m
  end

let remove_match t c =
  match Hashtbl.find_opt t.matches c with
  | None -> ()
  | Some m ->
      Hashtbl.remove t.matches c;
      List.iter
        (fun e ->
          match Hashtbl.find_opt t.edge_index e with
          | Some s ->
              Hashtbl.remove s c;
              if Hashtbl.length s = 0 then Hashtbl.remove t.edge_index e
          | None -> ())
        (image_edges t m);
      if Hashtbl.mem t.gained c then Hashtbl.remove t.gained c
      else Hashtbl.replace t.lost c m

let flush_delta t =
  (* Canon order: the delta lists are consumer-visible. *)
  let added =
    List.map snd (Obs.sorted_bindings ~compare:Vf2.compare_canon t.gained)
  in
  let removed =
    List.map snd (Obs.sorted_bindings ~compare:Vf2.compare_canon t.lost)
  in
  Obs.note_changed_output t.obs (List.length added + List.length removed);
  Hashtbl.reset t.gained;
  Hashtbl.reset t.lost;
  { added; removed }

let process_delete t e =
  match Hashtbl.find_opt t.edge_index e with
  | None -> ()
  | Some set ->
      (* Sorted: the removal order reaches the trace. *)
      let cs =
        List.map fst (Obs.sorted_bindings ~compare:Vf2.compare_canon set)
      in
      let n = List.length cs in
      Obs.add t.obs Obs.K.aff n;
      Obs.add t.obs Obs.K.cert_rewrites n;
      List.iter
        (fun c ->
          (if Tracer.enabled t.trace then
             match Hashtbl.find_opt t.matches c with
             | Some m ->
                 Tracer.aff_enter t.trace ~node:m.(0)
                   ~rule:Tracer.Iso_match_broken;
                 Tracer.cert_rewrite t.trace ~node:m.(0) ~field:"match"
                   ~before:(show_mapping m) ~after:"removed"
             | None -> ());
          remove_match t c)
        cs

(* Localized re-match: VF2 confined to the d_Q-neighborhood of the inserted
   edges' endpoints (paper steps (2)-(3)). *)
let process_inserts t endpoints =
  if endpoints <> [] && Pattern.n_edges t.p > 0 then begin
    let ball = Traverse.ball t.g endpoints ~d:t.dq in
    t.st.ball_nodes <- t.st.ball_nodes + Hashtbl.length ball;
    t.st.rematches <- t.st.rematches + 1;
    Obs.add t.obs Obs.K.nodes_visited (Hashtbl.length ball);
    Obs.incr t.obs "rematches";
    if Tracer.enabled t.trace then
      List.iter (fun v -> Tracer.frontier_expand t.trace ~node:v) endpoints;
    let before = Hashtbl.length t.matches in
    Vf2.iter_matches ~allowed:(fun v -> Hashtbl.mem ball v) t.g t.p (fun m ->
        let c = Vf2.canon_of t.p m in
        add_match t c m);
    let fresh = Hashtbl.length t.matches - before in
    Obs.add t.obs Obs.K.aff fresh;
    Obs.add t.obs Obs.K.cert_rewrites fresh
  end

let insert_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.add_edge t.g u v then begin
    Obs.note_changed_input t.obs 1;
    process_inserts t [ u; v ]
  end

let delete_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.remove_edge t.g u v then begin
    Obs.note_changed_input t.obs 1;
    process_delete t (u, v)
  end

let apply_batch t updates =
  Obs.with_apply t.obs @@ fun () ->
  (* Deletions first (paper step (1)), then insertions. *)
  Obs.with_span t.obs "iso.process" (fun () ->
      Tracer.with_span t.trace "iso.process" (fun () ->
      let inserted = ref [] in
      List.iter
        (fun up ->
          match up with
          | Digraph.Delete (u, v) ->
              if Digraph.remove_edge t.g u v then begin
                Obs.note_changed_input t.obs 1;
                process_delete t (u, v)
              end
          | Digraph.Insert _ -> ())
        updates;
      List.iter
        (fun up ->
          match up with
          | Digraph.Insert (u, v) ->
              if Digraph.add_edge t.g u v then begin
                Obs.note_changed_input t.obs 1;
                if t.grouped then inserted := u :: v :: !inserted
                else process_inserts t [ u; v ]
              end
          | Digraph.Delete _ -> ())
        updates;
      if t.grouped then process_inserts t !inserted));
  flush_delta t

let add_node t label =
  let v = Digraph.add_node t.g label in
  if Pattern.n_nodes t.p = 1 && Pattern.label t.p 0 = label then begin
    if Pattern.n_edges t.p = 0 then
      add_match t (Vf2.canon_of t.p [| v |]) [| v |]
    (* A single node with a self-loop pattern needs the loop edge, which
       does not exist yet. *)
  end;
  v

let init ?(grouped = true) ?(obs = Obs.noop) ?(trace = Tracer.noop) g p =
  Digraph.instrument ~obs ~trace g;
  let t =
    {
      g;
      p;
      obs;
      trace;
      grouped;
      dq = Pattern.diameter p;
      matches = Hashtbl.create 256;
      edge_index = Hashtbl.create 256;
      gained = Hashtbl.create 64;
      lost = Hashtbl.create 64;
      st = { ball_nodes = 0; rematches = 0 };
    }
  in
  List.iter
    (fun m -> add_match t (Vf2.canon_of p m) m)
    (Vf2.find_all g p);
  Hashtbl.reset t.gained;
  (* The initial batch match is not an update: its events (one Aff_enter
     per pre-existing match) are not provenance, so drop them. *)
  Tracer.clear t.trace;
  t

(* Canon order: user-visible. *)
let matches t =
  List.map snd (Obs.sorted_bindings ~compare:Vf2.compare_canon t.matches)

let n_matches t = Hashtbl.length t.matches

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let fresh = Vf2.find_all t.g t.p in
  if List.length fresh <> Hashtbl.length t.matches then
    fail "%d matches, expected %d" (Hashtbl.length t.matches)
      (List.length fresh);
  List.iter
    (fun m ->
      let c = Vf2.canon_of t.p m in
      if not (Hashtbl.mem t.matches c) then fail "match missing")
    fresh;
  (* Index consistency. Order-free: each check is independent. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun _ m ->
      List.iter
        (fun e ->
          match Hashtbl.find_opt t.edge_index e with
          | Some s when Hashtbl.mem s (Vf2.canon_of t.p m) -> ()
          | _ -> fail "edge index missing an entry")
        (image_edges t m))
    t.matches;
  (Hashtbl.iter [@lint.allow "D2"])
    (fun e s ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun c () ->
          if not (Hashtbl.mem t.matches c) then
            fail "edge index references dead match";
          ignore e)
        s)
    t.edge_index

(* Canonical text dump of the match store: one line per match, canonical
   image first, then the pattern-indexed mapping. Sorted by Vf2's canon
   order so the bytes are hash-seed independent. *)
let cert_snapshot t =
  let buf = Buffer.create 256 in
  List.iter
    (fun ((ns, es), mapping) ->
      Buffer.add_string buf "nodes";
      List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) ns;
      Buffer.add_string buf " edges";
      List.iter
        (fun (u, v) -> Buffer.add_string buf (Printf.sprintf " %d-%d" u v))
        es;
      Buffer.add_string buf " map";
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v))
        mapping;
      Buffer.add_char buf '\n')
    (Obs.sorted_bindings ~compare:Vf2.compare_canon t.matches);
  [
    ("matches", Buffer.contents buf);
    ("count", Printf.sprintf "%d\n" (Hashtbl.length t.matches));
  ]
