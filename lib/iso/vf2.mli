(** VF2-style subgraph isomorphism enumeration (Cordella et al. [15]) —
    the batch baseline the paper compares IncISO against.

    A match of pattern [Q] in [G] is a subgraph [Gs ⊆ G] isomorphic to [Q];
    since [Gs] carries exactly the image edges, this is classical subgraph
    {e monomorphism}: an injective, label-preserving [h : V_Q → V] with
    [(u,u') ∈ E_Q ⟹ (h(u), h(u')) ∈ E]. Mappings that induce the same image
    subgraph (pattern automorphisms) count as one match, matching the
    paper's definition of [Q(G)] as a set of subgraphs.

    The search follows the VF2 recipe: a connectivity-respecting matching
    order, candidates generated from the image adjacency of an already
    matched pattern neighbor, and label/degree feasibility pruning. *)

type node = Ig_graph.Digraph.node

type mapping = node array
(** [mapping.(u)] is the graph node the pattern node [u] maps to. *)

type canon = node list * (node * node) list
(** Canonical form of a match subgraph: sorted image nodes and sorted image
    edges. Two mappings are the same match iff their canons are equal. *)

val canon_of : Pattern.t -> mapping -> canon

val compare_canon : canon -> canon -> int
(** Total order on canons (lexicographic, [Int.compare]-based); the
    sanctioned comparator for producing sorted match lists. *)

val iter_matches :
  ?allowed:(node -> bool) ->
  Ig_graph.Digraph.t ->
  Pattern.t ->
  (mapping -> unit) ->
  unit
(** Enumerate mappings (one callback per {e mapping}; callers dedupe by
    {!canon_of} when they need subgraph semantics). [allowed] restricts the
    image to a node subset — IncISO uses it to confine the search to the
    [d_Q]-neighborhood of the updated edges without copying the graph. *)

val find_all :
  ?allowed:(node -> bool) ->
  Ig_graph.Digraph.t ->
  Pattern.t ->
  mapping list
(** All distinct matches (one representative mapping per canon). *)
