(** Synthetic labeled-graph generators (paper Section 6, "Graphs").

    The paper's generator is "controlled by the number of nodes |V| and
    number of edges |E|, with labels drawn from an alphabet Σ of 100
    symbols"; we provide that (uniform) plus a preferential-attachment
    variant for the skewed-degree social-network profile, and a planted
    giant strongly connected core mimicking LiveJournal's (where the
    largest SCC covers ~77% of the graph, the property Exp-1(3) calls out).

    All generators are deterministic in the given [Random.State], and in
    particular produce the identical graph whichever {!Ig_graph.Digraph}
    [backend] they build on (default [`Hashtbl]): edge-membership answers
    agree across backends, so the RNG draw sequence does too. *)

val uniform :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> nodes:int -> edges:int -> labels:int -> unit ->
  Ig_graph.Digraph.t
(** Uniform random simple digraph; labels [l0 … l{labels-1}] assigned
    uniformly. Self-loops excluded; requested edge count is met exactly
    unless the graph saturates. *)

val dag :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> nodes:int -> edges:int -> labels:int -> unit ->
  Ig_graph.Digraph.t
(** Like {!uniform} but every edge is oriented from the smaller to the
    larger node id, yielding a DAG — the skeleton of hierarchy-shaped
    graphs like DBpedia, whose strongly connected components are small. *)

val preferential :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> nodes:int -> edges:int -> labels:int -> unit ->
  Ig_graph.Digraph.t
(** Preferential attachment: edge endpoints are drawn from a pool that
    repeats nodes once per incident edge, yielding a heavy-tailed degree
    distribution. *)

val plant_scc :
  ?chord_ratio:float ->
  rng:Random.State.t -> Ig_graph.Digraph.t -> fraction:float -> unit
(** Add a directed cycle through a random sample of [fraction · |V|] nodes,
    forcing them into one strongly connected component, plus
    [chord_ratio · cycle length] random chords inside the sample (default
    0.5) so the component does not shatter on a single deletion. *)

val hierarchy :
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> nodes:int -> edges:int -> labels:int ->
  hub_fraction:float -> unit -> Ig_graph.Digraph.t
(** Knowledge-graph shape: a [hub_fraction] slice of high-id nodes act as
    category/type hubs; ~90% of edges point from a uniform node to a hub
    above it and ~10% are short forward entity-to-entity links. The result
    is a DAG whose transitive closures are shallow (a few hops into a small
    hub set) — the property that keeps IncSCC's affected rank regions and
    IncISO/IncKWS neighborhoods small on real DBpedia. *)

val plant_local_sccs :
  rng:Random.State.t -> Ig_graph.Digraph.t -> count:int -> size:int -> unit
(** Plant [count] strongly connected components, each a chorded cycle over a
    {e contiguous} id block of [size] nodes, so the components stay local
    instead of swallowing long-range paths. *)
