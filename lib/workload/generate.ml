module Digraph = Ig_graph.Digraph

let add_labeled_nodes rng g ~nodes ~labels =
  for _ = 1 to nodes do
    ignore (Digraph.add_node g ("l" ^ string_of_int (Random.State.int rng labels)))
  done

let fill_edges g ~edges ~pick =
  let n = Digraph.n_nodes g in
  let max_edges = n * (n - 1) in
  let target = min edges max_edges in
  let placed = ref 0 in
  let attempts = ref 0 in
  let limit = 20 * target in
  while !placed < target && !attempts < limit do
    incr attempts;
    let u = pick () and v = pick () in
    if u <> v && Digraph.add_edge g u v then incr placed
  done;
  (* Dense corner: finish deterministically if sampling struggled. *)
  if !placed < target then begin
    let u = ref 0 and v = ref 0 in
    while !placed < target && !u < n do
      if !u <> !v && Digraph.add_edge g !u !v then incr placed;
      incr v;
      if !v >= n then begin
        v := 0;
        incr u
      end
    done
  end

let uniform ?backend ~rng ~nodes ~edges ~labels () =
  if nodes <= 0 then invalid_arg "Generate.uniform: nodes must be positive";
  let g = Digraph.create ~hint:nodes ?backend () in
  add_labeled_nodes rng g ~nodes ~labels;
  if nodes > 1 then
    fill_edges g ~edges ~pick:(fun () -> Random.State.int rng nodes);
  g

let dag ?backend ~rng ~nodes ~edges ~labels () =
  if nodes <= 0 then invalid_arg "Generate.dag: nodes must be positive";
  let g = Digraph.create ~hint:nodes ?backend () in
  add_labeled_nodes rng g ~nodes ~labels;
  if nodes > 1 then begin
    let n = nodes in
    let target = min edges (n * (n - 1) / 2) in
    let placed = ref 0 and attempts = ref 0 in
    let limit = 20 * max 1 target in
    while !placed < target && !attempts < limit do
      incr attempts;
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v && Digraph.add_edge g (min u v) (max u v) then incr placed
    done
  end;
  g

let preferential ?backend ~rng ~nodes ~edges ~labels () =
  if nodes <= 0 then invalid_arg "Generate.preferential: nodes must be positive";
  let g = Digraph.create ~hint:nodes ?backend () in
  add_labeled_nodes rng g ~nodes ~labels;
  if nodes > 1 then begin
    (* Endpoint pool: every node once, plus one entry per edge endpoint. *)
    let pool = Ig_graph.Vec.create () in
    for v = 0 to nodes - 1 do
      ignore (Ig_graph.Vec.push pool v)
    done;
    (* Every node is seeded once in the pool, so drawing from the pool both
       covers the whole graph and concentrates on high-degree nodes. *)
    let pick () =
      Ig_graph.Vec.get pool (Random.State.int rng (Ig_graph.Vec.length pool))
    in
    let n = nodes in
    let max_edges = n * (n - 1) in
    let target = min edges max_edges in
    let placed = ref 0 in
    let attempts = ref 0 in
    let limit = 20 * target in
    while !placed < target && !attempts < limit do
      incr attempts;
      let u = pick () and v = pick () in
      if u <> v && Digraph.add_edge g u v then begin
        incr placed;
        ignore (Ig_graph.Vec.push pool u);
        ignore (Ig_graph.Vec.push pool v)
      end
    done
  end;
  g

let plant_scc ?(chord_ratio = 0.5) ~rng g ~fraction =
  let n = Digraph.n_nodes g in
  let k = int_of_float (fraction *. float_of_int n) in
  if k >= 2 then begin
    (* Random sample without replacement via partial Fisher–Yates. *)
    let arr = Array.init n Fun.id in
    for i = 0 to k - 1 do
      let j = i + Random.State.int rng (n - i) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    for i = 0 to k - 1 do
      ignore (Digraph.add_edge g arr.(i) arr.((i + 1) mod k))
    done;
    let chords = int_of_float (chord_ratio *. float_of_int k) in
    for _ = 1 to chords do
      let i = Random.State.int rng k and j = Random.State.int rng k in
      if i <> j then ignore (Digraph.add_edge g arr.(i) arr.(j))
    done
  end

let hierarchy ?backend ~rng ~nodes ~edges ~labels ~hub_fraction () =
  if nodes <= 1 then invalid_arg "Generate.hierarchy: nodes must be > 1";
  let g = Digraph.create ~hint:nodes ?backend () in
  add_labeled_nodes rng g ~nodes ~labels;
  let hub_lo =
    max 1 (nodes - int_of_float (hub_fraction *. float_of_int nodes))
  in
  let placed = ref 0 and attempts = ref 0 in
  let limit = 30 * max 1 edges in
  while !placed < edges && !attempts < limit do
    incr attempts;
    let u = Random.State.int rng nodes in
    let v =
      if Random.State.int rng 10 < 4 then
        (* Short forward entity link: keeps 2-hop neighborhoods modest. *)
        u + 1 + Random.State.int rng 16
      else begin
        (* A hub strictly above u. *)
        let lo = max (u + 1) hub_lo in
        if lo >= nodes then nodes (* forces a retry *)
        else lo + Random.State.int rng (nodes - lo)
      end
    in
    if v < nodes && Digraph.add_edge g u v then incr placed
  done;
  g

let plant_local_sccs ~rng g ~count ~size =
  let n = Digraph.n_nodes g in
  if size >= 2 && n > size then
    for _ = 1 to count do
      let s = Random.State.int rng (n - size) in
      for i = 0 to size - 1 do
        ignore (Digraph.add_edge g (s + i) (s + ((i + 1) mod size)))
      done;
      (* A couple of chords so one deletion does not shatter it. *)
      for _ = 1 to size / 2 do
        let i = Random.State.int rng size and j = Random.State.int rng size in
        if i <> j then ignore (Digraph.add_edge g (s + i) (s + j))
      done
    done
