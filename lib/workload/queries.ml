module Digraph = Ig_graph.Digraph
module Regex = Ig_nfa.Regex

let random_node_label rng g =
  Digraph.label_name g (Random.State.int rng (Digraph.n_nodes g))

let kws ~rng g ~m ~b =
  if Digraph.n_nodes g = 0 then invalid_arg "Queries.kws: empty graph";
  {
    Ig_kws.Batch.keywords = List.init m (fun _ -> random_node_label rng g);
    bound = b;
  }

let rpq ~rng g ~size =
  if Digraph.n_nodes g = 0 then invalid_arg "Queries.rpq: empty graph";
  if size < 1 then invalid_arg "Queries.rpq: size must be >= 1";
  (* Labels are read off a directed random walk so concatenations are
     satisfiable — queries with empty answers make incremental-vs-batch
     comparisons vacuous. Stars and unions are sprinkled on top. *)
  let walk_labels () =
    let n = Digraph.n_nodes g in
    let labels = ref [] and v = ref (Random.State.int rng n) in
    labels := Digraph.label_name g !v :: !labels;
    while List.length !labels < size do
      let succs = Digraph.succ_list g !v in
      match succs with
      | [] ->
          (* Stuck: restart the walk somewhere else. *)
          v := Random.State.int rng n;
          labels := Digraph.label_name g !v :: !labels
      | ss ->
          v := List.nth ss (Random.State.int rng (List.length ss));
          labels := Digraph.label_name g !v :: !labels
    done;
    List.rev !labels
  in
  match walk_labels () with
  | [] -> assert false
  | first :: rest ->
      let decorate a =
        if Random.State.int rng 4 = 0 then Regex.Star a else a
      in
      (* Unions absorb two consecutive walk labels so |Q| stays exact. *)
      let rec build acc = function
        | [] -> acc
        | l1 :: l2 :: tl when Random.State.int rng 5 = 0 ->
            build
              (Regex.Concat
                 (acc, decorate (Regex.Alt (Regex.Label l1, Regex.Label l2))))
              tl
        | l :: tl -> build (Regex.Concat (acc, decorate (Regex.Label l))) tl
      in
      build (Regex.Label first) rest

(* Sample [n] nodes forming a weakly connected subgraph by an undirected
   random expansion from a random seed. *)
let sample_connected_nodes rng g n =
  let total = Digraph.n_nodes g in
  let seed = Random.State.int rng total in
  let chosen = Hashtbl.create 16 in
  let frontier = ref [ seed ] in
  Hashtbl.replace chosen seed ();
  while Hashtbl.length chosen < n && !frontier <> [] do
    (* Pick a random frontier node and a random unvisited neighbor. *)
    let idx = Random.State.int rng (List.length !frontier) in
    let v = List.nth !frontier idx in
    let candidates = ref [] in
    let consider w =
      if not (Hashtbl.mem chosen w) then candidates := w :: !candidates
    in
    (* Sorted: the candidate order feeds a seeded random pick, which must
       be reproducible across hash seeds. *)
    Digraph.iter_succ_sorted consider g v;
    Digraph.iter_pred_sorted consider g v;
    match !candidates with
    | [] -> frontier := List.filteri (fun i _ -> i <> idx) !frontier
    | cs ->
        let w = List.nth cs (Random.State.int rng (List.length cs)) in
        Hashtbl.replace chosen w ();
        frontier := w :: !frontier
  done;
  if Hashtbl.length chosen = n then
    Some
      (List.sort Int.compare
         ((Hashtbl.fold [@lint.allow "D2"]) (fun v () acc -> v :: acc) chosen []))
  else None

let iso ~rng g ~nodes ~edges =
  if Digraph.n_nodes g = 0 then None
  else begin
    let attempt () =
      match sample_connected_nodes rng g nodes with
      | None -> None
      | Some vs ->
          let index = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.replace index v i) vs;
          let induced = ref [] in
          List.iteri
            (fun i v ->
              (* Sorted: the induced-edge order shapes the sampled pattern. *)
              Digraph.iter_succ_sorted
                (fun w ->
                  match Hashtbl.find_opt index w with
                  | Some j -> induced := (i, j) :: !induced
                  | None -> ())
                g v)
            vs;
          (* Keep a spanning structure, then top up to [edges]. *)
          let keep = Hashtbl.create 16 in
          let linked = Array.make nodes false in
          let adj = Array.make nodes [] in
          List.iter
            (fun (i, j) ->
              adj.(i) <- (i, j) :: adj.(i);
              adj.(j) <- (i, j) :: adj.(j))
            !induced;
          let rec connect i =
            (* BFS tree over the undirected view. *)
            linked.(i) <- true;
            List.iter
              (fun (a, b) ->
                let other = if a = i then b else a in
                if not linked.(other) then begin
                  Hashtbl.replace keep (a, b) ();
                  connect other
                end)
              adj.(i)
          in
          connect 0;
          if Array.exists not linked then None
          else begin
            let extras =
              List.filter (fun e -> not (Hashtbl.mem keep e)) !induced
            in
            let extras = Array.of_list extras in
            for i = Array.length extras - 1 downto 1 do
              let j = Random.State.int rng (i + 1) in
              let tmp = extras.(i) in
              extras.(i) <- extras.(j);
              extras.(j) <- tmp
            done;
            let want = max 0 (edges - Hashtbl.length keep) in
            Array.iteri
              (fun i e -> if i < want then Hashtbl.replace keep e ())
              extras;
            let labels = List.map (fun v -> Digraph.label_name g v) vs in
            Some
              (Ig_iso.Pattern.create ~labels
                 ~edges:
                   (List.sort
                      (fun (a1, b1) (a2, b2) ->
                        match Int.compare a1 a2 with
                        | 0 -> Int.compare b1 b2
                        | c -> c)
                      ((Hashtbl.fold [@lint.allow "D2"])
                         (fun e () acc -> e :: acc)
                         keep [])))
          end
    in
    let rec try_n k = if k = 0 then None else
      match attempt () with Some p -> Some p | None -> try_n (k - 1)
    in
    try_n 50
  end
