(** Dataset profiles standing in for the paper's evaluation graphs.

    The originals (DBpedia [1], LiveJournal [3]) are not available offline,
    so each profile reproduces the statistics the four algorithms are
    sensitive to — node/edge ratio, label-alphabet size, degree skew, and
    (for LiveJournal) the giant strongly connected component — at a
    configurable scale. [scale = 1.0] is the default bench size; the shapes
    of the experiments, not absolute times, are the reproduction target
    (see DESIGN.md, "Substitutions"). *)

type shape =
  | Uniform                              (** the paper's synthetic family *)
  | Dag                                  (** uniform forward-oriented edges *)
  | Hierarchy of float                   (** hub-heavy DAG; hub fraction *)
  | Skewed                               (** preferential attachment *)

type spec = {
  name : string;
  base_nodes : int;
  edge_ratio : float;     (** edges per node *)
  labels : int;
  shape : shape;
  giant_scc : float;      (** fraction of nodes forced strongly connected *)
  local_sccs : int * int; (** (count per 10k nodes, component size) *)
}

val dbpedia_like : spec
(** 4.3M/40.3M/495 labels in the paper; ratio ≈ 9.4. DBpedia is a knowledge
    hierarchy: shallow transitive closures into a small hub set, and small
    strongly connected components (planted locally). *)

val livej_like : spec
(** 4.9M/68.5M/100 labels; ratio ≈ 14, skewed, giant SCC ≈ 0.75. *)

val synthetic : spec
(** The paper's synthetic family: |E| = 2|V|, 100 labels, uniform. *)

val instantiate :
  ?scale:float ->
  ?backend:Ig_graph.Digraph.backend ->
  rng:Random.State.t -> spec -> Ig_graph.Digraph.t
(** Generate a graph for the profile at the given scale factor, on the
    given {!Ig_graph.Digraph} backend (default [`Hashtbl]; the graph is
    identical either way). *)
