type shape = Uniform | Dag | Hierarchy of float | Skewed

type spec = {
  name : string;
  base_nodes : int;
  edge_ratio : float;
  labels : int;
  shape : shape;
  giant_scc : float;
  local_sccs : int * int;
}

let dbpedia_like =
  {
    name = "dbpedia";
    base_nodes = 20_000;
    edge_ratio = 9.4;
    labels = 495;
    shape = Dag;
    giant_scc = 0.0;
    local_sccs = (25, 12);
  }

let livej_like =
  {
    name = "livej";
    base_nodes = 20_000;
    edge_ratio = 14.0;
    labels = 100;
    shape = Skewed;
    giant_scc = 0.75;
    local_sccs = (0, 0);
  }

let synthetic =
  {
    name = "synthetic";
    base_nodes = 50_000;
    edge_ratio = 2.0;
    labels = 100;
    (* The paper's generator is "controlled by |V| and |E|" and otherwise
       unspecified. A uniform digraph at |E| = 2|V| sits exactly at the
       strong-connectivity percolation edge, where the component structure
       is maximally volatile under updates — an adversarial regime no real
       dataset in the paper exhibits. We use the forward-oriented shape
       with a planted 30% component instead (see DESIGN.md). *)
    shape = Dag;
    giant_scc = 0.3;
    local_sccs = (10, 10);
  }

let instantiate ?(scale = 1.0) ?backend ~rng spec =
  let nodes = max 2 (int_of_float (float_of_int spec.base_nodes *. scale)) in
  let edges = int_of_float (float_of_int nodes *. spec.edge_ratio) in
  (* The label alphabet scales with the graph so per-label density — what
     drives query selectivity in all four classes — is preserved. *)
  let spec =
    { spec with
      labels = max 20 (int_of_float (float_of_int spec.labels *. scale)) }
  in
  let g =
    match spec.shape with
    | Uniform -> Generate.uniform ?backend ~rng ~nodes ~edges ~labels:spec.labels ()
    | Dag -> Generate.dag ?backend ~rng ~nodes ~edges ~labels:spec.labels ()
    | Skewed ->
        Generate.preferential ?backend ~rng ~nodes ~edges ~labels:spec.labels ()
    | Hierarchy hub_fraction ->
        Generate.hierarchy ?backend ~rng ~nodes ~edges ~labels:spec.labels
          ~hub_fraction ()
  in
  (if spec.giant_scc > 0.0 then
     match spec.shape with
     | Dag | Hierarchy _ ->
         (* Hierarchy-shaped graphs get a contiguous core: long-range cycle
            edges through a DAG would recruit every spanned path into the
            component and make its rank window graph-wide. *)
         let nodes = Ig_graph.Digraph.n_nodes g in
         Generate.plant_local_sccs ~rng g ~count:1
           ~size:(int_of_float (spec.giant_scc *. float_of_int nodes))
     | Uniform | Skewed -> Generate.plant_scc ~rng g ~fraction:spec.giant_scc);
  (let per_10k, size = spec.local_sccs in
   let count = per_10k * nodes / 10_000 in
   if count > 0 && size >= 2 then Generate.plant_local_sccs ~rng g ~count ~size);
  g
