(** Incremental strongly connected components (paper Section 5.3).

    Incrementalizes Tarjan's algorithm relative to its inspected data: the
    [num]/[lowlink] certificates, plus a contracted graph [Gc] whose nodes
    are components, whose edges carry multiplicity counters, and whose nodes
    hold topological ranks satisfying [r(a) > r(b)] for every edge [(a,b)]
    (the invariant of [43] the paper capitalizes on).

    - {b Insertion} ([IncSCC+], paper Fig. 7): an intra-component edge never
      changes the output; an inter-component edge with consistent ranks only
      bumps a counter; otherwise the affected area — the rank-windowed
      forward closure from [scc(w)] and backward closure from [scc(v)] — is
      searched, Tarjan runs on that region of [Gc], cycles are merged, and
      ranks are reallocated Pearce–Kelly style among the region's existing
      labels.
    - {b Deletion} ([IncSCC−]): an inter-component edge only decrements a
      counter. For an intra-component edge, the recorded Tarjan run remains
      a verbatim certificate whenever the edge is neither a DFS tree arc nor
      any node's lowlink witness — an O(1) fast path; otherwise Tarjan runs
      locally on the component's induced subgraph, splitting it when
      strong connectivity broke and threading fresh ranks into the retired
      component's slot.
    - {b Batch} ([IncSCC]): intra-component updates are grouped so local
      Tarjan runs at most once per affected component; inter-component
      deletions are applied before insertions; insertions restore the rank
      invariant one at a time.

    An intra-component insertion dirties nothing in lazy mode: the recorded
    certificate is a valid run over the edges present when it was computed,
    which already prove the component strongly connected, so both later
    deletion fast-path checks and the deletion of the new edge itself stay
    sound against it.

    The same engine, differently configured, yields the paper's three
    comparison subjects: [IncSCC] (lazy certificates + fast path + batch
    grouping), [IncSCCn] (unit updates one by one), and the [DynSCC]
    stand-in (no deletion fast path: every intra-component deletion pays a
    local recomputation to keep its structures fresh even when the output is
    stable, reproducing the paper's observation in Exp-1(3)). *)

type node = Ig_graph.Digraph.node

type config = {
  eager_cert : bool;
      (** refresh a component's certificate immediately after an
          intra-component insertion or merge, instead of lazily marking it
          dirty *)
  delete_fast_path : bool;
      (** enable the O(1) non-witness deletion path *)
  group_batch : bool;
      (** group intra-component updates per component in {!apply_batch} *)
}

val inc_config : config
(** IncSCC: lazy certificates, fast path, batch grouping. *)

val incn_config : config
(** IncSCCn: like IncSCC but batches degrade to one-by-one processing. *)

val dyn_config : config
(** DynSCC stand-in: no deletion fast path, one-by-one. *)

type delta = {
  removed : node list list;  (** components that ceased to exist *)
  added : node list list;    (** components that came into existence *)
}
(** ΔO for SCC: [SCC(G ⊕ ΔG) = (SCC(G) ∖ removed) ∪ added]. *)

type stats = {
  mutable cert_nodes : int;
      (** nodes whose certificate was recomputed — the [num]/[lowlink]
          part of AFF *)
  mutable rank_moves : int;
      (** contracted-graph nodes whose rank changed — also in AFF *)
  mutable fast_deletes : int;
      (** intra-component deletions resolved by the O(1) witness check *)
  mutable violations : int;
      (** rank violations resolved by affected-region search *)
}

type t

val init :
  ?config:config ->
  ?obs:Ig_obs.Obs.t ->
  ?trace:Ig_obs.Tracer.t ->
  Ig_graph.Digraph.t ->
  t
(** Run Tarjan once and set up all auxiliary structures. The graph is owned
    by the engine afterwards: apply updates only through it. [obs] (default
    {!Ig_obs.Obs.noop}) receives cost counters: [aff] (nodes re-certified
    plus rank-region size — the measured |AFF|), [cert_rewrites],
    [nodes_visited], [edges_relaxed] and [queue_pushes] (affected-region
    closures over the contracted graph), [rank_moves], [violations],
    [fast_deletes], and [changed] = |ΔG| + |ΔO|. Each outermost
    {!apply_batch}/{!insert_edge}/{!delete_edge} call also records one
    sample into the [apply_latency_s] histogram (monotonic seconds) and
    the [gc_minor_words]/[gc_major_words]/[gc_promoted_words] histograms
    ([Gc.quick_stat] deltas). [trace] (default
    {!Ig_obs.Tracer.noop}) receives structured events: [Aff_enter] tagged
    [Scc_local_tarjan] (node re-certified by a local Tarjan run; node ids)
    or [Scc_rank_swap] (component inside the affected rank region;
    component ids), [Cert_rewrite] on the [certificate] and [rank] fields,
    and [Frontier_expand] per contracted-closure push (component ids). *)

val graph : t -> Ig_graph.Digraph.t

val config : t -> config

val obs : t -> Ig_obs.Obs.t
(** The metrics sink the engine was created with. *)

val trace : t -> Ig_obs.Tracer.t
(** The event tracer the engine was created with. *)

val add_node : t -> string -> node
(** Add a fresh labeled node (a new singleton component). *)

val insert_edge : t -> node -> node -> unit
val delete_edge : t -> node -> node -> unit

val apply_batch : t -> Ig_graph.Digraph.update list -> delta
(** Apply a batch and return the output changes since the last flush. *)

val flush_delta : t -> delta
(** Collect ΔO accumulated by unit updates since the last flush. *)

val components : t -> node list list
(** Current [SCC(G)]. *)

val n_components : t -> int

val component_of : t -> node -> node list

val same_component : t -> node -> node -> bool

val stats : t -> stats

val reset_stats : t -> unit

val check_invariants : t -> unit
(** Test hook. Verifies: components agree with a from-scratch Tarjan run;
    member/ownership tables are mutually consistent; contracted-graph
    counters match the underlying graph; ranks strictly decrease along
    contracted edges. @raise Failure describing the first violation. *)

val pp_debug : Format.formatter -> t -> unit
(** Dump components, ranks and contracted adjacency (debugging aid). *)

val contracted : t -> Ig_graph.Digraph.t * node list array
(** Export the current contracted graph [Gc] as a fresh digraph: one node
    per component, labeled ["scc"], created in ascending topological rank
    (so node ids are a reverse topological order of the condensation —
    sinks first — and every edge goes from a higher id to a lower one).
    The array maps each contracted node to its members. *)

val cert_snapshot : t -> (string * string) list
(** SNAPSHOTTABLE: per-node component ids and Tarjan certificates, the
    topological rank order of live components, and the contracted edge
    multiset, as named canonical-text sections (hash-seed independent).
    The cert section is evidence for inspection: lazily maintained
    certificates are history-dependent, so recovery replays the journal
    instead of trusting it. *)
