module Digraph = Ig_graph.Digraph
module Rank = Ig_graph.Rank
module Vec = Ig_graph.Vec
module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

type node = Digraph.node
type comp = int

(* Member sets as ropes: merging components of any size is O(1), and the
   linear costs (iteration) land only where the paper's AFF already pays
   them (local Tarjan runs, output extraction). *)
type members = Leaf of node list | Cat of members * members

let rec iter_members f = function
  | Leaf ns -> List.iter f ns
  | Cat (a, b) ->
      iter_members f a;
      iter_members f b

let members_to_list ms =
  let acc = ref [] in
  iter_members (fun v -> acc := v :: !acc) ms;
  !acc

type config = {
  eager_cert : bool;
  delete_fast_path : bool;
  group_batch : bool;
}

let inc_config = { eager_cert = false; delete_fast_path = true; group_batch = true }
let incn_config = { eager_cert = false; delete_fast_path = true; group_batch = false }
let dyn_config = { eager_cert = false; delete_fast_path = false; group_batch = false }

type delta = { removed : node list list; added : node list list }

type stats = {
  mutable cert_nodes : int;
  mutable rank_moves : int;
  mutable fast_deletes : int;
  mutable violations : int;
}

type t = {
  g : Digraph.t;
  cfg : config;
  obs : Obs.t;
  trace : Tracer.t;
  certs : Tarjan.cert Vec.t; (* per node *)
  comp_of : comp Vec.t;      (* per node *)
  members : (comp, members) Hashtbl.t;
  msize : (comp, int) Hashtbl.t;
  (* Union-find over component ids: merges link old ids to the new one
     instead of rewriting per-node ownership (which would cost O(|scc|)). *)
  dsu : (comp, comp) Hashtbl.t;
  csucc : (comp, (comp, int) Hashtbl.t) Hashtbl.t;
  cpred : (comp, (comp, int) Hashtbl.t) Hashtbl.t;
  rank : Rank.t;
  dirty : (comp, unit) Hashtbl.t;
  mutable next_comp : comp;
  born : (comp, unit) Hashtbl.t;
  died : (comp, node list) Hashtbl.t;
  st : stats;
}

let graph t = t.g
let config t = t.cfg
let stats t = t.st
let obs t = t.obs
let trace t = t.trace

let reset_stats t =
  t.st.cert_nodes <- 0;
  t.st.rank_moves <- 0;
  t.st.fast_deletes <- 0;
  t.st.violations <- 0

let cert t v = Vec.get t.certs v

let rec dsu_find t c =
  match Hashtbl.find_opt t.dsu c with
  | None -> c
  | Some p ->
      let root = dsu_find t p in
      if root <> p then Hashtbl.replace t.dsu c root;
      root

let comp_of t v = dsu_find t (Vec.get t.comp_of v)

let members_of t c =
  match Hashtbl.find_opt t.members c with
  | Some ms -> ms
  | None -> invalid_arg "Inc_scc: retired component"

let size_of t c =
  match Hashtbl.find_opt t.msize c with
  | Some n -> n
  | None -> invalid_arg "Inc_scc: retired component"

let adj tbl c =
  match Hashtbl.find_opt tbl c with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.replace tbl c h;
      h

let cadd t cu cv k =
  let bump tbl a b =
    let h = adj tbl a in
    Hashtbl.replace h b (k + Option.value ~default:0 (Hashtbl.find_opt h b))
  in
  bump t.csucc cu cv;
  bump t.cpred cv cu

let cremove t cu cv k =
  let drop tbl a b =
    let h = adj tbl a in
    let n = Option.value ~default:0 (Hashtbl.find_opt h b) - k in
    if n > 0 then Hashtbl.replace h b n else Hashtbl.remove h b
  in
  drop t.csucc cu cv;
  drop t.cpred cv cu

(* Allocate a component holding the node list [ms]; updates per-node
   ownership (used at init, splits and node creation, where the list is
   within AFF anyway). The caller is responsible for ranks and contracted
   adjacency. *)
let alloc_comp t ms =
  let c = t.next_comp in
  t.next_comp <- c + 1;
  Hashtbl.replace t.members c (Leaf ms);
  Hashtbl.replace t.msize c (List.length ms);
  List.iter (fun v -> Vec.set t.comp_of v c) ms;
  Hashtbl.replace t.born c ();
  c

(* Retire a component: ownership of members must already have moved. Ranks
   are managed at call sites (reassign_within / split consume them). *)
let retire_comp t c =
  let ms = members_of t c in
  Hashtbl.remove t.members c;
  Hashtbl.remove t.msize c;
  Hashtbl.remove t.csucc c;
  Hashtbl.remove t.cpred c;
  Hashtbl.remove t.dirty c;
  if Hashtbl.mem t.born c then Hashtbl.remove t.born c
  else Hashtbl.replace t.died c (members_to_list ms)

let flush_delta t =
  (* Component-id order: the delta lists are consumer-visible. *)
  let removed =
    List.map snd (Obs.sorted_bindings ~compare:Int.compare t.died)
  in
  let added =
    List.map
      (fun (c, ()) -> members_to_list (members_of t c))
      (Obs.sorted_bindings ~compare:Int.compare t.born)
  in
  Obs.note_changed_output t.obs (List.length removed + List.length added);
  Hashtbl.reset t.died;
  Hashtbl.reset t.born;
  { removed; added }

(* Recompute the certificate of component [c] by a local Tarjan run on its
   induced subgraph; returns the sub-components sinks-first. *)
let local_tarjan t c =
  let ms = members_to_list (members_of t c) in
  t.st.cert_nodes <- t.st.cert_nodes + List.length ms;
  let n = List.length ms in
  Obs.add t.obs Obs.K.aff n;
  Obs.add t.obs Obs.K.cert_rewrites n;
  Obs.add t.obs Obs.K.nodes_visited n;
  if Tracer.enabled t.trace then
    List.iter
      (fun v -> Tracer.aff_enter t.trace ~node:v ~rule:Tracer.Scc_local_tarjan)
      ms;
  let groups =
    Tarjan.run_with_cert t.g
      ~restrict:(fun v -> comp_of t v = c)
      ~nodes:ms
      ~cert:(cert t)
  in
  if Tracer.enabled t.trace then
    Tracer.cert_rewrite t.trace ~node:c ~field:"certificate"
      ~before:(Printf.sprintf "comp=%d size=%d" c n)
      ~after:(Printf.sprintf "parts=%d" (List.length groups));
  groups

let refresh_cert t c =
  match local_tarjan t c with
  | [ _ ] -> Hashtbl.remove t.dirty c
  | _ -> assert false (* only called when [c] is known strongly connected *)

(* ---- Splits (IncSCC−, slow path) ------------------------------------- *)

(* Rebuild contracted adjacency after replacing [c] by [parts]. *)
let rewire_split t c parts =
  (* Purge the external references to [c]. Order-free: removals commute. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun d _ -> Hashtbl.remove (adj t.cpred d) c)
    (adj t.csucc c);
  (Hashtbl.iter [@lint.allow "D2"])
    (fun a _ -> Hashtbl.remove (adj t.csucc a) c)
    (adj t.cpred c);
  let part_set = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace part_set p ()) parts;
  List.iter
    (fun p ->
      iter_members
        (fun m ->
          (* Order-free: counter accumulation commutes. *)
          (Digraph.iter_succ [@lint.allow "D2"])
            (fun w ->
              let d = comp_of t w in
              if d <> p then cadd t p d 1)
            t.g m;
          (Digraph.iter_pred [@lint.allow "D2"])
            (fun a ->
              let ca = comp_of t a in
              (* Part-to-part edges were counted from the successor side. *)
              if ca <> p && not (Hashtbl.mem part_set ca) then cadd t ca p 1)
            t.g m)
        (members_of t p))
    parts

(* Re-certify component [c] (after intra-component deletions and/or when
   dirty) and split it if strong connectivity broke. *)
let recert_or_split t c =
  match local_tarjan t c with
  | [] -> assert false
  | [ _ ] -> Hashtbl.remove t.dirty c
  | parts_members ->
      (* Fresh ids; ownership moves before adjacency is rebuilt. *)
      let parts = List.map (fun ms -> alloc_comp t ms) parts_members in
      (* [parts] is sinks-first, which is ascending rank order. *)
      Rank.split t.rank c ~parts;
      t.st.rank_moves <- t.st.rank_moves + List.length parts;
      (* Adjacency rebuild must happen while [c]'s tables still exist. *)
      rewire_split t c parts;
      retire_comp t c

(* ---- Insertions (IncSCC+) -------------------------------------------- *)

(* Merge components in time proportional to the smaller sides: the id of
   the component with the largest contracted adjacency is reused, the
   others' members, ownership (via union-find) and adjacency are folded
   into it, so a chain of merges into a hub costs the sum of the small
   sides, not |hub| per step. Returns the surviving id. *)
let merge_comps t cs =
  let weight c =
    Hashtbl.length (adj t.csucc c) + Hashtbl.length (adj t.cpred c)
  in
  let big =
    List.fold_left
      (fun b c -> if weight c > weight b then c else b)
      (List.hd cs) cs
  in
  let others = List.filter (fun c -> c <> big) cs in
  (* ΔO bookkeeping: the pre-batch shape of [big] dies; its merged shape is
     (re)born. flush_delta reads members at flush time, so later growth of
     the same id is reflected automatically. *)
  if (not (Hashtbl.mem t.born big)) && not (Hashtbl.mem t.died big) then
    Hashtbl.replace t.died big (members_to_list (members_of t big));
  Hashtbl.replace t.born big ();
  let rope =
    List.fold_left
      (fun acc c -> Cat (acc, members_of t c))
      (members_of t big) others
  in
  Hashtbl.replace t.members big rope;
  Hashtbl.replace t.msize big
    (List.fold_left (fun n c -> n + size_of t c) (size_of t big) others);
  List.iter (fun c -> Hashtbl.replace t.dsu c big) others;
  let in_set = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace in_set c ()) cs;
  (* Contracted edges from [big] into the merge set become internal. *)
  List.iter
    (fun c ->
      Hashtbl.remove (adj t.csucc big) c;
      Hashtbl.remove (adj t.cpred big) c)
    others;
  let bump h k cnt =
    Hashtbl.replace h k (cnt + Option.value ~default:0 (Hashtbl.find_opt h k))
  in
  List.iter
    (fun c ->
      (* Order-free: counter merges and removals commute. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun d cnt ->
          Hashtbl.remove (adj t.cpred d) c;
          if not (Hashtbl.mem in_set d) then begin
            bump (adj t.csucc big) d cnt;
            bump (adj t.cpred d) big cnt
          end)
        (adj t.csucc c);
      (Hashtbl.iter [@lint.allow "D2"])
        (fun a cnt ->
          Hashtbl.remove (adj t.csucc a) c;
          if not (Hashtbl.mem in_set a) then begin
            bump (adj t.cpred big) a cnt;
            bump (adj t.csucc a) big cnt
          end)
        (adj t.cpred c);
      (* Retire the folded component (its members moved to [big]); if it
         predates the batch it was a distinct component of the old output,
         so its snapshot joins ΔO's removals. *)
      (if Hashtbl.mem t.born c then Hashtbl.remove t.born c
       else Hashtbl.replace t.died c (members_to_list (members_of t c)));
      Hashtbl.remove t.members c;
      Hashtbl.remove t.msize c;
      Hashtbl.remove t.csucc c;
      Hashtbl.remove t.cpred c;
      Hashtbl.remove t.dirty c)
    others;
  if t.cfg.eager_cert then refresh_cert t big
  else Hashtbl.replace t.dirty big ();
  big

(* Rank-windowed closure over the contracted graph. *)
let cclosure t ~dir ~keep start =
  let tbl = match dir with `F -> t.csucc | `B -> t.cpred in
  let seen = Hashtbl.create 16 in
  let stack = Stack.create () in
  if keep start then begin
    Hashtbl.replace seen start ();
    Stack.push start stack
  end;
  while not (Stack.is_empty stack) do
    let c = Stack.pop stack in
    Obs.incr t.obs Obs.K.nodes_visited;
    (* Sorted: the expansion order reaches the trace via frontier_expand. *)
    List.iter
      (fun (d, _) ->
        Obs.incr t.obs Obs.K.edges_relaxed;
        if (not (Hashtbl.mem seen d)) && keep d then begin
          Hashtbl.replace seen d ();
          Obs.incr t.obs Obs.K.queue_pushes;
          (* "node" here is a component id — the unit ranks live on. *)
          Tracer.frontier_expand t.trace ~node:d;
          Stack.push d stack
        end)
      (Obs.sorted_bindings ~compare:Int.compare (adj tbl c))
  done;
  seen

(* Restore the rank invariant after inserting contracted edge (cu, cv) with
   r(cu) < r(cv): paper Fig. 7 lines 4-9.

   affr (DFSf) is the forward closure from cv among ranks > r(cu); affl
   (DFSb) is the backward closure from cu among ranks < r(cv). Because ranks
   strictly decrease along every other edge, affr ⊆ (r(cu), r(cv)] and
   affl ⊆ [r(cu), r(cv)), and the components that must merge are exactly
   those on a cv ⇝ cu path: (affr ∩ affl) ∪ {cu, cv}, nonempty iff
   affr ∩ affl ≠ ∅ or the edge (cv, cu) exists.

   Rank reallocation follows the paper's reallocRank: the region's existing
   labels are reassigned ascending, first to affr sorted by previous rank,
   then to affl sorted by previous rank. Keeping each side's previous
   relative order is what makes every affr label weakly decrease and every
   affl label weakly increase, which is the Pearce–Kelly argument that no
   edge into or out of the region can become violated. *)
let resolve_violation t cu cv =
  let r_cu = Rank.value t.rank cu and r_cv = Rank.value t.rank cv in
  let affr =
    cclosure t ~dir:`F ~keep:(fun c -> Rank.value t.rank c > r_cu) cv
  in
  let affl =
    cclosure t ~dir:`B ~keep:(fun c -> Rank.value t.rank c < r_cv) cu
  in
  let elements tbl =
    List.map fst (Obs.sorted_bindings ~compare:Int.compare tbl)
  in
  let by_old_rank cs =
    List.sort
      (fun a b -> Int.compare (Rank.value t.rank a) (Rank.value t.rank b))
      cs
  in
  let inter = List.filter (fun c -> Hashtbl.mem affl c) (elements affr) in
  let region_size = Hashtbl.length affr + Hashtbl.length affl in
  t.st.rank_moves <- t.st.rank_moves + region_size;
  t.st.violations <- t.st.violations + 1;
  Obs.add t.obs Obs.K.aff region_size;
  Obs.add t.obs "rank_moves" region_size;
  Obs.incr t.obs "violations";
  if Tracer.enabled t.trace then begin
    List.iter
      (fun c -> Tracer.aff_enter t.trace ~node:c ~rule:Tracer.Scc_rank_swap)
      (elements affr);
    List.iter
      (fun c ->
        if not (Hashtbl.mem affr c) then
          Tracer.aff_enter t.trace ~node:c ~rule:Tracer.Scc_rank_swap)
      (elements affl)
  end;
  let direct_back_edge = Hashtbl.mem (adj t.csucc cv) cu in
  if inter = [] && not direct_back_edge then begin
    if Tracer.enabled t.trace then
      Tracer.cert_rewrite t.trace ~node:cu ~field:"rank"
        ~before:(Printf.sprintf "r(cu)=%d r(cv)=%d" r_cu r_cv)
        ~after:(Printf.sprintf "reallocated region=%d" region_size);
    (* No cycle: pure reallocation. *)
    let order = by_old_rank (elements affr) @ by_old_rank (elements affl) in
    Rank.reassign t.rank order
  end
  else begin
    if Tracer.enabled t.trace then
      Tracer.cert_rewrite t.trace ~node:cu ~field:"rank"
        ~before:(Printf.sprintf "r(cu)=%d r(cv)=%d" r_cu r_cv)
        ~after:(Printf.sprintf "cycle-merged region=%d" region_size);
    let merge_set = Hashtbl.create 8 in
    List.iter (fun c -> Hashtbl.replace merge_set c ()) (cu :: cv :: inter);
    let to_merge =
      List.map fst (Obs.sorted_bindings ~compare:Int.compare merge_set)
    in
    let pool =
      elements affr
      @ List.filter (fun c -> not (Hashtbl.mem affr c)) (elements affl)
    in
    let rest tbl =
      by_old_rank
        (List.filter (fun c -> not (Hashtbl.mem merge_set c)) (elements tbl))
    in
    let affr_rest = rest affr and affl_rest = rest affl in
    let m = merge_comps t to_merge in
    (* affr keeps the smallest labels (weakly decreasing), affl the largest
       (weakly increasing); the merged component sits in between — any
       leftover label works for it since all its external neighbors lie
       outside the pool's window. Labels freed by the merge are dropped. *)
    let labels = Array.of_list (Rank.take_labels t.rank pool) in
    let n = Array.length labels in
    let nr = List.length affr_rest and nl = List.length affl_rest in
    List.iteri (fun i c -> Rank.give t.rank c labels.(i)) affr_rest;
    Rank.give t.rank m labels.(nr);
    List.iteri (fun i c -> Rank.give t.rank c labels.(n - nl + i)) affl_rest
  end

let insert_inter t cu cv =
  cadd t cu cv 1;
  if Rank.compare_items t.rank cu cv < 0 then resolve_violation t cu cv

(* An intra-component insertion changes neither the output nor the validity
   of the recorded certificate: the certificate is a Tarjan run over the
   edges present when it was computed, and that edge subset already proves
   the component strongly connected. Later deletions of *other* edges keep
   it valid, and deleting the new edge itself can never split (the
   certificate does not use it). So lazily configured engines do nothing;
   the eager configuration refreshes so the new edge joins the certificate
   (DynSCC-style structure upkeep). *)
let insert_intra t c = if t.cfg.eager_cert then refresh_cert t c

let insert_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.add_edge t.g u v then begin
    Obs.note_changed_input t.obs 1;
    let cu = comp_of t u and cv = comp_of t v in
    if cu = cv then insert_intra t cu else insert_inter t cu cv
  end

(* ---- Deletions (IncSCC−) --------------------------------------------- *)

(* The recorded run stays valid iff the deleted intra-component edge is
   neither the tree arc into [v] nor the lowlink witness of [u]. *)
let cert_survives_delete t u v =
  let cv = cert t v in
  if cv.parent = u then false
  else
    match (cert t u).witness with Tarjan.Wdirect w -> w <> v | _ -> true

(* After deleting intra-component edge (u,v), the component stays strongly
   connected iff [u] still reaches [v] inside it (paper IncSCC−: the
   reachability check). Early-exits as soon as [v] is found. *)
let still_connected t c u v =
  Ig_graph.Traverse.reaches ~within:(fun x -> comp_of t x = c) t.g u v

let delete_intra t c u v =
  if
    t.cfg.delete_fast_path
    && (not (Hashtbl.mem t.dirty c))
    && cert_survives_delete t u v
  then begin
    t.st.fast_deletes <- t.st.fast_deletes + 1;
    Obs.incr t.obs "fast_deletes"
  end
  else if still_connected t c u v then
    (* Output unchanged; the certificate no longer reflects reality, so
       later deletions must re-check until a recomputation refreshes it. *)
    Hashtbl.replace t.dirty c ()
  else recert_or_split t c

let delete_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.remove_edge t.g u v then begin
    Obs.note_changed_input t.obs 1;
    let cu = comp_of t u and cv = comp_of t v in
    if cu <> cv then cremove t cu cv 1 else delete_intra t cu u v
  end

(* ---- Nodes ------------------------------------------------------------ *)

let add_node t label =
  let v = Digraph.add_node t.g label in
  ignore (Vec.push t.certs (Tarjan.fresh_cert ()));
  ignore (Vec.push t.comp_of (-1));
  let c = alloc_comp t [ v ] in
  Rank.insert_top t.rank c;
  v

(* ---- Batch updates (IncSCC) ------------------------------------------ *)

let apply_unit t = function
  | Digraph.Insert (u, v) -> insert_edge t u v
  | Digraph.Delete (u, v) -> delete_edge t u v

let apply_batch_grouped t updates =
  (* Classify against the components at batch start. *)
  let is_intra u v = comp_of t u = comp_of t v in
  let intra_ins = ref []
  and intra_del = ref []
  and inter_del = ref []
  and inter_ins = ref [] in
  List.iter
    (fun up ->
      match up with
      | Digraph.Insert (u, v) ->
          if is_intra u v then intra_ins := (u, v) :: !intra_ins
          else inter_ins := (u, v) :: !inter_ins
      | Digraph.Delete (u, v) ->
          if is_intra u v then intra_del := (u, v) :: !intra_del
          else inter_del := (u, v) :: !inter_del)
    updates;
  (* (a) Intra-component phase: apply everything to G, then run local
     Tarjan at most once per affected component. *)
  List.iter
    (fun (u, v) ->
      if Digraph.add_edge t.g u v then begin
        Obs.note_changed_input t.obs 1;
        insert_intra t (comp_of t u)
      end)
    !intra_ins;
  let del_by_comp = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
      if Digraph.remove_edge t.g u v then begin
        Obs.note_changed_input t.obs 1;
        let c = comp_of t u in
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt del_by_comp c)
        in
        Hashtbl.replace del_by_comp c ((u, v) :: cur)
      end)
    !intra_del;
  (* Sorted: recert order reaches the trace via local Tarjan's aff_enter. *)
  List.iter
    (fun (c, dels) ->
      let survives =
        t.cfg.delete_fast_path
        && (not (Hashtbl.mem t.dirty c))
        && List.for_all (fun (u, v) -> cert_survives_delete t u v) dels
      in
      if survives then begin
        t.st.fast_deletes <- t.st.fast_deletes + List.length dels;
        Obs.add t.obs "fast_deletes" (List.length dels)
      end
      else recert_or_split t c)
    (Obs.sorted_bindings ~compare:Int.compare del_by_comp);
  (* (b) Inter-component phase: deletions first, then insertions one at a
     time (each restores the rank invariant before the next is added). *)
  List.iter
    (fun (u, v) ->
      if Digraph.remove_edge t.g u v then begin
        Obs.note_changed_input t.obs 1;
        cremove t (comp_of t u) (comp_of t v) 1
      end)
    !inter_del;
  List.iter
    (fun (u, v) ->
      if Digraph.add_edge t.g u v then begin
        Obs.note_changed_input t.obs 1;
        let cu = comp_of t u and cv = comp_of t v in
        (* Equal components mean an earlier insertion in this batch merged
           them; the merge already dirtied (or refreshed) the certificate,
           so this is now an ordinary intra-component insertion. *)
        if cu = cv then insert_intra t cu else insert_inter t cu cv
      end)
    !inter_ins

let apply_batch t updates =
  Obs.with_apply t.obs @@ fun () ->
  Obs.with_span t.obs "scc.process" (fun () ->
      Tracer.with_span t.trace "scc.process" (fun () ->
          if t.cfg.group_batch then apply_batch_grouped t updates
          else List.iter (apply_unit t) updates));
  flush_delta t

(* ---- Construction and queries ----------------------------------------- *)

let init ?(config = inc_config) ?(obs = Obs.noop) ?(trace = Tracer.noop) g =
  Digraph.instrument ~obs ~trace g;
  let n = Digraph.n_nodes g in
  let certs = Vec.create () in
  for _ = 1 to n do
    ignore (Vec.push certs (Tarjan.fresh_cert ()))
  done;
  let comp_vec = if n = 0 then Vec.create () else Vec.make n (-1) in
  let t =
    {
      g;
      cfg = config;
      obs;
      trace;
      certs;
      comp_of = comp_vec;
      members = Hashtbl.create 64;
      msize = Hashtbl.create 64;
      dsu = Hashtbl.create 64;
      csucc = Hashtbl.create 64;
      cpred = Hashtbl.create 64;
      rank = Rank.create ();
      dirty = Hashtbl.create 16;
      next_comp = 0;
      born = Hashtbl.create 16;
      died = Hashtbl.create 16;
      st = { cert_nodes = 0; rank_moves = 0; fast_deletes = 0; violations = 0 };
    }
  in
  (* Root order is free in Tarjan; descending ids make the initial ranks
     anti-correlate with node ids wherever the graph leaves the order
     unconstrained. On hierarchy-shaped graphs (whose edges mostly agree
     with some global order) this keeps re-inserted edges rank-consistent,
     so IncSCC+ rarely needs an affected-region search at all. *)
  let groups =
    Tarjan.run_with_cert g
      ~restrict:(fun _ -> true)
      ~nodes:(List.init n (fun i -> n - 1 - i))
      ~cert:(cert t)
  in
  (* Sinks first: inserting each at the top gives ascending ranks, so
     r decreases along contracted edges, as in the paper. *)
  List.iter
    (fun ms ->
      let c = alloc_comp t ms in
      Rank.insert_top t.rank c)
    groups;
  Digraph.iter_edges
    (fun u v ->
      let cu = comp_of t u and cv = comp_of t v in
      if cu <> cv then cadd t cu cv 1)
    g;
  (* The initial state is the baseline, not a delta. *)
  Hashtbl.reset t.born;
  t

let components t =
  (* Component-id order: user-visible. *)
  List.map
    (fun (_, ms) -> members_to_list ms)
    (Obs.sorted_bindings ~compare:Int.compare t.members)

let n_components t = Hashtbl.length t.members

let component_of t v = members_to_list (members_of t (comp_of t v))

let same_component t u v = comp_of t u = comp_of t v

(* ---- Invariant checking (tests) --------------------------------------- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Ownership tables agree. Order-free: each check is independent. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun c ms ->
      iter_members
        (fun v ->
          if comp_of t v <> c then fail "node %d not owned by component %d" v c)
        ms;
      let n = ref 0 in
      iter_members (fun _ -> incr n) ms;
      if !n <> size_of t c then fail "component %d size drifted" c)
    t.members;
  Digraph.iter_nodes
    (fun v ->
      if not (Hashtbl.mem t.members (comp_of t v)) then
        fail "node %d owned by retired component" v)
    t.g;
  (* Components match a from-scratch run. *)
  let norm comps =
    List.sort
      (List.compare Int.compare)
      (List.map (fun ms -> List.sort Int.compare ms) comps)
  in
  if norm (components t) <> norm (Tarjan.scc t.g) then
    fail "components disagree with batch Tarjan";
  (* Contracted counters match the graph. *)
  let expected = Hashtbl.create 64 in
  Digraph.iter_edges
    (fun u v ->
      let cu = comp_of t u and cv = comp_of t v in
      if cu <> cv then
        Hashtbl.replace expected (cu, cv)
          (1 + Option.value ~default:0 (Hashtbl.find_opt expected (cu, cv))))
    t.g;
  (Hashtbl.iter [@lint.allow "D2"])
    (fun c h ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun d cnt ->
          if Option.value ~default:0 (Hashtbl.find_opt expected (c, d)) <> cnt
          then fail "csucc counter (%d,%d)=%d wrong" c d cnt)
        h)
    t.csucc;
  (Hashtbl.iter [@lint.allow "D2"])
    (fun (c, d) cnt ->
      let got =
        Option.value ~default:0 (Hashtbl.find_opt (adj t.csucc c) d)
      in
      if got <> cnt then fail "csucc missing (%d,%d)" c d;
      let got' =
        Option.value ~default:0 (Hashtbl.find_opt (adj t.cpred d) c)
      in
      if got' <> cnt then fail "cpred missing (%d,%d)" c d)
    expected;
  (* Ranks strictly decrease along contracted edges. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun c h ->
      (Hashtbl.iter [@lint.allow "D2"])
        (fun d _ ->
          if Rank.compare_items t.rank c d <= 0 then
            fail "rank invariant violated on (%d,%d)" c d)
        h)
    t.csucc

let pp_debug ppf t =
  Format.fprintf ppf "@[<v>components:@,";
  let comps = List.map fst (Obs.sorted_bindings ~compare:Int.compare t.members) in
  List.iter
    (fun c ->
      Format.fprintf ppf "  comp %d rank=%d members=[%s] succ=[%s]@," c
        (Rank.value t.rank c)
        (String.concat ";"
           (List.map string_of_int (members_to_list (members_of t c))))
        (String.concat ";"
           (List.map
              (fun (d, cnt) -> Printf.sprintf "%d(x%d)" d cnt)
              (Obs.sorted_bindings ~compare:Int.compare (adj t.csucc c)))))
    comps;
  Format.fprintf ppf "@]"

let contracted t =
  let comps =
    List.sort
      (fun a b -> Int.compare (Rank.value t.rank a) (Rank.value t.rank b))
      (List.map fst (Obs.sorted_bindings ~compare:Int.compare t.members))
  in
  let gc = Ig_graph.Digraph.create ~hint:(List.length comps) () in
  let index = Hashtbl.create 64 in
  let members =
    Array.of_list
      (List.map
         (fun c ->
           let id = Ig_graph.Digraph.add_node gc "scc" in
           Hashtbl.replace index c id;
           members_to_list (members_of t c))
         comps)
  in
  (* Order-free: edge-set insertion commutes; gc iteration is sorted. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun c h ->
      let cid = Hashtbl.find index c in
      (Hashtbl.iter [@lint.allow "D2"])
        (fun d _ ->
          ignore (Ig_graph.Digraph.add_edge gc cid (Hashtbl.find index d)))
        h)
    t.csucc;
  (gc, members)

(* Canonical text dump of the live state. The cert section is documented
   evidence, not a correctness carrier: lazily maintained Tarjan certs are
   history-dependent, so recovery re-derives them by replay rather than
   trusting these bytes. Sorted iteration keeps the dump hash-seed
   independent. *)
let cert_snapshot t =
  let n = Ig_graph.Digraph.n_nodes t.g in
  let comp = Buffer.create 128 in
  for v = 0 to n - 1 do
    Buffer.add_string comp (Printf.sprintf "v%d c%d\n" v (comp_of t v))
  done;
  let cb = Buffer.create 256 in
  for v = 0 to n - 1 do
    let c = cert t v in
    let w =
      match c.Tarjan.witness with
      | Tarjan.Wself -> "self"
      | Tarjan.Wtree x -> Printf.sprintf "tree:%d" x
      | Tarjan.Wdirect x -> Printf.sprintf "direct:%d" x
    in
    Buffer.add_string cb
      (Printf.sprintf "v%d num=%d low=%d parent=%d witness=%s\n" v
         c.Tarjan.num c.Tarjan.lowlink c.Tarjan.parent w)
  done;
  let live =
    List.filter
      (fun c -> dsu_find t c = c)
      (List.map fst (Obs.sorted_bindings ~compare:Int.compare t.members))
  in
  let rk = Buffer.create 64 in
  List.iter
    (fun c -> Buffer.add_string rk (Printf.sprintf "c%d\n" c))
    (List.sort (Rank.compare_items t.rank)
       (List.filter (Rank.mem t.rank) live));
  let cs = Buffer.create 128 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt t.csucc c with
      | None -> ()
      | Some h ->
          let counts = Hashtbl.create 8 in
          List.iter
            (fun (d, k) ->
              let d = dsu_find t d in
              if d <> c then
                Hashtbl.replace counts d
                  (k + Option.value ~default:0 (Hashtbl.find_opt counts d)))
            (Obs.sorted_bindings ~compare:Int.compare h);
          List.iter
            (fun (d, k) ->
              Buffer.add_string cs (Printf.sprintf "c%d -> c%d x%d\n" c d k))
            (Obs.sorted_bindings ~compare:Int.compare counts))
    live;
  [
    ("comp", Buffer.contents comp);
    ("cert", Buffer.contents cb);
    ("ranks", Buffer.contents rk);
    ("csucc", Buffer.contents cs);
  ]
