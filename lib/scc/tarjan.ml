module Digraph = Ig_graph.Digraph

type node = Digraph.node

type witness =
  | Wself
  | Wtree of node
  | Wdirect of node

type cert = {
  mutable num : int;
  mutable lowlink : int;
  mutable parent : node;
  mutable witness : witness;
  mutable on_stack : bool;
}

let fresh_cert () =
  { num = -1; lowlink = -1; parent = -1; witness = Wself; on_stack = false }

let run_generic ~succ ~restrict ~nodes ~cert =
  List.iter
    (fun v ->
      let c = cert v in
      c.num <- -1;
      c.on_stack <- false)
    nodes;
  let index = ref 0 in
  let sccs = ref [] in
  let tarjan_stack = ref [] in
  let frames = Stack.create () in
  let push_node v parent =
    let c = cert v in
    c.num <- !index;
    c.lowlink <- !index;
    incr index;
    c.parent <- parent;
    c.witness <- Wself;
    c.on_stack <- true;
    tarjan_stack := v :: !tarjan_stack;
    let succs = ref [] in
    succ v (fun w -> if restrict w then succs := w :: !succs);
    Stack.push (v, c, succs) frames
  in
  let visit_root v =
    if restrict v && (cert v).num = -1 then begin
      push_node v (-1);
      while not (Stack.is_empty frames) do
        let u, cu, succs = Stack.top frames in
        match !succs with
        | w :: rest -> begin
            succs := rest;
            let cw = cert w in
            if cw.num = -1 then push_node w u
            else if cw.on_stack && cw.num < cu.lowlink then begin
              cu.lowlink <- cw.num;
              cu.witness <- Wdirect w
            end
          end
        | [] ->
            ignore (Stack.pop frames);
            if cu.lowlink = cu.num then begin
              (* [u] is the root of a component: pop it off the stack. *)
              let comp = ref [] in
              let again = ref true in
              while !again do
                match !tarjan_stack with
                | [] -> assert false
                | x :: rest ->
                    tarjan_stack := rest;
                    (cert x).on_stack <- false;
                    comp := x :: !comp;
                    if x = u then again := false
              done;
              sccs := !comp :: !sccs
            end;
            (match Stack.top_opt frames with
            | Some (_, cp, _) ->
                if cu.lowlink < cp.lowlink then begin
                  cp.lowlink <- cu.lowlink;
                  cp.witness <- Wtree u
                end
            | None -> ())
      done
    end
  in
  List.iter visit_root nodes;
  List.rev !sccs

(* Sorted successors: the DFS order decides certificate parents/witnesses
   and component member order, which reach traces and user-visible output. *)
let run_with_cert g ~restrict ~nodes ~cert =
  run_generic
    ~succ:(fun v f -> Digraph.iter_succ_sorted f g v)
    ~restrict ~nodes ~cert

let scc g =
  let n = Digraph.n_nodes g in
  let certs = Array.init n (fun _ -> fresh_cert ()) in
  run_with_cert g
    ~restrict:(fun _ -> true)
    ~nodes:(List.init n Fun.id)
    ~cert:(fun v -> certs.(v))
