module Digraph = Ig_graph.Digraph

type node = Digraph.node

type query = { keywords : string list; bound : int }

type entry = { dist : int; next : node }

let kdist_one g ~keyword ~bound =
  let kd = Hashtbl.create 256 in
  let q = Queue.create () in
  (match Ig_graph.Interner.find (Digraph.interner g) keyword with
  | None -> ()
  | Some sym ->
      List.iter
        (fun v ->
          Hashtbl.replace kd v { dist = 0; next = -1 };
          Queue.add v q)
        (Digraph.nodes_with_label g sym));
  (* Reverse BFS bounded by [bound]. *)
  while not (Queue.is_empty q) do
    let w = Queue.pop q in
    let d = (Hashtbl.find kd w).dist in
    if d < bound then
      (* Order-free: BFS distances are layer-determined, and the
         discovery-order [next] pointer is rewritten deterministically
         below. *)
      (Digraph.iter_pred [@lint.allow "D2"])
        (fun v ->
          if not (Hashtbl.mem kd v) then begin
            Hashtbl.replace kd v { dist = d + 1; next = w };
            Queue.add v q
          end)
        g w
  done;
  (* Deterministic tie-break: smallest-id successor on a shortest path.
     Order-free: each entry is rewritten from its own successors only. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun v e ->
      if e.dist > 0 then begin
        let best = ref max_int in
        (* Order-free: keeps the minimum over all successors. *)
        (Digraph.iter_succ [@lint.allow "D2"])
          (fun w ->
            match Hashtbl.find_opt kd w with
            | Some e' when e'.dist = e.dist - 1 && w < !best -> best := w
            | _ -> ())
          g v;
        assert (!best < max_int);
        Hashtbl.replace kd v { e with next = !best }
      end)
    kd;
  kd

let kdist_maps g q =
  Array.of_list
    (List.map (fun k -> kdist_one g ~keyword:k ~bound:q.bound) q.keywords)

let roots_of_kdist kd =
  if Array.length kd = 0 then []
  else begin
    (* Intersect, scanning the smallest map. *)
    let smallest = ref 0 in
    Array.iteri
      (fun i m ->
        if Hashtbl.length m < Hashtbl.length kd.(!smallest) then smallest := i)
      kd;
    let roots =
      (* Order-free: the result is sorted below. *)
      (Hashtbl.fold [@lint.allow "D2"])
        (fun v _ acc ->
          if Array.for_all (fun m -> Hashtbl.mem m v) kd then v :: acc else acc)
        kd.(!smallest) []
    in
    List.sort Int.compare roots
  end

let run g q = roots_of_kdist (kdist_maps g q)

let tree_of kd r =
  if not (Array.for_all (fun m -> Hashtbl.mem m r) kd) then []
  else
    Array.to_list
      (Array.mapi
         (fun i m ->
           let rec path v acc =
             let e = Hashtbl.find m v in
             if e.dist = 0 then List.rev (v :: acc) else path e.next (v :: acc)
           in
           (i, path r []))
         kd)
