(** IncKWS: localizable incremental keyword search (paper Section 4.2,
    Figures 1 and 3).

    The auxiliary structure is the keyword-distance list [kdist(v)[ki] =
    (dist, next)] for every node within [b] hops of a keyword node. All
    change propagation is confined to the [b]-neighbors of the updated
    edges — distances beyond the bound are never stored nor explored —
    which is what makes the algorithm localizable even though KWS is
    unbounded (Theorem 1).

    - {b IncKWS+} (Fig. 1): an inserted edge [(v,w)] that shortens [v]'s
      distance to some keyword triggers a decrease-only propagation to
      ancestors.
    - {b IncKWS−} (Fig. 3): an edge deletion invalidates exactly the nodes
      whose chosen [next]-path used it; those are found by walking the
      [next]-pointer tree backwards (phase one), then re-settled in
      ascending distance order with a priority queue seeded by their best
      unaffected successor (phase two).
    - {b IncKWS} (batch): deletions and insertions share one global priority
      queue per keyword, so every affected entry is decided exactly once
      per batch even when hit by several unit updates (paper Example 3).

    A root matches iff all [m] keywords are within bound, so ΔO tracks the
    per-node count of defined entries; [rewired] additionally reports the
    entries whose [(dist, next)] changed — the in-place tree edge
    replacements of the paper's lines 9-10/15-16. *)

type node = Ig_graph.Digraph.node

type delta = {
  added : node list;           (** new match roots *)
  removed : node list;         (** roots that stopped matching *)
  rewired : (node * int) list;
      (** (node, keyword index) entries re-settled or improved — tree edges
          replaced inside surviving matches *)
}

type stats = { mutable affected : int; mutable settled : int }

type t

val init :
  ?grouped:bool ->
  ?obs:Ig_obs.Obs.t ->
  ?trace:Ig_obs.Tracer.t ->
  Ig_graph.Digraph.t ->
  Batch.query ->
  t
(** Compute the kdist lists once with the batch algorithm and keep them.
    [grouped] (default [true]) is the paper's IncKWS; [false] processes
    batch updates one unit at a time (IncKWSn). [obs] (default
    {!Ig_obs.Obs.noop}) receives the engine's cost counters: [aff] (kdist
    entries invalidated), [cert_rewrites] (entries re-settled),
    [nodes_visited], [edges_relaxed], [queue_pushes], and the
    [changed]/[changed_input]/[changed_output] accounting of |ΔG| + |ΔO|.
    Each outermost {!apply_batch}/{!insert_edge}/{!delete_edge} call also
    records one sample into the [apply_latency_s] histogram (monotonic
    seconds) and the [gc_minor_words]/[gc_major_words]/[gc_promoted_words]
    histograms ([Gc.quick_stat] deltas). [trace] (default {!Ig_obs.Tracer.noop}) receives typed provenance
    events at the same sites: [Aff_enter] tagged [Kws_next_on_deleted]
    (Fig. 3 lines 1-6) or [Kws_shorter_kdist] (Fig. 1), [Cert_rewrite] per
    re-settled [kdist[i]] entry with before/after values, and
    [Frontier_expand] per queue push. The session owns the graph
    afterwards. *)

val graph : t -> Ig_graph.Digraph.t
val query : t -> Batch.query

val obs : t -> Ig_obs.Obs.t
(** The metrics sink the session was created with. *)

val trace : t -> Ig_obs.Tracer.t
(** The event tracer the session was created with. *)

val add_node : t -> string -> node
(** A fresh node; it immediately matches any keyword equal to its label. *)

val insert_edge : t -> node -> node -> unit
val delete_edge : t -> node -> node -> unit
val apply_batch : t -> Ig_graph.Digraph.update list -> delta
val flush_delta : t -> delta

val match_roots : t -> node list
val n_matches : t -> int
val is_match_root : t -> node -> bool

val kdist : t -> node -> int -> Batch.entry option
(** Current entry for (node, keyword index), if within bound. *)

val match_tree : t -> node -> (int * node list) list
(** The match tree at a root: one [next]-path per keyword (empty if the node
    is not a match root). *)

val stats : t -> stats
val reset_stats : t -> unit

val check_invariants : t -> unit
(** Test hook: distances equal a fresh batch computation, every [next]
    pointer is a valid shortest-path successor, and the root set matches.
    @raise Failure on violation. *)

val corrupt_certificate_for_testing : t -> bool
(** Mutation-testing hook: bump one stored kdist distance by one, leaving
    all other state untouched, so the auxiliary structure no longer agrees
    with the graph. Returns [false] if no entry exists to corrupt. A
    subsequent {!check_invariants} must fail — the fuzz harness's mutation
    smoke test asserts that the differential layer actually catches planted
    certificate bugs. *)

val set_bound : t -> int -> delta
(** Change the hop bound [b] in place and return the resulting ΔO — the
    paper's Remark in Section 4.2. Raising the bound continues change
    propagation from the "breakpoints" where it previously stopped (the
    frontier entries at the old bound, derivable from the kdist lists);
    lowering it drops the entries beyond the new bound. After the call the
    session behaves exactly as if initialized with the new bound. *)

val match_cost : t -> node -> int option
(** The minimized objective of the paper's match definition at a root:
    [Σ_i dist(r, p_i)] over all keywords, or [None] if the node is not a
    match root. *)

val cert_snapshot : t -> (string * string) list
(** SNAPSHOTTABLE: the kdist lists, per-node keyword counts and match
    total as named canonical-text sections (hash-seed independent), for
    durable certificate snapshots. *)
