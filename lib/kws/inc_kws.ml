module Digraph = Ig_graph.Digraph
module Obs = Ig_obs.Obs
module Tracer = Ig_obs.Tracer

type node = Digraph.node

type delta = {
  added : node list;
  removed : node list;
  rewired : (node * int) list;
}

type stats = { mutable affected : int; mutable settled : int }

module PQ = Ig_graph.Pqueue.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Int.hash
end)

type t = {
  g : Digraph.t;
  mutable q : Batch.query;
  grouped : bool;
  obs : Obs.t;
  trace : Tracer.t;
  syms : Ig_graph.Interner.symbol array; (* keyword symbols, query order *)
  kd : (node, Batch.entry) Hashtbl.t array;
  mcount : (node, int) Hashtbl.t; (* node -> #keywords within bound *)
  mutable n_matches : int;
  gained : (node, unit) Hashtbl.t;
  lost : (node, unit) Hashtbl.t;
  rewired : (node * int, unit) Hashtbl.t;
  st : stats;
}

let graph t = t.g
let query t = t.q
let stats t = t.st
let obs t = t.obs
let trace t = t.trace

let reset_stats t =
  t.st.affected <- 0;
  t.st.settled <- 0

let m t = Array.length t.kd
let bound t = t.q.Batch.bound

let note_gain t v =
  t.n_matches <- t.n_matches + 1;
  if Hashtbl.mem t.lost v then Hashtbl.remove t.lost v
  else Hashtbl.replace t.gained v ()

let note_lose t v =
  t.n_matches <- t.n_matches - 1;
  if Hashtbl.mem t.gained v then Hashtbl.remove t.gained v
  else Hashtbl.replace t.lost v ()

let set_entry t i v e =
  let kd = t.kd.(i) in
  if not (Hashtbl.mem kd v) then begin
    let c = 1 + Option.value ~default:0 (Hashtbl.find_opt t.mcount v) in
    Hashtbl.replace t.mcount v c;
    if c = m t then note_gain t v
  end;
  Hashtbl.replace kd v e

let remove_entry t i v =
  let kd = t.kd.(i) in
  if Hashtbl.mem kd v then begin
    Hashtbl.remove kd v;
    let c = Option.value ~default:0 (Hashtbl.find_opt t.mcount v) - 1 in
    if c > 0 then Hashtbl.replace t.mcount v c else Hashtbl.remove t.mcount v;
    if c = m t - 1 then note_lose t v
  end

let compare_rewired (v1, i1) (v2, i2) =
  match Int.compare v1 v2 with 0 -> Int.compare i1 i2 | c -> c

let flush_delta t =
  let added = List.map fst (Obs.sorted_bindings ~compare:Int.compare t.gained) in
  let removed = List.map fst (Obs.sorted_bindings ~compare:Int.compare t.lost) in
  let rewired =
    List.map fst (Obs.sorted_bindings ~compare:compare_rewired t.rewired)
  in
  Obs.note_changed_output t.obs (List.length added + List.length removed);
  Hashtbl.reset t.gained;
  Hashtbl.reset t.lost;
  Hashtbl.reset t.rewired;
  { added; removed; rewired }

(* One combined deletion/insertion pass for keyword [i] (paper IncKWS;
   with singleton update lists it degenerates to IncKWS+ / IncKWS−). The
   graph has already been updated. *)
let process_keyword t i ~dels ~inss =
  let kd = t.kd.(i) in
  let b = bound t in
  (* Phase 1 (IncKWS− lines 1-6): nodes whose chosen path used a deleted
     edge, found backward through the next-pointer tree. *)
  let affected = Hashtbl.create 16 in
  let stack = Stack.create () in
  List.iter
    (fun (v, w) ->
      match Hashtbl.find_opt kd v with
      | Some e when e.Batch.next = w -> Stack.push v stack
      | _ -> ())
    dels;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    Obs.incr t.obs Obs.K.nodes_visited;
    if (not (Hashtbl.mem affected v)) && Hashtbl.mem kd v then begin
      Hashtbl.replace affected v ();
      t.st.affected <- t.st.affected + 1;
      Obs.incr t.obs Obs.K.aff;
      Tracer.aff_enter t.trace ~node:v ~rule:Tracer.Kws_next_on_deleted;
      (* Sorted so the aff_enter order (stack discipline) is seed-stable. *)
      Digraph.iter_pred_sorted
        (fun u ->
          match Hashtbl.find_opt kd u with
          | Some e when e.Batch.next = v && not (Hashtbl.mem affected u) ->
              Stack.push u stack
          | _ -> ())
        t.g v
    end
  done;
  (* Phase 2 (lines 7-9): potential distances from unaffected successors.
     Iterated in node order: the frontier_expand events and the queue
     insertion sequence must not depend on the hash seed. *)
  let q = PQ.create () in
  List.iter
    (fun (v, ()) ->
      let best = ref max_int in
      (Digraph.iter_succ [@lint.allow "D2"])
        (fun w ->
          Obs.incr t.obs Obs.K.edges_relaxed;
          if not (Hashtbl.mem affected w) then
            match Hashtbl.find_opt kd w with
            | Some e when e.Batch.dist + 1 < !best -> best := e.Batch.dist + 1
            | _ -> ())
        t.g v;
      remove_entry t i v;
      if !best <= b then begin
        Obs.incr t.obs Obs.K.queue_pushes;
        Tracer.frontier_expand t.trace ~node:v;
        PQ.insert q v !best
      end)
    (Obs.sorted_bindings ~compare:Int.compare affected);
  (* Insertions with unaffected endpoints (IncKWS phase (b)). *)
  List.iter
    (fun (v, w) ->
      if not (Hashtbl.mem affected v || Hashtbl.mem affected w) then
        match Hashtbl.find_opt kd w with
        | Some ew ->
            let cand = ew.Batch.dist + 1 in
            if
              cand <= b
              &&
              match Hashtbl.find_opt kd v with
              | Some ev -> ev.Batch.dist > cand
              | None -> true
            then begin
              Obs.incr t.obs Obs.K.queue_pushes;
              Tracer.frontier_expand t.trace ~node:v;
              PQ.insert q v cand
            end
        | None -> ())
    inss;
  (* Phase 3 (lines 10-14): settle exact values in increasing order. *)
  let rec fix () =
    match PQ.pull_min q with
    | None -> ()
    | Some (v, d) ->
        Obs.incr t.obs Obs.K.nodes_visited;
        let stale =
          match Hashtbl.find_opt kd v with
          | Some e -> e.Batch.dist <= d
          | None -> false
        in
        if not stale then begin
          (* The witness successor on a shortest path, smallest id. *)
          let next = ref (-1) in
          (* Order-free: keeps the minimum over all successors. *)
          (Digraph.iter_succ [@lint.allow "D2"])
            (fun w ->
              Obs.incr t.obs Obs.K.edges_relaxed;
              match Hashtbl.find_opt kd w with
              | Some e when e.Batch.dist = d - 1 && (!next = -1 || w < !next)
                ->
                  next := w
              | _ -> ())
            t.g v;
          assert (!next >= 0);
          if Tracer.enabled t.trace then begin
            (* Entries absent from [affected] are reached through an
               insertion or an improved successor — Fig. 1's rule. *)
            if not (Hashtbl.mem affected v) then
              Tracer.aff_enter t.trace ~node:v ~rule:Tracer.Kws_shorter_kdist;
            let show = function
              | Some e ->
                  Printf.sprintf "dist=%d next=%d" e.Batch.dist e.Batch.next
              | None -> "absent"
            in
            Tracer.cert_rewrite t.trace ~node:v
              ~field:(Printf.sprintf "kdist[%d]" i)
              ~before:(show (Hashtbl.find_opt kd v))
              ~after:(Printf.sprintf "dist=%d next=%d" d !next)
          end;
          set_entry t i v { Batch.dist = d; next = !next };
          Hashtbl.replace t.rewired (v, i) ();
          t.st.settled <- t.st.settled + 1;
          Obs.incr t.obs Obs.K.cert_rewrites;
          (* Sorted: emits frontier_expand and orders queue insertions. *)
          Digraph.iter_pred_sorted
            (fun u ->
              Obs.incr t.obs Obs.K.edges_relaxed;
              let cand = d + 1 in
              if
                cand <= b
                &&
                match Hashtbl.find_opt kd u with
                | Some e -> e.Batch.dist > cand
                | None -> true
              then begin
                Obs.incr t.obs Obs.K.queue_pushes;
                Tracer.frontier_expand t.trace ~node:u;
                PQ.insert q u cand
              end)
            t.g v
        end;
        fix ()
  in
  fix ()

let process_all t ~dels ~inss =
  Obs.with_span t.obs "kws.process" (fun () ->
      Tracer.with_span t.trace "kws.process" (fun () ->
          for i = 0 to m t - 1 do
            process_keyword t i ~dels ~inss
          done))

let apply_effective t updates =
  List.filter_map
    (fun up ->
      let eff =
        match up with
        | Digraph.Insert (u, v) ->
            if Digraph.add_edge t.g u v then Some (`I, (u, v)) else None
        | Digraph.Delete (u, v) ->
            if Digraph.remove_edge t.g u v then Some (`D, (u, v)) else None
      in
      if eff <> None then Obs.note_changed_input t.obs 1;
      eff)
    updates

let split_effective eff =
  ( List.filter_map (function `D, e -> Some e | `I, _ -> None) eff,
    List.filter_map (function `I, e -> Some e | `D, _ -> None) eff )

let apply_batch t updates =
  Obs.with_apply t.obs @@ fun () ->
  if t.grouped then begin
    let dels, inss = split_effective (apply_effective t updates) in
    process_all t ~dels ~inss
  end
  else
    List.iter
      (fun up ->
        match apply_effective t [ up ] with
        | [] -> ()
        | eff ->
            let dels, inss = split_effective eff in
            process_all t ~dels ~inss)
      updates;
  flush_delta t

let insert_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.add_edge t.g u v then begin
    Obs.note_changed_input t.obs 1;
    process_all t ~dels:[] ~inss:[ (u, v) ]
  end

let delete_edge t u v =
  Obs.with_apply t.obs @@ fun () ->
  if Digraph.remove_edge t.g u v then begin
    Obs.note_changed_input t.obs 1;
    process_all t ~dels:[ (u, v) ] ~inss:[]
  end

let add_node t label =
  let v = Digraph.add_node t.g label in
  let sym = Digraph.label t.g v in
  Array.iteri
    (fun i ks ->
      if ks = sym then set_entry t i v { Batch.dist = 0; next = -1 })
    t.syms;
  v

let init ?(grouped = true) ?(obs = Obs.noop) ?(trace = Tracer.noop) g q =
  Digraph.instrument ~obs ~trace g;
  let kd = Batch.kdist_maps g q in
  let t =
    {
      g;
      q;
      grouped;
      obs;
      trace;
      syms =
        Array.of_list
          (List.map (Digraph.intern_label g) q.Batch.keywords);
      kd;
      mcount = Hashtbl.create 256;
      n_matches = 0;
      gained = Hashtbl.create 64;
      lost = Hashtbl.create 64;
      rewired = Hashtbl.create 64;
      st = { affected = 0; settled = 0 };
    }
  in
  Array.iter
    (fun map ->
      (* Order-free: commutative counting. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v _ ->
          Hashtbl.replace t.mcount v
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.mcount v)))
        map)
    kd;
  (Hashtbl.iter [@lint.allow "D2"])
    (fun _ c -> if c = Array.length kd then t.n_matches <- t.n_matches + 1)
    t.mcount;
  t

(* Change the hop bound in place (the paper's Remark in Section 4.2).

   Raising b: the nodes where propagation previously stopped are exactly the
   entries at distance b (relaxation is cut only when a candidate distance
   would exceed the bound), so they are the "breakpoints" the paper
   describes, derivable from the kdist lists with no extra snapshot state.
   Seeding the settle loop from their unentered predecessors continues the
   propagation under the larger bound.

   Lowering b: entries beyond the new bound are simply dropped. *)
let set_bound t b' =
  let b = bound t in
  if b' > b then
    for i = 0 to m t - 1 do
      let kd = t.kd.(i) in
      let q = PQ.create () in
      (* Breakpoints: frontier entries at the old bound, in node order so
         queue insertions are seed-stable. *)
      List.iter
        (fun (v, e) ->
          if e.Batch.dist = b then
            Digraph.iter_pred_sorted
              (fun u -> if not (Hashtbl.mem kd u) then PQ.insert q u (b + 1))
              t.g v)
        (Obs.sorted_bindings ~compare:Int.compare kd);
      t.q <- { t.q with Batch.bound = b' };
      let rec fix () =
        match PQ.pull_min q with
        | None -> ()
        | Some (v, d) ->
            if not (Hashtbl.mem kd v) then begin
              let next = ref (-1) in
              (* Order-free: keeps the minimum over all successors. *)
              (Digraph.iter_succ [@lint.allow "D2"])
                (fun w ->
                  match Hashtbl.find_opt kd w with
                  | Some e when e.Batch.dist = d - 1 && (!next = -1 || w < !next)
                    ->
                      next := w
                  | _ -> ())
                t.g v;
              assert (!next >= 0);
              set_entry t i v { Batch.dist = d; next = !next };
              t.st.settled <- t.st.settled + 1;
              Digraph.iter_pred_sorted
                (fun u ->
                  if d + 1 <= b' && not (Hashtbl.mem kd u) then
                    PQ.insert q u (d + 1))
                t.g v
            end;
            fix ()
      in
      fix ()
    done
  else if b' < b then begin
    t.q <- { t.q with Batch.bound = b' };
    Array.iteri
      (fun i kd ->
        let doomed =
          (* Order-free: removals commute; the delta is flushed sorted. *)
          (Hashtbl.fold [@lint.allow "D2"])
            (fun v e acc -> if e.Batch.dist > b' then v :: acc else acc)
            kd []
        in
        List.iter (fun v -> remove_entry t i v) doomed)
      t.kd
  end;
  flush_delta t

let match_roots t =
  (* User-visible answer: ascending node order. *)
  List.filter_map
    (fun (v, c) -> if c = m t then Some v else None)
    (Obs.sorted_bindings ~compare:Int.compare t.mcount)

let n_matches t = t.n_matches

let is_match_root t v =
  Option.value ~default:0 (Hashtbl.find_opt t.mcount v) = m t

let kdist t v i = Hashtbl.find_opt t.kd.(i) v

let match_tree t r = if is_match_root t r then Batch.tree_of t.kd r else []

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let fresh = Batch.kdist_maps t.g t.q in
  Array.iteri
    (fun i fm ->
      let im = t.kd.(i) in
      if Hashtbl.length fm <> Hashtbl.length im then
        fail "keyword %d: %d entries, expected %d" i (Hashtbl.length im)
          (Hashtbl.length fm);
      (* Order-free: pure membership checks. *)
      (Hashtbl.iter [@lint.allow "D2"])
        (fun v (fe : Batch.entry) ->
          match Hashtbl.find_opt im v with
          | None -> fail "keyword %d: node %d missing" i v
          | Some ie ->
              if ie.Batch.dist <> fe.Batch.dist then
                fail "keyword %d node %d: dist %d, expected %d" i v
                  ie.Batch.dist fe.Batch.dist;
              (* next must be a valid shortest-path successor. *)
              if ie.Batch.dist > 0 then begin
                if not (Digraph.mem_edge t.g v ie.Batch.next) then
                  fail "keyword %d node %d: next %d is not a successor" i v
                    ie.Batch.next;
                match Hashtbl.find_opt im ie.Batch.next with
                | Some e' when e'.Batch.dist = ie.Batch.dist - 1 -> ()
                | _ -> fail "keyword %d node %d: next not on shortest path" i v
              end)
        fm)
    fresh;
  (* Root bookkeeping. *)
  let count = ref 0 in
  (* Order-free: commutative counting. *)
  (Hashtbl.iter [@lint.allow "D2"])
    (fun v c ->
      let real =
        Array.fold_left
          (fun acc map -> acc + if Hashtbl.mem map v then 1 else 0)
          0 t.kd
      in
      if real <> c then fail "mcount at %d: %d, expected %d" v c real;
      if c = m t then incr count)
    t.mcount;
  if !count <> t.n_matches then
    fail "n_matches %d, expected %d" t.n_matches !count

let corrupt_certificate_for_testing t =
  (* Raw mutation, bypassing [set_entry] on purpose: the point is to plant
     an inconsistency the validation layers must catch. *)
  let rec go i =
    if i >= m t then false
    else
      let kd = t.kd.(i) in
      (* Deterministic victim: the smallest node id with an entry. *)
      match Obs.sorted_bindings ~compare:Int.compare kd with
      | (v, e) :: _ ->
          Hashtbl.replace kd v { e with Batch.dist = e.Batch.dist + 1 };
          true
      | [] -> go (i + 1)
  in
  go 0

let match_cost t r =
  if not (is_match_root t r) then None
  else
    Some
      (Array.fold_left
         (fun acc kd -> acc + (Hashtbl.find kd r).Batch.dist)
         0 t.kd)

(* Canonical text dump of the auxiliary structure, one section per store.
   Sorted iteration keeps the bytes independent of the process hash seed. *)
let cert_snapshot t =
  let kd = Buffer.create 256 in
  Array.iteri
    (fun i h ->
      List.iter
        (fun (v, e) ->
          Buffer.add_string kd
            (Printf.sprintf "k%d v%d dist=%d next=%d\n" i v e.Batch.dist
               e.Batch.next))
        (Obs.sorted_bindings ~compare:Int.compare h))
    t.kd;
  let mc = Buffer.create 64 in
  List.iter
    (fun (v, c) -> Buffer.add_string mc (Printf.sprintf "v%d %d\n" v c))
    (Obs.sorted_bindings ~compare:Int.compare t.mcount);
  [
    ("kdist", Buffer.contents kd);
    ("mcount", Buffer.contents mc);
    ("matches", Printf.sprintf "%d\n" t.n_matches);
  ]
