(* Continuous pattern monitoring (subgraph isomorphism): watch a stream of
   transactions for a small "round-trip" motif — account → mule → shop →
   account — the classic cyclic-flow fraud signature.

   New transactions arrive one at a time; IncISO re-examines only the
   d_Q-neighborhood of each new edge (localizability, paper Theorem 3), so
   alerts fire with latency independent of the total graph size.

   Run with: dune exec examples/fraud_monitor.exe *)

let () =
  let rng = Random.State.make [| 4242 |] in
  (* Transaction graph: accounts, mules, shops with money-flow edges. *)
  let g = Core.Digraph.create () in
  let n = 3_000 in
  let kinds = [| "account"; "mule"; "shop" |] in
  for _ = 1 to n do
    ignore (Core.Digraph.add_node g kinds.(Random.State.int rng 3))
  done;
  for _ = 1 to 4 * n do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then ignore (Core.Digraph.add_edge g u v)
  done;
  Format.printf "transaction graph: %d nodes, %d edges@."
    (Core.Digraph.n_nodes g) (Core.Digraph.n_edges g);

  let motif =
    Core.Iso.Pattern.create ~labels:[ "account"; "mule"; "shop" ]
      ~edges:[ (0, 1); (1, 2); (2, 0) ]
  in
  Format.printf "motif: account -> mule -> shop -> account (d_Q = %d)@."
    (Core.Iso.Pattern.diameter motif);

  let monitor = Core.Iso_session.create g motif in
  Format.printf "existing matches: %d@.@." (List.length (Core.Iso_session.answer monitor));

  (* Stream 2000 random transactions; report alerts as they fire. *)
  let alerts = ref 0 and cleared = ref 0 in
  let ball_total = ref 0 in
  for _ = 1 to 2_000 do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    let up =
      if Random.State.int rng 4 = 0 then Core.Digraph.Delete (u, v)
      else Core.Digraph.Insert (u, v)
    in
    if u <> v then begin
      let d = Core.Iso_session.update monitor [ up ] in
      alerts := !alerts + List.length d.Core.Iso.Inc.added;
      cleared := !cleared + List.length d.Core.Iso.Inc.removed;
      List.iter
        (fun m ->
          Format.printf "ALERT round-trip: account %d -> mule %d -> shop %d@."
            m.(0) m.(1) m.(2))
        d.Core.Iso.Inc.added
    end
  done;
  let st = Ig_iso.Inc_iso.stats monitor in
  ball_total := st.Ig_iso.Inc_iso.ball_nodes;
  Format.printf
    "@.stream done: %d alerts, %d cleared, %d live matches@." !alerts !cleared
    (List.length (Core.Iso_session.answer monitor));
  Format.printf
    "locality: %d VF2 reruns touched %d neighborhood nodes total (graph has %d)@."
    st.Ig_iso.Inc_iso.rematches !ball_total
    (Core.Digraph.n_nodes (Core.Iso_session.graph monitor))
