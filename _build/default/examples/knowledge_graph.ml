(* Knowledge-graph scenario (the paper's DBpedia use case): a regular path
   query maintained over a stream of edits.

   A dbpedia-like labeled graph receives batches of edits; IncRPQ keeps the
   answer of a path query current, and we compare its latency against
   recomputing from scratch with the batch algorithm RPQNFA — the paper's
   Exp-1(2), in miniature.

   Run with: dune exec examples/knowledge_graph.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rng = Random.State.make [| 2017 |] in
  let g =
    Core.Workload.Profiles.instantiate ~scale:0.05 ~rng
      Core.Workload.Profiles.dbpedia_like
  in
  Format.printf "knowledge graph: %d nodes, %d edges, %d labels@."
    (Core.Digraph.n_nodes g) (Core.Digraph.n_edges g)
    (Core.Interner.size (Core.Digraph.interner g));

  let query = Core.Workload.Queries.rpq ~rng g ~size:4 in
  Format.printf "query: %s@." (Core.Regex.to_string query);

  let session = Core.Rpq_session.create (Core.Digraph.copy g) query in
  Format.printf "initial matches: %d@.@."
    (List.length (Core.Rpq_session.answer session));

  (* Stream of 5 edit batches, each 1%% of |E|. *)
  let batch_size = max 1 (Core.Digraph.n_edges g / 100) in
  let baseline = Core.Digraph.copy g in
  for round = 1 to 5 do
    let ups =
      Core.Workload.Updates.generate ~rng
        (Core.Rpq_session.graph session)
        ~size:batch_size ()
    in
    let delta, inc_time =
      time (fun () -> Core.Rpq_session.update session ups)
    in
    (* Batch recomputation on an identical graph, for comparison. *)
    Core.Digraph.apply_batch baseline ups;
    let _, batch_time =
      time (fun () -> Core.Rpq.Batch.run_query baseline query)
    in
    Format.printf
      "round %d: |ΔG| = %d  ΔO = +%d/-%d   IncRPQ %.3fs vs RPQNFA %.3fs (%.1fx)@."
      round (List.length ups)
      (List.length delta.Core.Rpq.Inc.added)
      (List.length delta.Core.Rpq.Inc.removed)
      inc_time batch_time
      (batch_time /. Float.max 1e-9 inc_time)
  done;

  Format.printf "@.final matches: %d@."
    (List.length (Core.Rpq_session.answer session))
