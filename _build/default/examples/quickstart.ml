(* Quickstart: build a small labeled digraph, answer all four query classes
   once with the batch algorithms, then keep the answers fresh through
   incremental sessions while the graph changes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A graph: movies, people, awards. *)
  let g = Core.Digraph.create () in
  let director = Core.Digraph.add_node g "director" in
  let movie1 = Core.Digraph.add_node g "movie" in
  let movie2 = Core.Digraph.add_node g "movie" in
  let actor1 = Core.Digraph.add_node g "actor" in
  let actor2 = Core.Digraph.add_node g "actor" in
  let award = Core.Digraph.add_node g "award" in
  let e u v = ignore (Core.Digraph.add_edge g u v) in
  e director movie1;
  e director movie2;
  e movie1 actor1;
  e movie2 actor2;
  e actor1 award;
  e actor1 actor2;
  e actor2 actor1;

  Format.printf "graph: %d nodes, %d edges@."
    (Core.Digraph.n_nodes g) (Core.Digraph.n_edges g);

  (* 2. Sessions: one per query class, sharing copies of the graph (each
     session owns its graph and applies the updates itself). *)
  let kws =
    Core.Kws_session.create (Core.Digraph.copy g)
      { Core.Kws.Batch.keywords = [ "actor"; "award" ]; bound = 2 }
  in
  let rpq =
    Core.Rpq_session.create (Core.Digraph.copy g)
      (Core.Regex.parse_exn "director . movie . actor")
  in
  let scc = Core.Scc_session.create (Core.Digraph.copy g) () in
  let iso =
    Core.Iso_session.create (Core.Digraph.copy g)
      (Core.Iso.Pattern.create ~labels:[ "actor"; "actor" ]
         ~edges:[ (0, 1); (1, 0) ])
  in

  Format.printf "KWS  roots reaching an actor and an award within 2 hops: %a@."
    Fmt.(Dump.list int)
    (Core.Kws_session.answer kws);
  Format.printf "RPQ  director.movie.actor pairs: %a@."
    Fmt.(Dump.list (Dump.pair int int))
    (Core.Rpq_session.answer rpq);
  Format.printf "SCC  %d components@." (List.length (Core.Scc_session.answer scc));
  Format.printf "ISO  mutual-following actor pairs: %d@."
    (List.length (Core.Iso_session.answer iso));

  (* 3. The graph changes: a new movie-actor edge and a broken cycle. *)
  let batch =
    [ Core.Digraph.Insert (movie1, actor2); Core.Digraph.Delete (actor2, actor1) ]
  in
  Format.printf "@.applying ΔG = [insert (movie1, actor2); delete (actor2, actor1)]@.";

  let dk = Core.Kws_session.update kws batch in
  let dr = Core.Rpq_session.update rpq batch in
  let ds = Core.Scc_session.update scc batch in
  let di = Core.Iso_session.update iso batch in

  Format.printf "KWS  ΔO: +%a -%a@."
    Fmt.(Dump.list int) dk.Core.Kws.Inc.added
    Fmt.(Dump.list int) dk.Core.Kws.Inc.removed;
  Format.printf "RPQ  ΔO: +%a -%a@."
    Fmt.(Dump.list (Dump.pair int int)) dr.Core.Rpq.Inc.added
    Fmt.(Dump.list (Dump.pair int int)) dr.Core.Rpq.Inc.removed;
  Format.printf "SCC  ΔO: %d components removed, %d added@."
    (List.length ds.Core.Scc.Inc.removed)
    (List.length ds.Core.Scc.Inc.added);
  Format.printf "ISO  ΔO: %d matches removed@."
    (List.length di.Core.Iso.Inc.removed);

  (* 4. Answers stay equal to batch recomputation — that is the library's
     tested contract; see test/ for the property suites. *)
  Format.printf "@.current KWS roots: %a@."
    Fmt.(Dump.list int)
    (Core.Kws_session.answer kws)
