(* Social-network scenario (the paper's LiveJournal use case): keyword
   search and community structure maintained together under churn.

   A livej-like graph — skewed degrees and a giant strongly connected core —
   receives follow/unfollow batches. IncKWS keeps "who can reach an expert
   and a topic within b hops" fresh; IncSCC keeps the mutual-reachability
   communities fresh, exercising the giant-component splits the paper calls
   out in Exp-1(3).

   Run with: dune exec examples/social_network.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rng = Random.State.make [| 99 |] in
  let g =
    Core.Workload.Profiles.instantiate ~scale:0.05 ~rng
      Core.Workload.Profiles.livej_like
  in
  Format.printf "social graph: %d nodes, %d edges@." (Core.Digraph.n_nodes g)
    (Core.Digraph.n_edges g);

  let scc = Core.Scc_session.create (Core.Digraph.copy g) () in
  let comps = Core.Scc_session.answer scc in
  let giant = List.fold_left (fun acc c -> max acc (List.length c)) 0 comps in
  Format.printf "communities: %d (largest %.0f%% of the graph)@."
    (List.length comps)
    (100.0 *. float_of_int giant /. float_of_int (Core.Digraph.n_nodes g));

  let query = Core.Workload.Queries.kws ~rng g ~m:3 ~b:2 in
  Format.printf "keyword query: {%s} within %d hops@."
    (String.concat ", " query.Core.Kws.Batch.keywords)
    query.Core.Kws.Batch.bound;
  let kws = Core.Kws_session.create (Core.Digraph.copy g) query in
  Format.printf "matching roots: %d@.@."
    (List.length (Core.Kws_session.answer kws));

  let batch_size = max 1 (Core.Digraph.n_edges g / 50) in
  for round = 1 to 4 do
    let ups =
      Core.Workload.Updates.generate ~rng
        (Core.Kws_session.graph kws)
        ~size:batch_size ()
    in
    let dk, kws_time = time (fun () -> Core.Kws_session.update kws ups) in
    let ds, scc_time = time (fun () -> Core.Scc_session.update scc ups) in
    Format.printf
      "round %d: |ΔG| = %d   KWS roots +%d/-%d (%.3fs)   communities -%d/+%d (%.3fs)@."
      round (List.length ups)
      (List.length dk.Core.Kws.Inc.added)
      (List.length dk.Core.Kws.Inc.removed)
      kws_time
      (List.length ds.Core.Scc.Inc.removed)
      (List.length ds.Core.Scc.Inc.added)
      scc_time
  done;

  let comps = Core.Scc_session.answer scc in
  Format.printf "@.after churn: %d communities, %d matching roots@."
    (List.length comps)
    (List.length (Core.Kws_session.answer kws))
