examples/social_network.ml: Core Format List Random String Unix
