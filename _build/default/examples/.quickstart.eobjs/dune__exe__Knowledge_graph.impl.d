examples/knowledge_graph.ml: Core Float Format List Random Unix
