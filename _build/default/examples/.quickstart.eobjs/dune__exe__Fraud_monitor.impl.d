examples/fraud_monitor.ml: Array Core Format Ig_iso List Random
