examples/quickstart.ml: Core Dump Fmt Format List
