examples/quickstart.mli:
