(* Tests for batch KWS and IncKWS.

   The fixture [fig2] reconstructs the KWS-relevant part of the paper's
   Figure 2 faithfully enough that Examples 1, 2 and 3 play out verbatim:
   the kdist tables before/after inserting e1, the removal of T_c2 after
   deleting e2, and the batch of Example 3 including the interleaving of
   insert e3 with delete e2. *)

open Ig_graph
module B = Ig_kws.Batch
module I = Ig_kws.Inc_kws

let check = Alcotest.check
let intl = Alcotest.(list int)
let norm = List.sort compare

let check_roots msg expected actual = check intl msg (norm expected) (norm actual)

let labeled_graph labels edges =
  let g = Digraph.create () in
  List.iter (fun l -> ignore (Digraph.add_node g l)) labels;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

(* Figure 2 (KWS view). Node ids: *)
let a1 = 0
and a2 = 1
and b1 = 2
and b2 = 3
and b3 = 4
and b4 = 5
and c1 = 6
and c2 = 7
and d1 = 8
and d2 = 9

let fig2 () =
  labeled_graph
    [ "a"; "a"; "b"; "b"; "b"; "b"; "c"; "c"; "d"; "d" ]
    [
      (b2, b3); (b3, a2); (b2, b4); (b4, d1);
      (c2, b3) (* e2 *); (c2, b2); (d2, a1);
      (a1, b1); (b1, c1); (c1, a1) (* e5 *); (b1, a1);
    ]

let qad = { B.keywords = [ "a"; "d" ]; bound = 2 }

let e1 = (b2, d1)
and e2 = (c2, b3)
and e3 = (b2, a1)
and e4 = (b4, b3)
and e5 = (c1, a1)

(* ---- batch ---------------------------------------------------------------- *)

let test_batch_fig2_roots () =
  (* "Two trees T_b2 and T_d2 in Q(G)" *)
  check_roots "roots" [ b2; d2 ] (B.run (fig2 ()) qad)

let test_batch_fig2_kdist () =
  let kd = B.kdist_maps (fig2 ()) qad in
  let d_of i v = (Hashtbl.find kd.(i) v).B.dist in
  let next_of i v = (Hashtbl.find kd.(i) v).B.next in
  (* keyword a = index 0, keyword d = index 1 *)
  check Alcotest.int "kdist(b2)[d].dist" 2 (d_of 1 b2);
  check Alcotest.int "kdist(b2)[d].next" b4 (next_of 1 b2);
  check Alcotest.bool "kdist(c2)[d] undefined" true
    (not (Hashtbl.mem kd.(1) c2));
  check Alcotest.int "kdist(c2)[a]" 2 (d_of 0 c2);
  check Alcotest.int "kdist(c1)[a]" 1 (d_of 0 c1);
  check Alcotest.int "kdist(d2)[d]" 0 (d_of 1 d2);
  check Alcotest.int "self next" (-1) (next_of 1 d2)

let test_batch_deterministic_next () =
  (* Ties must break to the smallest successor id. *)
  let g = labeled_graph [ "x"; "k"; "k" ] [ (0, 1); (0, 2) ] in
  let kd = B.kdist_maps g { B.keywords = [ "k" ]; bound = 3 } in
  check Alcotest.int "min id" 1 (Hashtbl.find kd.(0) 0).B.next

let test_batch_bound_zero () =
  let g = labeled_graph [ "k"; "x" ] [ (1, 0) ] in
  check_roots "only keyword nodes" [ 0 ] (B.run g { B.keywords = [ "k" ]; bound = 0 })

let test_batch_unknown_keyword () =
  let g = labeled_graph [ "x" ] [] in
  check_roots "no match" [] (B.run g { B.keywords = [ "zzz" ]; bound = 5 })

let test_batch_tree_of () =
  let kd = B.kdist_maps (fig2 ()) qad in
  match B.tree_of kd b2 with
  | [ (0, pa); (1, pd) ] ->
      check intl "a path" [ b2; b3; a2 ] pa;
      check intl "d path" [ b2; b4; d1 ] pd
  | _ -> Alcotest.fail "wrong tree shape"

(* ---- incremental: paper examples ------------------------------------------ *)

let assert_sound msg t =
  try I.check_invariants t
  with Failure e -> Alcotest.failf "%s: invariant: %s" msg e

let test_example1 () =
  let t = I.init (fig2 ()) qad in
  I.insert_edge t (fst e1) (snd e1);
  let d = I.flush_delta t in
  (* kdist(b2)[d]: <2,b4> -> <1,d1>; kdist(c2)[d]: undefined -> <2,b2> *)
  (match I.kdist t b2 1 with
  | Some e ->
      check Alcotest.int "b2 dist" 1 e.B.dist;
      check Alcotest.int "b2 next" d1 e.B.next
  | None -> Alcotest.fail "kdist(b2)[d] missing");
  (match I.kdist t c2 1 with
  | Some e ->
      check Alcotest.int "c2 dist" 2 e.B.dist;
      check Alcotest.int "c2 next" b2 e.B.next
  | None -> Alcotest.fail "kdist(c2)[d] missing");
  check_roots "T_c2 added" [ c2 ] d.added;
  check_roots "none removed" [] d.removed;
  assert_sound "example 1" t

let test_example2 () =
  let t = I.init (fig2 ()) qad in
  I.insert_edge t (fst e1) (snd e1);
  ignore (I.flush_delta t);
  I.delete_edge t (fst e2) (snd e2);
  let d = I.flush_delta t in
  (* c2 can no longer root a match: its a-distance via b2 hits the bound. *)
  check_roots "T_c2 removed" [ c2 ] d.removed;
  check Alcotest.bool "no kdist(c2)[a]" true (I.kdist t c2 0 = None);
  check_roots "roots back to initial" [ b2; d2 ] (I.match_roots t);
  assert_sound "example 2" t

let test_example3 () =
  let t = I.init (fig2 ()) qad in
  let mk_ins (u, v) = Digraph.Insert (u, v) in
  let mk_del (u, v) = Digraph.Delete (u, v) in
  let d =
    I.apply_batch t [ mk_ins e1; mk_ins e3; mk_ins e4; mk_del e2; mk_del e5 ]
  in
  (* T_b4 and the new T'_c2 are added; the branches of T_b2 are replaced. *)
  check_roots "added" [ b4; c2 ] d.added;
  check_roots "removed" [] d.removed;
  check_roots "all roots" [ b2; b4; c2; d2 ] (I.match_roots t);
  (* T'_c2: path (c2,b3,a2) replaced by (c2,b2,a1); interleaving of
     insert e3 with delete e2. *)
  (match I.kdist t c2 0 with
  | Some e ->
      check Alcotest.int "c2 a-dist" 2 e.B.dist;
      check Alcotest.int "c2 a-next" b2 e.B.next
  | None -> Alcotest.fail "kdist(c2)[a] missing");
  (* T_b2's branches now (b2,a1) and (b2,d1). *)
  (match I.match_tree t b2 with
  | [ (0, pa); (1, pd) ] ->
      check intl "b2 a-branch" [ b2; a1 ] pa;
      check intl "b2 d-branch" [ b2; d1 ] pd
  | _ -> Alcotest.fail "wrong tree shape");
  (* c1 lost its a-entry (potential exceeds the bound). *)
  check Alcotest.bool "c1 a-entry gone" true (I.kdist t c1 0 = None);
  assert_sound "example 3" t

(* ---- incremental: unit behaviors ------------------------------------------- *)

let test_inc_insert_noop_beyond_bound () =
  let g = labeled_graph [ "x"; "x"; "k" ] [ (1, 2) ] in
  let t = I.init g { B.keywords = [ "k" ]; bound = 1 } in
  (* 0 -> 1 gives 0 a distance of 2 > bound: no entry may appear. *)
  I.insert_edge t 0 1;
  let d = I.flush_delta t in
  check_roots "nothing" [] (d.added @ d.removed);
  check Alcotest.bool "no entry" true (I.kdist t 0 0 = None);
  assert_sound "beyond bound" t

let test_inc_delete_alternate_path () =
  (* Equal-length alternate: deletion only rewires next. *)
  let g = labeled_graph [ "x"; "x"; "x"; "k" ] [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let t = I.init g { B.keywords = [ "k" ]; bound = 2 } in
  let before = Option.get (I.kdist t 0 0) in
  I.delete_edge t before.B.next 3;
  let d = I.flush_delta t in
  (* The intermediate node loses its only path; the root 0 survives via the
     alternate branch with the same distance. *)
  check_roots "only intermediate drops" [ before.B.next ] d.removed;
  let after = Option.get (I.kdist t 0 0) in
  check Alcotest.int "same dist" 2 after.B.dist;
  check Alcotest.bool "rewired" true (after.B.next <> before.B.next);
  assert_sound "alternate" t

let test_inc_add_node () =
  let g = labeled_graph [ "x" ] [] in
  let t = I.init g { B.keywords = [ "k"; "x" ]; bound = 1 } in
  let v = I.add_node t "k" in
  I.insert_edge t v 0;
  I.insert_edge t 0 v;
  let d = I.flush_delta t in
  (* v matches k at 0 hops and x at 1 hop; 0 matches x at 0 and k at 1. *)
  check_roots "both roots" [ 0; v ] d.added;
  assert_sound "add node" t

let test_inc_same_label_keywords () =
  let g = labeled_graph [ "k"; "k"; "x" ] [ (2, 0) ] in
  let t = I.init g { B.keywords = [ "k"; "k" ]; bound = 1 } in
  check_roots "duplicated keyword" [ 0; 1; 2 ] (I.match_roots t);
  I.delete_edge t 2 0;
  let d = I.flush_delta t in
  check_roots "2 drops" [ 2 ] d.removed;
  assert_sound "same-label keywords" t

let test_inc_cascading_delete () =
  (* A chain where the deletion invalidates a whole next-pointer subtree. *)
  let g =
    labeled_graph [ "x"; "x"; "x"; "x"; "k" ]
      [ (0, 1); (1, 2); (2, 3); (3, 4) ]
  in
  let t = I.init g { B.keywords = [ "k" ]; bound = 4 } in
  check Alcotest.int "all reach" 5 (I.n_matches t);
  I.delete_edge t 3 4;
  let d = I.flush_delta t in
  check_roots "chain collapses" [ 0; 1; 2; 3 ] d.removed;
  check_roots "only keyword node" [ 4 ] (I.match_roots t);
  assert_sound "cascade" t

let test_set_bound_raise () =
  let t = I.init (fig2 ()) { B.keywords = [ "a"; "d" ]; bound = 1 } in
  check_roots "b=1 roots" [ d2 ] (I.match_roots t);
  let d = I.set_bound t 2 in
  check_roots "raised adds b2" [ b2 ] d.added;
  check_roots "same as fresh init" (B.run (I.graph t) qad) (I.match_roots t);
  assert_sound "raise bound" t

let test_set_bound_lower () =
  let t = I.init (fig2 ()) qad in
  let d = I.set_bound t 1 in
  check_roots "lowered drops b2" [ b2 ] d.removed;
  check_roots "same as fresh init"
    (B.run (I.graph t) { B.keywords = [ "a"; "d" ]; bound = 1 })
    (I.match_roots t);
  assert_sound "lower bound" t

let test_set_bound_then_updates () =
  (* The session must stay fully functional after a bound change. *)
  let t = I.init (fig2 ()) { B.keywords = [ "a"; "d" ]; bound = 1 } in
  ignore (I.set_bound t 2);
  ignore
    (I.apply_batch t
       [ Digraph.Insert (fst e1, snd e1); Digraph.Delete (fst e2, snd e2) ]);
  assert_sound "bound change then updates" t

let prop_set_bound =
  QCheck.Test.make ~name:"set_bound == fresh init" ~count:200
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 9 in
          let* labels = list_repeat n (oneofl [ "k1"; "k2"; "x" ]) in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* b0 = int_range 0 4 in
          let* b1 = int_range 0 4 in
          return (labels, edges, b0, b1)))
    (fun (labels, edges, b0, b1) ->
      let g = labeled_graph labels edges in
      let t = I.init g { B.keywords = [ "k1"; "k2" ]; bound = b0 } in
      ignore (I.set_bound t b1);
      I.check_invariants t;
      norm (I.match_roots t)
      = norm (B.run (I.graph t) { B.keywords = [ "k1"; "k2" ]; bound = b1 }))

(* ---- randomized properties -------------------------------------------------- *)

let gen_case =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* labels = list_repeat n (oneofl [ "k1"; "k2"; "x" ]) in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    let* edges = list_size (int_bound (2 * n)) edge in
    let* ops = list_size (int_bound 14) (pair bool edge) in
    let* b = int_range 0 4 in
    let* kws =
      oneofl [ [ "k1" ]; [ "k1"; "k2" ]; [ "k1"; "k2"; "x" ]; [ "k2"; "k2" ] ]
    in
    return (labels, edges, ops, b, kws))

let arb_case =
  QCheck.make
    ~print:(fun (labels, edges, ops, b, kws) ->
      Printf.sprintf "labels=%s edges=%s ops=%s b=%d kws=%s"
        (String.concat "," labels)
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges))
        (String.concat ";"
           (List.map
              (fun (i, (u, v)) ->
                Printf.sprintf "%s(%d,%d)" (if i then "+" else "-") u v)
              ops))
        b (String.concat "," kws))
    gen_case

let dedup_conflicts ops =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (_, e) ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    ops

let updates_of ops =
  List.map
    (fun (i, (u, v)) -> if i then Digraph.Insert (u, v) else Digraph.Delete (u, v))
    ops

let prop_inc_matches_batch grouped =
  QCheck.Test.make
    ~name:(Printf.sprintf "IncKWS%s == batch rerun" (if grouped then "" else "n"))
    ~count:400 arb_case
    (fun (labels, edges, ops, b, kws) ->
      let ops = dedup_conflicts ops in
      let g = labeled_graph labels edges in
      let q = { B.keywords = kws; bound = b } in
      let t = I.init ~grouped g q in
      let old_roots = norm (I.match_roots t) in
      let d = I.apply_batch t (updates_of ops) in
      I.check_invariants t;
      let fresh = norm (B.run (I.graph t) q) in
      let now = norm (I.match_roots t) in
      let applied =
        norm
          (d.added @ List.filter (fun r -> not (List.mem r d.removed)) old_roots)
      in
      now = fresh && applied = fresh
      && List.for_all (fun r -> List.mem r old_roots) d.removed
      && List.for_all (fun r -> not (List.mem r old_roots)) d.added)

let prop_inc_sequences =
  QCheck.Test.make ~name:"IncKWS sound across successive batches" ~count:200
    QCheck.(
      pair arb_case
        (make
           Gen.(
             list_size (int_bound 10)
               (pair bool (pair (int_bound 9) (int_bound 9))))))
    (fun ((labels, edges, ops, b, kws), more) ->
      let n = List.length labels in
      let clamp ops =
        dedup_conflicts
          (List.map (fun (i, (u, v)) -> (i, (u mod n, v mod n))) ops)
      in
      let g = labeled_graph labels edges in
      let q = { B.keywords = kws; bound = b } in
      let t = I.init g q in
      ignore (I.apply_batch t (updates_of (clamp ops)));
      I.check_invariants t;
      ignore (I.apply_batch t (updates_of (clamp more)));
      I.check_invariants t;
      norm (I.match_roots t) = norm (B.run (I.graph t) q))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_kws"
    [
      ( "batch",
        [
          Alcotest.test_case "fig2 roots" `Quick test_batch_fig2_roots;
          Alcotest.test_case "fig2 kdist" `Quick test_batch_fig2_kdist;
          Alcotest.test_case "deterministic next" `Quick
            test_batch_deterministic_next;
          Alcotest.test_case "bound zero" `Quick test_batch_bound_zero;
          Alcotest.test_case "unknown keyword" `Quick test_batch_unknown_keyword;
          Alcotest.test_case "tree extraction" `Quick test_batch_tree_of;
        ] );
      ( "paper examples",
        [
          Alcotest.test_case "Example 1 (IncKWS+)" `Quick test_example1;
          Alcotest.test_case "Example 2 (IncKWS-)" `Quick test_example2;
          Alcotest.test_case "Example 3 (IncKWS batch)" `Quick test_example3;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "insert beyond bound" `Quick
            test_inc_insert_noop_beyond_bound;
          Alcotest.test_case "delete alternate path" `Quick
            test_inc_delete_alternate_path;
          Alcotest.test_case "add node" `Quick test_inc_add_node;
          Alcotest.test_case "duplicate keywords" `Quick
            test_inc_same_label_keywords;
          Alcotest.test_case "cascading delete" `Quick test_inc_cascading_delete;
        ] );
      ( "variable bound (Remark 4.2)",
        Alcotest.test_case "raise" `Quick test_set_bound_raise
        :: Alcotest.test_case "lower" `Quick test_set_bound_lower
        :: Alcotest.test_case "then updates" `Quick test_set_bound_then_updates
        :: qsuite [ prop_set_bound ] );
      ( "properties",
        qsuite
          [
            prop_inc_matches_batch true;
            prop_inc_matches_batch false;
            prop_inc_sequences;
          ] );
    ]
