(* Tests for graph simulation (batch fixpoint and incremental engine),
   cross-validated against a naive textbook fixpoint oracle. *)

open Ig_graph
module P = Ig_iso.Pattern
module S = Ig_sim.Sim
module I = Ig_sim.Inc_sim

let check = Alcotest.check

let labeled_graph labels edges =
  let g = Digraph.create () in
  List.iter (fun l -> ignore (Digraph.add_node g l)) labels;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

let norm pairs = List.sort compare pairs

(* Naive greatest-fixpoint oracle: start from label candidates, repeatedly
   remove unsupported pairs until stable. *)
let oracle p g =
  let sets = S.candidates p g in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun u set ->
        let bad = ref [] in
        Hashtbl.iter
          (fun v () ->
            let ok =
              List.for_all
                (fun u' ->
                  let found = ref false in
                  Digraph.iter_succ
                    (fun w -> if Hashtbl.mem sets.(u') w then found := true)
                    g v;
                  !found)
                (P.succ p u)
            in
            if not ok then bad := v :: !bad)
          set;
        if !bad <> [] then begin
          changed := true;
          List.iter (fun v -> Hashtbl.remove set v) !bad
        end)
      sets
  done;
  sets

(* ---- batch ----------------------------------------------------------------- *)

let test_sim_path_pattern () =
  let g = labeled_graph [ "a"; "b"; "c"; "a" ] [ (0, 1); (1, 2); (3, 1) ] in
  let p = P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2) ] in
  let r = S.run p g in
  (* Both a-nodes reach b which reaches c. *)
  check Alcotest.bool "a0" true (S.mem r 0 0);
  check Alcotest.bool "a3" true (S.mem r 0 3);
  check Alcotest.bool "b" true (S.mem r 1 1);
  check Alcotest.bool "c" true (S.mem r 2 2)

let test_sim_vs_iso () =
  (* A cycle pattern simulates into an infinite unrolling: the 2-cycle
     pattern matches a path-shaped... no — simulation needs successors
     forever, so only the actual cycle survives; but unlike ISO the same
     node may simulate several pattern nodes. *)
  let g = labeled_graph [ "a"; "a" ] [ (0, 1); (1, 0) ] in
  let p = P.create ~labels:[ "a"; "a" ] ~edges:[ (0, 1); (1, 0) ] in
  let r = S.run p g in
  check Alcotest.int "all four pairs" 4 (List.length (S.pairs r))

let test_sim_empty () =
  let g = labeled_graph [ "a"; "b" ] [] in
  let p = P.create ~labels:[ "a"; "b" ] ~edges:[ (0, 1) ] in
  (* The b pattern node has no out-requirements, so node b simulates it
     even with no edges; the a side dies for lack of support. *)
  check
    Alcotest.(list (pair int int))
    "only the sink pair" [ (1, 1) ]
    (norm (S.pairs (S.run p g)))

let test_sim_dangling_requirement () =
  (* b exists but has no c successor: the whole chain collapses. *)
  let g = labeled_graph [ "a"; "b"; "x" ] [ (0, 1); (1, 2) ] in
  let p = P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2) ] in
  check Alcotest.int "collapses" 0 (List.length (S.pairs (S.run p g)))

(* ---- incremental ------------------------------------------------------------- *)

let test_inc_insert_creates () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let p = P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2) ] in
  let t = I.init g p in
  (* (c, node c) holds from the start: no out-requirements. *)
  check Alcotest.int "sink pair only" 1 (I.n_pairs t);
  I.insert_edge t 1 2;
  let d = I.flush_delta t in
  check Alcotest.int "the chain revalidates" 2 (List.length d.added);
  check Alcotest.int "three total" 3 (I.n_pairs t);
  I.check_invariants t

let test_inc_delete_cascades () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let p = P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2) ] in
  let t = I.init g p in
  check Alcotest.int "three" 3 (I.n_pairs t);
  I.delete_edge t 1 2;
  let d = I.flush_delta t in
  (* (2,c) keeps simulating (no out-requirements), the rest cascade away. *)
  check Alcotest.int "two removed" 2 (List.length d.removed);
  check Alcotest.bool "c stays" true (I.mem t 2 2);
  I.check_invariants t

let test_inc_cancel () =
  let g = labeled_graph [ "a"; "b" ] [ (0, 1) ] in
  let p = P.create ~labels:[ "a"; "b" ] ~edges:[ (0, 1) ] in
  let t = I.init g p in
  let d = I.apply_batch t [ Digraph.Delete (0, 1); Digraph.Insert (0, 1) ] in
  check Alcotest.int "net zero" 0 (List.length d.added + List.length d.removed);
  I.check_invariants t

let prop_batch_matches_oracle =
  QCheck.Test.make ~name:"prune == naive fixpoint" ~count:300
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 8 in
          let* labels = list_repeat n (oneofl [ "a"; "b" ]) in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* pat =
            oneofl
              [
                ([ "a"; "b" ], [ (0, 1) ]);
                ([ "a"; "b"; "a" ], [ (0, 1); (1, 2) ]);
                ([ "a"; "a" ], [ (0, 1); (1, 0) ]);
                ([ "a"; "b"; "b" ], [ (0, 1); (0, 2); (1, 2) ]);
                ([ "b" ], [ (0, 0) ]);
              ]
          in
          return (labels, edges, pat)))
    (fun (labels, edges, (pl, pe)) ->
      let g = labeled_graph labels edges in
      let p = P.create ~labels:pl ~edges:pe in
      norm (S.pairs (S.run p g)) = norm (S.pairs (oracle p g)))

let prop_inc_matches_batch =
  QCheck.Test.make ~name:"IncSim == batch rerun" ~count:300
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 8 in
          let* labels = list_repeat n (oneofl [ "a"; "b" ]) in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* ops = list_size (int_bound 12) (pair bool edge) in
          let* pat =
            oneofl
              [
                ([ "a"; "b" ], [ (0, 1) ]);
                ([ "a"; "b"; "a" ], [ (0, 1); (1, 2) ]);
                ([ "a"; "a" ], [ (0, 1); (1, 0) ]);
                ([ "a"; "b"; "b" ], [ (0, 1); (0, 2); (1, 2) ]);
              ]
          in
          return (labels, edges, ops, pat)))
    (fun (labels, edges, ops, (pl, pe)) ->
      let g = labeled_graph labels edges in
      let p = P.create ~labels:pl ~edges:pe in
      let t = I.init g p in
      let old_pairs = norm (Ig_sim.Sim.pairs (I.relation t)) in
      let d =
        I.apply_batch t
          (List.map
             (fun (i, (u, v)) ->
               if i then Digraph.Insert (u, v) else Digraph.Delete (u, v))
             ops)
      in
      I.check_invariants t;
      let now = norm (S.pairs (I.relation t)) in
      let fresh = norm (S.pairs (S.run p (I.graph t))) in
      let applied =
        norm
          (d.added
          @ List.filter (fun x -> not (List.mem x d.removed)) old_pairs)
      in
      now = fresh && applied = fresh)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_sim"
    [
      ( "batch",
        Alcotest.test_case "path pattern" `Quick test_sim_path_pattern
        :: Alcotest.test_case "cycle (vs iso)" `Quick test_sim_vs_iso
        :: Alcotest.test_case "empty" `Quick test_sim_empty
        :: Alcotest.test_case "dangling requirement" `Quick
             test_sim_dangling_requirement
        :: qsuite [ prop_batch_matches_oracle ] );
      ( "incremental",
        Alcotest.test_case "insert creates" `Quick test_inc_insert_creates
        :: Alcotest.test_case "delete cascades" `Quick test_inc_delete_cascades
        :: Alcotest.test_case "cancel" `Quick test_inc_cancel
        :: qsuite [ prop_inc_matches_batch ] );
    ]
