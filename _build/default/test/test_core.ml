(* Integration tests through the public Core API: the four uniform sessions
   driven side by side over one evolving graph. *)

let check = Alcotest.check

let build_graph () =
  let g = Core.Digraph.create () in
  (* A small social-ish graph: people (p), groups (g), posts (t). *)
  let people = List.init 6 (fun _ -> Core.Digraph.add_node g "person") in
  let groups = List.init 2 (fun _ -> Core.Digraph.add_node g "group") in
  let posts = List.init 3 (fun _ -> Core.Digraph.add_node g "post") in
  let e u v = ignore (Core.Digraph.add_edge g u v) in
  (match (people, groups, posts) with
  | [ p0; p1; p2; p3; p4; p5 ], [ g0; g1 ], [ t0; t1; t2 ] ->
      e p0 p1; e p1 p2; e p2 p0;        (* a friend triangle *)
      e p3 p4; e p4 p5;                 (* a chain *)
      e p0 g0; e p3 g0; e p5 g1;        (* memberships *)
      e g0 t0; e g1 t1; e p1 t2         (* posts *)
  | _ -> assert false);
  g

let test_sessions_integrate () =
  let mk () = build_graph () in
  (* KWS: roots that can see a group and a post within 2 hops. *)
  let kws =
    Core.Kws_session.create (mk ())
      { Core.Kws.Batch.keywords = [ "group"; "post" ]; bound = 2 }
  in
  (* RPQ: person . person* . group *)
  let rpq =
    Core.Rpq_session.create (mk ())
      (Core.Regex.parse_exn "person . person* . group")
  in
  let scc = Core.Scc_session.create (mk ()) () in
  let iso =
    Core.Iso_session.create (mk ())
      (Core.Iso.Pattern.create ~labels:[ "person"; "person"; "person" ]
         ~edges:[ (0, 1); (1, 2); (2, 0) ])
  in
  check Alcotest.bool "kws nonempty" true (Core.Kws_session.answer kws <> []);
  check Alcotest.bool "rpq nonempty" true (Core.Rpq_session.answer rpq <> []);
  check Alcotest.int "one triangle" 1 (List.length (Core.Iso_session.answer iso));
  check Alcotest.int "components" 9
    (List.length (Core.Scc_session.answer scc));
  (* The same batch hits all four sessions. *)
  let batch = [ Core.Digraph.Delete (1, 2); Core.Digraph.Insert (5, 3) ] in
  let dk = Core.Kws_session.update kws batch in
  let dr = Core.Rpq_session.update rpq batch in
  let ds = Core.Scc_session.update scc batch in
  let di = Core.Iso_session.update iso batch in
  (* Triangle broken. *)
  check Alcotest.int "iso removed" 1 (List.length di.Core.Iso.Inc.removed);
  (* Triangle split (1 comp) plus the chain 3-4-5 merged by (5,3): the
     three singletons retire too. *)
  check Alcotest.int "scc removals" 4 (List.length ds.Core.Scc.Inc.removed);
  ignore dk;
  ignore dr;
  (* Every engine still agrees with its batch algorithm. *)
  Ig_kws.Inc_kws.check_invariants kws;
  Ig_rpq.Inc_rpq.check_invariants rpq;
  Ig_scc.Inc_scc.check_invariants scc;
  Ig_iso.Inc_iso.check_invariants iso

let test_workload_roundtrip () =
  (* Generate a profile graph + updates, drive sessions to completion. *)
  let rng = Random.State.make [| 7 |] in
  let g = Core.Workload.Profiles.instantiate ~scale:0.01 ~rng
      Core.Workload.Profiles.dbpedia_like
  in
  let ups = Core.Workload.Updates.generate ~rng g ~size:50 () in
  let kws_q = Core.Workload.Queries.kws ~rng g ~m:2 ~b:2 in
  let kws = Core.Kws_session.create (Core.Digraph.copy g) kws_q in
  let scc = Core.Scc_session.create (Core.Digraph.copy g) () in
  ignore (Core.Kws_session.update kws ups);
  ignore (Core.Scc_session.update scc ups);
  Ig_kws.Inc_kws.check_invariants kws;
  Ig_scc.Inc_scc.check_invariants scc

let test_io_through_core () =
  let g = build_graph () in
  let s = Format.asprintf "%a" Core.Io.write g in
  let g' = Core.Io.of_string s in
  check Alcotest.int "edges preserved" (Core.Digraph.n_edges g)
    (Core.Digraph.n_edges g')

let () =
  Alcotest.run "core"
    [
      ( "integration",
        [
          Alcotest.test_case "four sessions, one batch" `Quick
            test_sessions_integrate;
          Alcotest.test_case "workload roundtrip" `Quick test_workload_roundtrip;
          Alcotest.test_case "io" `Quick test_io_through_core;
        ] );
    ]
