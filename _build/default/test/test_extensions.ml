(* Tests for the convenience/extension APIs layered on the engines:
   RPQ witness paths and distances, the SCC condensation export, and KWS
   match costs. *)

open Ig_graph

let check = Alcotest.check

let labeled_graph labels edges =
  let g = Digraph.create () in
  List.iter (fun l -> ignore (Digraph.add_node g l)) labels;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

(* ---- RPQ witness paths ------------------------------------------------- *)

let word_of g path = List.map (fun v -> Digraph.label_name g v) path

let path_is_valid g = function
  | [] | [ _ ] -> true
  | path ->
      let rec ok = function
        | a :: (b :: _ as rest) -> Digraph.mem_edge g a b && ok rest
        | _ -> true
      in
      ok path

let test_rpq_witness_basic () =
  let g =
    labeled_graph [ "a"; "b"; "b"; "c" ] [ (0, 1); (1, 2); (2, 3); (1, 3) ]
  in
  let q = Ig_nfa.Regex.parse_exn "a . b* . c" in
  let t = Ig_rpq.Inc_rpq.create g q in
  check Alcotest.(option int) "distance" (Some 2)
    (Ig_rpq.Inc_rpq.distance t 0 3);
  (match Ig_rpq.Inc_rpq.witness_path t 0 3 with
  | None -> Alcotest.fail "no witness"
  | Some path ->
      check Alcotest.int "shortest length" 3 (List.length path);
      check Alcotest.bool "valid edges" true (path_is_valid g path);
      check Alcotest.bool "word matches" true
        (Ig_nfa.Regex.matches q (word_of g path)));
  check Alcotest.(option int) "non-match" None (Ig_rpq.Inc_rpq.distance t 1 3)

let test_rpq_witness_self_match () =
  let g = labeled_graph [ "a" ] [] in
  let t = Ig_rpq.Inc_rpq.create g (Ig_nfa.Regex.parse_exn "a") in
  check Alcotest.(option int) "self distance" (Some 0)
    (Ig_rpq.Inc_rpq.distance t 0 0);
  check
    Alcotest.(option (list int))
    "self path" (Some [ 0 ])
    (Ig_rpq.Inc_rpq.witness_path t 0 0)

let test_rpq_witness_after_updates () =
  let g = labeled_graph [ "a"; "b"; "c"; "b" ] [ (0, 1); (1, 2) ] in
  let q = Ig_nfa.Regex.parse_exn "a . b . c" in
  let t = Ig_rpq.Inc_rpq.create g q in
  ignore
    (Ig_rpq.Inc_rpq.apply_batch t
       [ Digraph.Delete (0, 1); Digraph.Insert (0, 3); Digraph.Insert (3, 2) ]);
  match Ig_rpq.Inc_rpq.witness_path t 0 2 with
  | None -> Alcotest.fail "match lost"
  | Some path ->
      check Alcotest.bool "rerouted" true (List.mem 3 path);
      check Alcotest.bool "valid" true
        (path_is_valid (Ig_rpq.Inc_rpq.graph t) path)

let prop_rpq_witnesses =
  QCheck.Test.make ~name:"every match pair has a valid shortest witness"
    ~count:200
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 8 in
          let* labels = list_repeat n (oneofl [ "a"; "b" ]) in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* qsrc =
            oneofl [ "a . b"; "a . b*"; "a . (a + b)* . b"; "b . a . b" ]
          in
          return (labels, edges, qsrc)))
    (fun (labels, edges, qsrc) ->
      let g = labeled_graph labels edges in
      let q = Ig_nfa.Regex.parse_exn qsrc in
      let t = Ig_rpq.Inc_rpq.create g q in
      List.for_all
        (fun (u, v) ->
          match
            (Ig_rpq.Inc_rpq.distance t u v, Ig_rpq.Inc_rpq.witness_path t u v)
          with
          | Some d, Some path ->
              List.length path = d + 1
              && path_is_valid g path
              && List.hd path = u
              && List.hd (List.rev path) = v
              && Ig_nfa.Regex.matches q (word_of g path)
          | _ -> false)
        (Ig_rpq.Inc_rpq.matches t))

(* ---- SCC condensation export -------------------------------------------- *)

let test_scc_contracted () =
  let t =
    Ig_scc.Inc_scc.init
      (labeled_graph
         [ "x"; "x"; "x"; "x"; "x" ]
         [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4) ])
  in
  let gc, members = Ig_scc.Inc_scc.contracted t in
  check Alcotest.int "3 contracted nodes" 3 (Digraph.n_nodes gc);
  (* Edges go from higher ids to lower ids (reverse topological creation
     order). *)
  Digraph.iter_edges
    (fun a b ->
      check Alcotest.bool "rank order" true (a > b))
    gc;
  (* Members partition V. *)
  let total = Array.fold_left (fun acc ms -> acc + List.length ms) 0 members in
  check Alcotest.int "partition" 5 total

let test_scc_contracted_after_updates () =
  let t =
    Ig_scc.Inc_scc.init (labeled_graph [ "x"; "x"; "x" ] [ (0, 1); (1, 2) ])
  in
  ignore
    (Ig_scc.Inc_scc.apply_batch t [ Digraph.Insert (2, 0) ]);
  let gc, members = Ig_scc.Inc_scc.contracted t in
  check Alcotest.int "merged to one" 1 (Digraph.n_nodes gc);
  check Alcotest.int "all members" 3 (List.length members.(0))

(* ---- KWS match cost -------------------------------------------------------- *)

let test_kws_match_cost () =
  let g =
    labeled_graph [ "x"; "k1"; "k2" ] [ (0, 1); (0, 2); (1, 2) ]
  in
  let t =
    Ig_kws.Inc_kws.init g { Ig_kws.Batch.keywords = [ "k1"; "k2" ]; bound = 2 }
  in
  (* Root 0: dist 1 to k1, dist 1 to k2. Root 1: dist 0 + dist 1. *)
  check Alcotest.(option int) "root 0" (Some 2) (Ig_kws.Inc_kws.match_cost t 0);
  check Alcotest.(option int) "root 1" (Some 1) (Ig_kws.Inc_kws.match_cost t 1);
  check Alcotest.(option int) "non root" None (Ig_kws.Inc_kws.match_cost t 2)

let prop_kws_cost_is_shortest =
  QCheck.Test.make ~name:"match cost equals sum of true shortest distances"
    ~count:200
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 9 in
          let* labels = list_repeat n (oneofl [ "k1"; "k2"; "x" ]) in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* b = int_range 0 4 in
          return (labels, edges, b)))
    (fun (labels, edges, b) ->
      let g = labeled_graph labels edges in
      let q = { Ig_kws.Batch.keywords = [ "k1"; "k2" ]; bound = b } in
      let t = Ig_kws.Inc_kws.init g q in
      let shortest_to label r =
        (* Reference: forward BFS from r to the nearest node of the label. *)
        let d = Traverse.bfs ~dir:`Forward g [ r ] in
        Hashtbl.fold
          (fun v dist acc ->
            if Digraph.label_name g v = label then min acc dist else acc)
          d max_int
      in
      List.for_all
        (fun r ->
          match Ig_kws.Inc_kws.match_cost t r with
          | None -> false
          | Some c -> c = shortest_to "k1" r + shortest_to "k2" r)
        (Ig_kws.Inc_kws.match_roots t))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "extensions"
    [
      ( "rpq witnesses",
        Alcotest.test_case "basic" `Quick test_rpq_witness_basic
        :: Alcotest.test_case "self match" `Quick test_rpq_witness_self_match
        :: Alcotest.test_case "after updates" `Quick
             test_rpq_witness_after_updates
        :: qsuite [ prop_rpq_witnesses ] );
      ( "scc condensation",
        [
          Alcotest.test_case "export" `Quick test_scc_contracted;
          Alcotest.test_case "after updates" `Quick
            test_scc_contracted_after_updates;
        ] );
      ( "kws cost",
        Alcotest.test_case "basic" `Quick test_kws_match_cost
        :: qsuite [ prop_kws_cost_is_shortest ] );
    ]
