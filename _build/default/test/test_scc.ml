(* Tests for batch Tarjan and the IncSCC engine (paper Section 5.3).

   The worked examples of the paper (Examples 6-9) depend on a drawing we
   only have in prose, so each claimed behavior is exercised on a
   purpose-built fixture with the same structure: inter-component insertion
   that merges a cycle in the contracted graph (Example 7), intra-component
   reverse-frond deletion that leaves the component intact (Example 8), and
   frond deletion that splits a component three ways (Example 9). *)

open Ig_graph
module T = Ig_scc.Tarjan
module I = Ig_scc.Inc_scc

let check = Alcotest.check

let norm comps =
  List.sort compare (List.map (fun c -> List.sort compare c) comps)

let comps_t = Alcotest.(list (list int))

let check_comps msg expected actual = check comps_t msg (norm expected) (norm actual)

let graph_of_edges n edges =
  let g = Digraph.create () in
  for _ = 1 to n do
    ignore (Digraph.add_node g "x")
  done;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

(* ---- batch Tarjan ------------------------------------------------------ *)

let test_tarjan_two_cycles () =
  (* 0-1-2 cycle -> 3-4 cycle *)
  let g =
    graph_of_edges 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ]
  in
  check_comps "components" [ [ 0; 1; 2 ]; [ 3; 4 ] ] (T.scc g)

let test_tarjan_dag () =
  let g = graph_of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  check_comps "all singletons" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] (T.scc g)

let test_tarjan_self_loop () =
  let g = graph_of_edges 2 [ (0, 0); (0, 1) ] in
  check_comps "self loop" [ [ 0 ]; [ 1 ] ] (T.scc g)

let test_tarjan_order_sinks_first () =
  (* 0 -> 1 -> 2 chain of singletons: output must list 2 before 1 before 0. *)
  let g = graph_of_edges 3 [ (0, 1); (1, 2) ] in
  check comps_t "sinks first" [ [ 2 ]; [ 1 ]; [ 0 ] ] (T.scc g)

let test_tarjan_empty () =
  let g = graph_of_edges 0 [] in
  check comps_t "empty" [] (T.scc g)

let test_tarjan_big_cycle () =
  let n = 5000 in
  (* Also checks the traversal is iterative (no stack overflow). *)
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  let g = graph_of_edges n edges in
  match T.scc g with
  | [ c ] -> check Alcotest.int "one big scc" n (List.length c)
  | cs -> Alcotest.failf "expected 1 component, got %d" (List.length cs)

let test_tarjan_restricted () =
  let g =
    graph_of_edges 6 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4) ]
  in
  let certs = Array.init 6 (fun _ -> T.fresh_cert ()) in
  let groups =
    T.run_with_cert g
      ~restrict:(fun v -> v <= 1)
      ~nodes:[ 0; 1 ]
      ~cert:(fun v -> certs.(v))
  in
  check_comps "restricted run" [ [ 0; 1 ] ] groups

(* ---- IncSCC ------------------------------------------------------------- *)

let engine ?(config = I.inc_config) n edges =
  I.init ~config (graph_of_edges n edges)

let assert_sound msg t =
  (try I.check_invariants t
   with Failure e -> Alcotest.failf "%s: invariant: %s" msg e);
  check_comps msg (T.scc (I.graph t)) (I.components t)

let test_inc_init () =
  let t = engine 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
  check Alcotest.int "n components" 2 (I.n_components t);
  check Alcotest.bool "same comp" true (I.same_component t 0 2);
  check Alcotest.bool "diff comp" false (I.same_component t 0 3);
  check Alcotest.(list int) "component of" [ 3; 4 ]
    (List.sort compare (I.component_of t 4));
  assert_sound "init" t

let test_inc_insert_intra () =
  let t = engine 3 [ (0, 1); (1, 2); (2, 0) ] in
  I.insert_edge t 0 2;
  let d = I.flush_delta t in
  check Alcotest.int "no removals" 0 (List.length d.removed);
  check Alcotest.int "no additions" 0 (List.length d.added);
  assert_sound "intra insert" t

let test_inc_insert_inter_consistent () =
  (* Edge in rank-consistent direction: counters only. *)
  let t = engine 4 [ (0, 1); (1, 0); (2, 3); (3, 2); (0, 2) ] in
  I.insert_edge t 1 3;
  let d = I.flush_delta t in
  check Alcotest.int "stable" 0 (List.length d.removed + List.length d.added);
  assert_sound "consistent inter insert" t

let test_inc_insert_merge () =
  (* Example 7 analog: two 2-cycles linked 0..1 -> 2..3; inserting 3 -> 0
     forms a cycle in Gc and merges them. *)
  let t = engine 4 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2) ] in
  I.insert_edge t 3 0;
  let d = I.flush_delta t in
  check Alcotest.int "two removed" 2 (List.length d.removed);
  check Alcotest.int "one added" 1 (List.length d.added);
  check_comps "merged" [ [ 0; 1; 2; 3 ] ] d.added;
  assert_sound "merge" t

let test_inc_insert_merge_long_path () =
  (* Cycle in Gc through several intermediate singleton components. *)
  let t = engine 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  I.insert_edge t 4 0;
  assert_sound "long merge" t;
  check Alcotest.int "one comp" 1 (I.n_components t)

let test_inc_insert_reorder_only () =
  (* Rank violation without a cycle: reallocation only, output stable. *)
  let t = engine 6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  (* Two chains; link the tail of one to the head of the other both ways
     rank-wise: 5 -> 0 may or may not violate depending on init order, and
     2 -> 3 the other way. Neither creates a cycle. *)
  I.insert_edge t 5 0;
  assert_sound "reorder A" t;
  let t2 = engine 6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  I.insert_edge t2 2 3;
  assert_sound "reorder B" t2;
  check Alcotest.int "still 6 comps" 6 (I.n_components t2)

let test_inc_delete_inter () =
  let t = engine 4 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2); (0, 3) ] in
  I.delete_edge t 1 2;
  let d = I.flush_delta t in
  check Alcotest.int "stable" 0 (List.length d.removed + List.length d.added);
  assert_sound "inter delete" t;
  (* Deleting the second parallel contracted edge must also be fine. *)
  I.delete_edge t 0 3;
  assert_sound "inter delete last" t

let test_inc_delete_fast_path () =
  (* Example 8 analog: a chord whose deletion keeps the component strongly
     connected must take the O(1) witness path. *)
  let t = engine 3 [ (0, 1); (1, 2); (2, 0); (0, 2) ] in
  I.reset_stats t;
  (* (0,2) is a chord: cycle 0-1-2 survives without it. Whether the O(1)
     path applies depends on which edge the DFS used; deleting the chord
     never splits. *)
  I.delete_edge t 0 2;
  let d = I.flush_delta t in
  check Alcotest.int "stable" 0 (List.length d.removed + List.length d.added);
  assert_sound "chord delete" t

let test_inc_delete_split () =
  (* Example 9 analog: deleting (2,0) from the 3-cycle splits it into three
     singleton components. *)
  let t = engine 3 [ (0, 1); (1, 2); (2, 0) ] in
  I.delete_edge t 2 0;
  let d = I.flush_delta t in
  check_comps "removed whole" [ [ 0; 1; 2 ] ] d.removed;
  check_comps "three singletons" [ [ 0 ]; [ 1 ]; [ 2 ] ] d.added;
  assert_sound "split" t

let test_inc_split_then_merge () =
  let t = engine 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  I.delete_edge t 3 0;
  assert_sound "after split" t;
  I.insert_edge t 3 0;
  assert_sound "after re-merge" t;
  check Alcotest.int "whole again" 1 (I.n_components t)

let test_inc_add_node () =
  let t = engine 2 [ (0, 1) ] in
  let v = I.add_node t "fresh" in
  let d = I.flush_delta t in
  check_comps "new singleton" [ [ v ] ] d.added;
  I.insert_edge t 1 v;
  I.insert_edge t v 0;
  assert_sound "wired in" t;
  check Alcotest.int "merged all" 1 (I.n_components t)

let test_inc_duplicate_ops_are_noops () =
  let t = engine 3 [ (0, 1); (1, 2); (2, 0) ] in
  I.insert_edge t 0 1 (* already present *);
  I.delete_edge t 0 2 (* absent *);
  let d = I.flush_delta t in
  check Alcotest.int "stable" 0 (List.length d.removed + List.length d.added);
  assert_sound "noops" t

let test_inc_batch_example3_shape () =
  (* Example 3/8 analog: a batch mixing intra deletions (splitting), intra
     insertions, and inter insertions (merging). *)
  let t =
    engine 8
      [
        (0, 1); (1, 2); (2, 0);    (* scc A *)
        (3, 4); (4, 5); (5, 3);    (* scc B *)
        (2, 3);                    (* A -> B *)
        (6, 7);                    (* singletons *)
      ]
  in
  let delta =
    I.apply_batch t
      [
        Digraph.Delete (2, 0);     (* splits A *)
        Digraph.Insert (4, 3);     (* intra chord in B *)
        Digraph.Insert (5, 6);     (* B -> 6 *)
        Digraph.Insert (7, 0);     (* 7 -> old A fragment *)
        Digraph.Insert (0, 3);     (* fragment -> B: no cycle *)
      ]
  in
  assert_sound "batch" t;
  (* Delta must transform old output into new output. *)
  ignore delta

let test_inc_batch_cycle_through_new_edges () =
  (* Two inter insertions that only form a cycle together. *)
  let t = engine 4 [ (0, 1); (2, 3) ] in
  let d = I.apply_batch t [ Digraph.Insert (1, 2); Digraph.Insert (3, 0) ] in
  assert_sound "batch cycle" t;
  check Alcotest.int "merged" 1 (I.n_components t);
  check_comps "added comp" [ [ 0; 1; 2; 3 ] ] d.added

let test_inc_delta_algebra () =
  (* (old \ removed) ∪ added = new, across a nontrivial batch. *)
  let t = engine 6 [ (0, 1); (1, 0); (2, 3); (3, 2); (4, 5); (5, 4); (1, 2) ] in
  let old_comps = norm (I.components t) in
  let d =
    I.apply_batch t
      [ Digraph.Insert (3, 0); Digraph.Delete (4, 5); Digraph.Insert (3, 4) ]
  in
  let removed = norm d.removed and added = norm d.added in
  List.iter
    (fun c ->
      check Alcotest.bool "removed existed" true (List.mem c old_comps))
    removed;
  let survived = List.filter (fun c -> not (List.mem c removed)) old_comps in
  check_comps "delta algebra" (survived @ added) (I.components t)

let test_inc_configs_agree () =
  let edges = [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2); (5, 0) ] in
  let batch =
    [
      Digraph.Delete (2, 0);
      Digraph.Insert (4, 5);
      Digraph.Insert (0, 2);
      Digraph.Delete (3, 4);
    ]
  in
  let run config =
    let t = engine ~config 6 edges in
    ignore (I.apply_batch t batch);
    assert_sound "config" t;
    norm (I.components t)
  in
  let a = run I.inc_config in
  let b = run I.incn_config in
  let c = run I.dyn_config in
  check comps_t "inc = incn" a b;
  check comps_t "inc = dyn" a c

(* ---- deletion fast-path edge cases -------------------------------------- *)

let test_inc_self_loop_singleton () =
  (* A self-loop is an intra-component edge of a singleton: inserting and
     deleting it must never touch the output. *)
  let t = engine 3 [ (0, 1) ] in
  I.insert_edge t 2 2;
  let d = I.flush_delta t in
  check Alcotest.int "loop insert stable" 0
    (List.length d.removed + List.length d.added);
  assert_sound "singleton loop insert" t;
  I.delete_edge t 2 2;
  let d = I.flush_delta t in
  check Alcotest.int "loop delete stable" 0
    (List.length d.removed + List.length d.added);
  assert_sound "singleton loop delete" t

let test_inc_self_loop_in_component () =
  (* Self-loop inside a 3-cycle component: it is never the tree arc into its
     endpoint (a DFS parent is always a distinct node), so deleting it can
     never split, whether or not it was a lowlink witness. *)
  let t = engine 3 [ (0, 1); (1, 2); (2, 0); (1, 1) ] in
  check Alcotest.int "one component" 1 (I.n_components t);
  I.delete_edge t 1 1;
  let d = I.flush_delta t in
  check Alcotest.int "stable" 0 (List.length d.removed + List.length d.added);
  assert_sound "loop delete inside scc" t;
  I.insert_edge t 1 1;
  assert_sound "loop re-insert inside scc" t;
  check Alcotest.int "still one component" 1 (I.n_components t)

let test_inc_duplicate_insert_then_delete () =
  (* The digraph is simple, so a duplicate insertion collapses into the
     existing edge; the later deletion removes the edge for real and must
     split — the lazy certificate recorded at init (which used (0,1) as a
     tree arc or witness) has to notice despite the no-op in between. *)
  let t = engine 3 [ (0, 1); (1, 2); (2, 0) ] in
  I.insert_edge t 0 1 (* duplicate: no-op *);
  assert_sound "after duplicate insert" t;
  I.delete_edge t 0 1;
  let d = I.flush_delta t in
  check_comps "split after real delete" [ [ 0 ]; [ 1 ]; [ 2 ] ] d.added;
  assert_sound "after real delete" t;
  I.insert_edge t 0 1;
  assert_sound "after re-insert" t;
  check Alcotest.int "merged back" 1 (I.n_components t)

let test_inc_delete_fast_path_witness_count () =
  (* Complete digraph on 4 nodes: 12 intra-component edges, of which at most
     3 are DFS tree arcs and at most 4 are recorded lowlink witnesses
     (Wdirect is one edge per node). Deleting each edge on a fresh engine —
     every deletion keeps the component strongly connected — must therefore
     resolve at least 12 - 3 - 4 = 5 deletions through the O(1) witness
     check, whatever DFS order init happened to record. *)
  let all_edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v -> if u <> v then Some (u, v) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.int "K4 edge count" 12 (List.length all_edges);
  let fast = ref 0 in
  List.iter
    (fun (u, v) ->
      let t = engine 4 all_edges in
      I.reset_stats t;
      I.delete_edge t u v;
      let d = I.flush_delta t in
      check Alcotest.int "still strongly connected" 0
        (List.length d.removed + List.length d.added);
      assert_sound "K4 single delete" t;
      fast := !fast + (I.stats t).I.fast_deletes)
    all_edges;
  check Alcotest.bool "O(1) witness check exercised" true (!fast >= 5)

let test_inc_fast_path_disabled_in_dyn () =
  (* The DynSCC stand-in pays a local recomputation instead: same outputs,
     zero fast deletes on the identical workload. *)
  let all_edges = [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ] in
  let fast config =
    let n = ref 0 in
    List.iter
      (fun (u, v) ->
        let t = engine ~config 3 all_edges in
        I.reset_stats t;
        I.delete_edge t u v;
        assert_sound "dense triangle delete" t;
        n := !n + (I.stats t).I.fast_deletes)
      all_edges;
    !n
  in
  check Alcotest.bool "inc uses the fast path" true (fast I.inc_config >= 1);
  check Alcotest.int "dyn never does" 0 (fast I.dyn_config)

(* ---- randomized properties --------------------------------------------- *)

let gen_graph_and_updates =
  QCheck.Gen.(
    let* n = int_range 2 14 in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    let* edges = list_size (int_bound (3 * n)) edge in
    let* ops = list_size (int_bound (2 * n)) (pair bool edge) in
    return (n, edges, ops))

let arb_case =
  QCheck.make
    ~print:(fun (n, edges, ops) ->
      Printf.sprintf "n=%d edges=[%s] ops=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges))
        (String.concat ";"
           (List.map
              (fun (ins, (u, v)) ->
                Printf.sprintf "%s(%d,%d)" (if ins then "+" else "-") u v)
              ops)))
    gen_graph_and_updates

let updates_of_ops ops =
  List.map
    (fun (ins, (u, v)) ->
      if ins then Digraph.Insert (u, v) else Digraph.Delete (u, v))
    ops

(* Batches must not contain an insert and a delete of the same edge
   (paper Section 4.2 assumes conflicts are pre-filtered). *)
let dedup_conflicts ops =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (_, e) ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    ops

let prop_inc_matches_batch config =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "IncSCC(eager=%b,fast=%b,group=%b) == Tarjan rerun"
         config.I.eager_cert config.I.delete_fast_path config.I.group_batch)
    ~count:300 arb_case
    (fun (n, edges, ops) ->
      let ops = dedup_conflicts ops in
      let t = engine ~config n edges in
      let old_comps = norm (I.components t) in
      let d = I.apply_batch t (updates_of_ops ops) in
      I.check_invariants t;
      let fresh = norm (T.scc (I.graph t)) in
      let removed = norm d.removed and added = norm d.added in
      let survived =
        List.filter (fun c -> not (List.mem c removed)) old_comps
      in
      norm (I.components t) = fresh
      && List.for_all (fun c -> List.mem c old_comps) removed
      && norm (survived @ added) = fresh)

let prop_inc_many_batches =
  QCheck.Test.make ~name:"IncSCC stays sound across successive batches"
    ~count:150
    QCheck.(pair arb_case (pair arb_case arb_case))
    (fun ((n, edges, ops1), ((_, _, ops2), (_, _, ops3))) ->
      let clamp ops =
        dedup_conflicts
          (List.map (fun (i, (u, v)) -> (i, (u mod n, v mod n))) ops)
      in
      let t = engine n edges in
      List.iter
        (fun ops ->
          ignore (I.apply_batch t (updates_of_ops (clamp ops)));
          I.check_invariants t)
        [ clamp ops1; clamp ops2; clamp ops3 ];
      norm (I.components t) = norm (T.scc (I.graph t)))

let prop_unit_updates =
  QCheck.Test.make ~name:"unit insert/delete keep engine sound" ~count:200
    arb_case
    (fun (n, edges, ops) ->
      ignore n;
      let t = engine n edges in
      List.iter
        (fun (ins, (u, v)) ->
          if ins then I.insert_edge t u v else I.delete_edge t u v;
          I.check_invariants t)
        ops;
      norm (I.components t) = norm (T.scc (I.graph t)))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_scc"
    [
      ( "tarjan",
        [
          Alcotest.test_case "two cycles" `Quick test_tarjan_two_cycles;
          Alcotest.test_case "dag" `Quick test_tarjan_dag;
          Alcotest.test_case "self loop" `Quick test_tarjan_self_loop;
          Alcotest.test_case "sinks first" `Quick test_tarjan_order_sinks_first;
          Alcotest.test_case "empty" `Quick test_tarjan_empty;
          Alcotest.test_case "big cycle (iterative)" `Quick
            test_tarjan_big_cycle;
          Alcotest.test_case "restricted run" `Quick test_tarjan_restricted;
        ] );
      ( "inc unit",
        [
          Alcotest.test_case "init" `Quick test_inc_init;
          Alcotest.test_case "intra insert" `Quick test_inc_insert_intra;
          Alcotest.test_case "consistent inter insert" `Quick
            test_inc_insert_inter_consistent;
          Alcotest.test_case "merge (Example 7)" `Quick test_inc_insert_merge;
          Alcotest.test_case "merge long path" `Quick
            test_inc_insert_merge_long_path;
          Alcotest.test_case "reorder only" `Quick test_inc_insert_reorder_only;
          Alcotest.test_case "inter delete" `Quick test_inc_delete_inter;
          Alcotest.test_case "chord delete (Example 8)" `Quick
            test_inc_delete_fast_path;
          Alcotest.test_case "split (Example 9)" `Quick test_inc_delete_split;
          Alcotest.test_case "split then merge" `Quick test_inc_split_then_merge;
          Alcotest.test_case "add node" `Quick test_inc_add_node;
          Alcotest.test_case "no-ops" `Quick test_inc_duplicate_ops_are_noops;
        ] );
      ( "deletion fast path",
        [
          Alcotest.test_case "self-loop on singleton" `Quick
            test_inc_self_loop_singleton;
          Alcotest.test_case "self-loop inside component" `Quick
            test_inc_self_loop_in_component;
          Alcotest.test_case "duplicate insert then delete" `Quick
            test_inc_duplicate_insert_then_delete;
          Alcotest.test_case "witness check count (K4)" `Quick
            test_inc_delete_fast_path_witness_count;
          Alcotest.test_case "disabled in DynSCC" `Quick
            test_inc_fast_path_disabled_in_dyn;
        ] );
      ( "inc batch",
        [
          Alcotest.test_case "mixed batch" `Quick test_inc_batch_example3_shape;
          Alcotest.test_case "cycle through new edges" `Quick
            test_inc_batch_cycle_through_new_edges;
          Alcotest.test_case "delta algebra" `Quick test_inc_delta_algebra;
          Alcotest.test_case "configs agree" `Quick test_inc_configs_agree;
        ] );
      ( "inc properties",
        qsuite
          [
            prop_inc_matches_batch I.inc_config;
            prop_inc_matches_batch I.incn_config;
            prop_inc_matches_batch I.dyn_config;
            prop_inc_many_batches;
            prop_unit_updates;
          ] );
    ]
