(* Tests for the regex AST/parser and the Glushkov NFA construction,
   cross-validated against the Brzozowski-derivative oracle. *)

open Ig_nfa
module R = Regex

let check = Alcotest.check

(* ---- parser ------------------------------------------------------------- *)

let parses s expected () =
  match R.parse s with
  | Error e -> Alcotest.failf "parse %S failed: %s" s e
  | Ok q -> check Alcotest.string "ast" expected (R.to_string q)

let rejects s () =
  match R.parse s with
  | Error _ -> ()
  | Ok q -> Alcotest.failf "parse %S unexpectedly gave %s" s (R.to_string q)

let test_roundtrip () =
  List.iter
    (fun s ->
      let q = R.parse_exn s in
      let q' = R.parse_exn (R.to_string q) in
      check Alcotest.string ("roundtrip " ^ s) (R.to_string q) (R.to_string q'))
    [
      "a";
      "eps";
      "a . b . c";
      "a + b + c";
      "(a + b)* . c";
      "c . (b . a + c)* . c";
      "a**";
      "a b c" (* juxtaposition concat *);
    ]

let test_precedence () =
  (* * binds tighter than ., which binds tighter than +. *)
  let q = R.parse_exn "a + b . c*" in
  check Alcotest.string "prec" "a + b . c*" (R.to_string q);
  match q with
  | R.Alt (R.Label "a", R.Concat (R.Label "b", R.Star (R.Label "c"))) -> ()
  | _ -> Alcotest.fail "wrong shape"

let test_size_labels () =
  let q = R.parse_exn "c . (b . a + c)* . c" in
  check Alcotest.int "size" 5 (R.size q);
  check Alcotest.(list string) "labels" [ "c"; "b"; "a" ] (R.labels q);
  check Alcotest.int "eps size" 0 (R.size R.Empty)

let test_matches_oracle () =
  let q = R.parse_exn "c . (b . a + c)* . c" in
  let yes w = check Alcotest.bool (String.concat "" w) true (R.matches q w) in
  let no w = check Alcotest.bool (String.concat "" w) false (R.matches q w) in
  yes [ "c"; "c" ];
  yes [ "c"; "b"; "a"; "c" ];
  yes [ "c"; "c"; "c" ];
  yes [ "c"; "b"; "a"; "c"; "b"; "a"; "c" ];
  no [ "c" ];
  no [ "c"; "b"; "c" ];
  no [];
  no [ "b"; "a" ]

let test_eps () =
  let q = R.parse_exn "eps" in
  check Alcotest.bool "empty word" true (R.matches q []);
  check Alcotest.bool "nonempty" false (R.matches q [ "a" ])

(* ---- Glushkov NFA --------------------------------------------------------- *)

let compile_str s =
  let it = Ig_graph.Interner.create () in
  let q = R.parse_exn s in
  (it, q, Nfa.compile it q)

let accepts it a word =
  Nfa.accepts a (List.map (fun l -> Ig_graph.Interner.intern it l) word)

let test_nfa_basic () =
  let it, _, a = compile_str "a . b" in
  check Alcotest.int "states" 3 (Nfa.n_states a);
  check Alcotest.bool "ab" true (accepts it a [ "a"; "b" ]);
  check Alcotest.bool "a" false (accepts it a [ "a" ]);
  check Alcotest.bool "nullable" false (Nfa.nullable a)

let test_nfa_star_nullable () =
  let it, _, a = compile_str "a*" in
  check Alcotest.bool "nullable" true (Nfa.nullable a);
  check Alcotest.bool "eps" true (accepts it a []);
  check Alcotest.bool "aaa" true (accepts it a [ "a"; "a"; "a" ]);
  check Alcotest.bool "b" false (accepts it a [ "b" ])

let test_nfa_prev_inverts_next () =
  let it, _, a = compile_str "c . (b . a + c)* . c" in
  let syms = List.map (Ig_graph.Interner.intern it) [ "a"; "b"; "c" ] in
  for s = 0 to Nfa.n_states a - 1 do
    List.iter
      (fun sym ->
        List.iter
          (fun s' ->
            check Alcotest.bool "prev contains" true
              (List.mem s (Nfa.prev a s' sym)))
          (Nfa.next a s sym))
      syms
  done;
  (* And nothing spurious. *)
  for s' = 0 to Nfa.n_states a - 1 do
    List.iter
      (fun sym ->
        List.iter
          (fun s ->
            check Alcotest.bool "next contains" true
              (List.mem s' (Nfa.next a s sym)))
          (Nfa.prev a s' sym))
      syms
  done

(* Random regexes over {a,b}; NFA must agree with the derivative oracle. *)
let gen_regex =
  QCheck.Gen.(
    sized_size (int_bound 6) @@ fix (fun self n ->
        if n <= 0 then
          oneof [ return R.Empty; map (fun c -> R.Label c) (oneofl [ "a"; "b" ]) ]
        else
          frequency
            [
              (2, map (fun c -> R.Label c) (oneofl [ "a"; "b" ]));
              (2, map2 (fun x y -> R.Concat (x, y)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun x y -> R.Alt (x, y)) (self (n / 2)) (self (n / 2)));
              (1, map (fun x -> R.Star x) (self (n - 1)));
            ]))

let arb_regex = QCheck.make ~print:R.to_string gen_regex

let prop_nfa_matches_oracle =
  QCheck.Test.make ~name:"Glushkov NFA == derivative oracle" ~count:500
    QCheck.(
      pair arb_regex (list_of_size Gen.(int_bound 6) (oneofl [ "a"; "b" ])))
    (fun (q, w) ->
      let it = Ig_graph.Interner.create () in
      let a = Nfa.compile it q in
      let syms = List.map (Ig_graph.Interner.intern it) w in
      Nfa.accepts a syms = R.matches q w)

let prop_printer_parses_back =
  QCheck.Test.make ~name:"to_string parses back to same language" ~count:300
    QCheck.(
      pair arb_regex (list_of_size Gen.(int_bound 5) (oneofl [ "a"; "b" ])))
    (fun (q, w) ->
      let q' = R.parse_exn (R.to_string q) in
      R.matches q w = R.matches q' w)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_nfa"
    [
      ( "parser",
        [
          Alcotest.test_case "simple label" `Quick (parses "a" "a");
          Alcotest.test_case "concat dot" `Quick (parses "a.b" "a . b");
          Alcotest.test_case "juxtaposition" `Quick (parses "a b" "a . b");
          Alcotest.test_case "alt" `Quick (parses "a+b" "a + b");
          Alcotest.test_case "star" `Quick (parses "a*" "a*");
          Alcotest.test_case "grouping" `Quick (parses "(a+b).c" "(a + b) . c");
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "reject dangling star" `Quick (rejects "*a");
          Alcotest.test_case "reject empty" `Quick (rejects "");
          Alcotest.test_case "reject unbalanced" `Quick (rejects "(a");
          Alcotest.test_case "reject bad char" `Quick (rejects "a & b");
          Alcotest.test_case "reject trailing plus" `Quick (rejects "a +");
        ] );
      ( "regex",
        [
          Alcotest.test_case "size & labels" `Quick test_size_labels;
          Alcotest.test_case "paper query words" `Quick test_matches_oracle;
          Alcotest.test_case "eps" `Quick test_eps;
        ] );
      ( "nfa",
        Alcotest.test_case "basic" `Quick test_nfa_basic
        :: Alcotest.test_case "star nullable" `Quick test_nfa_star_nullable
        :: Alcotest.test_case "prev inverts next" `Quick
             test_nfa_prev_inverts_next
        :: qsuite [ prop_nfa_matches_oracle; prop_printer_parses_back ] );
    ]
