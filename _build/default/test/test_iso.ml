(* Tests for VF2 and IncISO: pattern plumbing, enumeration against a
   brute-force oracle, and incremental equivalence with batch reruns. *)

open Ig_graph
module P = Ig_iso.Pattern
module V = Ig_iso.Vf2
module I = Ig_iso.Inc_iso

let check = Alcotest.check

let labeled_graph labels edges =
  let g = Digraph.create () in
  List.iter (fun l -> ignore (Digraph.add_node g l)) labels;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

let canon_set p ms =
  List.sort compare (List.map (fun m -> V.canon_of p m) ms)

(* Brute-force oracle: try all injective assignments. *)
let brute g p =
  let n = Digraph.n_nodes g and k = P.n_nodes p in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let m = Array.make k (-1) in
  let rec go u =
    if u = k then begin
      let ok =
        List.for_all (fun (a, b) -> Digraph.mem_edge g m.(a) m.(b)) (P.edges p)
      in
      if ok then begin
        let c = V.canon_of p m in
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.replace seen c ();
          acc := Array.copy m :: !acc
        end
      end
    end
    else
      for v = 0 to n - 1 do
        if
          Digraph.label_name g v = P.label p u
          && not (Array.exists (fun x -> x = v) m)
        then begin
          m.(u) <- v;
          go (u + 1);
          m.(u) <- -1
        end
      done
  in
  go 0;
  !acc

(* ---- pattern ---------------------------------------------------------------- *)

let test_pattern_basics () =
  let p = P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2); (2, 0) ] in
  check Alcotest.int "nodes" 3 (P.n_nodes p);
  check Alcotest.int "edges" 3 (P.n_edges p);
  check Alcotest.int "diameter" 1 (P.diameter p);
  check Alcotest.string "label" "b" (P.label p 1)

let test_pattern_diameter_path () =
  let p = P.create ~labels:[ "a"; "b"; "c"; "d" ] ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  check Alcotest.int "path diameter" 3 (P.diameter p)

let test_pattern_single_node () =
  let p = P.create ~labels:[ "a" ] ~edges:[] in
  check Alcotest.int "diameter 0" 0 (P.diameter p)

let test_pattern_rejects_disconnected () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Pattern.create: pattern is not weakly connected")
    (fun () -> ignore (P.create ~labels:[ "a"; "b" ] ~edges:[]))

let test_pattern_rejects_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Pattern.create: empty pattern") (fun () ->
      ignore (P.create ~labels:[] ~edges:[]))

let test_matching_order_connected () =
  let p =
    P.create ~labels:[ "a"; "b"; "c"; "d" ] ~edges:[ (0, 1); (0, 2); (2, 3) ]
  in
  let order = P.matching_order p in
  check Alcotest.int "is permutation" 4
    (List.length (List.sort_uniq compare (Array.to_list order)))

(* ---- VF2 ---------------------------------------------------------------------- *)

let test_vf2_triangle () =
  let g =
    labeled_graph [ "a"; "b"; "c"; "a" ]
      [ (0, 1); (1, 2); (2, 0); (3, 1); (2, 3) ]
  in
  let p = P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2); (2, 0) ] in
  (* Two a-nodes, both closing a triangle with b and c. *)
  check Alcotest.int "two triangles" 2 (List.length (V.find_all g p))

let test_vf2_automorphism_dedup () =
  (* Symmetric pattern a->b, a->b mapped on symmetric data counts once per
     subgraph. Pattern: x -> y with both labeled "a"; data: 2-cycle of "a". *)
  let g = labeled_graph [ "a"; "a" ] [ (0, 1); (1, 0) ] in
  let p = P.create ~labels:[ "a"; "a" ] ~edges:[ (0, 1) ] in
  (* Subgraphs: edge (0,1) and edge (1,0): two distinct matches. *)
  check Alcotest.int "two directed edges" 2 (List.length (V.find_all g p));
  (* Symmetric 2-cycle pattern on the same data: one subgraph only. *)
  let p2 = P.create ~labels:[ "a"; "a" ] ~edges:[ (0, 1); (1, 0) ] in
  check Alcotest.int "one 2-cycle" 1 (List.length (V.find_all g p2))

let test_vf2_monomorphism_not_induced () =
  (* Extra data edges must not block a match (non-induced semantics). *)
  let g = labeled_graph [ "a"; "b" ] [ (0, 1); (1, 0) ] in
  let p = P.create ~labels:[ "a"; "b" ] ~edges:[ (0, 1) ] in
  check Alcotest.int "matches despite extra edge" 1 (List.length (V.find_all g p))

let test_vf2_labels_matter () =
  let g = labeled_graph [ "a"; "x" ] [ (0, 1) ] in
  let p = P.create ~labels:[ "a"; "b" ] ~edges:[ (0, 1) ] in
  check Alcotest.int "no match" 0 (List.length (V.find_all g p))

let test_vf2_unknown_label () =
  let g = labeled_graph [ "a" ] [] in
  let p = P.create ~labels:[ "zzz" ] ~edges:[] in
  check Alcotest.int "unknown label" 0 (List.length (V.find_all g p))

let test_vf2_self_loop () =
  let g = labeled_graph [ "a"; "a" ] [ (0, 0); (0, 1) ] in
  let p = P.create ~labels:[ "a" ] ~edges:[ (0, 0) ] in
  check Alcotest.int "self loop" 1 (List.length (V.find_all g p))

let test_vf2_allowed_filter () =
  let g = labeled_graph [ "a"; "b"; "a"; "b" ] [ (0, 1); (2, 3) ] in
  let p = P.create ~labels:[ "a"; "b" ] ~edges:[ (0, 1) ] in
  let only_low v = v <= 1 in
  check Alcotest.int "filtered" 1
    (List.length (V.find_all ~allowed:only_low g p))

(* ---- IncISO -------------------------------------------------------------------- *)

let assert_sound msg t =
  try I.check_invariants t
  with Failure e -> Alcotest.failf "%s: invariant: %s" msg e

let tri_pattern () =
  P.create ~labels:[ "a"; "b"; "c" ] ~edges:[ (0, 1); (1, 2); (2, 0) ]

let test_inc_insert_completes_triangle () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let t = I.init g (tri_pattern ()) in
  check Alcotest.int "none yet" 0 (I.n_matches t);
  I.insert_edge t 2 0;
  let d = I.flush_delta t in
  check Alcotest.int "one added" 1 (List.length d.added);
  check Alcotest.int "total" 1 (I.n_matches t);
  assert_sound "triangle" t

let test_inc_delete_breaks_match () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  let t = I.init g (tri_pattern ()) in
  check Alcotest.int "one" 1 (I.n_matches t);
  I.delete_edge t 1 2;
  let d = I.flush_delta t in
  check Alcotest.int "removed" 1 (List.length d.removed);
  check Alcotest.int "none" 0 (I.n_matches t);
  assert_sound "break" t

let test_inc_shared_edge_multi_matches () =
  (* Two triangles share edge (0,1); deleting it kills both. *)
  let g =
    labeled_graph [ "a"; "b"; "c"; "c" ]
      [ (0, 1); (1, 2); (2, 0); (1, 3); (3, 0) ]
  in
  let t = I.init g (tri_pattern ()) in
  check Alcotest.int "two" 2 (I.n_matches t);
  I.delete_edge t 0 1;
  let d = I.flush_delta t in
  check Alcotest.int "both removed" 2 (List.length d.removed);
  assert_sound "shared edge" t

let test_inc_batch_cancel () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  let t = I.init g (tri_pattern ()) in
  let d =
    I.apply_batch t [ Digraph.Delete (1, 2); Digraph.Insert (1, 2) ]
  in
  check Alcotest.int "net zero" 0 (List.length d.added + List.length d.removed);
  check Alcotest.int "still one" 1 (I.n_matches t);
  assert_sound "cancel" t

let test_inc_add_node_single_pattern () =
  let g = labeled_graph [ "x" ] [] in
  let t = I.init g (P.create ~labels:[ "a" ] ~edges:[]) in
  check Alcotest.int "none" 0 (I.n_matches t);
  ignore (I.add_node t "a");
  let d = I.flush_delta t in
  check Alcotest.int "one" 1 (List.length d.added);
  assert_sound "single node" t

let test_inc_grouped_vs_unit () =
  let edges = [ (0, 1); (1, 2); (3, 1) ] in
  let labels = [ "a"; "b"; "c"; "a" ] in
  let batch =
    [ Digraph.Insert (2, 0); Digraph.Insert (2, 3); Digraph.Delete (0, 1) ]
  in
  let run grouped =
    let t = I.init ~grouped (labeled_graph labels edges) (tri_pattern ()) in
    ignore (I.apply_batch t batch);
    assert_sound "variant" t;
    canon_set (I.pattern t) (I.matches t)
  in
  check Alcotest.bool "same result" true (run true = run false)

(* ---- properties ------------------------------------------------------------------ *)

let gen_case =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* labels = list_repeat n (oneofl [ "a"; "b" ]) in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    let* edges = list_size (int_bound (2 * n)) edge in
    let* ops = list_size (int_bound 10) (pair bool edge) in
    let* pat =
      oneofl
        [
          ([ "a"; "b" ], [ (0, 1) ]);
          ([ "a"; "b"; "a" ], [ (0, 1); (1, 2) ]);
          ([ "a"; "a" ], [ (0, 1); (1, 0) ]);
          ([ "a"; "b"; "b" ], [ (0, 1); (0, 2); (1, 2) ]);
          ([ "b" ], [ (0, 0) ]);
        ]
    in
    return (labels, edges, ops, pat))

let arb_case =
  QCheck.make
    ~print:(fun (labels, edges, ops, (pl, pe)) ->
      Printf.sprintf "labels=%s edges=%s ops=%s pat=(%s|%s)"
        (String.concat "" labels)
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges))
        (String.concat ";"
           (List.map
              (fun (i, (u, v)) ->
                Printf.sprintf "%s(%d,%d)" (if i then "+" else "-") u v)
              ops))
        (String.concat "" pl)
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) pe)))
    gen_case

let dedup_conflicts ops =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (_, e) ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    ops

let prop_vf2_matches_brute =
  QCheck.Test.make ~name:"VF2 == brute force" ~count:300 arb_case
    (fun (labels, edges, _, (pl, pe)) ->
      let g = labeled_graph labels edges in
      let p = P.create ~labels:pl ~edges:pe in
      canon_set p (V.find_all g p) = canon_set p (brute g p))

let prop_inc_matches_batch grouped =
  QCheck.Test.make
    ~name:(Printf.sprintf "IncISO%s == VF2 rerun" (if grouped then "" else "n"))
    ~count:300 arb_case
    (fun (labels, edges, ops, (pl, pe)) ->
      let ops = dedup_conflicts ops in
      let g = labeled_graph labels edges in
      let p = P.create ~labels:pl ~edges:pe in
      let t = I.init ~grouped g p in
      let old_set = canon_set p (I.matches t) in
      let d =
        I.apply_batch t
          (List.map
             (fun (i, (u, v)) ->
               if i then Digraph.Insert (u, v) else Digraph.Delete (u, v))
             ops)
      in
      I.check_invariants t;
      let fresh = canon_set p (V.find_all (I.graph t) p) in
      let now = canon_set p (I.matches t) in
      let added = canon_set p d.added and removed = canon_set p d.removed in
      now = fresh
      && List.for_all (fun c -> List.mem c old_set) removed
      && List.for_all (fun c -> not (List.mem c old_set)) added
      && List.sort compare
           (added @ List.filter (fun c -> not (List.mem c removed)) old_set)
         = fresh)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_iso"
    [
      ( "pattern",
        [
          Alcotest.test_case "basics" `Quick test_pattern_basics;
          Alcotest.test_case "path diameter" `Quick test_pattern_diameter_path;
          Alcotest.test_case "single node" `Quick test_pattern_single_node;
          Alcotest.test_case "rejects disconnected" `Quick
            test_pattern_rejects_disconnected;
          Alcotest.test_case "rejects empty" `Quick test_pattern_rejects_empty;
          Alcotest.test_case "matching order" `Quick
            test_matching_order_connected;
        ] );
      ( "vf2",
        Alcotest.test_case "triangles" `Quick test_vf2_triangle
        :: Alcotest.test_case "automorphism dedup" `Quick
             test_vf2_automorphism_dedup
        :: Alcotest.test_case "monomorphism" `Quick
             test_vf2_monomorphism_not_induced
        :: Alcotest.test_case "labels" `Quick test_vf2_labels_matter
        :: Alcotest.test_case "unknown label" `Quick test_vf2_unknown_label
        :: Alcotest.test_case "self loop" `Quick test_vf2_self_loop
        :: Alcotest.test_case "allowed filter" `Quick test_vf2_allowed_filter
        :: qsuite [ prop_vf2_matches_brute ] );
      ( "incremental",
        [
          Alcotest.test_case "insert completes" `Quick
            test_inc_insert_completes_triangle;
          Alcotest.test_case "delete breaks" `Quick test_inc_delete_breaks_match;
          Alcotest.test_case "shared edge" `Quick
            test_inc_shared_edge_multi_matches;
          Alcotest.test_case "batch cancel" `Quick test_inc_batch_cancel;
          Alcotest.test_case "add node single pattern" `Quick
            test_inc_add_node_single_pattern;
          Alcotest.test_case "grouped vs unit" `Quick test_inc_grouped_vs_unit;
        ] );
      ( "properties",
        qsuite [ prop_inc_matches_batch true; prop_inc_matches_batch false ] );
    ]
