(* Tests for RPQNFA (batch) and IncRPQ, including behavioral analogs of the
   paper's Examples 4-5 and randomized equivalence with batch recomputation. *)

open Ig_graph
open Ig_nfa
module B = Ig_rpq.Batch
module I = Ig_rpq.Inc_rpq

let check = Alcotest.check

let pairs_t = Alcotest.(list (pair int int))

let norm ps = List.sort compare ps

let check_pairs msg expected actual =
  check pairs_t msg (norm expected) (norm actual)

let labeled_graph labels edges =
  let g = Digraph.create () in
  List.iter (fun l -> ignore (Digraph.add_node g l)) labels;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

let q s = Regex.parse_exn s

(* ---- batch --------------------------------------------------------------- *)

let test_batch_path () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  check_pairs "abc" [ (0, 2) ] (B.run_query g (q "a . b . c"));
  check_pairs "ab" [ (0, 1) ] (B.run_query g (q "a . b"));
  check_pairs "b" [ (1, 1) ] (B.run_query g (q "b"))

let test_batch_single_node_match () =
  (* A path of length 0 is a single node: (v, v) matches iff l(v) ∈ L(Q). *)
  let g = labeled_graph [ "a"; "b" ] [] in
  check_pairs "singleton" [ (0, 0) ] (B.run_query g (q "a"));
  check_pairs "star" [ (0, 0) ] (B.run_query g (q "a . b*"))

let test_batch_star_cycle () =
  (* a-cycle: a . a* matches every ordered pair including self. *)
  let g = labeled_graph [ "a"; "a"; "a" ] [ (0, 1); (1, 2); (2, 0) ] in
  let expect =
    List.concat_map (fun u -> List.map (fun v -> (u, v)) [ 0; 1; 2 ]) [ 0; 1; 2 ]
  in
  check_pairs "all pairs" expect (B.run_query g (q "a . a*"))

let test_batch_paper_query () =
  (* Example 4 flavor: Q = c . (b . a + c)* . c over a small graph where the
     c-labeled nodes chain through b,a detours. *)
  let g =
    labeled_graph
      [ "c"; "b"; "a"; "c"; "c" ]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 3) ]
  in
  (* Paths: 0(c)→1(b)→2(a)→3(c): "cbac" match (0,3).
     0(c)→3(c): "cc" match (0,3). 3(c)→4(c): "cc" match (3,4).
     0→1→2→3→4: "cbacc" match (0,4); 0→3→4 "ccc" match (0,4). *)
  check_pairs "paper query"
    [ (0, 3); (3, 4); (0, 4) ]
    (B.run_query g (q "c . (b . a + c)* . c"))

let test_batch_no_sources () =
  let g = labeled_graph [ "x"; "y" ] [ (0, 1) ] in
  check_pairs "no sources" [] (B.run_query g (q "a . b"))

let test_batch_multi_source () =
  let g = labeled_graph [ "a"; "a"; "b" ] [ (0, 2); (1, 2) ] in
  check_pairs "two sources" [ (0, 2); (1, 2) ] (B.run_query g (q "a . b"))

(* ---- incremental ---------------------------------------------------------- *)

let assert_sound msg t =
  (try I.check_invariants t
   with Failure e -> Alcotest.failf "%s: invariant: %s" msg e)

let test_inc_insert_creates_match () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  let t = I.create g (q "a . b . c") in
  check_pairs "initially none" [] (I.matches t);
  I.insert_edge t 1 2;
  let d = I.flush_delta t in
  check_pairs "added" [ (0, 2) ] d.added;
  check_pairs "none removed" [] d.removed;
  check Alcotest.bool "is_match" true (I.is_match t 0 2);
  assert_sound "insert" t

let test_inc_delete_removes_match () =
  let g = labeled_graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let t = I.create g (q "a . b . c") in
  I.delete_edge t 0 1;
  let d = I.flush_delta t in
  check_pairs "removed" [ (0, 2) ] d.removed;
  check Alcotest.int "no matches" 0 (I.n_matches t);
  assert_sound "delete" t

let test_inc_alternate_path_survives () =
  (* Two disjoint paths from source to target; deleting one keeps the
     match (only dist changes). *)
  let g =
    labeled_graph
      [ "a"; "b"; "c"; "b"; "b" ]
      [ (0, 1); (1, 2); (0, 3); (3, 4); (4, 2) ]
  in
  let t = I.create g (q "a . b* . c") in
  check Alcotest.bool "match" true (I.is_match t 0 2);
  I.delete_edge t 1 2;
  let d = I.flush_delta t in
  check_pairs "no removals" [] d.removed;
  check Alcotest.bool "still match" true (I.is_match t 0 2);
  assert_sound "longer path" t

let test_inc_interleaving_example5 () =
  (* Example 5 flavor: within one batch, a deletion breaks the recorded
     shortest path while an insertion provides a replacement; the match
     survives and ΔO is empty. *)
  let g =
    labeled_graph
      [ "a"; "b"; "c"; "b" ]
      [ (0, 1); (1, 2) ]
  in
  let t = I.create g (q "a . b . c") in
  let d =
    I.apply_batch t [ Digraph.Delete (0, 1); Digraph.Insert (0, 3); Digraph.Insert (3, 2) ]
  in
  check_pairs "no net change" [] (d.added @ d.removed);
  check Alcotest.bool "match kept" true (I.is_match t 0 2);
  assert_sound "interleave" t

let test_inc_cancelling_updates () =
  let g = labeled_graph [ "a"; "b" ] [ (0, 1) ] in
  let t = I.create g (q "a . b") in
  I.delete_edge t 0 1;
  I.insert_edge t 0 1;
  let d = I.flush_delta t in
  check_pairs "net zero" [] (d.added @ d.removed);
  assert_sound "cancel" t

let test_inc_add_node () =
  let g = labeled_graph [ "a"; "b" ] [ (0, 1) ] in
  let t = I.create g (q "a . b* . a") in
  let v = I.add_node t "a" in
  (* New a-node: a source (and its own 0-length path does not match a.b*.a). *)
  I.insert_edge t 1 v;
  let d = I.flush_delta t in
  check_pairs "new match" [ (0, v) ] d.added;
  assert_sound "add node" t

let test_inc_new_source_matches_self () =
  let g = labeled_graph [ "b" ] [] in
  let t = I.create g (q "a") in
  let v = I.add_node t "a" in
  let d = I.flush_delta t in
  check_pairs "self match" [ (v, v) ] d.added;
  assert_sound "self" t

let test_inc_duplicate_noops () =
  let g = labeled_graph [ "a"; "b" ] [ (0, 1) ] in
  let t = I.create g (q "a . b") in
  I.insert_edge t 0 1;
  I.delete_edge t 1 0;
  let d = I.flush_delta t in
  check_pairs "no change" [] (d.added @ d.removed);
  assert_sound "noop" t

let test_inc_self_loop_star () =
  let g = labeled_graph [ "a"; "b" ] [ (0, 1) ] in
  let t = I.create g (q "a . b . b*") in
  I.insert_edge t 1 1;
  assert_sound "self loop" t;
  check Alcotest.bool "match" true (I.is_match t 0 1)

(* ---- randomized equivalence ---------------------------------------------- *)

let gen_case =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* labels = list_repeat n (oneofl [ "a"; "b" ]) in
    let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
    let* edges = list_size (int_bound (2 * n)) edge in
    let* ops = list_size (int_bound 12) (pair bool edge) in
    let* qsrc =
      oneofl
        [
          "a . b";
          "a . b*";
          "a . (a + b)* . b";
          "b . a . b";
          "a . a* . b . b*";
          "(a + b) . (a + b)*";
          "a";
        ]
    in
    return (labels, edges, ops, qsrc))

let arb_case =
  QCheck.make
    ~print:(fun (labels, edges, ops, qsrc) ->
      Printf.sprintf "labels=%s edges=%s ops=%s q=%s"
        (String.concat "" labels)
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges))
        (String.concat ";"
           (List.map
              (fun (i, (u, v)) ->
                Printf.sprintf "%s(%d,%d)" (if i then "+" else "-") u v)
              ops))
        qsrc)
    gen_case

let dedup_conflicts ops =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (_, e) ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.replace seen e ();
        true
      end)
    ops

let updates_of ops =
  List.map
    (fun (i, (u, v)) -> if i then Digraph.Insert (u, v) else Digraph.Delete (u, v))
    ops

let prop_inc_matches_batch grouped =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "IncRPQ%s == RPQNFA rerun" (if grouped then "" else "n"))
    ~count:300 arb_case
    (fun (labels, edges, ops, qsrc) ->
      let ops = dedup_conflicts ops in
      let g = labeled_graph labels edges in
      let t = I.create ~grouped g (q qsrc) in
      let old_matches = norm (I.matches t) in
      let d = I.apply_batch t (updates_of ops) in
      I.check_invariants t;
      let fresh = norm (B.run_query (I.graph t) (q qsrc)) in
      let now = norm (I.matches t) in
      let applied =
        norm
          (d.added
          @ List.filter (fun m -> not (List.mem m d.removed)) old_matches)
      in
      now = fresh
      && applied = fresh
      && List.for_all (fun m -> List.mem m old_matches) d.removed

      && List.for_all (fun m -> not (List.mem m old_matches)) d.added)

let prop_inc_sequences =
  QCheck.Test.make ~name:"IncRPQ sound across successive batches" ~count:150
    QCheck.(
      pair arb_case
        (make
           Gen.(
             list_size (int_bound 8)
               (pair bool (pair (int_bound 7) (int_bound 7))))))
    (fun ((labels, edges, ops, qsrc), more) ->
      let n = List.length labels in
      let clamp ops =
        dedup_conflicts
          (List.map (fun (i, (u, v)) -> (i, (u mod n, v mod n))) ops)
      in
      let g = labeled_graph labels edges in
      let t = I.create g (q qsrc) in
      ignore (I.apply_batch t (updates_of (clamp ops)));
      I.check_invariants t;
      ignore (I.apply_batch t (updates_of (clamp more)));
      I.check_invariants t;
      norm (I.matches t) = norm (B.run_query (I.graph t) (q qsrc)))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_rpq"
    [
      ( "batch",
        [
          Alcotest.test_case "path" `Quick test_batch_path;
          Alcotest.test_case "single node" `Quick test_batch_single_node_match;
          Alcotest.test_case "star cycle" `Quick test_batch_star_cycle;
          Alcotest.test_case "paper query (Ex. 4)" `Quick test_batch_paper_query;
          Alcotest.test_case "no sources" `Quick test_batch_no_sources;
          Alcotest.test_case "multi source" `Quick test_batch_multi_source;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "insert creates match" `Quick
            test_inc_insert_creates_match;
          Alcotest.test_case "delete removes match" `Quick
            test_inc_delete_removes_match;
          Alcotest.test_case "alternate path survives" `Quick
            test_inc_alternate_path_survives;
          Alcotest.test_case "interleaving (Ex. 5)" `Quick
            test_inc_interleaving_example5;
          Alcotest.test_case "cancelling updates" `Quick
            test_inc_cancelling_updates;
          Alcotest.test_case "add node" `Quick test_inc_add_node;
          Alcotest.test_case "new source self match" `Quick
            test_inc_new_source_matches_self;
          Alcotest.test_case "duplicate no-ops" `Quick test_inc_duplicate_noops;
          Alcotest.test_case "self loop star" `Quick test_inc_self_loop_star;
        ] );
      ( "properties",
        qsuite
          [
            prop_inc_matches_batch true;
            prop_inc_matches_batch false;
            prop_inc_sequences;
          ] );
    ]
