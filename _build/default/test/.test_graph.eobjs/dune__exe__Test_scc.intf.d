test/test_scc.mli:
