test/test_guarantees.ml: Alcotest Digraph Hashtbl Ig_graph Ig_iso Ig_kws Ig_nfa Ig_rpq Ig_scc Ig_theory Ig_workload List Printf Random Traverse
