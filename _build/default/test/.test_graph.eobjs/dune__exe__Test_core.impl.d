test/test_core.ml: Alcotest Core Format Ig_iso Ig_kws Ig_rpq Ig_scc List Random
