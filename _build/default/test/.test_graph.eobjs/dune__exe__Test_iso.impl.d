test/test_iso.ml: Alcotest Array Digraph Hashtbl Ig_graph Ig_iso List Printf QCheck QCheck_alcotest String
