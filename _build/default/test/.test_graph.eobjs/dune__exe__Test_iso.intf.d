test/test_iso.mli:
