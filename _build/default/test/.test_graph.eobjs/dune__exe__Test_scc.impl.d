test/test_scc.ml: Alcotest Array Digraph Hashtbl Ig_graph Ig_scc List Printf QCheck QCheck_alcotest String
