test/test_workload.ml: Alcotest Digraph Hashtbl Ig_graph Ig_iso Ig_kws Ig_nfa Ig_scc Ig_workload List Random
