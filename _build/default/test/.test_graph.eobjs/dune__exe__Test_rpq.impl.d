test/test_rpq.ml: Alcotest Digraph Gen Hashtbl Ig_graph Ig_nfa Ig_rpq List Printf QCheck QCheck_alcotest Regex String
