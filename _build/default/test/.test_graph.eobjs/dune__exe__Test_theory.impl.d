test/test_theory.ml: Alcotest Digraph Gen Hashtbl Ig_graph Ig_rpq Ig_theory List QCheck QCheck_alcotest
