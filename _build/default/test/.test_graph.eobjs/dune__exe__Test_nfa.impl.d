test/test_nfa.ml: Alcotest Gen Ig_graph Ig_nfa List Nfa QCheck QCheck_alcotest Regex String
