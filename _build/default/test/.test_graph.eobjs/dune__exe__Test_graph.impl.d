test/test_graph.ml: Alcotest Digraph Format Hashtbl Ig_graph Int Interner Io List Pqueue QCheck QCheck_alcotest Rank Traverse Vec
