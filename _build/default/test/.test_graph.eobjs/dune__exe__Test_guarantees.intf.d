test/test_guarantees.mli:
