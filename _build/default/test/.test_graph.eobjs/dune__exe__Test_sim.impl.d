test/test_sim.ml: Alcotest Array Digraph Gen Hashtbl Ig_graph Ig_iso Ig_sim List QCheck QCheck_alcotest
