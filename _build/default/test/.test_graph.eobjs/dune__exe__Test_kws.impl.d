test/test_kws.ml: Alcotest Array Digraph Gen Hashtbl Ig_graph Ig_kws List Option Printf QCheck QCheck_alcotest String
