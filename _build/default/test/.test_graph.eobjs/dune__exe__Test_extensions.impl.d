test/test_extensions.ml: Alcotest Array Digraph Gen Hashtbl Ig_graph Ig_kws Ig_nfa Ig_rpq Ig_scc List QCheck QCheck_alcotest Traverse
