test/test_kws.mli:
