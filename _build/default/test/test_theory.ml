(* Tests for the theory library: SSRP, the Δ-reduction of Theorem 1, and
   the Figure 9 unboundedness gadget. *)

open Ig_graph
module S = Ig_theory.Ssrp
module R = Ig_theory.Reduction
module G = Ig_theory.Gadget

let check = Alcotest.check

let graph_of_edges n edges =
  let g = Digraph.create () in
  for _ = 1 to n do
    ignore (Digraph.add_node g "x")
  done;
  List.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
  g

(* ---- SSRP ------------------------------------------------------------------ *)

let test_ssrp_batch () =
  let g = graph_of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  let r = S.batch g 0 in
  check Alcotest.int "size" 3 (Hashtbl.length r);
  check Alcotest.bool "0" true (Hashtbl.mem r 0);
  check Alcotest.bool "2" true (Hashtbl.mem r 2);
  check Alcotest.bool "4 not" false (Hashtbl.mem r 4)

let test_ssrp_insert_bounded () =
  let g = graph_of_edges 5 [ (0, 1); (3, 4) ] in
  let t = S.init g 0 in
  check Alcotest.(list int) "newly reachable" [ 3; 4 ]
    (List.sort compare (S.insert_edge t 1 3));
  check Alcotest.bool "now 4" true (S.reaches t 4);
  (* Inserting an edge between already-reachable nodes adds nothing. *)
  check Alcotest.(list int) "no-op" [] (S.insert_edge t 0 4);
  S.check_invariants t

let test_ssrp_delete () =
  let g = graph_of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 2) ] in
  let t = S.init g 0 in
  check Alcotest.(list int) "nothing lost (alt path)" []
    (S.delete_edge t 1 2);
  check Alcotest.(list int) "tail lost" [ 2; 3 ]
    (List.sort compare (S.delete_edge t 0 2));
  check Alcotest.bool "1 kept" true (S.reaches t 1);
  S.check_invariants t

let prop_ssrp_random =
  QCheck.Test.make ~name:"SSRP incremental == batch" ~count:300
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 10 in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* ops = list_size (int_bound 12) (pair bool edge) in
          return (n, edges, ops)))
    (fun (n, edges, ops) ->
      let g = graph_of_edges n edges in
      let t = S.init g 0 in
      List.iter
        (fun (ins, (u, v)) ->
          if ins then ignore (S.insert_edge t u v)
          else ignore (S.delete_edge t u v);
          S.check_invariants t)
        ops;
      true)

(* ---- Δ-reduction ------------------------------------------------------------- *)

let test_reduction_static () =
  let g1 = graph_of_edges 4 [ (0, 1); (1, 2) ] in
  let inst = { R.graph = g1; source = 0 } in
  let g2, q = R.ssrp_to_rpq.R.f inst in
  check Alcotest.int "same nodes" 4 (Digraph.n_nodes g2);
  check Alcotest.int "same edges" 2 (Digraph.n_edges g2);
  let matches = Ig_rpq.Batch.run_query g2 q in
  let reach = S.batch g1 0 in
  check Alcotest.int "reachable == matches" (Hashtbl.length reach)
    (List.length matches);
  List.iter
    (fun (u, v) ->
      check Alcotest.int "source pinned" 0 u;
      check Alcotest.bool "match is reachable" true (Hashtbl.mem reach v))
    matches

let prop_reduction_dynamic =
  (* Lemma 2, executed: solving SSRP through the reduction + an RPQ engine
     agrees with direct SSRP recomputation across update streams. *)
  QCheck.Test.make ~name:"SSRP via Δ-reduction to IncRPQ" ~count:150
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 8 in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (int_bound (2 * n)) edge in
          let* ops = list_size (int_bound 10) (pair bool edge) in
          return (n, edges, ops)))
    (fun (n, edges, ops) ->
      (* Avoid insert/delete of the same edge within the stream acting on
         stale state: process updates one by one. *)
      let g1 = graph_of_edges n edges in
      let inst = { R.graph = g1; source = 0 } in
      let g2, q = R.ssrp_to_rpq.R.f inst in
      let rpq = Ig_rpq.Inc_rpq.create g2 q in
      let reachable = S.batch g1 0 in
      List.for_all
        (fun (ins, (u, v)) ->
          let up =
            if ins then Digraph.Insert (u, v) else Digraph.Delete (u, v)
          in
          (* Keep the SSRP side in sync. *)
          ignore (Digraph.apply g1 up);
          let d2 = Ig_rpq.Inc_rpq.apply_batch rpq [ R.ssrp_to_rpq.R.fi inst up ] in
          let changes = R.ssrp_to_rpq.R.fo inst d2 in
          List.iter
            (fun { R.node; now_reachable } ->
              if now_reachable then Hashtbl.replace reachable node ()
              else Hashtbl.remove reachable node)
            changes;
          let fresh = S.batch g1 0 in
          Hashtbl.length fresh = Hashtbl.length reachable
          && Hashtbl.fold
               (fun v () acc -> acc && Hashtbl.mem reachable v)
               fresh true)
        ops)

(* ---- Figure 9 gadget ----------------------------------------------------------- *)

let test_gadget_phases () =
  let g = G.make ~cycle:6 in
  let q = g.G.query in
  check Alcotest.int "Q(G) empty" 0
    (List.length (Ig_rpq.Batch.run_query g.G.graph q));
  (* Δ1 alone: still empty. *)
  let t = Ig_rpq.Inc_rpq.create g.G.graph q in
  let d1 = Ig_rpq.Inc_rpq.apply_batch t [ g.G.delta1 ] in
  check Alcotest.int "Δ1 silent" 0
    (List.length d1.Ig_rpq.Inc_rpq.added + List.length d1.Ig_rpq.Inc_rpq.removed);
  (* Δ2 after Δ1: all v-nodes match with w. *)
  let d2 = Ig_rpq.Inc_rpq.apply_batch t [ g.G.delta2 ] in
  let expect = List.sort compare (G.expected_matches g) in
  check
    Alcotest.(list (pair int int))
    "matches appear" expect
    (List.sort compare d2.Ig_rpq.Inc_rpq.added);
  Ig_rpq.Inc_rpq.check_invariants t

let test_gadget_delta2_alone () =
  let g = G.make ~cycle:6 in
  let t = Ig_rpq.Inc_rpq.create g.G.graph g.G.query in
  let d = Ig_rpq.Inc_rpq.apply_batch t [ g.G.delta2 ] in
  check Alcotest.int "Δ2 alone silent" 0
    (List.length d.Ig_rpq.Inc_rpq.added + List.length d.Ig_rpq.Inc_rpq.removed)

let test_gadget_demo_grows () =
  match G.demo ~cycles:[ 4; 8; 16; 32 ] with
  | [ a; b; c; d ] ->
      check Alcotest.int "|CHANGED| flat" 1 a.G.changed;
      check Alcotest.int "|CHANGED| flat" 1 d.G.changed;
      check Alcotest.bool "work grows" true
        (a.G.inc_work < b.G.inc_work
        && b.G.inc_work < c.G.inc_work
        && c.G.inc_work < d.G.inc_work)
  | _ -> Alcotest.fail "wrong number of demo points"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "ig_theory"
    [
      ( "ssrp",
        Alcotest.test_case "batch" `Quick test_ssrp_batch
        :: Alcotest.test_case "bounded insert" `Quick test_ssrp_insert_bounded
        :: Alcotest.test_case "delete" `Quick test_ssrp_delete
        :: qsuite [ prop_ssrp_random ] );
      ( "reduction",
        Alcotest.test_case "static mapping" `Quick test_reduction_static
        :: qsuite [ prop_reduction_dynamic ] );
      ( "gadget",
        [
          Alcotest.test_case "three phases" `Quick test_gadget_phases;
          Alcotest.test_case "delta2 alone" `Quick test_gadget_delta2_alone;
          Alcotest.test_case "work grows with n" `Quick test_gadget_demo_grows;
        ] );
    ]
