(* incgraph — command-line front end.

   Subcommands:
     generate   produce a synthetic labeled graph (profiles of Section 6)
     query      answer one query with the batch algorithm
     stream     maintain a query incrementally over a random update stream
     fuzz       differential soak: incremental engines vs batch oracles

   Examples:
     incgraph generate -p dbpedia -s 0.1 -o kg.txt
     incgraph query -g kg.txt rpq 'l1 . l2* . l3'
     incgraph query -g kg.txt kws -b 2 actor award
     incgraph query -g kg.txt scc
     incgraph stream -g kg.txt --batches 5 --size 500 kws -b 2 actor award
     incgraph fuzz --algo scc --steps 5000 --seed 2017 *)

open Cmdliner

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---- common arguments --------------------------------------------------- *)

let graph_arg =
  let doc = "Graph file in the incgraph text format (see Core.Io)." in
  Arg.(required & opt (some file) None & info [ "g"; "graph" ] ~doc ~docv:"FILE")

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 2017 & info [ "seed" ] ~doc ~docv:"N")

let load path =
  let g = Core.Io.load path in
  Format.printf "loaded %s: %d nodes, %d edges@." path (Core.Digraph.n_nodes g)
    (Core.Digraph.n_edges g);
  g

(* ---- generate ------------------------------------------------------------ *)

let profile_conv =
  let parse = function
    | "dbpedia" -> Ok Core.Workload.Profiles.dbpedia_like
    | "livej" -> Ok Core.Workload.Profiles.livej_like
    | "synthetic" -> Ok Core.Workload.Profiles.synthetic
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf p.Core.Workload.Profiles.name)

let generate_cmd =
  let profile =
    Arg.(
      value
      & opt profile_conv Core.Workload.Profiles.synthetic
      & info [ "p"; "profile" ] ~doc:"Profile: dbpedia, livej or synthetic."
          ~docv:"NAME")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "s"; "scale" ] ~doc:"Scale factor for the profile." ~docv:"X")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Output file." ~docv:"FILE")
  in
  let run profile scale out seed =
    let rng = Random.State.make [| seed |] in
    let g = Core.Workload.Profiles.instantiate ~scale ~rng profile in
    Core.Io.save out g;
    Format.printf "wrote %s: %d nodes, %d edges, %d labels@." out
      (Core.Digraph.n_nodes g) (Core.Digraph.n_edges g)
      (Core.Interner.size (Core.Digraph.interner g))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic labeled graph.")
    Term.(const run $ profile $ scale $ out $ seed_arg)

(* ---- query class arguments ------------------------------------------------ *)

type qspec =
  | Qkws of Core.Kws.Batch.query
  | Qrpq of Core.Regex.t
  | Qscc
  | Qiso of string list * (int * int) list

let qspec_of ~cls ~bound ~args =
  match (cls, args) with
  | "scc", [] -> Ok Qscc
  | "scc", _ -> Error "scc takes no query arguments"
  | "kws", (_ :: _ as kws) -> Ok (Qkws { Core.Kws.Batch.keywords = kws; bound })
  | "kws", [] -> Error "kws needs keyword arguments"
  | "rpq", [ expr ] -> (
      match Core.Regex.parse expr with
      | Ok q -> Ok (Qrpq q)
      | Error e -> Error ("bad regex: " ^ e))
  | "rpq", _ -> Error "rpq needs exactly one regex argument"
  | "iso", (_ :: _ as spec) ->
      (* labels then edges: l1 l2 l3 0-1 1-2 2-0 *)
      let labels, edges =
        List.partition (fun s -> not (String.contains s '-')) spec
      in
      let parse_edge s =
        match String.split_on_char '-' s with
        | [ a; b ] -> (int_of_string a, int_of_string b)
        | _ -> failwith "bad edge"
      in
      (try Ok (Qiso (labels, List.map parse_edge edges))
       with _ -> Error "iso edges look like 0-1 1-2")
  | "iso", [] -> Error "iso needs labels and edges"
  | c, _ -> Error (Printf.sprintf "unknown query class %S" c)

let cls_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"CLASS" ~doc:"Query class: kws, rpq, scc or iso.")

let qargs_arg =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"QUERY"
       ~doc:"Query arguments (keywords, regex, or pattern labels/edges).")

let bound_arg =
  Arg.(value & opt int 2 & info [ "b"; "bound" ] ~doc:"KWS hop bound." ~docv:"B")

(* ---- query ----------------------------------------------------------------- *)

let run_query g = function
  | Qkws q ->
      let roots, t = time (fun () -> Core.Kws.Batch.run g q) in
      Format.printf "KWS: %d match roots in %.3fs@." (List.length roots) t
  | Qrpq q ->
      let pairs, t = time (fun () -> Core.Rpq.Batch.run_query g q) in
      Format.printf "RPQ: %d match pairs in %.3fs@." (List.length pairs) t
  | Qscc ->
      let comps, t = time (fun () -> Core.Scc.Tarjan.scc g) in
      let giant = List.fold_left (fun a c -> max a (List.length c)) 0 comps in
      Format.printf "SCC: %d components (largest %d) in %.3fs@."
        (List.length comps) giant t
  | Qiso (labels, edges) ->
      let p = Core.Iso.Pattern.create ~labels ~edges in
      let ms, t = time (fun () -> Core.Iso.Vf2.find_all g p) in
      Format.printf "ISO: %d matches in %.3fs@." (List.length ms) t

let query_cmd =
  let run path cls bound args =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec ->
        run_query (load path) spec;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer one query with the batch algorithm.")
    Term.(ret (const run $ graph_arg $ cls_arg $ bound_arg $ qargs_arg))

(* ---- stream ----------------------------------------------------------------- *)

let stream_cmd =
  let batches =
    Arg.(value & opt int 5 & info [ "batches" ] ~doc:"Number of update batches.")
  in
  let size =
    Arg.(value & opt int 100 & info [ "size" ] ~doc:"Unit updates per batch.")
  in
  let ratio =
    Arg.(value & opt float 1.0 & info [ "ratio" ] ~doc:"Insert/delete ratio ρ.")
  in
  let run path cls bound args batches size ratio seed =
    match qspec_of ~cls ~bound ~args with
    | Error e -> `Error (false, e)
    | Ok spec ->
        let g = load path in
        let rng = Random.State.make [| seed |] in
        let step describe update =
          for round = 1 to batches do
            let ups = Core.Workload.Updates.generate ~rng g ~size ~ratio () in
            Core.Digraph.apply_batch g ups (* keep generator in sync *);
            let summary, t = time (fun () -> update ups) in
            Format.printf "round %d: |ΔG|=%d  %s  (%.3fs)@." round
              (List.length ups) summary t
          done;
          Format.printf "final: %s@." (describe ())
        in
        (match spec with
        | Qkws q ->
            let s = Core.Kws_session.create (Core.Digraph.copy g) q in
            step
              (fun () ->
                Printf.sprintf "%d roots"
                  (List.length (Core.Kws_session.answer s)))
              (fun ups ->
                let d = Core.Kws_session.update s ups in
                Printf.sprintf "roots +%d/-%d"
                  (List.length d.Core.Kws.Inc.added)
                  (List.length d.Core.Kws.Inc.removed))
        | Qrpq q ->
            let s = Core.Rpq_session.create (Core.Digraph.copy g) q in
            step
              (fun () ->
                Printf.sprintf "%d pairs"
                  (List.length (Core.Rpq_session.answer s)))
              (fun ups ->
                let d = Core.Rpq_session.update s ups in
                Printf.sprintf "pairs +%d/-%d"
                  (List.length d.Core.Rpq.Inc.added)
                  (List.length d.Core.Rpq.Inc.removed))
        | Qscc ->
            let s = Core.Scc_session.create (Core.Digraph.copy g) () in
            step
              (fun () ->
                Printf.sprintf "%d components"
                  (List.length (Core.Scc_session.answer s)))
              (fun ups ->
                let d = Core.Scc_session.update s ups in
                Printf.sprintf "components -%d/+%d"
                  (List.length d.Core.Scc.Inc.removed)
                  (List.length d.Core.Scc.Inc.added))
        | Qiso (labels, edges) ->
            let p = Core.Iso.Pattern.create ~labels ~edges in
            let s = Core.Iso_session.create (Core.Digraph.copy g) p in
            step
              (fun () ->
                Printf.sprintf "%d matches"
                  (List.length (Core.Iso_session.answer s)))
              (fun ups ->
                let d = Core.Iso_session.update s ups in
                Printf.sprintf "matches +%d/-%d"
                  (List.length d.Core.Iso.Inc.added)
                  (List.length d.Core.Iso.Inc.removed)));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Maintain a query incrementally over a random update stream.")
    Term.(
      ret
        (const run $ graph_arg $ cls_arg $ bound_arg $ qargs_arg $ batches
       $ size $ ratio $ seed_arg))

(* ---- fuzz ----------------------------------------------------------------- *)

let fuzz_cmd =
  let module C = Core.Check in
  let algo =
    Arg.(
      value & opt string "all"
      & info [ "algo" ]
          ~doc:"Scenario: kws, rpq, scc, sim, iso, gadget or all." ~docv:"NAME")
  in
  let steps =
    Arg.(
      value & opt int 1000
      & info [ "steps" ] ~doc:"Unit updates per scenario." ~docv:"N")
  in
  let nodes =
    Arg.(
      value
      & opt int C.Scenarios.default_size.C.Scenarios.nodes
      & info [ "nodes" ] ~doc:"Base graph node count." ~docv:"N")
  in
  let edges =
    Arg.(
      value
      & opt int C.Scenarios.default_size.C.Scenarios.edges
      & info [ "edges" ] ~doc:"Base graph edge count." ~docv:"N")
  in
  let labels =
    Arg.(
      value
      & opt int C.Scenarios.default_size.C.Scenarios.labels
      & info [ "labels" ] ~doc:"Base graph label alphabet size." ~docv:"N")
  in
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ]
          ~doc:"Directory for failure reproduction artifacts." ~docv:"DIR")
  in
  let run algo steps nodes edges labels out_dir seed =
    let size : C.Scenarios.size = { nodes; edges; labels } in
    let rng = Random.State.make [| seed |] in
    let scenarios =
      if algo = "all" then Ok (C.Scenarios.all ~rng ~size ())
      else
        match C.Scenarios.by_name ~rng ~size algo with
        | Some s -> Ok [ s ]
        | None -> Error (Printf.sprintf "unknown fuzz scenario %S" algo)
    in
    match scenarios with
    | Error e -> `Error (false, e)
    | Ok scenarios ->
        let failed = ref false in
        List.iter
          (fun (s : C.Scenarios.t) ->
            Format.printf "fuzz %-6s seed %d: %d steps against batch oracle...@?"
              s.C.Scenarios.name seed steps;
            let result, t =
              time (fun () ->
                  C.Harness.run ~make:s.C.Scenarios.make
                    ~focus:s.C.Scenarios.focus ~steps ~seed ())
            in
            match result with
            | Ok n -> Format.printf " ok (%d steps, %.2fs)@." n t
            | Error f ->
                failed := true;
                Format.printf " FAILED@.%a@." C.Harness.pp_failure f;
                let gpath, upath =
                  C.Harness.save_failure ~dir:out_dir ~base:s.C.Scenarios.base f
                in
                Format.printf "artifacts: %s, %s@." gpath upath)
          scenarios;
        if !failed then `Error (false, "fuzzing found failures (see above)")
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential soak: drive every incremental engine through a seeded \
          random update stream, cross-checking answers and certificates \
          against batch recomputation after each unit update; failures are \
          ddmin-shrunk to minimal reproducers.")
    Term.(
      ret
        (const run $ algo $ steps $ nodes $ edges $ labels $ out_dir $ seed_arg))

let () =
  let info =
    Cmd.info "incgraph" ~version:"1.0.0"
      ~doc:"Incremental graph computations: doable and undoable (SIGMOD'17)."
  in
  exit
    (Cmd.eval (Cmd.group info [ generate_cmd; query_cmd; stream_cmd; fuzz_cmd ]))
