(** Graph simulation — the query class of the paper's related work [17]
    (Fan, Wang, Wu: Incremental graph pattern matching, TODS 2013), whose
    incremental problem is {e semi-bounded}. Included as the baseline the
    paper contrasts its localizability/relative-boundedness measures
    against.

    A node [v] simulates pattern node [u] iff their labels agree and for
    every pattern edge [(u, u')] some successor of [v] simulates [u']. The
    answer is the {e greatest} such relation (unique; possibly empty per
    pattern node). Unlike subgraph isomorphism it is polynomial and not
    injective. *)

type node = Ig_graph.Digraph.node

type relation = (node, unit) Hashtbl.t array
(** One set of graph nodes per pattern node (indexed by pattern node id). *)

val candidates : Ig_iso.Pattern.t -> Ig_graph.Digraph.t -> relation
(** The label-compatible pairs — the fixpoint's starting point. *)

val prune : Ig_iso.Pattern.t -> Ig_graph.Digraph.t -> relation -> relation
(** Remove pairs until every surviving pair has all its pattern edges
    supported inside the relation: computes the largest simulation
    {e contained in} the given sets (mutated in place and returned). The
    HHK-style worklist makes this O(Σ|sets| · deg) rather than a quadratic
    fixpoint iteration. *)

val run : Ig_iso.Pattern.t -> Ig_graph.Digraph.t -> relation
(** The greatest simulation: [prune p g (candidates p g)]. *)

val pairs : relation -> (int * node) list
(** Flatten to (pattern node, graph node) pairs. *)

val mem : relation -> int -> node -> bool

(** {1 Internals shared with the incremental engine} *)

val edge_index : Ig_iso.Pattern.t -> (int * int) list array * (int * int) list array
(** Per pattern node: outgoing and incoming (edge id, other endpoint). *)

val support_count : Ig_graph.Digraph.t -> relation -> int -> node -> int
(** [support_count g rel u' v] = |succ(v) ∩ rel(u')|. *)
