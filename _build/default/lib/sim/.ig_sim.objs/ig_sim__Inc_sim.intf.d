lib/sim/inc_sim.mli: Ig_graph Ig_iso Sim
