lib/sim/sim.ml: Array Hashtbl Ig_graph Ig_iso List Stack
