lib/sim/sim.mli: Hashtbl Ig_graph Ig_iso
