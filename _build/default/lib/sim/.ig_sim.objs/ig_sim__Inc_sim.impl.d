lib/sim/inc_sim.ml: Array Hashtbl Ig_graph Ig_iso List Option Printf Sim Stack
