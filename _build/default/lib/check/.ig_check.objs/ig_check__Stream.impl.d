lib/check/stream.ml: Array Ig_graph List Random
