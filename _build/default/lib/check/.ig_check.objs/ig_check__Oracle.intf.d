lib/check/oracle.mli: Ig_graph
