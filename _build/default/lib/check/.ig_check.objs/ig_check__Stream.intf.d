lib/check/stream.mli: Ig_graph Random
