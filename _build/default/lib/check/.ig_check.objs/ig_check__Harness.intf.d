lib/check/harness.mli: Format Ig_graph Oracle
