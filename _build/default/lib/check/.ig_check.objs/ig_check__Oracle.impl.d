lib/check/oracle.ml: Ig_graph Printf String
