lib/check/scenarios.mli: Ig_graph Oracle Random
