lib/check/scenarios.ml: Adapters Ig_graph Ig_iso Ig_theory Ig_workload Oracle
