lib/check/harness.ml: Filename Format Ig_graph List Oracle Printexc Printf Random Shrink Stream
