lib/check/shrink.mli: Ig_graph
