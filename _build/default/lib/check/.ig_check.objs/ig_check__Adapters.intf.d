lib/check/adapters.mli: Ig_graph Ig_iso Ig_kws Ig_nfa Ig_scc Ig_sim Oracle
