lib/check/adapters.ml: Ig_graph Ig_iso Ig_kws Ig_nfa Ig_rpq Ig_scc Ig_sim List Oracle Printf String
