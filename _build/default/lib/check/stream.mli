(** Deterministic seeded update-stream driver.

    Proposes one unit update at a time against the {e live} state of a graph
    it observes but never mutates: the caller applies each proposed update to
    the engine that owns the graph before asking for the next. Identical
    seeds (and identical engine behavior) yield identical streams.

    The op mix is deliberately adversarial for incremental engines:

    - deletions of uniformly sampled {e existing} edges;
    - re-insertion of recently deleted edges (the paper's Section 4.2
      "bounce-back" shape — a batch-internal cancellation when grouped);
    - duplicate insertions of edges already present and deletions of absent
      edges (both no-ops on the simple digraph; engines must tolerate them,
      which is also what makes ddmin-shrunk streams replayable);
    - self-loop insertions;
    - toggling of caller-supplied {e focus} edges — e.g. the Δ1/Δ2 bridge
      edges of the Fig. 9 two-cycle gadget ({!Ig_theory.Gadget}), whose
      insertion order is exactly what the paper's unboundedness proof turns
      on. *)

type t

val create :
  rng:Random.State.t ->
  ?focus:(Ig_graph.Digraph.node * Ig_graph.Digraph.node) list ->
  Ig_graph.Digraph.t ->
  t
(** The stream keeps a reference to the graph and to the [rng]; both advance
    as the caller applies updates and calls {!next}. *)

val next : t -> Ig_graph.Digraph.update
(** Propose the next unit update. @raise Invalid_argument on an empty
    graph (no nodes to wire). *)
