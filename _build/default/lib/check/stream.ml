module Digraph = Ig_graph.Digraph

type t = {
  rng : Random.State.t;
  g : Digraph.t;
  focus : (Digraph.node * Digraph.node) array;
  mutable deleted : (Digraph.node * Digraph.node) list;
      (* most recent first, capped *)
  mutable n_deleted : int;
}

let deleted_cap = 32

let create ~rng ?(focus = []) g =
  { rng; g; focus = Array.of_list focus; deleted = []; n_deleted = 0 }

let remember_deleted t e =
  t.deleted <- e :: t.deleted;
  t.n_deleted <- t.n_deleted + 1;
  if t.n_deleted > deleted_cap then begin
    t.deleted <- List.filteri (fun i _ -> i < deleted_cap) t.deleted;
    t.n_deleted <- deleted_cap
  end

let random_edge t =
  let es = Array.of_list (Digraph.edges t.g) in
  es.(Random.State.int t.rng (Array.length es))

(* Op mix (probability windows over one uniform draw):
     focus toggle   0.10   (only when focus edges were supplied)
     delete         0.40   (existing edge, uniform)
     re-insert      0.12   (recently deleted edge)
     duplicate ins  0.05   (existing edge — no-op)
     absent delete  0.05   (random pair — usually a no-op)
     fresh insert   rest   (random pair; self-loop with prob 0.1)
   Skipped windows (no focus / no edges / nothing deleted yet) fall through
   to the fresh-insert default, keeping the draw count per step fixed at
   most 3 — determinism only needs the draws to be a function of the seed
   and the live graph state. *)
let next t =
  let g = t.g in
  let n = Digraph.n_nodes g in
  if n = 0 then invalid_arg "Stream.next: empty graph";
  let r = Random.State.float t.rng 1.0 in
  let has_edges = Digraph.n_edges g > 0 in
  if Array.length t.focus > 0 && r < 0.10 then begin
    let u, v = t.focus.(Random.State.int t.rng (Array.length t.focus)) in
    if Digraph.mem_edge g u v then begin
      remember_deleted t (u, v);
      Digraph.Delete (u, v)
    end
    else Digraph.Insert (u, v)
  end
  else if r < 0.50 && has_edges then begin
    let u, v = random_edge t in
    remember_deleted t (u, v);
    Digraph.Delete (u, v)
  end
  else if r < 0.62 && t.deleted <> [] then begin
    let u, v = List.nth t.deleted (Random.State.int t.rng t.n_deleted) in
    Digraph.Insert (u, v)
  end
  else if r < 0.67 && has_edges then begin
    let u, v = random_edge t in
    Digraph.Insert (u, v)
  end
  else if r < 0.72 then
    Digraph.Delete (Random.State.int t.rng n, Random.State.int t.rng n)
  else begin
    let u = Random.State.int t.rng n in
    let v =
      if Random.State.float t.rng 1.0 < 0.10 then u else Random.State.int t.rng n
    in
    Digraph.Insert (u, v)
  end
