(** Delta-debugging reduction of failing update streams (Zeller's ddmin).

    Given a stream known to make a replay fail, find a 1-minimal
    sub-stream — removing any single remaining update makes the failure
    disappear. Replays are driven entirely through the [fails] callback, so
    the shrinker is agnostic to what "failing" means (invariant violation,
    answer mismatch, crash). *)

val ddmin :
  fails:(Ig_graph.Digraph.update list -> bool) ->
  Ig_graph.Digraph.update list ->
  Ig_graph.Digraph.update list
(** [ddmin ~fails stream] assumes [fails stream = true] and returns a
    1-minimal failing sub-stream (order preserved). If the assumption does
    not hold the input is returned unchanged. *)
