(* Zeller–Hildebrandt ddmin over update lists. The subject sequences are
   short (a failing prefix of a fuzz run) and the test function replays a
   whole stream, so the classic O(n²) worst case is perfectly affordable. *)

let split_chunks xs n =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec go i xs acc =
    if i >= n then List.rev acc
    else begin
      let k = base + if i < extra then 1 else 0 in
      let rec take k xs acc =
        if k = 0 then (List.rev acc, xs)
        else
          match xs with
          | [] -> (List.rev acc, [])
          | x :: tl -> take (k - 1) tl (x :: acc)
      in
      let chunk, rest = take k xs [] in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 xs []

let ddmin ~fails stream =
  if stream = [] || not (fails stream) then stream
  else begin
    let rec go cs n =
      let len = List.length cs in
      if len < 2 then cs
      else begin
        let chunks = split_chunks cs n in
        (* Reduce to subset. *)
        match List.find_opt (fun c -> c <> [] && fails c) chunks with
        | Some c -> go c 2
        | None -> (
            (* Reduce to complement. *)
            let complement i =
              List.concat (List.filteri (fun j _ -> j <> i) chunks)
            in
            let rec try_compl i =
              if i >= n then None
              else begin
                let c = complement i in
                if List.length c < len && fails c then Some c
                else try_compl (i + 1)
              end
            in
            match try_compl 0 with
            | Some c -> go c (max (n - 1) 2)
            | None -> if n < len then go cs (min len (2 * n)) else cs)
      end
    in
    go stream 2
  end
