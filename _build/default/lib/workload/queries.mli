(** Random query generators (paper Section 6, "Query generators").

    "We randomly generated 30 queries of KWS, RPQ and ISO with labels drawn
    from the graphs": KWS queries are controlled by [(m, b)], RPQ queries by
    size and operator mix, and ISO pattern queries by
    [(|V_Q|, |E_Q|, d_Q)]. Labels are sampled from the graph so queries are
    satisfiable in principle; ISO patterns are sampled as connected
    subgraphs of the data graph, guaranteeing at least one match. *)

val kws :
  rng:Random.State.t -> Ig_graph.Digraph.t -> m:int -> b:int ->
  Ig_kws.Batch.query
(** [m] keywords drawn from labels present in the graph, bound [b]. *)

val rpq : rng:Random.State.t -> Ig_graph.Digraph.t -> size:int -> Ig_nfa.Regex.t
(** A random regex with [size] label occurrences over graph labels, mixing
    concatenation, union and Kleene star (stars are kept off the first
    position so the query has sources). *)

val iso :
  rng:Random.State.t -> Ig_graph.Digraph.t -> nodes:int -> edges:int ->
  Ig_iso.Pattern.t option
(** Sample a weakly connected induced subgraph with [nodes] nodes as a
    pattern, trimmed to at most [edges] edges while preserving weak
    connectivity. [None] if the graph has no such subgraph after a bounded
    number of attempts (e.g. it is too sparse). *)
