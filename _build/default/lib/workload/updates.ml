module Digraph = Ig_graph.Digraph

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let generate ~rng g ~size ?(ratio = 1.0) () =
  if ratio < 0.0 then invalid_arg "Updates.generate: negative ratio";
  let n = Digraph.n_nodes g in
  let n_ins =
    int_of_float (Float.round (float_of_int size *. ratio /. (1.0 +. ratio)))
  in
  let n_del = size - n_ins in
  (* Deletions: a uniform sample of existing edges. *)
  let edges = Array.of_list (Digraph.edges g) in
  shuffle rng edges;
  let n_del = min n_del (Array.length edges) in
  let chosen = Hashtbl.create (2 * size) in
  let dels = ref [] in
  (* Guard: only live edges, each at most once. The sample was just taken
     from the graph so this holds by construction today, but the stream
     contract ("never delete an absent edge") must survive refactors of the
     sampling above — phantom deletions would silently turn into no-ops
     downstream and skew every |ΔG|-controlled experiment. *)
  let placed_del = ref 0 in
  let i = ref 0 in
  while !placed_del < n_del && !i < Array.length edges do
    let ((u, v) as e) = edges.(!i) in
    incr i;
    if Digraph.mem_edge g u v && not (Hashtbl.mem chosen e) then begin
      Hashtbl.replace chosen e ();
      dels := Digraph.Delete (u, v) :: !dels;
      incr placed_del
    end
  done;
  (* Insertions: uniform non-edges, avoiding batch-internal conflicts. *)
  let inss = ref [] in
  if n > 1 then begin
    let placed = ref 0 in
    let attempts = ref 0 in
    let limit = 30 * max 1 n_ins in
    while !placed < n_ins && !attempts < limit do
      incr attempts;
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v && (not (Digraph.mem_edge g u v)) && not (Hashtbl.mem chosen (u, v))
      then begin
        Hashtbl.replace chosen (u, v) ();
        inss := Digraph.Insert (u, v) :: !inss;
        incr placed
      end
    done
  end;
  let all = Array.of_list (!dels @ !inss) in
  shuffle rng all;
  Array.to_list all

let generate_replay ~rng g ~size ?(ratio = 1.0) () =
  if ratio < 0.0 then invalid_arg "Updates.generate_replay: negative ratio";
  let n_ins =
    int_of_float (Float.round (float_of_int size *. ratio /. (1.0 +. ratio)))
  in
  let edges = Array.of_list (Digraph.edges g) in
  shuffle rng edges;
  let n_ins = min n_ins (Array.length edges) in
  let inss = ref [] in
  for i = 0 to n_ins - 1 do
    let u, v = edges.(i) in
    ignore (Digraph.remove_edge g u v);
    inss := Digraph.Insert (u, v) :: !inss
  done;
  let n_del = min (size - n_ins) (Array.length edges - n_ins) in
  let dels = ref [] in
  for i = n_ins to n_ins + n_del - 1 do
    let u, v = edges.(i) in
    (* Same guard as [generate]: the slots past [n_ins] were not removed
       above, but deletions of absent edges must be impossible whatever the
       sampling evolves into. *)
    if Digraph.mem_edge g u v then dels := Digraph.Delete (u, v) :: !dels
  done;
  let all = Array.of_list (!inss @ !dels) in
  shuffle rng all;
  Array.to_list all
