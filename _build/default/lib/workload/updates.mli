(** Random batch updates (paper Section 6, "Updates").

    "Updates ΔG are randomly generated … controlled by size |ΔG| and a
    ratio ρ of edge insertions to deletions (ρ = 1 unless stated
    otherwise, i.e. the size of the graphs remains stable)."

    A batch never inserts and deletes the same edge (the assumption of
    Section 4.2), never inserts an existing edge, and never deletes an
    absent one — deletion candidates are re-checked against the live graph,
    so [size] unit updates all take effect. The updates are generated
    against the given graph but NOT applied to it; benches apply them to
    per-algorithm copies.

    Both generators are pure functions of the [rng] state and the graph:
    the same seed over the same graph yields the identical stream (the fuzz
    harness and the benchmarks both rely on this for replayability). *)

val generate :
  rng:Random.State.t ->
  Ig_graph.Digraph.t ->
  size:int ->
  ?ratio:float ->
  unit ->
  Ig_graph.Digraph.update list
(** [ratio] is ρ = insertions / deletions (default 1.0). The batch is a
    uniform shuffle of its insertions and deletions. Falls short of [size]
    only if the graph runs out of edges to delete or free slots to insert. *)

val generate_replay :
  rng:Random.State.t ->
  Ig_graph.Digraph.t ->
  size:int ->
  ?ratio:float ->
  unit ->
  Ig_graph.Digraph.update list
(** Structure-preserving variant (the standard incremental-evaluation
    methodology): the insertions are real edges of the given graph, which
    are {e removed from it} by this call — the mutated graph is the base
    [G], and applying the batch yields a graph with the same structural
    profile. Deletions are sampled from the remaining edges. Use this for
    benchmarks; uniform-random insertions (see {!generate}) progressively
    destroy the profile a generator built (long-range edges inflate
    transitive closures and neighborhoods), which real update streams do
    not do. *)
