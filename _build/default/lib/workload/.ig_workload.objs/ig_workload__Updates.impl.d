lib/workload/updates.ml: Array Float Hashtbl Ig_graph Random
