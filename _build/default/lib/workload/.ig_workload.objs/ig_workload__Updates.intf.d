lib/workload/updates.mli: Ig_graph Random
