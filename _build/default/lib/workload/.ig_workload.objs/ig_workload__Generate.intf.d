lib/workload/generate.mli: Ig_graph Random
