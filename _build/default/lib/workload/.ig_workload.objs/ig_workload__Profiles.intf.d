lib/workload/profiles.mli: Ig_graph Random
