lib/workload/generate.ml: Array Fun Ig_graph Random
