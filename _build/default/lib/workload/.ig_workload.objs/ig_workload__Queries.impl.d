lib/workload/queries.ml: Array Hashtbl Ig_graph Ig_iso Ig_kws Ig_nfa List Random
