lib/workload/profiles.ml: Generate Ig_graph
