lib/workload/queries.mli: Ig_graph Ig_iso Ig_kws Ig_nfa Random
