(** Tarjan's strongly-connected-components algorithm [43].

    This is the batch algorithm [Tarjan] that the paper incrementalizes
    (Section 5.3). Besides the plain component computation it can record the
    DFS {e certificate} that IncSCC maintains per component:

    - [num]: DFS visit order;
    - [lowlink]: smallest [num] reachable via tree arcs plus at most one
      frond or cross-link (Tarjan's invariant);
    - [parent]: the DFS tree arc, [-1] at subtree roots;
    - [witness]: {e which} candidate realized [lowlink] — [Wself] when
      [lowlink = num], [Wtree c] when it flowed up from tree child [c],
      [Wdirect w] when a frond/cross-link [(v,w)] realized it.

    The witness is what makes intra-component edge deletions O(1) when the
    deleted edge is neither a tree arc nor anyone's lowlink witness: the
    recorded run is then verbatim a valid run on the smaller graph, so the
    component structure is unchanged (IncSCC−'s fast path).

    All traversal is iterative — no stack-depth limits on deep graphs.
    Components are returned in reverse topological order of the condensation
    (sinks first), which is the output sequence the paper uses to seed
    topological ranks. *)

type node = Ig_graph.Digraph.node

type witness =
  | Wself
  | Wtree of node
  | Wdirect of node

type cert = {
  mutable num : int;
  mutable lowlink : int;
  mutable parent : node;
  mutable witness : witness;
  mutable on_stack : bool;  (** scratch; [false] outside a run *)
}

val fresh_cert : unit -> cert

val scc : Ig_graph.Digraph.t -> node list list
(** All strongly connected components, sinks first. *)

val run_with_cert :
  Ig_graph.Digraph.t ->
  restrict:(node -> bool) ->
  nodes:node list ->
  cert:(node -> cert) ->
  node list list
(** Run on the subgraph induced by [nodes ∩ restrict] (every listed node is
    used as a DFS root candidate; successors failing [restrict] are skipped),
    filling the given certificate records. [num] is reset for all listed
    nodes first, so stale certificates are overwritten. Components are
    returned sinks-first, as in {!scc}. *)

val run_generic :
  succ:(int -> (int -> unit) -> unit) ->
  restrict:(int -> bool) ->
  nodes:int list ->
  cert:(int -> cert) ->
  int list list
(** The same algorithm over an abstract successor relation. IncSCC uses it
    to run Tarjan on regions of the contracted graph (paper Fig. 7, line 6)
    without materializing them as a {!Ig_graph.Digraph.t}. *)
