lib/scc/tarjan.mli: Ig_graph
