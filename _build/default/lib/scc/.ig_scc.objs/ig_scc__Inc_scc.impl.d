lib/scc/inc_scc.ml: Array Format Hashtbl Ig_graph Int List Option Printf Stack String Tarjan
