lib/scc/inc_scc.mli: Format Ig_graph
