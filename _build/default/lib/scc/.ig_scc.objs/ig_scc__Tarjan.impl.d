lib/scc/tarjan.ml: Array Fun Ig_graph List Stack
