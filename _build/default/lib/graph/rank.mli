(** Order-maintenance labels for topological ranks.

    IncSCC (paper Section 5.3) keeps a topological rank [r] on the nodes of
    the contracted graph [Gc] with the invariant [r(a) > r(b)] for every edge
    [(a,b)]. Three operations disturb the rank set:

    - {b reallocation} after an edge insertion (Pearce–Kelly style): a set of
      existing labels is permuted among the affected nodes;
    - {b splits} after an intra-component deletion: one node's slot must host
      [k] fresh, internally ordered labels;
    - {b merges}: several nodes collapse into one, freeing labels.

    Labels are sparse [int] keys (OCaml native ints: unboxed, 62 bits) with a configurable gap; when a split
    finds no room in a slot, the whole structure is relabeled (order
    preserved). Callers must treat label values as transient: valid only
    until the next mutating operation. *)

type item = int
(** Caller-chosen identifiers (e.g. contracted-graph node ids). *)

type t

val create : unit -> t

val size : t -> int

val mem : t -> item -> bool

val insert_top : t -> item -> unit
(** Give [item] a label above every existing one.
    @raise Invalid_argument if [item] is already present. *)

val insert_bottom : t -> item -> unit
(** Give [item] a label below every existing one. *)

val remove : t -> item -> unit
(** Retire an item, freeing its label. No-op if absent. *)

val value : t -> item -> int
(** The current label. Transient — see module doc.
    @raise Not_found if the item is not present. *)

val compare_items : t -> item -> item -> int
(** Compare two present items by label. *)

val reassign : t -> item list -> unit
(** [reassign t items] permutes the items' own labels so that, read in list
    order, labels are ascending. The label multiset is unchanged. Used for
    Pearce–Kelly rank reallocation ([reallocRank] in the paper).
    @raise Invalid_argument on duplicates or absent items. *)

val take_labels : t -> item list -> int list
(** [take_labels t items] retires all the items and returns their labels
    sorted ascending. Together with {!give} this supports reallocation
    patterns where some labels are dropped (component merges): the caller
    decides which pool labels go to which survivors.
    @raise Invalid_argument on duplicates or absent items. *)

val give : t -> item -> int -> unit
(** Assign a currently unused label (one just returned by {!take_labels})
    to an absent item.
    @raise Invalid_argument if the item is present or the label in use. *)

val split : t -> item -> parts:item list -> unit
(** [split t x ~parts] retires [x] and labels the fresh [parts] (ascending
    desired order) with distinct labels lying strictly between [x]'s
    neighboring labels, so every order relation with the rest of the
    structure that [x] satisfied is satisfied by each part. Triggers a global
    relabel if the slot is too narrow.
    @raise Invalid_argument if a part is already present or [x] is absent. *)

val check : t -> unit
(** Internal consistency check (for tests): the item→label and label→item
    views agree and labels are unique. @raise Failure on violation. *)
