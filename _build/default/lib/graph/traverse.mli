(** Standard traversals over {!Digraph}.

    The localizable algorithms of the paper repeatedly need the
    [d]-neighborhood [G_d(v)] of updated nodes — nodes within [d] hops when
    the graph is read as undirected (Section 4.1) — and bounded BFS in either
    edge direction. *)

type node = Digraph.node

val bfs : ?bound:int -> dir:[ `Forward | `Backward ] -> Digraph.t ->
  node list -> (node, int) Hashtbl.t
(** Multi-source BFS along edges ([`Forward]) or against them ([`Backward]).
    Returns hop distances from the source set; nodes farther than [bound]
    (inclusive) are not visited. Sources get distance 0. *)

val ball : Digraph.t -> node list -> d:int -> (node, int) Hashtbl.t
(** [ball g vs ~d] is [V_d(vs)]: nodes within [d] undirected hops of any
    source, with their undirected distances. *)

val reaches : ?within:(node -> bool) -> Digraph.t -> node -> node -> bool
(** [reaches g u v] tests directed reachability, optionally restricted to
    nodes satisfying [within] (both endpoints must satisfy it, except that
    [u] is always expanded). *)

val reachable : ?within:(node -> bool) -> Digraph.t ->
  dir:[ `Forward | `Backward ] -> node list -> (node, unit) Hashtbl.t
(** Restricted closure in the given direction. *)
