(** Minimum priority queues with decrease-key.

    The incremental algorithms of the paper (IncKWS−, IncKWS, IncRPQ) fix the
    exact shortest distances of affected entries by repeatedly extracting the
    entry with minimum tentative distance and relaxing its in-neighbors,
    exactly like Dijkstra restricted to the affected area
    (Ramalingam–Reps style). That loop needs [pull_min] and [decrease].

    Implemented as a binary heap indexed by a position table, so [insert],
    [pull_min] and [decrease] are O(log n) and [mem]/[priority] are O(1)
    expected. *)

module Make (K : Hashtbl.HashedType) : sig
  type key = K.t
  type t

  val create : ?hint:int -> unit -> t
  val is_empty : t -> bool
  val length : t -> int
  val mem : t -> key -> bool

  val priority : t -> key -> int option
  (** Current priority of a queued key, if any. *)

  val insert : t -> key -> int -> unit
  (** Insert a key. If already queued, behaves like {!decrease} when the new
      priority is smaller and is a no-op otherwise. *)

  val decrease : t -> key -> int -> unit
  (** Lower the priority of a queued key (inserts if absent). A priority not
      smaller than the current one is ignored. *)

  val pull_min : t -> (key * int) option
  (** Remove and return the minimum entry. *)

  val clear : t -> unit
end
