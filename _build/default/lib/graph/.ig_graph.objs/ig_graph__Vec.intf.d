lib/graph/vec.mli:
