lib/graph/interner.ml: Hashtbl Vec
