lib/graph/digraph.ml: Format Hashtbl Interner List Option Vec
