lib/graph/digraph.mli: Format Interner
