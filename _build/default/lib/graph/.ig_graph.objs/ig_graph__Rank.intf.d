lib/graph/rank.mli:
