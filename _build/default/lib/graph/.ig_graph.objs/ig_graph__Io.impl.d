lib/graph/io.ml: Digraph Format Fun Hashtbl In_channel List Printf Seq String
