lib/graph/traverse.ml: Digraph Hashtbl List Queue Stack
