lib/graph/traverse.mli: Digraph Hashtbl
