lib/graph/pqueue.ml: Array Hashtbl
