lib/graph/io.mli: Digraph Format
