lib/graph/pqueue.mli: Hashtbl
