lib/graph/rank.ml: Hashtbl Int List Map
