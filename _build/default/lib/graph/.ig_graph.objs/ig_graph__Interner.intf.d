lib/graph/interner.mli:
