module Make (K : Hashtbl.HashedType) = struct
  type key = K.t

  module H = Hashtbl.Make (K)

  type t = {
    mutable keys : key array;  (* heap slots; valid for indices < size *)
    mutable prio : int array;
    mutable size : int;
    pos : int H.t;             (* key -> heap index *)
  }

  let create ?(hint = 16) () =
    { keys = [||]; prio = [||]; size = 0; pos = H.create (max 16 hint) }

  let is_empty q = q.size = 0
  let length q = q.size
  let mem q k = H.mem q.pos k

  let priority q k =
    match H.find_opt q.pos k with
    | None -> None
    | Some i -> Some q.prio.(i)

  let grow q k =
    let cap = Array.length q.keys in
    let cap' = if cap = 0 then 16 else 2 * cap in
    let keys = Array.make cap' k in
    let prio = Array.make cap' 0 in
    Array.blit q.keys 0 keys 0 q.size;
    Array.blit q.prio 0 prio 0 q.size;
    q.keys <- keys;
    q.prio <- prio

  let place q i k p =
    q.keys.(i) <- k;
    q.prio.(i) <- p;
    H.replace q.pos k i

  let rec sift_up q i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if q.prio.(i) < q.prio.(parent) then begin
        let ki = q.keys.(i) and pi = q.prio.(i) in
        place q i q.keys.(parent) q.prio.(parent);
        place q parent ki pi;
        sift_up q parent
      end
    end

  let rec sift_down q i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < q.size && q.prio.(l) < q.prio.(!smallest) then smallest := l;
    if r < q.size && q.prio.(r) < q.prio.(!smallest) then smallest := r;
    if !smallest <> i then begin
      let s = !smallest in
      let ki = q.keys.(i) and pi = q.prio.(i) in
      place q i q.keys.(s) q.prio.(s);
      place q s ki pi;
      sift_down q s
    end

  let push_new q k p =
    if q.size = Array.length q.keys then grow q k;
    let i = q.size in
    q.size <- i + 1;
    place q i k p;
    sift_up q i

  let decrease q k p =
    match H.find_opt q.pos k with
    | None -> push_new q k p
    | Some i -> if p < q.prio.(i) then begin q.prio.(i) <- p; sift_up q i end

  let insert = decrease

  let pull_min q =
    if q.size = 0 then None
    else begin
      let k = q.keys.(0) and p = q.prio.(0) in
      H.remove q.pos k;
      q.size <- q.size - 1;
      if q.size > 0 then begin
        place q 0 q.keys.(q.size) q.prio.(q.size);
        sift_down q 0
      end;
      Some (k, p)
    end

  let clear q =
    q.size <- 0;
    H.reset q.pos
end
