(** String interning.

    Node labels are strings at the API boundary but dense integer symbols
    internally, so that hot loops (NFA transitions, keyword matching, VF2
    label checks) compare labels with [(=)] on [int]. *)

type t

type symbol = int
(** Dense identifiers, allocated from 0 upward. *)

val create : unit -> t

val intern : t -> string -> symbol
(** Return the symbol for a string, allocating a fresh one on first sight. *)

val find : t -> string -> symbol option
(** Lookup without allocating. *)

val name : t -> symbol -> string
(** Inverse of {!intern}.
    @raise Invalid_argument on a symbol never returned by [intern]. *)

val size : t -> int
(** Number of distinct symbols allocated so far. *)
