type symbol = int

type t = { by_name : (string, int) Hashtbl.t; names : string Vec.t }

let create () = { by_name = Hashtbl.create 64; names = Vec.create () }

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
      let id = Vec.push t.names s in
      Hashtbl.add t.by_name s id;
      id

let find t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= Vec.length t.names then
    invalid_arg "Interner.name: unknown symbol"
  else Vec.get t.names id

let size t = Vec.length t.names
