(** Plain-text graph serialization.

    Line-oriented format, one record per line:
    - [# ...] comment (ignored)
    - [v <id> <label>] node declaration
    - [e <u> <v>] edge declaration (endpoints must be declared first)

    External ids may be arbitrary non-negative integers; they are remapped to
    the dense internal ids on load. *)

val write : Format.formatter -> Digraph.t -> unit

val save : string -> Digraph.t -> unit
(** Write to a file path. *)

val read : in_channel -> Digraph.t
(** @raise Failure on malformed input, with a line number. *)

val load : string -> Digraph.t

val of_string : string -> Digraph.t
(** Parse from an in-memory string (used by tests). *)
