(** Regular path expressions (paper Section 2.1).

    [Q ::= ε | α | Q·Q | Q+Q | Q*] over an alphabet of node labels. The
    query size [|Q|] is the number of label occurrences, following the
    paper's convention. *)

type t =
  | Empty                (** ε — the empty word *)
  | Label of string      (** α — one node label *)
  | Concat of t * t      (** Q·Q *)
  | Alt of t * t         (** Q+Q *)
  | Star of t            (** Q* *)

val size : t -> int
(** Number of label occurrences ([|Q|] in the paper's cost bounds). *)

val labels : t -> string list
(** Distinct labels mentioned, in first-occurrence order. *)

val pp : Format.formatter -> t -> unit
(** Print in the concrete syntax accepted by {!parse}. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Concrete syntax: labels are bare identifiers
    ([A-Za-z0-9_-], not the reserved word [eps]); [eps] is ε; [+] is
    alternation; [.] (or juxtaposition) is concatenation; postfix [*] is
    Kleene star; parentheses group. Example:
    ["c . (b . a + c)* . c"]. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

val matches : t -> string list -> bool
(** [matches q w] tests whether the label word [w] belongs to [L(q)].
    Reference implementation by derivative-free recursion, used in tests as
    an oracle for the NFA. Exponential in the worst case; fine for small
    inputs. *)
