type t =
  | Empty
  | Label of string
  | Concat of t * t
  | Alt of t * t
  | Star of t

let rec size = function
  | Empty -> 0
  | Label _ -> 1
  | Concat (a, b) | Alt (a, b) -> size a + size b
  | Star a -> size a

let labels q =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Empty -> ()
    | Label l ->
        if not (Hashtbl.mem seen l) then begin
          Hashtbl.replace seen l ();
          acc := l :: !acc
        end
    | Concat (a, b) | Alt (a, b) -> go a; go b
    | Star a -> go a
  in
  go q;
  List.rev !acc

(* Printing: + binds loosest, then ., then *. *)
let rec pp_prec prec ppf q =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match q with
  | Empty -> Format.pp_print_string ppf "eps"
  | Label l -> Format.pp_print_string ppf l
  | Alt (a, b) ->
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a + %a" (pp_prec 0) a (pp_prec 1) b)
  | Concat (a, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a . %a" (pp_prec 1) a (pp_prec 2) b)
  | Star a -> paren 2 (fun ppf -> Format.fprintf ppf "%a*" (pp_prec 3) a)

let pp ppf q = pp_prec 0 ppf q

let to_string q = Format.asprintf "%a" pp q

(* Lexer *)
type token = Tident of string | Teps | Tplus | Tdot | Tstar | Tlparen
           | Trparen | Teof

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let lex s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let err = ref None in
  while !i < n && !err = None do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '+' then (toks := Tplus :: !toks; incr i)
    else if c = '.' then (toks := Tdot :: !toks; incr i)
    else if c = '*' then (toks := Tstar :: !toks; incr i)
    else if c = '(' then (toks := Tlparen :: !toks; incr i)
    else if c = ')' then (toks := Trparen :: !toks; incr i)
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      let id = String.sub s !i (!j - !i) in
      toks := (if id = "eps" then Teps else Tident id) :: !toks;
      i := !j
    end
    else err := Some (Printf.sprintf "unexpected character %C at offset %d" c !i)
  done;
  match !err with
  | Some e -> Error e
  | None -> Ok (List.rev (Teof :: !toks))

exception Parse_error of string

let parse s =
  match lex s with
  | Error e -> Error e
  | Ok toks ->
      let toks = ref toks in
      let peek () = match !toks with t :: _ -> t | [] -> Teof in
      let advance () = match !toks with _ :: r -> toks := r | [] -> () in
      let fail msg = raise (Parse_error msg) in
      (* alt := cat ('+' cat)* ; cat := rep ( '.'? rep )* ; rep := atom '*'* *)
      let rec alt () =
        let a = cat () in
        if peek () = Tplus then begin advance (); Alt (a, alt ()) end else a
      and cat () =
        let a = rep () in
        match peek () with
        | Tdot ->
            advance ();
            Concat (a, cat ())
        | Tident _ | Teps | Tlparen -> Concat (a, cat ())
        | _ -> a
      and rep () =
        let a = atom () in
        let rec stars a =
          if peek () = Tstar then begin advance (); stars (Star a) end else a
        in
        stars a
      and atom () =
        match peek () with
        | Tident l -> advance (); Label l
        | Teps -> advance (); Empty
        | Tlparen ->
            advance ();
            let a = alt () in
            if peek () <> Trparen then fail "expected ')'";
            advance ();
            a
        | Tplus -> fail "unexpected '+'"
        | Tdot -> fail "unexpected '.'"
        | Tstar -> fail "unexpected '*'"
        | Trparen -> fail "unexpected ')'"
        | Teof -> fail "unexpected end of input"
      in
      (try
         let q = alt () in
         if peek () <> Teof then Error "trailing input"
         else Ok q
       with Parse_error e -> Error e)

let parse_exn s =
  match parse s with
  | Ok q -> q
  | Error e -> invalid_arg ("Regex.parse_exn: " ^ e)

(* Brzozowski-derivative matching oracle. [None] encodes the empty
   language. *)
let rec nullable = function
  | Empty -> true
  | Label _ -> false
  | Concat (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ -> true

let concat_opt a b =
  match a with None -> None | Some a -> Some (Concat (a, b))

let alt_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Alt (a, b))

let rec deriv c = function
  | Empty -> None
  | Label l -> if l = c then Some Empty else None
  | Alt (a, b) -> alt_opt (deriv c a) (deriv c b)
  | Concat (a, b) ->
      let left = concat_opt (deriv c a) b in
      if nullable a then alt_opt left (deriv c b) else left
  | Star a as s -> concat_opt (deriv c a) s

let matches q w =
  let rec go q = function
    | [] -> nullable q
    | c :: w -> ( match deriv c q with None -> false | Some q' -> go q' w)
  in
  go q w
