(** ε-free NFAs for regular path queries.

    Compiled from {!Regex.t} by the Glushkov (position-automaton)
    construction, which produces an ε-free NFA with [|Q| + 1] states — the
    same small-automata family as the Hromkovič–Seibert–Wilke construction
    the paper adopts for its batch algorithm [RPQNFA] (both avoid
    ε-transitions; state count differs only by constant factors on the
    query sizes used here).

    Labels are interned symbols so transition lookups in the product-graph
    traversal are integer hash hits. The automaton also carries the inverse
    transition relation, needed by IncRPQ to enumerate candidate
    predecessors ([cpre]) of a product node without scanning all states. *)

type state = int
type symbol = Ig_graph.Interner.symbol

type t

val compile : Ig_graph.Interner.t -> Regex.t -> t
(** Compile against an interner (normally the graph's), so that symbols
    agree with node labels. Query labels absent from the interner are
    interned — they simply never match a node. *)

val n_states : t -> int

val start : t -> state
(** The unique initial state [s0]. *)

val is_accepting : t -> state -> bool

val nullable : t -> bool
(** Whether ε ∈ L(Q). (Irrelevant to matches — paths have at least one
    node — but exposed for completeness.) *)

val next : t -> state -> symbol -> state list
(** [next a s α] = δ(s, α). Returns [[]] for unknown symbols. *)

val prev : t -> state -> symbol -> state list
(** [prev a s α] = all [s'] with [s ∈ δ(s', α)]. *)

val accepts : t -> symbol list -> bool
(** Word membership by subset simulation (testing aid). *)

val alphabet : t -> symbol list
(** Symbols with at least one transition. *)

val pp : Format.formatter -> t -> unit
