lib/nfa/regex.mli: Format
