lib/nfa/nfa.mli: Format Ig_graph Regex
