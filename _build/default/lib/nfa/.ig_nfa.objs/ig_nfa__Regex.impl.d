lib/nfa/regex.ml: Format Hashtbl List Printf String
