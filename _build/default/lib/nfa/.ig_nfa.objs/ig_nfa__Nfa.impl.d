lib/nfa/nfa.ml: Array Format Hashtbl Ig_graph Int List Option Regex Set
