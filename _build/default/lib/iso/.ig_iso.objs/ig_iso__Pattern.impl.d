lib/iso/pattern.ml: Array Format Hashtbl List Queue String
