lib/iso/vf2.ml: Array Hashtbl Ig_graph List Pattern
