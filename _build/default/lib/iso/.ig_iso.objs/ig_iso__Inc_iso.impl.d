lib/iso/inc_iso.ml: Array Hashtbl Ig_graph List Pattern Printf Vf2
