lib/iso/vf2.mli: Ig_graph Pattern
