lib/iso/inc_iso.mli: Ig_graph Pattern Vf2
