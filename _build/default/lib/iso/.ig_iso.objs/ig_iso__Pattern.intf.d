lib/iso/pattern.mli: Format
