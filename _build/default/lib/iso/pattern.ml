type t = {
  labels : string array;
  edges : (int * int) list;
  succ : int list array;
  pred : int list array;
}

let n_nodes p = Array.length p.labels
let n_edges p = List.length p.edges
let label p u = p.labels.(u)
let edges p = p.edges
let succ p u = p.succ.(u)
let pred p u = p.pred.(u)

let neighbors p u = p.succ.(u) @ p.pred.(u)

let undirected_bfs p src =
  let n = n_nodes p in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (neighbors p u)
  done;
  dist

let create ~labels ~edges =
  let n = List.length labels in
  if n = 0 then invalid_arg "Pattern.create: empty pattern";
  let seen = Hashtbl.create 16 in
  let edges =
    List.filter
      (fun (u, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Pattern.create: edge endpoint out of range";
        if Hashtbl.mem seen (u, v) then false
        else begin
          Hashtbl.replace seen (u, v) ();
          true
        end)
      edges
  in
  let succ = Array.make n [] and pred = Array.make n [] in
  List.iter
    (fun (u, v) ->
      succ.(u) <- v :: succ.(u);
      pred.(v) <- u :: pred.(v))
    edges;
  let p = { labels = Array.of_list labels; edges; succ; pred } in
  let dist = undirected_bfs p 0 in
  if Array.exists (fun d -> d < 0) dist then
    invalid_arg "Pattern.create: pattern is not weakly connected";
  p

let diameter p =
  let best = ref 0 in
  for u = 0 to n_nodes p - 1 do
    Array.iter (fun d -> if d > !best then best := d) (undirected_bfs p u)
  done;
  !best

let matching_order p =
  let n = n_nodes p in
  (* Start from a max-degree node; grow by undirected adjacency. *)
  let deg u = List.length p.succ.(u) + List.length p.pred.(u) in
  let start = ref 0 in
  for u = 1 to n - 1 do
    if deg u > deg !start then start := u
  done;
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  order.(0) <- !start;
  placed.(!start) <- true;
  for i = 1 to n - 1 do
    (* Next: an unplaced node adjacent to a placed one (exists by weak
       connectivity), preferring high degree. *)
    let best = ref (-1) in
    for u = 0 to n - 1 do
      if
        (not placed.(u))
        && List.exists (fun v -> placed.(v)) (neighbors p u)
        && (!best = -1 || deg u > deg !best)
      then best := u
    done;
    assert (!best >= 0);
    order.(i) <- !best;
    placed.(!best) <- true
  done;
  order

let pp ppf p =
  Format.fprintf ppf "@[pattern: %d nodes, %d edges, labels [%s]@]" (n_nodes p)
    (n_edges p)
    (String.concat ";" (Array.to_list p.labels))
