(** Pattern queries for subgraph isomorphism (paper Section 2.1).

    A pattern is a small node-labeled digraph [(V_Q, E_Q, l_Q)]. Patterns
    must be weakly connected — the paper characterizes them by
    [(|V_Q|, |E_Q|, d_Q)] where [d_Q], the {e diameter}, is the longest
    shortest undirected distance between any two pattern nodes; [d_Q] is
    what bounds IncISO's neighborhood exploration, so localizability relies
    on connectivity. *)

type t

val create : labels:string list -> edges:(int * int) list -> t
(** Pattern nodes are [0 .. length labels - 1]; [edges] are directed pattern
    edges (duplicates collapse).
    @raise Invalid_argument if empty or not weakly connected. *)

val n_nodes : t -> int
val n_edges : t -> int
val label : t -> int -> string
val edges : t -> (int * int) list

val succ : t -> int -> int list
val pred : t -> int -> int list

val diameter : t -> int
(** [d_Q]: longest undirected shortest path. 0 for a single node. *)

val matching_order : t -> int array
(** A permutation of pattern nodes such that every node after the first has
    a (directed, either way) neighbor earlier in the order — the backbone of
    the VF2 candidate generation. *)

val pp : Format.formatter -> t -> unit
