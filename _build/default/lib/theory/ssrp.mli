(** SSRP — single-source reachability to all vertices (paper Section 3).

    Given [G] and a distinguished node [v_s], decide for every [v_t] whether
    [v_s ⇝ v_t]. Its incremental problem is the paper's reduction source for
    the Theorem 1 impossibility proofs: it is {e bounded under unit edge
    insertions but unbounded under unit edge deletions} [38]. This module
    exhibits both halves: {!insert_edge} is the textbook bounded algorithm
    (cost proportional to the newly reachable region, which is part of ΔO),
    while {!delete_edge} recomputes reachability of the affected region from
    scratch — there is provably no way around inspecting data not covered by
    |ΔG| + |ΔO| there. *)

type node = Ig_graph.Digraph.node

val batch : Ig_graph.Digraph.t -> node -> (node, unit) Hashtbl.t
(** Forward BFS closure: the reachable set of the source. *)

type t

val init : Ig_graph.Digraph.t -> node -> t
(** The session owns the graph afterwards. *)

val graph : t -> Ig_graph.Digraph.t
val source : t -> node
val reaches : t -> node -> bool
val reachable_count : t -> int

val insert_edge : t -> node -> node -> node list
(** Apply [insert (u,v)] and return the newly reachable nodes. Bounded:
    touches only nodes entering the reachable set (⊆ ΔO) and their edges. *)

val delete_edge : t -> node -> node -> node list
(** Apply [delete (u,v)] and return the nodes that became unreachable.
    Recomputes the closure when the deleted edge was load-bearing — the
    unbounded case. *)

val check_invariants : t -> unit
(** Test hook: the maintained set equals a fresh BFS. *)
