module Digraph = Ig_graph.Digraph
module Regex = Ig_nfa.Regex

type node = Digraph.node

type t = {
  graph : Digraph.t;
  query : Regex.t;
  delta1 : Digraph.update;
  delta2 : Digraph.update;
  v_nodes : node list;
  u_nodes : node list;
  w : node;
}

let query =
  Regex.(
    Concat
      ( Label "alpha1",
        Concat
          ( Star (Label "alpha1"),
            Concat
              (Label "alpha2", Concat (Star (Label "alpha2"), Label "alpha3"))
          ) ))

let make ~cycle =
  if cycle < 2 then invalid_arg "Gadget.make: cycle must be >= 2";
  let g = Digraph.create ~hint:((2 * cycle) + 1) () in
  let v_nodes = List.init cycle (fun _ -> Digraph.add_node g "alpha1") in
  let u_nodes = List.init cycle (fun _ -> Digraph.add_node g "alpha2") in
  let w = Digraph.add_node g "alpha3" in
  let ring ns =
    let arr = Array.of_list ns in
    Array.iteri
      (fun i x ->
        ignore (Digraph.add_edge g x arr.((i + 1) mod Array.length arr)))
      arr
  in
  ring v_nodes;
  ring u_nodes;
  ignore (Digraph.add_edge g (List.nth v_nodes 0) w);
  let mid = cycle / 2 in
  {
    graph = g;
    query;
    delta1 = Digraph.Insert (List.nth v_nodes mid, List.nth u_nodes mid);
    delta2 = Digraph.Insert (List.nth u_nodes 0, w);
    v_nodes;
    u_nodes;
    w;
  }

let expected_matches t = List.map (fun v -> (v, t.w)) t.v_nodes

type demo_point = { n : int; changed : int; inc_work : int }

let demo ~cycles =
  List.map
    (fun n ->
      let g = make ~cycle:n in
      let session = Ig_rpq.Inc_rpq.create g.graph g.query in
      Ig_rpq.Inc_rpq.reset_stats session;
      let d = Ig_rpq.Inc_rpq.apply_batch session [ g.delta1 ] in
      let delta_o =
        List.length d.Ig_rpq.Inc_rpq.added
        + List.length d.Ig_rpq.Inc_rpq.removed
      in
      let st = Ig_rpq.Inc_rpq.stats session in
      {
        n;
        changed = 1 + delta_o;
        inc_work = st.Ig_rpq.Inc_rpq.settled + st.Ig_rpq.Inc_rpq.affected;
      })
    cycles
