(** The Figure 9 counterexample: unboundedness of RPQ under insertions.

    Two disjoint directed cycles of length [cycle] — the [v]-cycle labeled
    [α1] and the [u]-cycle labeled [α2] — plus a sink [w] labeled [α3]
    reachable from [v_0], and the query [Q = α1 · α1* · α2 · α2* · α3].
    Two insertions are prepared: [Δ1] bridges the cycles at their far side
    ([v_{n/2} → u_{n/2}]), and [Δ2] connects the [u]-cycle to the sink
    ([u_0 → w]). (The paper's prose writes [Δ2 = (u_1, v_1)], but only a
    [u → w] edge can complete a word of [L(Q)] — the node before [w] must
    carry [α2] — and only then does [Q(G ⊕ Δ1 ⊕ Δ2)] equal the
    [{(v_i, w)}] set the proof claims; we implement that reading.)

    Then [Q(G) = Q(G ⊕ Δ1) = Q(G ⊕ Δ2) = ∅] while [Q(G ⊕ Δ1 ⊕ Δ2)]
    contains every [v]-node paired with [w]. The proof's punchline: a
    locally persistent algorithm processing [Δ2] must behave differently
    depending on whether [Δ1] was applied — information that sits Ω(cycle)
    hops away — while [|CHANGED|] for [Δ1] alone is 1. So no bounded
    incremental algorithm exists. {!demo} measures this empirically with
    IncRPQ's work counters. *)

type node = Ig_graph.Digraph.node

type t = {
  graph : Ig_graph.Digraph.t;
  query : Ig_nfa.Regex.t;
  delta1 : Ig_graph.Digraph.update;  (** insert (v_{n/2}, u_{n/2}) *)
  delta2 : Ig_graph.Digraph.update;  (** insert (u_0, w) *)
  v_nodes : node list;
  u_nodes : node list;
  w : node;
}

val make : cycle:int -> t
(** [cycle ≥ 2]: nodes per cycle. *)

val expected_matches : t -> (node * node) list
(** [Q(G ⊕ Δ1 ⊕ Δ2)]: every v-node paired with [w]. *)

type demo_point = {
  n : int;        (** cycle length *)
  changed : int;  (** |ΔG| + |ΔO| for Δ1 — always 1 *)
  inc_work : int; (** IncRPQ marking entries settled while processing Δ1 *)
}

val demo : cycles:int list -> demo_point list
(** Empirical unboundedness: the work for the output-silent [Δ1] grows with
    the gadget while |CHANGED| stays 1. *)
