(** Δ-reductions (paper Section 3) — the proof technique behind Theorem 1,
    made executable.

    A Δ-reduction from query class [Q1] to [Q2] is a triple [(f, fi, fo)]:
    [f] maps instances, [fi] maps input updates, and [fo] maps output
    changes back, all in PTIME in [|ΔG1| + |ΔO1|] and [|Q1|]. Lemma 2: if
    [Q2] has a bounded incremental algorithm, so does [Q1]; contrapositively
    the unboundedness of SSRP under deletions transfers to RPQ (and on to
    SCC, KWS in the paper's full version).

    This module packages the generic triple and the concrete SSRP → RPQ
    reduction from the paper's appendix: every node of [G1] keeps its
    edges; the source is relabeled [α1], all others [α2]; and
    [Q2 = α1 · α2*], so [v_s ⇝ v_i] in [G1] iff [(v_s', v_i')] is a match
    of [Q2] in [G2]. Tests replay random update streams through the
    reduction and an RPQ engine, checking they solve SSRP. *)

type node = Ig_graph.Digraph.node

type ('i1, 'd1, 'o1, 'i2, 'd2, 'o2) t = {
  f : 'i1 -> 'i2;            (** instance mapping *)
  fi : 'i1 -> 'd1 -> 'd2;    (** input-update mapping *)
  fo : 'i1 -> 'o2 -> 'o1;    (** output-update mapping (back) *)
}

type ssrp_instance = { graph : Ig_graph.Digraph.t; source : node }

type reach_change = { node : node; now_reachable : bool }

val source_label : string
(** [α1]. *)

val other_label : string
(** [α2]. *)

val ssrp_to_rpq :
  ( ssrp_instance,
    Ig_graph.Digraph.update,
    reach_change list,
    Ig_graph.Digraph.t * Ig_nfa.Regex.t,
    Ig_graph.Digraph.update,
    Ig_rpq.Inc_rpq.delta )
  t
(** The appendix reduction. [f] builds a fresh relabeled copy of the graph
    (node ids preserved, so [fi] is the identity on edge updates); [fo]
    projects the RPQ match changes [(v_s, v_i)] to reachability flips of
    [v_i]. *)
