lib/theory/gadget.ml: Array Ig_graph Ig_nfa Ig_rpq List
