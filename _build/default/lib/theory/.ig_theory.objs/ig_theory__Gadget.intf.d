lib/theory/gadget.mli: Ig_graph Ig_nfa
