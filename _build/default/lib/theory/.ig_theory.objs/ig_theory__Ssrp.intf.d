lib/theory/ssrp.mli: Hashtbl Ig_graph
