lib/theory/reduction.ml: Ig_graph Ig_nfa Ig_rpq List
