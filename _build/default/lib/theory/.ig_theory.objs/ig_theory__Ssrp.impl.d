lib/theory/ssrp.ml: Hashtbl Ig_graph Stack
