lib/theory/reduction.mli: Ig_graph Ig_nfa Ig_rpq
