module Digraph = Ig_graph.Digraph
module Regex = Ig_nfa.Regex

type node = Digraph.node

type ('i1, 'd1, 'o1, 'i2, 'd2, 'o2) t = {
  f : 'i1 -> 'i2;
  fi : 'i1 -> 'd1 -> 'd2;
  fo : 'i1 -> 'o2 -> 'o1;
}

type ssrp_instance = { graph : Digraph.t; source : node }

type reach_change = { node : node; now_reachable : bool }

let source_label = "alpha1"
let other_label = "alpha2"

let build_graph inst =
  let g2 = Digraph.create ~hint:(Digraph.n_nodes inst.graph) () in
  Digraph.iter_nodes
    (fun v ->
      let l = if v = inst.source then source_label else other_label in
      ignore (Digraph.add_node g2 l))
    inst.graph;
  Digraph.iter_edges (fun u v -> ignore (Digraph.add_edge g2 u v)) inst.graph;
  g2

let query = Regex.(Concat (Label source_label, Star (Label other_label)))

let ssrp_to_rpq =
  {
    f = (fun inst -> (build_graph inst, query));
    fi = (fun _ up -> up);
    fo =
      (fun inst (d : Ig_rpq.Inc_rpq.delta) ->
        (* Matches are (source, v) pairs: all α1-paths start at the source.
           The (source, source) self match only reports trivial
           reachability; SSRP counts it too (v_s reaches itself). *)
        let changes =
          List.map
            (fun (u, v) ->
              assert (u = inst.source);
              { node = v; now_reachable = true })
            d.Ig_rpq.Inc_rpq.added
          @ List.map
              (fun (u, v) ->
                assert (u = inst.source);
                { node = v; now_reachable = false })
              d.Ig_rpq.Inc_rpq.removed
        in
        changes);
  }
