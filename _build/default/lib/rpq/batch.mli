(** The batch algorithm RPQNFA (paper Section 5.2).

    Translates the regular path query into an ε-free NFA, then for every
    source node runs a BFS over the intersection graph, marking the nodes
    reached in each state with their BFS distance. A pair [(u, v)] is a
    match iff some accepting state is reached at [v] from [(u, s0)]. This is
    the [O(|V||E||Q|² log² |Q|)]-class algorithm the paper incrementalizes,
    and the distances it records are exactly the [dist] field of the
    [pmark_e] markings IncRPQ maintains. *)

type node = Ig_graph.Digraph.node

val source_marks : Pgraph.t -> node -> (Pgraph.key, int) Hashtbl.t
(** BFS over the product graph from source [u]: maps reached product keys to
    their distance from the virtual root [(u, s0)] (initial entries have
    distance 0). Empty when [u] is not a source. *)

val matches_from : Pgraph.t -> node -> node list
(** All [v] with [(u, v)] a match, deduplicated, unsorted. *)

val run : Ig_graph.Digraph.t -> Ig_nfa.Nfa.t -> (node * node) list
(** The full answer [Q(G)] as match pairs. *)

val run_query : Ig_graph.Digraph.t -> Ig_nfa.Regex.t -> (node * node) list
(** Convenience: compile the regex against the graph's interner and {!run}. *)
