lib/rpq/pgraph.mli: Ig_graph Ig_nfa
