lib/rpq/inc_rpq.mli: Ig_graph Ig_nfa
