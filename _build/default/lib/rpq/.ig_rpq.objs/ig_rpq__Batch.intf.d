lib/rpq/batch.mli: Hashtbl Ig_graph Ig_nfa Pgraph
